#include <gtest/gtest.h>

#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "quality/error_analysis.h"
#include "quality/rule_cleaning.h"
#include "quality/rule_feedback.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

HornRule RuleWithScore(double score) {
  HornRule r;
  r.structure = RuleStructure::kM1;
  r.head = 0;
  r.body1 = 1;
  r.c1 = 0;
  r.c2 = 0;
  r.weight = 1.0;
  r.score = score;
  return r;
}

TEST(RuleCleaningTest, KeepsTopThetaByScore) {
  std::vector<HornRule> rules = {RuleWithScore(0.1), RuleWithScore(0.9),
                                 RuleWithScore(0.5), RuleWithScore(0.7)};
  auto kept = TopThetaRules(rules, 0.5);
  ASSERT_EQ(kept.size(), 2u);
  // Input order preserved among the kept rules (0.9 appears before 0.7).
  EXPECT_DOUBLE_EQ(kept[0].score, 0.9);
  EXPECT_DOUBLE_EQ(kept[1].score, 0.7);
}

TEST(RuleCleaningTest, BoundaryThetas) {
  std::vector<HornRule> rules = {RuleWithScore(0.1), RuleWithScore(0.9)};
  EXPECT_EQ(TopThetaRules(rules, 1.0).size(), 2u);
  EXPECT_EQ(TopThetaRules(rules, 2.0).size(), 2u);
  EXPECT_EQ(TopThetaRules(rules, 0.0).size(), 0u);
  // Never rounds down to zero for positive theta.
  EXPECT_EQ(TopThetaRules(rules, 0.01).size(), 1u);
  EXPECT_TRUE(TopThetaRules({}, 0.5).empty());
}

TEST(RuleCleaningTest, RoundsToNearestCount) {
  std::vector<HornRule> rules;
  for (int i = 0; i < 10; ++i) {
    rules.push_back(RuleWithScore(i / 10.0));
  }
  EXPECT_EQ(TopThetaRules(rules, 0.25).size(), 3u);  // llround(2.5) = 3
  auto kept = TopThetaRules(rules, 0.2);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].score, 0.8);
  EXPECT_DOUBLE_EQ(kept[1].score, 0.9);
}

TEST(ErrorSourceTest, Names) {
  EXPECT_STREQ(ErrorSourceToString(ErrorSource::kAmbiguousEntity),
               "Ambiguities (detected)");
  EXPECT_STREQ(ErrorSourceToString(ErrorSource::kIncorrectRule),
               "Incorrect rules");
}

TEST(ClassifyViolatorsTest, UsesLabelPrecedence) {
  // TPi with facts about three entities: 10 (ambiguous), 20 (keyed to a
  // bad-rule head), 30 (incorrect extraction).
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 10, 0, 100, 0, 0.9});
  AppendFactRow(t_pi.get(), 1, {7, 20, 0, 101, 0, 0.9});  // relation 7 = bad head
  AppendFactRow(t_pi.get(), 2, {2, 30, 0, 102, 0, 0.9});

  auto violators = Table::Make(Schema({{"e", ColumnType::kInt64},
                                       {"Ce", ColumnType::kInt64},
                                       {"arg", ColumnType::kInt64}}));
  violators->AppendRow({Value::Int64(10), Value::Int64(0), Value::Int64(1)});
  violators->AppendRow({Value::Int64(20), Value::Int64(0), Value::Int64(1)});
  violators->AppendRow({Value::Int64(30), Value::Int64(0), Value::Int64(1)});
  violators->AppendRow({Value::Int64(40), Value::Int64(0), Value::Int64(1)});

  ErrorLabels labels;
  labels.ambiguous_entities.insert(10);
  labels.bad_rule_heads.insert(7);
  labels.incorrect_extractions.insert({2, 30, 102});

  auto classified = ClassifyViolators(*violators, *t_pi, nullptr, nullptr, labels);
  ASSERT_EQ(classified.size(), 4u);
  EXPECT_EQ(classified[0].source, ErrorSource::kAmbiguousEntity);
  EXPECT_EQ(classified[1].source, ErrorSource::kIncorrectRule);
  EXPECT_EQ(classified[2].source, ErrorSource::kIncorrectExtraction);
  EXPECT_EQ(classified[3].source, ErrorSource::kUnknown);

  auto dist = ErrorSourceDistribution(classified);
  EXPECT_DOUBLE_EQ(dist[ErrorSource::kAmbiguousEntity], 0.25);
  EXPECT_DOUBLE_EQ(dist[ErrorSource::kUnknown], 0.25);
}

TEST(ClassifyViolatorsTest, DetectsAmbiguousJoinKeyViaLineage) {
  // Fact 2 (inferred, NULL weight) is derived by joining facts 0 and 1
  // through entity 50, which is labeled ambiguous. Its subject entity 60
  // violates a constraint; the classifier should blame the join key.
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 50, 0, 60, 0, 0.9});
  AppendFactRow(t_pi.get(), 1, {2, 50, 0, 61, 0, 0.9});
  Fact inferred{3, 60, 0, 61, 0, std::nan("")};
  AppendFactRow(t_pi.get(), 2, inferred);

  auto t_phi = Table::Make(TPhiSchema());
  t_phi->AppendRow({Value::Int64(2), Value::Int64(0), Value::Int64(1),
                    Value::Float64(0.5)});
  auto graph = FactorGraph::FromTables(*t_pi, *t_phi);
  ASSERT_TRUE(graph.ok());

  auto violators = Table::Make(Schema({{"e", ColumnType::kInt64},
                                       {"Ce", ColumnType::kInt64},
                                       {"arg", ColumnType::kInt64}}));
  violators->AppendRow({Value::Int64(60), Value::Int64(0), Value::Int64(1)});

  ErrorLabels labels;
  labels.ambiguous_entities.insert(50);

  auto classified = ClassifyViolators(*violators, *t_pi, nullptr, &*graph, labels);
  ASSERT_EQ(classified.size(), 1u);
  EXPECT_EQ(classified[0].source, ErrorSource::kAmbiguousJoinKey);
}

TEST(QualityIntegrationTest, RuleCleaningImprovesPrecision) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.01;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  auto run = [&](double theta) {
    KnowledgeBase kb = skb->kb;
    *kb.mutable_rules() = TopThetaRules(kb.rules(), theta);
    RelationalKB rkb = BuildRelationalModel(kb);
    GroundingOptions options;
    options.max_iterations = 5;
    Grounder grounder(&rkb, options);
    EXPECT_TRUE(grounder.GroundAtoms().ok());
    return EvaluateInferred(*rkb.t_pi, skb->truth);
  };

  PrecisionReport raw = run(1.0);
  PrecisionReport cleaned = run(0.2);
  EXPECT_GT(cleaned.precision, raw.precision);
  EXPECT_LT(cleaned.inferred, raw.inferred);  // precision/recall trade
}

TEST(QualityIntegrationTest, ConstraintsRemoveInjectedViolations) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.01;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  Grounder grounder(&rkb, GroundingOptions{});
  auto deleted = grounder.ApplyConstraints();
  ASSERT_TRUE(deleted.ok());
  EXPECT_GT(*deleted, 0);  // injected errors violate constraints

  // After application, no Type-I violations remain.
  ExecContext ec;
  auto violators = FindConstraintViolators(rkb.t_pi, rkb.t_omega, &ec);
  ASSERT_TRUE(violators.ok());
  EXPECT_EQ((*violators)->NumRows(), 0);
}

TEST(QualityIntegrationTest, ViolatorClassificationFindsInjectedSources) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.02;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  GroundingOptions options;
  options.max_iterations = 4;
  Grounder grounder(&rkb, options);
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok());
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  ASSERT_TRUE(graph.ok());

  ExecContext ec;
  auto violators = FindConstraintViolators(rkb.t_pi, rkb.t_omega, &ec);
  ASSERT_TRUE(violators.ok());
  ASSERT_GT((*violators)->NumRows(), 10);

  auto classified =
      ClassifyViolators(**violators, *rkb.t_pi, rkb.t_omega.get(), &*graph,
                        skb->truth.labels);
  auto dist = ErrorSourceDistribution(classified);
  // Ambiguity must be a major detected source (Figure 7(b): 34%).
  EXPECT_GT(dist[ErrorSource::kAmbiguousEntity], 0.05);
  // The classifier should attribute most violations to *something*.
  EXPECT_LT(dist[ErrorSource::kUnknown], 0.5);
}


// --- Rule reliability feedback (Section 6.2.3 extension) -----------------------

TEST(RuleFeedbackTest, BadRulesAccumulateViolations) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.02;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  GroundingOptions options;
  options.max_iterations = 3;
  Grounder grounder(&rkb, options);
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok());
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  ASSERT_TRUE(graph.ok());
  ExecContext ec;
  auto violators = FindConstraintViolators(rkb.t_pi, rkb.t_omega, &ec);
  ASSERT_TRUE(violators.ok());

  auto feedback =
      ComputeRuleFeedback(skb->kb.rules(), *rkb.t_pi, **violators, *graph);
  ASSERT_TRUE(feedback.ok());
  ASSERT_EQ(feedback->size(), skb->kb.rules().size());

  double bad_sum = 0, good_sum = 0;
  int64_t bad_n = 0, good_n = 0;
  for (const RuleFeedback& f : *feedback) {
    if (f.total_derivations == 0) continue;
    if (skb->truth.incorrect_rule_indices.count(f.rule_index) > 0) {
      bad_sum += f.violation_rate;
      ++bad_n;
    } else {
      good_sum += f.violation_rate;
      ++good_n;
    }
  }
  ASSERT_GT(bad_n, 0);
  ASSERT_GT(good_n, 0);
  // Unsound rules violate constraints at a higher rate on average.
  EXPECT_GT(bad_sum / bad_n, good_sum / good_n);
}

TEST(RuleFeedbackTest, ApplyFeedbackLowersOffendersScores) {
  std::vector<HornRule> rules(2);
  rules[0].score = 0.8;
  rules[1].score = 0.8;
  std::vector<RuleFeedback> feedback(2);
  feedback[0].rule_index = 0;
  feedback[0].violation_rate = 0.5;
  feedback[1].rule_index = 1;
  feedback[1].violation_rate = 0.0;
  auto adjusted = ApplyFeedbackToScores(rules, feedback, 1.0);
  EXPECT_DOUBLE_EQ(adjusted[0].score, 0.4);
  EXPECT_DOUBLE_EQ(adjusted[1].score, 0.8);
}

TEST(RuleFeedbackTest, FeedbackImprovesRuleCleaning) {
  // The Section 6.2.3 idea end-to-end: clean rules by feedback-adjusted
  // scores and compare expansion precision against raw-score cleaning.
  SyntheticKbConfig cfg;
  cfg.scale = 0.02;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  // Pass 1: ground with everything, collect feedback.
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  GroundingOptions options;
  options.max_iterations = 3;
  Grounder grounder(&rkb, options);
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok());
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  ASSERT_TRUE(graph.ok());
  ExecContext ec;
  auto violators = FindConstraintViolators(rkb.t_pi, rkb.t_omega, &ec);
  ASSERT_TRUE(violators.ok());
  auto feedback =
      ComputeRuleFeedback(skb->kb.rules(), *rkb.t_pi, **violators, *graph);
  ASSERT_TRUE(feedback.ok());

  auto precision_with = [&](const std::vector<HornRule>& rules) {
    KnowledgeBase kb = skb->kb;
    *kb.mutable_rules() = TopThetaRules(rules, 0.3);
    RelationalKB clean_rkb = BuildRelationalModel(kb);
    GroundingOptions clean_options;
    clean_options.max_iterations = 4;
    Grounder clean_grounder(&clean_rkb, clean_options);
    EXPECT_TRUE(clean_grounder.GroundAtoms().ok());
    return EvaluateInferred(*clean_rkb.t_pi, skb->truth).precision;
  };

  double raw = precision_with(skb->kb.rules());
  double adjusted = precision_with(
      ApplyFeedbackToScores(skb->kb.rules(), *feedback, 1.0));
  EXPECT_GE(adjusted, raw);
}

}  // namespace
}  // namespace probkb
