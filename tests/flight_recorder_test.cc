#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "kb/relational_model.h"
#include "mpp/mpp_context.h"
#include "obs/flight_recorder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

constexpr int kSegments = 3;

std::string FreshPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/probkb_fr_" + name;
  std::filesystem::remove_all(path);
  return path;
}

std::vector<FrRecord> EventsOfKind(const std::vector<FrRecord>& timeline,
                                   FrEvent kind) {
  std::vector<FrRecord> out;
  for (const FrRecord& r : timeline) {
    if (r.event == kind) out.push_back(r);
  }
  return out;
}

// --- Core recorder mechanics ---------------------------------------------------

TEST(FlightRecorderTest, RecordsAndMergesInSequenceOrder) {
  FlightRecorder rec(/*capacity=*/64);
  rec.Record(FrEvent::kMotionBegin, "redistribute", 7);
  rec.Record(FrEvent::kFaultInjected, "segment_failure", 7, 0, 2);
  rec.Record(FrEvent::kMotionRecovered, "", 7, 1, 42);

  std::vector<FrRecord> timeline = rec.MergedTimeline();
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].seq, 0u);
  EXPECT_EQ(timeline[0].event, FrEvent::kMotionBegin);
  EXPECT_STREQ(timeline[0].detail, "redistribute");
  EXPECT_EQ(timeline[1].seq, 1u);
  EXPECT_EQ(timeline[1].event, FrEvent::kFaultInjected);
  EXPECT_EQ(timeline[1].a, 7);
  EXPECT_EQ(timeline[1].c, 2);
  EXPECT_EQ(timeline[2].seq, 2u);
  EXPECT_STREQ(timeline[2].detail, "");
  EXPECT_EQ(rec.dropped_events(), 0);

  // last_n keeps only the newest events.
  std::vector<FrRecord> tail = rec.MergedTimeline(/*last_n=*/1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].event, FrEvent::kMotionRecovered);
}

TEST(FlightRecorderTest, OverflowKeepsNewestAndCountsDropped) {
  FlightRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(FrEvent::kIterationBoundary, "grounder", i);
  }
  EXPECT_EQ(rec.dropped_events(), 6);
  std::vector<FrRecord> timeline = rec.MergedTimeline();
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline.front().a, 6);  // oldest survivor
  EXPECT_EQ(timeline.back().a, 9);
  // The dump advertises the loss.
  EXPECT_NE(rec.DumpText().find("6 older dropped"), std::string::npos);
}

TEST(FlightRecorderTest, ResetRestartsSequenceNumbering) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(FrEvent::kCheckpointCommit, "grounding", 1);
  rec.Record(FrEvent::kCheckpointCommit, "grounding", 2);
  rec.Reset();
  EXPECT_TRUE(rec.MergedTimeline().empty());
  EXPECT_EQ(rec.dropped_events(), 0);
  rec.Record(FrEvent::kCheckpointCommit, "grounding", 3);
  std::vector<FrRecord> timeline = rec.MergedTimeline();
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].seq, 0u);
  EXPECT_EQ(timeline[0].a, 3);
}

TEST(FlightRecorderTest, DisabledRecorderIsInert) {
  FlightRecorder rec(/*capacity=*/8);
  EXPECT_TRUE(rec.enabled());
  rec.set_enabled(false);
  rec.Record(FrEvent::kMotionBegin, "x", 1);
  EXPECT_TRUE(rec.MergedTimeline().empty());
  rec.set_enabled(true);
  rec.Record(FrEvent::kMotionBegin, "y", 2);
  EXPECT_EQ(rec.MergedTimeline().size(), 1u);
}

TEST(FlightRecorderTest, DetailIsTruncatedNotOverrun) {
  FlightRecorder rec(/*capacity=*/4);
  const std::string long_detail(100, 'z');
  rec.Record(FrEvent::kGibbsMilestone, long_detail);
  std::vector<FrRecord> timeline = rec.MergedTimeline();
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(std::string(timeline[0].detail), std::string(31, 'z'));
}

TEST(FlightRecorderTest, DumpShapesAreWellFormed) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(FrEvent::kMotionBegin, "broadcast", 3);
  rec.Record(FrEvent::kMotionFailed, "", 3, 4, 1);

  const std::string text = rec.DumpText();
  EXPECT_NE(text.find("=== flight recorder (2 events) ==="),
            std::string::npos);
  EXPECT_NE(text.find("motion_begin"), std::string::npos);
  EXPECT_NE(text.find("motion_failed"), std::string::npos);
  EXPECT_NE(text.find("broadcast"), std::string::npos);

  const std::string json = rec.DumpJson();
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"event\": \"motion_begin\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\": \"broadcast\""), std::string::npos);

  // Empty recorder still yields valid scaffolding.
  FlightRecorder empty(4);
  EXPECT_NE(empty.DumpText().find("(0 events)"), std::string::npos);
  EXPECT_NE(empty.DumpJson().find("\"events\": []"), std::string::npos);
}

TEST(FlightRecorderTest, WriteDumpRoundTrips) {
  FlightRecorder rec(/*capacity=*/8);
  rec.Record(FrEvent::kRetryAttempt, "", 5, 1, 2);
  const std::string path = FreshPath("dump.json");
  ASSERT_TRUE(rec.WriteDump(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), rec.DumpJson());

  EXPECT_FALSE(rec.WriteDump("/nonexistent-dir/x/y.json").ok());
}

// --- Pipeline instrumentation under chaos --------------------------------------

/// One seeded chaos grounding run against the global recorder; returns the
/// text dump. All journal payloads are deterministic quantities, so the
/// dump must not depend on the worker-thread count.
std::string ChaosDump(const KnowledgeBase& kb, uint64_t seed, int threads,
                      std::vector<FrRecord>* timeline_out = nullptr) {
  FlightRecorder* rec = FlightRecorder::Global();
  rec->Reset();

  FaultInjectionOptions fault_options;
  fault_options.enabled = true;
  fault_options.seed = seed;
  fault_options.segment_failure_prob = 0.3;
  fault_options.drop_batch_prob = 0.2;
  fault_options.duplicate_batch_prob = 0.2;
  FaultInjector injector(fault_options);

  GroundingOptions options;
  options.num_threads = threads;
  RelationalKB rkb = BuildRelationalModel(kb);
  MppGrounder grounder(rkb, kSegments, MppMode::kViews, options,
                       CostParams{}, &injector, RetryPolicy{});
  EXPECT_TRUE(grounder.GroundAtoms().ok());
  if (timeline_out != nullptr) *timeline_out = rec->MergedTimeline();
  return rec->DumpText();
}

/// Seeded chaos runs journal every fault with its recovery, and the merged
/// dump is byte-identical at 1, 2 and 4 worker threads: the recorder only
/// sees orchestrator-side milestones whose payloads carry no clocks or
/// thread ids. Three seeds (plus PROBKB_CHAOS_SEED when set) shake
/// different schedules.
TEST(FlightRecorderChaosTest, ChaosDumpIsByteIdenticalAcrossThreadCounts) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  std::vector<uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("PROBKB_CHAOS_SEED")) {
    seeds.push_back(static_cast<uint64_t>(std::strtoull(env, nullptr, 10)));
  }

  int64_t faults_seen = 0;
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::vector<FrRecord> timeline;
    const std::string dump1 = ChaosDump(kb, seed, /*threads=*/1, &timeline);
    const std::string dump2 = ChaosDump(kb, seed, /*threads=*/2);
    const std::string dump4 = ChaosDump(kb, seed, /*threads=*/4);
    EXPECT_EQ(dump1, dump2);
    EXPECT_EQ(dump1, dump4);

    // Every injected fault is journaled inside its motion's bracket:
    // motion_begin before it and motion_recovered after it, in sequence
    // order. Segment failures additionally drive the retry loop, so they
    // must show a retry_attempt; batch drop/duplicate faults are repaired
    // by reshipping without one.
    const std::vector<FrRecord> faults =
        EventsOfKind(timeline, FrEvent::kFaultInjected);
    faults_seen += static_cast<int64_t>(faults.size());
    for (const FrRecord& fault : faults) {
      bool began = false;
      bool recovered = false;
      bool retried = false;
      for (const FrRecord& r : timeline) {
        if (r.a != fault.a) continue;  // same motion index
        if (r.event == FrEvent::kMotionBegin && r.seq < fault.seq) {
          began = true;
        }
        if (r.event == FrEvent::kRetryAttempt && r.seq > fault.seq) {
          retried = true;
        }
        if (r.event == FrEvent::kMotionRecovered && r.seq > fault.seq) {
          recovered = true;
        }
      }
      EXPECT_TRUE(began) << "no motion_begin before fault at motion "
                         << fault.a;
      if (std::string(fault.detail) == "segment failure") {
        EXPECT_TRUE(retried) << "no retry_attempt after segment failure "
                             << "at motion " << fault.a;
      }
      EXPECT_TRUE(recovered) << "no motion_recovered after fault at motion "
                             << fault.a;
    }
    // Iteration boundaries are journaled too (the fixpoint ran).
    EXPECT_FALSE(
        EventsOfKind(timeline, FrEvent::kIterationBoundary).empty());
    // A clean run never journals motion_failed.
    EXPECT_TRUE(EventsOfKind(timeline, FrEvent::kMotionFailed).empty());
  }
  EXPECT_GT(faults_seen, 0) << "chaos sweep never injected a fault";

  FlightRecorder::Global()->Reset();
}

/// A schedule that fails the same segment on the first try and every retry
/// exhausts the retry budget; the post-mortem dump must tell the whole
/// story: every injected fault, every retry attempt, and the terminal
/// motion_failed record.
TEST(FlightRecorderChaosTest, TerminalFailureDumpContainsEveryFaultAndRetry) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  // Probe run: find a redistribute that ships tuples (it is guaranteed to
  // consult the injector).
  RelationalKB rkb_probe = BuildRelationalModel(kb);
  GroundingOptions probe_options;
  probe_options.max_iterations = 1;
  MppGrounder probe(rkb_probe, kSegments, MppMode::kViews, probe_options);
  ASSERT_TRUE(probe.GroundAtoms().ok());
  int64_t victim_motion = -1;
  int64_t motion_index = 0;
  for (const MppStep& step : probe.cost().steps()) {
    if (step.kind == MppStep::Kind::kCompute ||
        step.kind == MppStep::Kind::kRecovery) {
      continue;
    }
    if (step.kind == MppStep::Kind::kRedistribute &&
        step.tuples_shipped > 0 && victim_motion < 0) {
      victim_motion = motion_index;
    }
    ++motion_index;
  }
  ASSERT_GE(victim_motion, 0) << "no redistribute shipped tuples";

  const RetryPolicy retry;
  FaultInjectionOptions fault_options;
  fault_options.enabled = true;
  for (int attempt = 0; attempt <= retry.max_attempts + 1; ++attempt) {
    FaultEvent e;
    e.kind = FaultKind::kSegmentFailure;
    e.motion = victim_motion;
    e.attempt = attempt;
    e.segment = 0;
    fault_options.schedule.push_back(e);
  }
  FaultInjector injector(fault_options);

  FlightRecorder* rec = FlightRecorder::Global();
  rec->Reset();
  RelationalKB rkb = BuildRelationalModel(kb);
  MppGrounder grounder(rkb, kSegments, MppMode::kViews, GroundingOptions{},
                       CostParams{}, &injector, retry);
  Status st = grounder.GroundAtoms();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;

  const std::vector<FrRecord> timeline = rec->MergedTimeline();
  // Attempt 0 plus every struck retry 1..max_attempts are journaled; the
  // schedule's final entry is never consulted (the budget ran out first).
  const std::vector<FrRecord> faults =
      EventsOfKind(timeline, FrEvent::kFaultInjected);
  ASSERT_EQ(static_cast<int>(faults.size()), retry.max_attempts + 1);
  for (const FrRecord& fault : faults) {
    EXPECT_EQ(fault.a, victim_motion);
    EXPECT_EQ(fault.c, 0);  // victim segment
    EXPECT_STREQ(fault.detail, "segment failure");
  }
  const std::vector<FrRecord> retries =
      EventsOfKind(timeline, FrEvent::kRetryAttempt);
  ASSERT_EQ(static_cast<int>(retries.size()), retry.max_attempts);
  for (const FrRecord& r : retries) EXPECT_EQ(r.a, victim_motion);

  const std::vector<FrRecord> failed =
      EventsOfKind(timeline, FrEvent::kMotionFailed);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].a, victim_motion);
  EXPECT_EQ(failed[0].b, retry.max_attempts);
  EXPECT_TRUE(EventsOfKind(timeline, FrEvent::kMotionRecovered).empty());

  // The post-mortem file a CLI run would write carries the full story.
  const std::string path = FreshPath("terminal_post_mortem.json");
  ASSERT_TRUE(rec->WriteDump(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("\"fault_injected\""), std::string::npos);
  EXPECT_NE(dump.find("\"retry_attempt\""), std::string::npos);
  EXPECT_NE(dump.find("\"motion_failed\""), std::string::npos);

  rec->Reset();
}

/// Single-node grounding journals one iteration_boundary per fixpoint
/// iteration on the global recorder.
TEST(FlightRecorderPipelineTest, GrounderJournalsIterationBoundaries) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  FlightRecorder* rec = FlightRecorder::Global();
  rec->Reset();

  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  const std::vector<FrRecord> boundaries =
      EventsOfKind(rec->MergedTimeline(), FrEvent::kIterationBoundary);
  ASSERT_EQ(static_cast<int64_t>(boundaries.size()),
            grounder.stats().iterations);
  for (size_t i = 0; i < boundaries.size(); ++i) {
    EXPECT_EQ(boundaries[i].a, static_cast<int64_t>(i) + 1);  // 1-based
    EXPECT_STREQ(boundaries[i].detail, "grounder");
  }
  // The final iteration adds nothing (that is how the fixpoint stops) and
  // its running total matches the grounded atom table.
  EXPECT_EQ(boundaries.back().b, 0);
  EXPECT_EQ(boundaries.back().c, rkb.t_pi->NumRows());

  rec->Reset();
}

}  // namespace
}  // namespace probkb
