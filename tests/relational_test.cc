#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "relational/catalog.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

TEST(ValueTest, NullSemantics) {
  Value n = Value::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n, Value::Null());  // DISTINCT-style: NULL == NULL
  EXPECT_NE(n, Value::Int64(0));
  EXPECT_EQ(n.ToString(), "NULL");
}

TEST(ValueTest, Int64AndFloat64) {
  EXPECT_EQ(Value::Int64(7).i64(), 7);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).f64(), 2.5);
  EXPECT_EQ(Value::Int64(7), Value::Int64(7));
  EXPECT_NE(Value::Int64(7), Value::Int64(8));
  // Cross-type values are never equal, even when numerically equal.
  EXPECT_NE(Value::Int64(1), Value::Float64(1.0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
  EXPECT_EQ(Value::Float64(0.0).Hash(), Value::Float64(-0.0).Hash());
}

TEST(ValueTest, HashNormalizesNaNPayloads) {
  // Every NaN bit pattern hashes identically (like -0.0 vs 0.0), so the
  // batched column hasher and the scalar Value path can both canonicalize
  // without disagreeing on chain placement.
  const double quiet = std::numeric_limits<double>::quiet_NaN();
  const double negated = -quiet;  // differs in the sign bit
  double payload = quiet;
  uint64_t bits;
  std::memcpy(&bits, &payload, sizeof(bits));
  bits |= 0x5ULL;  // perturb mantissa payload bits, still a NaN
  std::memcpy(&payload, &bits, sizeof(bits));
  ASSERT_TRUE(std::isnan(negated));
  ASSERT_TRUE(std::isnan(payload));
  EXPECT_EQ(Value::Float64(quiet).Hash(), Value::Float64(negated).Hash());
  EXPECT_EQ(Value::Float64(quiet).Hash(), Value::Float64(payload).Hash());
  // NaN is still not equal to a non-NaN, and hashes apart from one.
  EXPECT_NE(Value::Float64(quiet).Hash(), Value::Float64(1.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::Null(), Value::Int64(-100));  // NULL sorts first
  EXPECT_LT(Value::Int64(5), Value::Float64(0.1));  // ints before floats
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", ColumnType::kInt64}, {"b", ColumnType::kFloat64}});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.GetFieldIndex("b"), 1);
  EXPECT_EQ(s.GetFieldIndex("missing"), -1);
  auto idx = s.GetFieldIndexChecked("missing");
  EXPECT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "(a INT64, b FLOAT64)");
}

TEST(SchemaTest, Equals) {
  Schema a({{"x", ColumnType::kInt64}});
  Schema b({{"x", ColumnType::kInt64}});
  Schema c({{"x", ColumnType::kFloat64}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

Schema TwoCol() {
  return Schema({{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
}

TEST(TableTest, AppendAndRead) {
  Table t(TwoCol());
  EXPECT_EQ(t.NumRows(), 0);
  t.AppendRow({Value::Int64(1), Value::Int64(2)});
  t.AppendRow({Value::Int64(3), Value::Int64(4)});
  EXPECT_EQ(t.NumRows(), 2);
  EXPECT_EQ(t.row(1)[0].i64(), 3);
  EXPECT_EQ(t.row(0).ToString(), "[1, 2]");
}

TEST(TableTest, AppendTableAndClone) {
  auto a = testutil::MakeTable(TwoCol(), {{1, 2}, {3, 4}});
  auto b = testutil::MakeTable(TwoCol(), {{5, 6}});
  a->AppendTable(*b);
  EXPECT_EQ(a->NumRows(), 3);
  auto c = a->Clone();
  c->AppendRow({Value::Int64(9), Value::Int64(9)});
  EXPECT_EQ(a->NumRows(), 3);  // clone is deep
  EXPECT_EQ(c->NumRows(), 4);
}

TEST(TableTest, FilterInPlace) {
  auto t = testutil::MakeTable(TwoCol(), {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  std::vector<bool> keep = {true, false, false, true};
  EXPECT_EQ(t->FilterInPlace(keep), 2);
  ASSERT_EQ(t->NumRows(), 2);
  EXPECT_EQ(t->row(0)[0].i64(), 1);
  EXPECT_EQ(t->row(1)[0].i64(), 4);
}

TEST(TableTest, SortedRowsIsOrderInsensitive) {
  auto a = testutil::MakeTable(TwoCol(), {{3, 4}, {1, 2}});
  auto b = testutil::MakeTable(TwoCol(), {{1, 2}, {3, 4}});
  EXPECT_EQ(a->SortedRows(), b->SortedRows());
}

TEST(TableTest, RowKeyHashAndEquality) {
  auto t = testutil::MakeTable(TwoCol(), {{1, 2}, {1, 3}, {2, 2}});
  std::vector<int> col0 = {0};
  EXPECT_EQ(HashRowKey(t->row(0), col0), HashRowKey(t->row(1), col0));
  EXPECT_TRUE(RowKeyEquals(t->row(0), t->row(1), col0, col0));
  EXPECT_FALSE(RowKeyEquals(t->row(0), t->row(2), col0, col0));
  // Key order matters: (1,2) hashed as (a,b) differs from (2,1).
  std::vector<int> ab = {0, 1}, ba = {1, 0};
  EXPECT_FALSE(RowKeyEquals(t->row(0), t->row(0), ab, ba));
}

TEST(TableTest, ByteSizeGrowsWithRows) {
  Table t(TwoCol());
  int64_t empty = t.ByteSize();
  t.AppendRow({Value::Int64(1), Value::Int64(2)});
  EXPECT_GT(t.ByteSize(), empty);
}

Schema MixedCol() {
  return Schema({{"a", ColumnType::kInt64}, {"w", ColumnType::kFloat64}});
}

TEST(TableTest, ColumnarAccessorsAndNulls) {
  Table t(MixedCol());
  t.AppendRow({Value::Int64(7), Value::Float64(0.5)});
  t.AppendRow({Value::Null(), Value::Null()});
  t.AppendRow({Value::Int64(9), Value::Float64(1.5)});
  // Raw column data: null cells hold the zero sentinel, the bitmap decides.
  EXPECT_EQ(t.Int64Data(0)[0], 7);
  EXPECT_EQ(t.Int64Data(0)[1], 0);
  EXPECT_EQ(t.Int64Data(0)[2], 9);
  EXPECT_DOUBLE_EQ(t.Float64Data(1)[2], 1.5);
  EXPECT_TRUE(t.ColumnHasNulls(0));
  EXPECT_TRUE(t.IsNull(1, 0));
  EXPECT_FALSE(t.IsNull(0, 0));
  // RowView reads through the facade agree with the raw columns.
  EXPECT_TRUE(t.row(1)[0].is_null());
  EXPECT_TRUE(t.row(1)[1].is_null());
  EXPECT_EQ(t.row(2)[0].i64(), 9);
  // A null int cell is not Int64(0): the sentinel never leaks.
  EXPECT_NE(t.row(1)[0], Value::Int64(0));
}

TEST(TableTest, SetFloat64PatchesInPlace) {
  Table t(MixedCol());
  t.AppendRow({Value::Int64(1), Value::Null()});
  t.AppendRow({Value::Int64(2), Value::Float64(0.25)});
  EXPECT_TRUE(t.row(0)[1].is_null());
  t.SetFloat64(0, 1, 0.75);
  EXPECT_FALSE(t.row(0)[1].is_null());
  EXPECT_DOUBLE_EQ(t.row(0)[1].f64(), 0.75);
  EXPECT_DOUBLE_EQ(t.row(1)[1].f64(), 0.25);  // neighbours untouched
  EXPECT_FALSE(t.ColumnHasNulls(1));
}

TEST(TableTest, BatchHashMatchesScalarHash) {
  Table t(MixedCol());
  t.AppendRow({Value::Int64(3), Value::Float64(-0.0)});
  t.AppendRow({Value::Null(), Value::Float64(2.5)});
  t.AppendRow({Value::Int64(-8), Value::Null()});
  const std::vector<int> keys = {0, 1};
  std::vector<size_t> batched(static_cast<size_t>(t.NumRows()));
  t.HashRows(keys, 0, t.NumRows(), batched.data());
  for (int64_t i = 0; i < t.NumRows(); ++i) {
    EXPECT_EQ(batched[static_cast<size_t>(i)], HashRowKey(t.row(i), keys))
        << "row " << i;
  }
}

TEST(TableTest, AppendRowsRange) {
  auto src = testutil::MakeTable(TwoCol(), {{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  Table dst(TwoCol());
  dst.AppendRows(*src, 1, 3);
  ASSERT_EQ(dst.NumRows(), 2);
  EXPECT_EQ(dst.row(0)[0].i64(), 3);
  EXPECT_EQ(dst.row(1)[0].i64(), 5);
}

TEST(CatalogTest, RegisterGetDrop) {
  Catalog catalog;
  auto t = Table::Make(TwoCol());
  ASSERT_TRUE(catalog.Register("t1", t).ok());
  EXPECT_TRUE(catalog.Contains("t1"));
  EXPECT_EQ(catalog.Register("t1", t).code(), StatusCode::kAlreadyExists);
  auto got = catalog.Get("t1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), t.get());
  EXPECT_EQ(catalog.Get("nope").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(catalog.Drop("t1").ok());
  EXPECT_FALSE(catalog.Contains("t1"));
  EXPECT_EQ(catalog.Drop("t1").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace probkb
