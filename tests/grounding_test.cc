#include "grounding/grounder.h"

#include <gtest/gtest.h>

#include "datagen/synthetic_kb.h"
#include "engine/ops.h"
#include "grounding/partition_queries.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

using testutil::BuildPaperExampleKB;
using testutil::TPiAtomSet;

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kb_ = BuildPaperExampleKB();
    ASSERT_TRUE(kb_.Validate().ok());
    rkb_ = BuildRelationalModel(kb_);
    rg_ = kb_.entities().Lookup("Ruth Gruber");
    nyc_ = kb_.entities().Lookup("New York City");
    br_ = kb_.entities().Lookup("Brooklyn");
    w_ = kb_.classes().Lookup("Writer");
    c_ = kb_.classes().Lookup("City");
    p_ = kb_.classes().Lookup("Place");
    born_ = kb_.relations().Lookup("born_in");
    live_ = kb_.relations().Lookup("live_in");
    grow_ = kb_.relations().Lookup("grow_up_in");
    located_ = kb_.relations().Lookup("located_in");
  }

  KnowledgeBase kb_;
  RelationalKB rkb_;
  EntityId rg_, nyc_, br_;
  ClassId w_, c_, p_;
  RelationId born_, live_, grow_, located_;
};

TEST_F(PaperExampleTest, RelationalModelShapes) {
  EXPECT_EQ(rkb_.t_pi->NumRows(), 2);
  EXPECT_EQ(rkb_.m[0]->NumRows(), 4);  // M1
  EXPECT_EQ(rkb_.m[1]->NumRows(), 0);  // M2
  EXPECT_EQ(rkb_.m[2]->NumRows(), 2);  // M3
  EXPECT_EQ(rkb_.t_omega->NumRows(), 1);
  EXPECT_EQ(rkb_.next_fact_id, 2);
}

TEST_F(PaperExampleTest, FirstIterationInfersM1AndM3Atoms) {
  Grounder grounder(&rkb_, GroundingOptions{});
  auto added = grounder.GroundAtomsIteration();
  ASSERT_TRUE(added.ok()) << added.status();
  // Four M1 conclusions plus located_in(Brooklyn, NYC) from the born_in
  // pair (both partitions are applied against the initial snapshot).
  EXPECT_EQ(*added, 5);

  auto atoms = TPiAtomSet(*rkb_.t_pi);
  EXPECT_TRUE(atoms.count({live_, rg_, w_, nyc_, c_}));
  EXPECT_TRUE(atoms.count({live_, rg_, w_, br_, p_}));
  EXPECT_TRUE(atoms.count({grow_, rg_, w_, nyc_, c_}));
  EXPECT_TRUE(atoms.count({grow_, rg_, w_, br_, p_}));
  EXPECT_TRUE(atoms.count({located_, br_, p_, nyc_, c_}));
}

TEST_F(PaperExampleTest, ClosureReachesFixpoint) {
  Grounder grounder(&rkb_, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  // 2 base facts + 5 inferred; the second iteration re-derives
  // located_in from live_in, which is already present -> fixpoint.
  EXPECT_EQ(rkb_.t_pi->NumRows(), 7);
  EXPECT_EQ(grounder.stats().iterations, 2);
  EXPECT_EQ(grounder.stats().iteration_new_atoms.back(), 0);
}

TEST_F(PaperExampleTest, GroundFactorsMatchesFigure3) {
  Grounder grounder(&rkb_, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto t_phi = grounder.GroundFactors();
  ASSERT_TRUE(t_phi.ok()) << t_phi.status();

  // Figure 3(e): 4 M1 factors, 2 M3 factors (one per rule), 2 singletons.
  EXPECT_EQ((*t_phi)->NumRows(), 8);

  auto canon = testutil::CanonicalizeFactors(**t_phi, *rkb_.t_pi);
  using testutil::AtomKey;
  AtomKey born_nyc{born_, rg_, w_, nyc_, c_};
  AtomKey born_br{born_, rg_, w_, br_, p_};
  AtomKey live_nyc{live_, rg_, w_, nyc_, c_};
  AtomKey live_br{live_, rg_, w_, br_, p_};
  AtomKey loc{located_, br_, p_, nyc_, c_};

  auto contains = [&](const testutil::CanonicalFactor& f) {
    for (const auto& g : canon) {
      if (g == f) return true;
    }
    return false;
  };
  // live_in(RG, NYC) <- born_in(RG, NYC), weight 1.53.
  EXPECT_TRUE(contains({live_nyc, {born_nyc}, 1530}));
  // live_in(RG, Br) <- born_in(RG, Br), weight 1.40.
  EXPECT_TRUE(contains({live_br, {born_br}, 1400}));
  // located_in <- born_in(RG, Br) & born_in(RG, NYC), weight 0.52.
  EXPECT_TRUE(contains({loc, {born_br, born_nyc}, 520}));
  // located_in <- live_in(RG, Br) & live_in(RG, NYC), weight 0.32.
  EXPECT_TRUE(contains({loc, {live_br, live_nyc}, 320}));
  // Singletons for the two extracted facts.
  EXPECT_TRUE(contains({born_nyc, {}, 960}));
  EXPECT_TRUE(contains({born_br, {}, 930}));
}

TEST_F(PaperExampleTest, FactorsHaveNoDuplicatesWithinPartition) {
  // Proposition 1: Query 2-i emits no duplicate (I1, I2, I3).
  Grounder grounder(&rkb_, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  for (int p = 1; p <= kNumRuleStructures; ++p) {
    if (rkb_.m[static_cast<size_t>(p - 1)]->NumRows() == 0) continue;
    ExecContext ec;
    auto factors = GroundFactorsForPartition(
        p, rkb_.m[static_cast<size_t>(p - 1)], rkb_.t_pi, rkb_.t_pi,
        rkb_.t_pi, &ec);
    ASSERT_TRUE(factors.ok());
    auto rows = (*factors)->SortedRows();
    auto unique_end = std::unique(rows.begin(), rows.end());
    EXPECT_EQ(unique_end, rows.end())
        << "duplicate factor in partition " << p;
  }
}

TEST_F(PaperExampleTest, ConstraintRemovesAmbiguousBornIn) {
  // born_in is Type-I functional with degree 1; Ruth Gruber is born in two
  // places *of different classes* (City and Place), which Query 3 groups
  // separately — so no violation is flagged on the clean example.
  Grounder grounder(&rkb_, GroundingOptions{});
  auto deleted = grounder.ApplyConstraints();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 0);

  // Add a second born_in City fact: now (born_in, RG, W, C) has 2 rows >
  // degree 1, so RG is flagged and every fact keyed by (RG, W) as x is
  // removed.
  EntityId chicago = kb_.entities().GetOrAdd("Chicago");
  AppendFactRow(rkb_.t_pi.get(), rkb_.next_fact_id++,
                {born_, rg_, w_, chicago, c_, 0.5});
  auto deleted2 = grounder.ApplyConstraints();
  ASSERT_TRUE(deleted2.ok());
  EXPECT_EQ(*deleted2, 3);  // all three born_in facts have x = (RG, W)
  EXPECT_EQ(rkb_.t_pi->NumRows(), 0);
}

TEST_F(PaperExampleTest, StatementCountIsPerPartitionNotPerRule) {
  Grounder grounder(&rkb_, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  // Two non-empty partitions, two iterations -> 4 statements, although 6
  // rules exist. Tuffy-T would have issued 6 per iteration.
  EXPECT_EQ(grounder.stats().statements, 4);
}

TEST(MergeAtomsTest, AssignsFreshIdsAndDedupes) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {7, 1, 2, 3, 4, 0.5});
  FactId next = 1;

  auto atoms = Table::Make(AtomSchema());
  atoms->AppendRow({Value::Int64(7), Value::Int64(1), Value::Int64(2),
                    Value::Int64(3), Value::Int64(4)});  // duplicate
  atoms->AppendRow({Value::Int64(8), Value::Int64(1), Value::Int64(2),
                    Value::Int64(3), Value::Int64(4)});  // new
  atoms->AppendRow({Value::Int64(8), Value::Int64(1), Value::Int64(2),
                    Value::Int64(3), Value::Int64(4)});  // dup within batch

  EXPECT_EQ(MergeAtomsIntoTPi(t_pi.get(), *atoms, &next), 1);
  EXPECT_EQ(t_pi->NumRows(), 2);
  EXPECT_EQ(next, 2);
  RowView added = t_pi->row(1);
  EXPECT_EQ(added[tpi::kI].i64(), 1);
  EXPECT_TRUE(added[tpi::kW].is_null());
}


// --- Semi-naive evaluation ----------------------------------------------------

TEST_F(PaperExampleTest, SemiNaiveMatchesNaiveClosure) {
  RelationalKB rkb2 = BuildRelationalModel(kb_);
  GroundingOptions semi;
  semi.evaluation = EvaluationMode::kSemiNaive;
  Grounder grounder_semi(&rkb2, semi);
  ASSERT_TRUE(grounder_semi.GroundAtoms().ok());

  Grounder grounder_naive(&rkb_, GroundingOptions{});
  ASSERT_TRUE(grounder_naive.GroundAtoms().ok());

  EXPECT_EQ(TPiAtomSet(*rkb2.t_pi), TPiAtomSet(*rkb_.t_pi));
}

TEST_F(PaperExampleTest, SemiNaiveRejectsConstraintsInLoop) {
  GroundingOptions options;
  options.evaluation = EvaluationMode::kSemiNaive;
  options.apply_constraints_each_iteration = true;
  Grounder grounder(&rkb_, options);
  auto added = grounder.GroundAtomsIteration();
  EXPECT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kInvalidArgument);
}

// Property: semi-naive evaluation reaches exactly the naive closure on
// random synthetic KBs, and does strictly less probe work after the first
// iteration.
class SemiNaivePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SemiNaivePropertyTest, ClosuresMatch) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.003;
  cfg.seed = static_cast<uint64_t>(GetParam()) * 131 + 7;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  RelationalKB naive_rkb = BuildRelationalModel(skb->kb);
  GroundingOptions naive_options;
  naive_options.max_iterations = 6;
  Grounder naive(&naive_rkb, naive_options);
  ASSERT_TRUE(naive.GroundAtoms().ok());

  RelationalKB semi_rkb = BuildRelationalModel(skb->kb);
  GroundingOptions semi_options;
  semi_options.max_iterations = 6;
  semi_options.evaluation = EvaluationMode::kSemiNaive;
  Grounder semi(&semi_rkb, semi_options);
  ASSERT_TRUE(semi.GroundAtoms().ok());

  EXPECT_EQ(testutil::TPiAtomSet(*semi_rkb.t_pi),
            testutil::TPiAtomSet(*naive_rkb.t_pi));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiNaivePropertyTest, ::testing::Range(0, 5));

TEST(GroundingMonotonicityTest, TPiOnlyGrowsWithoutConstraints) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.003;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  GroundingOptions options;
  options.max_iterations = 5;
  Grounder grounder(&rkb, options);
  int64_t prev = rkb.t_pi->NumRows();
  for (int i = 0; i < 5; ++i) {
    auto added = grounder.GroundAtomsIteration();
    ASSERT_TRUE(added.ok());
    EXPECT_EQ(rkb.t_pi->NumRows(), prev + *added);
    EXPECT_GE(*added, 0);
    prev = rkb.t_pi->NumRows();
  }
}


// --- Constraint degrees and Type II ---------------------------------------------

KnowledgeBase DegreeKb(FunctionalityType type, int64_t degree) {
  KnowledgeBase kb;
  RelationId rel = kb.relations().GetOrAdd("lives_in");
  ClassId person = kb.classes().GetOrAdd("Person");
  ClassId country = kb.classes().GetOrAdd("Country");
  kb.AddConstraint({rel, type, degree});
  // ann lives in 3 countries; bob in 1. For Type II: 3 people live in one
  // country (fine) but the constraint keys the country side.
  EntityId ann = kb.entities().GetOrAdd("ann");
  EntityId bob = kb.entities().GetOrAdd("bob");
  EntityId cid = kb.entities().GetOrAdd("cid");
  EntityId fr = kb.entities().GetOrAdd("fr");
  EntityId de = kb.entities().GetOrAdd("de");
  EntityId jp = kb.entities().GetOrAdd("jp");
  kb.AddFact({rel, ann, person, fr, country, 0.9});
  kb.AddFact({rel, ann, person, de, country, 0.9});
  kb.AddFact({rel, ann, person, jp, country, 0.9});
  kb.AddFact({rel, bob, person, fr, country, 0.9});
  kb.AddFact({rel, cid, person, fr, country, 0.9});
  return kb;
}

TEST(ConstraintDegreeTest, PseudoFunctionalAllowsUpToDegree) {
  // Type I, degree 3: ann's 3 countries are within the 1-delta mapping.
  {
    KnowledgeBase kb = DegreeKb(FunctionalityType::kTypeI, 3);
    RelationalKB rkb = BuildRelationalModel(kb);
    Grounder grounder(&rkb, GroundingOptions{});
    auto deleted = grounder.ApplyConstraints();
    ASSERT_TRUE(deleted.ok());
    EXPECT_EQ(*deleted, 0);
  }
  // Degree 2: ann violates; all three of her facts go (bob and cid stay).
  {
    KnowledgeBase kb = DegreeKb(FunctionalityType::kTypeI, 2);
    RelationalKB rkb = BuildRelationalModel(kb);
    Grounder grounder(&rkb, GroundingOptions{});
    auto deleted = grounder.ApplyConstraints();
    ASSERT_TRUE(deleted.ok());
    EXPECT_EQ(*deleted, 3);
    EXPECT_EQ(rkb.t_pi->NumRows(), 2);
  }
}

TEST(ConstraintDegreeTest, TypeIIKeysTheObjectSide) {
  // Type II, degree 2: fr has 3 inhabitants -> fr is the violator and all
  // facts with y = fr are deleted; ann keeps her other countries.
  KnowledgeBase kb = DegreeKb(FunctionalityType::kTypeII, 2);
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  auto deleted = grounder.ApplyConstraints();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 3);
  auto atoms = TPiAtomSet(*rkb.t_pi);
  EntityId fr = kb.entities().Lookup("fr");
  for (const auto& atom : atoms) {
    EXPECT_NE(std::get<3>(atom), fr);
  }
  EXPECT_EQ(rkb.t_pi->NumRows(), 2);  // ann-de and ann-jp survive
}

TEST(ConstraintDegreeTest, BannedEntitiesStayBanned) {
  KnowledgeBase kb = DegreeKb(FunctionalityType::kTypeI, 2);
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  ASSERT_TRUE(grounder.ApplyConstraints().ok());
  EXPECT_EQ(grounder.banned_x().size(), 1u);
  // Re-application is a no-op (idempotent).
  auto again = grounder.ApplyConstraints();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
  EXPECT_EQ(grounder.banned_x().size(), 1u);
}

}  // namespace
}  // namespace probkb
