#include "tuffy/tuffy_grounder.h"

#include <gtest/gtest.h>

#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

TEST(TuffyTest, LoadCreatesOneTablePerRelation) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  TuffyGrounder tuffy(kb, GroundingOptions{});
  ASSERT_TRUE(tuffy.Load().ok());
  EXPECT_EQ(tuffy.catalog().NumTables(), kb.relations().size());
  // Two statements (CREATE + COPY) per relation; ProbKB loads one table.
  EXPECT_EQ(tuffy.stats().statements, 2 * kb.relations().size());
  auto born = tuffy.catalog().Get("pred_born_in");
  ASSERT_TRUE(born.ok());
  EXPECT_EQ((*born)->NumRows(), 2);
}

TEST(TuffyTest, GroundsPaperExampleLikeProbKB) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder probkb(&rkb, GroundingOptions{});
  ASSERT_TRUE(probkb.GroundAtoms().ok());
  auto phi_probkb = probkb.GroundFactors();
  ASSERT_TRUE(phi_probkb.ok());

  TuffyGrounder tuffy(kb, GroundingOptions{});
  ASSERT_TRUE(tuffy.GroundAtoms().ok());
  auto phi_tuffy = tuffy.GroundFactors();
  ASSERT_TRUE(phi_tuffy.ok()) << phi_tuffy.status();

  TablePtr tpi_tuffy = tuffy.ToTPi();
  EXPECT_EQ(testutil::TPiAtomSet(*tpi_tuffy),
            testutil::TPiAtomSet(*rkb.t_pi));
  EXPECT_EQ(testutil::CanonicalizeFactors(**phi_tuffy, *tpi_tuffy),
            testutil::CanonicalizeFactors(**phi_probkb, *rkb.t_pi));
}

TEST(TuffyTest, StatementCountIsPerRule) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  TuffyGrounder tuffy(kb, GroundingOptions{});
  ASSERT_TRUE(tuffy.Load().ok());
  int64_t after_load = tuffy.stats().statements;
  auto added = tuffy.GroundAtomsIteration();
  ASSERT_TRUE(added.ok());
  // One query per rule (6 rules), vs ProbKB's one per non-empty partition.
  EXPECT_EQ(tuffy.stats().statements - after_load,
            static_cast<int64_t>(kb.rules().size()));
}

// Property: on random synthetic KBs, Tuffy-T and ProbKB reach the same
// closure and the same canonical factor multiset. This is the core
// cross-system correctness guarantee behind the Table 3 / Figure 6
// comparisons.
class TuffyEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TuffyEquivalenceTest, ClosureAndFactorsMatchProbKB) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.002;
  cfg.seed = static_cast<uint64_t>(GetParam()) * 7919 + 13;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok()) << skb.status();

  GroundingOptions options;
  options.max_iterations = 3;

  RelationalKB rkb = BuildRelationalModel(skb->kb);
  Grounder probkb(&rkb, options);
  ASSERT_TRUE(probkb.GroundAtoms().ok());
  auto phi_probkb = probkb.GroundFactors();
  ASSERT_TRUE(phi_probkb.ok());

  TuffyGrounder tuffy(skb->kb, options);
  ASSERT_TRUE(tuffy.GroundAtoms().ok());
  auto phi_tuffy = tuffy.GroundFactors();
  ASSERT_TRUE(phi_tuffy.ok());

  TablePtr tpi_tuffy = tuffy.ToTPi();
  EXPECT_EQ(testutil::TPiAtomSet(*tpi_tuffy),
            testutil::TPiAtomSet(*rkb.t_pi));
  EXPECT_EQ(testutil::CanonicalizeFactors(**phi_tuffy, *tpi_tuffy),
            testutil::CanonicalizeFactors(**phi_probkb, *rkb.t_pi));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TuffyEquivalenceTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace probkb
