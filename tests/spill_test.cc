// Out-of-core layer tests: spill-file round trips, crash/corruption
// recovery, budget accounting, and the headline guarantee — grace-hash
// joins and budgeted grounding are bit-identical to the in-memory path at
// every thread and segment count.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "datagen/synthetic_kb.h"
#include "engine/ops.h"
#include "engine/plan.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "obs/stats_registry.h"
#include "relational/spill.h"
#include "tests/test_util.h"
#include "util/mem_budget.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace probkb {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test spill directory under the system temp dir.
class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("probkb_spill_test." +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir_;
};

Schema WideSchema() {
  return Schema({{"k", ColumnType::kInt64},
                 {"v", ColumnType::kInt64},
                 {"w", ColumnType::kFloat64}});
}

/// Random table with duplicate keys, a float column, and some nulls.
TablePtr MakeRandomTable(int64_t rows, uint64_t seed, int64_t key_space) {
  auto t = Table::Make(WideSchema());
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    Value k = rng.Bernoulli(0.02)
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(
                        static_cast<uint64_t>(key_space))));
    t->AppendRow({k, Value::Int64(i), Value::Float64(rng.UniformDouble())});
  }
  return t;
}

// --- Spill file round trip --------------------------------------------------

TEST_F(SpillTest, SpillFileRoundTripIsByteIdentical) {
  MemoryBudget budget(32 << 20);
  SpillContext ctx(dir_, &budget, /*page_bytes=*/4096);
  ASSERT_TRUE(ctx.Prepare().ok());

  auto t = MakeRandomTable(5000, /*seed=*/7, /*key_space=*/100);
  auto file = SpillFile::Create(&ctx, ctx.NextFilePath("rt"));
  ASSERT_TRUE(file.ok());
  // Multiple pages: split the table into three chunks.
  for (int64_t begin = 0; begin < t->NumRows(); begin += 2000) {
    const int64_t end = std::min<int64_t>(begin + 2000, t->NumRows());
    auto chunk = Table::Make(t->schema());
    std::vector<int> all_cols = {0, 1, 2};
    chunk->AppendProjectedRows(*t, all_cols, begin, end);
    ASSERT_TRUE((*file)->AppendPage(*chunk).ok());
  }
  ASSERT_TRUE((*file)->Commit().ok());

  auto back = ReadSpillFile(&ctx, t->schema(), (*file)->path());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(TablesEqualExact(*t, **back));

  // Byte identity, not just value equality: whole-row hashes must match.
  std::vector<int> cols = {0, 1, 2};
  std::vector<size_t> h1(static_cast<size_t>(t->NumRows()));
  std::vector<size_t> h2(static_cast<size_t>(t->NumRows()));
  t->HashRows(cols, 0, t->NumRows(), h1.data());
  (*back)->HashRows(cols, 0, (*back)->NumRows(), h2.data());
  EXPECT_EQ(h1, h2);
  EXPECT_GT(ctx.stats().pages_written.load(), 0);
  EXPECT_EQ(ctx.stats().bytes_read.load(), ctx.stats().bytes_written.load());
}

// --- Crash / debris sweep ---------------------------------------------------

TEST_F(SpillTest, CrashMidSpillLeavesNoReadablePagesAfterSweep) {
  MemoryBudget budget(32 << 20);
  SpillContext ctx(dir_, &budget, 4096);
  ASSERT_TRUE(ctx.Prepare().ok());

  auto t = MakeRandomTable(1000, 11, 50);
  const std::string path = ctx.NextFilePath("crash");
  auto file = SpillFile::Create(&ctx, path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->AppendPage(*t).ok());
  // Simulated crash between write and commit: the staging file stays on
  // disk, the committed path never appears.
  (*file)->SimulateCrashForTest();
  file->reset();
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".staging"));

  // Startup sweep (what SpillContext::Prepare runs) removes the debris;
  // afterwards no *.spill or *.spill.staging file is readable.
  auto swept = SweepSpillDirectory(dir_);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 1);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".spill"), std::string::npos)
        << "stale spill debris survived the sweep: " << name;
  }
}

TEST_F(SpillTest, SweepSparesCommittedFilesOfOtherKinds) {
  MemoryBudget budget(32 << 20);
  SpillContext ctx(dir_, &budget, 4096);
  ASSERT_TRUE(ctx.Prepare().ok());
  // A checkpoint-like bystander file must survive the sweep.
  const std::string bystander = dir_ + "/checkpoint.meta";
  {
    std::FILE* f = std::fopen(bystander.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("keep me", f);
    std::fclose(f);
  }
  auto t = MakeRandomTable(100, 3, 10);
  auto file = SpillFile::Create(&ctx, ctx.NextFilePath("left"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->AppendPage(*t).ok());
  (*file)->SimulateCrashForTest();
  file->reset();
  auto swept = SweepSpillDirectory(dir_);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 1);
  EXPECT_TRUE(fs::exists(bystander));
}

// --- Corruption: checksum -> retry -> recover -------------------------------

TEST_F(SpillTest, TransientPageCorruptionRetriesAndRecovers) {
  MemoryBudget budget(32 << 20);
  SpillContext ctx(dir_, &budget, 4096);
  ASSERT_TRUE(ctx.Prepare().ok());
  auto t = MakeRandomTable(2000, 23, 64);
  auto file = SpillFile::Create(&ctx, ctx.NextFilePath("corrupt"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->AppendPage(*t).ok());
  ASSERT_TRUE((*file)->Commit().ok());

  // One injected bad read: the checksum rejects the frame, the retry
  // re-reads it clean.
  ctx.set_corrupt_page_reads_for_test(1);
  auto back = ReadSpillFile(&ctx, t->schema(), (*file)->path());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(TablesEqualExact(*t, **back));
  EXPECT_EQ(ctx.stats().checksum_retries.load(), 1);

  // Two injected bad reads of the same page: both attempts fail, the read
  // surfaces data loss instead of returning a damaged table.
  ctx.set_corrupt_page_reads_for_test(2);
  auto bad = ReadSpillFile(&ctx, t->schema(), (*file)->path());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
}

// --- Budget accounting ------------------------------------------------------

TEST_F(SpillTest, ResidentSizeExcludesSpilledPartitionsAndPinsCharge) {
  MemoryBudget budget(64 << 20);
  SpillContext ctx(dir_, &budget, /*page_bytes=*/2048);
  ASSERT_TRUE(ctx.Prepare().ok());

  auto t = MakeRandomTable(20000, 5, 1 << 20);
  SpillableTable parts(&ctx, t->schema(), /*num_parts=*/4, /*bit_offset=*/0,
                       "acct", /*with_row_ids=*/false);
  std::vector<int> keys = {0};
  std::vector<size_t> hashes(static_cast<size_t>(t->NumRows()));
  t->HashRows(keys, 0, t->NumRows(), hashes.data());
  ASSERT_TRUE(parts.AppendPartitioned(*t, hashes, 0, t->NumRows()).ok());
  ASSERT_TRUE(parts.Finish().ok());

  // With 2 KiB pages and ~500 KiB of input, every partition spilled; the
  // resident size must not count the on-disk bytes (the satellite-3 bug:
  // spilled partitions double-counted as resident).
  EXPECT_GT(ctx.stats().partitions_spilled.load(), 0);
  EXPECT_LT(parts.ResidentByteSize(), t->ByteSize() / 4);
  const int64_t pinned_before = budget.pinned_bytes();

  auto pinned = parts.PinPartition(0);
  ASSERT_TRUE(pinned.ok());
  ASSERT_GT((*pinned)->NumRows(), 0);
  // Pinning pages the partition in and charges exactly its bytes.
  EXPECT_EQ(budget.pinned_bytes() - pinned_before, (*pinned)->ByteSize());
  EXPECT_GE(parts.ResidentByteSize(), (*pinned)->ByteSize());
  parts.UnpinPartition(0);
  EXPECT_EQ(budget.pinned_bytes(), pinned_before);

  // All rows land somewhere; nothing is lost to the spill round trip.
  int64_t total = 0;
  for (int p = 0; p < 4; ++p) total += parts.PartitionRows(p);
  EXPECT_EQ(total, t->NumRows());
}

// --- Grace-hash join bit-identity -------------------------------------------

struct JoinCase {
  const char* name;
  JoinType type;
  bool residual;
};

TablePtr RunJoin(const TablePtr& left, const TablePtr& right, JoinType type,
                 bool residual, SpillContext* spill, ThreadPool* pool) {
  std::vector<JoinOutputCol> out_cols;
  if (type == JoinType::kInner) {
    out_cols = {JoinOutputCol::Left(0, "k"), JoinOutputCol::Left(1, "lv"),
                JoinOutputCol::Right(1, "rv"), JoinOutputCol::Right(2, "rw")};
  }
  RowPredicate pred;
  if (residual) {
    // Sees the concatenated logical rows: left (3 cols) then right.
    pred = [](const RowView& r) {
      return r[1].i64() % 3 != 0 || r[4].i64() % 2 == 0;
    };
  }
  auto plan = HashJoin(Scan(left), Scan(right), {0}, {0}, type, out_cols,
                       pred);
  ExecContext ctx;
  ctx.set_spill(spill);
  ctx.set_thread_pool(pool);
  auto out = plan->Execute(&ctx);
  EXPECT_TRUE(out.ok()) << out.status();
  return out.ok() ? *out : nullptr;
}

TEST_F(SpillTest, GraceJoinBitIdenticalToInMemoryAtEveryThreadCount) {
  auto left = MakeRandomTable(20000, 101, /*key_space=*/4000);
  auto right = MakeRandomTable(15000, 202, /*key_space=*/4000);

  const JoinCase cases[] = {
      {"inner", JoinType::kInner, false},
      {"inner+residual", JoinType::kInner, true},
      {"semi", JoinType::kLeftSemi, false},
      {"anti", JoinType::kLeftAnti, false},
  };
  for (const JoinCase& c : cases) {
    SCOPED_TRACE(c.name);
    TablePtr reference =
        RunJoin(left, right, c.type, c.residual, nullptr, nullptr);
    ASSERT_NE(reference, nullptr);

    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE(threads);
      // A budget far below the inputs forces the grace path (and its
      // recursion: one level cannot get partitions under ~64 KiB here).
      MemoryBudget budget(64 << 10);
      SpillContext spill(dir_, &budget, /*page_bytes=*/16 << 10);
      ThreadPool pool(threads);
      TablePtr grace = RunJoin(left, right, c.type, c.residual, &spill,
                               threads > 1 ? &pool : nullptr);
      ASSERT_NE(grace, nullptr);
      EXPECT_TRUE(TablesEqualExact(*reference, *grace));
      EXPECT_GT(spill.stats().bytes_written.load(), 0)
          << "budget did not force a spill";
    }
  }
}

TEST_F(SpillTest, GraceJoinHandlesEmptyAndNullOnlySides) {
  auto left = MakeRandomTable(5000, 7, 100);
  auto empty = Table::Make(WideSchema());
  MemoryBudget budget(1 << 10);
  SpillContext spill(dir_, &budget, 4096);
  // Empty build side: inner joins produce nothing; anti joins pass
  // everything through in order.
  TablePtr inner_ref =
      RunJoin(left, empty, JoinType::kInner, false, nullptr, nullptr);
  TablePtr inner = RunJoin(left, empty, JoinType::kInner, false, &spill,
                           nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->NumRows(), 0);
  EXPECT_TRUE(TablesEqualExact(*inner_ref, *inner));
  TablePtr anti_ref =
      RunJoin(left, empty, JoinType::kLeftAnti, false, nullptr, nullptr);
  TablePtr anti =
      RunJoin(left, empty, JoinType::kLeftAnti, false, &spill, nullptr);
  ASSERT_NE(anti, nullptr);
  EXPECT_TRUE(TablesEqualExact(*anti_ref, *anti));
}

// --- Budgeted grounding bit-identity ----------------------------------------

/// Grounds `kb` and returns the final TPi (plus TPhi row count via
/// `factors`), under the given budget and thread count.
TablePtr GroundWithBudget(const KnowledgeBase& kb, int64_t budget_bytes,
                          const std::string& spill_dir, int threads,
                          int64_t* factors, StatsRegistry* stats = nullptr) {
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.max_iterations = 4;
  options.num_threads = threads;
  options.mem_budget_bytes = budget_bytes;
  options.spill_dir = spill_dir;
  Grounder grounder(&rkb, options);
  if (stats != nullptr) grounder.set_stats_registry(stats);
  EXPECT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  EXPECT_TRUE(phi.ok());
  if (factors != nullptr && phi.ok()) *factors = (*phi)->NumRows();
  return rkb.t_pi;
}

TEST_F(SpillTest, BudgetedGroundingBitIdenticalAcrossThreadCounts) {
  SyntheticKbConfig config;
  config.scale = 0.004;
  auto skb = GenerateReverbSherlockKb(config);
  ASSERT_TRUE(skb.ok());

  int64_t ref_factors = 0;
  TablePtr reference =
      GroundWithBudget(skb->kb, /*budget=*/0, dir_, 1, &ref_factors);

  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE(threads);
    StatsRegistry stats;
    int64_t factors = 0;
    TablePtr budgeted = GroundWithBudget(skb->kb, /*budget=*/64 << 10, dir_,
                                         threads, &factors, &stats);
    EXPECT_TRUE(TablesEqualExact(*reference, *budgeted));
    EXPECT_EQ(factors, ref_factors);
    EXPECT_GT(stats.FindCounter("spill_bytes_written"), 0)
        << "budget did not force a spill";
    EXPECT_GT(stats.FindCounter("page_faults_served"), 0);
  }
}

TEST_F(SpillTest, BudgetedMppGroundingBitIdenticalAcrossSegments) {
  SyntheticKbConfig config;
  config.scale = 0.004;
  auto skb = GenerateReverbSherlockKb(config);
  ASSERT_TRUE(skb.ok());

  // GatherTPi row order depends on how rows were sharded, so the exact
  // reference is the unbudgeted run at the SAME segment count; the grace
  // path must not perturb it.
  for (int segments : {2, 4}) {
    SCOPED_TRACE(segments);
    RelationalKB rkb_ref = BuildRelationalModel(skb->kb);
    GroundingOptions ref_options;
    ref_options.max_iterations = 4;
    ref_options.mem_budget_bytes = 0;
    MppGrounder reference(rkb_ref, segments, MppMode::kViews, ref_options);
    ASSERT_TRUE(reference.GroundAtoms().ok());
    TablePtr tpi_ref = reference.GatherTPi();

    StatsRegistry stats;
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 4;
    options.mem_budget_bytes = 64 << 10;
    options.spill_dir = dir_;
    MppGrounder grounder(rkb, segments, MppMode::kViews, options);
    grounder.set_stats_registry(&stats);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    TablePtr tpi = grounder.GatherTPi();
    EXPECT_TRUE(TablesEqualExact(*tpi_ref, *tpi));
    EXPECT_GT(stats.FindCounter("spill_bytes_written"), 0);
  }
}

// --- Checkpoint / resume interplay ------------------------------------------

TEST_F(SpillTest, CheckpointResumeWithActiveSpillFiles) {
  SyntheticKbConfig config;
  config.scale = 0.004;
  auto skb = GenerateReverbSherlockKb(config);
  ASSERT_TRUE(skb.ok());
  const std::string ckpt = dir_ + "/ckpt";
  const std::string spill_dir = dir_ + "/spill";

  // Reference: uninterrupted budgeted run.
  int64_t ref_factors = 0;
  TablePtr reference = GroundWithBudget(skb->kb, /*budget=*/0, spill_dir, 1,
                                        &ref_factors);

  // Interrupted run: two iterations under budget, checkpointing into the
  // *spill* directory's parent tree — spill files and checkpoint coexist.
  {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 2;
    options.mem_budget_bytes = 64 << 10;
    options.spill_dir = spill_dir;
    options.checkpoint_dir = ckpt;
    Grounder grounder(&rkb, options);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
  }
  ASSERT_TRUE(fs::exists(ckpt));

  // Resume to the fixpoint under budget; the startup sweep must clear any
  // spill debris without touching the checkpoint.
  {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 4;
    options.mem_budget_bytes = 64 << 10;
    options.spill_dir = spill_dir;
    options.checkpoint_dir = ckpt;
    Grounder grounder(&rkb, options);
    ASSERT_TRUE(grounder.ResumeFrom(ckpt).ok());
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    EXPECT_TRUE(TablesEqualExact(*reference, *rkb.t_pi));
    EXPECT_EQ((*phi)->NumRows(), ref_factors);
  }
}

// --- Datagen scaler (satellite: --scale-facts) ------------------------------

TEST(ScaleKbFactsTest, ReachesTargetDedupedWithPowerLawSkew) {
  SyntheticKbConfig config;
  config.scale = 0.004;
  auto skb = GenerateReverbSherlockKb(config);
  ASSERT_TRUE(skb.ok());
  KnowledgeBase kb = skb->kb;
  const int64_t target = 50000;
  ASSERT_TRUE(ScaleKbFacts(&kb, target, /*seed=*/99).ok());
  ASSERT_EQ(static_cast<int64_t>(kb.facts().size()), target);

  // No duplicate (relation, x, y) triples.
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
  int64_t max_entity_uses = 0;
  std::map<int64_t, int64_t> entity_uses;
  for (const Fact& f : kb.facts()) {
    EXPECT_TRUE(seen.emplace(f.relation, f.x, f.y).second);
    max_entity_uses = std::max(max_entity_uses, ++entity_uses[f.x]);
  }
  // Power-law usage: the hottest subject entity must be used far more
  // often than the uniform expectation.
  const int64_t uniform =
      target / std::max<int64_t>(1, static_cast<int64_t>(entity_uses.size()));
  EXPECT_GT(max_entity_uses, uniform * 4);
}

TEST(ScaleKbFactsTest, DeterministicForFixedSeed) {
  SyntheticKbConfig config;
  config.scale = 0.004;
  auto skb = GenerateReverbSherlockKb(config);
  ASSERT_TRUE(skb.ok());
  KnowledgeBase a = skb->kb;
  KnowledgeBase b = skb->kb;
  ASSERT_TRUE(ScaleKbFacts(&a, 20000, 7).ok());
  ASSERT_TRUE(ScaleKbFacts(&b, 20000, 7).ok());
  ASSERT_EQ(a.facts().size(), b.facts().size());
  for (size_t i = 0; i < a.facts().size(); ++i) {
    EXPECT_EQ(a.facts()[i].relation, b.facts()[i].relation);
    EXPECT_EQ(a.facts()[i].x, b.facts()[i].x);
    EXPECT_EQ(a.facts()[i].y, b.facts()[i].y);
  }
}

}  // namespace
}  // namespace probkb
