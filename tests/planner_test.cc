// Adaptive-optimizer tests: cost-model motion decisions, plan-estimate
// annotation, the Tunables layer, cross-policy / cross-thread bit-identity
// of the MPP grounder, shipped-volume regressions, golden EXPLAIN output,
// and checkpoint resume with a cold planner history.
//
// Golden files live in tests/goldens/ (PROBKB_GOLDEN_DIR). Regenerate with
//   PROBKB_REGEN_GOLDENS=1 ./build/tests/planner_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/synthetic_kb.h"
#include "engine/ops.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "engine/tunables.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

using testutil::MakeTable;

constexpr double kInf = std::numeric_limits<double>::infinity();

MotionCostModel ModelWithSegments(int n) {
  MotionCostModel m;
  m.num_segments = n;
  return m;
}

JoinMotionQuery Query(int64_t left, int64_t right, bool left_coll,
                      bool right_coll) {
  JoinMotionQuery q;
  q.statement = "q";
  q.left_rows = left;
  q.right_rows = right;
  q.left_collocated = left_coll;
  q.right_collocated = right_coll;
  return q;
}

// --- Motion decisions -------------------------------------------------------

TEST(MotionDecisionTest, SingleSegmentAlwaysRedistributes) {
  AdaptivePlanner planner(ModelWithSegments(1));
  MotionDecision d = planner.DecideJoinMotion(Query(1000000, 5, false, false));
  EXPECT_EQ(d.choice, MotionChoice::kRedistribute);
  EXPECT_EQ(d.redistribute_seconds, 0.0);
}

TEST(MotionDecisionTest, CollocatedSidesShipNothing) {
  AdaptivePlanner planner(ModelWithSegments(8));
  MotionDecision d = planner.DecideJoinMotion(Query(1000, 100000, true, true));
  EXPECT_EQ(d.choice, MotionChoice::kRedistribute);
  EXPECT_EQ(d.redistribute_seconds, 0.0);
  EXPECT_GT(d.broadcast_right_seconds, 0.0);
}

TEST(MotionDecisionTest, LargeClusterRedistributesTheMovingSide) {
  // The paper-§5 view plan at cluster scale: M is not collocated, the TPi
  // view is. Moving (n-1)/n of M is cheaper than replicating it (n-1)
  // times even at the broadcast discount, so the static rule's choice is
  // recovered from the cost model.
  AdaptivePlanner planner(ModelWithSegments(32));
  MotionDecision d = planner.DecideJoinMotion(Query(1000, 100000, false, true));
  EXPECT_EQ(d.choice, MotionChoice::kRedistribute);
  EXPECT_LT(d.redistribute_seconds, d.broadcast_left_seconds);
}

TEST(MotionDecisionTest, TwoSegmentsPreferBroadcastingTheMovingSide) {
  // Same query on 2 segments: redistribute moves half of M, broadcast
  // ships one discounted replica (0.31 < 0.5) — the cost model flips where
  // the static rule could not.
  AdaptivePlanner planner(ModelWithSegments(2));
  MotionDecision d = planner.DecideJoinMotion(Query(1000, 100000, false, true));
  EXPECT_EQ(d.choice, MotionChoice::kBroadcastLeft);
  EXPECT_LT(d.broadcast_left_seconds, d.redistribute_seconds);
}

TEST(MotionDecisionTest, SkewedDeltaFlipsToBroadcastingTheTinySide) {
  // Satellite regression: a skewed delta (big right, tiny left, neither
  // collocated) must flip the choice to broadcasting the tiny side instead
  // of redistributing the big one.
  AdaptivePlanner planner(ModelWithSegments(8));
  MotionDecision skewed = planner.DecideJoinMotion(Query(10, 100000, false, false));
  EXPECT_EQ(skewed.choice, MotionChoice::kBroadcastLeft);

  // Mirrored skew broadcasts the other side.
  MotionDecision mirrored =
      planner.DecideJoinMotion(Query(100000, 10, false, false));
  EXPECT_EQ(mirrored.choice, MotionChoice::kBroadcastRight);

  // Balanced large inputs keep the redistribute plan.
  MotionDecision balanced =
      planner.DecideJoinMotion(Query(100000, 100000, false, false));
  EXPECT_EQ(balanced.choice, MotionChoice::kRedistribute);
}

TEST(MotionDecisionTest, BroadcastLeftIsUnsoundForNonInnerJoins) {
  AdaptivePlanner planner(ModelWithSegments(8));
  JoinMotionQuery q = Query(10, 100000, false, false);
  q.inner_join = false;
  MotionDecision d = planner.DecideJoinMotion(q);
  EXPECT_EQ(d.broadcast_left_seconds, kInf);
  EXPECT_NE(d.choice, MotionChoice::kBroadcastLeft);
}

TEST(MotionDecisionTest, TieBreaksAreDeterministic) {
  // Zero-row inputs cost one motion latency under every candidate; the
  // fixed tie-break order must pick redistribute, twice in a row.
  AdaptivePlanner planner(ModelWithSegments(4));
  MotionDecision d1 = planner.DecideJoinMotion(Query(0, 0, false, true));
  MotionDecision d2 = planner.DecideJoinMotion(Query(0, 0, false, true));
  EXPECT_EQ(d1.choice, MotionChoice::kRedistribute);
  EXPECT_EQ(d1.ToString(), d2.ToString());
  ASSERT_EQ(planner.decisions().size(), 2u);
  EXPECT_NE(planner.ExplainDecisions().find("redistribute"),
            std::string::npos);
  planner.ClearDecisionLog();
  EXPECT_TRUE(planner.decisions().empty());
}

// --- Observed-cardinality feedback -----------------------------------------

TEST(PlannerFeedbackTest, ObservationsOverrideColdStartEstimates) {
  AdaptivePlanner planner(ModelWithSegments(4));
  EXPECT_FALSE(planner.HasObservation("stmt"));
  EXPECT_EQ(planner.ObservedRows("stmt", 42), 42);

  planner.ObserveRows("stmt", 7);
  EXPECT_TRUE(planner.HasObservation("stmt"));
  EXPECT_EQ(planner.ObservedRows("stmt", 42), 7);

  // Latest observation wins (iteration N+1 plans from iteration N).
  planner.ObserveRows("stmt", 9);
  EXPECT_EQ(planner.ObservedRows("stmt", 42), 9);
}

TEST(PlannerFeedbackTest, BuildSideSwapPrefersSmallerBuild) {
  AdaptivePlanner planner(ModelWithSegments(4));
  EXPECT_TRUE(planner.ChooseBuildSideSwap(10, 1000));
  EXPECT_FALSE(planner.ChooseBuildSideSwap(1000, 10));
}

TEST(AnnotateEstimatesTest, HeuristicsPerNodeKind) {
  Schema ab({{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
  auto small = MakeTable(ab, {{1, 1}, {2, 2}});
  auto big = MakeTable(ab, {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}});

  // Inner join estimates max(children); the filter above passes it through.
  PlanNodePtr plan =
      Filter(HashJoin(Scan(small), Scan(big), {0}, {0}, JoinType::kInner,
                      {JoinOutputCol::Left(0, "a")}),
             [](const RowView&) { return true; });
  EXPECT_EQ(AnnotatePlanEstimates(plan.get()), 5);
  EXPECT_EQ(plan->est_rows(), 5);
  EXPECT_EQ(plan->children()[0]->est_rows(), 5);
  EXPECT_EQ(plan->children()[0]->children()[0]->est_rows(), 2);

  // Semi joins emit a subset of the left input.
  PlanNodePtr semi =
      HashJoin(Scan(small), Scan(big), {0}, {0}, JoinType::kLeftSemi);
  EXPECT_EQ(AnnotatePlanEstimates(semi.get()), 2);

  // UNION ALL sums.
  std::vector<PlanNodePtr> inputs;
  inputs.push_back(Scan(small));
  inputs.push_back(Scan(big));
  PlanNodePtr u = UnionAll(std::move(inputs));
  EXPECT_EQ(AnnotatePlanEstimates(u.get()), 7);
}

TEST(AnnotateEstimatesTest, PlannerObservationOverridesRootHeuristic) {
  Schema ab({{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
  auto t = MakeTable(ab, {{1, 1}, {2, 2}});
  AdaptivePlanner planner(ModelWithSegments(1));
  planner.ObserveRows("stmt", 99);

  PlanNodePtr plan = Filter(Scan(t), [](const RowView&) { return true; });
  EXPECT_EQ(AnnotatePlanEstimates(plan.get(), &planner, "stmt"), 99);
  EXPECT_EQ(plan->est_rows(), 99);
  // The override is root-only; children keep their structural estimates.
  EXPECT_EQ(plan->children()[0]->est_rows(), 2);
}

TEST(AnnotateEstimatesTest, ExplainRendersEstAndObs) {
  Schema ab({{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
  auto t = MakeTable(ab, {{1, 1}, {2, 2}});
  PlanNodePtr plan = Filter(Scan(t), [](const RowView&) { return true; });
  AnnotatePlanEstimates(plan.get());

  // Before execution: estimates annotated, observations unknown.
  EXPECT_NE(plan->Explain().find("(est=2 obs=?)"), std::string::npos);

  ExecContext ctx;
  ASSERT_TRUE(plan->Execute(&ctx).ok());
  EXPECT_NE(plan->Explain().find("(est=2 obs=2)"), std::string::npos);
}

// --- Tunables ---------------------------------------------------------------

// Tunables are process-global; every test restores the previous snapshot.
class TunablesTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetTunables(); }
  void TearDown() override {
    SetTunables(saved_);
    for (const char* var :
         {"PROBKB_PARALLEL_MIN_ROWS", "PROBKB_HASH_CHUNK_ROWS",
          "PROBKB_MORSEL_ROWS", "PROBKB_SERIAL_FANOUT_CUTOFF",
          "PROBKB_MAX_BUILD_PARTITIONS"}) {
      ::unsetenv(var);
    }
  }
  Tunables saved_;
};

TEST_F(TunablesTest, SetGetRoundTrip) {
  Tunables t = GetTunables();
  t.parallel_min_rows = 123;
  t.morsel_rows = 456;
  SetTunables(t);
  EXPECT_EQ(GetTunables(), t);
  EXPECT_NE(GetTunables().ToString().find("parallel_min_rows=123"),
            std::string::npos);
}

TEST_F(TunablesTest, EnvOverridesApplyOnTopOfBase) {
  ::setenv("PROBKB_PARALLEL_MIN_ROWS", "1000", 1);
  ::setenv("PROBKB_MAX_BUILD_PARTITIONS", "8", 1);
  Tunables base;
  Tunables t = ApplyTunablesEnv(base);
  EXPECT_EQ(t.parallel_min_rows, 1000);
  EXPECT_EQ(t.max_build_partitions, 8);
  EXPECT_EQ(t.morsel_rows, base.morsel_rows);  // untouched knob keeps base
}

TEST_F(TunablesTest, GarbageEnvValuesKeepBase) {
  ::setenv("PROBKB_MORSEL_ROWS", "a-few", 1);
  ::setenv("PROBKB_HASH_CHUNK_ROWS", "-5", 1);
  Tunables base;
  Tunables t = ApplyTunablesEnv(base);
  EXPECT_EQ(t.morsel_rows, base.morsel_rows);
  EXPECT_EQ(t.hash_chunk_rows, base.hash_chunk_rows);
}

TEST_F(TunablesTest, CacheRoundTrip) {
  const std::string path = ::testing::TempDir() + "/probkb_tunables_cache";
  std::filesystem::remove(path);

  Tunables missing;
  EXPECT_FALSE(LoadTunablesCache(path, &missing));

  Tunables t;
  t.parallel_min_rows = 31337;
  t.serial_fanout_row_cutoff = 77;
  ASSERT_TRUE(SaveTunablesCache(path, t).ok());
  Tunables loaded;
  ASSERT_TRUE(LoadTunablesCache(path, &loaded));
  EXPECT_EQ(loaded, t);

  // A corrupted header is rejected, not half-parsed.
  { std::ofstream f(path, std::ios::trunc); f << "bogus 9\n"; }
  EXPECT_FALSE(LoadTunablesCache(path, &loaded));
  std::filesystem::remove(path);
}

TEST_F(TunablesTest, SingleThreadCalibrationDegradesToSerial) {
  // The fig6c fix: on a 1-thread host no parallel path can win, so every
  // cutoff is pushed out of reach and operators take the exact serial path.
  Tunables t = CalibrateTunables(1);
  EXPECT_EQ(t.parallel_min_rows, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(t.serial_fanout_row_cutoff, std::numeric_limits<int64_t>::max());
}

// --- Cross-policy / cross-thread bit-identity -------------------------------

KnowledgeBase InflatedPaperKb() {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  // Blow the example up so joins carry real volume and skew: TPi becomes
  // much larger than the per-partition M tables.
  for (int i = 0; i < 200; ++i) {
    kb.AddFactByName("born_in", "w" + std::to_string(i), "Writer",
                     "c" + std::to_string(i % 20), "City", 0.9);
    kb.AddFactByName("born_in", "w" + std::to_string(i), "Writer",
                     "p" + std::to_string(i % 20), "Place", 0.9);
  }
  return kb;
}

struct GroundRun {
  TablePtr t_pi;
  TablePtr t_phi;
  int64_t tuples_shipped = 0;
  double motion_seconds = 0.0;  // modelled (deterministic) interconnect time
};

GroundRun RunMpp(const KnowledgeBase& kb, int segments, MppMode mode,
                 MotionPolicy policy, int num_threads) {
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.num_threads = num_threads;
  MppGrounder mpp(rkb, segments, mode, options);
  mpp.set_motion_policy(policy);
  EXPECT_TRUE(mpp.GroundAtoms().ok());
  auto phi = mpp.GroundFactors();
  EXPECT_TRUE(phi.ok());
  GroundRun run;
  run.t_pi = mpp.GatherTPi();
  run.t_phi = phi.ok() ? *phi : nullptr;
  run.tuples_shipped = mpp.cost().tuples_shipped();
  for (const auto& s : mpp.cost().steps()) {
    if (s.kind == MppStep::Kind::kRedistribute ||
        s.kind == MppStep::Kind::kBroadcast) {
      run.motion_seconds += s.seconds;
    }
  }
  return run;
}

TEST(MotionPolicyEquivalenceTest, ForcedPlansAreBitIdenticalToAuto) {
  // Satellite 3: whatever motion the optimizer (or a forced static plan)
  // picks, the gathered TPi must be bit-identical — fact ids included —
  // because the canonical atom merge assigns ids in a route-independent
  // order. TPhi is compared structurally (gather order is not part of the
  // contract).
  KnowledgeBase kb = InflatedPaperKb();
  for (MppMode mode : {MppMode::kNoViews, MppMode::kViews}) {
    GroundRun base = RunMpp(kb, 3, mode, MotionPolicy::kAuto, 1);
    ASSERT_NE(base.t_pi, nullptr);
    for (MotionPolicy policy :
         {MotionPolicy::kRedistribute, MotionPolicy::kBroadcastRight,
          MotionPolicy::kBroadcastLeft}) {
      for (int threads : {1, 2, 4, 8}) {
        GroundRun run = RunMpp(kb, 3, mode, policy, threads);
        ASSERT_NE(run.t_pi, nullptr);
        EXPECT_TRUE(TablesEqualExact(*base.t_pi, *run.t_pi))
            << "mode " << static_cast<int>(mode) << " policy "
            << static_cast<int>(policy) << " threads " << threads;
        EXPECT_EQ(testutil::CanonicalizeFactors(*base.t_phi, *base.t_pi),
                  testutil::CanonicalizeFactors(*run.t_phi, *run.t_pi));
      }
    }
  }
}

TEST(MotionPolicyEquivalenceTest, AutoMatchesForcedAcrossSegmentCounts) {
  // kAuto's decision changes with the segment count (broadcast wins at 2,
  // redistribute at 8) — the result must not.
  KnowledgeBase kb = InflatedPaperKb();
  for (int segments : {1, 2, 4, 8}) {
    GroundRun auto_run =
        RunMpp(kb, segments, MppMode::kViews, MotionPolicy::kAuto, 1);
    GroundRun forced =
        RunMpp(kb, segments, MppMode::kViews, MotionPolicy::kRedistribute, 1);
    EXPECT_TRUE(TablesEqualExact(*auto_run.t_pi, *forced.t_pi))
        << "segments " << segments;
  }
}

TEST(MotionPolicyCostTest, AdaptiveBeatsEveryStaticPlanOnModelledCost) {
  // Figure 4 mechanism as a regression test: in no-views mode the probe
  // side (TPi) dwarfs the per-partition M tables, and the adaptive plan
  // must not cost more modelled interconnect time than any forced static
  // plan. (Raw tuple count is not the objective: a discounted broadcast
  // fan-out can ship more tuples than a redistribute yet cost less — the
  // paper's motivation for broadcasting the small side.)
  KnowledgeBase kb = InflatedPaperKb();
  GroundRun auto_run = RunMpp(kb, 8, MppMode::kNoViews, MotionPolicy::kAuto, 1);
  for (MotionPolicy policy :
       {MotionPolicy::kRedistribute, MotionPolicy::kBroadcastRight,
        MotionPolicy::kBroadcastLeft}) {
    GroundRun forced = RunMpp(kb, 8, MppMode::kNoViews, policy, 1);
    EXPECT_LE(auto_run.motion_seconds, forced.motion_seconds + 1e-12)
        << "policy " << static_cast<int>(policy);
  }
  // And in raw volume the adaptive plan must beat the static broadcast of
  // the big probe side by a wide margin — the skew case the feedback loop
  // exists for.
  GroundRun bcast_right =
      RunMpp(kb, 8, MppMode::kNoViews, MotionPolicy::kBroadcastRight, 1);
  EXPECT_LT(auto_run.tuples_shipped, bcast_right.tuples_shipped / 2);
}

TEST(MotionPolicyCostTest, AdaptiveShipsNoMoreThanAnyStaticPlanWithViews) {
  // Figure 6(c) workload shape: with the materialized views every probe is
  // collocated, the optimizer keeps the free redistribute plan, and kAuto
  // ships no more than the best static policy in raw tuples either.
  KnowledgeBase kb = InflatedPaperKb();
  GroundRun auto_run = RunMpp(kb, 8, MppMode::kViews, MotionPolicy::kAuto, 1);
  for (MotionPolicy policy :
       {MotionPolicy::kRedistribute, MotionPolicy::kBroadcastRight,
        MotionPolicy::kBroadcastLeft}) {
    GroundRun forced = RunMpp(kb, 8, MppMode::kViews, policy, 1);
    EXPECT_LE(auto_run.tuples_shipped, forced.tuples_shipped)
        << "policy " << static_cast<int>(policy);
    EXPECT_LE(auto_run.motion_seconds, forced.motion_seconds + 1e-12)
        << "policy " << static_cast<int>(policy);
  }
}

// --- Golden EXPLAIN ---------------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(PROBKB_GOLDEN_DIR) + "/" + name;
}

void CompareAgainstGolden(const std::string& name, const std::string& text) {
  const std::string path = GoldenPath(name);
  if (std::getenv("PROBKB_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << text;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with PROBKB_REGEN_GOLDENS=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), text) << "EXPLAIN drift vs " << name
                             << "; if intentional, regenerate with "
                                "PROBKB_REGEN_GOLDENS=1";
}

TEST(GoldenExplainTest, Table3SingleNodePlans) {
  // The table3 workload's generator at test scale: the single-node
  // grounder's EXPLAIN must render the same plan trees (shapes and est/obs
  // cardinalities) on every run and platform.
  SyntheticKbConfig cfg;
  cfg.scale = 0.002;
  cfg.seed = 7;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  GroundingOptions options;
  options.max_iterations = 3;
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  Grounder grounder(&rkb, options);
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  CompareAgainstGolden("table3_explain.txt", grounder.ExplainPlans());
}

TEST(GoldenExplainTest, Fig4MppMotionDecisions) {
  // Figure-4 style: the MPP grounder's EXPLAIN pins the est/obs feedback
  // lines and the full motion-decision log (choice + costed alternatives)
  // for both execution modes.
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  std::string text;
  for (MppMode mode : {MppMode::kViews, MppMode::kNoViews}) {
    RelationalKB rkb = BuildRelationalModel(kb);
    MppGrounder mpp(rkb, 3, mode, GroundingOptions{});
    ASSERT_TRUE(mpp.GroundAtoms().ok());
    text += mode == MppMode::kViews ? "== mode: views ==\n"
                                    : "== mode: no-views ==\n";
    text += mpp.ExplainPlans();
  }
  CompareAgainstGolden("fig4_explain.txt", text);
}

// --- Resume with a cold planner history -------------------------------------

TEST(PlannerResumeTest, ResumeMidReplanIsBitIdentical) {
  // Chaos case from the fault model: a run dies between iterations, after
  // the planner has accumulated observations that the checkpoint does NOT
  // carry. The resumed grounder re-plans from a cold history; since kAuto
  // decisions use only the actual materialized input sizes, the resumed
  // run must still be bit-identical to the uninterrupted one.
  KnowledgeBase kb = InflatedPaperKb();

  RelationalKB rkb_base = BuildRelationalModel(kb);
  MppGrounder baseline(rkb_base, 3, MppMode::kViews, GroundingOptions{});
  ASSERT_TRUE(baseline.GroundAtoms().ok());

  std::string dir = ::testing::TempDir() + "/probkb_planner_resume";
  std::filesystem::remove_all(dir);
  GroundingOptions interrupted_options;
  interrupted_options.max_iterations = 1;
  interrupted_options.checkpoint_dir = dir;
  RelationalKB rkb_a = BuildRelationalModel(kb);
  MppGrounder interrupted(rkb_a, 3, MppMode::kViews, interrupted_options);
  ASSERT_TRUE(interrupted.GroundAtoms().ok());
  // The interrupted run made warm-start observations...
  EXPECT_FALSE(interrupted.planner().decisions().empty());

  // ...that die with the process: the resumed grounder starts cold.
  RelationalKB rkb_b = BuildRelationalModel(kb);
  MppGrounder resumed(rkb_b, 3, MppMode::kViews, GroundingOptions{});
  ASSERT_TRUE(resumed.ResumeFrom(dir).ok());
  ASSERT_TRUE(resumed.GroundAtoms().ok());

  EXPECT_TRUE(TablesEqualExact(*baseline.GatherTPi(), *resumed.GatherTPi()));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace probkb
