#include "infer/gibbs.h"

#include <gtest/gtest.h>

#include "grounding/grounder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

/// Hand-built graph: one variable with a singleton factor of weight w has
/// P(X=1) = e^w / (1 + e^w).
FactorGraph SingleVarGraph(double w) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, w});
  auto t_phi = Table::Make(TPhiSchema());
  t_phi->AppendRow({Value::Int64(0), Value::Null(), Value::Null(),
                    Value::Float64(w)});
  auto graph = FactorGraph::FromTables(*t_pi, *t_phi);
  EXPECT_TRUE(graph.ok());
  return std::move(*graph);
}

TEST(ExactTest, SingleVariableClosedForm) {
  for (double w : {-1.0, 0.0, 0.5, 2.0}) {
    FactorGraph g = SingleVarGraph(w);
    auto marginals = ExactMarginals(g);
    ASSERT_TRUE(marginals.ok());
    double expected = std::exp(w) / (1.0 + std::exp(w));
    EXPECT_NEAR((*marginals)[0], expected, 1e-12) << "w = " << w;
  }
}

TEST(ExactTest, RefusesLargeGraphs) {
  auto t_pi = Table::Make(TPiSchema());
  auto t_phi = Table::Make(TPhiSchema());
  for (int i = 0; i < 25; ++i) {
    AppendFactRow(t_pi.get(), i, {1, i, 3, i + 100, 5, 0.5});
  }
  auto graph = FactorGraph::FromTables(*t_pi, *t_phi);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(ExactMarginals(*graph, 20).ok());
}

TEST(GibbsTest, RejectsBadOptions) {
  FactorGraph g = SingleVarGraph(1.0);
  GibbsOptions bad;
  bad.sample_sweeps = 0;
  EXPECT_FALSE(GibbsMarginals(g, bad).ok());
  bad = GibbsOptions{};
  bad.parallelism = 0;
  EXPECT_FALSE(GibbsMarginals(g, bad).ok());
}

TEST(GibbsTest, DeterministicForSeed) {
  FactorGraph g = SingleVarGraph(0.7);
  GibbsOptions options;
  options.seed = 99;
  auto a = GibbsMarginals(g, options);
  auto b = GibbsMarginals(g, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->marginals, b->marginals);
}

class GibbsVsExactTest : public ::testing::TestWithParam<GibbsSchedule> {};

TEST_P(GibbsVsExactTest, PaperExampleMarginalsMatchExact) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok());
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  ASSERT_TRUE(graph.ok());

  auto exact = ExactMarginals(*graph);
  ASSERT_TRUE(exact.ok());

  GibbsOptions options;
  options.schedule = GetParam();
  options.burn_in_sweeps = 500;
  options.sample_sweeps = 8000;
  options.seed = 7;
  auto gibbs = GibbsMarginals(*graph, options);
  ASSERT_TRUE(gibbs.ok());

  ASSERT_EQ(gibbs->marginals.size(), exact->size());
  for (size_t v = 0; v < exact->size(); ++v) {
    EXPECT_NEAR(gibbs->marginals[v], (*exact)[v], 0.03)
        << "variable " << v;
  }
  // MLN-semantics sanity: inferred heads (live_in, grow_up_in) have no
  // penalty for being true, so their marginals exceed 1/2; the strongest
  // rule (grow_up_in from born_in, w=2.68) pushes its head highest among
  // the Place conclusions.
  RelationId grow = kb.relations().Lookup("grow_up_in");
  RelationId live = kb.relations().Lookup("live_in");
  double p_grow = -1, p_live = -1;
  EntityId br = kb.entities().Lookup("Brooklyn");
  for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
    RowView row = rkb.t_pi->row(i);
    int32_t v = graph->VariableOf(row[tpi::kI].i64());
    double p = gibbs->marginals[static_cast<size_t>(v)];
    if (row[tpi::kY].i64() != br) continue;
    if (row[tpi::kR].i64() == grow) p_grow = p;
    if (row[tpi::kR].i64() == live) p_live = p;
  }
  ASSERT_GE(p_grow, 0);
  ASSERT_GE(p_live, 0);
  EXPECT_GT(p_grow, 0.5);
  EXPECT_GT(p_grow, p_live - 0.02);  // stronger rule, at least as likely
}

INSTANTIATE_TEST_SUITE_P(Schedules, GibbsVsExactTest,
                         ::testing::Values(GibbsSchedule::kSequential,
                                           GibbsSchedule::kChromatic));

TEST(GibbsTest, ChromaticReportsColorsAndSpeedup) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok());
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  ASSERT_TRUE(graph.ok());

  GibbsOptions options;
  options.schedule = GibbsSchedule::kChromatic;
  options.parallelism = 4;
  options.burn_in_sweeps = 10;
  options.sample_sweeps = 10;
  auto result = GibbsMarginals(*graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->num_colors, 2);
  EXPECT_LE(result->simulated_parallel_seconds, result->seconds + 1e-9);
}

// Property: Gibbs matches exact enumeration on random small Horn graphs
// under both schedules.
class GibbsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, GibbsSchedule>> {};

TEST_P(GibbsPropertyTest, MatchesExactOnRandomGraphs) {
  auto [seed, schedule] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 500);
  const int n = 8;
  auto t_pi = Table::Make(TPiSchema());
  for (int i = 0; i < n; ++i) {
    AppendFactRow(t_pi.get(), i, {1, i, 3, i + 100, 5,
                                  rng.UniformDouble(-1.0, 1.5)});
  }
  auto t_phi = Table::Make(TPhiSchema());
  // Singletons for half the variables.
  for (int i = 0; i < n; i += 2) {
    t_phi->AppendRow({Value::Int64(i), Value::Null(), Value::Null(),
                      Value::Float64(rng.UniformDouble(-1.0, 1.5))});
  }
  // Random Horn factors.
  for (int i = 0; i < 6; ++i) {
    int head = static_cast<int>(rng.Uniform(n));
    int b1 = static_cast<int>(rng.Uniform(n));
    int b2 = static_cast<int>(rng.Uniform(n));
    if (head == b1 || head == b2 || b1 == b2) continue;
    t_phi->AppendRow({Value::Int64(head), Value::Int64(b1),
                      rng.Bernoulli(0.5) ? Value::Int64(b2) : Value::Null(),
                      Value::Float64(rng.UniformDouble(0.1, 2.0))});
  }
  auto graph = FactorGraph::FromTables(*t_pi, *t_phi);
  ASSERT_TRUE(graph.ok());

  auto exact = ExactMarginals(*graph);
  ASSERT_TRUE(exact.ok());
  GibbsOptions options;
  options.schedule = schedule;
  options.burn_in_sweeps = 500;
  options.sample_sweeps = 6000;
  options.seed = static_cast<uint64_t>(seed);
  auto gibbs = GibbsMarginals(*graph, options);
  ASSERT_TRUE(gibbs.ok());
  for (size_t v = 0; v < exact->size(); ++v) {
    EXPECT_NEAR(gibbs->marginals[v], (*exact)[v], 0.05) << "var " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSchedules, GibbsPropertyTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(GibbsSchedule::kSequential,
                                         GibbsSchedule::kChromatic)));


TEST(GibbsTest, MultiChainPsrfNearOneWhenMixing) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok());
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  ASSERT_TRUE(graph.ok());

  GibbsOptions options;
  options.num_chains = 4;
  options.burn_in_sweeps = 300;
  options.sample_sweeps = 3000;
  auto result = GibbsMarginals(*graph, options);
  ASSERT_TRUE(result.ok());
  // This small graph mixes immediately: chains agree.
  EXPECT_GT(result->max_psrf, 0.99);
  EXPECT_LT(result->max_psrf, 1.05);

  // Averaged marginals still match exact inference.
  auto exact = ExactMarginals(*graph);
  ASSERT_TRUE(exact.ok());
  for (size_t v = 0; v < exact->size(); ++v) {
    EXPECT_NEAR(result->marginals[v], (*exact)[v], 0.03);
  }
}

TEST(GibbsTest, MultiChainValidation) {
  FactorGraph g = SingleVarGraph(1.0);
  GibbsOptions options;
  options.num_chains = 0;
  EXPECT_FALSE(GibbsMarginals(g, options).ok());
}

}  // namespace
}  // namespace probkb
