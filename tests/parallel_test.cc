// Parallel-vs-serial equivalence: the threaded engine must reproduce the
// serial engine bit-for-bit — same rows in the same order, same fact ids,
// same fault schedule — at every thread count. Plus unit coverage for the
// ThreadPool and FlatRowIndex primitives underneath.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "datagen/synthetic_kb.h"
#include "engine/exec_context.h"
#include "engine/flat_hash.h"
#include "engine/ops.h"
#include "engine/plan.h"
#include "fault/fault_injector.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "obs/stats_registry.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace probkb {
namespace {

constexpr int kSegments = 4;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/probkb_parallel_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolOfOneRunsInlineWithNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  int64_t sum = 0;
  pool.ParallelFor(100, 7, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(100, 10, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPoolTest, ZeroAndNegativeIterationCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(-5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ResolveThreadsPrecedence) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);
  setenv("PROBKB_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 5);
  EXPECT_EQ(ThreadPool::ResolveThreads(2), 2);  // explicit beats env
  unsetenv("PROBKB_THREADS");
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);  // hardware fallback
}

TEST(ThreadPoolTest, ResolveThreadsRejectsGarbageEnvValues) {
  const int hardware = [] {
    unsetenv("PROBKB_THREADS");
    return ThreadPool::ResolveThreads(0);
  }();
  // Non-numeric, empty, trailing-junk, negative, and zero values must all
  // fall back to the hardware count instead of crashing or going absurd.
  for (const char* garbage :
       {"abc", "", "  ", "4x", "1e9", "-3", "0", "2 4", "0x10"}) {
    setenv("PROBKB_THREADS", garbage, 1);
    EXPECT_EQ(ThreadPool::ResolveThreads(0), hardware)
        << "PROBKB_THREADS='" << garbage << "'";
  }
  // Surrounding whitespace around a sane value is tolerated.
  setenv("PROBKB_THREADS", "  6  ", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 6);
  // Absurdly large values clamp to the documented ceiling.
  setenv("PROBKB_THREADS", "999999", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), ThreadPool::kMaxEnvThreads);
  // An explicit request still beats even a garbage env value.
  setenv("PROBKB_THREADS", "abc", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
  unsetenv("PROBKB_THREADS");
}

TEST(ThreadPoolTest, WorkerStatsCountTasks) {
  ThreadPool pool(4);
  pool.ParallelFor(1000, 10, [](int64_t, int64_t) {});
  const std::vector<PoolWorkerStats> stats = pool.WorkerStats();
  ASSERT_EQ(stats.size(), 3u);  // workers only; the caller is the 4th lane
  int64_t tasks = 0;
  for (const PoolWorkerStats& w : stats) {
    EXPECT_GE(w.tasks_run, 0);
    EXPECT_GE(w.steals, 0);
    EXPECT_GE(w.busy_seconds, 0.0);
    EXPECT_GE(w.idle_seconds, 0.0);
    tasks += w.tasks_run;
  }
  // ParallelFor submits one drainer helper per worker; by snapshot time
  // each worker has run at most its share of them.
  EXPECT_LE(tasks, 3);

  ThreadPool serial(1);
  serial.ParallelFor(100, 10, [](int64_t, int64_t) {});
  EXPECT_TRUE(serial.WorkerStats().empty());
}

// --- FlatRowIndex --------------------------------------------------------------

TEST(FlatRowIndexTest, ChainsPreserveInsertionOrder) {
  FlatRowIndex index;
  index.Insert(42, 7);
  index.Insert(99, 1);
  index.Insert(42, 3);
  index.Insert(42, 11);
  std::vector<int64_t> chain;
  for (int64_t e = index.Head(42); e >= 0; e = index.Next(e)) {
    chain.push_back(index.Row(e));
  }
  EXPECT_EQ(chain, (std::vector<int64_t>{7, 3, 11}));
  EXPECT_EQ(index.Head(1234), -1);
  EXPECT_EQ(index.size(), 4);
}

TEST(FlatRowIndexTest, CollidingHashesProbeToDistinctSlots) {
  FlatRowIndex index;
  // Hashes equal mod any power-of-two slot count collide on the home slot;
  // linear probing must still keep their chains separate.
  const size_t a = 16, b = 32, c = 48;
  index.Insert(a, 1);
  index.Insert(b, 2);
  index.Insert(c, 3);
  index.Insert(a, 4);
  std::vector<int64_t> chain_a;
  for (int64_t e = index.Head(a); e >= 0; e = index.Next(e)) {
    chain_a.push_back(index.Row(e));
  }
  EXPECT_EQ(chain_a, (std::vector<int64_t>{1, 4}));
  ASSERT_GE(index.Head(b), 0);
  EXPECT_EQ(index.Row(index.Head(b)), 2);
  ASSERT_GE(index.Head(c), 0);
  EXPECT_EQ(index.Row(index.Head(c)), 3);
}

TEST(FlatRowIndexTest, GrowthKeepsEveryChainReachable) {
  FlatRowIndex index;
  constexpr int64_t kKeys = 5000;
  for (int64_t i = 0; i < kKeys; ++i) {
    index.Insert(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull, i);
  }
  EXPECT_EQ(index.size(), kKeys);
  for (int64_t i = 0; i < kKeys; ++i) {
    int64_t e = index.Head(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull);
    ASSERT_GE(e, 0) << "key " << i << " lost in growth";
    EXPECT_EQ(index.Row(e), i);
  }
}

TEST(FlatRowIndexTest, ReservePreventsMidBuildRehash) {
  FlatRowIndex reserved;
  reserved.Reserve(4000);
  const size_t capacity_before = reserved.slot_capacity();
  for (int64_t i = 0; i < 4000; ++i) {
    reserved.Insert(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull, i);
  }
  EXPECT_EQ(reserved.slot_capacity(), capacity_before);

  FlatRowIndex unreserved;
  for (int64_t i = 0; i < 4000; ++i) {
    unreserved.Insert(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull, i);
  }
  EXPECT_EQ(unreserved.slot_capacity(), reserved.slot_capacity());
}

TEST(FlatRowIndexTest, ReserveOnPartialIndexKeepsCapacityAndChainOrder) {
  FlatRowIndex index;
  // Partially fill with four hash-colliding chains: multiples of 1<<20 all
  // land on home slot 0 at any power-of-two slot count up to 2^20, so the
  // chains only stay distinct through linear probing.
  constexpr size_t kStride = size_t{1} << 20;
  constexpr int64_t kPrefill = 64;
  for (int64_t i = 0; i < kPrefill; ++i) {
    index.Insert(static_cast<size_t>(i % 4) * kStride, i);
  }
  const int64_t rehashes_before = index.rehash_count();

  // Reserving for the remaining bulk insert on the partially built index
  // must grow exactly once (the Reserve itself) and then hold capacity
  // steady through the insert.
  constexpr int64_t kTotal = 4000;
  index.Reserve(kTotal - kPrefill);
  EXPECT_EQ(index.rehash_count(), rehashes_before + 1);
  const size_t capacity = index.slot_capacity();
  for (int64_t i = kPrefill; i < kTotal; ++i) {
    index.Insert(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull, i);
  }
  EXPECT_EQ(index.slot_capacity(), capacity);
  EXPECT_EQ(index.rehash_count(), rehashes_before + 1);
  EXPECT_EQ(index.size(), kTotal);

  // The Reserve's rehash re-probed every colliding chain; insertion order
  // within each chain must have survived it.
  for (int64_t k = 0; k < 4; ++k) {
    std::vector<int64_t> chain;
    for (int64_t e = index.Head(static_cast<size_t>(k) * kStride); e >= 0;
         e = index.Next(e)) {
      chain.push_back(index.Row(e));
    }
    std::vector<int64_t> expected;
    for (int64_t i = k; i < kPrefill; i += 4) expected.push_back(i);
    EXPECT_EQ(chain, expected) << "chain " << k;
  }
}

// --- TablesEqualExact ----------------------------------------------------------

TEST(TablesEqualExactTest, DistinguishesOrderUnlikeBagEquality) {
  Schema s({{"a", ColumnType::kInt64}});
  auto t1 = Table::Make(s);
  auto t2 = Table::Make(s);
  t1->AppendRow({Value::Int64(1)});
  t1->AppendRow({Value::Int64(2)});
  t2->AppendRow({Value::Int64(2)});
  t2->AppendRow({Value::Int64(1)});
  EXPECT_TRUE(TablesEqualAsBags(*t1, *t2));
  EXPECT_FALSE(TablesEqualExact(*t1, *t2));
  EXPECT_TRUE(TablesEqualExact(*t1, *t1));
}

// --- Morsel-parallel hash join -------------------------------------------------

TablePtr RandomPairs(int64_t rows, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  auto t = Table::Make(
      Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}));
  t->ReserveRows(rows);
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({Value::Int64(rng.UniformInt(0, domain)),
                  Value::Int64(rng.UniformInt(0, domain))});
  }
  return t;
}

TEST(ParallelJoinTest, MorselProbeIsBitIdenticalToSerial) {
  // Big enough that the morsel path actually engages (>= 2 x 2048 probe
  // rows) and produces multi-match chains.
  auto left = RandomPairs(3 * 2048, 512, 11);
  auto right = RandomPairs(4096, 512, 12);
  for (JoinType type :
       {JoinType::kInner, JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    std::vector<JoinOutputCol> cols;
    if (type == JoinType::kInner) {
      cols = {JoinOutputCol::Left(0, "k"), JoinOutputCol::Left(1, "lv"),
              JoinOutputCol::Right(1, "rv")};
    }
    ExecContext serial_ctx;
    auto serial = HashJoin(Scan(left), Scan(right), {0}, {0}, type, cols)
                      ->Execute(&serial_ctx);
    ASSERT_TRUE(serial.ok());

    ThreadPool pool(4);
    ExecContext parallel_ctx;
    parallel_ctx.set_thread_pool(&pool);
    auto parallel = HashJoin(Scan(left), Scan(right), {0}, {0}, type, cols)
                        ->Execute(&parallel_ctx);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(TablesEqualExact(**serial, **parallel))
        << "join type " << static_cast<int>(type);
  }
}

// --- Grounding fixpoint equivalence --------------------------------------------

/// A KB big enough to push several statements past the morsel threshold.
KnowledgeBase BiggishKB() {
  SyntheticKbConfig config;
  config.scale = 0.01;
  auto skb = GenerateReverbSherlockKb(config);
  EXPECT_TRUE(skb.ok());
  KnowledgeBase kb = skb->kb;
  EXPECT_TRUE(AddRandomFacts(&kb, 6000, 333).ok());
  return kb;
}

TEST(ParallelGroundingTest, FixpointBitIdenticalAcrossThreadCounts) {
  KnowledgeBase kb = BiggishKB();
  GroundingOptions serial_options;
  serial_options.max_iterations = 3;
  serial_options.apply_constraints_each_iteration = true;
  serial_options.num_threads = 1;
  RelationalKB rkb_serial = BuildRelationalModel(kb);
  Grounder serial(&rkb_serial, serial_options);
  ASSERT_TRUE(serial.GroundAtoms().ok());
  auto phi_serial = serial.GroundFactors();
  ASSERT_TRUE(phi_serial.ok());

  for (int threads : {2, 4}) {
    GroundingOptions options = serial_options;
    options.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    Grounder grounder(&rkb, options);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    EXPECT_TRUE(TablesEqualExact(*rkb_serial.t_pi, *rkb.t_pi))
        << threads << " threads: TPi differs from serial";
    EXPECT_TRUE(TablesEqualExact(**phi_serial, **phi))
        << threads << " threads: TPhi differs from serial";
    EXPECT_EQ(serial.stats().iterations, grounder.stats().iterations);
  }
}

TEST(ParallelGroundingTest, StatsOnIsBitIdenticalAcrossThreadCounts) {
  // Acceptance gate for the observability layer: attaching a StatsRegistry
  // must not perturb any output at any thread count — it only copies
  // values out after the fact.
  KnowledgeBase kb = BiggishKB();
  GroundingOptions baseline_options;
  baseline_options.max_iterations = 3;
  baseline_options.apply_constraints_each_iteration = true;
  baseline_options.num_threads = 1;
  RelationalKB rkb_baseline = BuildRelationalModel(kb);
  Grounder baseline(&rkb_baseline, baseline_options);  // stats OFF
  ASSERT_TRUE(baseline.GroundAtoms().ok());
  auto phi_baseline = baseline.GroundFactors();
  ASSERT_TRUE(phi_baseline.ok());

  for (int threads : {1, 2, 4, 8}) {
    GroundingOptions options = baseline_options;
    options.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    Grounder grounder(&rkb, options);
    StatsRegistry registry;
    grounder.set_stats_registry(&registry);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    EXPECT_TRUE(TablesEqualExact(*rkb_baseline.t_pi, *rkb.t_pi))
        << threads << " threads with stats on: TPi differs";
    EXPECT_TRUE(TablesEqualExact(**phi_baseline, **phi))
        << threads << " threads with stats on: TPhi differs";

    // And the registry actually observed the run: partition cells for
    // every iteration, operator records, and (threads > 1) worker slots.
    EXPECT_FALSE(registry.partition_iterations().empty());
    EXPECT_FALSE(registry.statements().empty());
    int max_iter = 0;
    for (const PartitionIterStats& cell : registry.partition_iterations()) {
      EXPECT_GE(cell.partition, 1);
      EXPECT_LE(cell.partition, kNumRuleStructures);
      EXPECT_GE(cell.delta_rows, 0);
      EXPECT_GE(cell.join_seconds, 0.0);
      if (cell.iteration > max_iter) max_iter = cell.iteration;
    }
    EXPECT_EQ(max_iter, grounder.stats().iterations);
    if (threads > 1) {
      EXPECT_EQ(registry.workers().size(),
                static_cast<size_t>(threads - 1));
    } else {
      EXPECT_TRUE(registry.workers().empty());
    }
  }
}

TEST(ParallelMppTest, StatsOnMppIsBitIdenticalAndRecordsMotions) {
  KnowledgeBase kb = BiggishKB();
  GroundingOptions options;
  options.max_iterations = 3;
  options.num_threads = 1;
  RelationalKB rkb_baseline = BuildRelationalModel(kb);
  MppGrounder baseline(rkb_baseline, kSegments, MppMode::kViews, options);
  ASSERT_TRUE(baseline.GroundAtoms().ok());
  auto phi_baseline = baseline.GroundFactors();
  ASSERT_TRUE(phi_baseline.ok());
  TablePtr tpi_baseline = baseline.GatherTPi();

  for (int threads : {1, 4}) {
    GroundingOptions opts = options;
    opts.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    MppGrounder grounder(rkb, kSegments, MppMode::kViews, opts);
    StatsRegistry registry;
    grounder.set_stats_registry(&registry);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    EXPECT_TRUE(TablesEqualExact(*tpi_baseline, *grounder.GatherTPi()))
        << threads << " threads with stats on: gathered TPi differs";
    EXPECT_TRUE(TablesEqualExact(**phi_baseline, **phi))
        << threads << " threads with stats on: TPhi differs";

    // Motion totals must reconcile with the cost model's step log.
    int64_t steps_shipped = 0;
    for (const MppStep& step : grounder.cost().steps()) {
      if (step.kind != MppStep::Kind::kCompute) {
        steps_shipped += step.tuples_shipped;
      }
    }
    int64_t motions_shipped = 0;
    for (const MotionTotals& m : registry.motion_totals()) {
      EXPECT_GE(m.tuples_shipped, 0);
      EXPECT_GE(m.max_skew, 0.0);
      motions_shipped += m.tuples_shipped;
    }
    EXPECT_EQ(motions_shipped, steps_shipped)
        << threads << " threads: registry and cost log disagree";
    EXPECT_FALSE(registry.compute_totals().empty());
  }
}

TEST(ParallelMppTest, MotionsBitIdenticalAcrossThreadCounts) {
  KnowledgeBase kb = BiggishKB();
  GroundingOptions serial_options;
  serial_options.max_iterations = 3;
  serial_options.num_threads = 1;
  RelationalKB rkb_serial = BuildRelationalModel(kb);
  MppGrounder serial(rkb_serial, kSegments, MppMode::kViews,
                     serial_options);
  ASSERT_TRUE(serial.GroundAtoms().ok());
  auto phi_serial = serial.GroundFactors();
  ASSERT_TRUE(phi_serial.ok());
  TablePtr tpi_serial = serial.GatherTPi();

  for (int threads : {2, 4}) {
    GroundingOptions options = serial_options;
    options.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    MppGrounder grounder(rkb, kSegments, MppMode::kViews, options);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    EXPECT_TRUE(TablesEqualExact(*tpi_serial, *grounder.GatherTPi()))
        << threads << " threads: gathered TPi differs from serial";
    EXPECT_TRUE(TablesEqualExact(**phi_serial, **phi))
        << threads << " threads: TPhi differs from serial";
    // Same motions in the same order ship the same tuple counts: the
    // injector-facing schedule is thread-count independent.
    ASSERT_EQ(serial.cost().steps().size(), grounder.cost().steps().size());
    for (size_t i = 0; i < serial.cost().steps().size(); ++i) {
      EXPECT_EQ(serial.cost().steps()[i].kind,
                grounder.cost().steps()[i].kind);
      EXPECT_EQ(serial.cost().steps()[i].tuples_shipped,
                grounder.cost().steps()[i].tuples_shipped);
    }
  }
}

TEST(ParallelMppTest, InjectedFaultsRecoverIdenticallyAcrossThreadCounts) {
  KnowledgeBase kb = BiggishKB();
  FaultInjectionOptions fault_options;
  fault_options.enabled = true;
  fault_options.seed = 104729;
  fault_options.segment_failure_prob = 0.25;
  fault_options.drop_batch_prob = 0.25;
  fault_options.duplicate_batch_prob = 0.1;

  GroundingOptions serial_options;
  serial_options.max_iterations = 3;
  serial_options.num_threads = 1;
  RelationalKB rkb_serial = BuildRelationalModel(kb);
  FaultInjector serial_injector(fault_options);
  MppGrounder serial(rkb_serial, kSegments, MppMode::kViews, serial_options,
                     CostParams{}, &serial_injector);
  ASSERT_TRUE(serial.GroundAtoms().ok());
  ASSERT_GT(serial_injector.stats().InjectedTotal(), 0)
      << "fault schedule never fired; the test is vacuous";
  TablePtr tpi_serial = serial.GatherTPi();

  for (int threads : {2, 4}) {
    GroundingOptions options = serial_options;
    options.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    FaultInjector injector(fault_options);
    MppGrounder grounder(rkb, kSegments, MppMode::kViews, options,
                         CostParams{}, &injector);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    EXPECT_TRUE(TablesEqualExact(*tpi_serial, *grounder.GatherTPi()))
        << threads << " threads under faults: TPi differs from serial";
    // The deterministic fault schedule is keyed on motion indices, which
    // are assigned on the orchestrator thread before any fan-out — so the
    // same faults fire and recover regardless of thread count.
    EXPECT_EQ(serial_injector.stats().InjectedTotal(),
              injector.stats().InjectedTotal());
    EXPECT_EQ(serial_injector.stats().recovered_faults,
              injector.stats().recovered_faults);
    EXPECT_EQ(serial_injector.stats().retries, injector.stats().retries);
  }
}

TEST(ParallelMppTest, CheckpointResumeWithThreadsMatchesSerialRun) {
  KnowledgeBase kb = BiggishKB();

  GroundingOptions full_options;
  full_options.max_iterations = 4;
  full_options.num_threads = 1;
  RelationalKB rkb_full = BuildRelationalModel(kb);
  MppGrounder full(rkb_full, kSegments, MppMode::kViews, full_options);
  ASSERT_TRUE(full.GroundAtoms().ok());
  TablePtr tpi_full = full.GatherTPi();

  // Threaded run interrupted after 2 iterations, checkpointing each one...
  const std::string dir = FreshDir("resume");
  GroundingOptions interrupted_options = full_options;
  interrupted_options.max_iterations = 2;
  interrupted_options.num_threads = 4;
  interrupted_options.checkpoint_dir = dir;
  RelationalKB rkb_cut = BuildRelationalModel(kb);
  MppGrounder interrupted(rkb_cut, kSegments, MppMode::kViews,
                          interrupted_options);
  ASSERT_TRUE(interrupted.GroundAtoms().ok());

  // ... then resumed with a different thread count must land exactly where
  // the uninterrupted serial run did.
  GroundingOptions resumed_options = full_options;
  resumed_options.num_threads = 2;
  RelationalKB rkb_resume = BuildRelationalModel(kb);
  MppGrounder resumed(rkb_resume, kSegments, MppMode::kViews,
                      resumed_options);
  ASSERT_TRUE(resumed.ResumeFrom(dir).ok());
  ASSERT_TRUE(resumed.GroundAtoms().ok());
  EXPECT_TRUE(TablesEqualExact(*tpi_full, *resumed.GatherTPi()));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace probkb
