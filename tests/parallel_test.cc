// Parallel-vs-serial equivalence: the threaded engine must reproduce the
// serial engine bit-for-bit — same rows in the same order, same fact ids,
// same fault schedule — at every thread count. Plus unit coverage for the
// ThreadPool and FlatRowIndex primitives underneath.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "datagen/synthetic_kb.h"
#include "engine/exec_context.h"
#include "engine/flat_hash.h"
#include "engine/ops.h"
#include "engine/plan.h"
#include "fault/fault_injector.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace probkb {
namespace {

constexpr int kSegments = 4;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/probkb_parallel_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolOfOneRunsInlineWithNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  int64_t sum = 0;
  pool.ParallelFor(100, 7, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(100, 10, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPoolTest, ZeroAndNegativeIterationCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(-5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ResolveThreadsPrecedence) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);
  setenv("PROBKB_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 5);
  EXPECT_EQ(ThreadPool::ResolveThreads(2), 2);  // explicit beats env
  unsetenv("PROBKB_THREADS");
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);  // hardware fallback
}

// --- FlatRowIndex --------------------------------------------------------------

TEST(FlatRowIndexTest, ChainsPreserveInsertionOrder) {
  FlatRowIndex index;
  index.Insert(42, 7);
  index.Insert(99, 1);
  index.Insert(42, 3);
  index.Insert(42, 11);
  std::vector<int64_t> chain;
  for (int64_t e = index.Head(42); e >= 0; e = index.Next(e)) {
    chain.push_back(index.Row(e));
  }
  EXPECT_EQ(chain, (std::vector<int64_t>{7, 3, 11}));
  EXPECT_EQ(index.Head(1234), -1);
  EXPECT_EQ(index.size(), 4);
}

TEST(FlatRowIndexTest, CollidingHashesProbeToDistinctSlots) {
  FlatRowIndex index;
  // Hashes equal mod any power-of-two slot count collide on the home slot;
  // linear probing must still keep their chains separate.
  const size_t a = 16, b = 32, c = 48;
  index.Insert(a, 1);
  index.Insert(b, 2);
  index.Insert(c, 3);
  index.Insert(a, 4);
  std::vector<int64_t> chain_a;
  for (int64_t e = index.Head(a); e >= 0; e = index.Next(e)) {
    chain_a.push_back(index.Row(e));
  }
  EXPECT_EQ(chain_a, (std::vector<int64_t>{1, 4}));
  ASSERT_GE(index.Head(b), 0);
  EXPECT_EQ(index.Row(index.Head(b)), 2);
  ASSERT_GE(index.Head(c), 0);
  EXPECT_EQ(index.Row(index.Head(c)), 3);
}

TEST(FlatRowIndexTest, GrowthKeepsEveryChainReachable) {
  FlatRowIndex index;
  constexpr int64_t kKeys = 5000;
  for (int64_t i = 0; i < kKeys; ++i) {
    index.Insert(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull, i);
  }
  EXPECT_EQ(index.size(), kKeys);
  for (int64_t i = 0; i < kKeys; ++i) {
    int64_t e = index.Head(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull);
    ASSERT_GE(e, 0) << "key " << i << " lost in growth";
    EXPECT_EQ(index.Row(e), i);
  }
}

TEST(FlatRowIndexTest, ReservePreventsMidBuildRehash) {
  FlatRowIndex reserved;
  reserved.Reserve(4000);
  const size_t capacity_before = reserved.slot_capacity();
  for (int64_t i = 0; i < 4000; ++i) {
    reserved.Insert(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull, i);
  }
  EXPECT_EQ(reserved.slot_capacity(), capacity_before);

  FlatRowIndex unreserved;
  for (int64_t i = 0; i < 4000; ++i) {
    unreserved.Insert(static_cast<size_t>(i) * 0x9E3779B97F4A7C15ull, i);
  }
  EXPECT_EQ(unreserved.slot_capacity(), reserved.slot_capacity());
}

// --- TablesEqualExact ----------------------------------------------------------

TEST(TablesEqualExactTest, DistinguishesOrderUnlikeBagEquality) {
  Schema s({{"a", ColumnType::kInt64}});
  auto t1 = Table::Make(s);
  auto t2 = Table::Make(s);
  t1->AppendRow({Value::Int64(1)});
  t1->AppendRow({Value::Int64(2)});
  t2->AppendRow({Value::Int64(2)});
  t2->AppendRow({Value::Int64(1)});
  EXPECT_TRUE(TablesEqualAsBags(*t1, *t2));
  EXPECT_FALSE(TablesEqualExact(*t1, *t2));
  EXPECT_TRUE(TablesEqualExact(*t1, *t1));
}

// --- Morsel-parallel hash join -------------------------------------------------

TablePtr RandomPairs(int64_t rows, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  auto t = Table::Make(
      Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}));
  t->ReserveRows(rows);
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({Value::Int64(rng.UniformInt(0, domain)),
                  Value::Int64(rng.UniformInt(0, domain))});
  }
  return t;
}

TEST(ParallelJoinTest, MorselProbeIsBitIdenticalToSerial) {
  // Big enough that the morsel path actually engages (>= 2 x 2048 probe
  // rows) and produces multi-match chains.
  auto left = RandomPairs(3 * 2048, 512, 11);
  auto right = RandomPairs(4096, 512, 12);
  for (JoinType type :
       {JoinType::kInner, JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    std::vector<JoinOutputCol> cols;
    if (type == JoinType::kInner) {
      cols = {JoinOutputCol::Left(0, "k"), JoinOutputCol::Left(1, "lv"),
              JoinOutputCol::Right(1, "rv")};
    }
    ExecContext serial_ctx;
    auto serial = HashJoin(Scan(left), Scan(right), {0}, {0}, type, cols)
                      ->Execute(&serial_ctx);
    ASSERT_TRUE(serial.ok());

    ThreadPool pool(4);
    ExecContext parallel_ctx;
    parallel_ctx.set_thread_pool(&pool);
    auto parallel = HashJoin(Scan(left), Scan(right), {0}, {0}, type, cols)
                        ->Execute(&parallel_ctx);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(TablesEqualExact(**serial, **parallel))
        << "join type " << static_cast<int>(type);
  }
}

// --- Grounding fixpoint equivalence --------------------------------------------

/// A KB big enough to push several statements past the morsel threshold.
KnowledgeBase BiggishKB() {
  SyntheticKbConfig config;
  config.scale = 0.01;
  auto skb = GenerateReverbSherlockKb(config);
  EXPECT_TRUE(skb.ok());
  KnowledgeBase kb = skb->kb;
  EXPECT_TRUE(AddRandomFacts(&kb, 6000, 333).ok());
  return kb;
}

TEST(ParallelGroundingTest, FixpointBitIdenticalAcrossThreadCounts) {
  KnowledgeBase kb = BiggishKB();
  GroundingOptions serial_options;
  serial_options.max_iterations = 3;
  serial_options.apply_constraints_each_iteration = true;
  serial_options.num_threads = 1;
  RelationalKB rkb_serial = BuildRelationalModel(kb);
  Grounder serial(&rkb_serial, serial_options);
  ASSERT_TRUE(serial.GroundAtoms().ok());
  auto phi_serial = serial.GroundFactors();
  ASSERT_TRUE(phi_serial.ok());

  for (int threads : {2, 4}) {
    GroundingOptions options = serial_options;
    options.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    Grounder grounder(&rkb, options);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    EXPECT_TRUE(TablesEqualExact(*rkb_serial.t_pi, *rkb.t_pi))
        << threads << " threads: TPi differs from serial";
    EXPECT_TRUE(TablesEqualExact(**phi_serial, **phi))
        << threads << " threads: TPhi differs from serial";
    EXPECT_EQ(serial.stats().iterations, grounder.stats().iterations);
  }
}

TEST(ParallelMppTest, MotionsBitIdenticalAcrossThreadCounts) {
  KnowledgeBase kb = BiggishKB();
  GroundingOptions serial_options;
  serial_options.max_iterations = 3;
  serial_options.num_threads = 1;
  RelationalKB rkb_serial = BuildRelationalModel(kb);
  MppGrounder serial(rkb_serial, kSegments, MppMode::kViews,
                     serial_options);
  ASSERT_TRUE(serial.GroundAtoms().ok());
  auto phi_serial = serial.GroundFactors();
  ASSERT_TRUE(phi_serial.ok());
  TablePtr tpi_serial = serial.GatherTPi();

  for (int threads : {2, 4}) {
    GroundingOptions options = serial_options;
    options.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    MppGrounder grounder(rkb, kSegments, MppMode::kViews, options);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    EXPECT_TRUE(TablesEqualExact(*tpi_serial, *grounder.GatherTPi()))
        << threads << " threads: gathered TPi differs from serial";
    EXPECT_TRUE(TablesEqualExact(**phi_serial, **phi))
        << threads << " threads: TPhi differs from serial";
    // Same motions in the same order ship the same tuple counts: the
    // injector-facing schedule is thread-count independent.
    ASSERT_EQ(serial.cost().steps().size(), grounder.cost().steps().size());
    for (size_t i = 0; i < serial.cost().steps().size(); ++i) {
      EXPECT_EQ(serial.cost().steps()[i].kind,
                grounder.cost().steps()[i].kind);
      EXPECT_EQ(serial.cost().steps()[i].tuples_shipped,
                grounder.cost().steps()[i].tuples_shipped);
    }
  }
}

TEST(ParallelMppTest, InjectedFaultsRecoverIdenticallyAcrossThreadCounts) {
  KnowledgeBase kb = BiggishKB();
  FaultInjectionOptions fault_options;
  fault_options.enabled = true;
  fault_options.seed = 104729;
  fault_options.segment_failure_prob = 0.25;
  fault_options.drop_batch_prob = 0.25;
  fault_options.duplicate_batch_prob = 0.1;

  GroundingOptions serial_options;
  serial_options.max_iterations = 3;
  serial_options.num_threads = 1;
  RelationalKB rkb_serial = BuildRelationalModel(kb);
  FaultInjector serial_injector(fault_options);
  MppGrounder serial(rkb_serial, kSegments, MppMode::kViews, serial_options,
                     CostParams{}, &serial_injector);
  ASSERT_TRUE(serial.GroundAtoms().ok());
  ASSERT_GT(serial_injector.stats().InjectedTotal(), 0)
      << "fault schedule never fired; the test is vacuous";
  TablePtr tpi_serial = serial.GatherTPi();

  for (int threads : {2, 4}) {
    GroundingOptions options = serial_options;
    options.num_threads = threads;
    RelationalKB rkb = BuildRelationalModel(kb);
    FaultInjector injector(fault_options);
    MppGrounder grounder(rkb, kSegments, MppMode::kViews, options,
                         CostParams{}, &injector);
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    EXPECT_TRUE(TablesEqualExact(*tpi_serial, *grounder.GatherTPi()))
        << threads << " threads under faults: TPi differs from serial";
    // The deterministic fault schedule is keyed on motion indices, which
    // are assigned on the orchestrator thread before any fan-out — so the
    // same faults fire and recover regardless of thread count.
    EXPECT_EQ(serial_injector.stats().InjectedTotal(),
              injector.stats().InjectedTotal());
    EXPECT_EQ(serial_injector.stats().recovered_faults,
              injector.stats().recovered_faults);
    EXPECT_EQ(serial_injector.stats().retries, injector.stats().retries);
  }
}

TEST(ParallelMppTest, CheckpointResumeWithThreadsMatchesSerialRun) {
  KnowledgeBase kb = BiggishKB();

  GroundingOptions full_options;
  full_options.max_iterations = 4;
  full_options.num_threads = 1;
  RelationalKB rkb_full = BuildRelationalModel(kb);
  MppGrounder full(rkb_full, kSegments, MppMode::kViews, full_options);
  ASSERT_TRUE(full.GroundAtoms().ok());
  TablePtr tpi_full = full.GatherTPi();

  // Threaded run interrupted after 2 iterations, checkpointing each one...
  const std::string dir = FreshDir("resume");
  GroundingOptions interrupted_options = full_options;
  interrupted_options.max_iterations = 2;
  interrupted_options.num_threads = 4;
  interrupted_options.checkpoint_dir = dir;
  RelationalKB rkb_cut = BuildRelationalModel(kb);
  MppGrounder interrupted(rkb_cut, kSegments, MppMode::kViews,
                          interrupted_options);
  ASSERT_TRUE(interrupted.GroundAtoms().ok());

  // ... then resumed with a different thread count must land exactly where
  // the uninterrupted serial run did.
  GroundingOptions resumed_options = full_options;
  resumed_options.num_threads = 2;
  RelationalKB rkb_resume = BuildRelationalModel(kb);
  MppGrounder resumed(rkb_resume, kSegments, MppMode::kViews,
                      resumed_options);
  ASSERT_TRUE(resumed.ResumeFrom(dir).ok());
  ASSERT_TRUE(resumed.GroundAtoms().ok());
  EXPECT_TRUE(TablesEqualExact(*tpi_full, *resumed.GatherTPi()));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace probkb
