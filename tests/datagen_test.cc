#include "datagen/synthetic_kb.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "grounding/grounder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticKbConfig cfg;
    cfg.scale = 0.01;
    auto skb = GenerateReverbSherlockKb(cfg);
    ASSERT_TRUE(skb.ok()) << skb.status();
    skb_ = new SyntheticKb(std::move(*skb));
    cfg_ = new SyntheticKbConfig(cfg);
  }
  static void TearDownTestSuite() {
    delete skb_;
    delete cfg_;
    skb_ = nullptr;
    cfg_ = nullptr;
  }
  static SyntheticKb* skb_;
  static SyntheticKbConfig* cfg_;
};

SyntheticKb* GeneratorTest::skb_ = nullptr;
SyntheticKbConfig* GeneratorTest::cfg_ = nullptr;

TEST_F(GeneratorTest, HitsConfiguredCounts) {
  const KnowledgeBase& kb = skb_->kb;
  EXPECT_TRUE(kb.Validate().ok());
  // Rules exactly; facts within a small slack (deduping after entity
  // merging can drop a few).
  EXPECT_EQ(static_cast<int64_t>(kb.rules().size()), cfg_->NumRules());
  EXPECT_GE(static_cast<int64_t>(kb.facts().size()),
            cfg_->NumFacts() * 95 / 100);
  EXPECT_GE(kb.relations().size(), cfg_->NumRelations());  // + reserved heads
  EXPECT_GT(kb.constraints().size(), 0u);
}

TEST_F(GeneratorTest, RulesAreTypeConsistentWithSignatures) {
  std::unordered_map<RelationId, RelationSignature> sig;
  for (const auto& s : skb_->kb.signatures()) sig[s.relation] = s;
  for (const HornRule& r : skb_->kb.rules()) {
    ASSERT_TRUE(sig.count(r.head));
    EXPECT_EQ(sig[r.head].domain, r.c1);
    EXPECT_EQ(sig[r.head].range, r.c2);
    // Body classes are consistent with the structure.
    const auto& q = sig[r.body1];
    switch (r.structure) {
      case RuleStructure::kM1:
        EXPECT_EQ(q.domain, r.c1);
        EXPECT_EQ(q.range, r.c2);
        break;
      case RuleStructure::kM2:
        EXPECT_EQ(q.domain, r.c2);
        EXPECT_EQ(q.range, r.c1);
        break;
      case RuleStructure::kM3:
      case RuleStructure::kM5:
        EXPECT_EQ(q.domain, r.c3);
        EXPECT_EQ(q.range, r.c1);
        break;
      case RuleStructure::kM4:
      case RuleStructure::kM6:
        EXPECT_EQ(q.domain, r.c1);
        EXPECT_EQ(q.range, r.c3);
        break;
    }
  }
}

TEST_F(GeneratorTest, FactsAreTypeConsistent) {
  std::unordered_map<RelationId, RelationSignature> sig;
  for (const auto& s : skb_->kb.signatures()) sig[s.relation] = s;
  for (const Fact& f : skb_->kb.facts()) {
    auto it = sig.find(f.relation);
    ASSERT_NE(it, sig.end());
    EXPECT_EQ(f.c1, it->second.domain);
    EXPECT_EQ(f.c2, it->second.range);
  }
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  auto again = GenerateReverbSherlockKb(*cfg_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->kb.facts().size(), skb_->kb.facts().size());
  EXPECT_EQ(again->kb.rules().size(), skb_->kb.rules().size());
  EXPECT_EQ(again->truth.true_closure, skb_->truth.true_closure);
  for (size_t i = 0; i < skb_->kb.facts().size(); ++i) {
    EXPECT_EQ(skb_->kb.facts()[i].x, again->kb.facts()[i].x);
    EXPECT_EQ(skb_->kb.facts()[i].relation, again->kb.facts()[i].relation);
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticKbConfig other = *cfg_;
  other.seed = cfg_->seed + 1;
  auto skb2 = GenerateReverbSherlockKb(other);
  ASSERT_TRUE(skb2.ok());
  bool any_diff = skb2->kb.facts().size() != skb_->kb.facts().size();
  for (size_t i = 0;
       !any_diff && i < std::min(skb2->kb.facts().size(),
                                 skb_->kb.facts().size());
       ++i) {
    any_diff = skb2->kb.facts()[i].x != skb_->kb.facts()[i].x ||
               skb2->kb.facts()[i].relation != skb_->kb.facts()[i].relation;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(GeneratorTest, InjectedErrorsAreLabeled) {
  const GroundTruth& truth = skb_->truth;
  EXPECT_GT(truth.labels.ambiguous_entities.size(), 0u);
  EXPECT_GT(truth.labels.incorrect_extractions.size(), 0u);
  EXPECT_GT(truth.labels.bad_rule_heads.size(), 0u);
  EXPECT_GT(truth.incorrect_rule_indices.size(), 0u);
  // Incorrect extractions are present in the KB and false in the world.
  int found = 0;
  for (const Fact& f : skb_->kb.facts()) {
    if (truth.labels.incorrect_extractions.count({f.relation, f.x, f.y})) {
      ++found;
      EXPECT_FALSE(truth.true_closure.count({f.relation, f.x, f.y}));
    }
  }
  EXPECT_GT(found, 0);
}

TEST_F(GeneratorTest, AmbiguousEntitiesHaveTwoReferents) {
  for (EntityId e : skb_->truth.labels.ambiguous_entities) {
    const auto& u = skb_->truth.UnderlyingOf(e);
    ASSERT_EQ(u.size(), 2u);
    EXPECT_EQ(u[0], e);
    EXPECT_NE(u[1], e);
  }
}

TEST_F(GeneratorTest, TruthOracleAcceptsMergedReferents) {
  // A surface fact rewritten onto an ambiguous entity is still correct.
  const GroundTruth& truth = skb_->truth;
  ASSERT_FALSE(truth.labels.ambiguous_entities.empty());
  int checked = 0;
  for (const Fact& f : skb_->kb.facts()) {
    if (!f.has_weight()) continue;
    if (truth.labels.ambiguous_entities.count(f.x) == 0) continue;
    if (truth.labels.incorrect_extractions.count({f.relation, f.x, f.y})) {
      continue;
    }
    EXPECT_TRUE(truth.IsTrue(f.relation, f.x, f.y))
        << skb_->kb.FactToString(f);
    ++checked;
    if (checked > 20) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(GeneratorTest, BaseTrueFactsRespectFunctionalDegrees) {
  // Count (R, x) fan-out of *true* base facts for Type-I functional
  // relations; must not exceed the declared degree (ambiguity merging can
  // break this for surface facts, so check against underlying referents by
  // skipping merged entities).
  std::unordered_map<RelationId, int64_t> degree;
  for (const auto& c : skb_->kb.constraints()) {
    if (c.type == FunctionalityType::kTypeI) degree[c.relation] = c.degree;
  }
  std::map<std::pair<RelationId, EntityId>, int64_t> fanout;
  for (const Fact& f : skb_->kb.facts()) {
    if (!degree.count(f.relation)) continue;
    if (skb_->truth.labels.ambiguous_entities.count(f.x)) continue;
    if (skb_->truth.labels.incorrect_extractions.count(
            {f.relation, f.x, f.y})) {
      continue;
    }
    if (skb_->truth.labels.general_type_entities.count(f.y)) continue;
    if (skb_->truth.labels.synonym_entities.count(f.y)) continue;
    ++fanout[{f.relation, f.x}];
  }
  for (const auto& [key, count] : fanout) {
    EXPECT_LE(count, degree[key.first])
        << "relation " << key.first << " entity " << key.second;
  }
}

TEST_F(GeneratorTest, TruthClosureContainsBaseTrueFacts) {
  const GroundTruth& truth = skb_->truth;
  for (const Fact& f : skb_->kb.facts()) {
    if (truth.labels.incorrect_extractions.count({f.relation, f.x, f.y})) {
      continue;
    }
    // Every non-error base fact is true under some referent combination.
    EXPECT_TRUE(truth.IsTrue(f.relation, f.x, f.y));
  }
}

TEST(PrecisionTest, CountsOnlyInferredFacts) {
  GroundTruth truth;
  truth.true_closure.insert({1, 2, 3});
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, 0.9});  // base, ignored
  Fact inferred_true{1, 2, 0, 3, 0, std::nan("")};
  inferred_true.x = 2;
  inferred_true.y = 3;
  AppendFactRow(t_pi.get(), 1, inferred_true);
  Fact inferred_false{9, 2, 0, 3, 0, std::nan("")};
  AppendFactRow(t_pi.get(), 2, inferred_false);

  auto report = EvaluateInferred(*t_pi, truth);
  EXPECT_EQ(report.inferred, 2);
  EXPECT_EQ(report.correct, 1);
  EXPECT_DOUBLE_EQ(report.precision, 0.5);
}

TEST(S1WorkloadTest, AddRandomRulesReachesTargetAndStaysValid) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.005;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());
  int64_t target = static_cast<int64_t>(skb->kb.rules().size()) + 300;
  ASSERT_TRUE(AddRandomRules(&skb->kb, target, 7).ok());
  EXPECT_EQ(static_cast<int64_t>(skb->kb.rules().size()), target);
  EXPECT_TRUE(skb->kb.Validate().ok());
  // No duplicate rules.
  std::set<std::tuple<int, RelationId, RelationId, RelationId, ClassId,
                      ClassId, ClassId>>
      keys;
  for (const HornRule& r : skb->kb.rules()) {
    EXPECT_TRUE(keys
                    .emplace(static_cast<int>(r.structure), r.head, r.body1,
                             r.body2, r.c1, r.c2, r.c3)
                    .second);
  }
}

TEST(S2WorkloadTest, AddRandomFactsReachesTargetAndStaysValid) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.005;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());
  int64_t target = static_cast<int64_t>(skb->kb.facts().size()) + 2000;
  ASSERT_TRUE(AddRandomFacts(&skb->kb, target, 9).ok());
  EXPECT_EQ(static_cast<int64_t>(skb->kb.facts().size()), target);
  EXPECT_TRUE(skb->kb.Validate().ok());
}

TEST(S1WorkloadTest, RequiresSignatures) {
  KnowledgeBase kb;
  EXPECT_FALSE(AddRandomRules(&kb, 10, 1).ok());
  EXPECT_FALSE(AddRandomFacts(&kb, 10, 1).ok());
}

}  // namespace
}  // namespace probkb
