#include "relational/snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "relational/catalog.h"
#include "relational/table.h"
#include "util/status.h"

namespace probkb {
namespace {

Schema TwoCol() {
  return Schema({{"a", ColumnType::kInt64}, {"w", ColumnType::kFloat64}});
}

TablePtr MakeRows(int64_t n, int64_t base = 0) {
  auto t = Table::Make(TwoCol());
  for (int64_t i = 0; i < n; ++i) {
    t->AppendRow({Value::Int64(base + i), Value::Float64(0.5)});
  }
  return t;
}

// --- Table copy-on-write snapshots ---------------------------------------------

TEST(TableSnapshotTest, AppendAfterSnapshotDoesNotLeakIntoIt) {
  TablePtr t = MakeRows(3);
  ConstTablePtr snap = t->Snapshot();
  ASSERT_EQ(snap->NumRows(), 3);

  t->AppendRow({Value::Int64(99), Value::Float64(0.9)});
  t->AppendRow({Value::Int64(100), Value::Float64(0.9)});

  EXPECT_EQ(t->NumRows(), 5);
  EXPECT_EQ(snap->NumRows(), 3);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(snap->row(i)[0].i64(), i);
  }
}

TEST(TableSnapshotTest, ClearAfterSnapshotPreservesSnapshotRows) {
  TablePtr t = MakeRows(4);
  ConstTablePtr snap = t->Snapshot();
  t->Clear();
  EXPECT_EQ(t->NumRows(), 0);
  ASSERT_EQ(snap->NumRows(), 4);
  EXPECT_EQ(snap->row(3)[0].i64(), 3);
}

TEST(TableSnapshotTest, SnapshotsAreIndependentAcrossEpochs) {
  TablePtr t = MakeRows(1);
  ConstTablePtr epoch0 = t->Snapshot();
  t->AppendRow({Value::Int64(1), Value::Float64(0.5)});
  ConstTablePtr epoch1 = t->Snapshot();
  t->AppendRow({Value::Int64(2), Value::Float64(0.5)});

  EXPECT_EQ(epoch0->NumRows(), 1);
  EXPECT_EQ(epoch1->NumRows(), 2);
  EXPECT_EQ(t->NumRows(), 3);
}

TEST(TableSnapshotTest, CloneDetachesFromSource) {
  TablePtr t = MakeRows(2);
  TablePtr copy = t->Clone();
  copy->AppendRow({Value::Int64(7), Value::Float64(0.7)});
  EXPECT_EQ(t->NumRows(), 2);
  EXPECT_EQ(copy->NumRows(), 3);
}

// --- Catalog snapshots ---------------------------------------------------------

TEST(CatalogSnapshotTest, FrozenViewSurvivesPutAndDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("t_pi", MakeRows(2)).ok());
  auto snap = catalog.Snapshot();

  // Replace and drop behind the snapshot's back.
  catalog.Put("t_pi", MakeRows(10, /*base=*/100));
  ASSERT_TRUE(catalog.Drop("t_pi").ok());

  auto t = snap->Get("t_pi");
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ((*t)->NumRows(), 2);
  EXPECT_EQ((*t)->row(0)[0].i64(), 0);
  EXPECT_FALSE(snap->Get("nope").ok());
}

// --- SnapshotStore epochs ------------------------------------------------------

TEST(SnapshotStoreTest, EpochsAdvanceAndPinsStick) {
  SnapshotStore store;
  EXPECT_EQ(store.current_epoch(), -1);
  EXPECT_FALSE(store.Pin().ok());

  Catalog catalog;
  catalog.Put("t", MakeRows(1));
  auto e0 = store.Publish(catalog.Snapshot());
  ASSERT_TRUE(e0.ok());
  EXPECT_EQ(*e0, 0);

  PinnedSnapshot pin = store.Pin();
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin.epoch, 0);

  catalog.Put("t", MakeRows(5));
  auto e1 = store.Publish(catalog.Snapshot());
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 1);
  EXPECT_EQ(store.current_epoch(), 1);

  // The old pin still resolves epoch-0 data; a fresh pin sees epoch 1.
  auto old_t = pin.catalog->Get("t");
  ASSERT_TRUE(old_t.ok());
  EXPECT_EQ((*old_t)->NumRows(), 1);
  PinnedSnapshot fresh = store.Pin();
  EXPECT_EQ(fresh.epoch, 1);
  EXPECT_EQ((*fresh.catalog->Get("t"))->NumRows(), 5);
}

TEST(SnapshotStoreTest, FailedPublishLeavesEpochUntouched) {
  SnapshotStore store;
  Catalog catalog;
  catalog.Put("t", MakeRows(2));
  ASSERT_TRUE(store.Publish(catalog.Snapshot()).ok());

  store.SetPublishObserverForTest([](int64_t next_epoch) {
    EXPECT_EQ(next_epoch, 1);
    return Status::Internal("injected publish fault");
  });
  catalog.Put("t", MakeRows(9));
  auto failed = store.Publish(catalog.Snapshot());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);

  // Readers keep seeing epoch 0, bit-identically.
  EXPECT_EQ(store.current_epoch(), 0);
  PinnedSnapshot pin = store.Pin();
  EXPECT_EQ(pin.epoch, 0);
  EXPECT_EQ((*pin.catalog->Get("t"))->NumRows(), 2);

  // Clearing the fault lets the writer retry; the epoch was not burned.
  store.SetPublishObserverForTest(nullptr);
  auto retried = store.Publish(catalog.Snapshot());
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 1);
  EXPECT_EQ((*store.Pin().catalog->Get("t"))->NumRows(), 9);
}

/// Snapshot isolation under concurrency: readers pinned at an epoch must
/// see bit-identical rows however many epochs the writer publishes (and
/// however many injected publish faults fire) while they read.
TEST(SnapshotStoreTest, ConcurrentReadersSeeFrozenEpochsDuringPublishes) {
  SnapshotStore store;
  Catalog catalog;
  // Epoch e carries e+1 rows with values 0..e; readers can therefore
  // verify a pin's full contents from its epoch number alone.
  TablePtr t = MakeRows(1);
  catalog.Put("t", t);
  ASSERT_TRUE(store.Publish(catalog.Snapshot()).ok());

  constexpr int kReaders = 8;
  constexpr int kEpochs = 50;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &violations] {
      while (!stop.load(std::memory_order_relaxed)) {
        PinnedSnapshot pin = store.Pin();
        if (!pin.ok()) continue;
        auto table = pin.catalog->Get("t");
        if (!table.ok()) {
          violations.fetch_add(1);
          continue;
        }
        // Re-read the pinned table several times while the writer keeps
        // publishing: every read must match the epoch's frozen contents.
        for (int pass = 0; pass < 3; ++pass) {
          if ((*table)->NumRows() != pin.epoch + 1) {
            violations.fetch_add(1);
            break;
          }
          for (int64_t i = 0; i <= pin.epoch; ++i) {
            if ((*table)->row(i)[0].i64() != i) {
              violations.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }

  // Writer: publish epochs 1..kEpochs, mutating the live table in place
  // (copy-on-write detaches the published columns), with a fault injected
  // on every 10th epoch — aborted publishes must be invisible to readers.
  int64_t next_value = 1;
  for (int e = 1; e <= kEpochs; ++e) {
    t->AppendRow({Value::Int64(next_value++), Value::Float64(0.5)});
    if (e % 10 == 0) {
      store.SetPublishObserverForTest(
          [](int64_t) { return Status::Internal("chaos"); });
      EXPECT_FALSE(store.Publish(catalog.Snapshot()).ok());
      store.SetPublishObserverForTest(nullptr);
    }
    auto published = store.Publish(catalog.Snapshot());
    ASSERT_TRUE(published.ok()) << published.status();
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(store.current_epoch(), kEpochs);
}

}  // namespace
}  // namespace probkb
