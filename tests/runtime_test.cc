#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <climits>
#include <cstdlib>
#include <string>
#include <vector>

#include "grounding/mpp_grounder.h"
#include "kb/relational_model.h"
#include "mpp/mpp_context.h"
#include "obs/flight_recorder.h"
#include "runtime/process_runtime.h"
#include "runtime/wire.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

/// Bit-identical comparison (same as fault_test): row count and every row
/// equal in order, ids and weights included.
::testing::AssertionResult TablesIdentical(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.NumRows() << " vs " << b.NumRows();
  }
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!a.row(i).Equals(b.row(i))) {
      return ::testing::AssertionFailure() << "rows differ at index " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

int CountEvents(const std::vector<FrRecord>& timeline, FrEvent event) {
  int n = 0;
  for (const FrRecord& r : timeline) {
    if (r.event == event) ++n;
  }
  return n;
}

Schema MixedSchema() {
  return Schema({{"k", ColumnType::kInt64}, {"w", ColumnType::kFloat64}});
}

TablePtr MixedTable(int rows) {
  auto t = Table::Make(MixedSchema());
  for (int i = 0; i < rows; ++i) {
    // Exercise NULLs on both column types and a non-trivial double.
    t->AppendRow({i % 5 == 3 ? Value::Null() : Value::Int64(i * 7 - 3),
                  i % 4 == 1 ? Value::Null() : Value::Float64(0.1 * i - 2.5)});
  }
  return t;
}

// --- Wire format ---------------------------------------------------------------

TEST(WireTest, TableSerializationRoundTripsBitIdentically) {
  TablePtr t = MixedTable(37);
  std::string payload;
  wire::SerializeTable(*t, &payload);
  auto back = wire::DeserializeTable(t->schema(), payload);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(TablesIdentical(**back, *t));
  // NULLs survive as NULLs, not as zero values.
  EXPECT_TRUE((*back)->IsNull(3, 0));
  EXPECT_TRUE((*back)->IsNull(1, 1));
  EXPECT_FALSE((*back)->IsNull(0, 0));
}

TEST(WireTest, EmptyTableRoundTrips) {
  TablePtr t = Table::Make(MixedSchema());
  std::string payload;
  wire::SerializeTable(*t, &payload);
  auto back = wire::DeserializeTable(t->schema(), payload);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ((*back)->NumRows(), 0);
}

TEST(WireTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(wire::DeserializeTable(MixedSchema(), "short").ok());
  std::string payload;
  wire::SerializeTable(*MixedTable(4), &payload);
  payload.push_back('x');  // trailing junk
  EXPECT_FALSE(wire::DeserializeTable(MixedSchema(), payload).ok());
}

TEST(WireTest, FrameRoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload;
  wire::SerializeTable(*MixedTable(11), &payload);
  ASSERT_TRUE(
      wire::WriteFrame(fds[0], wire::FrameType::kExchange, 42, payload).ok());
  auto frame = wire::ReadFrame(fds[1], /*deadline_seconds=*/5.0);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, wire::FrameType::kExchange);
  EXPECT_EQ(frame->motion, 42);
  EXPECT_EQ(frame->payload, payload);
  close(fds[0]);
  close(fds[1]);
}

TEST(WireTest, CorruptedFrameIsDetectedAsDataLoss) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload;
  wire::SerializeTable(*MixedTable(11), &payload);
  ASSERT_TRUE(wire::WriteFrame(fds[0], wire::FrameType::kExchange, 7, payload,
                               /*corrupt=*/true)
                  .ok());
  auto frame = wire::ReadFrame(fds[1], /*deadline_seconds=*/5.0);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  // The damaged frame was fully consumed: the channel stays usable.
  ASSERT_TRUE(
      wire::WriteFrame(fds[0], wire::FrameType::kPing, -1, {}).ok());
  auto ping = wire::ReadFrame(fds[1], /*deadline_seconds=*/5.0);
  ASSERT_TRUE(ping.ok()) << ping.status();
  EXPECT_EQ(ping->type, wire::FrameType::kPing);
  close(fds[0]);
  close(fds[1]);
}

TEST(WireTest, ReadDeadlineTripsOnSilentPeer) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto frame = wire::ReadFrame(fds[1], /*deadline_seconds=*/0.05);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
  close(fds[0]);
  close(fds[1]);
}

TEST(WireTest, AbsurdDeadlineDoesNotOverflowPollTimeout) {
  // A deadline decades out converts to more milliseconds than int holds;
  // the cast used to overflow (UB — in practice a negative poll timeout,
  // i.e. block forever). The timeout is now clamped to INT_MAX, so a
  // frame that is already on the wire must come back promptly.
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload;
  wire::SerializeTable(*MixedTable(3), &payload);
  ASSERT_TRUE(
      wire::WriteFrame(fds[0], wire::FrameType::kExchange, 9, payload).ok());
  auto frame = wire::ReadFrame(fds[1], /*deadline_seconds=*/1e9);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->payload, payload);
  close(fds[0]);
  close(fds[1]);
}

TEST(WireTest, ChecksumCoversLength) {
  const char data[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_NE(wire::FrameChecksum(data, 4), wire::FrameChecksum(data, 8));
}

// --- Runtime selection ---------------------------------------------------------

TEST(RuntimeKindTest, ParseAcceptsCanonicalNames) {
  RuntimeKind kind = RuntimeKind::kProcess;
  EXPECT_TRUE(ParseRuntimeKind("sim", &kind));
  EXPECT_EQ(kind, RuntimeKind::kSim);
  EXPECT_TRUE(ParseRuntimeKind("PROCESS", &kind));
  EXPECT_EQ(kind, RuntimeKind::kProcess);
  EXPECT_FALSE(ParseRuntimeKind("greenplum", &kind));
}

TEST(RuntimeKindTest, ResolvePrefersRequestThenEnvThenSim) {
  unsetenv("PROBKB_RUNTIME");
  EXPECT_EQ(ResolveRuntimeKind(nullptr), RuntimeKind::kSim);
  EXPECT_EQ(ResolveRuntimeKind("process"), RuntimeKind::kProcess);
  // Garbage falls back to sim with a warning, mirroring ResolveThreads.
  EXPECT_EQ(ResolveRuntimeKind("bogus"), RuntimeKind::kSim);
  setenv("PROBKB_RUNTIME", "process", 1);
  EXPECT_EQ(ResolveRuntimeKind(nullptr), RuntimeKind::kProcess);
  EXPECT_EQ(ResolveRuntimeKind("sim"), RuntimeKind::kSim);  // CLI wins
  setenv("PROBKB_RUNTIME", "cluster", 1);
  EXPECT_EQ(ResolveRuntimeKind(nullptr), RuntimeKind::kSim);
  unsetenv("PROBKB_RUNTIME");
}

// --- ProcessRuntime supervision ------------------------------------------------

ProcessRuntimeOptions SmallRuntime(int segments) {
  ProcessRuntimeOptions options;
  options.num_segments = segments;
  options.frame_deadline_seconds = 10.0;  // generous; CI machines are slow
  return options;
}

TEST(ProcessRuntimeTest, ExchangeEchoesTuplesThroughWorkers) {
  ProcessRuntime runtime(SmallRuntime(2));
  ASSERT_TRUE(runtime.Spawn().ok());
  ASSERT_TRUE(runtime.alive());
  TablePtr t = MixedTable(23);
  for (int s = 0; s < 2; ++s) {
    auto echoed = runtime.Exchange(s, /*motion=*/s, *t, "echo");
    ASSERT_TRUE(echoed.ok()) << echoed.status();
    EXPECT_TRUE(TablesIdentical(**echoed, *t));
  }
  EXPECT_TRUE(runtime.Ping(0).ok());
  EXPECT_EQ(runtime.stats().exchanges, 2);
  EXPECT_EQ(runtime.stats().worker_deaths, 0);
  runtime.Shutdown();
  EXPECT_FALSE(runtime.alive());
}

TEST(ProcessRuntimeTest, SpawnFailureLeavesRuntimeUnusable) {
  ProcessRuntimeOptions options = SmallRuntime(2);
  options.fail_spawn_for_test = true;
  ProcessRuntime runtime(options);
  EXPECT_FALSE(runtime.Spawn().ok());
  EXPECT_FALSE(runtime.alive());
  EXPECT_FALSE(runtime.Exchange(0, 0, *MixedTable(1), "dead").ok());
}

TEST(ProcessRuntimeTest, KilledWorkerIsDetectedHarvestedAndRespawned) {
  FlightRecorder::Global()->Reset();
  ProcessRuntime runtime(SmallRuntime(2));
  ASSERT_TRUE(runtime.Spawn().ok());
  TablePtr t = MixedTable(9);
  ASSERT_TRUE(runtime.Exchange(1, /*motion=*/0, *t, "warmup").ok());

  runtime.KillWorker(1);
  // The kill is detected by the next exchange, which retries through the
  // respawned worker and still succeeds.
  auto echoed = runtime.Exchange(1, /*motion=*/1, *t, "after_kill");
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_TRUE(TablesIdentical(**echoed, *t));
  EXPECT_EQ(runtime.stats().worker_deaths, 1);
  EXPECT_EQ(runtime.stats().respawns, 1);
  runtime.Shutdown();

  std::vector<FrRecord> timeline = FlightRecorder::Global()->MergedTimeline();
  // 2 initial spawns + 1 respawn-spawn; the kill and respawn are recorded
  // with deterministic payloads (segment, motion, SIGKILL).
  EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerSpawn), 3);
  EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerRespawn), 1);
  ASSERT_EQ(CountEvents(timeline, FrEvent::kWorkerKilled), 1);
  // Dead worker's shared-memory journal was aggregated into the dump: the
  // death post-mortem plus one per worker at shutdown.
  EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerPostMortem), 3);
  for (const FrRecord& r : timeline) {
    if (r.event != FrEvent::kWorkerKilled) continue;
    EXPECT_EQ(r.a, 1);        // segment
    EXPECT_EQ(r.b, 1);        // motion where the death was detected
    EXPECT_EQ(r.c, SIGKILL);  // signal
  }
}

TEST(ProcessRuntimeTest, HeartbeatDetectsKilledWorker) {
  FlightRecorder::Global()->Reset();
  ProcessRuntimeOptions options = SmallRuntime(2);
  options.heartbeat_every_motions = 1;
  ProcessRuntime runtime(options);
  ASSERT_TRUE(runtime.Spawn().ok());
  runtime.KillWorker(0);
  runtime.HeartbeatTick(/*motion=*/5);
  EXPECT_EQ(runtime.stats().heartbeats, 1);
  EXPECT_EQ(runtime.stats().worker_deaths, 1);
  EXPECT_EQ(runtime.stats().respawns, 1);
  runtime.Shutdown();
  std::vector<FrRecord> timeline = FlightRecorder::Global()->MergedTimeline();
  ASSERT_EQ(CountEvents(timeline, FrEvent::kWorkerHeartbeat), 1);
  for (const FrRecord& r : timeline) {
    if (r.event != FrEvent::kWorkerHeartbeat) continue;
    EXPECT_EQ(r.a, 5);  // motion
    EXPECT_EQ(r.b, 2);  // both workers alive again after the respawn
  }
}

TEST(ProcessRuntimeTest, CorruptFramesAreRetriedToABitIdenticalResult) {
  FlightRecorder::Global()->Reset();
  ProcessRuntime runtime(SmallRuntime(1));
  ASSERT_TRUE(runtime.Spawn().ok());
  TablePtr t = MixedTable(31);
  // Two outbound frames are damaged after their checksum is computed; the
  // worker NACKs each, and the third attempt delivers cleanly.
  auto echoed =
      runtime.Exchange(0, /*motion=*/3, *t, "corrupt", /*corrupt_frames=*/2);
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_TRUE(TablesIdentical(**echoed, *t));
  EXPECT_EQ(runtime.stats().frame_retries, 2);
  EXPECT_EQ(runtime.stats().worker_deaths, 0);
  runtime.Shutdown();
  std::vector<FrRecord> timeline = FlightRecorder::Global()->MergedTimeline();
  EXPECT_EQ(CountEvents(timeline, FrEvent::kFrameRetry), 2);
}

TEST(ProcessRuntimeTest, ExhaustedRetryBudgetIsDataLossWithPostMortem) {
  FlightRecorder::Global()->Reset();
  ProcessRuntimeOptions options = SmallRuntime(1);
  options.retry.max_attempts = 3;
  ProcessRuntime runtime(options);
  ASSERT_TRUE(runtime.Spawn().ok());
  TablePtr t = MixedTable(8);
  // Every attempt in the budget is corrupted: persistent corruption must
  // surface as kDataLoss, not be misreported as a timeout or a crash.
  auto echoed =
      runtime.Exchange(0, /*motion=*/9, *t, "doomed", /*corrupt_frames=*/3);
  ASSERT_FALSE(echoed.ok());
  EXPECT_EQ(echoed.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(runtime.stats().frame_retries, 2);
  runtime.Shutdown();
  std::vector<FrRecord> timeline = FlightRecorder::Global()->MergedTimeline();
  EXPECT_EQ(CountEvents(timeline, FrEvent::kFrameRetry), 2);
  // The worker's ring still reaches the dump at shutdown, so the
  // post-mortem shows what the segment saw before the budget ran out.
  EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerPostMortem), 1);
}

// --- Simulator oracle ----------------------------------------------------------

struct MppRun {
  TablePtr tpi;
  TablePtr tphi;
  std::vector<MppStep> steps;
};

/// Grounds the paper-example KB on `segments` segments, optionally behind a
/// process runtime and/or a fault injector, and returns the gathered
/// outputs plus the cost trace.
MppRun RunGrounding(const KnowledgeBase& kb, int segments,
                    FaultInjector* injector, ProcessRuntime* runtime) {
  MppRun run;
  RelationalKB rkb = BuildRelationalModel(kb);
  MppGrounder grounder(rkb, segments, MppMode::kViews, GroundingOptions{},
                       CostParams{}, injector, RetryPolicy{});
  if (runtime != nullptr) grounder.AttachRuntime(runtime);
  Status st = grounder.GroundAtoms();
  EXPECT_TRUE(st.ok()) << st;
  if (!st.ok()) return run;
  auto phi = grounder.GroundFactors();
  EXPECT_TRUE(phi.ok()) << phi.status();
  if (!phi.ok()) return run;
  run.tpi = grounder.GatherTPi();
  run.tphi = *phi;
  run.steps = grounder.cost().steps();
  return run;
}

/// The motion sequences of two runs match: same steps in the same order,
/// each with the same label and shipping the same tuples. Compute steps'
/// wall-clock is excluded (it is the one nondeterministic quantity); the
/// modelled seconds of motion and recovery steps must agree exactly.
void ExpectSameMotionSequence(const std::vector<MppStep>& a,
                              const std::vector<MppStep>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i) + " (" + a[i].label + ")");
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].tuples_shipped, b[i].tuples_shipped);
    if (a[i].kind != MppStep::Kind::kCompute) {
      EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds);
    }
  }
}

TEST(ProcessOracleTest, ProcessModeMatchesSimulatorBitIdentically) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  for (int segments : {2, 4, 8}) {
    SCOPED_TRACE("segments " + std::to_string(segments));
    MppRun sim = RunGrounding(kb, segments, nullptr, nullptr);
    ASSERT_NE(sim.tpi, nullptr);

    ProcessRuntime runtime(SmallRuntime(segments));
    ASSERT_TRUE(runtime.Spawn().ok());
    MppRun process = RunGrounding(kb, segments, nullptr, &runtime);
    ASSERT_NE(process.tpi, nullptr);
    EXPECT_GT(runtime.stats().exchanges, 0);
    runtime.Shutdown();

    // Process mode is a transport change, not a semantics change: same
    // tuples, same motion sequence, same modelled cost.
    EXPECT_TRUE(TablesIdentical(*process.tpi, *sim.tpi));
    EXPECT_TRUE(TablesIdentical(*process.tphi, *sim.tphi));
    ExpectSameMotionSequence(sim.steps, process.steps);
  }
}

// --- Chaos: worker kills + frame corruption under the process runtime ----------

TEST(ProcessChaosTest, ScheduledWorkerKillRecoversBitIdentically) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  MppRun baseline = RunGrounding(kb, 2, nullptr, nullptr);
  ASSERT_NE(baseline.tpi, nullptr);

  // Find motions that actually ship tuples (those consult the injector).
  std::vector<int64_t> candidates;
  for (size_t i = 0, motion = 0; i < baseline.steps.size(); ++i) {
    const MppStep& step = baseline.steps[i];
    if (step.kind == MppStep::Kind::kCompute ||
        step.kind == MppStep::Kind::kRecovery) {
      continue;
    }
    if (step.kind == MppStep::Kind::kRedistribute && step.tuples_shipped > 0) {
      candidates.push_back(static_cast<int64_t>(motion));
    }
    ++motion;
  }
  ASSERT_GE(candidates.size(), 2u);

  FlightRecorder::Global()->Reset();
  FaultInjectionOptions fault_options;
  fault_options.enabled = true;
  {
    FaultEvent kill;
    kill.kind = FaultKind::kWorkerKill;
    kill.motion = candidates[0];
    kill.segment = 1;
    fault_options.schedule.push_back(kill);
    FaultEvent corrupt;
    corrupt.kind = FaultKind::kCorruptFrame;
    corrupt.motion = candidates.back();
    corrupt.target = 0;
    fault_options.schedule.push_back(corrupt);
  }
  FaultInjector injector(fault_options);
  ProcessRuntime runtime(SmallRuntime(2));
  ASSERT_TRUE(runtime.Spawn().ok());
  MppRun chaos = RunGrounding(kb, 2, &injector, &runtime);
  ASSERT_NE(chaos.tpi, nullptr);
  runtime.Shutdown();

  EXPECT_EQ(injector.stats().worker_kills, 1);
  EXPECT_EQ(injector.stats().frames_corrupted, 1);
  EXPECT_EQ(injector.stats().unrecovered_motions, 0);
  EXPECT_EQ(runtime.stats().worker_deaths, 1);
  EXPECT_EQ(runtime.stats().respawns, 1);
  EXPECT_GE(runtime.stats().frame_retries, 1);
  EXPECT_TRUE(TablesIdentical(*chaos.tpi, *baseline.tpi));
  EXPECT_TRUE(TablesIdentical(*chaos.tphi, *baseline.tphi));

  std::vector<FrRecord> timeline = FlightRecorder::Global()->MergedTimeline();
  EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerKilled), 1);
  EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerRespawn), 1);
  EXPECT_GE(CountEvents(timeline, FrEvent::kFrameRetry), 1);
}

/// The acceptance sweep: for every chaos seed and 2/4/8 segments, process-
/// mode grounding with random worker kills and frame corruption produces
/// tables bit-identical to the fault-free simulator run, and the
/// supervisor's flight-recorder dump accounts for every spawn, kill, and
/// respawn. PROBKB_CHAOS_SEED adds a CI-chosen seed to the sweep.
TEST(ProcessChaosTest, RandomKillSweepIsBitIdenticalToFaultFreeSim) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  std::vector<uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("PROBKB_CHAOS_SEED")) {
    seeds.push_back(static_cast<uint64_t>(std::strtoull(env, nullptr, 10)));
  }
  int64_t kills_total = 0;
  for (int segments : {2, 4, 8}) {
    MppRun baseline = RunGrounding(kb, segments, nullptr, nullptr);
    ASSERT_NE(baseline.tpi, nullptr);
    for (uint64_t seed : seeds) {
      SCOPED_TRACE("segments " + std::to_string(segments) + " seed " +
                   std::to_string(seed));
      FlightRecorder::Global()->Reset();
      FaultInjectionOptions fault_options;
      fault_options.enabled = true;
      fault_options.seed = seed;
      fault_options.worker_kill_prob = 0.25;
      fault_options.corrupt_frame_prob = 0.2;
      FaultInjector injector(fault_options);
      ProcessRuntime runtime(SmallRuntime(segments));
      ASSERT_TRUE(runtime.Spawn().ok());
      MppRun chaos = RunGrounding(kb, segments, &injector, &runtime);
      ASSERT_NE(chaos.tpi, nullptr);
      runtime.Shutdown();

      EXPECT_TRUE(TablesIdentical(*chaos.tpi, *baseline.tpi));
      EXPECT_TRUE(TablesIdentical(*chaos.tphi, *baseline.tphi));
      EXPECT_EQ(injector.stats().unrecovered_motions, 0);
      EXPECT_EQ(runtime.stats().worker_deaths,
                injector.stats().worker_kills);
      EXPECT_EQ(runtime.stats().respawns, injector.stats().worker_kills);
      kills_total += injector.stats().worker_kills;

      // The dump records the full worker lifecycle: one spawn per segment
      // plus one per respawn, and kills match respawns one for one.
      std::vector<FrRecord> timeline =
          FlightRecorder::Global()->MergedTimeline();
      EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerSpawn),
                segments + static_cast<int>(runtime.stats().respawns));
      EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerKilled),
                static_cast<int>(runtime.stats().worker_deaths));
      EXPECT_EQ(CountEvents(timeline, FrEvent::kWorkerRespawn),
                static_cast<int>(runtime.stats().respawns));
    }
  }
  EXPECT_GT(kills_total, 0) << "sweep never killed a worker";
}

/// Same seed, same configuration -> byte-identical post-mortem dump. Every
/// recorded payload is a deterministic quantity (segments, motions,
/// generations, signals — never pids or wall-clock), so a chaos failure
/// can be diffed across reruns.
TEST(ProcessChaosTest, ChaosDumpIsDeterministicAcrossReruns) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  auto run_once = [&]() -> std::string {
    FlightRecorder::Global()->Reset();
    FaultInjectionOptions fault_options;
    fault_options.enabled = true;
    fault_options.seed = 7;
    fault_options.worker_kill_prob = 0.3;
    fault_options.corrupt_frame_prob = 0.2;
    FaultInjector injector(fault_options);
    ProcessRuntime runtime(SmallRuntime(4));
    EXPECT_TRUE(runtime.Spawn().ok());
    MppRun run = RunGrounding(kb, 4, &injector, &runtime);
    EXPECT_NE(run.tpi, nullptr);
    runtime.Shutdown();
    return FlightRecorder::Global()->DumpText();
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace probkb
