#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/strings.h"

namespace probkb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad foo");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad foo");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("x");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "x");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  PROBKB_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, BudgetFailureFactories) {
  Status cancelled = Status::Cancelled("stop requested");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: stop requested");

  Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "Deadline exceeded: too slow");

  Status exhausted = Status::ResourceExhausted("out of rows");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "Resource exhausted: out of rows");
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted);
       ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown")
        << "code " << c;
  }
}

TEST(StatusTest, IsBudgetFailureClassifiesCodes) {
  EXPECT_TRUE(IsBudgetFailure(StatusCode::kCancelled));
  EXPECT_TRUE(IsBudgetFailure(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsBudgetFailure(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsBudgetFailure(StatusCode::kOk));
  EXPECT_FALSE(IsBudgetFailure(StatusCode::kInternal));
  EXPECT_FALSE(IsBudgetFailure(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsBudgetFailure(StatusCode::kIOError));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> UseParsed(int x) {
  PROBKB_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*UseParsed(5), 11);
  EXPECT_FALSE(UseParsed(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, ParseNumbers) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("4.2", &i));
}

TEST(StringsTest, ParseBoundedInt64InRange) {
  BoundedInt64 r = ParseBoundedInt64("12", /*fallback=*/3, 0, 100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 12);
  EXPECT_FALSE(r.malformed);
  EXPECT_FALSE(r.clamped);
  // Surrounding whitespace is tolerated, like the rest of the CLI.
  EXPECT_EQ(ParseBoundedInt64("  7\t", 3, 0, 100).value, 7);
  // Bounds are inclusive.
  EXPECT_TRUE(ParseBoundedInt64("0", 3, 0, 100).ok());
  EXPECT_TRUE(ParseBoundedInt64("100", 3, 0, 100).ok());
}

TEST(StringsTest, ParseBoundedInt64GarbageFallsBack) {
  for (const char* garbage : {"", "lots", "4.2", "12x", "--3", "0x10"}) {
    BoundedInt64 r = ParseBoundedInt64(garbage, /*fallback=*/5, 0, 100);
    EXPECT_TRUE(r.malformed) << garbage;
    EXPECT_FALSE(r.ok()) << garbage;
    EXPECT_EQ(r.value, 5) << garbage;
  }
  // Overflowing int64 is malformed, not wrapped.
  BoundedInt64 huge =
      ParseBoundedInt64("99999999999999999999999", 5, 0, 100);
  EXPECT_TRUE(huge.malformed);
  EXPECT_EQ(huge.value, 5);
}

TEST(StringsTest, ParseBoundedInt64ClampsToNearerBound) {
  BoundedInt64 low = ParseBoundedInt64("-4", /*fallback=*/5, 1, 256);
  EXPECT_TRUE(low.clamped);
  EXPECT_FALSE(low.malformed);
  EXPECT_EQ(low.value, 1);
  BoundedInt64 high = ParseBoundedInt64("1000000", 5, 1, 256);
  EXPECT_TRUE(high.clamped);
  EXPECT_EQ(high.value, 256);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, StateRoundTripReplaysExactStream) {
  Rng rng(123);
  for (int i = 0; i < 57; ++i) rng.Next();  // advance off the seed boundary
  std::array<uint64_t, 4> saved = rng.State();
  std::vector<uint64_t> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(rng.Next());

  Rng restored(999);  // different seed: the state must fully override it
  restored.SetState(saved);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.Next(), expected[static_cast<size_t>(i)]) << i;
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Uniform(7);
    EXPECT_LT(v, 7u);
  }
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(4);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Zipf(1000, 1.0);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
    if (v >= 500) ++high;
  }
  EXPECT_GT(low, high);
}

TEST(RngTest, ZipfZeroAlphaIsUniformish) {
  Rng rng(5);
  int64_t low = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Zipf(100, 0.0) < 50) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / 20000, 0.5, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}


TEST(LoggingTest, LevelGating) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output checked).
  PROBKB_LOG(Info) << "suppressed " << 42;
  PROBKB_LOG(Error) << "emitted " << 42;
  SetLogLevel(original);
}

TEST(CheckTest, PassingCheckIsNoop) {
  PROBKB_CHECK(1 + 1 == 2);
  PROBKB_DCHECK(true);
}

TEST(CheckTest, DcheckMatchesBuildConfig) {
  // Under NDEBUG the condition must not even be evaluated (hot paths pay
  // nothing); in debug builds it is evaluated exactly once.
  int evaluations = 0;
  PROBKB_DCHECK(++evaluations > 0);
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);

  level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("4", &level));
  EXPECT_FALSE(ParseLogLevel("-1", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // rejected parses leave *out alone
}

/// RAII guard for the PROBKB_LOG_LEVEL env var so tests can't leak state.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      saved_ = old;
      had_value_ = true;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(LoggingTest, ResolveLogLevelPrecedenceAndFallback) {
  {
    // CLI value wins over the environment.
    ScopedEnv env("PROBKB_LOG_LEVEL", "error");
    EXPECT_EQ(ResolveLogLevel("debug"), LogLevel::kDebug);
    // No CLI value: the environment decides.
    EXPECT_EQ(ResolveLogLevel(nullptr), LogLevel::kError);
  }
  {
    // Neither set: Info.
    ScopedEnv env("PROBKB_LOG_LEVEL", nullptr);
    EXPECT_EQ(ResolveLogLevel(nullptr), LogLevel::kInfo);
  }
  {
    // Garbage falls back to Info (with a warning), mirroring
    // ResolveThreads' handling of a bad PROBKB_THREADS.
    ScopedEnv env("PROBKB_LOG_LEVEL", "chatty");
    EXPECT_EQ(ResolveLogLevel(nullptr), LogLevel::kInfo);
    EXPECT_EQ(ResolveLogLevel("extremely-verbose"), LogLevel::kInfo);
  }
}

/// Captures every record handed to sinks; registered via AddLogSink.
class CaptureSink : public LogSink {
 public:
  void Write(const LogRecord& record) override { records.push_back(record); }
  std::vector<LogRecord> records;
};

TEST(LoggingTest, CustomSinkSeesSubsystemTaggedRecords) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  CaptureSink sink;
  AddLogSink(&sink);
  PROBKB_SLOG(Fault, Warning) << "retrying motion " << 7;
  PROBKB_LOG(Info) << "plain";
  RemoveLogSink(&sink);
  PROBKB_LOG(Info) << "after removal";  // must not reach the sink
  SetLogLevel(original);

  ASSERT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(sink.records[0].level, LogLevel::kWarning);
  EXPECT_EQ(sink.records[0].subsystem, LogSubsystem::kFault);
  EXPECT_EQ(sink.records[0].message, "retrying motion 7");
  EXPECT_STREQ(sink.records[0].file, "util_test.cc");  // basename only
  EXPECT_GT(sink.records[0].line, 0);
  EXPECT_EQ(sink.records[1].subsystem, LogSubsystem::kGeneral);
}

TEST(LoggingTest, JsonSinkWritesOneObjectPerLine) {
  const std::string path =
      ::testing::TempDir() + "/probkb_util_log_test.jsonl";
  std::filesystem::remove(path);
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  ASSERT_TRUE(EnableJsonLogSink(path).ok());
  PROBKB_SLOG(Mpp, Info) << "shipped \"42\" tuples";
  PROBKB_LOG(Debug) << "below threshold";  // dropped, not written
  DisableJsonLogSink();
  PROBKB_LOG(Info) << "sink closed";  // must not reach the file
  SetLogLevel(original);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"level\": \"INFO\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"subsystem\": \"mpp\""), std::string::npos);
  // Quotes inside the message arrive escaped — the line stays valid JSON.
  EXPECT_NE(lines[0].find("shipped \\\"42\\\" tuples"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts\": "), std::string::npos);

  // A path that cannot be opened reports an error instead of dropping logs
  // silently.
  EXPECT_FALSE(EnableJsonLogSink("/nonexistent-dir/x/log.jsonl").ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace probkb
