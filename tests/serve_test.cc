#include "serve/query_server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "grounding/local_grounder.h"
#include "infer/gibbs.h"
#include "kb/relational_model.h"
#include "tests/test_util.h"
#include "util/status.h"

namespace probkb {
namespace {

/// Paper-example serving fixture: epoch 0 holds the base facts, epoch 1
/// the fixpoint-expanded KB (the batch grounder plays the writer).
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kb_ = testutil::BuildPaperExampleKB();
    rkb_ = BuildRelationalModel(kb_);
    first_inferred_ = rkb_.next_fact_id;
  }

  std::unique_ptr<QueryServer> MakeServer(ServeOptions options = {}) {
    return std::make_unique<QueryServer>(&kb_, first_inferred_, options);
  }

  void Expand() {
    Grounder grounder(&rkb_, GroundingOptions{});
    ASSERT_TRUE(grounder.GroundAtoms().ok());
  }

  KnowledgeBase kb_;
  RelationalKB rkb_;
  FactId first_inferred_ = 0;
};

void ExpectBitIdentical(const ServeAnswer& a, const ServeAnswer& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.grounded_atoms, b.grounded_atoms);
  EXPECT_EQ(a.total_atoms, b.total_atoms);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].id, b.entries[i].id);
    // Exact double equality on purpose: same epoch + same options must
    // reproduce the marginal bit for bit.
    EXPECT_EQ(a.entries[i].probability, b.entries[i].probability);
  }
}

TEST_F(ServeTest, AnswerBeforeFirstPublishFails) {
  auto server = MakeServer();
  EXPECT_EQ(server->current_epoch(), -1);
  EXPECT_FALSE(server->Answer("born_in(Ruth Gruber, *)").ok());
  EXPECT_FALSE(server->PinNewest().ok());
}

TEST_F(ServeTest, MalformedQueryIsInvalidArgument) {
  auto server = MakeServer();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  auto bad = server->Answer("live_in(Ruth Gruber");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, UnknownNamesAreEmptyAnswersNotErrors) {
  auto server = MakeServer();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  auto answer = server->Answer("flies_to(Ruth Gruber, *)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->entries.empty());
}

/// At full closure the local subgraph is the query's whole connected
/// component, so serve-side exact marginals must agree with batch exact
/// marginals over the full ground factor graph.
TEST_F(ServeTest, AnswersMatchBatchExactMarginals) {
  ServeOptions options;
  options.grounding.max_depth = 16;
  options.inference.exact_max_vars = 20;
  options.top_k = 0;  // all matches
  auto server = MakeServer(options);
  Expand();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());

  Grounder grounder(&rkb_, GroundingOptions{});
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok()) << phi.status();
  auto graph = FactorGraph::FromTables(*rkb_.t_pi, **phi);
  ASSERT_TRUE(graph.ok());
  auto exact = ExactMarginals(*graph);
  ASSERT_TRUE(exact.ok()) << exact.status();

  for (const char* query :
       {"live_in(Ruth Gruber, *)", "located_in(*, *)", "Brooklyn"}) {
    auto answer = server->Answer(query);
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(answer->exact);
    EXPECT_FALSE(answer->truncated);
    ASSERT_FALSE(answer->entries.empty()) << query;
    for (const ServeAnswer::Entry& entry : answer->entries) {
      int32_t v = graph->VariableOf(entry.id);
      ASSERT_GE(v, 0);
      EXPECT_NEAR(entry.probability, (*exact)[static_cast<size_t>(v)], 1e-9)
          << query << " fact " << entry.id;
    }
  }
}

TEST_F(ServeTest, EntriesSortedByProbabilityAndTopKTruncates) {
  ServeOptions options;
  options.grounding.max_depth = 16;
  auto server = MakeServer(options);
  Expand();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());

  auto all = server->Answer("Ruth Gruber");
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all->entries.size(), 2u);
  for (size_t i = 1; i < all->entries.size(); ++i) {
    EXPECT_GE(all->entries[i - 1].probability, all->entries[i].probability);
  }

  ServeOptions top2 = options;
  top2.top_k = 2;
  auto server2 = MakeServer(top2);
  ASSERT_TRUE(server2->PublishEpoch(rkb_).ok());
  auto truncated = server2->Answer("Ruth Gruber");
  ASSERT_TRUE(truncated.ok());
  ASSERT_EQ(truncated->entries.size(), 2u);
  EXPECT_EQ(truncated->entries[0].id, all->entries[0].id);
  EXPECT_EQ(truncated->entries[1].id, all->entries[1].id);
}

/// A reader pinned at epoch N keeps getting epoch-N answers, bit for bit,
/// while the writer expands the KB and publishes N+1.
TEST_F(ServeTest, PinnedEpochIsFrozenWhileWriterPublishes) {
  auto server = MakeServer();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  auto pin = server->PinNewest();
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin->epoch, 0);

  auto pattern = ParseQueryPattern("born_in(Ruth Gruber, *)");
  ASSERT_TRUE(pattern.ok());
  auto before = server->AnswerAt(*pattern, *pin);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->total_atoms, 2);  // base facts only at epoch 0

  Expand();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  EXPECT_EQ(server->current_epoch(), 1);

  auto after = server->AnswerAt(*pattern, *pin);
  ASSERT_TRUE(after.ok());
  ExpectBitIdentical(*before, *after);

  // A fresh query sees the expanded epoch.
  auto newest = server->Answer("born_in(Ruth Gruber, *)");
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->epoch, 1);
  EXPECT_GT(newest->total_atoms, before->total_atoms);
}

TEST_F(ServeTest, ConcurrentReadersAtOnePinAreBitIdentical) {
  ServeOptions options;
  options.grounding.max_depth = 16;
  auto server = MakeServer(options);
  Expand();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  auto pin = server->PinNewest();
  ASSERT_TRUE(pin.ok());
  auto pattern = ParseQueryPattern("live_in(Ruth Gruber, *)");
  ASSERT_TRUE(pattern.ok());

  auto reference = server->AnswerAt(*pattern, *pin);
  ASSERT_TRUE(reference.ok());

  for (int readers : {1, 2, 4, 8}) {
    std::vector<ServeAnswer> answers(static_cast<size_t>(readers));
    std::vector<Status> statuses(static_cast<size_t>(readers), Status::OK());
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        auto answer = server->AnswerAt(*pattern, *pin);
        if (answer.ok()) {
          answers[static_cast<size_t>(r)] = std::move(*answer);
        } else {
          statuses[static_cast<size_t>(r)] = answer.status();
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int r = 0; r < readers; ++r) {
      ASSERT_TRUE(statuses[static_cast<size_t>(r)].ok())
          << statuses[static_cast<size_t>(r)];
      ExpectBitIdentical(*reference, answers[static_cast<size_t>(r)]);
    }
  }
}

TEST_F(ServeTest, FailedPublishKeepsServingTheOldEpoch) {
  auto server = MakeServer();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  auto before = server->Answer("born_in(Ruth Gruber, *)");
  ASSERT_TRUE(before.ok());

  server->store_for_test()->SetPublishObserverForTest(
      [](int64_t) { return Status::Internal("chaos mid-publish"); });
  Expand();
  EXPECT_FALSE(server->PublishEpoch(rkb_).ok());
  EXPECT_EQ(server->current_epoch(), 0);

  auto during = server->Answer("born_in(Ruth Gruber, *)");
  ASSERT_TRUE(during.ok());
  ExpectBitIdentical(*before, *during);

  server->store_for_test()->SetPublishObserverForTest(nullptr);
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  EXPECT_EQ(server->current_epoch(), 1);
  auto after = server->Answer("born_in(Ruth Gruber, *)");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->total_atoms, before->total_atoms);
}

TEST_F(ServeTest, DepthZeroReportsTruncation) {
  ServeOptions options;
  options.grounding.max_depth = 0;
  auto server = MakeServer(options);
  Expand();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  auto answer = server->Answer("born_in(Ruth Gruber, *)");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->truncated);
  EXPECT_EQ(answer->depth_reached, 0);
  EXPECT_EQ(answer->grounded_atoms, 2);  // seeds only
  EXPECT_EQ(answer->entries.size(), 2u);
}

TEST_F(ServeTest, StatsCountersTrackServedQueries) {
  auto server = MakeServer();
  ASSERT_TRUE(server->PublishEpoch(rkb_).ok());
  EXPECT_EQ(server->StatsCounter("serve_queries"), -1);  // absent before use
  ASSERT_TRUE(server->Answer("born_in(Ruth Gruber, *)").ok());
  ASSERT_TRUE(server->Answer("Brooklyn").ok());
  EXPECT_EQ(server->StatsCounter("serve_queries"), 2);
  EXPECT_GT(server->StatsCounter("serve_answers"), 0);
  std::string text = server->StatsText();
  EXPECT_NE(text.find("serve_queries"), std::string::npos);
}

/// Locality: on a KB of many entity-disjoint components, a query grounds
/// its own component only — an order of magnitude (and more) below the
/// full expanded TPi, which is the point of serving on demand.
TEST(ServeLocalityTest, PerQueryGroundingIsOrderOfMagnitudeBelowFullKb) {
  KnowledgeBase kb;
  ClassId w = kb.classes().GetOrAdd("Writer");
  ClassId c = kb.classes().GetOrAdd("City");
  ClassId p = kb.classes().GetOrAdd("Place");
  RelationId born_in = kb.relations().GetOrAdd("born_in");
  RelationId live_in = kb.relations().GetOrAdd("live_in");
  RelationId grow_up_in = kb.relations().GetOrAdd("grow_up_in");

  // Rules are shared; connectivity comes only through shared entities, so
  // 40 disjoint person/city/borough triples make 40 disjoint components.
  for (RelationId head : {live_in, grow_up_in}) {
    for (ClassId c2 : {p, c}) {
      HornRule r;
      r.structure = RuleStructure::kM1;
      r.head = head;
      r.body1 = born_in;
      r.c1 = w;
      r.c2 = c2;
      r.weight = 1.5;
      kb.AddRule(r);
    }
  }
  constexpr int kComponents = 40;
  for (int i = 0; i < kComponents; ++i) {
    std::string suffix = "_" + std::to_string(i);
    EntityId person = kb.entities().GetOrAdd("person" + suffix);
    EntityId city = kb.entities().GetOrAdd("city" + suffix);
    EntityId borough = kb.entities().GetOrAdd("borough" + suffix);
    kb.AddFact({born_in, person, w, city, c, 0.9});
    kb.AddFact({born_in, person, w, borough, p, 0.8});
  }

  RelationalKB rkb = BuildRelationalModel(kb);
  FactId first_inferred = rkb.next_fact_id;
  Grounder grounder(&rkb, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());

  ServeOptions options;
  options.grounding.max_depth = 16;
  QueryServer server(&kb, first_inferred, options);
  ASSERT_TRUE(server.PublishEpoch(rkb).ok());

  auto answer = server.Answer("live_in(person_0, *)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_FALSE(answer->entries.empty());
  EXPECT_FALSE(answer->truncated);
  // One component of 6 atoms vs 40 components' worth of expanded facts.
  EXPECT_GE(answer->total_atoms, 10 * answer->grounded_atoms)
      << "grounded " << answer->grounded_atoms << " of "
      << answer->total_atoms;
}

}  // namespace
}  // namespace probkb
