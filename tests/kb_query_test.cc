#include "kb/kb_query.h"

#include <gtest/gtest.h>

#include <cmath>

#include "grounding/grounder.h"
#include "infer/gibbs.h"
#include "infer/writeback.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

/// End-to-end fixture: paper example grounded, marginals written back.
class QueryPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kb_ = testutil::BuildPaperExampleKB();
    rkb_ = BuildRelationalModel(kb_);
    first_inferred_ = rkb_.next_fact_id;
    Grounder grounder(&rkb_, GroundingOptions{});
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    auto graph = FactorGraph::FromTables(*rkb_.t_pi, **phi);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<FactorGraph>(std::move(*graph));

    GibbsOptions options;
    options.burn_in_sweeps = 200;
    options.sample_sweeps = 2000;
    auto result = GibbsMarginals(*graph_, options);
    ASSERT_TRUE(result.ok());
    marginals_ = result->marginals;
  }

  KnowledgeBase kb_;
  RelationalKB rkb_;
  FactId first_inferred_ = 0;
  std::unique_ptr<FactorGraph> graph_;
  std::vector<double> marginals_;
};

TEST_F(QueryPipelineTest, WritebackFillsInferredWeights) {
  auto written = WriteMarginalsToTPi(rkb_.t_pi.get(), *graph_, marginals_);
  ASSERT_TRUE(written.ok()) << written.status();
  EXPECT_EQ(*written, 5);  // the five inferred atoms
  for (int64_t i = 0; i < rkb_.t_pi->NumRows(); ++i) {
    EXPECT_FALSE(rkb_.t_pi->row(i)[tpi::kW].is_null());
  }
  // Base facts keep their extraction weights.
  EXPECT_DOUBLE_EQ(rkb_.t_pi->row(0)[tpi::kW].f64(), 0.96);
}

TEST_F(QueryPipelineTest, WritebackValidatesMarginalArity) {
  std::vector<double> wrong(3, 0.5);
  EXPECT_FALSE(WriteMarginalsToTPi(rkb_.t_pi.get(), *graph_, wrong).ok());
}

TEST_F(QueryPipelineTest, FindByPattern) {
  ASSERT_TRUE(
      WriteMarginalsToTPi(rkb_.t_pi.get(), *graph_, marginals_).ok());
  KbQuery query(&kb_, rkb_.t_pi, first_inferred_);

  auto live = query.Find("live_in", "Ruth Gruber", std::nullopt);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_TRUE(live[0].inferred);
  EXPECT_GE(live[0].score, live[1].score);  // sorted by score

  auto exact = query.Find("born_in", "Ruth Gruber", "Brooklyn");
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_FALSE(exact[0].inferred);
  EXPECT_DOUBLE_EQ(exact[0].score, 0.93);

  EXPECT_TRUE(query.Find("no_such_relation", std::nullopt, std::nullopt)
                  .empty());
  EXPECT_TRUE(query.Find("born_in", "Nobody", std::nullopt).empty());
}

TEST_F(QueryPipelineTest, MinScoreFilters) {
  ASSERT_TRUE(
      WriteMarginalsToTPi(rkb_.t_pi.get(), *graph_, marginals_).ok());
  KbQuery query(&kb_, rkb_.t_pi, first_inferred_);
  auto all = query.Find("born_in", std::nullopt, std::nullopt);
  auto high = query.Find("born_in", std::nullopt, std::nullopt, 0.95);
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(high.size(), 1u);
  EXPECT_DOUBLE_EQ(high[0].score, 0.96);
}

TEST_F(QueryPipelineTest, FactsAboutEntity) {
  ASSERT_TRUE(
      WriteMarginalsToTPi(rkb_.t_pi.get(), *graph_, marginals_).ok());
  KbQuery query(&kb_, rkb_.t_pi, first_inferred_);
  auto about = query.FactsAbout("Brooklyn");
  // born_in, live_in, grow_up_in (as y) + located_in (as x) = 4.
  EXPECT_EQ(about.size(), 4u);
  EXPECT_TRUE(query.FactsAbout("Nobody").empty());
  for (const auto& f : about) {
    std::string rendered = query.ToString(f);
    EXPECT_NE(rendered.find("Brooklyn"), std::string::npos);
  }
}

TEST_F(QueryPipelineTest, UnscoredFactsSortLast) {
  // Before write-back, inferred facts have NaN scores and sort last.
  KbQuery query(&kb_, rkb_.t_pi, first_inferred_);
  auto about = query.FactsAbout("Brooklyn");
  ASSERT_EQ(about.size(), 4u);
  EXPECT_FALSE(std::isnan(about[0].score));  // born_in 0.93 first
  EXPECT_TRUE(std::isnan(about.back().score));
  // min_score filters NaN-scored facts out.
  EXPECT_EQ(query.FactsAbout("Brooklyn", 0.1).size(), 1u);
}

// --- Serve-mode query parsing --------------------------------------------------

TEST(ParseQueryPatternTest, RelationPatterns) {
  auto p = ParseQueryPattern("live_in(Ruth Gruber, *)");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_FALSE(p->is_entity_query());
  EXPECT_EQ(p->relation, "live_in");
  ASSERT_TRUE(p->x.has_value());
  EXPECT_EQ(*p->x, "Ruth Gruber");
  EXPECT_FALSE(p->y.has_value());

  // '?' is an accepted wildcard spelling; whitespace is ignored.
  auto q = ParseQueryPattern("  born_in ( ? ,  Brooklyn ) ");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->relation, "born_in");
  EXPECT_FALSE(q->x.has_value());
  ASSERT_TRUE(q->y.has_value());
  EXPECT_EQ(*q->y, "Brooklyn");

  auto both = ParseQueryPattern("located_in(*, *)");
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(both->x.has_value());
  EXPECT_FALSE(both->y.has_value());
}

TEST(ParseQueryPatternTest, EntityQueries) {
  auto p = ParseQueryPattern("  Ruth Gruber ");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->is_entity_query());
  EXPECT_EQ(p->entity, "Ruth Gruber");
  EXPECT_NE(p->ToString().find("Ruth Gruber"), std::string::npos);
}

TEST(ParseQueryPatternTest, MalformedPatternsAreErrors) {
  for (const char* bad :
       {"", "   ", "live_in(", "live_in(a, b", "live_in(a)", "live_in(a,)",
        "live_in(, b)", "live_in(a, b, c)", "(a, b)", "a) b", "live_in a, b)"}) {
    EXPECT_FALSE(ParseQueryPattern(bad).ok()) << "'" << bad << "'";
  }
}

TEST_F(QueryPipelineTest, SeedRowsMatchPatterns) {
  KbQuery query(&kb_, rkb_.t_pi, first_inferred_);

  auto both_facts = ParseQueryPattern("born_in(Ruth Gruber, *)");
  ASSERT_TRUE(both_facts.ok());
  auto rows = query.SeedRows(*both_facts);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_LT(rows[0], rows[1]);  // ascending row order
  for (int64_t r : rows) {
    EXPECT_EQ(kb_.relations().NameOrPlaceholder(
                  rkb_.t_pi->row(r)[tpi::kR].i64()),
              "born_in");
  }

  auto narrowed = ParseQueryPattern("born_in(*, Brooklyn)");
  ASSERT_TRUE(narrowed.ok());
  EXPECT_EQ(query.SeedRows(*narrowed).size(), 1u);

  auto entity = ParseQueryPattern("Brooklyn");
  ASSERT_TRUE(entity.ok());
  EXPECT_EQ(query.SeedRows(*entity).size(), 4u);  // matches FactsAbout

  // Unknown names resolve to empty seed sets, not errors.
  auto unknown_rel = ParseQueryPattern("flies_to(*, *)");
  ASSERT_TRUE(unknown_rel.ok());
  EXPECT_TRUE(query.SeedRows(*unknown_rel).empty());
  auto unknown_entity = ParseQueryPattern("Atlantis");
  ASSERT_TRUE(unknown_entity.ok());
  EXPECT_TRUE(query.SeedRows(*unknown_entity).empty());
}

}  // namespace
}  // namespace probkb
