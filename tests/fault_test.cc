#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/probkb.h"
#include "engine/exec_context.h"
#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "infer/gibbs.h"
#include "kb/relational_model.h"
#include "mpp/mpp_context.h"
#include "relational/table_io.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

constexpr int kSegments = 3;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/probkb_fault_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Bit-identical comparison: same schema arity, same row count, every row
/// equal in order (ids and weights included — stricter than the atom-set
/// equivalence used by the MPP tests).
::testing::AssertionResult TablesIdentical(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.NumRows() << " vs " << b.NumRows();
  }
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!a.row(i).Equals(b.row(i))) {
      return ::testing::AssertionFailure() << "rows differ at index " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

/// Motion indices of a fault-free run, recovered from the cost trace: every
/// Redistribute/Broadcast/Gather consumes exactly one motion index and emits
/// exactly one motion-kind step, in order (kCompute/kRecovery steps do not).
struct MotionInfo {
  int64_t index = 0;
  MppStep::Kind kind = MppStep::Kind::kCompute;
  int64_t tuples_shipped = 0;
};

std::vector<MotionInfo> MotionTrace(const MppCost& cost) {
  std::vector<MotionInfo> out;
  for (const MppStep& step : cost.steps()) {
    if (step.kind == MppStep::Kind::kCompute ||
        step.kind == MppStep::Kind::kRecovery) {
      continue;
    }
    MotionInfo m;
    m.index = static_cast<int64_t>(out.size());
    m.kind = step.kind;
    m.tuples_shipped = step.tuples_shipped;
    out.push_back(m);
  }
  return out;
}

/// Redistribute motions that actually moved tuples: these always consult
/// the fault injector, so a scheduled fault on them is guaranteed to fire.
std::vector<int64_t> FaultableRedistributes(const std::vector<MotionInfo>& trace) {
  std::vector<int64_t> out;
  for (const MotionInfo& m : trace) {
    if (m.kind == MppStep::Kind::kRedistribute && m.tuples_shipped > 0) {
      out.push_back(m.index);
    }
  }
  return out;
}

// --- RetryPolicy ---------------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsCappedExponential) {
  RetryPolicy p;  // 0.05s initial, x2, capped at 2s
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(1), 0.05);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(2), 0.10);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(3), 0.20);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(10), 2.0);  // hits the cap

  RetryPolicy flat;
  flat.initial_backoff_seconds = 0.5;
  flat.backoff_multiplier = 1.0;
  flat.max_backoff_seconds = 10.0;
  EXPECT_DOUBLE_EQ(flat.BackoffSeconds(1), 0.5);
  EXPECT_DOUBLE_EQ(flat.BackoffSeconds(7), 0.5);
}

TEST(RetryPolicyTest, BackoffSurvivesAbsurdAttemptCounts) {
  // An attempt counter gone wild (wrapped, corrupted, or just a very long
  // retry storm) must clamp to the cap — finite, immediately, never +inf
  // from an unbounded product and never an O(attempt) spin.
  RetryPolicy p;  // 0.05s initial, x2, capped at 2s
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(1), 0.05);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(10), 2.0);
  const double extreme = p.BackoffSeconds(INT_MAX);
  EXPECT_TRUE(std::isfinite(extreme));
  EXPECT_DOUBLE_EQ(extreme, 2.0);

  RetryPolicy flat;
  flat.initial_backoff_seconds = 0.5;
  flat.backoff_multiplier = 1.0;  // never reaches the cap by multiplying
  flat.max_backoff_seconds = 10.0;
  EXPECT_DOUBLE_EQ(flat.BackoffSeconds(INT_MAX), 0.5);

  RetryPolicy tight;
  tight.initial_backoff_seconds = 5.0;  // starts above its own cap
  tight.max_backoff_seconds = 2.0;
  EXPECT_DOUBLE_EQ(tight.BackoffSeconds(1), 2.0);
  EXPECT_DOUBLE_EQ(tight.BackoffSeconds(INT_MAX), 2.0);
}

// --- FaultInjector -------------------------------------------------------------

TEST(FaultInjectorTest, ScheduledEventsFireOnExactMotionAndAttempt) {
  FaultInjectionOptions options;
  options.enabled = true;
  options.schedule = {
      {FaultKind::kSegmentFailure, /*motion=*/3, /*attempt=*/0, 1, -1},
      {FaultKind::kDropBatch, /*motion=*/3, /*attempt=*/0, -1, -1},
      {FaultKind::kSegmentFailure, /*motion=*/3, /*attempt=*/1, 1, -1},
  };
  FaultInjector injector(options);

  EXPECT_TRUE(injector.MotionFaults(2, 0, 4).empty());
  std::vector<FaultEvent> hits = injector.MotionFaults(3, 0, 4);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].kind, FaultKind::kSegmentFailure);
  EXPECT_EQ(hits[0].segment, 1);
  EXPECT_EQ(hits[1].kind, FaultKind::kDropBatch);
  // Auto-picked victims are normalized into range.
  EXPECT_GE(hits[1].segment, 0);
  EXPECT_LT(hits[1].segment, 4);
  EXPECT_GE(hits[1].target, 0);
  EXPECT_LT(hits[1].target, 4);

  std::vector<FaultEvent> retry_hits = injector.MotionFaults(3, 1, 4);
  ASSERT_EQ(retry_hits.size(), 1u);
  EXPECT_EQ(retry_hits[0].attempt, 1);

  EXPECT_EQ(injector.stats().segment_failures, 2);
  EXPECT_EQ(injector.stats().batches_dropped, 1);
}

TEST(FaultInjectorTest, OperatorBudgetFaultsMapToStatusCodes) {
  FaultInjectionOptions options;
  options.enabled = true;
  options.schedule = {
      {FaultKind::kDeadlineTrip, /*motion=*/7, 0, -1, -1},
      {FaultKind::kMemoryExhausted, /*motion=*/8, 0, -1, -1},
  };
  FaultInjector injector(options);
  EXPECT_TRUE(injector.OperatorFault(6, "join").ok());
  EXPECT_EQ(injector.OperatorFault(7, "join").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(injector.OperatorFault(8, "join").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(injector.stats().deadline_trips, 1);
  EXPECT_EQ(injector.stats().memory_trips, 1);

  // Budget kinds never surface through the motion-fault path.
  EXPECT_TRUE(injector.MotionFaults(7, 0, 4).empty());
}

TEST(FaultInjectorTest, DisabledInjectorIsInert) {
  FaultInjectionOptions options;  // enabled = false
  options.segment_failure_prob = 1.0;
  options.schedule = {{FaultKind::kDeadlineTrip, 0, 0, -1, -1}};
  FaultInjector injector(options);
  EXPECT_TRUE(injector.MotionFaults(0, 0, 4).empty());
  EXPECT_TRUE(injector.OperatorFault(0, "x").ok());
  EXPECT_EQ(injector.stats().InjectedTotal(), 0);
}

TEST(FaultInjectorTest, RandomFaultsAreSeededAndTransient) {
  FaultInjectionOptions options;
  options.enabled = true;
  options.seed = 17;
  options.segment_failure_prob = 1.0;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int64_t motion = 0; motion < 8; ++motion) {
    std::vector<FaultEvent> fa = a.MotionFaults(motion, 0, 5);
    std::vector<FaultEvent> fb = b.MotionFaults(motion, 0, 5);
    ASSERT_EQ(fa.size(), 1u);
    ASSERT_EQ(fb.size(), 1u);
    EXPECT_EQ(fa[0].segment, fb[0].segment);  // same seed, same victims
    // Random faults model transient failures: retries are never struck.
    EXPECT_TRUE(a.MotionFaults(motion, /*attempt=*/1, 5).empty());
  }
}

TEST(FaultInjectorTest, RandomFaultCapIsHonored) {
  FaultInjectionOptions options;
  options.enabled = true;
  options.segment_failure_prob = 1.0;
  options.max_random_faults = 2;
  FaultInjector injector(options);
  int64_t fired = 0;
  for (int64_t motion = 0; motion < 10; ++motion) {
    fired += static_cast<int64_t>(injector.MotionFaults(motion, 0, 4).size());
  }
  EXPECT_EQ(fired, 2);
}

// --- Motion recovery accounting ------------------------------------------------

Schema OneKeySchema() { return Schema({{"k", ColumnType::kInt64}}); }

TablePtr MakeKeyTable(int n) {
  auto t = Table::Make(OneKeySchema());
  for (int i = 0; i < n; ++i) t->AppendRow({Value::Int64(i)});
  return t;
}

TEST(MppMotionRecoveryTest, RetryScheduledBatchFaultsAreRecovered) {
  auto dist = DistributedTable::Distribute(*MakeKeyTable(12), kSegments,
                                           Distribution::Random());
  // A segment failure forces a retry; that retry is itself struck by a
  // dropped and a duplicated batch. All three must be recovered and
  // accounted, so the recovered counter matches the injected total.
  FaultInjectionOptions options;
  options.enabled = true;
  options.schedule = {
      {FaultKind::kSegmentFailure, /*motion=*/0, /*attempt=*/0, 0, -1},
      {FaultKind::kDropBatch, /*motion=*/0, /*attempt=*/1, 0, 1},
      {FaultKind::kDuplicateBatch, /*motion=*/0, /*attempt=*/1, 1, 0},
  };
  FaultInjector injector(options);
  MppContext ctx(kSegments);
  ctx.set_fault_injector(&injector);
  auto out = ctx.Redistribute(*dist, {0});
  ASSERT_TRUE(out.ok()) << out.status();
  const FaultStats& stats = injector.stats();
  EXPECT_EQ(stats.segment_failures, 1);
  EXPECT_EQ(stats.batches_dropped, 1);
  EXPECT_EQ(stats.batches_duplicated, 1);
  EXPECT_EQ(stats.recovered_faults, stats.InjectedTotal());
  EXPECT_EQ(stats.unrecovered_motions, 0);
}

TEST(MppMotionRecoveryTest, RetrySegmentFailureClaimsFreshVictim) {
  auto dist = DistributedTable::Distribute(*MakeKeyTable(12), kSegments,
                                           Distribution::Random());
  // The retry of segment 0's recovery kills segment 1 instead: the new
  // victim joins the pending set and is replayed on the next attempt.
  FaultInjectionOptions options;
  options.enabled = true;
  options.schedule = {
      {FaultKind::kSegmentFailure, /*motion=*/0, /*attempt=*/0, 0, -1},
      {FaultKind::kSegmentFailure, /*motion=*/0, /*attempt=*/1, 1, -1},
  };
  FaultInjector injector(options);
  MppContext ctx(kSegments);
  ctx.set_fault_injector(&injector);
  auto out = ctx.Redistribute(*dist, {0});
  ASSERT_TRUE(out.ok()) << out.status();
  const FaultStats& stats = injector.stats();
  EXPECT_EQ(stats.segment_failures, 2);
  EXPECT_EQ(stats.recovered_faults, stats.InjectedTotal());
  EXPECT_GE(stats.retries, 2);
  EXPECT_EQ(stats.unrecovered_motions, 0);
}

TEST(MppMotionRecoveryTest, ZeroTrafficRedistributeDoesNotConsultInjector) {
  // Input already hash-distributed on the redistribute key: every row is
  // home, nothing crosses the interconnect, and — matching Broadcast and
  // Gather — no fault can strike, so the scheduled failure never fires.
  auto dist = DistributedTable::Distribute(*MakeKeyTable(12), kSegments,
                                           Distribution::Hash({0}));
  FaultInjectionOptions options;
  options.enabled = true;
  options.schedule = {
      {FaultKind::kSegmentFailure, /*motion=*/0, /*attempt=*/0, 0, -1},
  };
  FaultInjector injector(options);
  MppContext ctx(kSegments);
  ctx.set_fault_injector(&injector);
  auto out = ctx.Redistribute(*dist, {0});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(injector.stats().InjectedTotal(), 0);
  EXPECT_EQ(injector.stats().retries, 0);
}

// --- Checkpoint serialization --------------------------------------------------

TEST(CheckpointTest, RoundTripsScalarsTablesAndSegments) {
  GroundingCheckpoint cp;
  cp.iteration = 3;
  cp.next_fact_id = 42;
  cp.delta_start = 7;
  cp.t_pi = Table::Make(TPiSchema());
  cp.t_pi->AppendRow({Value::Int64(1), Value::Int64(2), Value::Int64(3),
                      Value::Int64(4), Value::Int64(5), Value::Int64(6),
                      Value::Float64(0.25)});
  cp.t_pi->AppendRow({Value::Int64(9), Value::Int64(2), Value::Int64(3),
                      Value::Int64(4), Value::Int64(5), Value::Int64(6),
                      Value::Null()});  // inferred atoms carry NULL weights
  cp.banned_x = testutil::MakeTable(BannedEntitySchema(), {{11, 22}});
  cp.banned_y = testutil::MakeTable(BannedEntitySchema(), {});
  cp.num_segments = 2;
  for (int s = 0; s < 2; ++s) {
    auto seg = Table::Make(TPiSchema());
    seg->AppendRow({Value::Int64(100 + s), Value::Int64(2), Value::Int64(3),
                    Value::Int64(4), Value::Int64(5), Value::Int64(6),
                    Value::Float64(0.5 + s)});
    cp.t0_segments.push_back(seg);
  }

  std::string dir = FreshDir("roundtrip");
  EXPECT_FALSE(GroundingCheckpointExists(dir));
  ASSERT_TRUE(WriteGroundingCheckpoint(cp, dir).ok());
  EXPECT_TRUE(GroundingCheckpointExists(dir));

  auto loaded = ReadGroundingCheckpoint(TPiSchema(), dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->iteration, 3);
  EXPECT_EQ(loaded->next_fact_id, 42);
  EXPECT_EQ(loaded->delta_start, 7);
  EXPECT_TRUE(TablesIdentical(*loaded->t_pi, *cp.t_pi));
  EXPECT_TRUE(TablesIdentical(*loaded->banned_x, *cp.banned_x));
  EXPECT_EQ(loaded->banned_y->NumRows(), 0);
  ASSERT_EQ(loaded->num_segments, 2);
  ASSERT_EQ(loaded->t0_segments.size(), 2u);
  for (int s = 0; s < 2; ++s) {
    EXPECT_TRUE(
        TablesIdentical(*loaded->t0_segments[static_cast<size_t>(s)],
                        *cp.t0_segments[static_cast<size_t>(s)]));
  }
  EXPECT_TRUE(loaded->tx_segments.empty());
}

TEST(CheckpointTest, MissingManifestMeansNoCheckpoint) {
  std::string dir = FreshDir("missing");
  EXPECT_FALSE(GroundingCheckpointExists(dir));
  EXPECT_FALSE(ReadGroundingCheckpoint(TPiSchema(), dir).ok());
  // A directory with stray files but no MANIFEST is equally ignored: the
  // MANIFEST is written last, so its absence marks an incomplete write.
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteTableTsvFile(*Table::Make(TPiSchema()), dir + "/t_pi.tsv")
                  .ok());
  EXPECT_FALSE(GroundingCheckpointExists(dir));
}

TablePtr MakeTPiRows(int n) {
  auto t = Table::Make(TPiSchema());
  for (int i = 0; i < n; ++i) {
    t->AppendRow({Value::Int64(i), Value::Int64(2), Value::Int64(3),
                  Value::Int64(4), Value::Int64(5), Value::Int64(6),
                  Value::Float64(0.5)});
  }
  return t;
}

TEST(CheckpointTest, RewritingSameDirectoryKeepsSnapshotConsistent) {
  // Iteration k writes into the same directory as iteration k-1 (the
  // checkpoint_every=1 production shape). The commit protocol retires the
  // old MANIFEST before touching any table file and lands the new MANIFEST
  // last, so the reloaded state is all-new, never a k/k-1 mix.
  GroundingCheckpoint a;
  a.iteration = 1;
  a.next_fact_id = 10;
  a.delta_start = 0;
  a.t_pi = MakeTPiRows(2);
  a.num_segments = 2;
  a.t0_segments = {MakeTPiRows(1), MakeTPiRows(1)};
  std::string dir = FreshDir("rewrite");
  ASSERT_TRUE(WriteGroundingCheckpoint(a, dir).ok());

  GroundingCheckpoint b;
  b.iteration = 2;
  b.next_fact_id = 13;
  b.delta_start = 2;
  b.t_pi = MakeTPiRows(5);  // different shape: more rows, no segments
  ASSERT_TRUE(WriteGroundingCheckpoint(b, dir).ok());

  auto loaded = ReadGroundingCheckpoint(TPiSchema(), dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->iteration, 2);
  EXPECT_EQ(loaded->next_fact_id, 13);
  EXPECT_EQ(loaded->delta_start, 2);
  EXPECT_EQ(loaded->num_segments, 0);
  EXPECT_TRUE(TablesIdentical(*loaded->t_pi, *b.t_pi));
  // A committed write leaves no staging debris behind.
  EXPECT_FALSE(std::filesystem::exists(dir + "/.staging"));
}

TEST(CheckpointTest, CommitFsyncsStagedFilesThenDirectory) {
  // Crash-durability regression: rename() orders metadata, not data, so a
  // checkpoint is only durable if every staged file is fsynced before the
  // renames publish it and the directory is fsynced around the MANIFEST
  // rename. Losing any of these fsyncs would let a power cut surface a
  // MANIFEST that certifies torn table files.
  GroundingCheckpoint cp;
  cp.iteration = 2;
  cp.next_fact_id = 9;
  cp.t_pi = MakeTPiRows(4);
  cp.num_segments = 2;
  cp.t0_segments = {MakeTPiRows(1), MakeTPiRows(3)};

  std::string dir = FreshDir("fsync");
  std::vector<std::string> synced;
  SetCheckpointFsyncObserverForTest(
      [&](const std::string& path) { synced.push_back(path); });
  Status st = WriteGroundingCheckpoint(cp, dir);
  SetCheckpointFsyncObserverForTest(nullptr);
  ASSERT_TRUE(st.ok()) << st;

  const auto staged = [](const std::string& p) {
    return p.find("/.staging/") != std::string::npos;
  };
  // Every staged table file plus the staged MANIFEST is synced: t_pi, the
  // two t0 segment tables, the banned tables, and the MANIFEST itself.
  EXPECT_GE(std::count_if(synced.begin(), synced.end(), staged), 4);
  EXPECT_EQ(std::count(synced.begin(), synced.end(),
                       dir + "/.staging/MANIFEST"),
            1);
  // The directory is synced exactly twice: once after the table renames
  // (before a MANIFEST may certify them) and once after the MANIFEST
  // rename (making the commit itself durable) — and that is the last
  // fsync of the protocol.
  EXPECT_EQ(std::count(synced.begin(), synced.end(), dir), 2);
  ASSERT_FALSE(synced.empty());
  EXPECT_EQ(synced.back(), dir);
  // Ordering: no staged file is synced after the first directory sync —
  // all data hits the disk before any rename is made durable.
  auto first_dir = std::find(synced.begin(), synced.end(), dir);
  ASSERT_NE(first_dir, synced.end());
  EXPECT_TRUE(std::none_of(first_dir, synced.end(), staged));
}

TEST(CheckpointTest, ReadRemovesOrphanedStagingDebris) {
  // A crash after staging but before commit leaves `<dir>/.staging` behind.
  // The next write clears it, but a resume-only run never writes — the read
  // path must detect and remove the orphan (whatever it holds was never
  // certified by a MANIFEST) while loading the committed snapshot intact.
  GroundingCheckpoint cp;
  cp.iteration = 4;
  cp.next_fact_id = 17;
  cp.t_pi = MakeTPiRows(3);
  std::string dir = FreshDir("orphan_staging");
  ASSERT_TRUE(WriteGroundingCheckpoint(cp, dir).ok());

  // Simulate the interrupted writer: a staging dir with a half-written
  // table and a complete-but-uncommitted manifest.
  const std::string staging = dir + "/.staging";
  std::filesystem::create_directories(staging);
  ASSERT_TRUE(
      WriteTableTsvFile(*MakeTPiRows(9), staging + "/t_pi.tsv").ok());
  {
    std::ofstream manifest(staging + "/MANIFEST");
    manifest << "probkb-grounding-checkpoint 1\niteration 9\n";
  }

  auto loaded = ReadGroundingCheckpoint(TPiSchema(), dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->iteration, 4);  // the committed snapshot, not staging
  EXPECT_TRUE(TablesIdentical(*loaded->t_pi, *cp.t_pi));
  EXPECT_FALSE(std::filesystem::exists(staging));

  // Reading again (no debris) stays clean.
  EXPECT_TRUE(ReadGroundingCheckpoint(TPiSchema(), dir).ok());
  EXPECT_FALSE(std::filesystem::exists(staging));
}

TEST(CheckpointTest, ManifestRowCountsDetectTamperedTables) {
  GroundingCheckpoint cp;
  cp.iteration = 1;
  cp.next_fact_id = 5;
  cp.t_pi = MakeTPiRows(3);
  std::string dir = FreshDir("tamper");
  ASSERT_TRUE(WriteGroundingCheckpoint(cp, dir).ok());
  ASSERT_TRUE(ReadGroundingCheckpoint(TPiSchema(), dir).ok());

  // Truncate t_pi.tsv behind the manifest's back: the recorded row count
  // no longer matches, so the checkpoint is rejected instead of silently
  // resuming from torn state.
  ASSERT_TRUE(
      WriteTableTsvFile(*MakeTPiRows(1), dir + "/t_pi.tsv").ok());
  EXPECT_FALSE(ReadGroundingCheckpoint(TPiSchema(), dir).ok());
}

// --- Single-node checkpoint/resume ---------------------------------------------

TEST(CheckpointResumeTest, SingleNodeResumeMatchesUninterruptedRun) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  // Uninterrupted baseline: Query 3 up front, then the full fixpoint.
  RelationalKB rkb_base = BuildRelationalModel(kb);
  Grounder baseline(&rkb_base, GroundingOptions{});
  ASSERT_TRUE(baseline.ApplyConstraints().ok());
  ASSERT_TRUE(baseline.GroundAtoms().ok());
  auto phi_base = baseline.GroundFactors();
  ASSERT_TRUE(phi_base.ok());
  ASSERT_GE(baseline.stats().iterations, 2) << "example must take >1 iteration";

  // Interrupted run: stop after one iteration, leaving a checkpoint that
  // includes the constraint bans.
  std::string dir = FreshDir("single_resume");
  GroundingOptions interrupted_options;
  interrupted_options.max_iterations = 1;
  interrupted_options.checkpoint_dir = dir;
  RelationalKB rkb_a = BuildRelationalModel(kb);
  Grounder interrupted(&rkb_a, interrupted_options);
  ASSERT_TRUE(interrupted.ApplyConstraints().ok());
  ASSERT_TRUE(interrupted.GroundAtoms().ok());
  ASSERT_TRUE(GroundingCheckpointExists(dir));

  // Resumed run: a fresh grounder over a fresh relational model restores
  // the fixpoint state (facts, ids, bans, iteration count) and continues.
  RelationalKB rkb_b = BuildRelationalModel(kb);
  Grounder resumed(&rkb_b, GroundingOptions{});
  ASSERT_TRUE(resumed.ResumeFrom(dir).ok());
  EXPECT_EQ(resumed.stats().iterations, 1);
  ASSERT_TRUE(resumed.GroundAtoms().ok());
  auto phi_resumed = resumed.GroundFactors();
  ASSERT_TRUE(phi_resumed.ok());

  EXPECT_TRUE(TablesIdentical(*rkb_b.t_pi, *rkb_base.t_pi));
  EXPECT_TRUE(TablesIdentical(**phi_resumed, **phi_base));
}

TEST(CheckpointResumeTest, ResumeRejectsMissingDirectory) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  EXPECT_FALSE(grounder.ResumeFrom(FreshDir("nonexistent")).ok());
}

// --- Engine budget enforcement -------------------------------------------------

TEST(ExecBudgetTest, RowCapTripsResourceExhausted) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.max_rows_per_statement = 1;  // every grounding join exceeds this
  Grounder grounder(&rkb, options);
  Status st = grounder.GroundAtoms();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsBudgetFailure(st.code()));
}

TEST(ExecBudgetTest, RowCapTripsWhenCrossedNotOneOperatorLate) {
  ExecContext ctx;
  ExecBudget budget;
  budget.max_produced_rows = 10;
  ctx.set_budget(budget);
  EXPECT_TRUE(ctx.CheckBudget("scan").ok());
  // The overshooting operator trips the cap itself — even as the last
  // operator of a statement, with no later CheckBudget to catch it.
  EXPECT_EQ(ctx.Record({"scan", 0, 100, 0.0}).code(),
            StatusCode::kResourceExhausted);
}

TEST(ExecBudgetTest, SharedOperatorCounterSpansStatements) {
  FaultInjectionOptions options;
  options.enabled = true;
  options.schedule = {
      {FaultKind::kMemoryExhausted, /*motion=*/2, 0, -1, -1},
  };
  FaultInjector injector(options);
  int64_t op_counter = 0;
  ExecContext first;
  first.set_fault_injector(&injector);
  first.set_shared_op_counter(&op_counter);
  EXPECT_TRUE(first.CheckBudget("op0").ok());
  EXPECT_TRUE(first.CheckBudget("op1").ok());
  // A fresh statement continues the numbering, so operator index 2 names
  // one global execution point, not the third operator of every statement.
  ExecContext second;
  second.set_fault_injector(&injector);
  second.set_shared_op_counter(&op_counter);
  EXPECT_EQ(second.CheckBudget("op2").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(injector.stats().memory_trips, 1);
}

TEST(ExecBudgetTest, ExpiredWallClockDeadlineTripsDeadlineExceeded) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.deadline_seconds = 1e-12;  // expires before the first statement
  Grounder grounder(&rkb, options);
  Status st = grounder.GroundAtoms();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

// --- MPP chaos: scheduled faults, recovery, checkpoint/resume ------------------

/// The acceptance scenario: >= 3 segment failures plus batch faults strike
/// MPP grounding and are recovered transparently; a deadline trip then kills
/// the run mid-fixpoint; a fresh grounder resumes from the checkpoint and
/// finishes bit-identically to a fault-free baseline.
TEST(MppChaosTest, RecoversScheduledFaultsAndResumesBitIdentically) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  // Fault-free baseline.
  RelationalKB rkb_base = BuildRelationalModel(kb);
  MppGrounder baseline(rkb_base, kSegments, MppMode::kViews,
                       GroundingOptions{});
  ASSERT_TRUE(baseline.ApplyConstraints().ok());
  ASSERT_TRUE(baseline.GroundAtoms().ok());
  ASSERT_GE(baseline.stats().iterations, 2);
  auto phi_base = baseline.GroundFactors();
  ASSERT_TRUE(phi_base.ok());
  TablePtr tpi_base = baseline.GatherTPi();

  // Probe run: replay iteration 1 fault-free to learn the motion layout.
  // Motion index i is the i-th motion-kind step of the cost trace, so the
  // probe's step count is exactly the index of iteration 2's first motion.
  RelationalKB rkb_probe = BuildRelationalModel(kb);
  GroundingOptions probe_options;
  probe_options.max_iterations = 1;
  MppGrounder probe(rkb_probe, kSegments, MppMode::kViews, probe_options);
  ASSERT_TRUE(probe.ApplyConstraints().ok());
  ASSERT_TRUE(probe.GroundAtoms().ok());
  std::vector<MotionInfo> trace = MotionTrace(probe.cost());
  const int64_t iteration2_first_motion = static_cast<int64_t>(trace.size());
  std::vector<int64_t> candidates = FaultableRedistributes(trace);
  ASSERT_GE(candidates.size(), 1u) << "no redistribute shipped tuples";

  // Chaos schedule: three segment failures plus a dropped and a duplicated
  // batch inside iteration 1, then a deadline trip at the first motion of
  // iteration 2 (before any iteration-2 state mutation).
  FaultInjectionOptions fault_options;
  fault_options.enabled = true;
  std::vector<FaultEvent>& schedule = fault_options.schedule;
  for (int i = 0; i < 3; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSegmentFailure;
    e.motion = candidates[static_cast<size_t>(i) % candidates.size()];
    e.segment = i % kSegments;  // distinct victims when motions repeat
    schedule.push_back(e);
  }
  {
    FaultEvent drop;
    drop.kind = FaultKind::kDropBatch;
    drop.motion = candidates[0];
    schedule.push_back(drop);
    FaultEvent dup;
    dup.kind = FaultKind::kDuplicateBatch;
    dup.motion = candidates.back();
    schedule.push_back(dup);
    FaultEvent deadline;
    deadline.kind = FaultKind::kDeadlineTrip;
    deadline.motion = iteration2_first_motion;
    schedule.push_back(deadline);
  }

  std::string dir = FreshDir("mpp_chaos");
  GroundingOptions chaos_options;
  chaos_options.checkpoint_dir = dir;
  FaultInjector injector(fault_options);
  RelationalKB rkb_chaos = BuildRelationalModel(kb);
  MppGrounder chaos(rkb_chaos, kSegments, MppMode::kViews, chaos_options,
                    CostParams{}, &injector, RetryPolicy{});
  ASSERT_TRUE(chaos.ApplyConstraints().ok());
  Status st = chaos.GroundAtoms();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st;

  // Iteration 1's faults were all recovered before the deadline struck.
  const FaultStats& stats = injector.stats();
  EXPECT_GE(stats.segment_failures, 3);
  EXPECT_EQ(stats.batches_dropped, 1);
  EXPECT_EQ(stats.batches_duplicated, 1);
  EXPECT_EQ(stats.deadline_trips, 1);
  EXPECT_GE(stats.recovered_faults, 5);
  EXPECT_EQ(stats.unrecovered_motions, 0);
  EXPECT_GE(stats.retries, 3);
  EXPECT_GT(stats.backoff_seconds, 0.0);
  // Recovery cost was charged to the simulation.
  bool saw_recovery_step = false;
  for (const MppStep& step : chaos.cost().steps()) {
    if (step.kind == MppStep::Kind::kRecovery) saw_recovery_step = true;
  }
  EXPECT_TRUE(saw_recovery_step);
  ASSERT_TRUE(GroundingCheckpointExists(dir));

  // Resume on a fresh grounder; the continuation must be bit-identical to
  // the fault-free baseline (same rows, same order, same fact ids).
  RelationalKB rkb_resume = BuildRelationalModel(kb);
  MppGrounder resumed(rkb_resume, kSegments, MppMode::kViews,
                      GroundingOptions{});
  ASSERT_TRUE(resumed.ResumeFrom(dir).ok());
  EXPECT_EQ(resumed.stats().iterations, 1);
  ASSERT_TRUE(resumed.GroundAtoms().ok());
  auto phi_resumed = resumed.GroundFactors();
  ASSERT_TRUE(phi_resumed.ok());

  EXPECT_TRUE(TablesIdentical(*resumed.GatherTPi(), *tpi_base));
  EXPECT_TRUE(TablesIdentical(**phi_resumed, **phi_base));
}

TEST(MppChaosTest, ResumeRejectsSegmentCountMismatch) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  std::string dir = FreshDir("mismatch");
  GroundingOptions options;
  options.checkpoint_dir = dir;
  options.max_iterations = 1;
  RelationalKB rkb = BuildRelationalModel(kb);
  MppGrounder writer(rkb, kSegments, MppMode::kViews, options);
  ASSERT_TRUE(writer.GroundAtoms().ok());
  ASSERT_TRUE(GroundingCheckpointExists(dir));

  RelationalKB rkb2 = BuildRelationalModel(kb);
  MppGrounder reader(rkb2, kSegments + 1, MppMode::kViews, GroundingOptions{});
  EXPECT_FALSE(reader.ResumeFrom(dir).ok());
}

/// Randomized chaos sweep: per-motion fault probabilities under several
/// seeds. All injected faults are recoverable (random faults never strike a
/// retry), so every run must converge to the fault-free result while paying
/// a recovery cost. PROBKB_CHAOS_SEED adds an extra seed, letting CI shake
/// different schedules without a code change.
TEST(MppChaosTest, RandomFaultSweepConvergesToFaultFreeResult) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  RelationalKB rkb_base = BuildRelationalModel(kb);
  MppGrounder baseline(rkb_base, kSegments, MppMode::kViews,
                       GroundingOptions{});
  ASSERT_TRUE(baseline.GroundAtoms().ok());
  auto phi_base = baseline.GroundFactors();
  ASSERT_TRUE(phi_base.ok());
  TablePtr tpi_base = baseline.GatherTPi();

  std::vector<uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("PROBKB_CHAOS_SEED")) {
    seeds.push_back(static_cast<uint64_t>(std::strtoull(env, nullptr, 10)));
  }
  int64_t injected_total = 0;
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultInjectionOptions fault_options;
    fault_options.enabled = true;
    fault_options.seed = seed;
    fault_options.segment_failure_prob = 0.3;
    fault_options.drop_batch_prob = 0.2;
    fault_options.duplicate_batch_prob = 0.2;
    FaultInjector injector(fault_options);

    RelationalKB rkb = BuildRelationalModel(kb);
    MppGrounder grounder(rkb, kSegments, MppMode::kViews, GroundingOptions{},
                         CostParams{}, &injector, RetryPolicy{});
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok()) << phi.status();

    EXPECT_TRUE(TablesIdentical(*grounder.GatherTPi(), *tpi_base));
    EXPECT_TRUE(TablesIdentical(**phi, **phi_base));
    EXPECT_EQ(injector.stats().unrecovered_motions, 0);
    EXPECT_EQ(injector.stats().recovered_faults,
              injector.stats().InjectedTotal());
    injected_total += injector.stats().InjectedTotal();
  }
  EXPECT_GT(injected_total, 0) << "sweep never injected a fault";
}

// --- Pipeline degradation ------------------------------------------------------

TEST(PipelinePartialTest, UnrecoverableScheduleYieldsPartialResult) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  // Find a motion that consults the injector (probe mirrors the pipeline's
  // grounder: constraints_upfront is off below, so layouts match).
  RelationalKB rkb_probe = BuildRelationalModel(kb);
  GroundingOptions probe_options;
  probe_options.max_iterations = 1;
  MppGrounder probe(rkb_probe, kSegments, MppMode::kViews, probe_options);
  ASSERT_TRUE(probe.GroundAtoms().ok());
  std::vector<int64_t> candidates =
      FaultableRedistributes(MotionTrace(probe.cost()));
  ASSERT_GE(candidates.size(), 1u);

  // The same segment fails on the first try and on every retry: the retry
  // budget runs out and the motion is unrecoverable.
  ExpansionOptions options;
  options.use_mpp = true;
  options.mpp_segments = kSegments;
  options.constraints_upfront = false;
  options.fault_injection.enabled = true;
  for (int attempt = 0; attempt <= options.retry.max_attempts + 1; ++attempt) {
    FaultEvent e;
    e.kind = FaultKind::kSegmentFailure;
    e.motion = candidates[0];
    e.attempt = attempt;
    e.segment = 0;
    options.fault_injection.schedule.push_back(e);
  }

  auto result = ExpandKnowledgeBase(kb, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->stop_reason.code(), StatusCode::kResourceExhausted)
      << result->stop_reason;
  EXPECT_EQ(result->failures.grounding, 1);
  EXPECT_EQ(result->failures.Total(), 1);
  EXPECT_GE(result->fault_stats.unrecovered_motions, 1);
  // Graceful degradation: the facts expanded so far are still returned.
  ASSERT_NE(result->t_pi, nullptr);
  EXPECT_GT(result->t_pi->NumRows(), 0);
  ASSERT_NE(result->t_phi, nullptr);
  EXPECT_EQ(result->graph, nullptr);
}

TEST(PipelinePartialTest, RowBudgetYieldsPartialResultSingleNode) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  ExpansionOptions options;
  options.constraints_upfront = false;  // the budget governs expansion only
  options.grounding.max_rows_per_statement = 1;
  auto result = ExpandKnowledgeBase(kb, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->stop_reason.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result->failures.grounding, 1);
  ASSERT_NE(result->t_pi, nullptr);
  // Nothing was expanded, but the extracted facts survive.
  EXPECT_EQ(result->t_pi->NumRows(), 2);
}

TEST(PipelinePartialTest, CheckpointedPipelineResumesAcrossCalls) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  ExpansionOptions clean;
  clean.constraints_upfront = false;
  auto expected = ExpandKnowledgeBase(kb, clean);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->partial);

  // First call dies on a scheduled deadline trip partway through grounding;
  // the iteration checkpoint survives in the directory.
  std::string dir = FreshDir("pipeline_resume");
  RelationalKB rkb_probe = BuildRelationalModel(kb);
  GroundingOptions probe_options;
  probe_options.max_iterations = 1;
  MppGrounder probe(rkb_probe, kSegments, MppMode::kViews, probe_options);
  ASSERT_TRUE(probe.GroundAtoms().ok());
  const int64_t trip_motion =
      static_cast<int64_t>(MotionTrace(probe.cost()).size());

  ExpansionOptions interrupted = clean;
  interrupted.use_mpp = true;
  interrupted.mpp_segments = kSegments;
  interrupted.grounding.checkpoint_dir = dir;
  interrupted.fault_injection.enabled = true;
  {
    FaultEvent e;
    e.kind = FaultKind::kDeadlineTrip;
    e.motion = trip_motion;
    interrupted.fault_injection.schedule.push_back(e);
  }
  auto first = ExpandKnowledgeBase(kb, interrupted);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->partial);
  EXPECT_EQ(first->stop_reason.code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(GroundingCheckpointExists(dir));

  // Second call resumes fault-free and completes; because the single-node
  // baseline and the MPP engine agree atom-for-atom, compare logically.
  ExpansionOptions resume = clean;
  resume.use_mpp = true;
  resume.mpp_segments = kSegments;
  resume.grounding.checkpoint_dir = dir;
  resume.resume_from_checkpoint = true;
  auto second = ExpandKnowledgeBase(kb, resume);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->partial);
  EXPECT_EQ(testutil::TPiAtomSet(*second->t_pi),
            testutil::TPiAtomSet(*expected->t_pi));
  EXPECT_EQ(testutil::CanonicalizeFactors(*second->t_phi, *second->t_pi),
            testutil::CanonicalizeFactors(*expected->t_phi, *expected->t_pi));
}

// --- Resumable Gibbs sampling --------------------------------------------------

TEST(GibbsResumeTest, SlicedSamplingIsBitIdenticalToOneShot) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  ExpansionOptions options;
  options.run_inference = false;
  auto expansion = ExpandKnowledgeBase(kb, options);
  ASSERT_TRUE(expansion.ok());
  const FactorGraph& graph = *expansion->graph;

  GibbsOptions one_shot;
  one_shot.burn_in_sweeps = 20;
  one_shot.sample_sweeps = 60;
  one_shot.num_chains = 2;
  auto full = GibbsMarginals(graph, one_shot);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->complete);
  EXPECT_EQ(full->sweeps_done, 80);

  GibbsOptions sliced = one_shot;
  sliced.max_sweeps_per_call = 7;  // deliberately not a divisor of 80
  GibbsCheckpoint state;
  auto partial = GibbsMarginals(graph, sliced, &state);
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->sweeps_done, 7);
  int calls = 1;
  while (!partial->complete) {
    partial = GibbsMarginals(graph, sliced, &state);
    ASSERT_TRUE(partial.ok());
    ++calls;
    ASSERT_LE(calls, 20) << "sliced sampling failed to terminate";
  }
  EXPECT_EQ(partial->sweeps_done, 80);

  // The interrupted-and-resumed sampler replays the exact sample path.
  ASSERT_EQ(partial->marginals.size(), full->marginals.size());
  for (size_t v = 0; v < full->marginals.size(); ++v) {
    EXPECT_EQ(partial->marginals[v], full->marginals[v]) << "variable " << v;
  }
  EXPECT_DOUBLE_EQ(partial->max_psrf, full->max_psrf);
}

TEST(GibbsResumeTest, MismatchedCheckpointIsRejected) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  ExpansionOptions options;
  options.run_inference = false;
  auto expansion = ExpandKnowledgeBase(kb, options);
  ASSERT_TRUE(expansion.ok());

  GibbsOptions gibbs;
  gibbs.burn_in_sweeps = 5;
  gibbs.sample_sweeps = 10;
  gibbs.num_chains = 2;
  GibbsCheckpoint state;
  ASSERT_TRUE(GibbsMarginals(*expansion->graph, gibbs, &state).ok());

  GibbsOptions more_chains = gibbs;
  more_chains.num_chains = 3;
  EXPECT_EQ(GibbsMarginals(*expansion->graph, more_chains, &state)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace probkb
