#include <gtest/gtest.h>

#include "engine/ops.h"
#include "engine/plan.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace probkb {
namespace {

using testutil::MakeTable;

Schema AB() {
  return Schema({{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
}
Schema CD() {
  return Schema({{"c", ColumnType::kInt64}, {"d", ColumnType::kInt64}});
}

TablePtr Exec(PlanNodePtr plan) {
  ExecContext ctx;
  auto result = plan->Execute(&ctx);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : nullptr;
}

TEST(ScanTest, ReturnsInputAndRecordsStats) {
  auto t = MakeTable(AB(), {{1, 2}, {3, 4}});
  ExecContext ctx;
  auto result = Scan(t, "t")->Execute(&ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result).get(), t.get());
  ASSERT_EQ(ctx.stats().nodes.size(), 1u);
  EXPECT_EQ(ctx.stats().nodes[0].rows_out, 2);
  EXPECT_EQ(ctx.stats().nodes[0].label, "SeqScan on t");
}

TEST(FilterTest, KeepsMatchingRows) {
  auto t = MakeTable(AB(), {{1, 2}, {3, 4}, {5, 6}});
  auto out = Exec(Filter(Scan(t), [](const RowView& r) {
    return r[0].i64() >= 3;
  }));
  ASSERT_EQ(out->NumRows(), 2);
  EXPECT_EQ(out->row(0)[0].i64(), 3);
}

TEST(ProjectTest, ColumnsAndConstants) {
  auto t = MakeTable(AB(), {{1, 2}});
  auto out = Exec(Project(Scan(t), {ProjectExpr::Column(1, "b"),
                                   ProjectExpr::Constant(Value::Int64(9), "k"),
                                   ProjectExpr::Constant(Value::Null(), "n")}));
  ASSERT_EQ(out->NumRows(), 1);
  EXPECT_EQ(out->row(0)[0].i64(), 2);
  EXPECT_EQ(out->row(0)[1].i64(), 9);
  EXPECT_TRUE(out->row(0)[2].is_null());
  EXPECT_EQ(out->schema().GetFieldIndex("k"), 1);
}

TEST(HashJoinTest, InnerJoinBasic) {
  auto left = MakeTable(AB(), {{1, 10}, {2, 20}, {3, 30}});
  auto right = MakeTable(CD(), {{2, 200}, {3, 300}, {3, 301}, {4, 400}});
  auto out = Exec(HashJoin(Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
                          {JoinOutputCol::Left(1, "b"),
                           JoinOutputCol::Right(1, "d")}));
  auto expected = MakeTable(AB(), {{20, 200}, {30, 300}, {30, 301}});
  EXPECT_TRUE(TablesEqualAsBags(*out, *expected));
}

TEST(HashJoinTest, MultiKeyJoin) {
  auto left = MakeTable(AB(), {{1, 1}, {1, 2}});
  auto right = MakeTable(CD(), {{1, 1}, {1, 2}});
  auto out = Exec(HashJoin(Scan(left), Scan(right), {0, 1}, {0, 1},
                          JoinType::kInner,
                          {JoinOutputCol::Left(0, "a"),
                           JoinOutputCol::Left(1, "b")}));
  EXPECT_EQ(out->NumRows(), 2);  // exact (a,b) matches only
}

TEST(HashJoinTest, SemiAndAntiJoin) {
  auto left = MakeTable(AB(), {{1, 0}, {2, 0}, {3, 0}});
  auto right = MakeTable(CD(), {{2, 0}, {2, 1}});
  auto semi = Exec(HashJoin(Scan(left), Scan(right), {0}, {0},
                           JoinType::kLeftSemi));
  ASSERT_EQ(semi->NumRows(), 1);  // row 2 matched once despite 2 build rows
  EXPECT_EQ(semi->row(0)[0].i64(), 2);
  auto anti = Exec(HashJoin(Scan(left), Scan(right), {0}, {0},
                           JoinType::kLeftAnti));
  auto expected = MakeTable(AB(), {{1, 0}, {3, 0}});
  EXPECT_TRUE(TablesEqualAsBags(*anti, *expected));
}

TEST(HashJoinTest, ResidualPredicate) {
  auto left = MakeTable(AB(), {{1, 5}, {1, 50}});
  auto right = MakeTable(CD(), {{1, 10}});
  // Join on a==c, keep only pairs where b < d (residual sees concatenated
  // left+right rows).
  auto out = Exec(HashJoin(
      Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
      {JoinOutputCol::Left(1, "b"), JoinOutputCol::Right(1, "d")},
      [](const RowView& r) { return r[1].i64() < r[3].i64(); }));
  ASSERT_EQ(out->NumRows(), 1);
  EXPECT_EQ(out->row(0)[0].i64(), 5);
}

TEST(HashJoinTest, InnerJoinRequiresOutputCols) {
  auto t = MakeTable(AB(), {{1, 2}});
  ExecContext ctx;
  auto plan = HashJoin(Scan(t), Scan(t), {0}, {0}, JoinType::kInner);
  EXPECT_FALSE(plan->Execute(&ctx).ok());
}

TEST(HashJoinTest, NullKeysJoinEachOther) {
  // NULL == NULL under our key semantics (distinct-style); grounding never
  // joins on nullable columns, but the engine behaviour must be defined.
  auto left = Table::Make(AB());
  left->AppendRow({Value::Null(), Value::Int64(1)});
  auto right = Table::Make(CD());
  right->AppendRow({Value::Null(), Value::Int64(2)});
  auto out = Exec(HashJoin(Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
                          {JoinOutputCol::Left(1, "b"),
                           JoinOutputCol::Right(1, "d")}));
  EXPECT_EQ(out->NumRows(), 1);
}

TEST(DistinctTest, AllColumnsDefault) {
  auto t = MakeTable(AB(), {{1, 2}, {1, 2}, {1, 3}});
  auto out = Exec(Distinct(Scan(t)));
  EXPECT_EQ(out->NumRows(), 2);
}

TEST(DistinctTest, KeySubsetKeepsFirst) {
  auto t = MakeTable(AB(), {{1, 10}, {1, 20}, {2, 30}});
  auto out = Exec(Distinct(Scan(t), {0}));
  ASSERT_EQ(out->NumRows(), 2);
  EXPECT_EQ(out->row(0)[1].i64(), 10);  // first occurrence wins
}

TEST(AggregateTest, CountSumMinMax) {
  auto t = MakeTable(AB(), {{1, 5}, {1, 7}, {2, 3}});
  auto out = Exec(Aggregate(Scan(t), {0},
                           {{AggKind::kCount, 0, "cnt"},
                            {AggKind::kSum, 1, "sum"},
                            {AggKind::kMin, 1, "min"},
                            {AggKind::kMax, 1, "max"}}));
  ASSERT_EQ(out->NumRows(), 2);
  auto rows = out->SortedRows();
  EXPECT_EQ(rows[0][0].i64(), 1);
  EXPECT_EQ(rows[0][1].i64(), 2);   // count
  EXPECT_EQ(rows[0][2].i64(), 12);  // sum
  EXPECT_EQ(rows[0][3].i64(), 5);   // min
  EXPECT_EQ(rows[0][4].i64(), 7);   // max
}

TEST(AggregateTest, HavingFiltersGroups) {
  auto t = MakeTable(AB(), {{1, 0}, {1, 0}, {2, 0}});
  auto out = Exec(Aggregate(Scan(t), {0}, {{AggKind::kCount, 0, "cnt"}},
                           [](const RowView& r) { return r[1].i64() > 1; }));
  ASSERT_EQ(out->NumRows(), 1);
  EXPECT_EQ(out->row(0)[0].i64(), 1);
}

TEST(AggregateTest, GlobalAggregateNoGroups) {
  auto t = MakeTable(AB(), {{1, 5}, {2, 6}});
  auto out = Exec(Aggregate(Scan(t), {}, {{AggKind::kCount, 0, "cnt"}}));
  ASSERT_EQ(out->NumRows(), 1);
  EXPECT_EQ(out->row(0)[0].i64(), 2);
}

TEST(AggregateTest, FloatSum) {
  auto t = Table::Make(Schema({{"g", ColumnType::kInt64},
                               {"v", ColumnType::kFloat64}}));
  t->AppendRow({Value::Int64(1), Value::Float64(0.5)});
  t->AppendRow({Value::Int64(1), Value::Float64(0.25)});
  auto out = Exec(Aggregate(Scan(t), {0}, {{AggKind::kSum, 1, "s"}}));
  ASSERT_EQ(out->NumRows(), 1);
  EXPECT_DOUBLE_EQ(out->row(0)[1].f64(), 0.75);
}

TEST(UnionAllTest, ConcatenatesBags) {
  auto a = MakeTable(AB(), {{1, 1}});
  auto b = MakeTable(AB(), {{1, 1}, {2, 2}});
  std::vector<PlanNodePtr> inputs;
  inputs.push_back(Scan(a));
  inputs.push_back(Scan(b));
  auto out = Exec(UnionAll(std::move(inputs)));
  EXPECT_EQ(out->NumRows(), 3);  // duplicates kept
}

TEST(UnionAllTest, WidthMismatchFails) {
  auto a = MakeTable(AB(), {{1, 1}});
  auto b = MakeTable(Schema({{"x", ColumnType::kInt64}}), {{1}});
  ExecContext ctx;
  std::vector<PlanNodePtr> inputs;
  inputs.push_back(Scan(a));
  inputs.push_back(Scan(b));
  auto plan = UnionAll(std::move(inputs));
  EXPECT_FALSE(plan->Execute(&ctx).ok());
}

TEST(ExplainTest, RendersTree) {
  auto t = MakeTable(AB(), {{1, 2}});
  auto plan = Filter(Scan(t, "facts"), [](const RowView&) { return true; });
  std::string explain = plan->Explain();
  EXPECT_NE(explain.find("Filter"), std::string::npos);
  EXPECT_NE(explain.find("SeqScan on facts"), std::string::npos);
}

TEST(KeyIndexTest, ContainsAndIncrementalAdd) {
  auto t = MakeTable(AB(), {{1, 2}, {3, 4}});
  KeyIndex index(t.get(), {0});
  auto probe = MakeTable(AB(), {{3, 99}, {5, 99}});
  std::vector<int> key = {0};
  EXPECT_TRUE(index.Contains(probe->row(0), key));
  EXPECT_FALSE(index.Contains(probe->row(1), key));
  t->AppendRow({Value::Int64(5), Value::Int64(6)});
  index.AddRow(2);
  EXPECT_TRUE(index.Contains(probe->row(1), key));
}

TEST(SetUnionIntoTest, DedupesOnKey) {
  auto dst = MakeTable(AB(), {{1, 10}});
  auto src = MakeTable(AB(), {{1, 99}, {2, 20}, {2, 21}});
  // Key is column 0 only: {1,99} is a duplicate of {1,10}; {2,21} dups
  // {2,20} within the batch.
  EXPECT_EQ(SetUnionInto(dst.get(), *src, {0}), 1);
  EXPECT_EQ(dst->NumRows(), 2);
}

TEST(DeleteTest, DeleteWhereAndMatching) {
  auto t = MakeTable(AB(), {{1, 0}, {2, 0}, {3, 0}});
  EXPECT_EQ(DeleteWhere(t.get(),
                        [](const RowView& r) { return r[0].i64() == 2; }),
            1);
  EXPECT_EQ(t->NumRows(), 2);
  auto keys = MakeTable(Schema({{"k", ColumnType::kInt64}}), {{3}});
  EXPECT_EQ(DeleteMatching(t.get(), {0}, *keys, {0}), 1);
  ASSERT_EQ(t->NumRows(), 1);
  EXPECT_EQ(t->row(0)[0].i64(), 1);
}

// Property test: HashJoin agrees with a nested-loop reference on random
// inputs, across join types.
class JoinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinPropertyTest, MatchesNestedLoopReference) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto random_table = [&](int64_t rows, int64_t domain) {
    auto t = Table::Make(AB());
    for (int64_t i = 0; i < rows; ++i) {
      t->AppendRow({Value::Int64(rng.UniformInt(0, domain)),
                    Value::Int64(rng.UniformInt(0, domain))});
    }
    return t;
  };
  auto left = random_table(rng.UniformInt(0, 40), 8);
  auto right = random_table(rng.UniformInt(0, 40), 8);

  // Reference: nested loops.
  auto ref_inner = Table::Make(AB());
  auto ref_semi = Table::Make(AB());
  auto ref_anti = Table::Make(AB());
  for (int64_t i = 0; i < left->NumRows(); ++i) {
    bool matched = false;
    for (int64_t j = 0; j < right->NumRows(); ++j) {
      if (left->row(i)[0] == right->row(j)[0]) {
        matched = true;
        ref_inner->AppendRow({left->row(i)[1], right->row(j)[1]});
      }
    }
    if (matched) {
      ref_semi->AppendRow(left->row(i));
    } else {
      ref_anti->AppendRow(left->row(i));
    }
  }

  auto inner = Exec(HashJoin(Scan(left), Scan(right), {0}, {0},
                            JoinType::kInner,
                            {JoinOutputCol::Left(1, "lb"),
                             JoinOutputCol::Right(1, "rb")}));
  auto semi = Exec(HashJoin(Scan(left), Scan(right), {0}, {0},
                           JoinType::kLeftSemi));
  auto anti = Exec(HashJoin(Scan(left), Scan(right), {0}, {0},
                           JoinType::kLeftAnti));
  EXPECT_TRUE(TablesEqualAsBags(*inner, *ref_inner));
  EXPECT_TRUE(TablesEqualAsBags(*semi, *ref_semi));
  EXPECT_TRUE(TablesEqualAsBags(*anti, *ref_anti));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JoinPropertyTest,
                         ::testing::Range(0, 20));

// Property test: Distinct output has unique keys and preserves membership.
class DistinctPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DistinctPropertyTest, UniqueAndComplete) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  auto t = Table::Make(AB());
  for (int i = 0; i < 60; ++i) {
    t->AppendRow({Value::Int64(rng.UniformInt(0, 6)),
                  Value::Int64(rng.UniformInt(0, 6))});
  }
  auto out = Exec(Distinct(Scan(t)));
  auto rows = out->SortedRows();
  EXPECT_EQ(std::unique(rows.begin(), rows.end()), rows.end());
  // Every input row appears in the output.
  KeyIndex index(out.get(), {0, 1});
  std::vector<int> key = {0, 1};
  for (int64_t i = 0; i < t->NumRows(); ++i) {
    EXPECT_TRUE(index.Contains(t->row(i), key));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DistinctPropertyTest,
                         ::testing::Range(0, 10));


TEST(ExecStatsTest, RendersPerNodeRows) {
  auto t = MakeTable(AB(), {{1, 2}, {3, 4}});
  ExecContext ctx;
  auto plan = Filter(Scan(t, "facts"),
                     [](const RowView& r) { return r[0].i64() > 1; });
  ASSERT_TRUE(plan->Execute(&ctx).ok());
  const ExecStats& stats = ctx.stats();
  ASSERT_EQ(stats.nodes.size(), 2u);  // scan + filter
  EXPECT_EQ(stats.TotalRowsIn(), 4);   // 2 into scan, 2 into filter
  EXPECT_EQ(stats.TotalRowsOut(), 3);  // 2 out of scan, 1 out of filter
  std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("SeqScan on facts"), std::string::npos);
  EXPECT_NE(rendered.find("rows_out"), std::string::npos);
}

}  // namespace
}  // namespace probkb
