#include "relational/table_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/ops.h"
#include "fault/checkpoint.h"
#include "kb/relational_model.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

TablePtr SampleTable() {
  auto t = Table::Make(Schema({{"I", ColumnType::kInt64},
                               {"w", ColumnType::kFloat64}}));
  t->AppendRow({Value::Int64(1), Value::Float64(0.5)});
  t->AppendRow({Value::Int64(-7), Value::Null()});
  t->AppendRow({Value::Null(), Value::Float64(1e-300)});
  return t;
}

TEST(TableIoTest, RoundTripPreservesValues) {
  auto t = SampleTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableTsv(t->schema(), &in);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(TablesEqualAsBags(**back, *t));
}

TEST(TableIoTest, NullEncodedAsBackslashN) {
  auto t = SampleTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  EXPECT_NE(out.str().find("\\N"), std::string::npos);
}

TEST(TableIoTest, HeaderValidated) {
  auto t = SampleTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  Schema other({{"X", ColumnType::kInt64}, {"w", ColumnType::kFloat64}});
  std::istringstream in(out.str());
  auto result = ReadTableTsv(other, &in);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(TableIoTest, MalformedRowsRejected) {
  Schema schema({{"a", ColumnType::kInt64}});
  {
    std::istringstream in("# a INT64\nnot_a_number\n");
    EXPECT_FALSE(ReadTableTsv(schema, &in).ok());
  }
  {
    std::istringstream in("# a INT64\n1\t2\n");  // too many fields
    EXPECT_FALSE(ReadTableTsv(schema, &in).ok());
  }
  {
    std::istringstream in("");  // missing header
    EXPECT_FALSE(ReadTableTsv(schema, &in).ok());
  }
}

TEST(TableIoTest, EmptyTableRoundTrips) {
  Table t(TPiSchema());
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableTsv(TPiSchema(), &in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->NumRows(), 0);
}

TEST(TableIoTest, FileRoundTrip) {
  auto t = SampleTable();
  std::string path = ::testing::TempDir() + "/probkb_io_test.tsv";
  ASSERT_TRUE(WriteTableTsvFile(*t, path).ok());
  auto back = ReadTableTsvFile(t->schema(), path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(TablesEqualAsBags(**back, *t));
  EXPECT_FALSE(ReadTableTsvFile(t->schema(), "/nonexistent.tsv").ok());
}

TEST(TableIoTest, DoublePrecisionSurvives) {
  auto t = Table::Make(Schema({{"w", ColumnType::kFloat64}}));
  t->AppendRow({Value::Float64(0.1 + 0.2)});  // not exactly representable
  t->AppendRow({Value::Float64(1.0 / 3.0)});
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableTsv(t->schema(), &in);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ((*back)->row(0)[0].f64(), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ((*back)->row(1)[0].f64(), 1.0 / 3.0);
}

// A TSV fixture captured verbatim from the row-major Table era. The
// columnar Table must parse it and re-serialize it byte-identically: the
// on-disk interchange format is a compatibility contract, not an
// implementation detail.
TEST(TableIoTest, PreColumnarFixtureRoundTripsByteIdentically) {
  const std::string fixture =
      "# I INT64 w FLOAT64\n"
      "1\t0.5\n"
      "-7\t\\N\n"
      "\\N\t0.25\n";
  Schema schema({{"I", ColumnType::kInt64}, {"w", ColumnType::kFloat64}});
  std::istringstream in(fixture);
  auto table = ReadTableTsv(schema, &in);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ((*table)->NumRows(), 3);
  EXPECT_EQ((*table)->row(0)[0], Value::Int64(1));
  EXPECT_TRUE((*table)->row(1)[1].is_null());
  EXPECT_TRUE((*table)->row(2)[0].is_null());
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(**table, &out).ok());
  EXPECT_EQ(out.str(), fixture);
}

// Full checkpoint cycle through the columnar Table: a PR-1-style
// GroundingCheckpoint (TPi + ban sets + MPP segments) written and read
// back must restore every table bit-exactly — row order included, since
// it determines fact-id assignment on resume.
TEST(TableIoTest, GroundingCheckpointRoundTripsThroughColumnarTable) {
  GroundingCheckpoint cp;
  cp.iteration = 3;
  cp.next_fact_id = 41;
  cp.delta_start = 2;
  cp.t_pi = Table::Make(TPiSchema());
  cp.t_pi->AppendRow({Value::Int64(40), Value::Int64(1), Value::Int64(2),
                      Value::Int64(3), Value::Int64(4), Value::Int64(5),
                      Value::Float64(0.5)});
  cp.t_pi->AppendRow({Value::Int64(39), Value::Int64(1), Value::Int64(6),
                      Value::Int64(3), Value::Int64(7), Value::Int64(5),
                      Value::Null()});
  cp.banned_x = Table::Make(BannedEntitySchema());
  cp.banned_x->AppendRow({Value::Int64(2), Value::Int64(3)});
  cp.banned_y = Table::Make(BannedEntitySchema());
  cp.num_segments = 2;
  for (int s = 0; s < 2; ++s) {
    auto seg = Table::Make(TPiSchema());
    seg->AppendRow({Value::Int64(10 + s), Value::Int64(1), Value::Int64(s),
                    Value::Int64(3), Value::Int64(s), Value::Int64(5),
                    Value::Float64(0.25 * (s + 1))});
    cp.t0_segments.push_back(seg);
    cp.tx_segments.push_back(seg->Clone());
    cp.ty_segments.push_back(Table::Make(TPiSchema()));
    cp.txy_segments.push_back(Table::Make(TPiSchema()));
  }
  const std::string dir = ::testing::TempDir() + "/probkb_cp_columnar";
  ASSERT_TRUE(WriteGroundingCheckpoint(cp, dir).ok());
  ASSERT_TRUE(GroundingCheckpointExists(dir));
  auto back = ReadGroundingCheckpoint(TPiSchema(), dir);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->iteration, cp.iteration);
  EXPECT_EQ(back->next_fact_id, cp.next_fact_id);
  EXPECT_EQ(back->delta_start, cp.delta_start);
  EXPECT_EQ(back->num_segments, 2);
  EXPECT_TRUE(TablesEqualExact(*back->t_pi, *cp.t_pi));
  EXPECT_TRUE(TablesEqualExact(*back->banned_x, *cp.banned_x));
  EXPECT_TRUE(TablesEqualExact(*back->banned_y, *cp.banned_y));
  for (int s = 0; s < 2; ++s) {
    EXPECT_TRUE(
        TablesEqualExact(*back->t0_segments[s], *cp.t0_segments[s]));
    EXPECT_TRUE(
        TablesEqualExact(*back->tx_segments[s], *cp.tx_segments[s]));
    EXPECT_TRUE(
        TablesEqualExact(*back->ty_segments[s], *cp.ty_segments[s]));
  }
}

}  // namespace
}  // namespace probkb
