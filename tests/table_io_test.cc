#include "relational/table_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/ops.h"
#include "kb/relational_model.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

TablePtr SampleTable() {
  auto t = Table::Make(Schema({{"I", ColumnType::kInt64},
                               {"w", ColumnType::kFloat64}}));
  t->AppendRow({Value::Int64(1), Value::Float64(0.5)});
  t->AppendRow({Value::Int64(-7), Value::Null()});
  t->AppendRow({Value::Null(), Value::Float64(1e-300)});
  return t;
}

TEST(TableIoTest, RoundTripPreservesValues) {
  auto t = SampleTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableTsv(t->schema(), &in);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(TablesEqualAsBags(**back, *t));
}

TEST(TableIoTest, NullEncodedAsBackslashN) {
  auto t = SampleTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  EXPECT_NE(out.str().find("\\N"), std::string::npos);
}

TEST(TableIoTest, HeaderValidated) {
  auto t = SampleTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  Schema other({{"X", ColumnType::kInt64}, {"w", ColumnType::kFloat64}});
  std::istringstream in(out.str());
  auto result = ReadTableTsv(other, &in);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(TableIoTest, MalformedRowsRejected) {
  Schema schema({{"a", ColumnType::kInt64}});
  {
    std::istringstream in("# a INT64\nnot_a_number\n");
    EXPECT_FALSE(ReadTableTsv(schema, &in).ok());
  }
  {
    std::istringstream in("# a INT64\n1\t2\n");  // too many fields
    EXPECT_FALSE(ReadTableTsv(schema, &in).ok());
  }
  {
    std::istringstream in("");  // missing header
    EXPECT_FALSE(ReadTableTsv(schema, &in).ok());
  }
}

TEST(TableIoTest, EmptyTableRoundTrips) {
  Table t(TPiSchema());
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableTsv(TPiSchema(), &in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->NumRows(), 0);
}

TEST(TableIoTest, FileRoundTrip) {
  auto t = SampleTable();
  std::string path = ::testing::TempDir() + "/probkb_io_test.tsv";
  ASSERT_TRUE(WriteTableTsvFile(*t, path).ok());
  auto back = ReadTableTsvFile(t->schema(), path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(TablesEqualAsBags(**back, *t));
  EXPECT_FALSE(ReadTableTsvFile(t->schema(), "/nonexistent.tsv").ok());
}

TEST(TableIoTest, DoublePrecisionSurvives) {
  auto t = Table::Make(Schema({{"w", ColumnType::kFloat64}}));
  t->AppendRow({Value::Float64(0.1 + 0.2)});  // not exactly representable
  t->AppendRow({Value::Float64(1.0 / 3.0)});
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(*t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableTsv(t->schema(), &in);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ((*back)->row(0)[0].f64(), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ((*back)->row(1)[0].f64(), 1.0 / 3.0);
}

}  // namespace
}  // namespace probkb
