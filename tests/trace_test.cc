#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "grounding/mpp_grounder.h"
#include "kb/relational_model.h"
#include "obs/histogram.h"
#include "obs/stats_registry.h"
#include "obs/trace.h"
#include "runtime/process_runtime.h"
#include "runtime/wire.h"
#include "serve/metrics_endpoint.h"
#include "serve/query_server.h"
#include "tests/test_util.h"
#include "util/strings.h"
#include "util/timer.h"

namespace probkb {
namespace {

bool IsWorker(const SpanRecord& record) {
  return std::strcmp(record.category, "worker") == 0;
}

// --- Deterministic identity ----------------------------------------------------

TEST(TracerTest, SpanIdsAreSeededAndDeterministic) {
  Tracer a(/*seed=*/42);
  Tracer b(/*seed=*/42);
  a.set_enabled(true);
  b.set_enabled(true);
  for (Tracer* t : {&a, &b}) {
    TraceSpan root(t, "root", "test", 1);
    TraceSpan child(t, "child", "test", 2);
  }
  EXPECT_EQ(a.CanonicalText(), b.CanonicalText());
  EXPECT_FALSE(a.CanonicalText().empty());

  // A different seed produces a different identity universe.
  Tracer c(/*seed=*/43);
  c.set_enabled(true);
  {
    TraceSpan root(&c, "root", "test", 1);
    TraceSpan child(&c, "child", "test", 2);
  }
  EXPECT_NE(a.CanonicalText(), c.CanonicalText());
}

TEST(TracerTest, NestingParentLinksAndFreshTracePerRoot) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan root(&tracer, "root", "test");
    TraceSpan child(&tracer, "child", "test");
    EXPECT_EQ(child.trace_id(), root.trace_id());
  }
  {
    TraceSpan root2(&tracer, "root2", "test");
    (void)root2;
  }
  const std::vector<SpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 3u);
  // Children close before parents: child, root, root2.
  EXPECT_STREQ(spans[0].name, "child");
  EXPECT_STREQ(spans[1].name, "root");
  EXPECT_STREQ(spans[2].name, "root2");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_NE(spans[2].trace_id, spans[1].trace_id);
}

TEST(TracerTest, DisabledTracerEmitsNothingAndSpansAreInactive) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "ghost", "test");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.trace_id(), 0u);
  }
  EXPECT_TRUE(tracer.CollectSpans().empty());
}

TEST(TracerTest, WorkerSpanIdentityIsDerivedFromWorkCoordinates) {
  Tracer tracer;
  tracer.set_enabled(true);
  // The same (trace, parent, motion, segment, kind) — e.g. a respawned
  // worker re-handling an exchange — must reproduce the same span id and
  // collapse to one record.
  tracer.RecordWorkerSpan(7, 9, /*motion=*/3, /*segment=*/1, "exchange",
                          100, Tracer::NowUs(), 5);
  tracer.RecordWorkerSpan(7, 9, /*motion=*/3, /*segment=*/1, "exchange",
                          100, Tracer::NowUs(), 6);
  tracer.RecordWorkerSpan(7, 9, /*motion=*/4, /*segment=*/1, "exchange",
                          100, Tracer::NowUs(), 5);
  const std::vector<SpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
  // Untraced frames (heartbeats ride trace 0) never become spans.
  tracer.RecordWorkerSpan(0, 0, 1, 0, "ping", 0, Tracer::NowUs(), 1);
  EXPECT_EQ(tracer.CollectSpans().size(), 2u);
}

// --- Byte-identity across thread counts and runtimes ---------------------------

std::string GroundAndDumpCanonical(int num_threads, bool use_process) {
  Tracer* tracer = Tracer::Global();
  tracer->Reset();
  tracer->set_enabled(true);
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions grounding;
  grounding.num_threads = num_threads;
  MppGrounder mpp(rkb, /*segments=*/2, MppMode::kViews, grounding);
  std::unique_ptr<ProcessRuntime> runtime;
  if (use_process) {
    ProcessRuntimeOptions options;
    options.num_segments = 2;
    options.frame_deadline_seconds = 10.0;
    runtime = std::make_unique<ProcessRuntime>(options);
    EXPECT_TRUE(runtime->Spawn().ok());
    mpp.AttachRuntime(runtime.get());
  }
  EXPECT_TRUE(mpp.GroundAtoms().ok());
  if (runtime != nullptr) runtime->Shutdown();
  std::string canonical = tracer->CanonicalText();
  tracer->set_enabled(false);
  return canonical;
}

TEST(TraceDeterminismTest, CanonicalDumpIsByteIdenticalAcrossThreadCounts) {
  const std::string base = GroundAndDumpCanonical(1, false);
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base.find("iteration"), std::string::npos);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(GroundAndDumpCanonical(threads, false), base)
        << "canonical trace diverged at " << threads << " threads";
  }
}

TEST(TraceDeterminismTest, CanonicalDumpIsByteIdenticalSimVsProcess) {
  const std::string sim = GroundAndDumpCanonical(2, false);

  Tracer* tracer = Tracer::Global();
  tracer->Reset();
  tracer->set_enabled(true);
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions grounding;
  grounding.num_threads = 2;
  MppGrounder mpp(rkb, /*segments=*/2, MppMode::kViews, grounding);
  ProcessRuntimeOptions options;
  options.num_segments = 2;
  options.frame_deadline_seconds = 10.0;
  ProcessRuntime runtime(options);
  ASSERT_TRUE(runtime.Spawn().ok());
  mpp.AttachRuntime(&runtime);
  ASSERT_TRUE(mpp.GroundAtoms().ok());
  runtime.Shutdown();

  // The canonical (deterministic-fields-only) dump matches the simulator
  // byte for byte; the full span set additionally carries worker spans
  // stitched under supervisor ship spans.
  EXPECT_EQ(tracer->CanonicalText(), sim);
  const std::vector<SpanRecord> spans = tracer->CollectSpans();
  int workers = 0;
  int orphans = 0;
  for (const SpanRecord& record : spans) {
    if (!IsWorker(record)) continue;
    ++workers;
    EXPECT_NE(record.trace_id, 0u);
    bool parent_found = false;
    for (const SpanRecord& other : spans) {
      if (!IsWorker(other) && other.span_id == record.parent_id &&
          other.trace_id == record.trace_id) {
        parent_found = true;
        // Stitching clamps the worker interval into the parent's.
        EXPECT_GE(record.start_us, other.start_us);
        EXPECT_LE(record.start_us + record.dur_us,
                  other.start_us + other.dur_us);
        break;
      }
    }
    if (!parent_found) ++orphans;
  }
  EXPECT_GT(workers, 0) << "process run produced no worker spans";
  EXPECT_EQ(orphans, 0);
  tracer->set_enabled(false);
}

// --- Chaos: exactly-once worker spans across kill + respawn --------------------

TEST(TraceChaosTest, RespawnedWorkerSpansAppearExactlyOnce) {
  Tracer* tracer = Tracer::Global();
  tracer->Reset();
  tracer->set_enabled(true);

  ProcessRuntimeOptions options;
  options.num_segments = 2;
  options.frame_deadline_seconds = 10.0;
  ProcessRuntime runtime(options);
  ASSERT_TRUE(runtime.Spawn().ok());

  auto t = Table::Make(Schema({{"k", ColumnType::kInt64}}));
  for (int i = 0; i < 16; ++i) t->AppendRow({Value::Int64(i)});

  {
    TraceSpan root(tracer, "chaos_root", "test");
    ASSERT_TRUE(runtime.Exchange(1, /*motion=*/0, *t, "warmup").ok());
    runtime.KillWorker(1);
    // Detected on the next exchange; the retry re-handles motion 1 in the
    // respawned worker — same derived span id, deduplicated at collect.
    ASSERT_TRUE(runtime.Exchange(1, /*motion=*/1, *t, "after_kill").ok());
  }
  EXPECT_EQ(runtime.stats().respawns, 1);
  runtime.Shutdown();

  const std::vector<SpanRecord> spans = tracer->CollectSpans();
  int motion0 = 0;
  int motion1 = 0;
  for (const SpanRecord& record : spans) {
    if (!IsWorker(record)) continue;
    EXPECT_STREQ(record.name, "exchange");
    if (record.a == 0 && record.b == 1) ++motion0;
    if (record.a == 1 && record.b == 1) ++motion1;
  }
  EXPECT_EQ(motion0, 1) << "pre-kill exchange span duplicated or lost";
  EXPECT_EQ(motion1, 1) << "retried exchange span duplicated or lost";
  // Every (trace, span) pair is unique in the stitched output.
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      EXPECT_FALSE(spans[i].trace_id == spans[j].trace_id &&
                   spans[i].span_id == spans[j].span_id)
          << "duplicate span id in stitched tree";
    }
  }
  tracer->set_enabled(false);
}

// --- Serve instrumentation -----------------------------------------------------

TEST(ServeTraceTest, QuerySpansNestAndExemplarLinksTailLatency) {
  Tracer* tracer = Tracer::Global();
  tracer->Reset();
  tracer->set_enabled(true);

  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  QueryServer server(&kb, rkb.next_fact_id, ServeOptions{});
  ASSERT_TRUE(server.PublishEpoch(rkb).ok());
  ASSERT_TRUE(server.Answer("born_in(Ruth Gruber, *)").ok());
  tracer->set_enabled(false);

  const std::vector<SpanRecord> spans = tracer->CollectSpans();
  auto find = [&](const char* name) -> const SpanRecord* {
    for (const SpanRecord& record : spans) {
      if (std::strcmp(record.name, name) == 0) return &record;
    }
    return nullptr;
  };
  const SpanRecord* serve = find("serve");
  const SpanRecord* query = find("serve_query");
  const SpanRecord* ground = find("local_ground");
  const SpanRecord* infer = find("infer");
  ASSERT_NE(serve, nullptr);
  ASSERT_NE(query, nullptr);
  ASSERT_NE(ground, nullptr);
  ASSERT_NE(infer, nullptr);
  EXPECT_NE(find("parse"), nullptr);
  EXPECT_NE(find("snapshot_pin"), nullptr);
  EXPECT_NE(find("epoch_index"), nullptr);
  EXPECT_EQ(query->parent_id, serve->span_id);
  EXPECT_EQ(ground->parent_id, query->span_id);
  EXPECT_EQ(infer->parent_id, query->span_id);
  EXPECT_GT(ground->a, 0);  // grounded atoms

  // The tail bucket of the serve_query histogram carries the trace id of
  // the (only) traced query.
  const std::string stats = server.StatsText();
  const std::string hex = StrFormat(
      "%016llx", static_cast<unsigned long long>(query->trace_id));
  EXPECT_NE(stats.find("trace=" + hex), std::string::npos) << stats;
  EXPECT_NE(server.PrometheusText().find("trace_id=\"" + hex + "\""),
            std::string::npos);
}

// --- Metrics endpoint ----------------------------------------------------------

TEST(MetricsEndpointTest, ServesPrometheusSnapshotsOverWireFrames) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  QueryServer server(&kb, rkb.next_fact_id, ServeOptions{});
  ASSERT_TRUE(server.PublishEpoch(rkb).ok());
  ASSERT_TRUE(server.Answer("born_in(Ruth Gruber, *)").ok());

  const std::string path =
      testing::TempDir() + "/probkb_metrics_test.sock";
  MetricsEndpoint endpoint(&server, path);
  ASSERT_TRUE(endpoint.Start().ok());

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  for (int poll = 0; poll < 2; ++poll) {
    ASSERT_TRUE(wire::WriteFrame(fd, wire::FrameType::kMetricsRequest, -1,
                                 std::string_view())
                    .ok());
    auto reply = wire::ReadFrame(fd, 10.0);
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_EQ(reply->type, wire::FrameType::kMetricsReply);
    EXPECT_NE(reply->payload.find("probkb_serve_queries_total 1"),
              std::string::npos)
        << reply->payload;
    EXPECT_NE(reply->payload.find(
                  "probkb_latency_seconds{series=\"serve_query\""),
              std::string::npos);
    EXPECT_NE(reply->payload.find("probkb_serve_epoch 0"),
              std::string::npos);
  }
  ::close(fd);
  EXPECT_GE(endpoint.polls_served(), 2);
  endpoint.Stop();
  // The socket file is gone; a second Stop() is harmless.
  EXPECT_NE(access(path.c_str(), F_OK), 0);
  endpoint.Stop();
}

// --- Satellite: monotonic timers -----------------------------------------------

TEST(TimerTest, BackwardsClockStepClampsToZero) {
  Timer timer;
  Timer::SetSkewForTest(-60 * 1000 * 1000);  // clock steps back a minute
  EXPECT_EQ(timer.Seconds(), 0.0);
  EXPECT_EQ(timer.Millis(), 0.0);
  Timer::SetSkewForTest(0);
  EXPECT_GE(timer.Seconds(), 0.0);
}

TEST(TimerTest, ForwardSkewStillMeasures) {
  Timer timer;
  Timer::SetSkewForTest(5 * 1000 * 1000);
  EXPECT_GE(timer.Seconds(), 4.9);
  Timer::SetSkewForTest(0);
}

// --- Satellite: histogram exemplars --------------------------------------------

TEST(HistogramExemplarTest, TailExemplarTracksHighestTracedBucket) {
  LatencyHistogram h;
  h.Record(0.001, 111);
  h.Record(0.5, 222);
  h.Record(0.002, 333);
  EXPECT_EQ(h.tail_exemplar(), 222u);
  // Latest traced recording in the same bucket wins.
  h.Record(0.5, 444);
  EXPECT_EQ(h.tail_exemplar(), 444u);
  // Untraced recordings never disturb the exemplars.
  h.Record(2.0, 0);
  EXPECT_EQ(h.tail_exemplar(), 444u);
}

TEST(HistogramExemplarTest, EvictionKeepsHighestBucketsSortedAscending) {
  LatencyHistogram h;
  for (int i = 0; i < 8; ++i) {
    h.Record(0.0001 * static_cast<double>(1 << i),
             static_cast<uint64_t>(100 + i));
  }
  ASSERT_LE(h.exemplars().size(),
            static_cast<size_t>(LatencyHistogram::kMaxExemplars));
  EXPECT_EQ(h.tail_exemplar(), 107u);
  for (size_t i = 1; i < h.exemplars().size(); ++i) {
    EXPECT_LT(h.exemplars()[i - 1].bucket, h.exemplars()[i].bucket);
  }
}

// --- Satellite: plaintext percentiles + Prometheus rendering -------------------

TEST(StatsRenderingTest, PlaintextStatsListPercentilesForEverySeries) {
  StatsRegistry registry;
  registry.RecordLatency("alpha", 0.001);
  registry.RecordLatency("beta", 0.010, 0xabcd);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("latency histograms:"), std::string::npos);
  for (const char* column : {"p50_ms", "p95_ms", "p99_ms", "max_ms"}) {
    EXPECT_NE(text.find(column), std::string::npos) << column;
  }
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("trace=000000000000abcd"), std::string::npos);
}

TEST(StatsRenderingTest, PrometheusTextCoversCountersQuantilesExemplars) {
  StatsRegistry registry;
  registry.IncrementCounter("serve queries", 2);  // name gets sanitized
  registry.RecordLatency("serve_query", 0.002, 0x1234);
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE probkb_serve_queries_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("probkb_serve_queries_total 2"), std::string::npos);
  for (const char* q : {"0.5", "0.95", "0.99"}) {
    EXPECT_NE(
        prom.find(StrFormat(
            "probkb_latency_seconds{series=\"serve_query\",quantile=\"%s\"}",
            q)),
        std::string::npos)
        << q;
  }
  EXPECT_NE(prom.find("probkb_latency_seconds_count{series=\"serve_query\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("trace_id=\"0000000000001234\""), std::string::npos);
}

}  // namespace
}  // namespace probkb
