#include <gtest/gtest.h>

#include "mln/parser.h"

#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

constexpr const char* kPaperProgram = R"(
// ReVerb-Sherlock running example (Table 1).
class Writer
class City
class Place
relation born_in(Writer, City)

0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)

1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
1.53 live_in(x:Writer, y:City) :- born_in(x, y)
0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)

functional born_in 1 1
)";

TEST(ParserTest, ParsesPaperExample) {
  auto kb = ParseMln(kPaperProgram);
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(kb->facts().size(), 2u);
  EXPECT_EQ(kb->rules().size(), 4u);
  EXPECT_EQ(kb->constraints().size(), 1u);
  EXPECT_EQ(kb->signatures().size(), 1u);
  EXPECT_EQ(kb->classes().size(), 3);

  const HornRule& m1 = kb->rules()[0];
  EXPECT_EQ(m1.structure, RuleStructure::kM1);
  EXPECT_EQ(m1.head, kb->relations().Lookup("live_in"));
  EXPECT_EQ(m1.c2, kb->classes().Lookup("Place"));
  EXPECT_DOUBLE_EQ(m1.weight, 1.40);
  EXPECT_DOUBLE_EQ(m1.score, 1.40);  // defaults to weight

  const HornRule& m3 = kb->rules()[2];
  EXPECT_EQ(m3.structure, RuleStructure::kM3);
  EXPECT_EQ(m3.body1, kb->relations().Lookup("live_in"));
  EXPECT_EQ(m3.c3, kb->classes().Lookup("Writer"));
}

TEST(ParserTest, RuleScoreAnnotation) {
  auto kb = ParseMln(
      "0.5 a(x:C, y:C) :- b(x, y) score=0.91\n");
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_DOUBLE_EQ(kb->rules()[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(kb->rules()[0].score, 0.91);
}

TEST(ParserTest, CommentsAndBlankLines) {
  auto kb = ParseMln(
      "# leading comment\n"
      "\n"
      "0.9 r(a:C, b:C)  // trailing comment\n");
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(kb->facts().size(), 1u);
}

TEST(ParserTest, FunctionalDeclarations) {
  auto kb = ParseMln(
      "functional lives_in 1 3\n"
      "functional capital_of 2 1\n");
  ASSERT_TRUE(kb.ok());
  ASSERT_EQ(kb->constraints().size(), 2u);
  EXPECT_EQ(kb->constraints()[0].type, FunctionalityType::kTypeI);
  EXPECT_EQ(kb->constraints()[0].degree, 3);
  EXPECT_EQ(kb->constraints()[1].type, FunctionalityType::kTypeII);
}

TEST(ParserTest, MemberDeclarations) {
  auto kb = ParseMln("member City Paris\n");
  ASSERT_TRUE(kb.ok());
  ASSERT_EQ(kb->class_members().size(), 1u);
  EXPECT_EQ(kb->class_members()[0].cls, kb->classes().Lookup("City"));
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* fragment;
  };
  std::vector<Case> cases = {
      {"0.9 r(a, b:C)\n", "entity:Class"},           // unannotated fact arg
      {"xyz\n", "weight"},                           // garbage line
      {"0.9 r(a:C b:C)\n", "','"},                   // missing comma
      {"functional r 3 1\n", "type"},                // bad type
      {"functional r 1 0\n", "degree"},              // bad degree
      {"0.5 p(x:C, y:C) :- q(x, w)\n", "class"},     // unannotated variable
      {"0.5 p(x:C, x:C) :- q(x, x)\n", "distinct"},  // outside six structures
  };
  for (const auto& test_case : cases) {
    auto kb = ParseMln(test_case.text);
    ASSERT_FALSE(kb.ok()) << test_case.text;
    EXPECT_NE(kb.status().message().find("line 1"), std::string::npos)
        << kb.status();
    EXPECT_NE(kb.status().message().find(test_case.fragment),
              std::string::npos)
        << kb.status();
  }
}

TEST(ParserTest, ConflictingVariableClassesRejected) {
  auto kb = ParseMln("0.5 p(x:A, y:B) :- q(x:C, y)\n");
  EXPECT_FALSE(kb.ok());
}

TEST(ParserTest, SerializeRoundTrip) {
  auto kb = ParseMln(kPaperProgram);
  ASSERT_TRUE(kb.ok());
  std::string text = SerializeMln(*kb);
  auto kb2 = ParseMln(text);
  ASSERT_TRUE(kb2.ok()) << kb2.status() << "\n" << text;
  EXPECT_EQ(kb2->facts().size(), kb->facts().size());
  ASSERT_EQ(kb2->rules().size(), kb->rules().size());
  for (size_t i = 0; i < kb->rules().size(); ++i) {
    EXPECT_EQ(kb2->rules()[i].structure, kb->rules()[i].structure);
    EXPECT_DOUBLE_EQ(kb2->rules()[i].weight, kb->rules()[i].weight);
  }
  EXPECT_EQ(kb2->constraints().size(), kb->constraints().size());
}

TEST(ParserTest, RoundTripPreservesGroundingBehaviour) {
  // The textual KB grounds to the same atoms as the programmatic fixture.
  auto parsed = ParseMln(kPaperProgram);
  ASSERT_TRUE(parsed.ok());
  KnowledgeBase programmatic = testutil::BuildPaperExampleKB();
  // Symbol ids differ; compare via names by checking counts only here —
  // grounding equivalence is covered in grounding_test.
  EXPECT_EQ(parsed->facts().size(), programmatic.facts().size());
  // The fixture has 6 rules (incl. grow_up_in); the text program has 4.
  EXPECT_EQ(parsed->rules().size(), 4u);
}

TEST(ParserTest, FileNotFound) {
  auto kb = ParseMlnFile("/nonexistent/path.mln");
  EXPECT_FALSE(kb.ok());
  EXPECT_EQ(kb.status().code(), StatusCode::kIOError);
}


// Property: SerializeMln round-trips generated KBs (grounding-equivalent
// programs with identical rule partitions and constraint sets).
class SerializePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializePropertyTest, GeneratedKbRoundTrips) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.002;
  cfg.seed = static_cast<uint64_t>(GetParam()) * 37 + 3;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  std::string text = SerializeMln(skb->kb);
  auto back = ParseMln(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->facts().size(), skb->kb.facts().size());
  ASSERT_EQ(back->rules().size(), skb->kb.rules().size());
  EXPECT_EQ(back->constraints().size(), skb->kb.constraints().size());
  EXPECT_EQ(back->class_members().size(), skb->kb.class_members().size());
  for (size_t i = 0; i < back->rules().size(); ++i) {
    EXPECT_EQ(back->rules()[i].structure, skb->kb.rules()[i].structure);
    EXPECT_NEAR(back->rules()[i].weight, skb->kb.rules()[i].weight, 1e-9);
    EXPECT_NEAR(back->rules()[i].score, skb->kb.rules()[i].score, 1e-9);
  }

  // Same closure from both programs.
  RelationalKB rkb1 = BuildRelationalModel(skb->kb);
  RelationalKB rkb2 = BuildRelationalModel(*back);
  GroundingOptions options;
  options.max_iterations = 2;
  Grounder g1(&rkb1, options), g2(&rkb2, options);
  ASSERT_TRUE(g1.GroundAtoms().ok());
  ASSERT_TRUE(g2.GroundAtoms().ok());
  // Symbol ids can differ between the dictionaries; compare sizes (full
  // atom-set equality is covered via the shared-dictionary tests).
  EXPECT_EQ(rkb2.t_pi->NumRows(), rkb1.t_pi->NumRows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializePropertyTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace probkb
