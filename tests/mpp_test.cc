#include <gtest/gtest.h>

#include "datagen/synthetic_kb.h"
#include "engine/ops.h"
#include "grounding/mpp_grounder.h"
#include "mpp/mpp_ops.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace probkb {
namespace {

using testutil::MakeTable;

Schema AB() {
  return Schema({{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
}

TablePtr RandomTable(Rng* rng, int64_t rows, int64_t domain) {
  auto t = Table::Make(AB());
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({Value::Int64(rng->UniformInt(0, domain)),
                  Value::Int64(rng->UniformInt(0, domain))});
  }
  return t;
}

// --- DistributedTable ---------------------------------------------------------

TEST(DistributedTableTest, HashPlacementIsValidAndComplete) {
  Rng rng(1);
  auto local = RandomTable(&rng, 200, 50);
  auto dist =
      DistributedTable::Distribute(*local, 8, Distribution::Hash({0}));
  EXPECT_TRUE(dist->ValidatePlacement().ok());
  EXPECT_EQ(dist->NumRows(), 200);
  EXPECT_TRUE(TablesEqualAsBags(*dist->ToLocal(), *local));
}

TEST(DistributedTableTest, ReplicatedCountsOnceLogically) {
  auto local = MakeTable(AB(), {{1, 2}, {3, 4}});
  auto dist =
      DistributedTable::Distribute(*local, 4, Distribution::Replicated());
  EXPECT_EQ(dist->NumRows(), 2);
  EXPECT_EQ(dist->PhysicalRows(), 8);
  EXPECT_TRUE(TablesEqualAsBags(*dist->ToLocal(), *local));
}

TEST(DistributedTableTest, RandomRoundRobinBalances) {
  Rng rng(2);
  auto local = RandomTable(&rng, 100, 10);
  auto dist = DistributedTable::Distribute(*local, 4, Distribution::Random());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(dist->segment(s)->NumRows(), 25);
  }
}

TEST(DistributionTest, KeyPredicates) {
  Distribution h = Distribution::Hash({1, 3});
  std::vector<int> same = {1, 3};
  std::vector<int> super = {0, 1, 3};
  std::vector<int> other = {3, 1};
  EXPECT_TRUE(h.IsHashOn(same));
  EXPECT_FALSE(h.IsHashOn(super));
  EXPECT_FALSE(h.IsHashOn(other));  // order matters
  EXPECT_TRUE(h.HashKeySubsetOf(super));
  EXPECT_TRUE(h.HashKeySubsetOf(other));  // subset ignores order
  std::vector<int> just_one = {1};
  EXPECT_FALSE(h.HashKeySubsetOf(just_one));
}

// --- Motions -------------------------------------------------------------------

TEST(MotionTest, RedistributePreservesRowsAndChargesShipping) {
  Rng rng(3);
  auto local = RandomTable(&rng, 300, 40);
  auto dist = DistributedTable::Distribute(*local, 8, Distribution::Random());
  MppContext ctx(8);
  auto redist = ctx.Redistribute(*dist, {1});
  ASSERT_TRUE(redist.ok());
  EXPECT_TRUE((*redist)->ValidatePlacement().ok());
  EXPECT_TRUE(TablesEqualAsBags(*(*redist)->ToLocal(), *local));
  // Roughly 7/8 of rows move on average; definitely some, never more than
  // all.
  EXPECT_GT(ctx.cost().tuples_shipped(), 0);
  EXPECT_LE(ctx.cost().tuples_shipped(), 300);
  ASSERT_EQ(ctx.cost().steps().size(), 1u);
  EXPECT_EQ(ctx.cost().steps()[0].kind, MppStep::Kind::kRedistribute);
}

TEST(MotionTest, RedistributeAlreadyPlacedShipsNothingAcross) {
  Rng rng(4);
  auto local = RandomTable(&rng, 300, 40);
  auto dist = DistributedTable::Distribute(*local, 8,
                                           Distribution::Hash({0}));
  MppContext ctx(8);
  auto redist = ctx.Redistribute(*dist, {0});
  ASSERT_TRUE(redist.ok());
  EXPECT_EQ(ctx.cost().tuples_shipped(), 0);  // all rows stay put
}

TEST(MotionTest, BroadcastShipsRowsTimesSegmentsMinusOne) {
  Rng rng(5);
  auto local = RandomTable(&rng, 100, 10);
  auto dist = DistributedTable::Distribute(*local, 4, Distribution::Random());
  MppContext ctx(4);
  auto bcast = ctx.Broadcast(*dist);
  ASSERT_TRUE(bcast.ok());
  EXPECT_TRUE((*bcast)->distribution().is_replicated());
  EXPECT_EQ(ctx.cost().tuples_shipped(), 100 * 3);
  EXPECT_TRUE(TablesEqualAsBags(*(*bcast)->ToLocal(), *local));
}

TEST(MotionTest, BroadcastCostsMoreThanRedistribute) {
  // The Figure 4 phenomenon: broadcasting a large input is far more
  // expensive than redistributing it.
  Rng rng(6);
  auto local = RandomTable(&rng, 10000, 1000);
  auto dist =
      DistributedTable::Distribute(*local, 32, Distribution::Random());
  MppContext ctx_r(32), ctx_b(32);
  ASSERT_TRUE(ctx_r.Redistribute(*dist, {0}).ok());
  ASSERT_TRUE(ctx_b.Broadcast(*dist).ok());
  EXPECT_GT(ctx_b.cost().simulated_seconds(),
            3 * ctx_r.cost().simulated_seconds());
}

TEST(MotionTest, GatherCollectsEverything) {
  Rng rng(7);
  auto local = RandomTable(&rng, 64, 8);
  auto dist = DistributedTable::Distribute(*local, 4,
                                           Distribution::Hash({0, 1}));
  MppContext ctx(4);
  auto gathered = ctx.Gather(*dist);
  ASSERT_TRUE(gathered.ok());
  EXPECT_TRUE(TablesEqualAsBags(**gathered, *local));
}

// --- Distributed operators vs single-node reference ----------------------------

class MppOpsEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MppOpsEquivalenceTest, JoinMatchesSingleNode) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 10);
  auto left_local = RandomTable(&rng, 120, 12);
  auto right_local = RandomTable(&rng, 150, 12);

  ExecContext ec;
  auto expected =
      HashJoin(Scan(left_local), Scan(right_local), {0}, {0},
               JoinType::kInner,
               {JoinOutputCol::Left(1, "lb"), JoinOutputCol::Right(1, "rb")})
          ->Execute(&ec);
  ASSERT_TRUE(expected.ok());

  for (MotionPolicy policy :
       {MotionPolicy::kAuto, MotionPolicy::kBroadcastRight,
        MotionPolicy::kBroadcastLeft}) {
    MppContext ctx(5);
    auto left = DistributedTable::Distribute(*left_local, 5,
                                             Distribution::Random());
    auto right = DistributedTable::Distribute(*right_local, 5,
                                              Distribution::Hash({1}));
    MppJoinSpec spec;
    spec.left_keys = {0};
    spec.right_keys = {0};
    spec.type = JoinType::kInner;
    spec.output_cols = {JoinOutputCol::Left(1, "lb"),
                        JoinOutputCol::Right(1, "rb")};
    spec.policy = policy;
    auto result = MppHashJoin(&ctx, left, right, spec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(TablesEqualAsBags(*(*result)->ToLocal(), **expected))
        << "policy " << static_cast<int>(policy);
  }
}

TEST_P(MppOpsEquivalenceTest, SemiAntiJoinMatchesSingleNode) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 40);
  auto left_local = RandomTable(&rng, 80, 10);
  auto right_local = RandomTable(&rng, 60, 10);
  for (JoinType type : {JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    ExecContext ec;
    auto expected = HashJoin(Scan(left_local), Scan(right_local), {0}, {0},
                             type)
                        ->Execute(&ec);
    ASSERT_TRUE(expected.ok());
    MppContext ctx(4);
    auto left = DistributedTable::Distribute(*left_local, 4,
                                             Distribution::Hash({0}));
    auto right = DistributedTable::Distribute(*right_local, 4,
                                              Distribution::Random());
    MppJoinSpec spec;
    spec.left_keys = {0};
    spec.right_keys = {0};
    spec.type = type;
    auto result = MppHashJoin(&ctx, left, right, spec);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(TablesEqualAsBags(*(*result)->ToLocal(), **expected));
  }
}

TEST_P(MppOpsEquivalenceTest, DistinctAndAggregateMatchSingleNode) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 70);
  auto local = RandomTable(&rng, 150, 6);
  ExecContext ec;
  auto expected_distinct = Distinct(Scan(local), {0, 1})->Execute(&ec);
  auto expected_agg =
      Aggregate(Scan(local), {0}, {{AggKind::kCount, 0, "cnt"}})
          ->Execute(&ec);
  ASSERT_TRUE(expected_distinct.ok());
  ASSERT_TRUE(expected_agg.ok());

  MppContext ctx(6);
  auto dist = DistributedTable::Distribute(*local, 6, Distribution::Random());
  auto distinct = MppDistinct(&ctx, dist, {0, 1}, "distinct");
  ASSERT_TRUE(distinct.ok());
  EXPECT_TRUE(
      TablesEqualAsBags(*(*distinct)->ToLocal(), **expected_distinct));

  auto agg = MppAggregate(&ctx, dist, {0}, {{AggKind::kCount, 0, "cnt"}},
                          nullptr, "agg");
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(TablesEqualAsBags(*(*agg)->ToLocal(), **expected_agg));
}

TEST_P(MppOpsEquivalenceTest, SetUnionMatchesSingleNode) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  auto dst_local = RandomTable(&rng, 60, 8);
  auto src_local = RandomTable(&rng, 60, 8);
  auto expected = dst_local->Clone();
  SetUnionInto(expected.get(), *src_local, {0, 1});

  MppContext ctx(4);
  auto dst = DistributedTable::Distribute(*dst_local, 4,
                                          Distribution::Hash({0}));
  auto src = DistributedTable::Distribute(*src_local, 4,
                                          Distribution::Random());
  auto added = MppSetUnionInto(&ctx, dst.get(), *src, {0, 1});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_TRUE(TablesEqualAsBags(*dst->ToLocal(), *expected));
  EXPECT_TRUE(dst->ValidatePlacement().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MppOpsEquivalenceTest, ::testing::Range(0, 8));

TEST(MppOpsTest, SetUnionRequiresCompatibleDistribution) {
  auto t = MakeTable(AB(), {{1, 2}});
  MppContext ctx(2);
  auto dst = DistributedTable::Distribute(*t, 2, Distribution::Hash({1}));
  auto src = DistributedTable::Distribute(*t, 2, Distribution::Random());
  // Union key {0} does not contain dst's hash key {1}.
  EXPECT_FALSE(MppSetUnionInto(&ctx, dst.get(), *src, {0}).ok());
}

TEST(MppOpsTest, DeleteMatchingMatchesSingleNode) {
  Rng rng(11);
  auto local = RandomTable(&rng, 100, 10);
  auto keys = MakeTable(Schema({{"k", ColumnType::kInt64}}), {{3}, {7}});
  auto expected = local->Clone();
  DeleteMatching(expected.get(), {0}, *keys, {0});

  MppContext ctx(4);
  auto dist = DistributedTable::Distribute(*local, 4,
                                           Distribution::Hash({0}));
  auto keys_dist =
      DistributedTable::Distribute(*keys, 4, Distribution::Random());
  auto deleted = MppDeleteMatching(&ctx, dist.get(), {0}, *keys_dist, {0});
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(TablesEqualAsBags(*dist->ToLocal(), *expected));
}

// --- MppGrounder vs single-node Grounder ---------------------------------------

class MppGrounderEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<MppMode, int>> {};

TEST_P(MppGrounderEquivalenceTest, MatchesSingleNodeOnPaperExample) {
  auto [mode, segments] = GetParam();
  KnowledgeBase kb = testutil::BuildPaperExampleKB();

  RelationalKB rkb_single = BuildRelationalModel(kb);
  Grounder single(&rkb_single, GroundingOptions{});
  ASSERT_TRUE(single.GroundAtoms().ok());
  auto phi_single = single.GroundFactors();
  ASSERT_TRUE(phi_single.ok());

  RelationalKB rkb_mpp = BuildRelationalModel(kb);
  MppGrounder mpp(rkb_mpp, segments, mode, GroundingOptions{});
  ASSERT_TRUE(mpp.GroundAtoms().ok());
  auto phi_mpp = mpp.GroundFactors();
  ASSERT_TRUE(phi_mpp.ok()) << phi_mpp.status();

  TablePtr tpi_mpp = mpp.GatherTPi();
  EXPECT_EQ(testutil::TPiAtomSet(*tpi_mpp),
            testutil::TPiAtomSet(*rkb_single.t_pi));
  EXPECT_EQ(testutil::CanonicalizeFactors(**phi_mpp, *tpi_mpp),
            testutil::CanonicalizeFactors(**phi_single, *rkb_single.t_pi));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSegments, MppGrounderEquivalenceTest,
    ::testing::Combine(::testing::Values(MppMode::kNoViews, MppMode::kViews),
                       ::testing::Values(1, 3, 8)));

TEST(MppGrounderCostTest, ViewsShipFewerTuplesThanNoViews) {
  // ProbKB-p vs ProbKB-pn (Figure 6(c) mechanism): with the materialized
  // views, the second join of each length-3 query redistributes a small
  // intermediate instead of broadcasting it.
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  // Blow the example up a bit so there is actual data volume.
  for (int i = 0; i < 200; ++i) {
    kb.AddFactByName("born_in", "w" + std::to_string(i), "Writer",
                     "c" + std::to_string(i % 20), "City", 0.9);
    kb.AddFactByName("born_in", "w" + std::to_string(i), "Writer",
                     "p" + std::to_string(i % 20), "Place", 0.9);
  }
  RelationalKB rkb1 = BuildRelationalModel(kb);
  MppGrounder with_views(rkb1, 8, MppMode::kViews, GroundingOptions{});
  ASSERT_TRUE(with_views.GroundAtoms().ok());
  ASSERT_TRUE(with_views.GroundFactors().ok());

  RelationalKB rkb2 = BuildRelationalModel(kb);
  MppGrounder no_views(rkb2, 8, MppMode::kNoViews, GroundingOptions{});
  ASSERT_TRUE(no_views.GroundAtoms().ok());
  ASSERT_TRUE(no_views.GroundFactors().ok());

  // Same logical result...
  EXPECT_EQ(testutil::TPiAtomSet(*with_views.GatherTPi()),
            testutil::TPiAtomSet(*no_views.GatherTPi()));
  // ...but the no-views plan broadcasts intermediates.
  int64_t bcast_views = 0, bcast_noviews = 0;
  for (const auto& s : with_views.cost().steps()) {
    if (s.kind == MppStep::Kind::kBroadcast) bcast_views += s.tuples_shipped;
  }
  for (const auto& s : no_views.cost().steps()) {
    if (s.kind == MppStep::Kind::kBroadcast) {
      bcast_noviews += s.tuples_shipped;
    }
  }
  EXPECT_EQ(bcast_views, 0);
  EXPECT_GT(bcast_noviews, 0);
}

TEST(MppGrounderTest, ConstraintApplicationMatchesSingleNode) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  // Add a conflicting born_in City fact so Ruth Gruber violates.
  kb.AddFactByName("born_in", "Ruth Gruber", "Writer", "Chicago", "City",
                   0.5);
  RelationalKB rkb_single = BuildRelationalModel(kb);
  Grounder single(&rkb_single, GroundingOptions{});
  auto deleted_single = single.ApplyConstraints();
  ASSERT_TRUE(deleted_single.ok());

  RelationalKB rkb_mpp = BuildRelationalModel(kb);
  MppGrounder mpp(rkb_mpp, 4, MppMode::kViews, GroundingOptions{});
  auto deleted_mpp = mpp.ApplyConstraints();
  ASSERT_TRUE(deleted_mpp.ok()) << deleted_mpp.status();
  EXPECT_EQ(*deleted_mpp, *deleted_single);
  EXPECT_EQ(testutil::TPiAtomSet(*mpp.GatherTPi()),
            testutil::TPiAtomSet(*rkb_single.t_pi));
}


// Property: MPP and single-node grounders agree on random synthetic KBs
// (both modes), including the factor multiset.
class MppGrounderRandomKbTest : public ::testing::TestWithParam<int> {};

TEST_P(MppGrounderRandomKbTest, MatchesSingleNode) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.002;
  cfg.seed = static_cast<uint64_t>(GetParam()) * 271 + 5;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  GroundingOptions options;
  options.max_iterations = 3;

  RelationalKB rkb_single = BuildRelationalModel(skb->kb);
  Grounder single(&rkb_single, options);
  ASSERT_TRUE(single.GroundAtoms().ok());
  auto phi_single = single.GroundFactors();
  ASSERT_TRUE(phi_single.ok());

  for (MppMode mode : {MppMode::kNoViews, MppMode::kViews}) {
    RelationalKB rkb_mpp = BuildRelationalModel(skb->kb);
    MppGrounder mpp(rkb_mpp, 5, mode, options);
    ASSERT_TRUE(mpp.GroundAtoms().ok());
    auto phi_mpp = mpp.GroundFactors();
    ASSERT_TRUE(phi_mpp.ok());
    TablePtr tpi_mpp = mpp.GatherTPi();
    EXPECT_EQ(testutil::TPiAtomSet(*tpi_mpp),
              testutil::TPiAtomSet(*rkb_single.t_pi));
    EXPECT_EQ(testutil::CanonicalizeFactors(**phi_mpp, *tpi_mpp),
              testutil::CanonicalizeFactors(**phi_single,
                                            *rkb_single.t_pi));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MppGrounderRandomKbTest,
                         ::testing::Range(0, 4));

TEST(MppGrounderTest, InLoopConstraintsMatchSingleNode) {
  // With constraints applied each iteration, the banned-entity sets must
  // behave identically on both engines (convergence + same closure).
  SyntheticKbConfig cfg;
  cfg.scale = 0.004;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  GroundingOptions options;
  options.max_iterations = 6;
  options.apply_constraints_each_iteration = true;

  RelationalKB rkb_single = BuildRelationalModel(skb->kb);
  Grounder single(&rkb_single, options);
  ASSERT_TRUE(single.GroundAtoms().ok());

  RelationalKB rkb_mpp = BuildRelationalModel(skb->kb);
  MppGrounder mpp(rkb_mpp, 4, MppMode::kViews, options);
  ASSERT_TRUE(mpp.GroundAtoms().ok());

  EXPECT_EQ(testutil::TPiAtomSet(*mpp.GatherTPi()),
            testutil::TPiAtomSet(*rkb_single.t_pi));
  EXPECT_EQ(mpp.stats().iterations, single.stats().iterations);
}


TEST(MppCostTest, TraceRendersFigure4Style) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  MppGrounder grounder(rkb, 4, MppMode::kViews, GroundingOptions{});
  auto added = grounder.GroundAtomsIteration();
  ASSERT_TRUE(added.ok());

  const MppCost& cost = grounder.cost();
  EXPECT_FALSE(cost.steps().empty());
  EXPECT_GT(cost.simulated_seconds(), 0.0);
  // Sum of step seconds equals the accumulated simulated time.
  double sum = 0;
  for (const auto& step : cost.steps()) sum += step.seconds;
  EXPECT_NEAR(sum, cost.simulated_seconds(), 1e-12);

  std::string trace = cost.ToString();
  EXPECT_NE(trace.find("Redistribute Motion"), std::string::npos);
  EXPECT_NE(trace.find("Compute"), std::string::npos);
  EXPECT_NE(trace.find("total:"), std::string::npos);
}

TEST(MppGrounderStatsTest, StatementsCountedPerPartition) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  MppGrounder grounder(rkb, 4, MppMode::kViews, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  // Two non-empty partitions x two iterations, same as the single-node
  // grounder (one SQL-equivalent statement per partition per iteration).
  EXPECT_EQ(grounder.stats().statements, 4);
  EXPECT_EQ(grounder.stats().iterations, 2);
  std::string rendered = grounder.stats().ToString();
  EXPECT_NE(rendered.find("2 iterations"), std::string::npos);
}


TEST(MppOpsErrorTest, BroadcastLeftInvalidForSemiJoin) {
  auto t = MakeTable(AB(), {{1, 2}});
  MppContext ctx(2);
  auto left = DistributedTable::Distribute(*t, 2, Distribution::Random());
  auto right = DistributedTable::Distribute(*t, 2, Distribution::Random());
  MppJoinSpec spec;
  spec.left_keys = {0};
  spec.right_keys = {0};
  spec.type = JoinType::kLeftSemi;
  spec.policy = MotionPolicy::kBroadcastLeft;
  EXPECT_FALSE(MppHashJoin(&ctx, left, right, spec).ok());
}

TEST(MppOpsErrorTest, AggregateOverReplicatedRejected) {
  auto t = MakeTable(AB(), {{1, 2}});
  MppContext ctx(2);
  auto dist = DistributedTable::Distribute(*t, 2, Distribution::Replicated());
  EXPECT_FALSE(MppAggregate(&ctx, dist, {0}, {{AggKind::kCount, 0, "c"}},
                            nullptr, "agg")
                   .ok());
}

TEST(MppOpsErrorTest, RedistributeKeyOutOfRange) {
  auto t = MakeTable(AB(), {{1, 2}});
  MppContext ctx(2);
  auto dist = DistributedTable::Distribute(*t, 2, Distribution::Random());
  EXPECT_FALSE(ctx.Redistribute(*dist, {5}).ok());
}

TEST(MppOpsTest, JoinOfReplicatedInputsStaysReplicated) {
  auto left = MakeTable(AB(), {{1, 10}, {2, 20}});
  auto right = MakeTable(AB(), {{1, 100}});
  MppContext ctx(3);
  auto dl = DistributedTable::Distribute(*left, 3, Distribution::Replicated());
  auto dr = DistributedTable::Distribute(*right, 3,
                                         Distribution::Replicated());
  MppJoinSpec spec;
  spec.left_keys = {0};
  spec.right_keys = {0};
  spec.type = JoinType::kInner;
  spec.output_cols = {JoinOutputCol::Left(1, "lb"),
                      JoinOutputCol::Right(1, "rb")};
  auto result = MppHashJoin(&ctx, dl, dr, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)->distribution().is_replicated());
  EXPECT_EQ((*result)->NumRows(), 1);  // logical count, not x3
  EXPECT_EQ(ctx.cost().tuples_shipped(), 0);
}

}  // namespace
}  // namespace probkb
