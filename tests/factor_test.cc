#include "factor/factor_graph.h"

#include <gtest/gtest.h>

#include "grounding/grounder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

/// Builds the paper-example factor graph (Figure 2): 5 atoms, 8 factors.
class PaperFactorGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kb_ = testutil::BuildPaperExampleKB();
    rkb_ = BuildRelationalModel(kb_);
    Grounder grounder(&rkb_, GroundingOptions{});
    ASSERT_TRUE(grounder.GroundAtoms().ok());
    auto phi = grounder.GroundFactors();
    ASSERT_TRUE(phi.ok());
    t_phi_ = *phi;
    auto graph = FactorGraph::FromTables(*rkb_.t_pi, *t_phi_);
    ASSERT_TRUE(graph.ok()) << graph.status();
    graph_ = std::make_unique<FactorGraph>(std::move(*graph));
  }

  KnowledgeBase kb_;
  RelationalKB rkb_;
  TablePtr t_phi_;
  std::unique_ptr<FactorGraph> graph_;
};

TEST_F(PaperFactorGraphTest, ShapeMatchesFigure2) {
  EXPECT_EQ(graph_->num_variables(), 7);  // 2 base + 5 inferred
  EXPECT_EQ(graph_->num_factors(), 8);
}

TEST_F(PaperFactorGraphTest, FactorSemantics) {
  // Find the singleton factor for born_in(RG, NYC) (weight 0.96).
  const GroundFactor* singleton = nullptr;
  const GroundFactor* rule_factor = nullptr;
  for (const auto& f : graph_->factors()) {
    if (f.body1 < 0 && std::abs(f.weight - 0.96) < 1e-9) singleton = &f;
    if (f.body2 >= 0 && std::abs(f.weight - 0.52) < 1e-9) rule_factor = &f;
  }
  ASSERT_NE(singleton, nullptr);
  ASSERT_NE(rule_factor, nullptr);

  std::vector<uint8_t> all_false(7, 0), all_true(7, 1);
  // Singleton: e^w when the atom holds, 1 otherwise.
  EXPECT_DOUBLE_EQ(singleton->LogValue(all_false), 0.0);
  EXPECT_DOUBLE_EQ(singleton->LogValue(all_true), 0.96);
  // Horn factor: violated only when the body holds and the head does not.
  EXPECT_DOUBLE_EQ(rule_factor->LogValue(all_true), 0.52);
  EXPECT_DOUBLE_EQ(rule_factor->LogValue(all_false), 0.52);
  std::vector<uint8_t> violated(7, 1);
  violated[static_cast<size_t>(rule_factor->head)] = 0;
  EXPECT_DOUBLE_EQ(rule_factor->LogValue(violated), 0.0);
}

TEST_F(PaperFactorGraphTest, LogScoreSumsSatisfiedWeights) {
  std::vector<uint8_t> all_true(7, 1);
  double expected = 0;
  for (const auto& f : graph_->factors()) expected += f.weight;
  EXPECT_NEAR(graph_->LogScore(all_true), expected, 1e-9);
}

TEST_F(PaperFactorGraphTest, VariableFactorAdjacency) {
  for (int32_t v = 0; v < graph_->num_variables(); ++v) {
    for (int32_t fi : graph_->FactorsOf(v)) {
      const auto& f = graph_->factors()[static_cast<size_t>(fi)];
      EXPECT_TRUE(f.head == v || f.body1 == v || f.body2 == v);
    }
  }
}

TEST_F(PaperFactorGraphTest, ColoringIsProper) {
  auto colors = graph_->ColorVariables();
  for (const auto& f : graph_->factors()) {
    std::vector<int32_t> vars;
    for (int32_t v : {f.head, f.body1, f.body2}) {
      if (v >= 0) vars.push_back(v);
    }
    for (size_t i = 0; i < vars.size(); ++i) {
      for (size_t j = i + 1; j < vars.size(); ++j) {
        if (vars[i] != vars[j]) {
          EXPECT_NE(colors[static_cast<size_t>(vars[i])],
                    colors[static_cast<size_t>(vars[j])]);
        }
      }
    }
  }
}

TEST_F(PaperFactorGraphTest, LineageOfLocatedIn) {
  // located_in(Brooklyn, NYC) has two derivations (born_in pair, live_in
  // pair), and the live_in atoms trace back to born_in.
  RelationId located = kb_.relations().Lookup("located_in");
  int32_t v = -1;
  for (int64_t i = 0; i < rkb_.t_pi->NumRows(); ++i) {
    if (rkb_.t_pi->row(i)[tpi::kR].i64() == located) {
      v = graph_->VariableOf(rkb_.t_pi->row(i)[tpi::kI].i64());
    }
  }
  ASSERT_GE(v, 0);
  EXPECT_EQ(graph_->DerivationsOf(v).size(), 2u);

  auto describe = [&](FactId id) {
    for (int64_t i = 0; i < rkb_.t_pi->NumRows(); ++i) {
      if (rkb_.t_pi->row(i)[tpi::kI].i64() == id) {
        return kb_.FactToString(FactFromRow(rkb_.t_pi->row(i)));
      }
    }
    return std::string("?");
  };
  std::string lineage = graph_->ExplainLineage(v, 4, describe);
  EXPECT_NE(lineage.find("located_in"), std::string::npos);
  EXPECT_NE(lineage.find("live_in"), std::string::npos);
  EXPECT_NE(lineage.find("born_in"), std::string::npos);
}

TEST(FactorGraphTest, RejectsUnknownFactIds) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, 0.5});
  auto t_phi = Table::Make(TPhiSchema());
  t_phi->AppendRow({Value::Int64(99), Value::Null(), Value::Null(),
                    Value::Float64(1.0)});
  EXPECT_FALSE(FactorGraph::FromTables(*t_pi, *t_phi).ok());
}

TEST(FactorGraphTest, RejectsDuplicateFactIds) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, 0.5});
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 6, 0.5});
  Table t_phi(TPhiSchema());
  EXPECT_FALSE(FactorGraph::FromTables(*t_pi, t_phi).ok());
}

TEST(FactorGraphTest, RejectsI3WithoutI2) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, 0.5});
  auto t_phi = Table::Make(TPhiSchema());
  t_phi->AppendRow({Value::Int64(0), Value::Null(), Value::Int64(0),
                    Value::Float64(1.0)});
  EXPECT_FALSE(FactorGraph::FromTables(*t_pi, *t_phi).ok());
}

}  // namespace
}  // namespace probkb
