#include "infer/map_inference.h"

#include <gtest/gtest.h>

#include "grounding/grounder.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

FactorGraph GraphFromPhi(TablePtr t_pi, TablePtr t_phi) {
  auto graph = FactorGraph::FromTables(*t_pi, *t_phi);
  EXPECT_TRUE(graph.ok());
  return std::move(*graph);
}

TEST(ExactMapTest, SingleVariable) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, 2.0});
  auto t_phi = Table::Make(TPhiSchema());
  t_phi->AppendRow({Value::Int64(0), Value::Null(), Value::Null(),
                    Value::Float64(2.0)});
  FactorGraph g = GraphFromPhi(t_pi, t_phi);
  auto map = ExactMap(g);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->assignment[0], 1);  // positive weight favors true
  EXPECT_DOUBLE_EQ(map->log_score, 2.0);

  // Negative weight flips the preference.
  auto t_phi2 = Table::Make(TPhiSchema());
  t_phi2->AppendRow({Value::Int64(0), Value::Null(), Value::Null(),
                     Value::Float64(-2.0)});
  FactorGraph g2 = GraphFromPhi(t_pi, t_phi2);
  auto map2 = ExactMap(g2);
  ASSERT_TRUE(map2.ok());
  EXPECT_EQ(map2->assignment[0], 0);
  EXPECT_DOUBLE_EQ(map2->log_score, 0.0);
}

TEST(ExactMapTest, RefusesLargeGraphs) {
  auto t_pi = Table::Make(TPiSchema());
  for (int i = 0; i < 25; ++i) {
    AppendFactRow(t_pi.get(), i, {1, i, 3, i + 100, 5, 0.5});
  }
  Table t_phi(TPhiSchema());
  FactorGraph g = GraphFromPhi(t_pi, Table::Make(TPhiSchema()));
  EXPECT_FALSE(ExactMap(g, 20).ok());
}

TEST(MapOptionsTest, Validation) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, 1.0});
  FactorGraph g = GraphFromPhi(t_pi, Table::Make(TPhiSchema()));
  IcmOptions icm;
  icm.restarts = 0;
  EXPECT_FALSE(IcmMap(g, icm).ok());
  MaxWalkSatOptions mws;
  mws.max_tries = 0;
  EXPECT_FALSE(MaxWalkSatMap(g, mws).ok());
}

TEST(MaxWalkSatTest, RejectsNegativeWeights) {
  auto t_pi = Table::Make(TPiSchema());
  AppendFactRow(t_pi.get(), 0, {1, 2, 3, 4, 5, 1.0});
  auto t_phi = Table::Make(TPhiSchema());
  t_phi->AppendRow({Value::Int64(0), Value::Null(), Value::Null(),
                    Value::Float64(-1.0)});
  FactorGraph g = GraphFromPhi(t_pi, t_phi);
  EXPECT_FALSE(MaxWalkSatMap(g).ok());
}

TEST(MapTest, PaperExampleAllTrueIsMap) {
  // All weights are positive and the factors are Horn clauses, so the
  // all-true world satisfies every clause — it must be a MAP world.
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  ASSERT_TRUE(grounder.GroundAtoms().ok());
  auto phi = grounder.GroundFactors();
  ASSERT_TRUE(phi.ok());
  FactorGraph g = GraphFromPhi(rkb.t_pi, *phi);

  auto exact = ExactMap(g);
  ASSERT_TRUE(exact.ok());
  double total_weight = 0;
  for (const auto& f : g.factors()) total_weight += f.weight;
  EXPECT_DOUBLE_EQ(exact->log_score, total_weight);

  auto icm = IcmMap(g);
  ASSERT_TRUE(icm.ok());
  EXPECT_DOUBLE_EQ(icm->log_score, exact->log_score);
  auto mws = MaxWalkSatMap(g);
  ASSERT_TRUE(mws.ok());
  EXPECT_DOUBLE_EQ(mws->log_score, exact->log_score);
}

// Property: local search reaches the exact MAP score on random small Horn
// graphs (restarts make this reliable at n = 8).
class MapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MapPropertyTest, LocalSearchMatchesExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 900);
  const int n = 8;
  auto t_pi = Table::Make(TPiSchema());
  for (int i = 0; i < n; ++i) {
    AppendFactRow(t_pi.get(), i, {1, i, 3, i + 100, 5, 0.5});
  }
  auto t_phi = Table::Make(TPhiSchema());
  for (int i = 0; i < n; i += 2) {
    t_phi->AppendRow({Value::Int64(i), Value::Null(), Value::Null(),
                      Value::Float64(rng.UniformDouble(0.0, 2.0))});
  }
  for (int i = 0; i < 8; ++i) {
    int head = static_cast<int>(rng.Uniform(n));
    int b1 = static_cast<int>(rng.Uniform(n));
    int b2 = static_cast<int>(rng.Uniform(n));
    if (head == b1 || head == b2 || b1 == b2) continue;
    t_phi->AppendRow({Value::Int64(head), Value::Int64(b1),
                      rng.Bernoulli(0.5) ? Value::Int64(b2) : Value::Null(),
                      Value::Float64(rng.UniformDouble(0.1, 2.0))});
  }
  FactorGraph g = GraphFromPhi(t_pi, t_phi);

  auto exact = ExactMap(g);
  ASSERT_TRUE(exact.ok());
  IcmOptions icm_options;
  icm_options.restarts = 16;
  icm_options.seed = static_cast<uint64_t>(GetParam());
  auto icm = IcmMap(g, icm_options);
  ASSERT_TRUE(icm.ok());
  EXPECT_NEAR(icm->log_score, exact->log_score, 1e-9);

  MaxWalkSatOptions mws_options;
  mws_options.seed = static_cast<uint64_t>(GetParam());
  auto mws = MaxWalkSatMap(g, mws_options);
  ASSERT_TRUE(mws.ok());
  EXPECT_NEAR(mws->log_score, exact->log_score, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace probkb
