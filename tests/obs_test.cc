// StatsRegistry unit tests: post-order tree reconstruction, per-label
// aggregation, motion/partition merging, JSON shape, Chrome-trace export,
// and the ExecContext stats-sink plumbing on a real plan.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/exec_context.h"
#include "engine/ops.h"
#include "engine/plan.h"
#include "obs/stats_registry.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

OpRecord MakeOp(const std::string& label, int64_t rows_in, int64_t rows_out,
                int num_children) {
  OpRecord op;
  op.label = label;
  op.rows_in = rows_in;
  op.rows_out = rows_out;
  op.seconds = 0.001;
  op.num_children = num_children;
  return op;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(StatsRegistryTest, PostOrderRecordsRebuildThePlanTree) {
  StatsRegistry registry;
  // Post-order for: Join(Scan A, Scan B), as the engine emits it.
  registry.RecordOp("q", MakeOp("Scan A", 10, 10, 0));
  registry.RecordOp("q", MakeOp("Scan B", 5, 5, 0));
  registry.RecordOp("q", MakeOp("Join", 15, 7, 2));

  const std::string text = registry.ToText();
  // Parent first, children indented beneath it.
  const size_t join = text.find("Join  rows_in=15 rows_out=7");
  const size_t a = text.find("Scan A  rows_in=10");
  const size_t b = text.find("Scan B  rows_in=5");
  ASSERT_NE(join, std::string::npos) << text;
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(join, a);
  EXPECT_LT(a, b);

  ASSERT_EQ(registry.statements().size(), 1u);
  EXPECT_EQ(registry.statements()[0].scope, "q");
  ASSERT_EQ(registry.statements()[0].ops.size(), 3u);
  EXPECT_EQ(registry.statements()[0].ops[2].num_children, 2);
}

TEST(StatsRegistryTest, SameScopeTwiceRendersAForest) {
  // Semi-naive evaluation runs a partition twice per iteration; both plan
  // trees land in the same statement scope and must both render.
  StatsRegistry registry;
  registry.RecordOp("iter1/M1", MakeOp("Scan d", 2, 2, 0));
  registry.RecordOp("iter1/M1", MakeOp("Pass1", 2, 1, 1));
  registry.RecordOp("iter1/M1", MakeOp("Scan f", 3, 3, 0));
  registry.RecordOp("iter1/M1", MakeOp("Pass2", 3, 2, 1));

  ASSERT_EQ(registry.statements().size(), 1u);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("Pass1"), std::string::npos);
  EXPECT_NE(text.find("Pass2"), std::string::npos);
  // Both roots at the same indentation depth.
  EXPECT_NE(text.find("\n    Pass1"), std::string::npos) << text;
  EXPECT_NE(text.find("\n    Pass2"), std::string::npos) << text;
}

TEST(StatsRegistryTest, OpTotalsAggregateAcrossStatements) {
  StatsRegistry registry;
  registry.RecordOp("s1", MakeOp("Scan T", 4, 4, 0));
  registry.RecordOp("s2", MakeOp("Scan T", 6, 6, 0));
  ASSERT_EQ(registry.op_totals().size(), 1u);
  EXPECT_EQ(registry.op_totals()[0].label, "Scan T");
  EXPECT_EQ(registry.op_totals()[0].invocations, 2);
  EXPECT_EQ(registry.op_totals()[0].rows_in, 10);
  EXPECT_EQ(registry.statements().size(), 2u);
}

TEST(StatsRegistryTest, PartitionCellsAccumulateBothSemiNaivePasses) {
  StatsRegistry registry;
  registry.RecordPartitionIteration(1, 3, 10, 0.5);
  registry.RecordPartitionIteration(1, 3, 4, 0.25);  // second pass
  registry.RecordPartitionIteration(2, 3, 1, 0.125);
  ASSERT_EQ(registry.partition_iterations().size(), 2u);
  const PartitionIterStats& cell = registry.partition_iterations()[0];
  EXPECT_EQ(cell.iteration, 1);
  EXPECT_EQ(cell.partition, 3);
  EXPECT_EQ(cell.delta_rows, 14);
  EXPECT_DOUBLE_EQ(cell.join_seconds, 0.75);
  EXPECT_EQ(cell.statements, 2);
}

TEST(StatsRegistryTest, MotionsMergeByKindAndTrackWorstSkew) {
  StatsRegistry registry;
  // Balanced first, then a skewed one; the label keeps the worst skew.
  registry.RecordMotion("delta", "redistribute", 8, 64, 0.1, {2, 2, 2, 2});
  registry.RecordMotion("delta", "redistribute", 8, 64, 0.1, {8, 0, 0, 0});
  registry.RecordMotion("delta", "gather", 3, 24, 0.05, {});
  ASSERT_EQ(registry.motion_totals().size(), 2u);  // split by kind
  const MotionTotals& redist = registry.motion_totals()[0];
  EXPECT_EQ(redist.kind, "redistribute");
  EXPECT_EQ(redist.count, 2);
  EXPECT_EQ(redist.tuples_shipped, 16);
  EXPECT_EQ(redist.bytes_shipped, 128);
  EXPECT_DOUBLE_EQ(redist.max_skew, 4.0);  // 8 / mean(2)
  EXPECT_EQ(redist.max_segment_tuples, 8);
}

TEST(StatsRegistryTest, ComputeSkewIsMaxOverMeanSegmentSeconds) {
  StatsRegistry registry;
  // max 0.4s, total work 0.8s over 4 segments -> mean 0.2s -> skew 2.0.
  registry.RecordCompute("Query1-1 probe", 0.4, 0.8, 4);
  ASSERT_EQ(registry.compute_totals().size(), 1u);
  EXPECT_DOUBLE_EQ(registry.compute_totals()[0].max_skew, 2.0);
}

TEST(StatsRegistryTest, GibbsSamplesPerSecCountsVariableUpdates) {
  StatsRegistry registry;
  registry.RecordGibbsChain(0, 100, 50, 2.0);
  ASSERT_EQ(registry.gibbs_chains().size(), 1u);
  EXPECT_DOUBLE_EQ(registry.gibbs_chains()[0].samples_per_sec, 2500.0);
  registry.RecordGibbsChain(1, 100, 50, 0.0);  // too fast to time
  EXPECT_DOUBLE_EQ(registry.gibbs_chains()[1].samples_per_sec, 0.0);
}

TEST(StatsRegistryTest, WorkersSnapshotOverwritesNotAppends) {
  StatsRegistry registry;
  registry.RecordWorkers({{0, 1, 0, 0.1, 0.9}});
  registry.RecordWorkers({{0, 5, 2, 0.5, 0.5}, {1, 3, 1, 0.2, 0.8}});
  ASSERT_EQ(registry.workers().size(), 2u);
  EXPECT_EQ(registry.workers()[0].tasks_run, 5);
}

TEST(StatsRegistryTest, JsonCarriesEverySectionAndEscapes) {
  StatsRegistry registry;
  registry.RecordOp("scope \"x\"", MakeOp("Filter (w IS NOT NULL)", 3, 1, 0));
  registry.RecordPartitionIteration(1, 2, 5, 0.01);
  registry.RecordMotion("m", "broadcast", 7, 56, 0.02, {7, 7});
  registry.RecordCompute("c", 0.1, 0.2, 2);
  registry.RecordWorkers({{0, 4, 1, 0.3, 0.7}});
  registry.RecordGibbsChain(0, 10, 3, 0.5);
  const std::string json = registry.ToJson();
  for (const char* key :
       {"\"statements\"", "\"operators\"", "\"partitions\"", "\"motions\"",
        "\"compute\"", "\"workers\"", "\"gibbs_chains\"",
        "\"num_children\"", "\"tuples_shipped\"", "\"delta_rows\"",
        "\"samples_per_sec\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // The quote inside the scope must arrive escaped.
  EXPECT_NE(json.find("scope \\\"x\\\""), std::string::npos) << json;
  EXPECT_EQ(json.find("scope \"x\""), std::string::npos);
}

TEST(StatsRegistryTest, TraceEnvTogglesChromeTraceExport) {
  const std::string path =
      ::testing::TempDir() + "/probkb_obs_trace_test.json";
  std::filesystem::remove(path);
  setenv("PROBKB_TRACE", path.c_str(), 1);
  {
    StatsRegistry registry;
    ASSERT_TRUE(registry.trace_enabled());
    EXPECT_EQ(registry.trace_path(), path);
    registry.RecordOp("q", MakeOp("Scan T", 2, 2, 0));
    registry.RecordMotion("m", "gather", 4, 32, 0.01, {});
    ASSERT_TRUE(registry.WriteTraceIfEnabled().ok());
  }
  unsetenv("PROBKB_TRACE");
  const std::string trace = ReadFileOrDie(path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("Scan T"), std::string::npos);

  // Without the env var, tracing is off and the write is a no-op.
  StatsRegistry off;
  EXPECT_FALSE(off.trace_enabled());
  EXPECT_TRUE(off.WriteTraceIfEnabled().ok());
}

// --- ExecContext sink plumbing -------------------------------------------------

TEST(StatsSinkTest, HashJoinPlanReportsRowsAndBuildProbeSplit) {
  auto left = Table::Make(
      Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}));
  auto right = Table::Make(
      Schema({{"k", ColumnType::kInt64}, {"w", ColumnType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) {
    left->AppendRow({Value::Int64(i % 10), Value::Int64(i)});
  }
  for (int64_t i = 0; i < 50; ++i) {
    right->AppendRow({Value::Int64(i % 10), Value::Int64(i)});
  }

  StatsRegistry registry;
  ExecContext ctx;
  ctx.set_stats_sink(&registry, "join_test");
  auto plan = HashJoin(Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
                       {JoinOutputCol::Left(0, "k"),
                        JoinOutputCol::Left(1, "v"),
                        JoinOutputCol::Right(1, "w")});
  auto out = plan->Execute(&ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->NumRows(), 500);  // 10 keys x 10 left x 5 right

  ASSERT_EQ(registry.statements().size(), 1u);
  const std::vector<OpRecord>& ops = registry.statements()[0].ops;
  ASSERT_EQ(ops.size(), 3u);  // post-order: scan, scan, join
  EXPECT_EQ(ops[0].num_children, 0);
  EXPECT_EQ(ops[1].num_children, 0);
  const OpRecord& join = ops[2];
  EXPECT_EQ(join.num_children, 2);
  EXPECT_EQ(join.rows_in, 150);  // left + right
  EXPECT_EQ(join.rows_out, 500);
  // Pipeline-edge consistency: parent rows_in == sum of children rows_out.
  EXPECT_EQ(join.rows_in, ops[0].rows_out + ops[1].rows_out);
  EXPECT_GE(join.build_seconds, 0.0);
  EXPECT_GE(join.probe_seconds, 0.0);
  EXPECT_LE(join.build_seconds + join.probe_seconds, join.seconds + 1e-3);

  // The sink observes; it never changes the result.
  ExecContext plain_ctx;
  auto plain = HashJoin(Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
                        {JoinOutputCol::Left(0, "k"),
                         JoinOutputCol::Left(1, "v"),
                         JoinOutputCol::Right(1, "w")})
                   ->Execute(&plain_ctx);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(TablesEqualExact(**out, **plain));
}

TEST(StatsSinkTest, DistinctReportsPreSizedBuildAsRehashFree) {
  auto t = Table::Make(Schema({{"a", ColumnType::kInt64}}));
  for (int64_t i = 0; i < 10000; ++i) {
    t->AppendRow({Value::Int64(i)});
  }
  StatsRegistry registry;
  ExecContext ctx;
  ctx.set_stats_sink(&registry, "distinct_test");
  auto out = Distinct(Scan(t))->Execute(&ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->NumRows(), 10000);
  const std::vector<OpRecord>& ops = registry.statements()[0].ops;
  const OpRecord& distinct = ops.back();
  EXPECT_EQ(distinct.rows_in, 10000);
  EXPECT_EQ(distinct.num_children, 1);
  // Distinct pre-sizes its dedup index for the input row count, so the
  // reported counter must show a rehash-free build (the counter itself is
  // exercised by the FlatRowIndex unit tests).
  EXPECT_EQ(distinct.rehashes, 0);
}

}  // namespace
}  // namespace probkb
