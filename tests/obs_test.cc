// StatsRegistry unit tests: post-order tree reconstruction, per-label
// aggregation, motion/partition merging, JSON shape, Chrome-trace export,
// and the ExecContext stats-sink plumbing on a real plan.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/exec_context.h"
#include "engine/ops.h"
#include "engine/plan.h"
#include "obs/bench_baseline.h"
#include "obs/histogram.h"
#include "obs/stats_registry.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

OpRecord MakeOp(const std::string& label, int64_t rows_in, int64_t rows_out,
                int num_children) {
  OpRecord op;
  op.label = label;
  op.rows_in = rows_in;
  op.rows_out = rows_out;
  op.seconds = 0.001;
  op.num_children = num_children;
  return op;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(StatsRegistryTest, PostOrderRecordsRebuildThePlanTree) {
  StatsRegistry registry;
  // Post-order for: Join(Scan A, Scan B), as the engine emits it.
  registry.RecordOp("q", MakeOp("Scan A", 10, 10, 0));
  registry.RecordOp("q", MakeOp("Scan B", 5, 5, 0));
  registry.RecordOp("q", MakeOp("Join", 15, 7, 2));

  const std::string text = registry.ToText();
  // Parent first, children indented beneath it.
  const size_t join = text.find("Join  rows_in=15 rows_out=7");
  const size_t a = text.find("Scan A  rows_in=10");
  const size_t b = text.find("Scan B  rows_in=5");
  ASSERT_NE(join, std::string::npos) << text;
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(join, a);
  EXPECT_LT(a, b);

  ASSERT_EQ(registry.statements().size(), 1u);
  EXPECT_EQ(registry.statements()[0].scope, "q");
  ASSERT_EQ(registry.statements()[0].ops.size(), 3u);
  EXPECT_EQ(registry.statements()[0].ops[2].num_children, 2);
}

TEST(StatsRegistryTest, SameScopeTwiceRendersAForest) {
  // Semi-naive evaluation runs a partition twice per iteration; both plan
  // trees land in the same statement scope and must both render.
  StatsRegistry registry;
  registry.RecordOp("iter1/M1", MakeOp("Scan d", 2, 2, 0));
  registry.RecordOp("iter1/M1", MakeOp("Pass1", 2, 1, 1));
  registry.RecordOp("iter1/M1", MakeOp("Scan f", 3, 3, 0));
  registry.RecordOp("iter1/M1", MakeOp("Pass2", 3, 2, 1));

  ASSERT_EQ(registry.statements().size(), 1u);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("Pass1"), std::string::npos);
  EXPECT_NE(text.find("Pass2"), std::string::npos);
  // Both roots at the same indentation depth.
  EXPECT_NE(text.find("\n    Pass1"), std::string::npos) << text;
  EXPECT_NE(text.find("\n    Pass2"), std::string::npos) << text;
}

TEST(StatsRegistryTest, OpTotalsAggregateAcrossStatements) {
  StatsRegistry registry;
  registry.RecordOp("s1", MakeOp("Scan T", 4, 4, 0));
  registry.RecordOp("s2", MakeOp("Scan T", 6, 6, 0));
  ASSERT_EQ(registry.op_totals().size(), 1u);
  EXPECT_EQ(registry.op_totals()[0].label, "Scan T");
  EXPECT_EQ(registry.op_totals()[0].invocations, 2);
  EXPECT_EQ(registry.op_totals()[0].rows_in, 10);
  EXPECT_EQ(registry.statements().size(), 2u);
}

TEST(StatsRegistryTest, PartitionCellsAccumulateBothSemiNaivePasses) {
  StatsRegistry registry;
  registry.RecordPartitionIteration(1, 3, 10, 0.5);
  registry.RecordPartitionIteration(1, 3, 4, 0.25);  // second pass
  registry.RecordPartitionIteration(2, 3, 1, 0.125);
  ASSERT_EQ(registry.partition_iterations().size(), 2u);
  const PartitionIterStats& cell = registry.partition_iterations()[0];
  EXPECT_EQ(cell.iteration, 1);
  EXPECT_EQ(cell.partition, 3);
  EXPECT_EQ(cell.delta_rows, 14);
  EXPECT_DOUBLE_EQ(cell.join_seconds, 0.75);
  EXPECT_EQ(cell.statements, 2);
}

TEST(StatsRegistryTest, MotionsMergeByKindAndTrackWorstSkew) {
  StatsRegistry registry;
  // Balanced first, then a skewed one; the label keeps the worst skew.
  registry.RecordMotion("delta", "redistribute", 8, 64, 0.1, {2, 2, 2, 2});
  registry.RecordMotion("delta", "redistribute", 8, 64, 0.1, {8, 0, 0, 0});
  registry.RecordMotion("delta", "gather", 3, 24, 0.05, {});
  ASSERT_EQ(registry.motion_totals().size(), 2u);  // split by kind
  const MotionTotals& redist = registry.motion_totals()[0];
  EXPECT_EQ(redist.kind, "redistribute");
  EXPECT_EQ(redist.count, 2);
  EXPECT_EQ(redist.tuples_shipped, 16);
  EXPECT_EQ(redist.bytes_shipped, 128);
  EXPECT_DOUBLE_EQ(redist.max_skew, 4.0);  // 8 / mean(2)
  EXPECT_EQ(redist.max_segment_tuples, 8);
}

TEST(StatsRegistryTest, ComputeSkewIsMaxOverMeanSegmentSeconds) {
  StatsRegistry registry;
  // max 0.4s, total work 0.8s over 4 segments -> mean 0.2s -> skew 2.0.
  registry.RecordCompute("Query1-1 probe", 0.4, 0.8, 4);
  ASSERT_EQ(registry.compute_totals().size(), 1u);
  EXPECT_DOUBLE_EQ(registry.compute_totals()[0].max_skew, 2.0);
}

TEST(StatsRegistryTest, GibbsSamplesPerSecCountsVariableUpdates) {
  StatsRegistry registry;
  registry.RecordGibbsChain(0, 100, 50, 2.0);
  ASSERT_EQ(registry.gibbs_chains().size(), 1u);
  EXPECT_DOUBLE_EQ(registry.gibbs_chains()[0].samples_per_sec, 2500.0);
  registry.RecordGibbsChain(1, 100, 50, 0.0);  // too fast to time
  EXPECT_DOUBLE_EQ(registry.gibbs_chains()[1].samples_per_sec, 0.0);
}

TEST(StatsRegistryTest, WorkersSnapshotOverwritesNotAppends) {
  StatsRegistry registry;
  registry.RecordWorkers({{0, 1, 0, 0.1, 0.9}});
  registry.RecordWorkers({{0, 5, 2, 0.5, 0.5}, {1, 3, 1, 0.2, 0.8}});
  ASSERT_EQ(registry.workers().size(), 2u);
  EXPECT_EQ(registry.workers()[0].tasks_run, 5);
}

TEST(StatsRegistryTest, JsonCarriesEverySectionAndEscapes) {
  StatsRegistry registry;
  registry.RecordOp("scope \"x\"", MakeOp("Filter (w IS NOT NULL)", 3, 1, 0));
  registry.RecordPartitionIteration(1, 2, 5, 0.01);
  registry.RecordMotion("m", "broadcast", 7, 56, 0.02, {7, 7});
  registry.RecordCompute("c", 0.1, 0.2, 2);
  registry.RecordWorkers({{0, 4, 1, 0.3, 0.7}});
  registry.RecordGibbsChain(0, 10, 3, 0.5);
  const std::string json = registry.ToJson();
  for (const char* key :
       {"\"statements\"", "\"operators\"", "\"partitions\"", "\"motions\"",
        "\"compute\"", "\"workers\"", "\"gibbs_chains\"",
        "\"num_children\"", "\"tuples_shipped\"", "\"delta_rows\"",
        "\"samples_per_sec\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // The quote inside the scope must arrive escaped.
  EXPECT_NE(json.find("scope \\\"x\\\""), std::string::npos) << json;
  EXPECT_EQ(json.find("scope \"x\""), std::string::npos);
}

TEST(StatsRegistryTest, TraceEnvTogglesChromeTraceExport) {
  const std::string path =
      ::testing::TempDir() + "/probkb_obs_trace_test.json";
  std::filesystem::remove(path);
  setenv("PROBKB_TRACE", path.c_str(), 1);
  {
    StatsRegistry registry;
    ASSERT_TRUE(registry.trace_enabled());
    EXPECT_EQ(registry.trace_path(), path);
    registry.RecordOp("q", MakeOp("Scan T", 2, 2, 0));
    registry.RecordMotion("m", "gather", 4, 32, 0.01, {});
    ASSERT_TRUE(registry.WriteTraceIfEnabled().ok());
  }
  unsetenv("PROBKB_TRACE");
  const std::string trace = ReadFileOrDie(path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("Scan T"), std::string::npos);

  // Without the env var, tracing is off and the write is a no-op.
  StatsRegistry off;
  EXPECT_FALSE(off.trace_enabled());
  EXPECT_TRUE(off.WriteTraceIfEnabled().ok());
}

// --- ExecContext sink plumbing -------------------------------------------------

TEST(StatsSinkTest, HashJoinPlanReportsRowsAndBuildProbeSplit) {
  auto left = Table::Make(
      Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}));
  auto right = Table::Make(
      Schema({{"k", ColumnType::kInt64}, {"w", ColumnType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) {
    left->AppendRow({Value::Int64(i % 10), Value::Int64(i)});
  }
  for (int64_t i = 0; i < 50; ++i) {
    right->AppendRow({Value::Int64(i % 10), Value::Int64(i)});
  }

  StatsRegistry registry;
  ExecContext ctx;
  ctx.set_stats_sink(&registry, "join_test");
  auto plan = HashJoin(Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
                       {JoinOutputCol::Left(0, "k"),
                        JoinOutputCol::Left(1, "v"),
                        JoinOutputCol::Right(1, "w")});
  auto out = plan->Execute(&ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->NumRows(), 500);  // 10 keys x 10 left x 5 right

  ASSERT_EQ(registry.statements().size(), 1u);
  const std::vector<OpRecord>& ops = registry.statements()[0].ops;
  ASSERT_EQ(ops.size(), 3u);  // post-order: scan, scan, join
  EXPECT_EQ(ops[0].num_children, 0);
  EXPECT_EQ(ops[1].num_children, 0);
  const OpRecord& join = ops[2];
  EXPECT_EQ(join.num_children, 2);
  EXPECT_EQ(join.rows_in, 150);  // left + right
  EXPECT_EQ(join.rows_out, 500);
  // Pipeline-edge consistency: parent rows_in == sum of children rows_out.
  EXPECT_EQ(join.rows_in, ops[0].rows_out + ops[1].rows_out);
  EXPECT_GE(join.build_seconds, 0.0);
  EXPECT_GE(join.probe_seconds, 0.0);
  EXPECT_LE(join.build_seconds + join.probe_seconds, join.seconds + 1e-3);

  // The sink observes; it never changes the result.
  ExecContext plain_ctx;
  auto plain = HashJoin(Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
                        {JoinOutputCol::Left(0, "k"),
                         JoinOutputCol::Left(1, "v"),
                         JoinOutputCol::Right(1, "w")})
                   ->Execute(&plain_ctx);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(TablesEqualExact(**out, **plain));
}

TEST(StatsSinkTest, DistinctReportsPreSizedBuildAsRehashFree) {
  auto t = Table::Make(Schema({{"a", ColumnType::kInt64}}));
  for (int64_t i = 0; i < 10000; ++i) {
    t->AppendRow({Value::Int64(i)});
  }
  StatsRegistry registry;
  ExecContext ctx;
  ctx.set_stats_sink(&registry, "distinct_test");
  auto out = Distinct(Scan(t))->Execute(&ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->NumRows(), 10000);
  const std::vector<OpRecord>& ops = registry.statements()[0].ops;
  const OpRecord& distinct = ops.back();
  EXPECT_EQ(distinct.rows_in, 10000);
  EXPECT_EQ(distinct.num_children, 1);
  // Distinct pre-sizes its dedup index for the input row count, so the
  // reported counter must show a rehash-free build (the counter itself is
  // exercised by the FlatRowIndex unit tests).
  EXPECT_EQ(distinct.rehashes, 0);
}

// --- LatencyHistogram ----------------------------------------------------------

TEST(LatencyHistogramTest, EmptyHistogramIsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum_seconds(), 0.0);
  EXPECT_EQ(h.max_seconds(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
  EXPECT_NE(h.Summary().find("n=0"), std::string::npos);
}

TEST(LatencyHistogramTest, PercentilesTrackRecordedDistribution) {
  LatencyHistogram h;
  // 100 samples: 1ms..100ms.
  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.sum_seconds(), 5.050, 1e-9);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.100);

  // Bucket midpoints are within ~6% of the true value (1/16 sub-bucketing)
  // so percentile estimates carry the same tolerance.
  EXPECT_NEAR(h.Percentile(50), 0.050, 0.050 * 0.07);
  EXPECT_NEAR(h.Percentile(95), 0.095, 0.095 * 0.07);
  // The top percentile never exceeds the exactly tracked max.
  EXPECT_LE(h.Percentile(99), h.max_seconds());
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.100);
}

TEST(LatencyHistogramTest, HandlesExtremesWithoutOverflow) {
  LatencyHistogram h;
  h.Record(-1.0);     // clamps to 0
  h.Record(0.0);      // sub-microsecond bucket
  h.Record(1e-7);     // below 1us resolution
  h.Record(7200.0);   // two hours: beyond the top octave, clamped bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 7200.0);
  EXPECT_GE(h.Percentile(99), 0.0);
}

TEST(LatencyHistogramTest, SummaryIsHumanReadable) {
  LatencyHistogram h;
  for (int i = 0; i < 5; ++i) h.Record(0.002);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=5"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("max="), std::string::npos);
}

// --- StatsRegistry latency integration -----------------------------------------

TEST(StatsRegistryTest, NamedLatenciesAppearInTextAndJson) {
  StatsRegistry registry;
  registry.RecordLatency("grounding_iteration", 0.010);
  registry.RecordLatency("grounding_iteration", 0.020);
  registry.RecordLatency("gibbs_sweep", 0.001);

  const LatencyHistogram* grounding =
      registry.FindLatency("grounding_iteration");
  ASSERT_NE(grounding, nullptr);
  EXPECT_EQ(grounding->count(), 2);
  EXPECT_EQ(registry.FindLatency("no_such_metric"), nullptr);
  ASSERT_EQ(registry.latencies().size(), 2u);
  // Registration order is preserved (deterministic reports).
  EXPECT_EQ(registry.latencies()[0].first, "grounding_iteration");
  EXPECT_EQ(registry.latencies()[1].first, "gibbs_sweep");

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("latency histograms:"), std::string::npos);
  EXPECT_NE(text.find("p50_ms"), std::string::npos);
  // The grounding_iteration row reports both samples in the count column.
  const size_t row = text.find("grounding_iteration");
  ASSERT_NE(row, std::string::npos);
  EXPECT_NE(text.find(" 2 ", row), std::string::npos);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"latencies\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"gibbs_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_s\""), std::string::npos);
}

TEST(StatsRegistryTest, OpAndMotionRecordsFeedLatencyHistograms) {
  StatsRegistry registry;
  OpRecord op = MakeOp("HashJoin", 100, 50, 2);
  op.build_seconds = 0.003;
  op.probe_seconds = 0.004;
  registry.RecordOp("q", op);
  registry.RecordMotion("redistribute t_pi", "Redistribute", 100, 800,
                        0.005, {});

  const LatencyHistogram* build = registry.FindLatency("join_build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->count(), 1);
  const LatencyHistogram* probe = registry.FindLatency("join_probe");
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->count(), 1);
  const LatencyHistogram* ship = registry.FindLatency("motion_ship");
  ASSERT_NE(ship, nullptr);
  EXPECT_EQ(ship->count(), 1);
  EXPECT_NEAR(ship->sum_seconds(), 0.005, 1e-9);
}

// --- Bench baseline parsing & comparison ---------------------------------------

/// A miniature but shape-faithful BENCH_parallel.json: top-level scalars,
/// an overhead object, and workloads with nested point arrays plus a
/// "breakdown" subtree that the parser must skip, not choke on.
const char kBenchJson[] = R"({
  "bench": "bench_report",
  "scale": 1,
  "hardware_threads": 8,
  "stats_overhead": {"off_seconds": 1.0, "on_seconds": 1.02,
                     "overhead_pct": 2.0},
  "workloads": [
    {"name": "table3_grounding", "serial_s": 2.0, "points": [
      {"threads": 1, "seconds": 2.0, "speedup": 1.0, "identical": true},
      {"threads": 4, "seconds": 0.6, "speedup": 3.33, "identical": true}
    ],
     "breakdown": {"statements": [{"label": "x", "ops": [1, 2]}],
                   "note": "skipped \"subtree\""}},
    {"name": "fig6c_mpp_views", "serial_s": 3.0, "points": [
      {"threads": 1, "seconds": 3.0, "speedup": 1.0, "identical": true}
    ],
     "breakdown": null}
  ]
})";

TEST(BenchBaselineTest, ParsesRealShapedReport) {
  auto report = ParseBenchReportJson(kBenchJson);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->workloads.size(), 2u);
  const BenchWorkload* w = report->Find("table3_grounding");
  ASSERT_NE(w, nullptr);
  EXPECT_DOUBLE_EQ(w->serial_seconds, 2.0);
  ASSERT_EQ(w->points.size(), 2u);
  EXPECT_EQ(w->points[1].threads, 4);
  EXPECT_DOUBLE_EQ(w->points[1].seconds, 0.6);
  const BenchWorkload* mpp = report->Find("fig6c_mpp_views");
  ASSERT_NE(mpp, nullptr);
  ASSERT_EQ(mpp->points.size(), 1u);
  EXPECT_EQ(report->Find("nope"), nullptr);
}

TEST(BenchBaselineTest, RejectsGarbageAndEmptyReports) {
  EXPECT_FALSE(ParseBenchReportJson("").ok());
  EXPECT_FALSE(ParseBenchReportJson("not json").ok());
  EXPECT_FALSE(ParseBenchReportJson("{\"workloads\": []}").ok());
  EXPECT_FALSE(ParseBenchReportJson("{\"bench\": \"x\"}").ok());
  EXPECT_FALSE(ReadBenchReportFile("/nonexistent/bench.json").ok());
}

BenchReport MakeReport(double t1, double t4) {
  BenchReport report;
  BenchWorkload w;
  w.name = "table3_grounding";
  w.serial_seconds = t1;
  w.points = {{1, t1}, {4, t4}};
  report.workloads.push_back(w);
  return report;
}

TEST(BenchCompareTest, WithinThresholdPasses) {
  BenchComparison cmp = CompareBenchReports(MakeReport(2.0, 0.6),
                                            MakeReport(2.1, 0.63));
  EXPECT_FALSE(cmp.has_regression);
  ASSERT_EQ(cmp.deltas.size(), 2u);
  EXPECT_NEAR(cmp.deltas[0].delta_fraction, 0.05, 1e-9);
  EXPECT_NE(cmp.ToText().find("RESULT: OK"), std::string::npos);
}

TEST(BenchCompareTest, SyntheticTenPercentRegressionFails) {
  // 12% slower on the 4-thread point: over the 10% gate.
  BenchComparison cmp = CompareBenchReports(MakeReport(2.0, 0.6),
                                            MakeReport(2.0, 0.672));
  EXPECT_TRUE(cmp.has_regression);
  int flagged = 0;
  for (const BenchDelta& d : cmp.deltas) {
    if (d.regression) {
      ++flagged;
      EXPECT_EQ(d.threads, 4);
      EXPECT_NEAR(d.delta_fraction, 0.12, 1e-9);
    }
  }
  EXPECT_EQ(flagged, 1);
  EXPECT_NE(cmp.ToText().find("REGRESSION"), std::string::npos);
  EXPECT_NE(cmp.ToJson().find("\"has_regression\": true"),
            std::string::npos);
}

TEST(BenchCompareTest, ThresholdBoundaryIsExclusive) {
  // Exactly at the threshold is allowed; the gate trips strictly above
  // it. Exact binary fractions (2.0 -> 2.25 is +12.5%) keep the boundary
  // comparison free of floating-point noise.
  BenchComparison at = CompareBenchReports(MakeReport(2.0, 0.5),
                                           MakeReport(2.25, 0.5625),
                                           /*threshold=*/0.125);
  EXPECT_FALSE(at.has_regression);
  BenchComparison over = CompareBenchReports(MakeReport(2.0, 0.5),
                                             MakeReport(2.3, 0.5625),
                                             /*threshold=*/0.125);
  EXPECT_TRUE(over.has_regression);
  // A tighter threshold moves the gate.
  BenchComparison strict = CompareBenchReports(
      MakeReport(2.0, 0.5), MakeReport(2.125, 0.5), /*threshold=*/0.04);
  EXPECT_TRUE(strict.has_regression);
}

TEST(BenchCompareTest, MissingCoverageCountsAsRegression) {
  // A workload present in the baseline but absent from the current report
  // means coverage silently shrank — that must fail the gate.
  BenchReport baseline = MakeReport(2.0, 0.6);
  BenchWorkload extra;
  extra.name = "fig6c_mpp_views";
  extra.serial_seconds = 1.0;
  extra.points = {{1, 1.0}};
  baseline.workloads.push_back(extra);

  BenchComparison cmp =
      CompareBenchReports(baseline, MakeReport(2.0, 0.6));
  EXPECT_TRUE(cmp.has_regression);
  bool saw_missing = false;
  for (const BenchDelta& d : cmp.deltas) {
    if (d.missing) {
      saw_missing = true;
      EXPECT_EQ(d.workload, "fig6c_mpp_views");
    }
  }
  EXPECT_TRUE(saw_missing);

  // The reverse (current has extra workloads) is growth, not regression.
  BenchComparison grown =
      CompareBenchReports(MakeReport(2.0, 0.6), baseline);
  EXPECT_FALSE(grown.has_regression);
}

TEST(BenchCompareTest, FasterIsNeverARegression) {
  BenchComparison cmp = CompareBenchReports(MakeReport(2.0, 0.6),
                                            MakeReport(1.0, 0.3));
  EXPECT_FALSE(cmp.has_regression);
  for (const BenchDelta& d : cmp.deltas) {
    EXPECT_LT(d.delta_fraction, 0.0);
  }
}

TEST(BenchCompareTest, ZeroTimingBaselineDoesNotAutoPass) {
  // A corrupt or placeholder baseline of 0.0 seconds used to make the
  // ratio divide by zero; real current timings must still flag, with a
  // finite delta for the report.
  BenchComparison cmp = CompareBenchReports(MakeReport(0.0, 0.0),
                                            MakeReport(0.5, 0.5));
  EXPECT_TRUE(cmp.has_regression);
  for (const BenchDelta& d : cmp.deltas) {
    EXPECT_TRUE(d.regression);
    EXPECT_TRUE(std::isfinite(d.delta_fraction));
  }
}

TEST(BenchCompareTest, NearZeroTimingsPassViaAbsoluteSlack) {
  // Sub-microsecond jitter on a ~zero baseline is measurement noise, not
  // a regression — the relative gate alone would scream at +50000%.
  BenchComparison equal = CompareBenchReports(MakeReport(0.0, 0.0),
                                              MakeReport(0.0, 0.0));
  EXPECT_FALSE(equal.has_regression);
  BenchComparison jitter = CompareBenchReports(MakeReport(0.0, 0.0),
                                               MakeReport(5e-7, 5e-7));
  EXPECT_FALSE(jitter.has_regression);
  for (const BenchDelta& d : jitter.deltas) {
    EXPECT_TRUE(std::isfinite(d.delta_fraction));
  }
}

TEST(BenchCompareTest, AbsentByteFieldsSkipTheGates) {
  // Default-constructed workloads carry the -1 "field absent" sentinel:
  // old reports without peak_rss_bytes/shipped_bytes never gate.
  BenchComparison cmp = CompareBenchReports(MakeReport(2.0, 0.6),
                                            MakeReport(2.0, 0.6));
  EXPECT_TRUE(cmp.memory_deltas.empty());
  EXPECT_TRUE(cmp.shipped_deltas.empty());
  EXPECT_FALSE(cmp.has_regression);
}

TEST(BenchCompareTest, RecordedZeroBytesBaselineStillGates) {
  // A recorded 0 is a real measurement, not absence: traffic or RSS
  // appearing where there was none must fail, with a finite delta
  // (denominator floors at one byte).
  BenchReport baseline = MakeReport(2.0, 0.6);
  baseline.workloads[0].peak_rss_bytes = 0;
  baseline.workloads[0].shipped_bytes = 0;
  BenchReport current = MakeReport(2.0, 0.6);
  current.workloads[0].peak_rss_bytes = 4096;
  current.workloads[0].shipped_bytes = 1024;

  BenchComparison cmp = CompareBenchReports(baseline, current);
  EXPECT_TRUE(cmp.has_regression);
  ASSERT_EQ(cmp.memory_deltas.size(), 1u);
  EXPECT_TRUE(cmp.memory_deltas[0].regression);
  EXPECT_TRUE(std::isfinite(cmp.memory_deltas[0].delta_fraction));
  ASSERT_EQ(cmp.shipped_deltas.size(), 1u);
  EXPECT_TRUE(cmp.shipped_deltas[0].regression);
  EXPECT_TRUE(std::isfinite(cmp.shipped_deltas[0].delta_fraction));

  // Zero-to-zero is flat, and passes.
  BenchReport flat = MakeReport(2.0, 0.6);
  flat.workloads[0].peak_rss_bytes = 0;
  flat.workloads[0].shipped_bytes = 0;
  BenchComparison unchanged = CompareBenchReports(baseline, flat);
  EXPECT_FALSE(unchanged.has_regression);
  ASSERT_EQ(unchanged.memory_deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(unchanged.memory_deltas[0].delta_fraction, 0.0);
}

TEST(StatsRegistryTest, CounterSeriesAccumulateAndRender) {
  StatsRegistry stats;
  EXPECT_EQ(stats.FindCounter("serve_queries"), -1);
  stats.IncrementCounter("serve_queries");
  stats.IncrementCounter("serve_queries");
  stats.IncrementCounter("serve_answers", 5);
  EXPECT_EQ(stats.FindCounter("serve_queries"), 2);
  EXPECT_EQ(stats.FindCounter("serve_answers"), 5);
  ASSERT_EQ(stats.counters().size(), 2u);

  std::string text = stats.ToText();
  EXPECT_NE(text.find("serve_queries"), std::string::npos);
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"serve_answers\""), std::string::npos);
}

TEST(BenchCompareTest, MixedPresenceOfByteFieldsSkipsTheGate) {
  // One side carrying the field and the other not (report-format skew
  // across versions) opts the workload out rather than comparing against
  // the sentinel.
  BenchReport baseline = MakeReport(2.0, 0.6);
  baseline.workloads[0].peak_rss_bytes = 1 << 20;
  BenchComparison cmp = CompareBenchReports(baseline, MakeReport(2.0, 0.6));
  EXPECT_TRUE(cmp.memory_deltas.empty());
  EXPECT_FALSE(cmp.has_regression);
}

}  // namespace
}  // namespace probkb
