#include <gtest/gtest.h>

#include "kb/class_hierarchy.h"
#include "kb/dictionary.h"
#include "kb/knowledge_base.h"
#include "kb/relational_model.h"
#include "kb/rule.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace probkb {
namespace {

TEST(DictionaryTest, InternAndLookup) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("a"), 0);
  EXPECT_EQ(d.GetOrAdd("b"), 1);
  EXPECT_EQ(d.GetOrAdd("a"), 0);  // idempotent
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.Lookup("b"), 1);
  EXPECT_EQ(d.Lookup("missing"), kInvalidId);
  EXPECT_EQ(*d.GetName(1), "b");
  EXPECT_FALSE(d.GetName(5).ok());
  EXPECT_EQ(d.NameOrPlaceholder(5), "#5");
}

// --- Structural partitioning (Definitions 5 and 6) --------------------------

Clause MakeClause(RelationId head, int hv1, int hv2,
                  std::vector<Atom> body, std::vector<ClassId> classes) {
  Clause c;
  c.head = {head, hv1, hv2};
  c.body = std::move(body);
  c.var_classes = std::move(classes);
  c.weight = 1.0;
  return c;
}

TEST(PartitionClauseTest, RecognizesAllSixStructures) {
  // Variables: x=0, y=1, z=2; relations: p=0, q=1, r=2; classes 10, 11, 12.
  struct Case {
    std::vector<Atom> body;
    RuleStructure expected;
  };
  std::vector<Case> cases = {
      {{{1, 0, 1}}, RuleStructure::kM1},
      {{{1, 1, 0}}, RuleStructure::kM2},
      {{{1, 2, 0}, {2, 2, 1}}, RuleStructure::kM3},
      {{{1, 0, 2}, {2, 2, 1}}, RuleStructure::kM4},
      {{{1, 2, 0}, {2, 1, 2}}, RuleStructure::kM5},
      {{{1, 0, 2}, {2, 1, 2}}, RuleStructure::kM6},
  };
  for (const auto& test_case : cases) {
    auto rule = PartitionClause(
        MakeClause(0, 0, 1, test_case.body, {10, 11, 12}));
    ASSERT_TRUE(rule.ok()) << rule.status();
    EXPECT_EQ(rule->structure, test_case.expected);
    EXPECT_EQ(rule->head, 0);
    EXPECT_EQ(rule->body1, 1);
    EXPECT_EQ(rule->c1, 10);
    EXPECT_EQ(rule->c2, 11);
    if (rule->body_length() == 2) {
      EXPECT_EQ(rule->body2, 2);
      EXPECT_EQ(rule->c3, 12);
    }
  }
}

TEST(PartitionClauseTest, CanonicalizesVariableNumbering) {
  // Same M3 rule but with variables renamed (x=5, y=3, z=9): structural
  // equivalence must ignore variable names.
  Clause c;
  c.head = {0, 5, 3};
  c.body = {{1, 9, 5}, {2, 9, 3}};
  c.var_classes.resize(10, kInvalidId);
  c.var_classes[5] = 10;
  c.var_classes[3] = 11;
  c.var_classes[9] = 12;
  auto rule = PartitionClause(c);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->structure, RuleStructure::kM3);
  EXPECT_EQ(rule->c1, 10);
  EXPECT_EQ(rule->c2, 11);
  EXPECT_EQ(rule->c3, 12);
}

TEST(PartitionClauseTest, BodyAtomOrderIsCanonical) {
  // M3 with the body atoms swapped in source order still lands in M3 with
  // q = the atom mentioning x.
  auto rule = PartitionClause(
      MakeClause(0, 0, 1, {{2, 2, 1}, {1, 2, 0}}, {10, 11, 12}));
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->structure, RuleStructure::kM3);
  EXPECT_EQ(rule->body1, 1);  // q mentions x
  EXPECT_EQ(rule->body2, 2);
}

TEST(PartitionClauseTest, RejectsOutOfScopeClauses) {
  // Head variables equal.
  EXPECT_FALSE(PartitionClause(
      MakeClause(0, 0, 0, {{1, 0, 1}}, {10, 11})).ok());
  // Length-1 body using a non-head variable.
  EXPECT_FALSE(PartitionClause(
      MakeClause(0, 0, 1, {{1, 0, 2}}, {10, 11, 12})).ok());
  // Two different non-head variables.
  EXPECT_FALSE(PartitionClause(
      MakeClause(0, 0, 1, {{1, 2, 0}, {2, 3, 1}}, {10, 11, 12, 13})).ok());
  // Both body atoms mention x.
  EXPECT_FALSE(PartitionClause(
      MakeClause(0, 0, 1, {{1, 2, 0}, {2, 2, 0}}, {10, 11, 12})).ok());
  // Body of length 3.
  EXPECT_FALSE(PartitionClause(
      MakeClause(0, 0, 1, {{1, 0, 1}, {1, 0, 1}, {1, 0, 1}}, {10, 11})).ok());
  // Empty body.
  EXPECT_FALSE(PartitionClause(MakeClause(0, 0, 1, {}, {10, 11})).ok());
  // Missing class annotation.
  EXPECT_FALSE(PartitionClause(
      MakeClause(0, 0, 1, {{1, 2, 0}, {2, 2, 1}}, {10, 11, kInvalidId})).ok());
}

// Property: RuleToClause o PartitionClause is the identity on canonical
// rules, for randomly generated rules of every structure.
class RuleRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RuleRoundTripTest, PartitionInvertsExpansion) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    HornRule rule;
    rule.structure =
        static_cast<RuleStructure>(rng.UniformInt(1, kNumRuleStructures));
    rule.head = rng.UniformInt(0, 30);
    rule.body1 = rng.UniformInt(0, 30);
    rule.c1 = rng.UniformInt(0, 10);
    rule.c2 = rng.UniformInt(0, 10);
    if (rule.body_length() == 2) {
      rule.body2 = rng.UniformInt(0, 30);
      rule.c3 = rng.UniformInt(0, 10);
    }
    rule.weight = rng.UniformDouble(0.1, 3.0);
    auto back = PartitionClause(RuleToClause(rule));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, rule);
    EXPECT_DOUBLE_EQ(back->weight, rule.weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleRoundTripTest, ::testing::Range(0, 8));

// --- KnowledgeBase -----------------------------------------------------------

TEST(KnowledgeBaseTest, AddFactByNameInternsSymbols) {
  KnowledgeBase kb;
  kb.AddFactByName("born_in", "Ann", "Person", "Paris", "City", 0.9);
  kb.AddFactByName("born_in", "Bob", "Person", "Paris", "City", 0.8);
  EXPECT_EQ(kb.relations().size(), 1);
  EXPECT_EQ(kb.entities().size(), 3);
  EXPECT_EQ(kb.classes().size(), 2);
  ASSERT_EQ(kb.facts().size(), 2u);
  EXPECT_EQ(kb.facts()[0].y, kb.facts()[1].y);  // shared Paris
}

TEST(KnowledgeBaseTest, ValidateCatchesDanglingIds) {
  KnowledgeBase kb;
  kb.AddFactByName("r", "a", "C", "b", "C", 1.0);
  EXPECT_TRUE(kb.Validate().ok());
  Fact bad;
  bad.relation = 99;
  bad.x = 0;
  bad.c1 = 0;
  bad.y = 1;
  bad.c2 = 0;
  kb.AddFact(bad);
  EXPECT_FALSE(kb.Validate().ok());
}

TEST(KnowledgeBaseTest, ToStringHelpers) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  std::string fact = kb.FactToString(kb.facts()[0]);
  EXPECT_NE(fact.find("born_in"), std::string::npos);
  EXPECT_NE(fact.find("Ruth Gruber"), std::string::npos);
  std::string rule = kb.RuleToString(kb.rules()[0]);
  EXPECT_NE(rule.find("live_in"), std::string::npos);
  EXPECT_NE(rule.find("born_in"), std::string::npos);
  EXPECT_NE(kb.StatsString().find("# facts 2"), std::string::npos);
}

// --- Relational encoding ------------------------------------------------------

TEST(RelationalModelTest, SchemasMatchDefinitions) {
  EXPECT_EQ(TPiSchema().num_fields(), tpi::kWidth);
  EXPECT_EQ(TPiSchema().GetFieldIndex("w"), tpi::kW);
  EXPECT_EQ(MLen2Schema().num_fields(), 5);
  EXPECT_EQ(MLen3Schema().num_fields(), 7);
  EXPECT_EQ(TPhiSchema().GetFieldIndex("I3"), tphi::kI3);
  EXPECT_EQ(TOmegaSchema().GetFieldIndex("deg"), tomega::kDeg);
}

TEST(RelationalModelTest, FactRowRoundTrip) {
  auto t = Table::Make(TPiSchema());
  Fact f{3, 4, 5, 6, 7, 0.25};
  AppendFactRow(t.get(), 11, f);
  ASSERT_EQ(t->NumRows(), 1);
  EXPECT_EQ(t->row(0)[tpi::kI].i64(), 11);
  Fact back = FactFromRow(t->row(0));
  EXPECT_EQ(back.relation, 3);
  EXPECT_EQ(back.x, 4);
  EXPECT_DOUBLE_EQ(back.weight, 0.25);

  // NaN weight encodes as SQL NULL.
  Fact unweighted = f;
  unweighted.weight = std::nan("");
  AppendFactRow(t.get(), 12, unweighted);
  EXPECT_TRUE(t->row(1)[tpi::kW].is_null());
  EXPECT_FALSE(FactFromRow(t->row(1)).has_weight());
}

TEST(RelationalModelTest, RulesRoutedToPartitionTables) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  EXPECT_EQ(rkb.m[0]->NumRows(), 4);
  EXPECT_EQ(rkb.m[2]->NumRows(), 2);
  for (int i : {1, 3, 4, 5}) {
    EXPECT_EQ(rkb.m[static_cast<size_t>(i)]->NumRows(), 0);
  }
  // M1 rows carry (R1, R2, C1, C2, w).
  RowView row = rkb.m[0]->row(0);
  EXPECT_EQ(row[mlen2::kR1].i64(), kb.relations().Lookup("live_in"));
  EXPECT_EQ(row[mlen2::kR2].i64(), kb.relations().Lookup("born_in"));
  EXPECT_DOUBLE_EQ(row[mlen2::kW].f64(), 1.40);
}

TEST(RelationalModelTest, ConstraintAndMembershipTables) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  kb.AddClassMember({0, 1});
  kb.AddSignature({0, 1, 2});
  RelationalKB rkb = BuildRelationalModel(kb);
  ASSERT_EQ(rkb.t_omega->NumRows(), 1);
  EXPECT_EQ(rkb.t_omega->row(0)[tomega::kArg].i64(), 1);
  EXPECT_EQ(rkb.t_omega->row(0)[tomega::kDeg].i64(), 1);
  EXPECT_EQ(rkb.t_c->NumRows(), 1);
  EXPECT_EQ(rkb.t_r->NumRows(), 1);
}


// --- Class hierarchy (Definition 1, Remark 1) ----------------------------------

TEST(ClassHierarchyTest, SubsetImpliesSubclass) {
  KnowledgeBase kb;
  ClassId place = kb.classes().GetOrAdd("Place");
  ClassId city = kb.classes().GetOrAdd("City");
  ClassId person = kb.classes().GetOrAdd("Person");
  EntityId nyc = kb.entities().GetOrAdd("NYC");
  EntityId paris = kb.entities().GetOrAdd("Paris");
  EntityId alps = kb.entities().GetOrAdd("Alps");
  EntityId ann = kb.entities().GetOrAdd("Ann");
  // Cities are places; the Alps are a place but not a city.
  for (EntityId e : {nyc, paris, alps}) kb.AddClassMember({place, e});
  for (EntityId e : {nyc, paris}) kb.AddClassMember({city, e});
  kb.AddClassMember({person, ann});

  auto edges = ComputeClassHierarchy(kb);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].subclass, city);
  EXPECT_EQ(edges[0].superclass, place);
  EXPECT_TRUE(IsSubclassOf(kb, city, place));
  EXPECT_FALSE(IsSubclassOf(kb, place, city));
  EXPECT_FALSE(IsSubclassOf(kb, person, place));
}

TEST(ClassHierarchyTest, EqualMemberSetsAreMutualSubclasses) {
  KnowledgeBase kb;
  ClassId a = kb.classes().GetOrAdd("A");
  ClassId b = kb.classes().GetOrAdd("B");
  EntityId e = kb.entities().GetOrAdd("e");
  kb.AddClassMember({a, e});
  kb.AddClassMember({b, e});
  auto edges = ComputeClassHierarchy(kb);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(IsSubclassOf(kb, a, b));
  EXPECT_TRUE(IsSubclassOf(kb, b, a));
}

TEST(ClassHierarchyTest, EmptyClassesIgnored) {
  KnowledgeBase kb;
  kb.classes().GetOrAdd("Empty");
  ClassId full = kb.classes().GetOrAdd("Full");
  kb.AddClassMember({full, kb.entities().GetOrAdd("e")});
  EXPECT_TRUE(ComputeClassHierarchy(kb).empty());
  EXPECT_FALSE(IsSubclassOf(kb, kb.classes().Lookup("Empty"), full));
}

}  // namespace
}  // namespace probkb
