#ifndef PROBKB_TESTS_TEST_UTIL_H_
#define PROBKB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "kb/knowledge_base.h"
#include "kb/relational_model.h"
#include "relational/table.h"

namespace probkb {
namespace testutil {

/// \brief Builds the ReVerb-Sherlock running example of the paper's
/// Table 1: Ruth Gruber's born_in facts, four M1 rules (live_in /
/// grow_up_in from born_in over Place and City), two M3 rules (located_in
/// from live_in / born_in pairs), and the born_in Type-I functional
/// constraint.
///
/// Symbols (useful for assertions): entities RG, NYC, Br; classes W
/// (Writer), C (City), P (Place); relations born_in, live_in, grow_up_in,
/// located_in.
inline KnowledgeBase BuildPaperExampleKB() {
  KnowledgeBase kb;
  // Intern in a fixed order so tests can reference stable ids.
  EntityId rg = kb.entities().GetOrAdd("Ruth Gruber");
  EntityId nyc = kb.entities().GetOrAdd("New York City");
  EntityId br = kb.entities().GetOrAdd("Brooklyn");
  ClassId w = kb.classes().GetOrAdd("Writer");
  ClassId c = kb.classes().GetOrAdd("City");
  ClassId p = kb.classes().GetOrAdd("Place");
  RelationId born_in = kb.relations().GetOrAdd("born_in");
  RelationId live_in = kb.relations().GetOrAdd("live_in");
  RelationId grow_up_in = kb.relations().GetOrAdd("grow_up_in");
  RelationId located_in = kb.relations().GetOrAdd("located_in");

  kb.AddFact({born_in, rg, w, nyc, c, 0.96});
  kb.AddFact({born_in, rg, w, br, p, 0.93});

  auto m1 = [&](RelationId head, ClassId c2, double weight) {
    HornRule r;
    r.structure = RuleStructure::kM1;
    r.head = head;
    r.body1 = born_in;
    r.c1 = w;
    r.c2 = c2;
    r.weight = weight;
    kb.AddRule(r);
  };
  m1(live_in, p, 1.40);
  m1(live_in, c, 1.53);
  m1(grow_up_in, p, 2.68);
  m1(grow_up_in, c, 0.74);

  auto m3 = [&](RelationId body, double weight) {
    HornRule r;
    r.structure = RuleStructure::kM3;
    r.head = located_in;
    r.body1 = body;
    r.body2 = body;
    r.c1 = p;
    r.c2 = c;
    r.c3 = w;
    r.weight = weight;
    kb.AddRule(r);
  };
  m3(live_in, 0.32);
  m3(born_in, 0.52);

  kb.AddConstraint({born_in, FunctionalityType::kTypeI, 1});
  return kb;
}

/// \brief Extracts the logical atoms (R, x, C1, y, C2) of a TPi table as a
/// sorted set, for id-insensitive comparison.
inline std::set<std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t>>
TPiAtomSet(const Table& t_pi) {
  std::set<std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t>> out;
  for (int64_t i = 0; i < t_pi.NumRows(); ++i) {
    RowView r = t_pi.row(i);
    out.emplace(r[tpi::kR].i64(), r[tpi::kX].i64(), r[tpi::kC1].i64(),
                r[tpi::kY].i64(), r[tpi::kC2].i64());
  }
  return out;
}

/// \brief Canonicalizes a TPhi table by replacing fact ids with the atom
/// tuples they denote, so factor sets are comparable across runs that
/// assign ids in different orders. Entries are sorted; body atoms within a
/// factor are sorted as well because (I1 <- I2, I3) and (I1 <- I3, I2)
/// from symmetric rules denote the same ground clause only when the rule
/// is symmetric — so we keep body order.
using AtomKey = std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t>;
struct CanonicalFactor {
  AtomKey head;
  std::vector<AtomKey> body;
  int64_t weight_millis;  // weight rounded to 1e-3 for robust comparison
  friend bool operator<(const CanonicalFactor& a, const CanonicalFactor& b) {
    return std::tie(a.head, a.body, a.weight_millis) <
           std::tie(b.head, b.body, b.weight_millis);
  }
  friend bool operator==(const CanonicalFactor& a, const CanonicalFactor& b) {
    return !(a < b) && !(b < a);
  }
};

inline std::vector<CanonicalFactor> CanonicalizeFactors(const Table& t_phi,
                                                        const Table& t_pi) {
  std::map<int64_t, AtomKey> atom_by_id;
  for (int64_t i = 0; i < t_pi.NumRows(); ++i) {
    RowView r = t_pi.row(i);
    atom_by_id[r[tpi::kI].i64()] =
        AtomKey(r[tpi::kR].i64(), r[tpi::kX].i64(), r[tpi::kC1].i64(),
                r[tpi::kY].i64(), r[tpi::kC2].i64());
  }
  std::vector<CanonicalFactor> out;
  for (int64_t i = 0; i < t_phi.NumRows(); ++i) {
    RowView r = t_phi.row(i);
    CanonicalFactor f;
    f.head = atom_by_id.at(r[tphi::kI1].i64());
    if (!r[tphi::kI2].is_null()) {
      f.body.push_back(atom_by_id.at(r[tphi::kI2].i64()));
    }
    if (!r[tphi::kI3].is_null()) {
      f.body.push_back(atom_by_id.at(r[tphi::kI3].i64()));
    }
    f.weight_millis = static_cast<int64_t>(r[tphi::kW].f64() * 1000.0 + 0.5);
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// \brief Builds a small int64 table from a row list (test fixtures).
inline TablePtr MakeTable(const Schema& schema,
                          const std::vector<std::vector<int64_t>>& rows) {
  auto t = Table::Make(schema);
  for (const auto& row : rows) {
    std::vector<Value> values;
    values.reserve(row.size());
    for (int64_t v : row) values.push_back(Value::Int64(v));
    t->AppendRow(values);
  }
  return t;
}

}  // namespace testutil
}  // namespace probkb

#endif  // PROBKB_TESTS_TEST_UTIL_H_
