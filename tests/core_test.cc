#include "core/probkb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/synthetic_kb.h"
#include "tests/test_util.h"

namespace probkb {
namespace {

ExpansionOptions FastOptions() {
  ExpansionOptions options;
  options.gibbs.burn_in_sweeps = 100;
  options.gibbs.sample_sweeps = 500;
  return options;
}

TEST(ExpandKnowledgeBaseTest, PaperExampleEndToEnd) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  auto result = ExpandKnowledgeBase(kb, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->t_pi->NumRows(), 7);
  EXPECT_EQ(result->t_phi->NumRows(), 8);
  EXPECT_EQ(result->first_inferred_id, 2);
  EXPECT_EQ(result->graph->num_variables(), 7);
  // Inference ran and wrote probabilities back.
  for (int64_t i = 0; i < result->t_pi->NumRows(); ++i) {
    EXPECT_FALSE(result->t_pi->row(i)[tpi::kW].is_null());
  }

  KbQuery query = MakeQuery(kb, *result);
  auto found = query.Find("located_in", std::nullopt, std::nullopt);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0].inferred);
  EXPECT_GT(found[0].score, 0.0);
  EXPECT_LT(found[0].score, 1.0);
}

TEST(ExpandKnowledgeBaseTest, InferenceCanBeDisabled) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  ExpansionOptions options = FastOptions();
  options.run_inference = false;
  auto result = ExpandKnowledgeBase(kb, options);
  ASSERT_TRUE(result.ok());
  // Inferred facts keep NULL weights.
  bool any_null = false;
  for (int64_t i = 0; i < result->t_pi->NumRows(); ++i) {
    any_null = any_null || result->t_pi->row(i)[tpi::kW].is_null();
  }
  EXPECT_TRUE(any_null);
  EXPECT_TRUE(result->inference.marginals.empty());
}

TEST(ExpandKnowledgeBaseTest, MppPathMatchesSingleNode) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.003;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  ExpansionOptions options = FastOptions();
  options.run_inference = false;
  options.grounding.max_iterations = 3;
  auto single = ExpandKnowledgeBase(skb->kb, options);
  ASSERT_TRUE(single.ok());

  options.use_mpp = true;
  options.mpp_segments = 4;
  auto mpp = ExpandKnowledgeBase(skb->kb, options);
  ASSERT_TRUE(mpp.ok()) << mpp.status();

  EXPECT_EQ(testutil::TPiAtomSet(*mpp->t_pi),
            testutil::TPiAtomSet(*single->t_pi));
  EXPECT_EQ(testutil::CanonicalizeFactors(*mpp->t_phi, *mpp->t_pi),
            testutil::CanonicalizeFactors(*single->t_phi, *single->t_pi));
}

TEST(ExpandKnowledgeBaseTest, RuleCleaningHonored) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.005;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());

  ExpansionOptions options = FastOptions();
  options.run_inference = false;
  options.grounding.max_iterations = 3;
  auto all_rules = ExpandKnowledgeBase(skb->kb, options);
  ASSERT_TRUE(all_rules.ok());

  options.rule_cleaning_theta = 0.1;
  auto cleaned = ExpandKnowledgeBase(skb->kb, options);
  ASSERT_TRUE(cleaned.ok());
  EXPECT_LT(cleaned->t_pi->NumRows(), all_rules->t_pi->NumRows());
}

TEST(ExpandKnowledgeBaseTest, UpfrontConstraintsReported) {
  SyntheticKbConfig cfg;
  cfg.scale = 0.005;
  auto skb = GenerateReverbSherlockKb(cfg);
  ASSERT_TRUE(skb.ok());
  ExpansionOptions options = FastOptions();
  options.run_inference = false;
  options.grounding.max_iterations = 2;
  auto result = ExpandKnowledgeBase(skb->kb, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->constraints_deleted_upfront, 0);

  options.constraints_upfront = false;
  auto raw = ExpandKnowledgeBase(skb->kb, options);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->constraints_deleted_upfront, 0);
}

TEST(ExpandKnowledgeBaseTest, ValidatesOptions) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  ExpansionOptions options;
  options.rule_cleaning_theta = -0.5;
  EXPECT_FALSE(ExpandKnowledgeBase(kb, options).ok());
  options = ExpansionOptions{};
  options.use_mpp = true;
  options.mpp_segments = 0;
  EXPECT_FALSE(ExpandKnowledgeBase(kb, options).ok());
}

TEST(ExpandKnowledgeBaseTest, SourceKbUntouched) {
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  size_t facts_before = kb.facts().size();
  size_t rules_before = kb.rules().size();
  ExpansionOptions options = FastOptions();
  options.rule_cleaning_theta = 0.5;
  auto result = ExpandKnowledgeBase(kb, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(kb.facts().size(), facts_before);
  EXPECT_EQ(kb.rules().size(), rules_before);
}

}  // namespace
}  // namespace probkb
