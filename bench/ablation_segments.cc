// Ablation: segment-count sweep on the MPP simulator (ProbKB-p). The
// paper runs Greenplum at one configuration (32 segments) and notes the
// speed-up is sublinear because intermediate results must be
// redistributed; this sweep makes that trade visible: compute shrinks
// with 1/N while motion volume grows with N.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "grounding/mpp_grounder.h"

int main() {
  using namespace probkb;
  const double scale = bench::BenchScale();
  bench::PrintHeader("Ablation: segment-count sweep (ProbKB-p)");
  std::printf("scale=%.3f\n", scale);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;
  // A fact-heavy KB so compute dominates at low segment counts.
  if (!AddRandomFacts(&skb->kb,
                      static_cast<int64_t>(skb->kb.facts().size()) * 5, 42)
           .ok()) {
    return 1;
  }
  std::printf("%s\n\n", skb->kb.StatsString().c_str());

  std::printf("%9s %14s %14s %14s %16s\n", "segments", "simulated(s)",
              "compute(s)", "motion(s)", "tuples shipped");
  double single_node = 0;
  for (int segments : {1, 2, 4, 8, 16, 32, 64}) {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 2;
    MppGrounder grounder(rkb, segments, MppMode::kViews, options);
    if (!grounder.GroundAtoms().ok()) return 1;
    const MppCost& cost = grounder.cost();
    double motion = 0;
    for (const auto& step : cost.steps()) {
      if (step.kind != MppStep::Kind::kCompute) motion += step.seconds;
    }
    if (segments == 1) single_node = cost.simulated_seconds();
    std::printf("%9d %14.3f %14.3f %14.3f %16lld   (%.2fx)\n", segments,
                cost.simulated_seconds(),
                cost.simulated_seconds() - motion, motion,
                static_cast<long long>(cost.tuples_shipped()),
                single_node / cost.simulated_seconds());
  }
  return 0;
}
