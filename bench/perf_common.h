#ifndef PROBKB_BENCH_PERF_COMMON_H_
#define PROBKB_BENCH_PERF_COMMON_H_

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "tuffy/tuffy_grounder.h"
#include "util/timer.h"

namespace probkb {
namespace bench {

/// One Figure-6-style measurement: a single grounding iteration (Query 1)
/// plus factor construction (Query 2), as the paper does for the synthetic
/// S1/S2 sweeps.
struct PerfPoint {
  double modeled_seconds = 0;   // engine/simulated time + statement overhead
  double measured_seconds = 0;  // engine/simulated time only
  int64_t inferred = 0;
  int64_t factors = 0;
};

inline Result<PerfPoint> RunProbKbOnce(const KnowledgeBase& kb,
                                       int num_threads = 1) {
  const double stmt = StatementSeconds();
  PerfPoint point;
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.max_iterations = 1;
  options.num_threads = num_threads;
  Grounder grounder(&rkb, options);
  Timer timer;
  PROBKB_ASSIGN_OR_RETURN(point.inferred, grounder.GroundAtomsIteration());
  PROBKB_ASSIGN_OR_RETURN(TablePtr phi, grounder.GroundFactors());
  point.factors = phi->NumRows();
  point.measured_seconds = timer.Seconds();
  point.modeled_seconds =
      point.measured_seconds +
      static_cast<double>(grounder.stats().statements) * stmt;
  return point;
}

inline Result<PerfPoint> RunMppOnce(const KnowledgeBase& kb, int segments,
                                    MppMode mode, int num_threads = 1) {
  const double stmt = StatementSeconds();
  PerfPoint point;
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.max_iterations = 1;
  options.num_threads = num_threads;
  MppGrounder grounder(rkb, segments, mode, options);
  PROBKB_ASSIGN_OR_RETURN(point.inferred, grounder.GroundAtomsIteration());
  PROBKB_ASSIGN_OR_RETURN(TablePtr phi, grounder.GroundFactors());
  point.factors = phi->NumRows();
  point.measured_seconds = grounder.cost().simulated_seconds();
  point.modeled_seconds =
      point.measured_seconds +
      static_cast<double>(grounder.stats().statements) * stmt;
  return point;
}

inline Result<PerfPoint> RunTuffyOnce(const KnowledgeBase& kb) {
  const double stmt = StatementSeconds();
  PerfPoint point;
  GroundingOptions options;
  options.max_iterations = 1;
  TuffyGrounder grounder(kb, options);
  PROBKB_RETURN_NOT_OK(grounder.Load());
  int64_t load_statements = grounder.stats().statements;
  Timer timer;
  PROBKB_ASSIGN_OR_RETURN(point.inferred, grounder.GroundAtomsIteration());
  PROBKB_ASSIGN_OR_RETURN(TablePtr phi, grounder.GroundFactors());
  point.factors = phi->NumRows();
  point.measured_seconds = timer.Seconds();
  // Loading statements are not part of the Figure 6 grounding time.
  point.modeled_seconds =
      point.measured_seconds +
      static_cast<double>(grounder.stats().statements - load_statements) *
          stmt;
  return point;
}

}  // namespace bench
}  // namespace probkb

#endif  // PROBKB_BENCH_PERF_COMMON_H_
