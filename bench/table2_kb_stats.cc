// Table 2: ReVerb-Sherlock KB statistics. Regenerates the synthetic
// analogue at the benchmark scale and reports it against the paper's
// counts (scaled by the same factor).

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "util/timer.h"

int main() {
  using namespace probkb;
  const double scale = bench::BenchScale();
  bench::PrintHeader("Table 2: ReVerb-Sherlock KB statistics");
  std::printf("scale = %.3f of the paper's dataset\n\n", scale);

  SyntheticKbConfig config;
  config.scale = scale;
  Timer timer;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    std::fprintf(stderr, "%s\n", skb.status().ToString().c_str());
    return 1;
  }
  double gen_seconds = timer.Seconds();

  const KnowledgeBase& kb = skb->kb;
  std::printf("%-14s %14s %14s\n", "", "paper (scaled)", "generated");
  std::printf("%-14s %14lld %14lld\n", "# relations",
              static_cast<long long>(config.NumRelations()),
              static_cast<long long>(kb.relations().size()));
  std::printf("%-14s %14lld %14zu\n", "# rules",
              static_cast<long long>(config.NumRules()), kb.rules().size());
  std::printf("%-14s %14lld %14lld\n", "# entities",
              static_cast<long long>(config.NumEntities()),
              static_cast<long long>(kb.entities().size()));
  std::printf("%-14s %14lld %14zu\n", "# facts",
              static_cast<long long>(config.NumFacts()), kb.facts().size());
  std::printf(
      "\nconstraints: %zu functional relations (Leibniz repository analogue)"
      "\ninjected: %zu ambiguous entities, %zu wrong extractions, "
      "%zu unsound rules\ngeneration time: %.2fs\n",
      kb.constraints().size(),
      skb->truth.labels.ambiguous_entities.size(),
      skb->truth.labels.incorrect_extractions.size(),
      skb->truth.incorrect_rule_indices.size(), gen_seconds);
  return 0;
}
