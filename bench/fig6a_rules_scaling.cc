// Figure 6(a): grounding time vs number of MLN rules (workload S1 — the
// base facts stay fixed, rules grow from 10K to 1M, scaled). One grounding
// iteration + factor construction per point, as in the paper. Expected
// shape: Tuffy-T grows linearly in the rule count (one query per rule);
// ProbKB stays nearly flat (six batch queries); ProbKB-p is fastest.

#include <cstdio>
#include <vector>

#include "bench/perf_common.h"

int main() {
  using namespace probkb;
  using namespace probkb::bench;
  const double scale = BenchScale();
  const int kSegments = 32;
  PrintHeader("Figure 6(a): runtime vs #rules (S1)");
  std::printf("scale=%.3f; paper sweep 10K..1M rules scaled accordingly\n",
              scale);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;

  const std::vector<int64_t> paper_rules = {10000, 200000, 500000, 1000000};
  std::printf("\n%12s %12s | %12s %12s %12s | %10s\n", "paper #rules",
              "#rules", "Tuffy-T(s)", "ProbKB(s)", "ProbKB-p(s)",
              "#inferred");

  for (int64_t paper_count : paper_rules) {
    int64_t target =
        std::max<int64_t>(8, static_cast<int64_t>(paper_count * scale));
    KnowledgeBase kb = skb->kb;
    if (static_cast<int64_t>(kb.rules().size()) > target) {
      kb.mutable_rules()->resize(static_cast<size_t>(target));
    } else if (auto st = AddRandomRules(&kb, target, 777); !st.ok()) {
      std::fprintf(stderr, "S1: %s\n", st.ToString().c_str());
      return 1;
    }

    auto tuffy = RunTuffyOnce(kb);
    auto probkb = RunProbKbOnce(kb);
    auto mpp = RunMppOnce(kb, kSegments, MppMode::kViews);
    if (!tuffy.ok() || !probkb.ok() || !mpp.ok()) return 1;
    std::printf("%12lld %12zu | %12.2f %12.2f %12.2f | %10lld\n",
                static_cast<long long>(paper_count), kb.rules().size(),
                tuffy->modeled_seconds, probkb->modeled_seconds,
                mpp->modeled_seconds,
                static_cast<long long>(probkb->inferred));
  }
  std::printf(
      "\nShape target (paper, 1M rules): Tuffy-T 16507s, ProbKB 210s, "
      "ProbKB-p 53s -> speedup ~311x; ours should grow linearly for "
      "Tuffy-T and stay ~flat for ProbKB.\n");
  return 0;
}
