// Figure 7(b): distribution of error sources among the entities that
// violate functional constraints. The paper sampled 100 violating
// entities and attributed them by hand (34% ambiguous, 33% incorrect
// rules, 24% ambiguous join keys, 6% incorrect extractions, 2% general
// types, 1% synonyms); we classify every violator mechanically against
// the generator's injected-error labels plus factor-graph lineage.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "quality/error_analysis.h"

int main() {
  using namespace probkb;
  const double scale = bench::BenchScale();
  bench::PrintHeader("Figure 7(b): sources of constraint violations");
  std::printf("scale=%.3f\n", scale);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;

  RelationalKB rkb = BuildRelationalModel(skb->kb);
  GroundingOptions options;
  options.max_iterations = 4;
  Grounder grounder(&rkb, options);
  if (!grounder.GroundAtoms().ok()) return 1;
  auto phi = grounder.GroundFactors();
  if (!phi.ok()) return 1;
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  if (!graph.ok()) return 1;

  ExecContext ec;
  auto violators = FindConstraintViolators(rkb.t_pi, rkb.t_omega, &ec);
  if (!violators.ok()) return 1;
  auto classified =
      ClassifyViolators(**violators, *rkb.t_pi, rkb.t_omega.get(), &*graph,
                        skb->truth.labels);
  auto distribution = ErrorSourceDistribution(classified);

  std::printf("\n%lld violating entities (paper: 1483)\n\n",
              static_cast<long long>((*violators)->NumRows()));
  struct PaperRow {
    ErrorSource source;
    double paper_pct;
  };
  const PaperRow rows[] = {
      {ErrorSource::kAmbiguousEntity, 34},
      {ErrorSource::kIncorrectRule, 33},
      {ErrorSource::kAmbiguousJoinKey, 24},
      {ErrorSource::kIncorrectExtraction, 6},
      {ErrorSource::kGeneralType, 2},
      {ErrorSource::kSynonym, 1},
      {ErrorSource::kUnknown, 0},
  };
  std::printf("%-26s %8s %8s\n", "source", "ours", "paper");
  for (const PaperRow& row : rows) {
    std::printf("%-26s %7.1f%% %7.0f%%\n", ErrorSourceToString(row.source),
                distribution[row.source] * 100, row.paper_pct);
  }
  return 0;
}
