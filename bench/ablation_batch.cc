// Ablation: batch rule application vs one-rule-at-a-time on the *same*
// storage layout. Table 3 and Figure 6(a) compare ProbKB against Tuffy-T,
// which differs in two ways at once (single facts table vs per-relation
// tables, AND batch vs per-rule queries). This ablation isolates the
// batching contribution: both variants use ProbKB's single TPi table; the
// per-rule variant runs each partition query with a one-row M table per
// rule, as the per-rule SQL would.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "grounding/partition_queries.h"
#include "util/timer.h"

int main() {
  using namespace probkb;
  using namespace probkb::bench;
  const double scale = BenchScale();
  const double stmt = StatementSeconds();
  PrintHeader("Ablation: batch vs per-rule application (same storage)");
  std::printf("scale=%.3f, statement overhead=%.1fms\n", scale, stmt * 1e3);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  std::printf("%s\n\n", skb->kb.StatsString().c_str());

  // Batched: one query per non-empty partition.
  double batch_seconds = 0;
  int64_t batch_statements = 0;
  int64_t batch_rows = 0;
  {
    Timer timer;
    for (int p = 1; p <= kNumRuleStructures; ++p) {
      TablePtr m = rkb.m[static_cast<size_t>(p - 1)];
      if (m->NumRows() == 0) continue;
      ExecContext ec;
      auto atoms = GroundAtomsForPartition(p, m, rkb.t_pi, rkb.t_pi, &ec);
      if (!atoms.ok()) return 1;
      batch_rows += (*atoms)->NumRows();
      ++batch_statements;
    }
    batch_seconds = timer.Seconds();
  }

  // Per-rule: the same partition queries, but with a single-rule M table
  // each time (what per-rule SQL does to the executor: one build side and
  // one probe pass over TPi per rule).
  double per_rule_seconds = 0;
  int64_t per_rule_statements = 0;
  int64_t per_rule_rows = 0;
  {
    Timer timer;
    for (int p = 1; p <= kNumRuleStructures; ++p) {
      TablePtr m = rkb.m[static_cast<size_t>(p - 1)];
      for (int64_t r = 0; r < m->NumRows(); ++r) {
        auto single = Table::Make(m->schema());
        single->AppendRow(m->row(r));
        ExecContext ec;
        auto atoms =
            GroundAtomsForPartition(p, single, rkb.t_pi, rkb.t_pi, &ec);
        if (!atoms.ok()) return 1;
        per_rule_rows += (*atoms)->NumRows();
        ++per_rule_statements;
      }
    }
    per_rule_seconds = timer.Seconds();
  }

  if (batch_rows != per_rule_rows) {
    std::fprintf(stderr, "result mismatch: %lld vs %lld rows\n",
                 static_cast<long long>(batch_rows),
                 static_cast<long long>(per_rule_rows));
    return 1;
  }

  auto modeled = [&](double secs, int64_t statements) {
    return secs + static_cast<double>(statements) * stmt;
  };
  std::printf("%-12s %12s %12s %14s\n", "variant", "queries", "engine(s)",
              "modeled(s)");
  std::printf("%-12s %12lld %12.3f %14.2f\n", "batched",
              static_cast<long long>(batch_statements), batch_seconds,
              modeled(batch_seconds, batch_statements));
  std::printf("%-12s %12lld %12.3f %14.2f\n", "per-rule",
              static_cast<long long>(per_rule_statements), per_rule_seconds,
              modeled(per_rule_seconds, per_rule_statements));
  std::printf(
      "\nbatching alone: %.1fx engine speedup, %.1fx modeled "
      "(identical %lld output rows)\n",
      per_rule_seconds / batch_seconds,
      modeled(per_rule_seconds, per_rule_statements) /
          modeled(batch_seconds, batch_statements),
      static_cast<long long>(batch_rows));
  return 0;
}
