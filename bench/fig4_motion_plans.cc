// Figure 4: Greenplum query plans for joining M3 with a large synthetic
// TPi, with and without redistributed materialized views. The optimized
// plan redistributes the small intermediate; the unoptimized plan must
// broadcast it. We print both plan traces with per-step costs and the
// broadcast/redistribute ratio (the paper measured 8.06s vs 0.85s at 10M
// rows on 32 segments).

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "grounding/mpp_grounder.h"
#include "grounding/partition_queries.h"
#include "util/timer.h"

int main() {
  using namespace probkb;
  const double scale = bench::BenchScale();
  const int kSegments = 32;
  bench::PrintHeader("Figure 4: motion plans for M3 x TPi");

  // A fact-heavy synthetic TPi (the paper used 10M rows; we scale).
  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;
  int64_t target_facts =
      static_cast<int64_t>(skb->kb.facts().size()) * 10;
  if (!AddRandomFacts(&skb->kb, target_facts, 123).ok()) return 1;
  std::printf("TPi rows: %lld (paper: 10M), segments: %d\n",
              static_cast<long long>(skb->kb.facts().size()), kSegments);

  for (MppMode mode : {MppMode::kViews, MppMode::kNoViews}) {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 1;
    MppGrounder grounder(rkb, kSegments, mode, options);
    auto added = grounder.GroundAtomsIteration();
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- %s (%s) ---\n",
                mode == MppMode::kViews ? "ProbKB-p" : "ProbKB-pn",
                mode == MppMode::kViews
                    ? "redistributed materialized views"
                    : "no views; broadcast intermediate");
    double join2_motion = 0;
    for (const auto& step : grounder.cost().steps()) {
      // Show only the partition-3 query, like the paper's figure.
      if (step.label.find("Query1-3") == std::string::npos &&
          step.label.find("M3") == std::string::npos) {
        continue;
      }
      std::printf("  %s\n", step.ToString().c_str());
      if (step.kind != MppStep::Kind::kCompute &&
          step.label.find("join1") != std::string::npos) {
        join2_motion = step.seconds;
      }
    }
    std::printf("  intermediate motion before join2: %.3fms (%s)\n",
                join2_motion * 1e3,
                mode == MppMode::kViews ? "redistribute" : "broadcast");
  }

  // Direct ratio at matched volume.
  {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    auto dist = DistributedTable::Distribute(*rkb.t_pi, kSegments,
                                             Distribution::Random(), "T");
    MppContext ctx_r(kSegments), ctx_b(kSegments);
    if (!ctx_r.Redistribute(*dist, ViewKeysT0()).ok()) return 1;
    if (!ctx_b.Broadcast(*dist).ok()) return 1;
    std::printf(
        "\nFull-table motion comparison at %lld rows: redistribute %.3fs, "
        "broadcast %.3fs (%.1fx; paper: 0.85s vs 8.06s = 9.5x)\n",
        static_cast<long long>(dist->NumRows()),
        ctx_r.cost().simulated_seconds(), ctx_b.cost().simulated_seconds(),
        ctx_b.cost().simulated_seconds() /
            ctx_r.cost().simulated_seconds());
  }
  return 0;
}
