// Figure 6(c): effect of MPP parallelization and of the redistributed
// materialized views — ProbKB (single node) vs ProbKB-pn (MPP, no views)
// vs ProbKB-p (MPP + views) on the S2 fact sweep. Also reports the tuples
// each configuration ships, the mechanism behind the gap.

#include <cstdio>
#include <vector>

#include "bench/perf_common.h"

int main(int argc, char** argv) {
  using namespace probkb;
  using namespace probkb::bench;
  const std::string json_path = JsonPathFromArgs(argc, argv);
  const double scale = BenchScale();
  const int kSegments = 32;
  PrintHeader("Figure 6(c): MPP configurations on S2");
  std::printf("scale=%.3f, %d segments\n", scale, kSegments);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;

  const std::vector<int64_t> paper_facts = {100000, 2000000, 5000000,
                                            10000000};
  std::printf("\n%12s | %12s %12s %12s | %10s\n", "paper #facts",
              "ProbKB(s)", "ProbKB-pn(s)", "ProbKB-p(s)", "#inferred");

  struct JsonRow {
    int64_t paper_facts;
    double probkb_s, probkb_pn_s, probkb_p_s;
    int64_t inferred;
  };
  std::vector<JsonRow> json_rows;
  for (int64_t paper_count : paper_facts) {
    int64_t target =
        std::max<int64_t>(64, static_cast<int64_t>(paper_count * scale));
    KnowledgeBase kb = skb->kb;
    if (static_cast<int64_t>(kb.facts().size()) > target) {
      kb.mutable_facts()->resize(static_cast<size_t>(target));
    } else if (auto st = AddRandomFacts(&kb, target, 779); !st.ok()) {
      return 1;
    }

    auto single = RunProbKbOnce(kb);
    auto no_views = RunMppOnce(kb, kSegments, MppMode::kNoViews);
    auto views = RunMppOnce(kb, kSegments, MppMode::kViews);
    if (!single.ok() || !no_views.ok() || !views.ok()) return 1;
    std::printf("%12lld | %12.3f %12.3f %12.3f | %10lld\n",
                static_cast<long long>(paper_count),
                single->modeled_seconds, no_views->modeled_seconds,
                views->modeled_seconds,
                static_cast<long long>(single->inferred));
    json_rows.push_back({paper_count, single->modeled_seconds,
                         no_views->modeled_seconds, views->modeled_seconds,
                         single->inferred});
  }
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig6c_mpp_views\",\n  \"scale\": %g,\n"
                 "  \"segments\": %d,\n  \"rows\": [\n",
                 scale, kSegments);
    for (size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& row = json_rows[i];
      std::fprintf(f,
                   "    {\"paper_facts\": %lld, \"probkb_s\": %g, "
                   "\"probkb_pn_s\": %g, \"probkb_p_s\": %g, "
                   "\"inferred\": %lld}%s\n",
                   static_cast<long long>(row.paper_facts), row.probkb_s,
                   row.probkb_pn_s, row.probkb_p_s,
                   static_cast<long long>(row.inferred),
                   i + 1 == json_rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::printf(
      "\nShape target (paper, 10M facts): both MPP configurations beat "
      "single-node by >= 3.1x; views add up to 6.3x total. The speedup is "
      "sublinear in the 32 segments because intermediate results must be "
      "redistributed (Section 6.1.3).\n");
  return 0;
}
