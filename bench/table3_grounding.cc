// Table 3: Tuffy-T vs ProbKB vs ProbKB-p on the ReVerb-Sherlock KB —
// bulk-load time, four grounding iterations (Query 1), and factor
// construction (Query 2), plus result sizes.
//
// Reported numbers are "modeled" = measured engine time + a per-SQL-
// statement overhead charged identically to all systems (see DESIGN.md);
// raw measured engine time follows in parentheses. ProbKB-p times are the
// shared-nothing simulator's simulated elapsed time (32 segments).

//
// `--oracle` runs a correctness cross-check instead of the benchmark: the
// MPP grounding is executed twice, once on the in-process simulator and
// once on the forked-worker process runtime, and the gathered TPi / TPhi
// tables must be bit-identical (exit 1 otherwise). CI's smoke job uses it
// to certify that the process runtime is a transport change, not a
// semantics change.
//
// Out-of-core flags:
//   --scale-facts N    extend the generated KB to N facts (ScaleKbFacts;
//                      power-law relation/entity usage) before grounding
//   --mem-budget SIZE  grounding memory budget (e.g. 64M); over-budget
//                      joins take the grace-hash spill path
//   --spill-dir DIR    spill-file directory (default: system temp)
//   --oocore-check     correctness mode instead of the benchmark: grounds
//                      once in memory, then under the budget at 1/2/4/8
//                      threads, and the TPi / TPhi tables must be
//                      bit-identical (exit 1 otherwise; also fails if the
//                      budgeted run never spilled)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "obs/stats_registry.h"
#include "runtime/process_runtime.h"
#include "tuffy/tuffy_grounder.h"
#include "util/mem_budget.h"
#include "util/timer.h"

namespace {

using namespace probkb;

struct PhaseResult {
  double modeled = 0;
  double measured = 0;
};

struct SystemRun {
  std::string name;
  PhaseResult load;
  std::vector<PhaseResult> iterations;
  PhaseResult query2;
  std::vector<int64_t> result_sizes;  // atoms after each iteration
  int64_t factors = 0;
};

void PrintColumn(const PhaseResult& phase) {
  std::printf(" %9.2fs (%8.3fs)", phase.modeled, phase.measured);
}

bool TablesIdentical(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows()) return false;
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!a.row(i).Equals(b.row(i))) return false;
  }
  return true;
}

/// Sim-vs-process bit-identity oracle: grounds the KB on both segment
/// runtimes and compares the gathered outputs row for row.
int RunOracle(const KnowledgeBase& kb, const GroundingOptions& options) {
  int failures = 0;
  for (int segments : {2, 4}) {
    RelationalKB rkb_sim = BuildRelationalModel(kb);
    MppGrounder sim(rkb_sim, segments, MppMode::kViews, options);
    if (!sim.GroundAtoms().ok()) return 1;
    auto phi_sim = sim.GroundFactors();
    if (!phi_sim.ok()) return 1;
    TablePtr tpi_sim = sim.GatherTPi();

    ProcessRuntimeOptions runtime_options;
    runtime_options.num_segments = segments;
    ProcessRuntime runtime(runtime_options);
    if (auto st = runtime.Spawn(); !st.ok()) {
      std::fprintf(stderr, "oracle: %s\n", st.ToString().c_str());
      return 1;
    }
    RelationalKB rkb_proc = BuildRelationalModel(kb);
    MppGrounder proc(rkb_proc, segments, MppMode::kViews, options);
    proc.AttachRuntime(&runtime);
    if (!proc.GroundAtoms().ok()) return 1;
    auto phi_proc = proc.GroundFactors();
    if (!phi_proc.ok()) return 1;
    TablePtr tpi_proc = proc.GatherTPi();
    runtime.Shutdown();

    const bool tpi_ok = TablesIdentical(*tpi_sim, *tpi_proc);
    const bool phi_ok = TablesIdentical(**phi_sim, **phi_proc);
    if (!tpi_ok || !phi_ok) ++failures;
    std::printf(
        "oracle segments=%d: %lld atoms, %lld factors, %lld frames "
        "shipped -> TPi %s, TPhi %s\n",
        segments, static_cast<long long>(tpi_sim->NumRows()),
        static_cast<long long>((*phi_sim)->NumRows()),
        static_cast<long long>(runtime.stats().frames_shipped),
        tpi_ok ? "identical" : "DIVERGED", phi_ok ? "identical" : "DIVERGED");
  }
  if (failures == 0) {
    std::printf("oracle: process runtime is bit-identical to the simulator\n");
  }
  return failures == 0 ? 0 : 1;
}

/// Out-of-core bit-identity oracle: grounds the KB once fully in memory,
/// then under `budget_bytes` at 1/2/4/8 threads; every budgeted run must
/// reproduce the in-memory TPi and TPhi byte for byte *and* actually
/// spill (otherwise the budget was too loose to exercise the grace path).
int RunOutOfCoreCheck(const KnowledgeBase& kb, GroundingOptions base,
                      int64_t budget_bytes, const std::string& spill_dir) {
  base.spill_dir = spill_dir;

  GroundingOptions in_mem = base;
  in_mem.mem_budget_bytes = 0;
  in_mem.num_threads = 1;
  RelationalKB rkb_ref = BuildRelationalModel(kb);
  Grounder reference(&rkb_ref, in_mem);
  if (!reference.GroundAtoms().ok()) return 1;
  auto phi_ref = reference.GroundFactors();
  if (!phi_ref.ok()) return 1;
  std::printf("oocore reference (in-memory): %lld atoms, %lld factors\n",
              static_cast<long long>(rkb_ref.t_pi->NumRows()),
              static_cast<long long>((*phi_ref)->NumRows()));

  int failures = 0;
  for (int threads : {1, 2, 4, 8}) {
    GroundingOptions budgeted = base;
    budgeted.mem_budget_bytes = budget_bytes;
    budgeted.num_threads = threads;
    StatsRegistry registry;
    RelationalKB rkb = BuildRelationalModel(kb);
    Grounder grounder(&rkb, budgeted);
    grounder.set_stats_registry(&registry);
    if (!grounder.GroundAtoms().ok()) return 1;
    auto phi = grounder.GroundFactors();
    if (!phi.ok()) return 1;
    const bool tpi_ok = TablesIdentical(*rkb_ref.t_pi, *rkb.t_pi);
    const bool phi_ok = TablesIdentical(**phi_ref, **phi);
    const long long spilled =
        static_cast<long long>(registry.FindCounter("spill_bytes_written"));
    const bool spilled_ok = spilled > 0;
    if (!tpi_ok || !phi_ok || !spilled_ok) ++failures;
    std::printf(
        "oocore threads=%d budget=%s: %lld spill bytes -> TPi %s, TPhi %s%s\n",
        threads, FormatByteSize(budget_bytes).c_str(), spilled,
        tpi_ok ? "identical" : "DIVERGED", phi_ok ? "identical" : "DIVERGED",
        spilled_ok ? "" : " [no spill — budget too loose]");
  }
  if (failures == 0) {
    std::printf(
        "oocore: budgeted grace-hash grounding is bit-identical to the "
        "in-memory path\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  const std::string stats_json_path =
      bench::ArgValue(argc, argv, "--stats_json");
  const double scale = bench::BenchScale();
  const double stmt = bench::StatementSeconds();
  const int kIterations = 4;
  const int kSegments = 32;

  bench::PrintHeader("Table 3: grounding the ReVerb-Sherlock KB");
  std::printf(
      "scale=%.3f, statement overhead=%.1fms, %d segments for ProbKB-p\n",
      scale, stmt * 1e3, kSegments);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    std::fprintf(stderr, "%s\n", skb.status().ToString().c_str());
    return 1;
  }

  // Out-of-core knobs (see header comment).
  const std::string scale_facts_arg = bench::ArgValue(argc, argv, "--scale-facts");
  if (!scale_facts_arg.empty()) {
    const int64_t target = std::atoll(scale_facts_arg.c_str());
    if (auto st = ScaleKbFacts(&skb->kb, target, /*seed=*/config.seed + 1);
        !st.ok()) {
      std::fprintf(stderr, "--scale-facts: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("scaled KB to %zu facts (--scale-facts %lld)\n",
                skb->kb.facts().size(), static_cast<long long>(target));
  }
  int64_t mem_budget = -1;  // inherit Tunables / PROBKB_MEM_BUDGET
  const std::string mem_budget_arg = bench::ArgValue(argc, argv, "--mem-budget");
  if (!mem_budget_arg.empty()) {
    auto bytes = ParseByteSize(mem_budget_arg);
    if (!bytes.ok() || *bytes < 0) {
      std::fprintf(stderr, "--mem-budget wants a size like 64M or 2G\n");
      return 1;
    }
    mem_budget = *bytes;
  }
  const std::string spill_dir = bench::ArgValue(argc, argv, "--spill-dir");

  if (bench::HasFlag(argc, argv, "--oracle")) {
    GroundingOptions oracle_options;
    oracle_options.max_iterations = kIterations;
    return RunOracle(skb->kb, oracle_options);
  }

  if (bench::HasFlag(argc, argv, "--oocore-check")) {
    GroundingOptions check_options;
    check_options.max_iterations = kIterations;
    // A budget must be explicit here: the check's whole point is to force
    // the spill path, so default to a deliberately tight 32M.
    const int64_t budget = mem_budget > 0 ? mem_budget : 32LL << 20;
    return RunOutOfCoreCheck(skb->kb, check_options, budget, spill_dir);
  }

  // "We run Query 3 once before inference starts and do not perform any
  // further quality control during inference" (Section 6.1.1).
  KnowledgeBase kb = skb->kb;
  {
    RelationalKB rkb = BuildRelationalModel(kb);
    Grounder pre(&rkb, GroundingOptions{});
    auto deleted = pre.ApplyConstraints();
    if (!deleted.ok()) return 1;
    std::vector<Fact> cleaned;
    cleaned.reserve(static_cast<size_t>(rkb.t_pi->NumRows()));
    for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
      cleaned.push_back(FactFromRow(rkb.t_pi->row(i)));
    }
    std::printf("Query 3 removed %lld facts up front; %zu remain\n",
                static_cast<long long>(*deleted), cleaned.size());
    *kb.mutable_facts() = std::move(cleaned);
  }

  GroundingOptions options;
  options.max_iterations = kIterations;
  options.mem_budget_bytes = mem_budget;
  options.spill_dir = spill_dir;
  std::vector<SystemRun> runs;

  // Execution-stats registries for the two ProbKB systems, attached only
  // when `--stats_json` (or PROBKB_TRACE) asks for them so the default
  // bench numbers stay instrumentation-free.
  StatsRegistry mpp_registry;
  StatsRegistry single_registry;
  const bool want_stats =
      !stats_json_path.empty() || mpp_registry.trace_enabled();

  // --- ProbKB-p (MPP simulator with views) ----------------------------------
  {
    SystemRun run;
    run.name = "ProbKB-p";
    Timer timer;
    RelationalKB rkb = BuildRelationalModel(kb);
    MppGrounder grounder(rkb, kSegments, MppMode::kViews, options);
    if (want_stats) grounder.set_stats_registry(&mpp_registry);
    // Loading distributes one facts table (+ views); one COPY statement.
    run.load = {timer.Seconds() / kSegments + 2 * stmt, timer.Seconds()};
    int64_t prev_stmts = 0;
    for (int iter = 0; iter < kIterations; ++iter) {
      auto added = grounder.GroundAtomsIteration();
      if (!added.ok()) return 1;
      double secs = grounder.stats().iteration_seconds.back();
      int64_t stmts = grounder.stats().statements - prev_stmts;
      prev_stmts = grounder.stats().statements;
      run.iterations.push_back(
          {secs + static_cast<double>(stmts) * stmt, secs});
      run.result_sizes.push_back(grounder.GatherTPi()->NumRows());
    }
    double before = grounder.cost().simulated_seconds();
    auto phi = grounder.GroundFactors();
    if (!phi.ok()) return 1;
    double q2 = grounder.cost().simulated_seconds() - before;
    int64_t stmts = grounder.stats().statements - prev_stmts;
    run.query2 = {q2 + static_cast<double>(stmts) * stmt, q2};
    run.factors = (*phi)->NumRows();
    runs.push_back(std::move(run));
  }

  // --- ProbKB (single node) ---------------------------------------------------
  {
    SystemRun run;
    run.name = "ProbKB";
    Timer timer;
    RelationalKB rkb = BuildRelationalModel(kb);
    run.load = {timer.Seconds() + 2 * stmt, timer.Seconds()};
    Grounder grounder(&rkb, options);
    if (want_stats) grounder.set_stats_registry(&single_registry);
    int64_t prev_stmts = 0;
    for (int iter = 0; iter < kIterations; ++iter) {
      auto added = grounder.GroundAtomsIteration();
      if (!added.ok()) return 1;
      double secs = grounder.stats().iteration_seconds.back();
      int64_t stmts = grounder.stats().statements - prev_stmts;
      prev_stmts = grounder.stats().statements;
      run.iterations.push_back(
          {secs + static_cast<double>(stmts) * stmt, secs});
      run.result_sizes.push_back(rkb.t_pi->NumRows());
    }
    Timer q2_timer;
    auto phi = grounder.GroundFactors();
    if (!phi.ok()) return 1;
    double q2 = q2_timer.Seconds();
    int64_t stmts = grounder.stats().statements - prev_stmts;
    run.query2 = {q2 + static_cast<double>(stmts) * stmt, q2};
    run.factors = (*phi)->NumRows();
    runs.push_back(std::move(run));
  }

  // --- Tuffy-T -----------------------------------------------------------------
  {
    SystemRun run;
    run.name = "Tuffy-T";
    TuffyGrounder grounder(kb, options);
    Timer timer;
    if (!grounder.Load().ok()) return 1;
    double load = timer.Seconds();
    run.load = {load + static_cast<double>(grounder.stats().statements) *
                           stmt,
                load};
    int64_t prev_stmts = grounder.stats().statements;
    for (int iter = 0; iter < kIterations; ++iter) {
      auto added = grounder.GroundAtomsIteration();
      if (!added.ok()) return 1;
      double secs = grounder.stats().iteration_seconds.back();
      int64_t stmts = grounder.stats().statements - prev_stmts;
      prev_stmts = grounder.stats().statements;
      run.iterations.push_back(
          {secs + static_cast<double>(stmts) * stmt, secs});
      run.result_sizes.push_back(grounder.ToTPi()->NumRows());
    }
    Timer q2_timer;
    auto phi = grounder.GroundFactors();
    if (!phi.ok()) return 1;
    double q2 = q2_timer.Seconds();
    int64_t stmts = grounder.stats().statements - prev_stmts;
    run.query2 = {q2 + static_cast<double>(stmts) * stmt, q2};
    run.factors = (*phi)->NumRows();
    runs.push_back(std::move(run));
  }

  // --- Report ------------------------------------------------------------------
  std::printf("\n%-14s", "Queries");
  for (const auto& run : runs) std::printf(" %22s", run.name.c_str());
  std::printf("\n%-14s", "Load");
  for (const auto& run : runs) PrintColumn(run.load);
  for (int iter = 0; iter < kIterations; ++iter) {
    std::printf("\nQuery1 iter %d ", iter + 1);
    for (const auto& run : runs) {
      PrintColumn(run.iterations[static_cast<size_t>(iter)]);
    }
  }
  std::printf("\n%-14s", "Query 2");
  for (const auto& run : runs) PrintColumn(run.query2);
  std::printf("\n\nResult sizes (atoms after each iteration / factors):\n");
  for (const auto& run : runs) {
    std::printf("  %-10s", run.name.c_str());
    for (int64_t n : run.result_sizes) {
      std::printf(" %10lld", static_cast<long long>(n));
    }
    std::printf("  | %lld factors\n", static_cast<long long>(run.factors));
  }

  // Headline ratios (paper: load ~607x; Query-1 iterations >100x by iter
  // 2-4; ProbKB-p speedup 4x over ProbKB).
  auto total = [](const SystemRun& run) {
    double t = 0;
    for (const auto& i : run.iterations) t += i.modeled;
    return t;
  };
  std::printf(
      "\nLoad ratio Tuffy-T/ProbKB: %.0fx | Query1 ratio Tuffy-T/ProbKB: "
      "%.1fx | ProbKB/ProbKB-p: %.1fx\n",
      runs[2].load.modeled / runs[1].load.modeled,
      total(runs[2]) / total(runs[1]), total(runs[1]) / total(runs[0]));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"table3_grounding\",\n"
                 "  \"scale\": %g,\n  \"statement_ms\": %g,\n"
                 "  \"segments\": %d,\n  \"systems\": [\n",
                 scale, stmt * 1e3, kSegments);
    for (size_t i = 0; i < runs.size(); ++i) {
      const SystemRun& run = runs[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"load_modeled_s\": %g, "
                   "\"load_measured_s\": %g,\n     \"query1_modeled_s\": [",
                   run.name.c_str(), run.load.modeled, run.load.measured);
      for (size_t j = 0; j < run.iterations.size(); ++j) {
        std::fprintf(f, "%s%g", j == 0 ? "" : ", ",
                     run.iterations[j].modeled);
      }
      std::fprintf(f, "],\n     \"query1_measured_s\": [");
      for (size_t j = 0; j < run.iterations.size(); ++j) {
        std::fprintf(f, "%s%g", j == 0 ? "" : ", ",
                     run.iterations[j].measured);
      }
      std::fprintf(f, "],\n     \"query2_modeled_s\": %g, \"atoms\": [",
                   run.query2.modeled);
      for (size_t j = 0; j < run.result_sizes.size(); ++j) {
        std::fprintf(f, "%s%lld", j == 0 ? "" : ", ",
                     static_cast<long long>(run.result_sizes[j]));
      }
      std::fprintf(f, "], \"factors\": %lld}%s\n",
                   static_cast<long long>(run.factors),
                   i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!stats_json_path.empty()) {
    std::FILE* f = std::fopen(stats_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", stats_json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"table3_grounding\",\n  \"systems\": {\n"
                 "    \"ProbKB-p\": %s,\n    \"ProbKB\": %s\n  }\n}\n",
                 mpp_registry.ToJson().c_str(),
                 single_registry.ToJson().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", stats_json_path.c_str());
  }
  if (want_stats) {
    // With PROBKB_TRACE set, the (richer) MPP run's spans win the file.
    if (auto st = mpp_registry.WriteTraceIfEnabled(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
