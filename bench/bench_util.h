#ifndef PROBKB_BENCH_BENCH_UTIL_H_
#define PROBKB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace probkb {
namespace bench {

/// Peak resident set size of this process in bytes, or 0 when unknown.
/// Prefers VmHWM from /proc/self/status (resettable, see TryResetPeakRss);
/// falls back to getrusage's lifetime ru_maxrss.
inline long long PeakRssBytes() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    long long kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb > 0) return kb * 1024;
  }
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) return ru.ru_maxrss * 1024LL;
#endif
  return 0;
}

/// Resets the kernel's high-water-mark RSS counter so PeakRssBytes()
/// measures only the workload that follows. Returns false (and leaves the
/// counter alone) where /proc/self/clear_refs is unavailable — callers then
/// get a whole-process peak, which is still an upper bound.
inline bool TryResetPeakRss() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    const bool ok = std::fputs("5", f) >= 0;
    std::fclose(f);
    return ok;
  }
#endif
  return false;
}

/// Default fraction of ReVerb-Sherlock scale the benchmarks run at; a
/// single core grinds the full 407K-fact / 31K-rule workload too slowly
/// for CI, so the harness scales the workloads and reports the scaled
/// paper targets alongside. Override with PROBKB_BENCH_SCALE.
inline double BenchScale(double fallback = 0.02) {
  const char* env = std::getenv("PROBKB_BENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Modelled per-SQL-statement overhead (parse/plan/round trip) charged to
/// every statement of *both* systems; see DESIGN.md. The default, 5 ms, is
/// in the range of a PostgreSQL statement round trip against an 80K-table
/// catalog. Override with PROBKB_BENCH_STMT_MS (0 disables).
inline double StatementSeconds() {
  const char* env = std::getenv("PROBKB_BENCH_STMT_MS");
  if (env != nullptr) return std::atof(env) * 1e-3;
  return 5e-3;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Value of `<flag> <value>` on a bench runner's command line, or "" when
/// absent.
inline std::string ArgValue(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return "";
}

/// True when a bare `<flag>` is present on a bench runner's command line.
inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Path given via `--json <path>` on a bench runner's command line, or ""
/// when absent. Runners that support it dump their measurements as a JSON
/// document alongside the human-readable report, so CI can track perf over
/// time.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  return ArgValue(argc, argv, "--json");
}

}  // namespace bench
}  // namespace probkb

#endif  // PROBKB_BENCH_BENCH_UTIL_H_
