// Figure 6(b): grounding time vs number of facts (workload S2 — the
// Sherlock-scale rule set stays fixed, facts grow from 100K to 10M,
// scaled, by adding random edges). One iteration + factors per point.

#include <cstdio>
#include <vector>

#include "bench/perf_common.h"

int main() {
  using namespace probkb;
  using namespace probkb::bench;
  const double scale = BenchScale();
  const int kSegments = 32;
  PrintHeader("Figure 6(b): runtime vs #facts (S2)");
  std::printf("scale=%.3f; paper sweep 100K..10M facts scaled accordingly\n",
              scale);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;

  const std::vector<int64_t> paper_facts = {100000, 2000000, 5000000,
                                            10000000};
  std::printf("\n%12s %12s | %12s %12s %12s | %10s\n", "paper #facts",
              "#facts", "Tuffy-T(s)", "ProbKB(s)", "ProbKB-p(s)",
              "#inferred");

  for (int64_t paper_count : paper_facts) {
    int64_t target =
        std::max<int64_t>(64, static_cast<int64_t>(paper_count * scale));
    KnowledgeBase kb = skb->kb;
    if (static_cast<int64_t>(kb.facts().size()) > target) {
      kb.mutable_facts()->resize(static_cast<size_t>(target));
    } else if (auto st = AddRandomFacts(&kb, target, 778); !st.ok()) {
      std::fprintf(stderr, "S2: %s\n", st.ToString().c_str());
      return 1;
    }

    auto tuffy = RunTuffyOnce(kb);
    auto probkb = RunProbKbOnce(kb);
    auto mpp = RunMppOnce(kb, kSegments, MppMode::kViews);
    if (!tuffy.ok() || !probkb.ok() || !mpp.ok()) return 1;
    std::printf("%12lld %12zu | %12.2f %12.2f %12.2f | %10lld\n",
                static_cast<long long>(paper_count), kb.facts().size(),
                tuffy->modeled_seconds, probkb->modeled_seconds,
                mpp->modeled_seconds,
                static_cast<long long>(probkb->inferred));
  }
  std::printf(
      "\nShape target (paper, 10M facts): ProbKB-p ~237x faster than "
      "Tuffy-T; all systems grow with the fact count.\n");
  return 0;
}
