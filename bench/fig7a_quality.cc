// Figure 7(a) (+ Table 4): precision of inferred facts under the six
// quality-control configurations — {no semantic constraints, semantic
// constraints} x rule-cleaning thresholds. For each configuration we run
// grounding iteration by iteration, evaluating cumulative precision and
// the estimated number of correct facts (the paper's two axes) after each
// step. The paper estimates precision from human-judged samples; we use
// the generator's ground truth (DESIGN.md).
//
// Like the paper, the unconstrained configurations hit a computation
// budget: their KBs grow so fast that grounding cannot be finished
// (Section 6.2.2 — iteration 4 alone took 10 minutes and iteration 5 was
// infeasible). We stop a configuration once TPi exceeds a growth budget.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "quality/rule_cleaning.h"

namespace {

using namespace probkb;

struct Config {
  const char* name;
  bool semantic_constraints;
  double theta;
};

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  bench::PrintHeader("Figure 7(a): precision of inferred facts");
  std::printf("scale=%.3f\n", scale);

  SyntheticKbConfig kb_config;
  kb_config.scale = scale;
  auto skb = GenerateReverbSherlockKb(kb_config);
  if (!skb.ok()) return 1;
  std::printf("%s\n", skb->kb.StatsString().c_str());

  // Paper Table 4: G1 = no-SC x {1, 20%, 10%}; G2 = SC x {1, 50%, 20%}.
  const std::vector<Config> configs = {
      {"no-SC no-RC", false, 1.0}, {"RC top 20%", false, 0.2},
      {"RC top 10%", false, 0.1},  {"SC only", true, 1.0},
      {"SC RC 50%", true, 0.5},    {"SC RC 20%", true, 0.2},
  };
  const int kMaxIterations = 12;
  // Growth budget emulating the paper's infeasible unconstrained runs.
  const int64_t kAtomBudget =
      static_cast<int64_t>(skb->kb.facts().size()) * 2;

  std::printf("\n%-14s %4s %10s %10s %10s\n", "config", "iter", "#inferred",
              "#correct", "precision");
  struct Summary {
    const char* name;
    PrecisionReport report;
    bool budget_exceeded;
    int iterations;
  };
  std::vector<Summary> summaries;

  for (const Config& config : configs) {
    KnowledgeBase kb = skb->kb;
    *kb.mutable_rules() = TopThetaRules(kb.rules(), config.theta);
    RelationalKB rkb = BuildRelationalModel(kb);
    GroundingOptions options;
    options.max_iterations = kMaxIterations;
    options.apply_constraints_each_iteration = config.semantic_constraints;
    Grounder grounder(&rkb, options);
    if (config.semantic_constraints) {
      auto deleted = grounder.ApplyConstraints();
      if (!deleted.ok()) return 1;
    }
    bool budget_exceeded = false;
    int iterations = 0;
    PrecisionReport last;
    for (int iter = 0; iter < kMaxIterations; ++iter) {
      auto added = grounder.GroundAtomsIteration();
      if (!added.ok()) return 1;
      ++iterations;
      PrecisionReport report = EvaluateInferred(*rkb.t_pi, skb->truth);
      std::printf("%-14s %4d %10lld %10lld %10.3f\n", config.name, iter + 1,
                  static_cast<long long>(report.inferred),
                  static_cast<long long>(report.correct), report.precision);
      bool no_new_correct = report.correct == last.correct && iter > 0;
      last = report;
      if (*added == 0 || no_new_correct) break;
      if (rkb.t_pi->NumRows() > kAtomBudget) {
        budget_exceeded = true;
        std::printf("%-14s      computation budget exceeded "
                    "(KB grew past %lld atoms), stopping\n",
                    config.name, static_cast<long long>(kAtomBudget));
        break;
      }
    }
    summaries.push_back({config.name, last, budget_exceeded, iterations});
  }

  std::printf("\nFinal results (paper targets in parentheses):\n");
  const char* paper[] = {"0.14 @ 4.8K",  "~0.6 @ ~6K",  "0.72 @ 10.0K",
                         "0.55 @ 23.2K", "0.65 @ 22.7K", "0.75 @ 16.4K"};
  for (size_t i = 0; i < summaries.size(); ++i) {
    const Summary& s = summaries[i];
    std::printf("  %-14s precision %.2f with %lld correct facts%s "
                "(paper: %s)\n",
                s.name, s.report.precision,
                static_cast<long long>(s.report.correct),
                s.budget_exceeded ? " [stopped: budget]" : "", paper[i]);
  }
  return 0;
}
