// Ablation: naive vs semi-naive fixpoint evaluation. The paper's SQL
// grounding re-joins the *entire* TPi every iteration (naive evaluation);
// the classic Datalog delta optimization joins only last iteration's new
// atoms. This bench quantifies the per-iteration cost difference at the
// same closure.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"

int main() {
  using namespace probkb;
  const double scale = bench::BenchScale();
  bench::PrintHeader("Ablation: naive vs semi-naive evaluation");
  std::printf("scale=%.3f\n", scale);

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) return 1;
  std::printf("%s\n\n", skb->kb.StatsString().c_str());

  GroundingStats stats[2];
  int64_t final_atoms[2] = {0, 0};
  for (EvaluationMode mode :
       {EvaluationMode::kNaive, EvaluationMode::kSemiNaive}) {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 10;
    options.evaluation = mode;
    Grounder grounder(&rkb, options);
    if (!grounder.GroundAtoms().ok()) return 1;
    stats[mode == EvaluationMode::kSemiNaive] = grounder.stats();
    final_atoms[mode == EvaluationMode::kSemiNaive] = rkb.t_pi->NumRows();
  }

  if (final_atoms[0] != final_atoms[1]) {
    std::fprintf(stderr, "closure mismatch: %lld vs %lld\n",
                 static_cast<long long>(final_atoms[0]),
                 static_cast<long long>(final_atoms[1]));
    return 1;
  }

  std::printf("%6s %14s %14s\n", "iter", "naive (ms)", "semi-naive (ms)");
  size_t iterations =
      std::max(stats[0].iteration_seconds.size(),
               stats[1].iteration_seconds.size());
  for (size_t i = 0; i < iterations; ++i) {
    auto at = [&](const GroundingStats& s) {
      return i < s.iteration_seconds.size() ? s.iteration_seconds[i] * 1e3
                                            : 0.0;
    };
    std::printf("%6zu %14.2f %14.2f\n", i + 1, at(stats[0]), at(stats[1]));
  }
  std::printf(
      "\ntotal: naive %.3fs, semi-naive %.3fs (%.2fx) at identical closure "
      "of %lld atoms\n",
      stats[0].ground_atoms_seconds, stats[1].ground_atoms_seconds,
      stats[0].ground_atoms_seconds / stats[1].ground_atoms_seconds,
      static_cast<long long>(final_atoms[0]));
  std::printf(
      "\nFinding: for ProbKB's batch-query shape the delta rewrite does "
      "not pay — each length-3 query's cost is dominated by the hash "
      "builds over the full TPi, which both probe orders of the semi-naive "
      "rewrite still need. This supports the paper's choice of naive "
      "re-evaluation in Algorithm 1.\n");
  return 0;
}
