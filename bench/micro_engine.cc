// Micro-benchmarks of the substrate operators (google-benchmark): the
// set-oriented primitives whose batch execution underlies the Section
// 4.3.1 analysis, plus the motion operators of the MPP simulator and a
// Gibbs sweep.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "engine/flat_hash.h"
#include "engine/ops.h"
#include "engine/plan.h"
#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "datagen/synthetic_kb.h"
#include "infer/gibbs.h"
#include "mpp/mpp_context.h"
#include "util/random.h"

namespace probkb {
namespace {

Schema AB() {
  return Schema({{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
}

TablePtr RandomTable(int64_t rows, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  auto t = Table::Make(AB());
  t->ReserveRows(rows);
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({Value::Int64(rng.UniformInt(0, domain)),
                  Value::Int64(rng.UniformInt(0, domain))});
  }
  return t;
}

void BM_HashJoin(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto left = RandomTable(rows, rows / 4, 1);
  auto right = RandomTable(rows, rows / 4, 2);
  for (auto _ : state) {
    ExecContext ctx;
    auto plan = HashJoin(Scan(left), Scan(right), {0}, {0}, JoinType::kInner,
                         {JoinOutputCol::Left(1, "lb"),
                          JoinOutputCol::Right(1, "rb")});
    auto result = plan->Execute(&ctx);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_HashJoin)->Arg(1 << 12)->Arg(1 << 15);

void BM_HashDistinct(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto t = RandomTable(rows, rows / 8, 3);
  for (auto _ : state) {
    ExecContext ctx;
    auto result = Distinct(Scan(t))->Execute(&ctx);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashDistinct)->Arg(1 << 12)->Arg(1 << 15);

void BM_HashAggregate(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto t = RandomTable(rows, 256, 4);
  for (auto _ : state) {
    ExecContext ctx;
    auto result = Aggregate(Scan(t), {0},
                            {{AggKind::kCount, 0, "cnt"},
                             {AggKind::kMax, 1, "max"}})
                      ->Execute(&ctx);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashAggregate)->Arg(1 << 12)->Arg(1 << 15);

void BM_SetUnionInto(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto src = RandomTable(rows, rows / 2, 5);
  for (auto _ : state) {
    state.PauseTiming();
    auto dst = RandomTable(rows, rows / 2, 6);
    state.ResumeTiming();
    int64_t added = SetUnionInto(dst.get(), *src, {0, 1});
    benchmark::DoNotOptimize(added);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SetUnionInto)->Arg(1 << 12)->Arg(1 << 15);

// The Reserve() contract of FlatRowIndex: sizing from the input
// cardinality up front skips every mid-build rehash. The pair below
// measures exactly what the SetUnionInto / KeyIndex pre-reserve fix buys.
void BM_FlatIndexInsertReserved(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto t = RandomTable(rows, rows / 2, 9);
  std::vector<size_t> hashes(static_cast<size_t>(rows));
  const std::vector<int> cols = {0, 1};
  for (int64_t i = 0; i < rows; ++i) {
    hashes[static_cast<size_t>(i)] = HashRowKey(t->row(i), cols);
  }
  for (auto _ : state) {
    FlatRowIndex index;
    index.Reserve(rows);
    for (int64_t i = 0; i < rows; ++i) {
      index.Insert(hashes[static_cast<size_t>(i)], i);
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_FlatIndexInsertReserved)->Arg(1 << 12)->Arg(1 << 15);

void BM_FlatIndexInsertUnreserved(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto t = RandomTable(rows, rows / 2, 9);
  std::vector<size_t> hashes(static_cast<size_t>(rows));
  const std::vector<int> cols = {0, 1};
  for (int64_t i = 0; i < rows; ++i) {
    hashes[static_cast<size_t>(i)] = HashRowKey(t->row(i), cols);
  }
  for (auto _ : state) {
    FlatRowIndex index;  // grows through every doubling
    for (int64_t i = 0; i < rows; ++i) {
      index.Insert(hashes[static_cast<size_t>(i)], i);
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_FlatIndexInsertUnreserved)->Arg(1 << 12)->Arg(1 << 15);

// Scalar vs batched-prefetch probe over the same prebuilt index: the pair
// isolates what the DRAMHiT-style pipeline (hash a batch, prefetch every
// home slot, then resolve serially) buys on an index too large for cache.
// Matches per probe and output order are identical in both variants.
void BM_ScalarProbe(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const std::vector<int> cols = {0, 1};
  auto build = RandomTable(rows, rows / 4, 10);
  auto probe = RandomTable(rows, rows / 4, 11);
  FlatRowIndex index(rows);
  {
    std::vector<size_t> hashes(static_cast<size_t>(rows));
    build->HashRows(cols, 0, rows, hashes.data());
    for (int64_t i = 0; i < rows; ++i) {
      index.Insert(hashes[static_cast<size_t>(i)], i);
    }
  }
  for (auto _ : state) {
    int64_t matches = 0;
    for (int64_t i = 0; i < rows; ++i) {
      RowView row = probe->row(i);
      const size_t h = HashRowKey(row, cols);
      for (int64_t e = index.Head(h); e >= 0; e = index.Next(e)) {
        if (RowKeyEquals(build->row(index.Row(e)), row, cols, cols)) {
          ++matches;
        }
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ScalarProbe)->Arg(1 << 15)->Arg(1 << 18);

void BM_BatchedPrefetchProbe(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const std::vector<int> cols = {0, 1};
  auto build = RandomTable(rows, rows / 4, 10);
  auto probe = RandomTable(rows, rows / 4, 11);
  FlatRowIndex index(rows);
  {
    std::vector<size_t> hashes(static_cast<size_t>(rows));
    build->HashRows(cols, 0, rows, hashes.data());
    for (int64_t i = 0; i < rows; ++i) {
      index.Insert(hashes[static_cast<size_t>(i)], i);
    }
  }
  constexpr int64_t kBatch = 32;
  size_t hashes[kBatch];
  for (auto _ : state) {
    int64_t matches = 0;
    for (int64_t base = 0; base < rows; base += kBatch) {
      const int64_t end = std::min(base + kBatch, rows);
      probe->HashRows(cols, base, end, hashes);
      for (int64_t i = base; i < end; ++i) {
        index.PrefetchHash(hashes[i - base]);
      }
      for (int64_t i = base; i < end; ++i) {
        const size_t h = hashes[i - base];
        RowView row = probe->row(i);
        for (int64_t e = index.Head(h); e >= 0; e = index.Next(e)) {
          if (RowKeyEquals(build->row(index.Row(e)), row, cols, cols)) {
            ++matches;
          }
        }
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_BatchedPrefetchProbe)->Arg(1 << 15)->Arg(1 << 18);

// Row-major vs columnar scan of the same table: the RowView facade
// materializes a Value per cell, the columnar loop reads the contiguous
// int64 array directly — the difference is the tax every batch loop in the
// engine stopped paying when Table went columnar.
void BM_ScanRowMajor(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto t = RandomTable(rows, rows, 12);
  for (auto _ : state) {
    int64_t sum = 0;
    for (int64_t i = 0; i < rows; ++i) {
      RowView row = t->row(i);
      sum += row[0].i64() + row[1].i64();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_ScanRowMajor)->Arg(1 << 15)->Arg(1 << 18);

void BM_ScanColumnar(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto t = RandomTable(rows, rows, 12);
  for (auto _ : state) {
    int64_t sum = 0;
    const int64_t* a = t->Int64Data(0);
    const int64_t* b = t->Int64Data(1);
    for (int64_t i = 0; i < rows; ++i) sum += a[i] + b[i];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_ScanColumnar)->Arg(1 << 15)->Arg(1 << 18);

void BM_RedistributeMotion(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto local = RandomTable(rows, rows, 7);
  auto dist = DistributedTable::Distribute(*local, 32,
                                           Distribution::Random());
  for (auto _ : state) {
    MppContext ctx(32);
    auto result = ctx.Redistribute(*dist, {0});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_RedistributeMotion)->Arg(1 << 14);

void BM_BroadcastMotion(benchmark::State& state) {
  const int64_t rows = state.range(0);
  auto local = RandomTable(rows, rows, 8);
  auto dist = DistributedTable::Distribute(*local, 32,
                                           Distribution::Random());
  for (auto _ : state) {
    MppContext ctx(32);
    auto result = ctx.Broadcast(*dist);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_BroadcastMotion)->Arg(1 << 14);

void BM_GroundAtomsIteration(benchmark::State& state) {
  SyntheticKbConfig config;
  config.scale = 0.01;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    state.SkipWithError("generator failed");
    return;
  }
  for (auto _ : state) {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 1;
    Grounder grounder(&rkb, options);
    auto added = grounder.GroundAtomsIteration();
    benchmark::DoNotOptimize(added);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(skb->kb.facts().size()));
}
BENCHMARK(BM_GroundAtomsIteration);

void BM_GibbsSweep(benchmark::State& state) {
  SyntheticKbConfig config;
  config.scale = 0.005;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    state.SkipWithError("generator failed");
    return;
  }
  RelationalKB rkb = BuildRelationalModel(skb->kb);
  GroundingOptions options;
  options.max_iterations = 2;
  Grounder grounder(&rkb, options);
  if (!grounder.GroundAtoms().ok()) {
    state.SkipWithError("grounding failed");
    return;
  }
  auto phi = grounder.GroundFactors();
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
  for (auto _ : state) {
    GibbsOptions gibbs;
    gibbs.burn_in_sweeps = 0;
    gibbs.sample_sweeps = 1;
    auto result = GibbsMarginals(*graph, gibbs);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * graph->num_variables());
}
BENCHMARK(BM_GibbsSweep);

}  // namespace
}  // namespace probkb

BENCHMARK_MAIN();
