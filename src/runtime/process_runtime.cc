#include "runtime/process_runtime.h"

#include <signal.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "runtime/wire.h"
#include "util/logging.h"
#include "util/strings.h"

namespace probkb {

namespace {

/// Shared-memory worker journal: a fixed ring the worker writes and the
/// supervisor harvests after death. Lives in a MAP_SHARED|MAP_ANONYMOUS
/// mapping established before fork, so SIGKILL cannot take it down with
/// the worker.
struct JournalHeader {
  std::atomic<uint64_t> head;  // frames ever journaled by the worker
};

struct JournalSlot {
  int64_t motion = -1;
  int64_t bytes = 0;
  int32_t kind = 0;  // wire::FrameType of the handled request
  int32_t pad = 0;
  // Distributed-trace context copied from the handled frame (0 when the
  // frame was untraced) plus the worker's own CLOCK_MONOTONIC handling
  // interval: the supervisor harvests these into Tracer worker spans.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  int64_t start_us = 0;
  int64_t dur_us = 0;
};

JournalSlot* JournalSlots(void* journal) {
  return reinterpret_cast<JournalSlot*>(
      static_cast<JournalHeader*>(journal) + 1);
}

void JournalAppend(void* journal, int capacity, wire::FrameType kind,
                   int64_t motion, int64_t bytes, uint64_t trace_id = 0,
                   uint64_t parent_span = 0, int64_t start_us = 0,
                   int64_t dur_us = 0) {
  auto* header = static_cast<JournalHeader*>(journal);
  uint64_t head = header->head.load(std::memory_order_relaxed);
  JournalSlot& slot =
      JournalSlots(journal)[head % static_cast<uint64_t>(capacity)];
  slot.motion = motion;
  slot.bytes = bytes;
  slot.kind = static_cast<int32_t>(kind);
  slot.trace_id = trace_id;
  slot.parent_span = parent_span;
  slot.start_us = start_us;
  slot.dur_us = dur_us;
  header->head.store(head + 1, std::memory_order_release);
}

}  // namespace

const char* RuntimeKindName(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kSim:
      return "sim";
    case RuntimeKind::kProcess:
      return "process";
  }
  return "?";
}

bool ParseRuntimeKind(std::string_view text, RuntimeKind* out) {
  std::string lower(text);
  for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
  if (lower == "sim") {
    *out = RuntimeKind::kSim;
    return true;
  }
  if (lower == "process") {
    *out = RuntimeKind::kProcess;
    return true;
  }
  return false;
}

RuntimeKind ResolveRuntimeKind(const char* requested) {
  RuntimeKind kind = RuntimeKind::kSim;
  if (requested != nullptr) {
    if (!ParseRuntimeKind(StripWhitespace(requested), &kind)) {
      PROBKB_SLOG(Runtime, Warning)
          << "invalid --runtime value '" << requested
          << "' (want sim|process); using sim";
      return RuntimeKind::kSim;
    }
    return kind;
  }
  const char* env = std::getenv("PROBKB_RUNTIME");
  if (env != nullptr && env[0] != '\0') {
    if (!ParseRuntimeKind(StripWhitespace(env), &kind)) {
      PROBKB_SLOG(Runtime, Warning)
          << "invalid PROBKB_RUNTIME value '" << env
          << "' (want sim|process); using sim";
      return RuntimeKind::kSim;
    }
    return kind;
  }
  return RuntimeKind::kSim;
}

std::string ProcessRuntimeStats::ToString() const {
  return StrFormat(
      "exchanges=%lld frames=%lld frame_retries=%lld deaths=%lld "
      "respawns=%lld heartbeats=%lld",
      static_cast<long long>(exchanges), static_cast<long long>(frames_shipped),
      static_cast<long long>(frame_retries),
      static_cast<long long>(worker_deaths), static_cast<long long>(respawns),
      static_cast<long long>(heartbeats));
}

ProcessRuntime::ProcessRuntime(ProcessRuntimeOptions options)
    : options_(std::move(options)) {
  if (options_.num_segments < 1) options_.num_segments = 1;
  if (options_.journal_capacity < 1) options_.journal_capacity = 1;
}

ProcessRuntime::~ProcessRuntime() { Shutdown(); }

size_t ProcessRuntime::JournalBytes() const {
  return sizeof(JournalHeader) +
         static_cast<size_t>(options_.journal_capacity) * sizeof(JournalSlot);
}

void ProcessRuntime::WorkerMain(int fd, void* journal, int journal_capacity) {
  // Children never return into the supervisor's stack: no stdio, no flight
  // recorder, no exit handlers — just the wire loop and _exit.
  for (;;) {
    Result<wire::Frame> read = wire::ReadFrame(fd, /*deadline_seconds=*/0);
    if (!read.ok()) {
      if (read.status().code() == StatusCode::kDataLoss) {
        // Damaged inbound frame: journal the rejection and NACK so the
        // supervisor resends.
        JournalAppend(journal, journal_capacity, wire::FrameType::kNack, -1,
                      0);
        if (!wire::WriteFrame(fd, wire::FrameType::kNack, -1, {}).ok()) {
          _exit(2);
        }
        continue;
      }
      _exit(2);  // channel to the supervisor broke; nothing left to do
    }
    wire::Frame& frame = *read;
    // Worker-side handling interval, on the system-wide monotonic clock so
    // the supervisor can stitch it under its own spans without a skew map.
    const int64_t handled_at = Tracer::NowUs();
    switch (frame.type) {
      case wire::FrameType::kPing:
        JournalAppend(journal, journal_capacity, frame.type, frame.motion, 0,
                      frame.trace_id, frame.parent_span, handled_at, 0);
        if (!wire::WriteFrame(fd, wire::FrameType::kPong, frame.motion, {})
                 .ok()) {
          _exit(2);
        }
        break;
      case wire::FrameType::kExchange:
        JournalAppend(journal, journal_capacity, frame.type, frame.motion,
                      static_cast<int64_t>(frame.payload.size()),
                      frame.trace_id, frame.parent_span, handled_at,
                      Tracer::NowUs() - handled_at);
        // Echo the partition back: the supervisor deserializes the ack, so
        // every tuple of the motion provably crossed the process boundary
        // in both directions with its checksum intact.
        if (!wire::WriteFrame(fd, wire::FrameType::kExchangeAck, frame.motion,
                              frame.payload)
                 .ok()) {
          _exit(2);
        }
        break;
      case wire::FrameType::kShutdown:
        _exit(0);
      default:
        _exit(3);  // protocol violation; supervisor will respawn
    }
  }
}

Status ProcessRuntime::SpawnWorker(int segment, int64_t motion) {
  Worker& worker = workers_[static_cast<size_t>(segment)];
  void* journal = mmap(nullptr, JournalBytes(), PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (journal == MAP_FAILED) {
    return Status::Internal(std::string("worker journal mmap failed: ") +
                            std::strerror(errno));
  }
  std::memset(journal, 0, JournalBytes());
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    munmap(journal, JournalBytes());
    return Status::Internal(std::string("worker socketpair failed: ") +
                            std::strerror(errno));
  }
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    munmap(journal, JournalBytes());
    return Status::Internal(std::string("worker fork failed: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    close(fds[0]);
    // Drop every inherited supervisor-side channel so a sibling's peer
    // count reflects only the supervisor.
    for (const Worker& other : workers_) {
      if (other.fd >= 0) close(other.fd);
    }
    WorkerMain(fds[1], journal, options_.journal_capacity);
  }
  close(fds[1]);
  worker.pid = pid;
  worker.fd = fds[0];
  worker.journal = journal;
  worker.reaped = false;
  worker.wait_status = 0;
  worker.spans_harvested = 0;  // fresh journal, fresh harvest cursor
  FlightRecorder::Global()->Record(FrEvent::kWorkerSpawn, "", segment,
                                   worker.generation, motion);
  return Status::OK();
}

Status ProcessRuntime::Spawn() {
  if (alive_) return Status::OK();
  if (options_.fail_spawn_for_test) {
    return Status::Internal("worker spawn disabled (fail_spawn_for_test)");
  }
  workers_.assign(static_cast<size_t>(options_.num_segments), Worker{});
  for (int s = 0; s < options_.num_segments; ++s) {
    Status st = SpawnWorker(s, /*motion=*/-1);
    if (!st.ok()) {
      for (int t = 0; t < s; ++t) {
        if (!workers_[static_cast<size_t>(t)].reaped) {
          kill(workers_[static_cast<size_t>(t)].pid, SIGKILL);
          waitpid(workers_[static_cast<size_t>(t)].pid, nullptr, 0);
          workers_[static_cast<size_t>(t)].reaped = true;
        }
        TearDownWorker(t);
      }
      workers_.clear();
      return st;
    }
  }
  alive_ = true;
  return Status::OK();
}

void ProcessRuntime::HarvestSpans(int segment) {
  Worker& worker = workers_[static_cast<size_t>(segment)];
  if (worker.journal == nullptr) return;
  auto* header = static_cast<JournalHeader*>(worker.journal);
  const uint64_t head = header->head.load(std::memory_order_acquire);
  Tracer* tracer = Tracer::Global();
  if (!tracer->enabled()) {
    worker.spans_harvested = head;
    return;
  }
  const uint64_t capacity = static_cast<uint64_t>(options_.journal_capacity);
  uint64_t begin = worker.spans_harvested;
  // Ring wrap-around between harvests: the overwritten slots are gone,
  // pick the story back up at the oldest surviving entry.
  if (head > capacity && begin < head - capacity) begin = head - capacity;
  for (uint64_t i = begin; i < head; ++i) {
    const JournalSlot& slot = JournalSlots(worker.journal)[i % capacity];
    if (slot.trace_id == 0) continue;  // untraced frame (heartbeat, NACK)
    const char* kind = "frame";
    switch (static_cast<wire::FrameType>(slot.kind)) {
      case wire::FrameType::kExchange:
        kind = "exchange";
        break;
      case wire::FrameType::kPing:
        kind = "ping";
        break;
      case wire::FrameType::kNack:
        kind = "nack";
        break;
      default:
        break;
    }
    tracer->RecordWorkerSpan(slot.trace_id, slot.parent_span, slot.motion,
                             segment, kind, slot.bytes, slot.start_us,
                             slot.dur_us);
  }
  worker.spans_harvested = head;
}

void ProcessRuntime::HarvestJournal(int segment) {
  Worker& worker = workers_[static_cast<size_t>(segment)];
  if (worker.journal == nullptr) return;
  HarvestSpans(segment);
  auto* header = static_cast<JournalHeader*>(worker.journal);
  const uint64_t head = header->head.load(std::memory_order_acquire);
  int64_t last_motion = -1;
  if (head > 0) {
    last_motion =
        JournalSlots(worker.journal)
            [(head - 1) % static_cast<uint64_t>(options_.journal_capacity)]
                .motion;
  }
  FlightRecorder::Global()->Record(FrEvent::kWorkerPostMortem, "", segment,
                                   static_cast<int64_t>(head), last_motion);
}

void ProcessRuntime::TearDownWorker(int segment) {
  Worker& worker = workers_[static_cast<size_t>(segment)];
  if (worker.fd >= 0) {
    close(worker.fd);
    worker.fd = -1;
  }
  if (worker.journal != nullptr) {
    munmap(worker.journal, JournalBytes());
    worker.journal = nullptr;
  }
  worker.pid = -1;
}

Status ProcessRuntime::HandleWorkerFailure(int segment, int64_t motion,
                                           const char* reason,
                                           bool force_kill) {
  Worker& worker = workers_[static_cast<size_t>(segment)];
  if (!worker.reaped) {
    if (force_kill) kill(worker.pid, SIGKILL);
    // The channel broke (or the worker hung past its deadline and was just
    // killed), so this waitpid terminates promptly.
    waitpid(worker.pid, &worker.wait_status, 0);
    worker.reaped = true;
  }
  const int sig =
      WIFSIGNALED(worker.wait_status) ? WTERMSIG(worker.wait_status) : 0;
  ++stats_.worker_deaths;
  FlightRecorder::Global()->Record(FrEvent::kWorkerKilled, reason, segment,
                                   motion, sig);
  PROBKB_SLOG(Runtime, Warning)
      << "worker segment=" << segment << " died (" << reason
      << ", signal=" << sig << ") at motion " << motion << "; respawning";
  HarvestJournal(segment);
  TearDownWorker(segment);
  ++worker.generation;
  Status st = SpawnWorker(segment, motion);
  if (!st.ok()) {
    PROBKB_SLOG(Runtime, Error)
        << "worker segment=" << segment << " respawn failed: " << st;
    return st;
  }
  ++stats_.respawns;
  FlightRecorder::Global()->Record(FrEvent::kWorkerRespawn, "", segment,
                                   motion, worker.generation);
  return Status::OK();
}

Result<TablePtr> ProcessRuntime::Exchange(int segment, int64_t motion,
                                          const Table& rows,
                                          const std::string& label,
                                          int corrupt_frames) {
  if (!alive_) return Status::Internal("process runtime not spawned");
  if (segment < 0 || segment >= options_.num_segments) {
    return Status::InvalidArgument("exchange segment out of range");
  }
  std::string payload;
  wire::SerializeTable(rows, &payload);
  const int max_attempts = options_.retry.max_attempts > 0
                               ? options_.retry.max_attempts
                               : 1;
  StatusCode last_code = StatusCode::kResourceExhausted;
  std::string last_msg = "no attempt made";
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.frame_retries;
      FlightRecorder::Global()->Record(FrEvent::kFrameRetry, label, segment,
                                       motion, attempt);
    }
    const int fd = workers_[static_cast<size_t>(segment)].fd;
    ++stats_.frames_shipped;
    const bool corrupt = corrupt_frames > 0;
    if (corrupt) --corrupt_frames;
    // Propagate the supervisor's trace context (the enclosing ship span)
    // so the worker's journaled span lands under it when harvested.
    const Tracer::Context trace_ctx = Tracer::Global()->current_context();
    Status sent = wire::WriteFrame(fd, wire::FrameType::kExchange, motion,
                                   payload, corrupt, trace_ctx.trace_id,
                                   trace_ctx.span_id);
    if (!sent.ok()) {
      // EPIPE: the worker died before we could ship the frame.
      last_code = sent.code();
      last_msg = sent.message();
      PROBKB_RETURN_NOT_OK(
          HandleWorkerFailure(segment, motion, "send_failed", false));
      continue;
    }
    Result<wire::Frame> reply =
        wire::ReadFrame(fd, options_.frame_deadline_seconds);
    if (!reply.ok()) {
      last_code = reply.status().code();
      last_msg = reply.status().message();
      if (last_code == StatusCode::kDeadlineExceeded) {
        // Hung worker: kill it so recovery can proceed deterministically.
        PROBKB_RETURN_NOT_OK(
            HandleWorkerFailure(segment, motion, "deadline", true));
      } else if (last_code == StatusCode::kDataLoss) {
        // The ack itself arrived damaged; resend the whole round trip.
      } else {
        PROBKB_RETURN_NOT_OK(
            HandleWorkerFailure(segment, motion, "channel_broken", false));
      }
      continue;
    }
    if (reply->type == wire::FrameType::kNack) {
      last_code = StatusCode::kDataLoss;
      last_msg = "worker rejected damaged frame";
      continue;
    }
    if (reply->type != wire::FrameType::kExchangeAck ||
        reply->motion != motion) {
      last_code = StatusCode::kDataLoss;
      last_msg = "unexpected reply frame";
      continue;
    }
    ++stats_.exchanges;
    HarvestSpans(segment);
    return wire::DeserializeTable(rows.schema(), reply->payload);
  }
  std::string msg = StrFormat(
      "motion %lld exchange with segment %d exhausted %d attempts (%s): ",
      static_cast<long long>(motion), segment, max_attempts, label.c_str());
  msg += last_msg;
  // Persistent corruption is data loss; a worker that can never answer in
  // time is a deadline failure; anything else exhausted the retry budget.
  if (last_code == StatusCode::kDataLoss) return Status::DataLoss(msg);
  if (last_code == StatusCode::kDeadlineExceeded) {
    return Status::DeadlineExceeded(msg);
  }
  return Status::ResourceExhausted(msg);
}

Status ProcessRuntime::Ping(int segment) {
  if (!alive_) return Status::Internal("process runtime not spawned");
  const int fd = workers_[static_cast<size_t>(segment)].fd;
  PROBKB_RETURN_NOT_OK(
      wire::WriteFrame(fd, wire::FrameType::kPing, -1, {}));
  Result<wire::Frame> reply =
      wire::ReadFrame(fd, options_.frame_deadline_seconds);
  PROBKB_RETURN_NOT_OK(reply.status());
  if (reply->type != wire::FrameType::kPong) {
    return Status::Internal("heartbeat reply was not PONG");
  }
  return Status::OK();
}

void ProcessRuntime::HeartbeatTick(int64_t motion) {
  if (!alive_ || options_.heartbeat_every_motions <= 0) return;
  ++heartbeat_motions_;
  if (heartbeat_motions_ % options_.heartbeat_every_motions != 0) return;
  int alive_workers = 0;
  for (int s = 0; s < options_.num_segments; ++s) {
    Status st = Ping(s);
    if (!st.ok()) {
      const bool hung = st.code() == StatusCode::kDeadlineExceeded;
      if (!HandleWorkerFailure(s, motion, "heartbeat", hung).ok()) continue;
    }
    ++alive_workers;
  }
  ++stats_.heartbeats;
  FlightRecorder::Global()->Record(FrEvent::kWorkerHeartbeat, "", motion,
                                   alive_workers, options_.num_segments);
}

void ProcessRuntime::KillWorker(int segment) {
  if (!alive_ || segment < 0 || segment >= options_.num_segments) return;
  Worker& worker = workers_[static_cast<size_t>(segment)];
  if (worker.reaped || worker.pid < 0) return;
  kill(worker.pid, SIGKILL);
  waitpid(worker.pid, &worker.wait_status, 0);
  worker.reaped = true;
  // Deliberately no detection here: the next exchange or heartbeat that
  // contacts this segment finds the broken channel, exactly like an
  // organic crash.
}

void ProcessRuntime::Shutdown() {
  if (workers_.empty()) return;
  for (int s = 0; s < static_cast<int>(workers_.size()); ++s) {
    Worker& worker = workers_[static_cast<size_t>(s)];
    if (worker.pid < 0) continue;
    if (!worker.reaped) {
      if (worker.fd >= 0) {
        // Best-effort orderly exit; a dead worker just yields EPIPE.
        wire::WriteFrame(worker.fd, wire::FrameType::kShutdown, -1, {})
            .ok();
      }
      waitpid(worker.pid, &worker.wait_status, 0);
      worker.reaped = true;
    }
    // Every worker's ring lands in the supervisor's dump, so the final
    // post-mortem aggregates what each segment actually processed.
    HarvestJournal(s);
    TearDownWorker(s);
  }
  workers_.clear();
  alive_ = false;
}

}  // namespace probkb
