#ifndef PROBKB_RUNTIME_PROCESS_RUNTIME_H_
#define PROBKB_RUNTIME_PROCESS_RUNTIME_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Which segment runtime executes behind the MppContext motion
/// contract: the deterministic in-process simulator, or real forked worker
/// processes supervised over Unix-domain sockets.
enum class RuntimeKind { kSim = 0, kProcess = 1 };

const char* RuntimeKindName(RuntimeKind kind);

/// \brief Parses "sim" / "process" (case-insensitive). False otherwise.
bool ParseRuntimeKind(std::string_view text, RuntimeKind* out);

/// \brief Resolves the runtime request: `requested` (a CLI --runtime value;
/// may be nullptr) wins, else the PROBKB_RUNTIME environment variable, else
/// the simulator. A value that does not parse is rejected with a warning
/// and falls back to the simulator, mirroring ThreadPool::ResolveThreads.
RuntimeKind ResolveRuntimeKind(const char* requested);

/// \brief Tuning knobs of the supervised process runtime.
struct ProcessRuntimeOptions {
  int num_segments = 1;
  /// Per-frame read deadline on the supervisor side; a worker that does
  /// not answer within it is declared hung, killed, and respawned.
  double frame_deadline_seconds = 5.0;
  /// Heartbeat-ping every worker once per this many motions (0 disables).
  int heartbeat_every_motions = 16;
  /// Retry budget shared with the simulator's recovery accounting.
  RetryPolicy retry;
  /// Slots in each worker's shared-memory journal ring.
  int journal_capacity = 256;
  /// Test hook: makes Spawn() fail so callers exercise the graceful
  /// degradation path back to the simulator.
  bool fail_spawn_for_test = false;
};

/// \brief Counters the supervisor accumulates across a run.
struct ProcessRuntimeStats {
  int64_t exchanges = 0;
  int64_t frames_shipped = 0;
  int64_t frame_retries = 0;
  int64_t worker_deaths = 0;
  int64_t respawns = 0;
  int64_t heartbeats = 0;
  std::string ToString() const;
};

/// \brief Supervisor of one forked worker process per segment.
///
/// Workers are forked (no exec) holding one end of a socketpair and run a
/// strict request/response loop: Ping->Pong, Exchange->EchoAck (verifying
/// the inbound frame checksum; a damaged frame earns a Nack), Shutdown->
/// exit. Each worker journals the frames it handled into a shared-memory
/// ring (mmap MAP_SHARED|MAP_ANONYMOUS) that survives SIGKILL, so the
/// supervisor can aggregate a dead worker's post-mortem into the flight
/// recorder before respawning it.
///
/// The supervisor is the only side that enforces deadlines and retries:
/// a frame failure is classified as corruption (worker Nack -> resend),
/// death (waitpid -> journal harvest -> respawn -> resend), or hang
/// (deadline -> kill -> treated as death). The retry budget comes from the
/// same RetryPolicy the simulator charges, so exhausting it maps to
/// kDataLoss (persistent corruption) / kDeadlineExceeded (persistent
/// hangs) / kResourceExhausted (a segment that cannot stay alive).
///
/// Fork safety: the runtime must be spawned and driven from a
/// single-threaded supervisor (MppGrounder drops its thread pool when a
/// runtime is attached); children never touch stdio, the flight recorder,
/// or malloc-heavy paths — they only run the wire loop and _exit.
class ProcessRuntime {
 public:
  explicit ProcessRuntime(ProcessRuntimeOptions options);
  ~ProcessRuntime();

  ProcessRuntime(const ProcessRuntime&) = delete;
  ProcessRuntime& operator=(const ProcessRuntime&) = delete;

  /// \brief Forks one worker per segment. On any failure, already spawned
  /// workers are torn down and the runtime stays unusable (alive() false),
  /// letting callers degrade to the simulator.
  Status Spawn();

  bool alive() const { return alive_; }
  int num_segments() const { return options_.num_segments; }
  const ProcessRuntimeStats& stats() const { return stats_; }

  /// \brief Ships `rows` to worker `segment` for `motion` and returns the
  /// worker's echoed copy (deserialized from the wire, so the caller holds
  /// tuples that genuinely crossed the process boundary twice). Retries
  /// corruption, death, and hangs under the RetryPolicy budget.
  /// `corrupt_frames` > 0 damages that many outbound frames (after their
  /// checksum is computed) to exercise the detection path.
  Result<TablePtr> Exchange(int segment, int64_t motion, const Table& rows,
                            const std::string& label, int corrupt_frames = 0);

  /// \brief Heartbeat probe of one worker (Ping -> Pong round trip).
  Status Ping(int segment);

  /// \brief Called once per motion; every heartbeat_every_motions motions
  /// it pings all workers, respawning any that died since last contact.
  void HeartbeatTick(int64_t motion);

  /// \brief Fault hook: SIGKILLs worker `segment` and reaps it. The death
  /// is *detected* (journal harvest, flight-recorder events, respawn) by
  /// the next exchange or heartbeat that contacts the segment, exactly as
  /// an organic crash would be.
  void KillWorker(int segment);

  /// \brief Orderly shutdown of every worker; harvests journals first.
  void Shutdown();

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    void* journal = nullptr;  // shared ring, JournalBytes() long
    int generation = 0;
    bool reaped = false;
    int wait_status = 0;
    /// Journal entries already turned into Tracer worker spans; reset on
    /// respawn (fresh journal). The Tracer dedupes by derived span id, so
    /// re-handled frames after a crash still land exactly once.
    uint64_t spans_harvested = 0;
  };

  size_t JournalBytes() const;
  Status SpawnWorker(int segment, int64_t motion);
  /// Blocks in waitpid until the worker is reaped (killing it first when
  /// `force_kill`), records kWorkerKilled + the journal post-mortem, and
  /// respawns. `reason` lands in the flight-recorder detail field.
  Status HandleWorkerFailure(int segment, int64_t motion,
                             const char* reason, bool force_kill);
  void HarvestJournal(int segment);
  /// Turns journal entries past the harvest cursor into Tracer worker
  /// spans (trace context + monotonic handling interval ride each slot).
  /// Runs after every successful exchange and inside HarvestJournal, so
  /// both live and post-mortem paths stitch worker evidence into the tree.
  void HarvestSpans(int segment);
  void TearDownWorker(int segment);
  [[noreturn]] static void WorkerMain(int fd, void* journal,
                                      int journal_capacity);

  ProcessRuntimeOptions options_;
  std::vector<Worker> workers_;
  ProcessRuntimeStats stats_;
  int64_t heartbeat_motions_ = 0;
  bool alive_ = false;
};

}  // namespace probkb

#endif  // PROBKB_RUNTIME_PROCESS_RUNTIME_H_
