#include "runtime/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <ctime>

#include "relational/table_io.h"
#include "relational/value.h"
#include "util/logging.h"

namespace probkb {
namespace wire {

namespace {

constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 32;  // 4 GiB sanity cap

double MonotonicSeconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Sends exactly `len` bytes; MSG_NOSIGNAL turns a dead peer into EPIPE
/// instead of a process-killing SIGPIPE (the supervisor must survive
/// worker death to recover from it).
Status SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame send failed: ") +
                             std::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Receives exactly `len` bytes, honoring the absolute deadline (negative
/// disables it). EOF mid-frame means the peer died.
Status RecvAll(int fd, void* data, size_t len, double deadline_at) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    if (deadline_at >= 0) {
      double remaining = deadline_at - MonotonicSeconds();
      if (remaining <= 0) {
        return Status::DeadlineExceeded("frame read timed out");
      }
      pollfd pfd{fd, POLLIN, 0};
      // Clamp before the int conversion: a large deadline (say, a day) puts
      // remaining*1e3 beyond INT_MAX, and the overflowing cast is UB that in
      // practice produced a negative timeout — poll forever, deadline gone.
      double timeout_ms = remaining * 1e3 + 1;
      if (timeout_ms > static_cast<double>(INT_MAX)) {
        timeout_ms = static_cast<double>(INT_MAX);
      }
      int ready = poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("frame poll failed: ") +
                               std::strerror(errno));
      }
      if (ready == 0) {
        return Status::DeadlineExceeded("frame read timed out");
      }
    }
    ssize_t n = recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("peer closed connection mid-frame");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPing:
      return "PING";
    case FrameType::kPong:
      return "PONG";
    case FrameType::kExchange:
      return "EXCHANGE";
    case FrameType::kExchangeAck:
      return "EXCHANGE_ACK";
    case FrameType::kNack:
      return "NACK";
    case FrameType::kShutdown:
      return "SHUTDOWN";
    case FrameType::kMetricsRequest:
      return "METRICS_REQUEST";
    case FrameType::kMetricsReply:
      return "METRICS_REPLY";
  }
  return "UNKNOWN";
}

uint64_t FrameChecksum(const void* data, size_t len) {
  // Delegates to the relational-layer implementation so wire frames and
  // spill pages share one checksum (see table_io.h).
  return ColumnarChecksum(data, len);
}

Status WriteFrame(int fd, FrameType type, int64_t motion,
                  std::string_view payload, bool corrupt, uint64_t trace_id,
                  uint64_t parent_span) {
  FrameHeader header;
  header.type = static_cast<uint16_t>(type);
  header.motion = motion;
  header.trace_id = trace_id;
  header.parent_span = parent_span;
  header.payload_len = payload.size();
  header.checksum = FrameChecksum(payload.data(), payload.size());
  PROBKB_RETURN_NOT_OK(SendAll(fd, &header, sizeof(header)));
  if (corrupt && !payload.empty()) {
    // Flip one bit after the checksum was computed: the receiver is
    // guaranteed to detect the damage and NACK the frame.
    std::string damaged(payload);
    damaged[damaged.size() / 2] =
        static_cast<char>(damaged[damaged.size() / 2] ^ 0x40);
    return SendAll(fd, damaged.data(), damaged.size());
  }
  return SendAll(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd, double deadline_seconds) {
  double deadline_at =
      deadline_seconds > 0 ? MonotonicSeconds() + deadline_seconds : -1.0;
  FrameHeader header;
  PROBKB_RETURN_NOT_OK(RecvAll(fd, &header, sizeof(header), deadline_at));
  if (header.magic != FrameHeader::kMagic) {
    return Status::DataLoss("frame header magic mismatch");
  }
  if (header.payload_len > kMaxPayloadBytes) {
    return Status::DataLoss("frame payload length implausible");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.motion = header.motion;
  frame.trace_id = header.trace_id;
  frame.parent_span = header.parent_span;
  frame.payload.resize(header.payload_len);
  PROBKB_RETURN_NOT_OK(
      RecvAll(fd, frame.payload.data(), frame.payload.size(), deadline_at));
  uint64_t got = FrameChecksum(frame.payload.data(), frame.payload.size());
  if (got != header.checksum) {
    return Status::DataLoss("frame checksum mismatch on " +
                            std::string(FrameTypeName(frame.type)));
  }
  return frame;
}

void SerializeTable(const Table& table, std::string* out) {
  EncodeTableColumnar(table, out);
}

Result<TablePtr> DeserializeTable(const Schema& schema,
                                  std::string_view bytes) {
  return DecodeTableColumnar(schema, bytes);
}

}  // namespace wire
}  // namespace probkb
