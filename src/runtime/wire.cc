#include "runtime/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <ctime>

#include "relational/value.h"
#include "util/logging.h"

namespace probkb {
namespace wire {

namespace {

constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 32;  // 4 GiB sanity cap

double MonotonicSeconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Sends exactly `len` bytes; MSG_NOSIGNAL turns a dead peer into EPIPE
/// instead of a process-killing SIGPIPE (the supervisor must survive
/// worker death to recover from it).
Status SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame send failed: ") +
                             std::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Receives exactly `len` bytes, honoring the absolute deadline (negative
/// disables it). EOF mid-frame means the peer died.
Status RecvAll(int fd, void* data, size_t len, double deadline_at) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    if (deadline_at >= 0) {
      double remaining = deadline_at - MonotonicSeconds();
      if (remaining <= 0) {
        return Status::DeadlineExceeded("frame read timed out");
      }
      pollfd pfd{fd, POLLIN, 0};
      // Clamp before the int conversion: a large deadline (say, a day) puts
      // remaining*1e3 beyond INT_MAX, and the overflowing cast is UB that in
      // practice produced a negative timeout — poll forever, deadline gone.
      double timeout_ms = remaining * 1e3 + 1;
      if (timeout_ms > static_cast<double>(INT_MAX)) {
        timeout_ms = static_cast<double>(INT_MAX);
      }
      int ready = poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("frame poll failed: ") +
                               std::strerror(errno));
      }
      if (ready == 0) {
        return Status::DeadlineExceeded("frame read timed out");
      }
    }
    ssize_t n = recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("peer closed connection mid-frame");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view* in, T* out) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(out, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPing:
      return "PING";
    case FrameType::kPong:
      return "PONG";
    case FrameType::kExchange:
      return "EXCHANGE";
    case FrameType::kExchangeAck:
      return "EXCHANGE_ACK";
    case FrameType::kNack:
      return "NACK";
    case FrameType::kShutdown:
      return "SHUTDOWN";
    case FrameType::kMetricsRequest:
      return "METRICS_REQUEST";
    case FrameType::kMetricsReply:
      return "METRICS_REPLY";
  }
  return "UNKNOWN";
}

uint64_t FrameChecksum(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  uint64_t h = kRowHashSeed;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = CombineRowHash(h, value_hash::Mix(word));
  }
  if (i < len) {
    uint64_t word = 0;
    std::memcpy(&word, p + i, len - i);
    h = CombineRowHash(h, value_hash::Mix(word));
  }
  // Fold in the length so a frame truncated to a zero-padded tail cannot
  // collide with the original.
  return CombineRowHash(h, value_hash::Mix(static_cast<uint64_t>(len)));
}

Status WriteFrame(int fd, FrameType type, int64_t motion,
                  std::string_view payload, bool corrupt, uint64_t trace_id,
                  uint64_t parent_span) {
  FrameHeader header;
  header.type = static_cast<uint16_t>(type);
  header.motion = motion;
  header.trace_id = trace_id;
  header.parent_span = parent_span;
  header.payload_len = payload.size();
  header.checksum = FrameChecksum(payload.data(), payload.size());
  PROBKB_RETURN_NOT_OK(SendAll(fd, &header, sizeof(header)));
  if (corrupt && !payload.empty()) {
    // Flip one bit after the checksum was computed: the receiver is
    // guaranteed to detect the damage and NACK the frame.
    std::string damaged(payload);
    damaged[damaged.size() / 2] =
        static_cast<char>(damaged[damaged.size() / 2] ^ 0x40);
    return SendAll(fd, damaged.data(), damaged.size());
  }
  return SendAll(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd, double deadline_seconds) {
  double deadline_at =
      deadline_seconds > 0 ? MonotonicSeconds() + deadline_seconds : -1.0;
  FrameHeader header;
  PROBKB_RETURN_NOT_OK(RecvAll(fd, &header, sizeof(header), deadline_at));
  if (header.magic != FrameHeader::kMagic) {
    return Status::DataLoss("frame header magic mismatch");
  }
  if (header.payload_len > kMaxPayloadBytes) {
    return Status::DataLoss("frame payload length implausible");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.motion = header.motion;
  frame.trace_id = header.trace_id;
  frame.parent_span = header.parent_span;
  frame.payload.resize(header.payload_len);
  PROBKB_RETURN_NOT_OK(
      RecvAll(fd, frame.payload.data(), frame.payload.size(), deadline_at));
  uint64_t got = FrameChecksum(frame.payload.data(), frame.payload.size());
  if (got != header.checksum) {
    return Status::DataLoss("frame checksum mismatch on " +
                            std::string(FrameTypeName(frame.type)));
  }
  return frame;
}

void SerializeTable(const Table& table, std::string* out) {
  const int width = table.width();
  const int64_t rows = table.NumRows();
  AppendPod(out, rows);
  AppendPod(out, static_cast<int32_t>(width));
  for (int c = 0; c < width; ++c) {
    const ColumnType type = table.schema().field(c).type;
    AppendPod(out, static_cast<uint8_t>(type));
    // Raw 8-byte cell words straight from the typed vectors: doubles
    // round-trip bit for bit and NULL cells keep their zero sentinel.
    if (type == ColumnType::kInt64) {
      AppendRaw(out, table.Int64Data(c),
                static_cast<size_t>(rows) * sizeof(int64_t));
    } else {
      AppendRaw(out, table.Float64Data(c),
                static_cast<size_t>(rows) * sizeof(double));
    }
    const uint8_t has_nulls = table.ColumnHasNulls(c) ? 1 : 0;
    AppendPod(out, has_nulls);
    if (has_nulls) {
      const size_t words = static_cast<size_t>((rows + 63) >> 6);
      std::vector<uint64_t> bitmap(words, 0);
      for (int64_t r = 0; r < rows; ++r) {
        if (table.IsNull(r, c)) {
          bitmap[static_cast<size_t>(r >> 6)] |=
              uint64_t{1} << (static_cast<uint64_t>(r) & 63);
        }
      }
      AppendRaw(out, bitmap.data(), words * sizeof(uint64_t));
    }
  }
}

Result<TablePtr> DeserializeTable(const Schema& schema,
                                  std::string_view bytes) {
  int64_t rows = 0;
  int32_t width = 0;
  if (!ReadPod(&bytes, &rows) || !ReadPod(&bytes, &width)) {
    return Status::DataLoss("table frame truncated before header");
  }
  if (rows < 0 || width != schema.num_fields()) {
    return Status::DataLoss("table frame shape mismatch");
  }
  TablePtr table = Table::Make(schema);
  table->ReserveRows(rows);
  // Decoded column-major, materialized row-major through AppendRow: the
  // Value path re-applies the zero sentinel for NULL cells, so the rebuilt
  // table is byte-identical to the source.
  std::vector<std::vector<Value>> cols(static_cast<size_t>(width));
  for (int c = 0; c < width; ++c) {
    uint8_t type_tag = 0;
    if (!ReadPod(&bytes, &type_tag)) {
      return Status::DataLoss("table frame truncated before column type");
    }
    const ColumnType type = static_cast<ColumnType>(type_tag);
    if (type != schema.field(c).type) {
      return Status::DataLoss("table frame column type mismatch");
    }
    const size_t data_bytes = static_cast<size_t>(rows) * 8;
    if (bytes.size() < data_bytes) {
      return Status::DataLoss("table frame truncated in column data");
    }
    std::string_view data = bytes.substr(0, data_bytes);
    bytes.remove_prefix(data_bytes);
    uint8_t has_nulls = 0;
    if (!ReadPod(&bytes, &has_nulls)) {
      return Status::DataLoss("table frame truncated before null marker");
    }
    std::vector<uint64_t> bitmap;
    if (has_nulls) {
      const size_t words = static_cast<size_t>((rows + 63) >> 6);
      bitmap.resize(words);
      if (bytes.size() < words * sizeof(uint64_t)) {
        return Status::DataLoss("table frame truncated in null bitmap");
      }
      std::memcpy(bitmap.data(), bytes.data(), words * sizeof(uint64_t));
      bytes.remove_prefix(words * sizeof(uint64_t));
    }
    std::vector<Value>& col = cols[static_cast<size_t>(c)];
    col.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      const bool is_null =
          has_nulls && ((bitmap[static_cast<size_t>(r >> 6)] >>
                         (static_cast<uint64_t>(r) & 63)) &
                        1);
      if (is_null) {
        col.push_back(Value::Null());
      } else if (type == ColumnType::kInt64) {
        int64_t v;
        std::memcpy(&v, data.data() + static_cast<size_t>(r) * 8, 8);
        col.push_back(Value::Int64(v));
      } else {
        double v;
        std::memcpy(&v, data.data() + static_cast<size_t>(r) * 8, 8);
        col.push_back(Value::Float64(v));
      }
    }
  }
  if (!bytes.empty()) {
    return Status::DataLoss("table frame has trailing bytes");
  }
  std::vector<Value> row(static_cast<size_t>(width));
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < width; ++c) {
      row[static_cast<size_t>(c)] =
          cols[static_cast<size_t>(c)][static_cast<size_t>(r)];
    }
    table->AppendRow(row);
  }
  return table;
}

}  // namespace wire
}  // namespace probkb
