#ifndef PROBKB_RUNTIME_WIRE_H_
#define PROBKB_RUNTIME_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "relational/table.h"
#include "util/result.h"

namespace probkb {
namespace wire {

/// \brief Frame types of the supervisor <-> worker protocol. Every request
/// from the supervisor is answered by exactly one response frame, so the
/// channel is a strict request/response alternation and a worker never has
/// more than one frame in flight.
enum class FrameType : uint16_t {
  kPing = 1,       // heartbeat probe                     payload: empty
  kPong,           // heartbeat answer                    payload: empty
  kExchange,       // ship a table partition to a worker  payload: table
  kExchangeAck,    // the partition, echoed back          payload: table
  kNack,           // checksum mismatch on receipt        payload: empty
  kShutdown,       // orderly worker exit                 payload: empty
  kMetricsRequest, // telemetry poll (metrics socket)     payload: empty
  kMetricsReply,   // Prometheus text snapshot            payload: text
};

const char* FrameTypeName(FrameType type);

/// \brief Fixed-size header preceding every frame payload.
///
/// `checksum` covers the payload bytes only; it is built from the same
/// value_hash::Mix / CombineRowHash primitives the join and placement
/// hashes use, so the wire format shares one well-tested mixing function
/// with the rest of the engine. A receiver recomputes the checksum over
/// the bytes it read and rejects the frame on mismatch (kNack from a
/// worker, kDataLoss retry from the supervisor).
struct FrameHeader {
  uint32_t magic = kMagic;
  uint16_t type = 0;
  uint16_t flags = 0;
  int64_t motion = 0;       // motion index the frame belongs to (-1: none)
  uint64_t trace_id = 0;    // distributed-trace context (0: untraced); a
  uint64_t parent_span = 0; // worker's journal spans parent under these
  uint64_t payload_len = 0;
  uint64_t checksum = 0;

  static constexpr uint32_t kMagic = 0x50424B46;  // "PBKF"
};

/// \brief One parsed frame.
struct Frame {
  FrameType type = FrameType::kPing;
  int64_t motion = -1;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  std::string payload;
};

/// \brief Payload checksum: kRowHashSeed-seeded CombineRowHash over the
/// Mix of each 8-byte word (tail bytes zero-padded), plus the length so a
/// truncated-but-zero tail cannot collide with the original.
uint64_t FrameChecksum(const void* data, size_t len);

/// \brief Writes one frame to `fd` (a blocking Unix-domain socket).
/// `corrupt` > 0 flips one payload byte *after* the checksum was computed,
/// so the receiver is guaranteed to detect the damage — the fault
/// injector's kCorruptFrame class uses this to strike real frames.
/// `trace_id`/`parent_span` carry the supervisor's trace context; a worker
/// copies them into its journaled spans (0 = untraced, e.g. heartbeats).
Status WriteFrame(int fd, FrameType type, int64_t motion,
                  std::string_view payload, bool corrupt = false,
                  uint64_t trace_id = 0, uint64_t parent_span = 0);

/// \brief Reads one frame, waiting at most `deadline_seconds` (0 disables
/// the deadline) for the first byte and between chunks. Returns
/// kDeadlineExceeded on timeout, kUnavailable-style IOError on EOF /
/// connection reset, and kDataLoss when the payload checksum mismatches
/// (the frame is consumed either way, so the caller can retry).
Result<Frame> ReadFrame(int fd, double deadline_seconds);

/// \brief Serializes a table into `out` (appending): row count, column
/// count, then per column the type tag, the raw 8-byte cell words, and the
/// null bitmap words. Lossless: doubles round-trip bit for bit and NULL
/// cells keep their zero sentinel, so a deserialized table is byte-
/// identical to the source for hashing, placement, and checkpoint
/// purposes.
void SerializeTable(const Table& table, std::string* out);

/// \brief Inverse of SerializeTable; validates the encoded shape against
/// `schema`.
Result<TablePtr> DeserializeTable(const Schema& schema,
                                  std::string_view bytes);

}  // namespace wire
}  // namespace probkb

#endif  // PROBKB_RUNTIME_WIRE_H_
