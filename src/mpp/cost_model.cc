#include "mpp/cost_model.h"

#include "util/strings.h"

namespace probkb {

namespace {
const char* KindName(MppStep::Kind k) {
  switch (k) {
    case MppStep::Kind::kCompute:
      return "Compute";
    case MppStep::Kind::kRedistribute:
      return "Redistribute Motion";
    case MppStep::Kind::kBroadcast:
      return "Broadcast Motion";
    case MppStep::Kind::kGather:
      return "Gather Motion";
    case MppStep::Kind::kRecovery:
      return "Recovery";
  }
  return "?";
}
}  // namespace

std::string MppStep::ToString() const {
  if (kind == Kind::kCompute) {
    return StrFormat("%-22s %-34s %8.3fms (sum %.3fms)", KindName(kind),
                     label.c_str(), seconds * 1e3, total_work_seconds * 1e3);
  }
  return StrFormat("%-22s %-34s %8.3fms (%lld tuples)", KindName(kind),
                   label.c_str(), seconds * 1e3,
                   static_cast<long long>(tuples_shipped));
}

std::string MppCost::ToString() const {
  std::string out;
  for (const auto& s : steps_) {
    out += "  ";
    out += s.ToString();
    out += "\n";
  }
  out += StrFormat(
      "  total: simulated=%.3fms single-node-work=%.3fms shipped=%lld\n",
      simulated_seconds_ * 1e3, total_work_seconds_ * 1e3,
      static_cast<long long>(tuples_shipped_));
  return out;
}

}  // namespace probkb
