#include "mpp/distribution.h"

namespace probkb {

std::string Distribution::ToString() const {
  switch (kind) {
    case Kind::kReplicated:
      return "REPLICATED";
    case Kind::kRandom:
      return "RANDOM";
    case Kind::kHash: {
      std::string out = "HASH(";
      for (size_t i = 0; i < key_cols.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(key_cols[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace probkb
