#ifndef PROBKB_MPP_MPP_CONTEXT_H_
#define PROBKB_MPP_MPP_CONTEXT_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "engine/planner.h"
#include "engine/tunables.h"
#include "fault/fault_injector.h"
#include "mpp/cost_model.h"
#include "mpp/distributed_table.h"
#include "relational/spill.h"
#include "obs/stats_registry.h"
#include "runtime/process_runtime.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace probkb {

/// \brief Execution context of the shared-nothing simulator.
///
/// Owns the segment count, the cost parameters, and the accumulated cost /
/// plan trace. Motion operators (Redistribute, Broadcast, Gather) live here
/// because they are the interconnect; distributed relational operators are
/// free functions in mpp_ops.h that call back into this context to account
/// for their per-segment work.
///
/// With a FaultInjector attached, every motion becomes a detect-and-recover
/// loop: a failed segment's contribution is recomputed from the surviving
/// materialized inputs and re-shipped under capped exponential backoff,
/// with the retry cost charged to MppCost as kRecovery steps. Recovery
/// reassembles outputs in canonical segment order, so a recovered run is
/// bit-identical to a fault-free one. A motion that stays failed past the
/// retry budget returns kResourceExhausted; an injected deadline trip (or
/// an exceeded simulated deadline) returns kDeadlineExceeded.
class MppContext {
 public:
  /// \brief Total-input-rows floor below which per-segment fan-out runs
  /// serially even with a pool attached. Dispatching N segment tasks for a
  /// few hundred rows costs more than the tasks themselves — the
  /// fig6c_mpp_views workload regressed below 1.0x speedup at 2-8 threads
  /// purely on fan-out overhead over tiny per-iteration deltas. Outputs are
  /// unaffected: the serial path is the same code in segment order.
  /// Routed through Tunables (engine/tunables.h) so auto-calibration can
  /// push it out of reach on hosts where fan-out never wins.
  static int64_t SerialFanoutRowCutoff() {
    return GetTunables().serial_fanout_row_cutoff;
  }

  explicit MppContext(int num_segments, CostParams params = {})
      : num_segments_(num_segments), params_(params) {}

  int num_segments() const { return num_segments_; }
  const CostParams& params() const { return params_; }

  MppCost* mutable_cost() { return &cost_; }
  const MppCost& cost() const { return cost_; }

  /// \brief Attaches the fault source (not owned; may be nullptr).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// \brief Attaches a thread pool (not owned; may be nullptr) that runs
  /// per-segment operator work and motion preparation concurrently.
  /// Determinism contract: motion indices are assigned and the fault
  /// injector consulted on the orchestrating thread *before* any fan-out,
  /// and parallel results are merged in canonical segment order — so cost
  /// traces, fault schedules, and output tables are bit-identical to the
  /// serial engine's.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// \brief Attaches the out-of-core spill context (not owned; may be
  /// nullptr). Per-segment ExecContexts inherit it, so segment-local
  /// joins spill under the shared memory budget exactly as single-node
  /// statements do. SpillContext is thread-safe; concurrent segment
  /// fan-out charges one shared budget.
  void set_spill(SpillContext* spill) { spill_ = spill; }
  SpillContext* spill() const { return spill_; }

  /// \brief Attaches a spawned process runtime (not owned; may be nullptr).
  /// Motions then physically ship every cross-segment partition through
  /// the target's worker process and rebuild segments from the echoed
  /// frames; injected segment-loss faults become real SIGKILLs and
  /// kCorruptFrame faults damage real frames. The orchestrator must be
  /// single-threaded while a runtime is attached (fork safety), so
  /// attaching also expects the thread pool to be detached. Costs, motion
  /// indices, and outputs stay bit-identical to the simulator: the same
  /// fault list drives both the physical actions and the modelled
  /// RecoverMotion accounting.
  void set_runtime(ProcessRuntime* runtime) { runtime_ = runtime; }
  ProcessRuntime* runtime() const { return runtime_; }

  /// \brief Attaches an execution-stats registry (not owned; may be
  /// nullptr). Motions then report their shipped tuple/byte volume and
  /// post-motion per-segment row distribution, and compute phases their
  /// per-segment time skew. Recording happens on the orchestrating thread
  /// after the fault-recovery loop settles, so an attached registry never
  /// changes motion indices, fault schedules, or outputs.
  void set_stats_registry(StatsRegistry* registry) { obs_ = registry; }
  StatsRegistry* stats_registry() const { return obs_; }

  /// \brief Attaches the adaptive planner (not owned; may be nullptr).
  /// With a planner attached, MotionPolicy::kAuto joins in mpp_ops ask it
  /// to cost broadcast-vs-redistribute from the actual input sizes instead
  /// of applying the static collocation rule. Decisions only change which
  /// route tuples take, never the joined result; with no planner attached
  /// kAuto behaves exactly like the pre-planner static rule.
  void set_planner(AdaptivePlanner* planner) { planner_ = planner; }
  AdaptivePlanner* planner() const { return planner_; }

  /// \brief Budget on *simulated* elapsed seconds; 0 disables. Checked at
  /// every motion and by CheckDeadline() callers at iteration boundaries.
  void set_deadline_seconds(double seconds) { deadline_seconds_ = seconds; }
  double deadline_seconds() const { return deadline_seconds_; }

  /// \brief kDeadlineExceeded once accumulated simulated time passes the
  /// deadline (deterministic: simulated time is modelled, not measured).
  Status CheckDeadline() const;

  /// \brief Re-hashes `input` onto a new hash distribution. Tuples already
  /// on their target segment do not touch the interconnect (Greenplum
  /// behaviour).
  Result<DistributedTablePtr> Redistribute(const DistributedTable& input,
                                           std::vector<int> key_cols,
                                           std::string name = "");

  /// \brief Replicates `input` onto all segments; ships rows*(N-1) tuples.
  Result<DistributedTablePtr> Broadcast(const DistributedTable& input,
                                        std::string name = "");

  /// \brief Collects all rows on the coordinator.
  Result<TablePtr> Gather(const DistributedTable& input);

  /// \brief Accounts a motion whose data movement the caller performed
  /// itself (e.g. the grounder's incremental view refresh, which appends
  /// delta rows straight into view segments). Consumes a motion index and
  /// runs the same fault gate and recovery loop as the built-in motions,
  /// then charges `tuples_shipped` as a step of `kind`. `resend_tuples`
  /// follows the RecoverMotion contract.
  ///
  /// With a process runtime attached, callers that pass the moved rows
  /// (`payload`, one target per row in `payload_targets`) get them shipped
  /// for real: each target's slice round-trips through its worker and
  /// `delivered` receives the echoed per-target tables (row order
  /// preserved), which the caller must use in place of its local slices.
  /// Without a runtime (or a payload) `delivered` stays empty.
  Status AccountMotion(MppStep::Kind kind, const std::string& label,
                       int64_t tuples_shipped,
                       const std::function<int64_t(const FaultEvent&)>&
                           resend_tuples,
                       const Table* payload = nullptr,
                       std::span<const int> payload_targets = {},
                       std::vector<TablePtr>* delivered = nullptr);

  /// \brief Accounts a per-segment compute phase: `seg_seconds[i]` is the
  /// measured wall-clock of segment i's plan. Simulated elapsed takes the
  /// max (segments run concurrently on real hardware).
  void RecordCompute(const std::string& label,
                     const std::vector<double>& seg_seconds);

  double MotionSeconds(int64_t tuples_shipped) const {
    return params_.motion_latency +
           static_cast<double>(tuples_shipped) *
               params_.seconds_per_shipped_tuple;
  }

  double BroadcastSeconds(int64_t tuples_shipped) const {
    return params_.motion_latency +
           static_cast<double>(tuples_shipped) *
               params_.seconds_per_shipped_tuple *
               params_.broadcast_tuple_discount;
  }

 private:
  /// Deadline / injected-budget gate at the head of every motion; on OK,
  /// returns the motion's index via `motion_index`.
  Status BeginMotion(const std::string& label, int64_t* motion_index);

  /// Runs the detect/retry loop for the segments named in `faults`.
  /// `resend_tuples(segment)` is the interconnect traffic needed to replay
  /// one victim's contribution. Accumulates backoff and re-ship cost into
  /// a kRecovery step and the injector stats; kResourceExhausted when a
  /// segment stays failed past the retry budget.
  Status RecoverMotion(int64_t motion_index, const std::string& label,
                       const std::vector<FaultEvent>& faults,
                       const std::function<int64_t(const FaultEvent&)>&
                           resend_tuples);

  /// Applies the physical half of this motion's fault list to the process
  /// runtime — segment-loss faults SIGKILL the victim's worker, frame
  /// corruption schedules damaged frames — and returns the per-target
  /// corrupt-frame counts for the exchange loop. No-op without a runtime.
  std::vector<int> ApplyPhysicalFaults(const std::vector<FaultEvent>& faults);

  int num_segments_;
  CostParams params_;
  MppCost cost_;
  FaultInjector* injector_ = nullptr;
  StatsRegistry* obs_ = nullptr;
  AdaptivePlanner* planner_ = nullptr;
  ThreadPool* pool_ = nullptr;
  SpillContext* spill_ = nullptr;
  ProcessRuntime* runtime_ = nullptr;
  RetryPolicy retry_;
  double deadline_seconds_ = 0.0;
  int64_t next_motion_index_ = 0;
};

}  // namespace probkb

#endif  // PROBKB_MPP_MPP_CONTEXT_H_
