#ifndef PROBKB_MPP_MPP_CONTEXT_H_
#define PROBKB_MPP_MPP_CONTEXT_H_

#include <string>
#include <vector>

#include "mpp/cost_model.h"
#include "mpp/distributed_table.h"
#include "util/result.h"

namespace probkb {

/// \brief Execution context of the shared-nothing simulator.
///
/// Owns the segment count, the cost parameters, and the accumulated cost /
/// plan trace. Motion operators (Redistribute, Broadcast, Gather) live here
/// because they are the interconnect; distributed relational operators are
/// free functions in mpp_ops.h that call back into this context to account
/// for their per-segment work.
class MppContext {
 public:
  explicit MppContext(int num_segments, CostParams params = {})
      : num_segments_(num_segments), params_(params) {}

  int num_segments() const { return num_segments_; }
  const CostParams& params() const { return params_; }

  MppCost* mutable_cost() { return &cost_; }
  const MppCost& cost() const { return cost_; }

  /// \brief Re-hashes `input` onto a new hash distribution. Tuples already
  /// on their target segment do not touch the interconnect (Greenplum
  /// behaviour).
  Result<DistributedTablePtr> Redistribute(const DistributedTable& input,
                                           std::vector<int> key_cols,
                                           std::string name = "");

  /// \brief Replicates `input` onto all segments; ships rows*(N-1) tuples.
  Result<DistributedTablePtr> Broadcast(const DistributedTable& input,
                                        std::string name = "");

  /// \brief Collects all rows on the coordinator.
  Result<TablePtr> Gather(const DistributedTable& input);

  /// \brief Accounts a per-segment compute phase: `seg_seconds[i]` is the
  /// measured wall-clock of segment i's plan. Simulated elapsed takes the
  /// max (segments run concurrently on real hardware).
  void RecordCompute(const std::string& label,
                     const std::vector<double>& seg_seconds);

  double MotionSeconds(int64_t tuples_shipped) const {
    return params_.motion_latency +
           static_cast<double>(tuples_shipped) *
               params_.seconds_per_shipped_tuple;
  }

  double BroadcastSeconds(int64_t tuples_shipped) const {
    return params_.motion_latency +
           static_cast<double>(tuples_shipped) *
               params_.seconds_per_shipped_tuple *
               params_.broadcast_tuple_discount;
  }

 private:
  int num_segments_;
  CostParams params_;
  MppCost cost_;
};

}  // namespace probkb

#endif  // PROBKB_MPP_MPP_CONTEXT_H_
