#ifndef PROBKB_MPP_DISTRIBUTED_TABLE_H_
#define PROBKB_MPP_DISTRIBUTED_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "mpp/distribution.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

class DistributedTable;
using DistributedTablePtr = std::shared_ptr<DistributedTable>;

/// \brief A relation horizontally partitioned over N shared-nothing
/// segments.
///
/// For kHash, row r lives on segment Hash(r[key_cols]) % N. For
/// kReplicated, every segment holds a full copy (segments_[i] all alias the
/// same Table). For kRandom, placement is round-robin.
class DistributedTable {
 public:
  DistributedTable(Schema schema, std::vector<TablePtr> segments,
                   Distribution dist, std::string name);

  /// \brief Partitions `local` across `num_segments` per `dist`.
  static DistributedTablePtr Distribute(const Table& local, int num_segments,
                                        Distribution dist,
                                        std::string name = "t");

  /// \brief Empty distributed table.
  static DistributedTablePtr MakeEmpty(Schema schema, int num_segments,
                                       Distribution dist,
                                       std::string name = "t");

  const Schema& schema() const { return schema_; }
  const Distribution& distribution() const { return dist_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int num_segments() const { return static_cast<int>(segments_.size()); }
  const TablePtr& segment(int i) const {
    return segments_[static_cast<size_t>(i)];
  }
  TablePtr mutable_segment(int i) { return segments_[static_cast<size_t>(i)]; }

  /// \brief Logical row count (replicated tables count one copy).
  int64_t NumRows() const;

  /// \brief Physical rows summed over segments (replicated tables count
  /// every copy); drives storage accounting.
  int64_t PhysicalRows() const;

  int64_t ByteSize() const;

  /// \brief Concatenates all segments into one local table (a Gather with
  /// no cost accounting; use MppContext::Gather in measured code).
  TablePtr ToLocal() const;

  /// \brief Segment index a row belongs to under a hash distribution.
  static int TargetSegment(const RowView& row, std::span<const int> key_cols,
                           int num_segments);

  /// \brief Batched TargetSegment over rows [begin, end) of `table`,
  /// filling `out[0 .. end-begin)`. Uses Table::HashRows, which matches
  /// HashRowKey bit for bit, so placement is identical to the scalar path
  /// (and to pre-existing checkpoints).
  static void TargetSegments(const Table& table, std::span<const int> key_cols,
                             int num_segments, int64_t begin, int64_t end,
                             int* out);

  /// \brief Verifies every row is on the segment its distribution demands.
  Status ValidatePlacement() const;

 private:
  Schema schema_;
  std::vector<TablePtr> segments_;
  Distribution dist_;
  std::string name_;
};

}  // namespace probkb

#endif  // PROBKB_MPP_DISTRIBUTED_TABLE_H_
