#ifndef PROBKB_MPP_COST_MODEL_H_
#define PROBKB_MPP_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace probkb {

/// \brief Cost parameters of the shared-nothing simulator.
///
/// The host is a single machine, so segment-local work is *measured*
/// (wall-clock per segment) and interconnect traffic is *modelled*: motions
/// charge a fixed startup latency plus a per-tuple ship cost. Defaults are
/// calibrated so the ratio between a broadcast and a redistribute of the
/// same input matches the paper's Figure 4 sample run (8.06 s broadcast vs
/// 0.85 s redistribute at 10M rows, 32 segments).
struct CostParams {
  /// Seconds to ship one tuple between two segments (redistribute).
  double seconds_per_shipped_tuple = 8.5e-8;
  /// Broadcast ships rows x (N-1) tuples but pays less per tuple: the row
  /// is serialized once and fanned out over parallel links. Calibrated so
  /// that broadcasting vs redistributing the same input on 32 segments
  /// costs 9.5x more, the ratio of Figure 4's sample run (8.06s vs 0.85s).
  double broadcast_tuple_discount = 0.31;
  /// Fixed per-motion startup latency (seconds).
  double motion_latency = 3e-4;
};

/// \brief One accounted step of a distributed execution: either a motion or
/// a per-segment compute phase. Feeds both the total simulated time and the
/// Figure-4-style plan printouts.
struct MppStep {
  /// kRecovery accounts fault handling: retry backoff plus the re-shipping
  /// of batches lost to an injected segment failure or drop.
  enum class Kind { kCompute, kRedistribute, kBroadcast, kGather, kRecovery };
  Kind kind = Kind::kCompute;
  std::string label;
  /// Tuples put on the interconnect by this step (0 for compute).
  int64_t tuples_shipped = 0;
  /// Max per-segment wall-clock (compute) or modelled time (motion).
  double seconds = 0.0;
  /// Sum of per-segment wall-clock; what a 1-segment engine would pay.
  double total_work_seconds = 0.0;

  std::string ToString() const;
};

/// \brief Accumulated cost of a distributed execution.
class MppCost {
 public:
  void Add(MppStep step) {
    simulated_seconds_ += step.seconds;
    total_work_seconds_ += step.kind == MppStep::Kind::kCompute
                               ? step.total_work_seconds
                               : step.seconds;
    tuples_shipped_ += step.tuples_shipped;
    steps_.push_back(std::move(step));
  }

  /// Simulated elapsed time: per-step max-over-segments compute plus
  /// motion time, summed over steps.
  double simulated_seconds() const { return simulated_seconds_; }
  /// What the same plan costs with no parallelism (sum of segment work).
  double total_work_seconds() const { return total_work_seconds_; }
  int64_t tuples_shipped() const { return tuples_shipped_; }
  const std::vector<MppStep>& steps() const { return steps_; }

  void Clear() {
    simulated_seconds_ = 0;
    total_work_seconds_ = 0;
    tuples_shipped_ = 0;
    steps_.clear();
  }

  /// \brief Plan-trace rendering in the style of the paper's Figure 4.
  std::string ToString() const;

 private:
  double simulated_seconds_ = 0;
  double total_work_seconds_ = 0;
  int64_t tuples_shipped_ = 0;
  std::vector<MppStep> steps_;
};

}  // namespace probkb

#endif  // PROBKB_MPP_COST_MODEL_H_
