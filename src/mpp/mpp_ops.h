#ifndef PROBKB_MPP_MPP_OPS_H_
#define PROBKB_MPP_MPP_OPS_H_

#include <optional>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "mpp/mpp_context.h"

namespace probkb {

/// \brief How a non-collocated join acquires collocation.
///
/// kAuto consults the context's AdaptivePlanner when one is attached
/// (costing redistribute vs. broadcast from the actual input sizes and
/// placements); without a planner it falls back to kRedistribute — the
/// static rule of the optimized plans of Figure 4: redistribute whichever
/// side is not already hashed on its join keys. kRedistribute /
/// kBroadcastRight / kBroadcastLeft force that motion (broadcast-right is
/// the unoptimized plan Greenplum picks in Figure 4 right, used by the
/// ProbKB-pn configuration); forced policies exist for the paper's static
/// configurations and for plan-equivalence tests.
enum class MotionPolicy { kAuto, kRedistribute, kBroadcastRight, kBroadcastLeft };

/// \brief Full specification of a distributed hash join.
struct MppJoinSpec {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  JoinType type = JoinType::kInner;
  std::vector<JoinOutputCol> output_cols;  // required for kInner
  RowPredicate residual;                   // optional
  /// Declared distribution of the result (the "planner's" knowledge); must
  /// be consistent with actual row placement — ValidatePlacement() checks.
  Distribution output_dist = Distribution::Random();
  MotionPolicy policy = MotionPolicy::kAuto;
  std::string label = "join";
};

/// \brief Distributed hash equi-join with motion planning.
Result<DistributedTablePtr> MppHashJoin(MppContext* ctx,
                                        DistributedTablePtr left,
                                        DistributedTablePtr right,
                                        MppJoinSpec spec);

/// \brief Per-segment filter and/or projection. Filtering preserves the
/// input distribution; when `exprs` is set the caller declares the output
/// distribution in terms of the new column positions.
Result<DistributedTablePtr> MppFilterProject(
    MppContext* ctx, DistributedTablePtr input, RowPredicate pred,
    std::optional<std::vector<ProjectExpr>> exprs, Distribution output_dist,
    const std::string& label);

/// \brief Distributed DISTINCT on `key_cols`; redistributes first unless
/// rows equal on the keys are already collocated.
Result<DistributedTablePtr> MppDistinct(MppContext* ctx,
                                        DistributedTablePtr input,
                                        std::vector<int> key_cols,
                                        const std::string& label);

/// \brief Distributed GROUP BY; redistributes on the group columns unless
/// already collocated. HAVING runs per segment (safe: groups never span
/// segments after collocation).
Result<DistributedTablePtr> MppAggregate(MppContext* ctx,
                                         DistributedTablePtr input,
                                         std::vector<int> group_cols,
                                         std::vector<AggSpec> aggs,
                                         RowPredicate having,
                                         const std::string& label);

/// \brief Distributed set-semantics union: appends to `dst` the rows of
/// `src` not already present (keyed on `key_cols`, same schema). `dst`
/// must be hash-distributed with its key a subset of `key_cols`. Returns
/// the number of appended rows.
Result<int64_t> MppSetUnionInto(MppContext* ctx, DistributedTable* dst,
                                const DistributedTable& src,
                                const std::vector<int>& key_cols);

/// \brief Distributed DELETE ... WHERE (cols) IN (keys): broadcasts the
/// (small) key relation and deletes per segment. Returns rows deleted.
Result<int64_t> MppDeleteMatching(MppContext* ctx, DistributedTable* dst,
                                  const std::vector<int>& dst_cols,
                                  const DistributedTable& keys,
                                  const std::vector<int>& key_cols);

}  // namespace probkb

#endif  // PROBKB_MPP_MPP_OPS_H_
