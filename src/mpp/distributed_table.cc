#include "mpp/distributed_table.h"

#include <algorithm>

#include "engine/tunables.h"
#include "util/logging.h"
#include "util/strings.h"

namespace probkb {

DistributedTable::DistributedTable(Schema schema,
                                   std::vector<TablePtr> segments,
                                   Distribution dist, std::string name)
    : schema_(std::move(schema)),
      segments_(std::move(segments)),
      dist_(std::move(dist)),
      name_(std::move(name)) {
  PROBKB_CHECK(!segments_.empty());
}

int DistributedTable::TargetSegment(const RowView& row,
                                    std::span<const int> key_cols,
                                    int num_segments) {
  return static_cast<int>(HashRowKey(row, key_cols) %
                          static_cast<size_t>(num_segments));
}

void DistributedTable::TargetSegments(const Table& table,
                                      std::span<const int> key_cols,
                                      int num_segments, int64_t begin,
                                      int64_t end, int* out) {
  size_t hashes[kSegmentHashChunkRows];
  for (int64_t base = begin; base < end; base += kSegmentHashChunkRows) {
    const int64_t stop = std::min(base + kSegmentHashChunkRows, end);
    table.HashRows(key_cols, base, stop, hashes);
    for (int64_t i = base; i < stop; ++i) {
      out[i - begin] = static_cast<int>(hashes[i - base] %
                                        static_cast<size_t>(num_segments));
    }
  }
}

DistributedTablePtr DistributedTable::Distribute(const Table& local,
                                                 int num_segments,
                                                 Distribution dist,
                                                 std::string name) {
  PROBKB_CHECK(num_segments >= 1);
  std::vector<TablePtr> segments;
  segments.reserve(static_cast<size_t>(num_segments));
  if (dist.is_replicated()) {
    // All segments alias one physical copy; PhysicalRows() accounts for the
    // replication factor.
    TablePtr copy = local.Clone();
    for (int i = 0; i < num_segments; ++i) segments.push_back(copy);
  } else {
    for (int i = 0; i < num_segments; ++i) {
      segments.push_back(Table::Make(local.schema()));
    }
    if (dist.is_hash()) {
      std::vector<int> targets(static_cast<size_t>(local.NumRows()));
      TargetSegments(local, dist.key_cols, num_segments, 0, local.NumRows(),
                     targets.data());
      for (int64_t r = 0; r < local.NumRows(); ++r) {
        segments[static_cast<size_t>(targets[static_cast<size_t>(r)])]
            ->AppendRows(local, r, r + 1);
      }
    } else {
      for (int64_t r = 0; r < local.NumRows(); ++r) {
        segments[static_cast<size_t>(r % num_segments)]->AppendRows(local, r,
                                                                    r + 1);
      }
    }
  }
  return std::make_shared<DistributedTable>(local.schema(),
                                            std::move(segments),
                                            std::move(dist), std::move(name));
}

DistributedTablePtr DistributedTable::MakeEmpty(Schema schema,
                                                int num_segments,
                                                Distribution dist,
                                                std::string name) {
  Table empty(schema);
  return Distribute(empty, num_segments, std::move(dist), std::move(name));
}

int64_t DistributedTable::NumRows() const {
  if (dist_.is_replicated()) return segments_[0]->NumRows();
  int64_t n = 0;
  for (const auto& s : segments_) n += s->NumRows();
  return n;
}

int64_t DistributedTable::PhysicalRows() const {
  if (dist_.is_replicated()) {
    return segments_[0]->NumRows() * num_segments();
  }
  return NumRows();
}

int64_t DistributedTable::ByteSize() const {
  if (dist_.is_replicated()) {
    return segments_[0]->ByteSize() * num_segments();
  }
  int64_t n = 0;
  for (const auto& s : segments_) n += s->ByteSize();
  return n;
}

TablePtr DistributedTable::ToLocal() const {
  auto out = Table::Make(schema_);
  if (dist_.is_replicated()) {
    out->AppendTable(*segments_[0]);
    return out;
  }
  for (const auto& s : segments_) out->AppendTable(*s);
  return out;
}

Status DistributedTable::ValidatePlacement() const {
  if (!dist_.is_hash()) return Status::OK();
  for (int s = 0; s < num_segments(); ++s) {
    const Table& t = *segments_[static_cast<size_t>(s)];
    std::vector<int> targets(static_cast<size_t>(t.NumRows()));
    TargetSegments(t, dist_.key_cols, num_segments(), 0, t.NumRows(),
                   targets.data());
    for (int64_t r = 0; r < t.NumRows(); ++r) {
      int target = targets[static_cast<size_t>(r)];
      if (target != s) {
        return Status::Internal(StrFormat(
            "table '%s': row %lld of segment %d hashes to segment %d",
            name_.c_str(), static_cast<long long>(r), s, target));
      }
    }
  }
  return Status::OK();
}

}  // namespace probkb
