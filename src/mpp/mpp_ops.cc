#include "mpp/mpp_ops.h"

#include "engine/ops.h"
#include "util/timer.h"

namespace probkb {

namespace {

/// True if rows that agree on the paired join keys are guaranteed to be on
/// the same segment for both inputs: each side is hash-distributed on a
/// subsequence of its join keys and the subsequences are paired positionally
/// (so the hash inputs are equal across sides).
bool CollocatedOn(const Distribution& left, const Distribution& right,
                  const std::vector<int>& left_keys,
                  const std::vector<int>& right_keys) {
  if (!left.is_hash() || !right.is_hash()) return false;
  if (left.key_cols.size() != right.key_cols.size()) return false;
  if (left.key_cols.empty()) return false;
  size_t pos = 0;
  for (size_t i = 0; i < left.key_cols.size(); ++i) {
    bool found = false;
    while (pos < left_keys.size()) {
      if (left_keys[pos] == left.key_cols[i] &&
          right_keys[pos] == right.key_cols[i]) {
        found = true;
        ++pos;
        break;
      }
      ++pos;
    }
    if (!found) return false;
  }
  return true;
}

/// Runs the pool-gated fan-out shared by the per-segment operators: calls
/// `body(s)` for every segment, concurrently when the context carries a
/// pool of more than one thread AND the operator touches enough rows
/// (`total_rows`, summed over every input) to amortize the dispatch,
/// serially (in segment order) otherwise. Segments are independent units
/// writing disjoint slots, so the two paths produce identical state.
void ForEachSegment(MppContext* ctx, int num_segments, int64_t total_rows,
                    const std::function<void(int)>& body) {
  ThreadPool* pool = ctx->thread_pool();
  if (pool != nullptr && pool->num_threads() > 1 && num_segments > 1 &&
      total_rows >= MppContext::SerialFanoutRowCutoff()) {
    pool->ParallelFor(num_segments, 1, [&](int64_t begin, int64_t end) {
      for (int64_t s = begin; s < end; ++s) body(static_cast<int>(s));
    });
  } else {
    for (int s = 0; s < num_segments; ++s) body(s);
  }
}

/// Runs `make_plan(segment_table_a, segment_table_b)` on every segment pair,
/// measuring per-segment time, and assembles a DistributedTable with the
/// declared distribution. Segments fan out onto the context's thread pool;
/// each gets a fresh ExecContext (no injector, no nested pool), and error
/// statuses surface in canonical segment order, so the threaded path reports
/// the same first failure as the serial one.
template <typename MakePlan>
Result<DistributedTablePtr> PerSegment(MppContext* ctx, int num_segments,
                                       int64_t input_rows,
                                       const Schema* out_schema_hint,
                                       Distribution out_dist,
                                       const std::string& label,
                                       MakePlan make_plan) {
  std::vector<TablePtr> out_segments(static_cast<size_t>(num_segments));
  std::vector<double> seg_seconds(static_cast<size_t>(num_segments), 0.0);
  std::vector<Status> statuses(static_cast<size_t>(num_segments));
  ForEachSegment(ctx, num_segments, input_rows, [&](int s) {
    ExecContext ec;
    ec.set_spill(ctx->spill());
    Timer timer;
    PlanNodePtr plan = make_plan(s);
    Result<TablePtr> result = plan->Execute(&ec);
    seg_seconds[static_cast<size_t>(s)] = timer.Seconds();
    if (result.ok()) {
      out_segments[static_cast<size_t>(s)] = result.MoveValueOrDie();
    } else {
      statuses[static_cast<size_t>(s)] = result.status();
    }
  });
  for (const Status& st : statuses) PROBKB_RETURN_NOT_OK(st);
  ctx->RecordCompute(label, seg_seconds);
  Schema schema =
      out_schema_hint != nullptr ? *out_schema_hint : out_segments[0]->schema();
  return std::make_shared<DistributedTable>(schema, std::move(out_segments),
                                            std::move(out_dist), label);
}

}  // namespace

Result<DistributedTablePtr> MppHashJoin(MppContext* ctx,
                                        DistributedTablePtr left,
                                        DistributedTablePtr right,
                                        MppJoinSpec spec) {
  if (spec.left_keys.size() != spec.right_keys.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  const int n = ctx->num_segments();

  // Semi/anti joins need every probe (left) row to see the *entire* build
  // side relevant to its key. A replicated left with a partitioned right
  // would test each left copy against a fragment only; force a broadcast
  // of the right side in that case.
  if (left->distribution().is_replicated() &&
      !right->distribution().is_replicated()) {
    if (spec.type != JoinType::kInner) {
      PROBKB_ASSIGN_OR_RETURN(right, ctx->Broadcast(*right));
    }
  }

  // Motion planning: establish collocation.
  if (!right->distribution().is_replicated() &&
      !left->distribution().is_replicated() &&
      !CollocatedOn(left->distribution(), right->distribution(),
                    spec.left_keys, spec.right_keys)) {
    // Resolve the policy to a concrete motion. kAuto asks the attached
    // planner to cost the candidates from the actual input sizes; with no
    // planner it is the static redistribute rule (the pre-planner
    // behavior, so kAuto stays byte-for-byte compatible by default).
    MotionChoice choice = MotionChoice::kRedistribute;
    switch (spec.policy) {
      case MotionPolicy::kAuto: {
        if (AdaptivePlanner* planner = ctx->planner(); planner != nullptr) {
          JoinMotionQuery q;
          q.statement = spec.label;
          q.left_rows = left->NumRows();
          q.right_rows = right->NumRows();
          q.left_collocated = left->distribution().IsHashOn(spec.left_keys);
          q.right_collocated = right->distribution().IsHashOn(spec.right_keys);
          q.inner_join = spec.type == JoinType::kInner;
          choice = planner->DecideJoinMotion(q).choice;
        }
        break;
      }
      case MotionPolicy::kRedistribute:
        choice = MotionChoice::kRedistribute;
        break;
      case MotionPolicy::kBroadcastRight:
        choice = MotionChoice::kBroadcastRight;
        break;
      case MotionPolicy::kBroadcastLeft:
        choice = MotionChoice::kBroadcastLeft;
        break;
    }
    switch (choice) {
      case MotionChoice::kRedistribute: {
        if (!left->distribution().IsHashOn(spec.left_keys)) {
          PROBKB_ASSIGN_OR_RETURN(left,
                                  ctx->Redistribute(*left, spec.left_keys));
        }
        if (!right->distribution().IsHashOn(spec.right_keys)) {
          PROBKB_ASSIGN_OR_RETURN(right,
                                  ctx->Redistribute(*right, spec.right_keys));
        }
        break;
      }
      case MotionChoice::kBroadcastRight: {
        PROBKB_ASSIGN_OR_RETURN(right, ctx->Broadcast(*right));
        break;
      }
      case MotionChoice::kBroadcastLeft: {
        if (spec.type != JoinType::kInner) {
          return Status::InvalidArgument(
              "broadcast-left is only valid for inner joins");
        }
        PROBKB_ASSIGN_OR_RETURN(left, ctx->Broadcast(*left));
        break;
      }
    }
  }

  // Both replicated: run the join once and replicate the result.
  const bool both_replicated = left->distribution().is_replicated() &&
                               right->distribution().is_replicated();

  // If only the left is replicated (inner join), each left copy must join
  // against its local right fragment exactly once — that already works per
  // segment because the right side is partitioned.

  Distribution out_dist = both_replicated ? Distribution::Replicated()
                                          : spec.output_dist;

  if (both_replicated) {
    ExecContext ec;
    ec.set_spill(ctx->spill());
    Timer timer;
    auto plan = HashJoin(Scan(left->segment(0), left->name()),
                         Scan(right->segment(0), right->name()),
                         spec.left_keys, spec.right_keys, spec.type,
                         spec.output_cols, spec.residual);
    PROBKB_ASSIGN_OR_RETURN(TablePtr result, plan->Execute(&ec));
    ctx->RecordCompute(spec.label, {timer.Seconds()});
    std::vector<TablePtr> segments(static_cast<size_t>(n), result);
    return std::make_shared<DistributedTable>(result->schema(),
                                              std::move(segments),
                                              std::move(out_dist), spec.label);
  }

  auto left_ref = left;
  auto right_ref = right;
  return PerSegment(
      ctx, n, left->PhysicalRows() + right->PhysicalRows(), nullptr,
      std::move(out_dist), spec.label, [&](int s) {
        return HashJoin(Scan(left_ref->segment(s), left_ref->name()),
                        Scan(right_ref->segment(s), right_ref->name()),
                        spec.left_keys, spec.right_keys, spec.type,
                        spec.output_cols, spec.residual);
      });
}

Result<DistributedTablePtr> MppFilterProject(
    MppContext* ctx, DistributedTablePtr input, RowPredicate pred,
    std::optional<std::vector<ProjectExpr>> exprs, Distribution output_dist,
    const std::string& label) {
  return PerSegment(
      ctx, ctx->num_segments(), input->PhysicalRows(), nullptr,
      std::move(output_dist), label, [&](int s) {
        PlanNodePtr plan = Scan(input->segment(s), input->name());
        if (pred != nullptr) plan = Filter(std::move(plan), pred);
        if (exprs.has_value()) plan = Project(std::move(plan), *exprs);
        return plan;
      });
}

Result<DistributedTablePtr> MppDistinct(MppContext* ctx,
                                        DistributedTablePtr input,
                                        std::vector<int> key_cols,
                                        const std::string& label) {
  if (!input->distribution().is_replicated() &&
      !input->distribution().HashKeySubsetOf(key_cols)) {
    PROBKB_ASSIGN_OR_RETURN(input, ctx->Redistribute(*input, key_cols));
  }
  if (input->distribution().is_replicated()) {
    // Distinct of a replicated table stays replicated; run once.
    ExecContext ec;
    ec.set_spill(ctx->spill());
    Timer timer;
    auto plan = Distinct(Scan(input->segment(0), input->name()), key_cols);
    PROBKB_ASSIGN_OR_RETURN(TablePtr result, plan->Execute(&ec));
    ctx->RecordCompute(label, {timer.Seconds()});
    std::vector<TablePtr> segments(
        static_cast<size_t>(ctx->num_segments()), result);
    return std::make_shared<DistributedTable>(result->schema(),
                                              std::move(segments),
                                              Distribution::Replicated(),
                                              label);
  }
  Distribution out_dist = input->distribution();
  auto input_ref = input;
  return PerSegment(ctx, ctx->num_segments(), input->PhysicalRows(), nullptr,
                    std::move(out_dist), label, [&](int s) {
                      return Distinct(
                          Scan(input_ref->segment(s), input_ref->name()),
                          key_cols);
                    });
}

Result<DistributedTablePtr> MppAggregate(MppContext* ctx,
                                         DistributedTablePtr input,
                                         std::vector<int> group_cols,
                                         std::vector<AggSpec> aggs,
                                         RowPredicate having,
                                         const std::string& label) {
  if (!input->distribution().is_replicated() &&
      !input->distribution().HashKeySubsetOf(group_cols)) {
    PROBKB_ASSIGN_OR_RETURN(input, ctx->Redistribute(*input, group_cols));
  }
  if (input->distribution().is_replicated()) {
    return Status::InvalidArgument(
        "MppAggregate over a replicated input is not supported; gather it");
  }
  // Output groups keyed by group columns 0..k-1 of the output schema.
  std::vector<int> out_keys;
  for (size_t i = 0; i < group_cols.size(); ++i) {
    out_keys.push_back(static_cast<int>(i));
  }
  // The input hash key (a subset of group_cols) maps to output positions.
  std::vector<int> out_dist_keys;
  for (int k : input->distribution().key_cols) {
    for (size_t i = 0; i < group_cols.size(); ++i) {
      if (group_cols[i] == k) {
        out_dist_keys.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  auto input_ref = input;
  return PerSegment(
      ctx, ctx->num_segments(), input->PhysicalRows(), nullptr,
      out_dist_keys.empty() ? Distribution::Random()
                            : Distribution::Hash(out_dist_keys),
      label, [&](int s) {
        return Aggregate(Scan(input_ref->segment(s), input_ref->name()),
                         group_cols, aggs, having);
      });
}

Result<int64_t> MppSetUnionInto(MppContext* ctx, DistributedTable* dst,
                                const DistributedTable& src,
                                const std::vector<int>& key_cols) {
  if (!dst->distribution().is_hash() ||
      !dst->distribution().HashKeySubsetOf(key_cols)) {
    return Status::InvalidArgument(
        "MppSetUnionInto: destination must be hash-distributed on a subset "
        "of the union key");
  }
  DistributedTablePtr src_ready;
  if (src.distribution().IsHashOn(dst->distribution().key_cols)) {
    src_ready = std::make_shared<DistributedTable>(src);
  } else {
    PROBKB_ASSIGN_OR_RETURN(
        src_ready, ctx->Redistribute(src, dst->distribution().key_cols));
  }
  // Each segment unions into its own partition — disjoint writes, so the
  // fan-out is safe; per-segment counts are summed in canonical order.
  const int n = ctx->num_segments();
  std::vector<double> seg_seconds(static_cast<size_t>(n));
  std::vector<int64_t> seg_added(static_cast<size_t>(n), 0);
  ForEachSegment(ctx, n, dst->PhysicalRows() + src_ready->PhysicalRows(),
                 [&](int s) {
    Timer timer;
    seg_added[static_cast<size_t>(s)] =
        SetUnionInto(dst->mutable_segment(s).get(), *src_ready->segment(s),
                     key_cols);
    seg_seconds[static_cast<size_t>(s)] = timer.Seconds();
  });
  int64_t added = 0;
  for (int64_t a : seg_added) added += a;
  ctx->RecordCompute("union into " + dst->name(), seg_seconds);
  return added;
}

Result<int64_t> MppDeleteMatching(MppContext* ctx, DistributedTable* dst,
                                  const std::vector<int>& dst_cols,
                                  const DistributedTable& keys,
                                  const std::vector<int>& key_cols) {
  DistributedTablePtr keys_ready;
  if (keys.distribution().is_replicated()) {
    keys_ready = std::make_shared<DistributedTable>(keys);
  } else {
    PROBKB_ASSIGN_OR_RETURN(keys_ready, ctx->Broadcast(keys));
  }
  // Broadcast keys share one TablePtr across segments — concurrent const
  // reads are safe; each segment deletes from its own partition.
  const int n = ctx->num_segments();
  std::vector<double> seg_seconds(static_cast<size_t>(n));
  std::vector<int64_t> seg_deleted(static_cast<size_t>(n), 0);
  ForEachSegment(ctx, n, dst->PhysicalRows() + keys_ready->PhysicalRows(),
                 [&](int s) {
    Timer timer;
    seg_deleted[static_cast<size_t>(s)] =
        DeleteMatching(dst->mutable_segment(s).get(), dst_cols,
                       *keys_ready->segment(s), key_cols);
    seg_seconds[static_cast<size_t>(s)] = timer.Seconds();
  });
  int64_t deleted = 0;
  for (int64_t d : seg_deleted) deleted += d;
  ctx->RecordCompute("delete from " + dst->name(), seg_seconds);
  return deleted;
}

}  // namespace probkb
