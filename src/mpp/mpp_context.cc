#include "mpp/mpp_context.h"

#include <algorithm>
#include <map>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace probkb {

namespace {

const char* KindName(MppStep::Kind kind) {
  switch (kind) {
    case MppStep::Kind::kCompute:
      return "compute";
    case MppStep::Kind::kRedistribute:
      return "redistribute";
    case MppStep::Kind::kBroadcast:
      return "broadcast";
    case MppStep::Kind::kGather:
      return "gather";
    case MppStep::Kind::kRecovery:
      return "recovery";
  }
  return "?";
}

}  // namespace

Status MppContext::CheckDeadline() const {
  if (deadline_seconds_ > 0 &&
      cost_.simulated_seconds() > deadline_seconds_) {
    return Status::DeadlineExceeded(
        StrFormat("simulated time %.3fs exceeded the %.3fs deadline",
                  cost_.simulated_seconds(), deadline_seconds_));
  }
  return Status::OK();
}

Status MppContext::BeginMotion(const std::string& label,
                               int64_t* motion_index) {
  *motion_index = next_motion_index_++;
  FlightRecorder::Global()->Record(FrEvent::kMotionBegin, label,
                                   *motion_index);
  // Supervisor upkeep rides the motion clock (not wall time), so heartbeat
  // events land at deterministic points of the motion sequence.
  if (runtime_ != nullptr) runtime_->HeartbeatTick(*motion_index);
  if (injector_ != nullptr) {
    PROBKB_RETURN_NOT_OK(injector_->OperatorFault(*motion_index, label));
  }
  return CheckDeadline();
}

std::vector<int> MppContext::ApplyPhysicalFaults(
    const std::vector<FaultEvent>& faults) {
  std::vector<int> corrupt(static_cast<size_t>(num_segments_), 0);
  if (runtime_ == nullptr) return corrupt;
  for (const FaultEvent& f : faults) {
    if (IsSegmentLoss(f.kind)) {
      // The victim's worker really dies; the exchange loop detects the
      // broken channel, harvests the journal, and respawns it.
      runtime_->KillWorker(f.segment);
    } else if (f.kind == FaultKind::kCorruptFrame) {
      if (f.target >= 0 && f.target < num_segments_) {
        ++corrupt[static_cast<size_t>(f.target)];
      }
    }
  }
  return corrupt;
}

Status MppContext::RecoverMotion(
    int64_t motion_index, const std::string& label,
    const std::vector<FaultEvent>& faults,
    const std::function<int64_t(const FaultEvent&)>& resend_tuples) {
  if (faults.empty()) return Status::OK();
  FaultStats* stats = injector_->mutable_stats();

  double backoff_seconds = 0.0;
  int64_t reshipped = 0;
  int64_t recovered = 0;  // shadow of stats->recovered_faults, this motion

  // Batch-level faults recover in one exchange with the (alive) sender:
  // a dropped batch is retransmitted from the sender's materialized
  // output, a duplicated batch is detected against the sender's declared
  // row count and the extra copy discarded. Applies to first-try faults
  // and to batch faults scheduled on retry attempts alike, so every
  // injected fault is either recovered or charged as unrecovered.
  auto absorb_batch_fault = [&](const FaultEvent& f) {
    switch (f.kind) {
      case FaultKind::kDropBatch:
      case FaultKind::kCorruptFrame:
        // A corrupted frame is detected by the receiver's checksum and
        // NACKed, costing the same one-batch retransmission as a drop.
        backoff_seconds += retry_.BackoffSeconds(1);
        reshipped += resend_tuples(f);
        ++stats->retries;
        ++stats->recovered_faults;
        ++recovered;
        return true;
      case FaultKind::kDuplicateBatch:
        // The duplicate burned interconnect bandwidth before detection.
        reshipped += resend_tuples(f);
        ++stats->recovered_faults;
        ++recovered;
        return true;
      default:
        return false;
    }
  };

  std::vector<FaultEvent> pending;  // segment-loss faults, retried below
  for (const FaultEvent& f : faults) {
    if (!absorb_batch_fault(f) && IsSegmentLoss(f.kind)) {
      pending.push_back(f);
    }
  }

  // Segment failures: re-run each victim's partition from the surviving
  // materialized-view inputs, under capped exponential backoff. A retry
  // can itself be struck (the injector's schedule decides), so this loops
  // until the pending set drains or the attempt budget runs out.
  for (int attempt = 1; !pending.empty(); ++attempt) {
    if (attempt > retry_.max_attempts) {
      ++stats->unrecovered_motions;
      FlightRecorder::Global()->Record(FrEvent::kMotionFailed, label,
                                       motion_index, retry_.max_attempts,
                                       pending.front().segment);
      // Account what recovery burned before giving up.
      MppStep step;
      step.kind = MppStep::Kind::kRecovery;
      step.label = "recovery " + label + " (failed)";
      step.tuples_shipped = reshipped;
      step.seconds = backoff_seconds + MotionSeconds(reshipped);
      cost_.Add(std::move(step));
      stats->backoff_seconds += backoff_seconds;
      stats->tuples_reshipped += reshipped;
      return Status::ResourceExhausted(StrFormat(
          "motion %lld (%s): segment %d still failed after %d attempts",
          static_cast<long long>(motion_index), label.c_str(),
          pending.front().segment, retry_.max_attempts));
    }
    backoff_seconds += retry_.BackoffSeconds(attempt);
    ++stats->retries;
    FlightRecorder::Global()->Record(
        FrEvent::kRetryAttempt, label, motion_index, attempt,
        static_cast<int64_t>(pending.size()));

    std::map<int, FaultEvent> failed_again;
    for (const FaultEvent& f :
         injector_->MotionFaults(motion_index, attempt, num_segments_)) {
      if (!absorb_batch_fault(f) && IsSegmentLoss(f.kind)) {
        failed_again.emplace(f.segment, f);
      }
    }

    std::vector<FaultEvent> still_pending;
    for (const FaultEvent& f : pending) {
      auto it = failed_again.find(f.segment);
      if (it != failed_again.end()) {
        still_pending.push_back(f);
        failed_again.erase(it);
      } else {
        reshipped += resend_tuples(f);
        ++stats->recovered_faults;
        ++recovered;
      }
    }
    // A retry-time segment failure that struck a segment not mid-recovery
    // claims a fresh victim: its contribution is lost too and must be
    // replayed on the next attempt.
    for (const auto& [segment, f] : failed_again) still_pending.push_back(f);
    pending = std::move(still_pending);
  }

  MppStep step;
  step.kind = MppStep::Kind::kRecovery;
  step.label = "recovery " + label;
  step.tuples_shipped = reshipped;
  step.seconds = backoff_seconds + MotionSeconds(reshipped);
  cost_.Add(std::move(step));
  stats->backoff_seconds += backoff_seconds;
  stats->tuples_reshipped += reshipped;
  FlightRecorder::Global()->Record(FrEvent::kMotionRecovered, label,
                                   motion_index, recovered, reshipped);
  return Status::OK();
}

Status MppContext::AccountMotion(
    MppStep::Kind kind, const std::string& label, int64_t tuples_shipped,
    const std::function<int64_t(const FaultEvent&)>& resend_tuples,
    const Table* payload, std::span<const int> payload_targets,
    std::vector<TablePtr>* delivered) {
  int64_t motion_index = 0;
  PROBKB_RETURN_NOT_OK(BeginMotion(label, &motion_index));
  TraceSpan motion_span(Tracer::Global(), label.c_str(), KindName(kind),
                        motion_index, tuples_shipped, 0);

  // Per-target slice sizes, computed up front so the sim and process
  // branches emit byte-identical ship spans (one per target, same counts).
  std::vector<int64_t> target_rows;
  if (payload != nullptr && tuples_shipped > 0 &&
      payload_targets.size() == static_cast<size_t>(payload->NumRows())) {
    target_rows.assign(static_cast<size_t>(num_segments_), 0);
    for (int t : payload_targets) {
      if (t >= 0 && t < num_segments_) ++target_rows[static_cast<size_t>(t)];
    }
  }

  // One consultation per (motion, attempt 0): the list drives both the
  // physical faults below and the modelled recovery accounting, so the
  // injector's random stream is identical in sim and process mode.
  std::vector<FaultEvent> faults;
  if (injector_ != nullptr && tuples_shipped > 0) {
    faults = injector_->MotionFaults(motion_index, 0, num_segments_);
  }

  if (runtime_ != nullptr && payload != nullptr && tuples_shipped > 0) {
    std::vector<int> corrupt = ApplyPhysicalFaults(faults);
    PROBKB_DCHECK(payload_targets.size() ==
                  static_cast<size_t>(payload->NumRows()));
    delivered->assign(static_cast<size_t>(num_segments_), nullptr);
    for (int t = 0; t < num_segments_; ++t) {
      // Each target's slice keeps the payload's row order, so appending
      // the echoed slice reproduces the caller's local append order.
      Table slice(payload->schema());
      for (int64_t r = 0; r < payload->NumRows(); ++r) {
        if (payload_targets[static_cast<size_t>(r)] == t) {
          slice.AppendRows(*payload, r, r + 1);
        }
      }
      // The ship span is the parent the worker's journaled span stitches
      // under (its ids ride the exchange frames).
      TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index, t,
                     slice.NumRows());
      Result<TablePtr> echoed = runtime_->Exchange(
          t, motion_index, slice, label, corrupt[static_cast<size_t>(t)]);
      PROBKB_RETURN_NOT_OK(echoed.status());
      (*delivered)[static_cast<size_t>(t)] = echoed.MoveValueOrDie();
    }
  } else if (runtime_ == nullptr && !target_rows.empty()) {
    // Simulator counterpart of the physical exchange loop above: same
    // spans, same deterministic payloads, zero wire traffic.
    for (int t = 0; t < num_segments_; ++t) {
      TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index, t,
                     target_rows[static_cast<size_t>(t)]);
    }
  }

  if (injector_ != nullptr && tuples_shipped > 0) {
    PROBKB_RETURN_NOT_OK(
        RecoverMotion(motion_index, label, faults, resend_tuples));
  }

  MppStep step;
  step.kind = kind;
  step.label = label;
  step.tuples_shipped = tuples_shipped;
  step.seconds = kind == MppStep::Kind::kBroadcast
                     ? BroadcastSeconds(tuples_shipped)
                     : MotionSeconds(tuples_shipped);
  const double seconds = step.seconds;
  cost_.Add(std::move(step));
  if (obs_ != nullptr) {
    // Caller-performed movement: the context never sees the schema or the
    // per-segment placement, so bytes and skew stay unreported here.
    obs_->RecordMotion(label, KindName(kind), tuples_shipped, 0, seconds, {});
  }
  return Status::OK();
}

Result<DistributedTablePtr> MppContext::Redistribute(
    const DistributedTable& input, std::vector<int> key_cols,
    std::string name) {
  for (int c : key_cols) {
    if (c < 0 || c >= input.schema().num_fields()) {
      return Status::InvalidArgument(
          StrFormat("redistribute key column %d out of range", c));
    }
  }
  const std::string label =
      input.name().empty() ? "redistribute" : input.name();
  int64_t motion_index = 0;
  PROBKB_RETURN_NOT_OK(BeginMotion(label, &motion_index));
  TraceSpan motion_span(Tracer::Global(), label.c_str(), "redistribute",
                        motion_index);

  const int n = num_segments_;
  std::vector<TablePtr> segments;
  segments.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) segments.push_back(Table::Make(input.schema()));

  int64_t shipped = 0;
  if (input.distribution().is_replicated()) {
    // Each segment keeps only the slice of its copy that hashes to it; no
    // interconnect traffic (and hence no motion faults) is involved.
    const Table& src = *input.segment(0);
    std::vector<int> targets(static_cast<size_t>(src.NumRows()));
    DistributedTable::TargetSegments(src, key_cols, n, 0, src.NumRows(),
                                     targets.data());
    for (int64_t r = 0; r < src.NumRows(); ++r) {
      segments[static_cast<size_t>(targets[static_cast<size_t>(r)])]
          ->AppendRows(src, r, r + 1);
    }
  } else {
    // Per-sender batch counts: sent[s][t] tuples cross from segment s to
    // segment t. They double as the recovery bookkeeping — a victim's
    // whole contribution (segment failure) or one batch (drop/duplicate)
    // can be replayed from the surviving input partition.
    std::vector<std::vector<int64_t>> sent(
        static_cast<size_t>(n), std::vector<int64_t>(static_cast<size_t>(n)));
    // Phase 1: route. Each sender's rows hash to their targets; senders
    // are independent, so the pool fans them out.
    std::vector<std::vector<int>> targets(static_cast<size_t>(n));
    auto route_sender = [&](int s) {
      const Table& src = *input.segment(s);
      std::vector<int>& tgt = targets[static_cast<size_t>(s)];
      tgt.resize(static_cast<size_t>(src.NumRows()));
      if (src.NumRows() > 0) {
        DistributedTable::TargetSegments(src, key_cols, n, 0, src.NumRows(),
                                         tgt.data());
      }
      std::vector<int64_t>& row_sent = sent[static_cast<size_t>(s)];
      for (int64_t r = 0; r < src.NumRows(); ++r) {
        const int target = tgt[static_cast<size_t>(r)];
        if (target != s) ++row_sent[static_cast<size_t>(target)];
      }
    };
    // Phase 2: assemble. Each target segment scans the senders in order
    // and appends its rows; targets write disjoint output tables, and the
    // sender-major scan keeps assembly canonical — recovery recomputes a
    // victim's rows into exactly these positions, so a recovered (or
    // threaded) run is bit-identical to a serial fault-free one.
    auto fill_target = [&](int t) {
      Table* dst = segments[static_cast<size_t>(t)].get();
      int64_t expected = 0;
      for (int s = 0; s < n; ++s) {
        expected += sent[static_cast<size_t>(s)][static_cast<size_t>(t)];
      }
      expected += input.segment(t)->NumRows();  // upper bound: local rows
      dst->ReserveRows(expected);
      for (int s = 0; s < n; ++s) {
        const Table& src = *input.segment(s);
        const std::vector<int>& tgt = targets[static_cast<size_t>(s)];
        for (int64_t r = 0; r < src.NumRows(); ++r) {
          if (tgt[static_cast<size_t>(r)] == t) dst->AppendRows(src, r, r + 1);
        }
      }
    };
    const bool physical = runtime_ != nullptr;
    if (!physical && pool_ != nullptr && pool_->num_threads() > 1 && n > 1 &&
        input.PhysicalRows() >= SerialFanoutRowCutoff()) {
      pool_->ParallelFor(n, 1, [&](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) {
          route_sender(static_cast<int>(s));
        }
      });
      pool_->ParallelFor(n, 1, [&](int64_t begin, int64_t end) {
        for (int64_t t = begin; t < end; ++t) {
          fill_target(static_cast<int>(t));
        }
      });
    } else if (!physical) {
      for (int s = 0; s < n; ++s) route_sender(s);
      for (int t = 0; t < n; ++t) fill_target(t);
    } else {
      // Process mode: route on the (single-threaded) supervisor, assemble
      // from echoed frames below.
      for (int s = 0; s < n; ++s) route_sender(s);
    }
    for (int s = 0; s < n; ++s) {
      for (int64_t batch : sent[static_cast<size_t>(s)]) shipped += batch;
    }
    // Simulated ship spans mirror the physical exchange loop below: one
    // per target, c = the cross-segment rows bound for it, so the
    // canonical span dump is identical across runtimes.
    if (!physical && shipped > 0) {
      for (int t = 0; t < n; ++t) {
        int64_t cross = 0;
        for (int s = 0; s < n; ++s) {
          if (s != t) cross += sent[static_cast<size_t>(s)][
              static_cast<size_t>(t)];
        }
        TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index, t,
                       cross);
      }
    }
    // Like Broadcast/Gather, only a redistribute that actually touched the
    // interconnect can fault: when every row hashed to its home segment
    // there is no traffic to strike. One fault consultation drives both
    // the physical actions and the modelled recovery.
    std::vector<FaultEvent> faults;
    if (injector_ != nullptr && shipped > 0) {
      faults = injector_->MotionFaults(motion_index, 0, n);
    }
    if (physical) {
      if (shipped > 0) {
        std::vector<int> corrupt = ApplyPhysicalFaults(faults);
        for (int t = 0; t < n; ++t) {
          // Every cross-segment row bound for t, sender-major — the same
          // order fill_target scans, so the echoed copy slices back into
          // canonical positions.
          Table inbound(input.schema());
          for (int s = 0; s < n; ++s) {
            if (s == t) continue;
            const Table& src = *input.segment(s);
            const std::vector<int>& tgt = targets[static_cast<size_t>(s)];
            for (int64_t r = 0; r < src.NumRows(); ++r) {
              if (tgt[static_cast<size_t>(r)] == t) {
                inbound.AppendRows(src, r, r + 1);
              }
            }
          }
          TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index,
                         t, inbound.NumRows());
          Result<TablePtr> echoed = runtime_->Exchange(
              t, motion_index, inbound, label,
              corrupt[static_cast<size_t>(t)]);
          if (!echoed.ok()) return echoed.status();
          // Rebuild segment t in fill_target's sender-major order: local
          // rows come from this address space, cross rows from the frames
          // that round-tripped through worker t.
          Table* dst = segments[static_cast<size_t>(t)].get();
          int64_t offset = 0;
          for (int s = 0; s < n; ++s) {
            if (s == t) {
              const Table& src = *input.segment(s);
              const std::vector<int>& tgt = targets[static_cast<size_t>(s)];
              for (int64_t r = 0; r < src.NumRows(); ++r) {
                if (tgt[static_cast<size_t>(r)] == t) {
                  dst->AppendRows(src, r, r + 1);
                }
              }
            } else {
              const int64_t batch =
                  sent[static_cast<size_t>(s)][static_cast<size_t>(t)];
              dst->AppendRows(**echoed, offset, offset + batch);
              offset += batch;
            }
          }
        }
      } else {
        for (int t = 0; t < n; ++t) fill_target(t);
      }
    }
    if (injector_ != nullptr && shipped > 0) {
      auto resend = [&](const FaultEvent& f) -> int64_t {
        if (IsSegmentLoss(f.kind)) {
          // Everything the victim shipped anywhere must be replayed.
          int64_t t = 0;
          for (int64_t batch : sent[static_cast<size_t>(f.segment)]) {
            t += batch;
          }
          return t;
        }
        return sent[static_cast<size_t>(f.segment)][
            static_cast<size_t>(f.target)];
      };
      PROBKB_RETURN_NOT_OK(
          RecoverMotion(motion_index, label, faults, resend));
    }
  }

  motion_span.set_values(motion_index, shipped, 0);

  MppStep step;
  step.kind = MppStep::Kind::kRedistribute;
  step.label = label;
  step.tuples_shipped = shipped;
  step.seconds = MotionSeconds(shipped);
  cost_.Add(std::move(step));

  if (obs_ != nullptr) {
    std::vector<int64_t> per_segment;
    per_segment.reserve(static_cast<size_t>(n));
    for (const TablePtr& seg : segments) per_segment.push_back(seg->NumRows());
    obs_->RecordMotion(label, "redistribute", shipped,
                       shipped * input.schema().num_fields() * 8,
                       MotionSeconds(shipped), per_segment);
  }

  return std::make_shared<DistributedTable>(
      input.schema(), std::move(segments), Distribution::Hash(key_cols),
      name.empty() ? input.name() + "_redist" : std::move(name));
}

Result<DistributedTablePtr> MppContext::Broadcast(
    const DistributedTable& input, std::string name) {
  const std::string label = input.name().empty() ? "broadcast" : input.name();
  int64_t motion_index = 0;
  PROBKB_RETURN_NOT_OK(BeginMotion(label, &motion_index));
  TraceSpan motion_span(Tracer::Global(), label.c_str(), "broadcast",
                        motion_index);

  TablePtr full = input.ToLocal();
  int64_t shipped = input.distribution().is_replicated()
                        ? 0
                        : full->NumRows() * (num_segments_ - 1);
  motion_span.set_values(motion_index, shipped, 0);

  std::vector<FaultEvent> faults;
  if (injector_ != nullptr && shipped > 0) {
    faults = injector_->MotionFaults(motion_index, 0, num_segments_);
  }

  // Process mode: every segment's copy physically round-trips through its
  // worker; segment t holds the tuples exactly as they came off the wire.
  std::vector<TablePtr> echoed_copies;
  if (runtime_ != nullptr && shipped > 0) {
    std::vector<int> corrupt = ApplyPhysicalFaults(faults);
    echoed_copies.resize(static_cast<size_t>(num_segments_));
    for (int t = 0; t < num_segments_; ++t) {
      TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index, t,
                     full->NumRows());
      Result<TablePtr> echoed = runtime_->Exchange(
          t, motion_index, *full, label, corrupt[static_cast<size_t>(t)]);
      if (!echoed.ok()) return echoed.status();
      echoed_copies[static_cast<size_t>(t)] = echoed.MoveValueOrDie();
    }
  } else if (runtime_ == nullptr && shipped > 0) {
    // Simulator counterpart of the physical loop: same ship spans.
    for (int t = 0; t < num_segments_; ++t) {
      TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index, t,
                     full->NumRows());
    }
  }

  if (injector_ != nullptr && shipped > 0) {
    // Any fault on a broadcast costs one full copy re-sent to the victim
    // (the source table survives on its home segments).
    auto resend = [&](const FaultEvent&) { return full->NumRows(); };
    PROBKB_RETURN_NOT_OK(RecoverMotion(motion_index, label, faults, resend));
  }

  MppStep step;
  step.kind = MppStep::Kind::kBroadcast;
  step.label = label;
  step.tuples_shipped = shipped;
  step.seconds = BroadcastSeconds(shipped);
  cost_.Add(std::move(step));

  if (obs_ != nullptr) {
    std::vector<int64_t> per_segment(static_cast<size_t>(num_segments_),
                                     full->NumRows());
    obs_->RecordMotion(label, "broadcast", shipped,
                       shipped * input.schema().num_fields() * 8,
                       BroadcastSeconds(shipped), per_segment);
  }

  std::vector<TablePtr> segments =
      echoed_copies.empty()
          ? std::vector<TablePtr>(static_cast<size_t>(num_segments_), full)
          : std::move(echoed_copies);
  return std::make_shared<DistributedTable>(
      input.schema(), std::move(segments), Distribution::Replicated(),
      name.empty() ? input.name() + "_bcast" : std::move(name));
}

Result<TablePtr> MppContext::Gather(const DistributedTable& input) {
  const std::string label = input.name().empty() ? "gather" : input.name();
  int64_t motion_index = 0;
  PROBKB_RETURN_NOT_OK(BeginMotion(label, &motion_index));
  TraceSpan motion_span(Tracer::Global(), label.c_str(), "gather",
                        motion_index);

  TablePtr out = input.ToLocal();
  int64_t shipped = out->NumRows();
  motion_span.set_values(motion_index, shipped, 0);

  std::vector<FaultEvent> faults;
  if (injector_ != nullptr && shipped > 0) {
    faults = injector_->MotionFaults(motion_index, 0, num_segments_);
  }

  if (runtime_ != nullptr && shipped > 0 &&
      !input.distribution().is_replicated()) {
    // Process mode: pull every partition off its worker and assemble the
    // coordinator copy from the echoed frames, in canonical segment order
    // (the exact order ToLocal concatenates).
    std::vector<int> corrupt = ApplyPhysicalFaults(faults);
    TablePtr wired = Table::Make(input.schema());
    wired->ReserveRows(shipped);
    for (int s = 0; s < input.num_segments(); ++s) {
      TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index, s,
                     input.segment(s)->NumRows());
      Result<TablePtr> echoed = runtime_->Exchange(
          s, motion_index, *input.segment(s), label,
          corrupt[static_cast<size_t>(s)]);
      if (!echoed.ok()) return echoed.status();
      wired->AppendTable(**echoed);
    }
    out = std::move(wired);
  } else if (runtime_ == nullptr && shipped > 0 &&
             !input.distribution().is_replicated()) {
    // Simulator counterpart of the physical pull loop: same ship spans.
    for (int s = 0; s < input.num_segments(); ++s) {
      TraceSpan ship(Tracer::Global(), "ship", "exchange", motion_index, s,
                     input.segment(s)->NumRows());
    }
  }

  if (injector_ != nullptr && shipped > 0) {
    // A victim's rows are re-pulled from its (restarted) segment; a batch
    // fault costs the same single-segment replay.
    auto resend = [&](const FaultEvent& f) {
      return f.segment < input.num_segments()
                 ? input.segment(f.segment)->NumRows()
                 : 0;
    };
    PROBKB_RETURN_NOT_OK(RecoverMotion(motion_index, label, faults, resend));
  }

  MppStep step;
  step.kind = MppStep::Kind::kGather;
  step.label = input.name();
  step.tuples_shipped = shipped;
  step.seconds = MotionSeconds(shipped);
  cost_.Add(std::move(step));
  if (obs_ != nullptr) {
    std::vector<int64_t> per_segment;
    per_segment.reserve(static_cast<size_t>(input.num_segments()));
    for (int s = 0; s < input.num_segments(); ++s) {
      per_segment.push_back(input.segment(s)->NumRows());
    }
    obs_->RecordMotion(label, "gather", shipped,
                       shipped * input.schema().num_fields() * 8,
                       MotionSeconds(shipped), per_segment);
  }
  return out;
}

void MppContext::RecordCompute(const std::string& label,
                               const std::vector<double>& seg_seconds) {
  TraceSpan span(Tracer::Global(), label.c_str(), "compute",
                 static_cast<int64_t>(seg_seconds.size()));
  MppStep step;
  step.kind = MppStep::Kind::kCompute;
  step.label = label;
  step.seconds =
      seg_seconds.empty()
          ? 0.0
          : *std::max_element(seg_seconds.begin(), seg_seconds.end());
  step.total_work_seconds = 0.0;
  for (double s : seg_seconds) step.total_work_seconds += s;
  if (obs_ != nullptr) {
    obs_->RecordCompute(label, step.seconds, step.total_work_seconds,
                        static_cast<int>(seg_seconds.size()));
  }
  cost_.Add(std::move(step));
}

}  // namespace probkb
