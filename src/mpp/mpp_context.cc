#include "mpp/mpp_context.h"

#include <algorithm>

#include "util/strings.h"

namespace probkb {

Result<DistributedTablePtr> MppContext::Redistribute(
    const DistributedTable& input, std::vector<int> key_cols,
    std::string name) {
  for (int c : key_cols) {
    if (c < 0 || c >= input.schema().num_fields()) {
      return Status::InvalidArgument(
          StrFormat("redistribute key column %d out of range", c));
    }
  }
  const int n = num_segments_;
  std::vector<TablePtr> segments;
  segments.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) segments.push_back(Table::Make(input.schema()));

  int64_t shipped = 0;
  if (input.distribution().is_replicated()) {
    // Each segment keeps only the slice of its copy that hashes to it; no
    // interconnect traffic is needed.
    const Table& src = *input.segment(0);
    for (int64_t r = 0; r < src.NumRows(); ++r) {
      RowView row = src.row(r);
      int target = DistributedTable::TargetSegment(row, key_cols, n);
      segments[static_cast<size_t>(target)]->AppendRow(row);
    }
  } else {
    for (int s = 0; s < n; ++s) {
      const Table& src = *input.segment(s);
      for (int64_t r = 0; r < src.NumRows(); ++r) {
        RowView row = src.row(r);
        int target = DistributedTable::TargetSegment(row, key_cols, n);
        if (target != s) ++shipped;
        segments[static_cast<size_t>(target)]->AppendRow(row);
      }
    }
  }

  MppStep step;
  step.kind = MppStep::Kind::kRedistribute;
  step.label = input.name().empty() ? "redistribute" : input.name();
  step.tuples_shipped = shipped;
  step.seconds = MotionSeconds(shipped);
  cost_.Add(std::move(step));

  return std::make_shared<DistributedTable>(
      input.schema(), std::move(segments), Distribution::Hash(key_cols),
      name.empty() ? input.name() + "_redist" : std::move(name));
}

Result<DistributedTablePtr> MppContext::Broadcast(
    const DistributedTable& input, std::string name) {
  TablePtr full = input.ToLocal();
  int64_t shipped = input.distribution().is_replicated()
                        ? 0
                        : full->NumRows() * (num_segments_ - 1);

  MppStep step;
  step.kind = MppStep::Kind::kBroadcast;
  step.label = input.name().empty() ? "broadcast" : input.name();
  step.tuples_shipped = shipped;
  step.seconds = BroadcastSeconds(shipped);
  cost_.Add(std::move(step));

  std::vector<TablePtr> segments(static_cast<size_t>(num_segments_), full);
  return std::make_shared<DistributedTable>(
      input.schema(), std::move(segments), Distribution::Replicated(),
      name.empty() ? input.name() + "_bcast" : std::move(name));
}

Result<TablePtr> MppContext::Gather(const DistributedTable& input) {
  TablePtr out = input.ToLocal();
  int64_t shipped = out->NumRows();

  MppStep step;
  step.kind = MppStep::Kind::kGather;
  step.label = input.name();
  step.tuples_shipped = shipped;
  step.seconds = MotionSeconds(shipped);
  cost_.Add(std::move(step));
  return out;
}

void MppContext::RecordCompute(const std::string& label,
                               const std::vector<double>& seg_seconds) {
  MppStep step;
  step.kind = MppStep::Kind::kCompute;
  step.label = label;
  step.seconds =
      seg_seconds.empty()
          ? 0.0
          : *std::max_element(seg_seconds.begin(), seg_seconds.end());
  step.total_work_seconds = 0.0;
  for (double s : seg_seconds) step.total_work_seconds += s;
  cost_.Add(std::move(step));
}

}  // namespace probkb
