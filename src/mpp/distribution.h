#ifndef PROBKB_MPP_DISTRIBUTION_H_
#define PROBKB_MPP_DISTRIBUTION_H_

#include <span>
#include <string>
#include <vector>

namespace probkb {

/// \brief How a distributed table's rows are placed on segments.
///
/// Mirrors Greenplum's DISTRIBUTED BY (hash), DISTRIBUTED REPLICATED, and
/// DISTRIBUTED RANDOMLY policies.
struct Distribution {
  enum class Kind { kHash, kReplicated, kRandom };

  Kind kind = Kind::kRandom;
  std::vector<int> key_cols;  // only for kHash

  static Distribution Hash(std::vector<int> key_cols) {
    return {Kind::kHash, std::move(key_cols)};
  }
  static Distribution Replicated() { return {Kind::kReplicated, {}}; }
  static Distribution Random() { return {Kind::kRandom, {}}; }

  bool is_hash() const { return kind == Kind::kHash; }
  bool is_replicated() const { return kind == Kind::kReplicated; }

  /// \brief True if this is a hash distribution on exactly `cols`
  /// (positionally — Greenplum collocation also requires key order to line
  /// up with the join condition).
  bool IsHashOn(std::span<const int> cols) const {
    if (kind != Kind::kHash || key_cols.size() != cols.size()) return false;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (key_cols[i] != cols[i]) return false;
    }
    return true;
  }

  /// \brief True if the hash key is a subset of `cols`; rows equal on
  /// `cols` are then guaranteed collocated (enough for GROUP BY / DISTINCT).
  bool HashKeySubsetOf(std::span<const int> cols) const {
    if (kind != Kind::kHash) return false;
    for (int k : key_cols) {
      bool found = false;
      for (int c : cols) {
        if (c == k) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  std::string ToString() const;
};

}  // namespace probkb

#endif  // PROBKB_MPP_DISTRIBUTION_H_
