#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>

#include "engine/flat_hash.h"
#include "engine/ops.h"
#include "engine/tunables.h"
#include "util/timer.h"

// Execution half of the plan layer: the PlanNode::Execute bodies. The
// structural IR (construction, Explain) lives in plan.cc. All batching /
// parallelism cutoffs come from the Tunables snapshot taken per operator;
// every knob only moves work between the bit-identical serial and parallel
// paths, so no setting can change any output.

namespace probkb {

namespace {

// Concatenated left+right row materialized for residual predicates.
void ConcatRow(const RowView& l, const RowView& r, std::vector<Value>* out) {
  out->clear();
  for (int c = 0; c < l.width(); ++c) out->push_back(l[c]);
  for (int c = 0; c < r.width(); ++c) out->push_back(r[c]);
}

NodeStats MakeStats(std::string label, int64_t rows_in, int64_t rows_out,
                    double seconds, int num_children) {
  NodeStats ns;
  ns.label = std::move(label);
  ns.rows_in = rows_in;
  ns.rows_out = rows_out;
  ns.seconds = seconds;
  ns.num_children = num_children;
  return ns;
}

}  // namespace

Result<TablePtr> ExecutePlan(PlanNode* root, ExecContext* ctx) {
  return root->Execute(ctx);
}

// ScanNode -------------------------------------------------------------------

Result<TablePtr> ScanNode::Execute(ExecContext* ctx) {
  PROBKB_RETURN_NOT_OK(ctx->CheckBudget(Label()));
  PROBKB_RETURN_NOT_OK(ctx->Record(
      MakeStats(Label(), table_->NumRows(), table_->NumRows(), 0.0, 0)));
  set_obs_rows(table_->NumRows());
  return table_;
}

// FilterNode -----------------------------------------------------------------

Result<TablePtr> FilterNode::Execute(ExecContext* ctx) {
  PROBKB_RETURN_NOT_OK(ctx->CheckBudget(Label()));
  PROBKB_ASSIGN_OR_RETURN(TablePtr in, children_[0]->Execute(ctx));
  Timer timer;
  auto out = Table::Make(in->schema());
  for (int64_t i = 0; i < in->NumRows(); ++i) {
    RowView row = in->row(i);
    if (pred_(row)) out->AppendRow(row);
  }
  PROBKB_RETURN_NOT_OK(ctx->Record(
      MakeStats(Label(), in->NumRows(), out->NumRows(), timer.Seconds(), 1)));
  set_obs_rows(out->NumRows());
  return out;
}

// ProjectNode ----------------------------------------------------------------

Result<TablePtr> ProjectNode::Execute(ExecContext* ctx) {
  PROBKB_RETURN_NOT_OK(ctx->CheckBudget(Label()));
  PROBKB_ASSIGN_OR_RETURN(TablePtr in, children_[0]->Execute(ctx));
  Timer timer;
  auto out = Table::Make(output_schema_);
  // All-column projections with matching types are per-column vector
  // copies; anything with constants (or a type rewrite) materializes rows.
  bool all_columns = !exprs_.empty();
  for (const auto& e : exprs_) {
    if (e.kind != ProjectExpr::Kind::kColumn ||
        in->schema().field(e.column).type != e.type) {
      all_columns = false;
      break;
    }
  }
  if (all_columns) {
    std::vector<int> cols;
    cols.reserve(exprs_.size());
    for (const auto& e : exprs_) cols.push_back(e.column);
    out->AppendProjectedRows(*in, cols);
  } else {
    out->ReserveRows(in->NumRows());
    std::vector<Value> buf(exprs_.size());
    for (int64_t i = 0; i < in->NumRows(); ++i) {
      RowView row = in->row(i);
      for (size_t c = 0; c < exprs_.size(); ++c) {
        const auto& e = exprs_[c];
        buf[c] = e.kind == ProjectExpr::Kind::kColumn ? row[e.column]
                                                      : e.constant;
      }
      out->AppendRow(buf);
    }
  }
  PROBKB_RETURN_NOT_OK(ctx->Record(
      MakeStats(Label(), in->NumRows(), out->NumRows(), timer.Seconds(), 1)));
  set_obs_rows(out->NumRows());
  return out;
}

// HashJoinNode ---------------------------------------------------------------

Result<TablePtr> HashJoinNode::Execute(ExecContext* ctx) {
  PROBKB_RETURN_NOT_OK(ctx->CheckBudget(Label()));
  PROBKB_ASSIGN_OR_RETURN(TablePtr left, children_[0]->Execute(ctx));
  PROBKB_ASSIGN_OR_RETURN(TablePtr right, children_[1]->Execute(ctx));
  Timer timer;
  const Tunables tun = GetTunables();

  Schema out_schema;
  if (type_ == JoinType::kInner) {
    if (output_cols_.empty()) {
      return Status::InvalidArgument(
          "inner hash join requires explicit output columns");
    }
    std::vector<Field> fields;
    fields.reserve(output_cols_.size());
    for (const auto& c : output_cols_) fields.push_back({c.name, c.type});
    out_schema = Schema(std::move(fields));
  } else {
    out_schema = left->schema();
  }
  // Out-of-core path: when a memory budget is armed and its headroom
  // cannot hold this join's working set (both inputs plus the build
  // index), rewrite to the grace-hash join: partition both sides to disk,
  // join partition pairs one at a time. Purely physical — the output is
  // bit-identical to the in-memory path below at every thread count
  // (see GraceHashJoin in ops.h and DESIGN.md "Out-of-core").
  SpillContext* spill = ctx->spill();
  MemoryBudget* mem = spill != nullptr ? spill->budget() : nullptr;
  if (mem != nullptr && mem->enabled()) {
    // FlatRowIndex cost ~ 16 bytes/entry + slots at 10/7 load x 24 bytes.
    const int64_t working_bytes =
        left->ByteSize() + right->ByteSize() + right->NumRows() * 52;
    if (working_bytes > mem->AvailableBytes()) {
      // Fan out until one partition pair fits in ~1/8 of the headroom,
      // capped at 256 (the router's bit budget); skew and misestimates
      // are handled by recursion inside GraceHashJoin.
      const int64_t avail =
          std::max<int64_t>(mem->AvailableBytes(), int64_t{1} << 20);
      int parts = 2;
      while (parts < 256 && working_bytes * 8 > avail * parts) parts <<= 1;
      GraceJoinSpec gspec;
      gspec.left_keys = left_keys_;
      gspec.right_keys = right_keys_;
      gspec.type = type_;
      gspec.output_cols = output_cols_;
      gspec.residual = residual_;
      gspec.out_schema = out_schema;
      gspec.num_parts = parts;
      gspec.label = "grace";
      GraceJoinStats gstats;
      PROBKB_ASSIGN_OR_RETURN(TablePtr gout,
                              GraceHashJoin(spill, *left, *right, gspec,
                                            &gstats));
      NodeStats ns = MakeStats(Label(), left->NumRows() + right->NumRows(),
                               gout->NumRows(), timer.Seconds(), 2);
      ns.build_partitions = gstats.partitions;
      ns.spill_partitions = gstats.spill_partitions;
      ns.spill_bytes_written = gstats.spill_bytes_written;
      ns.spill_bytes_read = gstats.spill_bytes_read;
      ns.page_faults_served = gstats.page_faults_served;
      PROBKB_RETURN_NOT_OK(ctx->Record(std::move(ns)));
      set_obs_rows(gout->NumRows());
      return gout;
    }
  }

  auto out = Table::Make(out_schema);

  ThreadPool* pool = ctx->thread_pool();

  // Build side: batch-hash the right keys (tight per-column loops), then
  // build the index. With a pool and a big enough input the build is
  // morsel-parallel: the hash array is filled chunk-wise, and the index is
  // hash-partitioned so each partition is built independently from that
  // shared array (see PartitionedRowIndex for the bit-identity argument).
  Timer build_timer;
  const int64_t build_rows = right->NumRows();
  const bool parallel_build = pool != nullptr && pool->num_threads() > 1 &&
                              build_rows >= tun.parallel_min_rows;
  std::vector<size_t> right_hashes(static_cast<size_t>(build_rows));
  const int64_t hash_chunk_rows = tun.hash_chunk_rows;
  if (parallel_build) {
    const int64_t chunks =
        (build_rows + hash_chunk_rows - 1) / hash_chunk_rows;
    pool->ParallelFor(chunks, 1, [&](int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const int64_t begin = c * hash_chunk_rows;
        const int64_t end = std::min(begin + hash_chunk_rows, build_rows);
        right->HashRows(right_keys_, begin, end,
                        right_hashes.data() + begin);
      }
    });
  } else if (build_rows > 0) {
    right->HashRows(right_keys_, 0, build_rows, right_hashes.data());
  }

  int num_parts = 1;
  if (parallel_build) {
    while (num_parts < pool->num_threads() &&
           num_parts < tun.max_build_partitions) {
      num_parts <<= 1;
    }
  }
  PartitionedRowIndex build(num_parts);
  if (num_parts == 1) {
    FlatRowIndex& part = build.part(0);
    part.Reserve(build_rows);
    for (int64_t i = 0; i < build_rows; ++i) {
      part.Insert(right_hashes[static_cast<size_t>(i)], i);
    }
  } else {
    // Each partition task scans the shared hash array in row order and
    // keeps only its hash range, so chain order matches the serial build.
    pool->ParallelFor(num_parts, 1, [&](int64_t pb, int64_t pe) {
      for (int64_t p = pb; p < pe; ++p) {
        FlatRowIndex& part = build.part(static_cast<size_t>(p));
        int64_t mine = 0;
        for (size_t h : right_hashes) {
          if (build.PartOf(h) == static_cast<size_t>(p)) ++mine;
        }
        part.Reserve(mine);
        for (int64_t i = 0; i < build_rows; ++i) {
          const size_t h = right_hashes[static_cast<size_t>(i)];
          if (build.PartOf(h) == static_cast<size_t>(p)) part.Insert(h, i);
        }
      }
    });
  }
  const double build_seconds = build_timer.Seconds();

  // Probes a left-row range into `dst` with the batched prefetch pipeline:
  // hash a batch of probe keys, prefetch every batch member's slot, then
  // resolve the batch serially in row order — resolution order equals the
  // plain serial loop's, so output stays bit-identical at every thread
  // count. Reads only shared immutable state (inputs, build index,
  // residual), so morsels can run it concurrently.
  auto probe_range = [&](int64_t begin, int64_t end, Table* dst) {
    std::vector<Value> out_buf(type_ == JoinType::kInner ? output_cols_.size()
                                                         : 0);
    std::vector<Value> concat_buf;
    size_t hashes[kProbeBatchRows];
    for (int64_t base = begin; base < end; base += kProbeBatchRows) {
      const int64_t batch = std::min(kProbeBatchRows, end - base);
      left->HashRows(left_keys_, base, base + batch, hashes);
      for (int64_t k = 0; k < batch; ++k) build.PrefetchHash(hashes[k]);
      for (int64_t k = 0; k < batch; ++k) {
        const size_t h = hashes[k];
        RowView lrow = left->row(base + k);
        const FlatRowIndex& index = build.PartFor(h);
        bool matched = false;
        for (int64_t e = index.Head(h); e >= 0; e = index.Next(e)) {
          RowView rrow = right->row(index.Row(e));
          if (!RowKeyEquals(lrow, rrow, left_keys_, right_keys_)) continue;
          if (residual_ != nullptr) {
            ConcatRow(lrow, rrow, &concat_buf);
            if (!residual_(RowView(concat_buf.data(),
                                   static_cast<int>(concat_buf.size())))) {
              continue;
            }
          }
          matched = true;
          if (type_ == JoinType::kInner) {
            for (size_t c = 0; c < output_cols_.size(); ++c) {
              const auto& oc = output_cols_[c];
              out_buf[c] = oc.side == JoinOutputCol::Side::kLeft
                               ? lrow[oc.column]
                               : rrow[oc.column];
            }
            dst->AppendRow(out_buf);
          } else {
            break;  // semi/anti only need existence
          }
        }
        if (type_ == JoinType::kLeftSemi && matched) dst->AppendRow(lrow);
        if (type_ == JoinType::kLeftAnti && !matched) dst->AppendRow(lrow);
      }
    }
  };

  // Morsel-parallel probe: fixed row ranges, one private output table per
  // morsel, concatenated in morsel order — the output is bit-identical to
  // the serial probe loop regardless of scheduling. Small probe sides run
  // serially: morsel dispatch on a tiny delta costs more than it saves.
  const int64_t morsel_rows = tun.morsel_rows;
  Timer probe_timer;
  if (pool != nullptr && pool->num_threads() > 1 &&
      left->NumRows() >= tun.parallel_min_rows) {
    const int64_t morsels = (left->NumRows() + morsel_rows - 1) / morsel_rows;
    std::vector<TablePtr> parts(static_cast<size_t>(morsels));
    pool->ParallelFor(morsels, 1, [&](int64_t m_begin, int64_t m_end) {
      for (int64_t m = m_begin; m < m_end; ++m) {
        auto part = Table::Make(out_schema);
        int64_t begin = m * morsel_rows;
        int64_t end = std::min(begin + morsel_rows, left->NumRows());
        probe_range(begin, end, part.get());
        parts[static_cast<size_t>(m)] = std::move(part);
      }
    });
    for (const TablePtr& part : parts) out->AppendTable(*part);
  } else {
    probe_range(0, left->NumRows(), out.get());
  }

  NodeStats ns = MakeStats(Label(), left->NumRows() + right->NumRows(),
                           out->NumRows(), timer.Seconds(), 2);
  ns.build_seconds = build_seconds;
  ns.probe_seconds = probe_timer.Seconds();
  ns.rehashes = build.rehash_count();
  ns.build_partitions = build.num_parts();
  PROBKB_RETURN_NOT_OK(ctx->Record(std::move(ns)));
  set_obs_rows(out->NumRows());
  return out;
}

// DistinctNode ---------------------------------------------------------------

Result<TablePtr> DistinctNode::Execute(ExecContext* ctx) {
  PROBKB_RETURN_NOT_OK(ctx->CheckBudget(Label()));
  PROBKB_ASSIGN_OR_RETURN(TablePtr in, children_[0]->Execute(ctx));
  Timer timer;
  std::vector<int> keys = key_cols_;
  if (keys.empty()) {
    for (int c = 0; c < in->width(); ++c) keys.push_back(c);
  }
  auto out = Table::Make(in->schema());
  // Dedup set over the output rows; chains keyed on the row-key hash.
  // Batched prefetch pipeline: `seen` is pre-sized for every input row, so
  // its slot array never moves mid-scan and batch-ahead prefetches stay
  // valid even though rows are inserted during resolution.
  FlatRowIndex seen(in->NumRows());
  size_t hashes[kProbeBatchRows];
  for (int64_t base = 0; base < in->NumRows(); base += kProbeBatchRows) {
    const int64_t batch = std::min(kProbeBatchRows, in->NumRows() - base);
    in->HashRows(keys, base, base + batch, hashes);
    for (int64_t k = 0; k < batch; ++k) seen.PrefetchHash(hashes[k]);
    for (int64_t k = 0; k < batch; ++k) {
      RowView row = in->row(base + k);
      const size_t h = hashes[k];
      bool dup = false;
      for (int64_t e = seen.Head(h); e >= 0; e = seen.Next(e)) {
        if (RowKeyEquals(row, out->row(seen.Row(e)), keys, keys)) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen.Insert(h, out->NumRows());
        out->AppendRow(row);
      }
    }
  }
  NodeStats ns = MakeStats(Label(), in->NumRows(), out->NumRows(),
                           timer.Seconds(), 1);
  ns.rehashes = seen.rehash_count();
  PROBKB_RETURN_NOT_OK(ctx->Record(std::move(ns)));
  set_obs_rows(out->NumRows());
  return out;
}

// AggregateNode --------------------------------------------------------------

Result<TablePtr> AggregateNode::Execute(ExecContext* ctx) {
  PROBKB_RETURN_NOT_OK(ctx->CheckBudget(Label()));
  PROBKB_ASSIGN_OR_RETURN(TablePtr in, children_[0]->Execute(ctx));
  Timer timer;

  // Output schema: group columns (same name/type as input) then aggregates.
  std::vector<Field> fields;
  for (int c : group_cols_) fields.push_back(in->schema().field(c));
  for (const auto& a : aggs_) {
    ColumnType t = ColumnType::kInt64;
    if (a.kind == AggKind::kSum ||
        (a.kind != AggKind::kCount &&
         in->schema().field(a.column).type == ColumnType::kFloat64)) {
      t = ColumnType::kFloat64;
    }
    if (a.kind == AggKind::kSum &&
        in->schema().field(a.column).type == ColumnType::kInt64) {
      t = ColumnType::kInt64;
    }
    fields.push_back({a.name, t});
  }
  auto out = Table::Make(Schema(std::move(fields)));

  struct GroupState {
    std::vector<Value> group;
    std::vector<int64_t> count;
    std::vector<double> sum_f;
    std::vector<int64_t> sum_i;
    std::vector<Value> min;
    std::vector<Value> max;
  };

  std::unordered_map<size_t, std::vector<GroupState>> groups;
  groups.reserve(1024);

  // Group-key hashes for the whole input in one batched pass.
  std::vector<size_t> row_hashes(static_cast<size_t>(in->NumRows()));
  if (in->NumRows() > 0) {
    in->HashRows(group_cols_, 0, in->NumRows(), row_hashes.data());
  }

  for (int64_t i = 0; i < in->NumRows(); ++i) {
    RowView row = in->row(i);
    size_t h = row_hashes[static_cast<size_t>(i)];
    auto& bucket = groups[h];
    GroupState* state = nullptr;
    for (auto& g : bucket) {
      bool eq = true;
      for (size_t k = 0; k < group_cols_.size(); ++k) {
        if (g.group[k] != row[group_cols_[k]]) {
          eq = false;
          break;
        }
      }
      if (eq) {
        state = &g;
        break;
      }
    }
    if (state == nullptr) {
      bucket.emplace_back();
      state = &bucket.back();
      state->group.reserve(group_cols_.size());
      for (int c : group_cols_) state->group.push_back(row[c]);
      state->count.assign(aggs_.size(), 0);
      state->sum_f.assign(aggs_.size(), 0.0);
      state->sum_i.assign(aggs_.size(), 0);
      state->min.assign(aggs_.size(), Value::Null());
      state->max.assign(aggs_.size(), Value::Null());
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const auto& spec = aggs_[a];
      switch (spec.kind) {
        case AggKind::kCount:
          ++state->count[a];
          break;
        case AggKind::kSum: {
          const Value& v = row[spec.column];
          if (v.is_float64()) {
            state->sum_f[a] += v.f64();
          } else if (v.is_int64()) {
            state->sum_i[a] += v.i64();
          }
          ++state->count[a];
          break;
        }
        case AggKind::kMin: {
          const Value& v = row[spec.column];
          if (!v.is_null() &&
              (state->min[a].is_null() || v < state->min[a])) {
            state->min[a] = v;
          }
          break;
        }
        case AggKind::kMax: {
          const Value& v = row[spec.column];
          if (!v.is_null() &&
              (state->max[a].is_null() || state->max[a] < v)) {
            state->max[a] = v;
          }
          break;
        }
      }
    }
  }

  std::vector<Value> buf;
  for (const auto& [h, bucket] : groups) {
    (void)h;
    for (const auto& g : bucket) {
      buf.clear();
      buf.insert(buf.end(), g.group.begin(), g.group.end());
      for (size_t a = 0; a < aggs_.size(); ++a) {
        switch (aggs_[a].kind) {
          case AggKind::kCount:
            buf.push_back(Value::Int64(g.count[a]));
            break;
          case AggKind::kSum:
            if (in->schema().field(aggs_[a].column).type ==
                ColumnType::kFloat64) {
              buf.push_back(Value::Float64(g.sum_f[a]));
            } else {
              buf.push_back(Value::Int64(g.sum_i[a]));
            }
            break;
          case AggKind::kMin:
            buf.push_back(g.min[a]);
            break;
          case AggKind::kMax:
            buf.push_back(g.max[a]);
            break;
        }
      }
      RowView out_row(buf.data(), static_cast<int>(buf.size()));
      if (having_ == nullptr || having_(out_row)) out->AppendRow(out_row);
    }
  }

  PROBKB_RETURN_NOT_OK(ctx->Record(
      MakeStats(Label(), in->NumRows(), out->NumRows(), timer.Seconds(), 1)));
  set_obs_rows(out->NumRows());
  return out;
}

// UnionAllNode ---------------------------------------------------------------

Result<TablePtr> UnionAllNode::Execute(ExecContext* ctx) {
  PROBKB_RETURN_NOT_OK(ctx->CheckBudget(Label()));
  PROBKB_ASSIGN_OR_RETURN(TablePtr first, children_[0]->Execute(ctx));
  Timer timer;
  auto out = first->Clone();
  int64_t rows_in = first->NumRows();
  for (size_t i = 1; i < children_.size(); ++i) {
    PROBKB_ASSIGN_OR_RETURN(TablePtr t, children_[i]->Execute(ctx));
    if (t->width() != out->width()) {
      return Status::InvalidArgument("UNION ALL width mismatch");
    }
    rows_in += t->NumRows();
    out->AppendTable(*t);
  }
  PROBKB_RETURN_NOT_OK(ctx->Record(
      MakeStats(Label(), rows_in, out->NumRows(), timer.Seconds(),
                static_cast<int>(children_.size()))));
  set_obs_rows(out->NumRows());
  return out;
}

}  // namespace probkb
