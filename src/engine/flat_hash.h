#ifndef PROBKB_ENGINE_FLAT_HASH_H_
#define PROBKB_ENGINE_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace probkb {

/// \brief Open-addressing hash index mapping a precomputed row-key hash to
/// the chain of row ids inserted under it.
///
/// This replaces `std::unordered_map<size_t, std::vector<int64_t>>` on the
/// engine's hot paths (join build sides, distinct/dedup sets, KeyIndex):
/// one flat slot array probed linearly instead of a node allocation per
/// bucket, and one entry pool instead of a vector per key. Keys are the
/// hashes of dictionary-encoded int64 row keys, already well mixed by
/// Value::Hash, so linear probing on the low bits behaves.
///
/// Semantics match the map it replaces: chains are keyed on the *hash* —
/// two distinct row keys that collide on their size_t hash share a chain,
/// and callers filter chain rows with RowKeyEquals exactly as they filtered
/// bucket vectors. Chains preserve insertion order (each slot keeps a tail
/// pointer), which keeps join outputs bit-identical to the serial engine's
/// bucket push_back order. Growth re-probes the slot array only; the entry
/// pool never moves.
class FlatRowIndex {
 public:
  FlatRowIndex() = default;

  /// \brief Sizes the table for `expected_rows` inserts up front, so bulk
  /// builds (join build side, SetUnionInto over a known delta) do not
  /// rehash mid-insert.
  explicit FlatRowIndex(int64_t expected_rows) { Reserve(expected_rows); }

  /// \brief Ensures capacity for `expected_rows` additional inserts without
  /// a rehash.
  void Reserve(int64_t expected_rows) {
    if (expected_rows < 0) expected_rows = 0;
    entries_.reserve(entries_.size() + static_cast<size_t>(expected_rows));
    // Distinct hashes <= inserts; size the slot array for the worst case.
    size_t want = SlotCountFor(static_cast<size_t>(expected_rows) +
                               occupied_slots_);
    if (want > slots_.size()) Rehash(want);
  }

  /// \brief Appends `row` to the chain of `hash`.
  void Insert(size_t hash, int64_t row) {
    if (slots_.empty() ||
        (occupied_slots_ + 1) * 10 > slots_.size() * kMaxLoadPercent) {
      Rehash(SlotCountFor(occupied_slots_ + 1));
    }
    Slot& slot = FindSlot(slots_, hash);
    const int64_t entry = static_cast<int64_t>(entries_.size());
    entries_.push_back({row, kNil});
    if (slot.head == kNil) {
      slot.hash = hash;
      slot.head = entry;
      ++occupied_slots_;
    } else {
      entries_[static_cast<size_t>(slot.tail)].next = entry;
    }
    slot.tail = entry;
  }

  /// \brief Issues a software prefetch for the home slot of `hash`.
  ///
  /// The batched probe pipeline (DRAMHiT-style) computes a batch of
  /// hashes, prefetches each one's slot, then resolves the batch: by the
  /// time Head() dereferences a slot its cache line is (usually) already
  /// in flight, hiding the per-probe DRAM miss. Purely a hint — results
  /// are identical with or without it.
  void PrefetchHash(size_t hash) const {
    if (slots_.empty()) return;
    __builtin_prefetch(&slots_[hash & (slots_.size() - 1)], /*rw=*/0,
                       /*locality=*/1);
  }

  /// \brief First entry of the chain for `hash`, or -1. Walk with Next();
  /// read the row id with Row().
  int64_t Head(size_t hash) const {
    if (slots_.empty()) return kNil;
    const size_t mask = slots_.size() - 1;
    size_t pos = hash & mask;
    for (;;) {
      const Slot& slot = slots_[pos];
      if (slot.head == kNil) return kNil;
      if (slot.hash == hash) return slot.head;
      pos = (pos + 1) & mask;
    }
  }

  int64_t Next(int64_t entry) const {
    PROBKB_DCHECK(entry >= 0 &&
                  entry < static_cast<int64_t>(entries_.size()));
    return entries_[static_cast<size_t>(entry)].next;
  }

  int64_t Row(int64_t entry) const {
    PROBKB_DCHECK(entry >= 0 &&
                  entry < static_cast<int64_t>(entries_.size()));
    return entries_[static_cast<size_t>(entry)].row;
  }

  /// Total rows inserted (not distinct hashes).
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

  /// Slot-array capacity, exposed for tests asserting Reserve() prevents
  /// mid-build rehashes.
  size_t slot_capacity() const { return slots_.size(); }

  /// Slot-array growths after the initial allocation; a pre-sized bulk
  /// build keeps this at 0.
  int64_t rehash_count() const { return rehash_count_; }

 private:
  static constexpr int64_t kNil = -1;
  // Grow once a slot array is 7/10 full (x10 to stay in integers).
  static constexpr size_t kMaxLoadPercent = 7;

  struct Slot {
    size_t hash = 0;
    int64_t head = kNil;  // kNil marks an empty slot
    int64_t tail = kNil;
  };

  struct Entry {
    int64_t row;
    int64_t next;
  };

  /// Smallest power of two holding `keys` distinct hashes under the load
  /// cap.
  static size_t SlotCountFor(size_t keys) {
    size_t want = 16;
    while (want * kMaxLoadPercent < keys * 10) want <<= 1;
    return want;
  }

  /// Linear probe to the slot holding `hash`, or the first empty slot.
  static Slot& FindSlot(std::vector<Slot>& slots, size_t hash) {
    const size_t mask = slots.size() - 1;
    size_t pos = hash & mask;
    for (;;) {
      Slot& slot = slots[pos];
      if (slot.head == kNil || slot.hash == hash) return slot;
      pos = (pos + 1) & mask;
    }
  }

  void Rehash(size_t new_slot_count) {
    if (new_slot_count < 16) new_slot_count = 16;
    if (!slots_.empty()) ++rehash_count_;
    std::vector<Slot> fresh(new_slot_count);
    for (const Slot& slot : slots_) {
      if (slot.head == kNil) continue;
      FindSlot(fresh, slot.hash) = slot;
    }
    slots_ = std::move(fresh);
  }

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
  size_t occupied_slots_ = 0;
  int64_t rehash_count_ = 0;
};

/// \brief A FlatRowIndex split into `P` (power of two) independent
/// sub-indexes by the *top* bits of the hash, so the build can run
/// morsel-parallel: each partition owns a disjoint hash range and is built
/// by one task scanning the precomputed hash array in row order.
///
/// Bit-identity argument: FlatRowIndex keys chains on the full hash and
/// probes slots on the *low* bits, so routing on the top bits (a) never
/// splits one hash's chain across partitions and (b) leaves the in-slot
/// probe sequence untouched. A chain built inside partition P holds the
/// same rows in the same (insertion = row) order as the chain the
/// single-index serial build produces, and a probe for hash h consults
/// exactly that chain — so join outputs are identical for every partition
/// count, which is what lets the threaded build coexist with the engine's
/// bit-identical-to-serial guarantee. One partition is the exact serial
/// path.
///
/// The out-of-core grace-hash join (relational/spill.h
/// PartitionedSpillIndex, ops.h GraceHashJoin) routes its disk partitions
/// with this same top-bit scheme — its bit_offset=0 level is bit-for-bit
/// this router — so the chain argument above carries over unchanged to
/// spilled execution, and recursion levels consume successive bit groups
/// downward from the top.
class PartitionedRowIndex {
 public:
  explicit PartitionedRowIndex(int num_parts) {
    PROBKB_CHECK(num_parts >= 1 && (num_parts & (num_parts - 1)) == 0);
    parts_.resize(static_cast<size_t>(num_parts));
    int log2 = 0;
    while ((1 << log2) < num_parts) ++log2;
    shift_ = 64 - log2;
  }

  int num_parts() const { return static_cast<int>(parts_.size()); }

  size_t PartOf(size_t hash) const {
    return shift_ >= 64 ? 0 : hash >> shift_;
  }

  FlatRowIndex& part(size_t p) { return parts_[p]; }
  const FlatRowIndex& PartFor(size_t hash) const {
    return parts_[PartOf(hash)];
  }

  void PrefetchHash(size_t hash) const { PartFor(hash).PrefetchHash(hash); }

  int64_t rehash_count() const {
    int64_t total = 0;
    for (const FlatRowIndex& p : parts_) total += p.rehash_count();
    return total;
  }

 private:
  std::vector<FlatRowIndex> parts_;
  int shift_ = 64;
};

}  // namespace probkb

#endif  // PROBKB_ENGINE_FLAT_HASH_H_
