#ifndef PROBKB_ENGINE_PLAN_H_
#define PROBKB_ENGINE_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/exec_context.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

class PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

/// \brief Base class of all physical plan nodes.
///
/// Execution is materialized: each node produces a full Table. This mirrors
/// how the paper's SQL statements execute (each grounding query materializes
/// its result into TPi / TPhi) and keeps per-node row accounting exact for
/// the MPP cost model.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  /// \brief Runs the subtree rooted here and returns the result table.
  /// Bodies live in executor.cc (the plan IR itself is structural only).
  virtual Result<TablePtr> Execute(ExecContext* ctx) = 0;

  /// \brief Short operator name for EXPLAIN output, e.g. "HashJoin".
  virtual std::string Label() const = 0;

  /// \brief EXPLAIN-style tree rendering. Nodes carrying cardinality
  /// annotations render as "Label (est=N obs=M)" with "?" for unknown;
  /// un-annotated nodes render the bare label.
  std::string Explain(int indent = 0) const;

  /// Estimated output cardinality, annotated by the planner before
  /// execution (-1 = no estimate). Observed cardinality is recorded by
  /// Execute, so after a run `est_rows` vs `obs_rows` is the per-node
  /// estimation error the next iteration's plan is corrected with.
  int64_t est_rows() const { return est_rows_; }
  void set_est_rows(int64_t rows) { est_rows_ = rows; }
  int64_t obs_rows() const { return obs_rows_; }
  void set_obs_rows(int64_t rows) { obs_rows_ = rows; }

  const std::vector<PlanNodePtr>& children() const { return children_; }

 protected:
  PlanNode() = default;
  explicit PlanNode(std::vector<PlanNodePtr> children)
      : children_(std::move(children)) {}

  std::vector<PlanNodePtr> children_;
  int64_t est_rows_ = -1;
  int64_t obs_rows_ = -1;
};

/// \brief Leaf node scanning an existing table (zero-copy).
class ScanNode : public PlanNode {
 public:
  explicit ScanNode(TablePtr table, std::string name = "table")
      : table_(std::move(table)), name_(std::move(name)) {}

  Result<TablePtr> Execute(ExecContext* ctx) override;
  std::string Label() const override { return "SeqScan on " + name_; }

  /// Scan inputs are materialized, so their size is known at plan time —
  /// the one exact leaf cardinality the planner's estimates grow from.
  int64_t TableRows() const { return table_->NumRows(); }

 private:
  TablePtr table_;
  std::string name_;
};

/// \brief Row predicate evaluated by FilterNode and join residuals.
using RowPredicate = std::function<bool(const RowView&)>;

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr input, RowPredicate pred,
             std::string description = "");

  Result<TablePtr> Execute(ExecContext* ctx) override;
  std::string Label() const override {
    return description_.empty() ? "Filter" : "Filter (" + description_ + ")";
  }

 private:
  RowPredicate pred_;
  std::string description_;
};

/// \brief One output column of a projection: a source column or a constant.
struct ProjectExpr {
  enum class Kind { kColumn, kConstant };
  Kind kind = Kind::kColumn;
  int column = 0;     // when kColumn: index into the input row
  Value constant;     // when kConstant
  std::string name;   // output field name
  ColumnType type = ColumnType::kInt64;

  static ProjectExpr Column(int col, std::string name,
                            ColumnType type = ColumnType::kInt64) {
    ProjectExpr e;
    e.kind = Kind::kColumn;
    e.column = col;
    e.name = std::move(name);
    e.type = type;
    return e;
  }
  static ProjectExpr Constant(Value v, std::string name,
                              ColumnType type = ColumnType::kInt64) {
    ProjectExpr e;
    e.kind = Kind::kConstant;
    e.constant = v;
    e.name = std::move(name);
    e.type = type;
    return e;
  }
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanNodePtr input, std::vector<ProjectExpr> exprs);

  Result<TablePtr> Execute(ExecContext* ctx) override;
  std::string Label() const override { return "Project"; }

 private:
  std::vector<ProjectExpr> exprs_;
  Schema output_schema_;
};

enum class JoinType { kInner, kLeftSemi, kLeftAnti };

const char* JoinTypeToString(JoinType t);

/// \brief Which side/column an inner-join output column is drawn from.
struct JoinOutputCol {
  enum class Side { kLeft, kRight };
  Side side = Side::kLeft;
  int column = 0;
  std::string name;
  ColumnType type = ColumnType::kInt64;

  static JoinOutputCol Left(int col, std::string name,
                            ColumnType type = ColumnType::kInt64) {
    return {Side::kLeft, col, std::move(name), type};
  }
  static JoinOutputCol Right(int col, std::string name,
                             ColumnType type = ColumnType::kInt64) {
    return {Side::kRight, col, std::move(name), type};
  }
};

/// \brief Hash equi-join. Builds on the right input, probes with the left.
///
/// For kInner the output is given by `output_cols`; for kLeftSemi/kLeftAnti
/// the output is the left row and `output_cols` is ignored. An optional
/// `residual` predicate (over the concatenated left+right row) handles
/// non-equi conditions such as the T2.x = T3.x checks in Query 1-3 when the
/// planner chooses different keys.
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanNodePtr left, PlanNodePtr right, std::vector<int> left_keys,
               std::vector<int> right_keys, JoinType type,
               std::vector<JoinOutputCol> output_cols = {},
               RowPredicate residual = nullptr);

  Result<TablePtr> Execute(ExecContext* ctx) override;
  std::string Label() const override {
    return std::string("HashJoin (") + JoinTypeToString(type_) + ")";
  }

  JoinType join_type() const { return type_; }
  bool has_residual() const { return residual_ != nullptr; }

 private:
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  JoinType type_;
  std::vector<JoinOutputCol> output_cols_;
  RowPredicate residual_;
};

/// \brief Set-distinct over the given key columns (all columns if empty);
/// keeps the first occurrence of each key.
class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanNodePtr input, std::vector<int> key_cols = {});

  Result<TablePtr> Execute(ExecContext* ctx) override;
  std::string Label() const override { return "HashDistinct"; }

 private:
  std::vector<int> key_cols_;
};

enum class AggKind { kCount, kSum, kMin, kMax };

struct AggSpec {
  AggKind kind = AggKind::kCount;
  int column = 0;  // ignored for kCount
  std::string name;
};

/// \brief Hash group-by with COUNT/SUM/MIN/MAX and an optional HAVING
/// predicate over the aggregated row (group cols followed by agg cols).
class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanNodePtr input, std::vector<int> group_cols,
                std::vector<AggSpec> aggs, RowPredicate having = nullptr);

  Result<TablePtr> Execute(ExecContext* ctx) override;
  std::string Label() const override { return "HashAggregate"; }

 private:
  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  RowPredicate having_;
};

/// \brief Bag union (UNION ALL) of any number of inputs with equal widths.
class UnionAllNode : public PlanNode {
 public:
  explicit UnionAllNode(std::vector<PlanNodePtr> inputs);

  Result<TablePtr> Execute(ExecContext* ctx) override;
  std::string Label() const override { return "Append"; }
};

// Convenience builders ------------------------------------------------------

inline PlanNodePtr Scan(TablePtr table, std::string name = "table") {
  return std::make_unique<ScanNode>(std::move(table), std::move(name));
}
inline PlanNodePtr Filter(PlanNodePtr input, RowPredicate pred,
                          std::string description = "") {
  return std::make_unique<FilterNode>(std::move(input), std::move(pred),
                                      std::move(description));
}
inline PlanNodePtr Project(PlanNodePtr input, std::vector<ProjectExpr> exprs) {
  return std::make_unique<ProjectNode>(std::move(input), std::move(exprs));
}
inline PlanNodePtr HashJoin(PlanNodePtr left, PlanNodePtr right,
                            std::vector<int> left_keys,
                            std::vector<int> right_keys, JoinType type,
                            std::vector<JoinOutputCol> output_cols = {},
                            RowPredicate residual = nullptr) {
  return std::make_unique<HashJoinNode>(
      std::move(left), std::move(right), std::move(left_keys),
      std::move(right_keys), type, std::move(output_cols),
      std::move(residual));
}
inline PlanNodePtr Distinct(PlanNodePtr input, std::vector<int> key_cols = {}) {
  return std::make_unique<DistinctNode>(std::move(input),
                                        std::move(key_cols));
}
inline PlanNodePtr Aggregate(PlanNodePtr input, std::vector<int> group_cols,
                             std::vector<AggSpec> aggs,
                             RowPredicate having = nullptr) {
  return std::make_unique<AggregateNode>(std::move(input),
                                         std::move(group_cols),
                                         std::move(aggs), std::move(having));
}
inline PlanNodePtr UnionAll(std::vector<PlanNodePtr> inputs) {
  return std::make_unique<UnionAllNode>(std::move(inputs));
}

}  // namespace probkb

#endif  // PROBKB_ENGINE_PLAN_H_
