#ifndef PROBKB_ENGINE_OPS_H_
#define PROBKB_ENGINE_OPS_H_

#include <unordered_map>
#include <vector>

#include "relational/table.h"

namespace probkb {

/// \brief Hash index over the key columns of a table.
///
/// Supports membership probes and incremental inserts; grounding uses it to
/// merge newly inferred atoms into TPi with set semantics, and constraint
/// application uses it to delete facts keyed by violating entities.
class KeyIndex {
 public:
  /// Indexes `table` on `key_cols`. The table must outlive the index; rows
  /// appended to the table after construction are not indexed unless added
  /// via AddRow().
  KeyIndex(const Table* table, std::vector<int> key_cols);

  /// \brief True if some indexed row matches `row` (compared on
  /// `probe_cols`, which must parallel this index's key columns).
  bool Contains(const RowView& row, std::span<const int> probe_cols) const;

  /// \brief Indexes row `i` of the underlying table.
  void AddRow(int64_t i);

  int64_t NumIndexedRows() const { return num_rows_; }

 private:
  const Table* table_;
  std::vector<int> key_cols_;
  std::unordered_map<size_t, std::vector<int64_t>> buckets_;
  int64_t num_rows_ = 0;
};

/// \brief Appends to `dst` the rows of `src` whose key (on `key_cols`,
/// same indices in both tables) is not already present in `dst`, deduping
/// within `src` as well. Returns the number of rows appended.
///
/// This is the set-semantics union of Algorithm 1 line 5
/// (TPi <- TPi U (U_j T_j)).
int64_t SetUnionInto(Table* dst, const Table& src,
                     const std::vector<int>& key_cols);

/// \brief Deletes rows matching `pred`; returns the number deleted.
int64_t DeleteWhere(Table* table, const std::function<bool(const RowView&)>& pred);

/// \brief Deletes rows of `table` whose `table_cols` key appears among
/// `keys`' `key_cols` values (SQL `DELETE ... WHERE (..) IN (SELECT ..)`).
/// Returns the number deleted.
int64_t DeleteMatching(Table* table, const std::vector<int>& table_cols,
                       const Table& keys, const std::vector<int>& key_cols);

/// \brief True if the two tables contain the same bag of rows (order
/// insensitive). Used heavily by equivalence tests (ProbKB vs Tuffy-T,
/// single-node vs MPP).
bool TablesEqualAsBags(const Table& a, const Table& b);

}  // namespace probkb

#endif  // PROBKB_ENGINE_OPS_H_
