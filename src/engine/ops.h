#ifndef PROBKB_ENGINE_OPS_H_
#define PROBKB_ENGINE_OPS_H_

#include <string>
#include <vector>

#include "engine/flat_hash.h"
#include "engine/plan.h"
#include "relational/spill.h"
#include "relational/table.h"

namespace probkb {

/// \brief Hash index over the key columns of a table.
///
/// Supports membership probes and incremental inserts; grounding uses it to
/// merge newly inferred atoms into TPi with set semantics, and constraint
/// application uses it to delete facts keyed by violating entities. Backed
/// by FlatRowIndex (one flat probe array) rather than a node-based map.
class KeyIndex {
 public:
  /// Indexes `table` on `key_cols`. The table must outlive the index; rows
  /// appended to the table after construction are not indexed unless added
  /// via AddRow(). `expected_extra_rows` pre-sizes the hash table for that
  /// many future AddRow() calls on top of the table's current rows, so
  /// callers growing the table in bulk (SetUnionInto, the TPi merge) do not
  /// pay a rehash per doubling.
  KeyIndex(const Table* table, std::vector<int> key_cols,
           int64_t expected_extra_rows = 0);

  /// \brief Index over `table` that starts *empty* (no rows indexed yet):
  /// the caller adds rows one by one via AddRow(). Used for incremental
  /// dedup of a batch against itself. Pre-sized for `expected_rows`.
  static KeyIndex Empty(const Table* table, std::vector<int> key_cols,
                        int64_t expected_rows);

  /// \brief True if some indexed row matches `row` (compared on
  /// `probe_cols`, which must parallel this index's key columns).
  bool Contains(const RowView& row, std::span<const int> probe_cols) const;

  /// \brief Contains() with the probe hash already computed (batched
  /// callers hash whole row ranges with Table::HashRows and reuse them).
  /// `hash` must equal HashRowKey(row, probe_cols).
  bool ContainsHashed(size_t hash, const RowView& row,
                      std::span<const int> probe_cols) const;

  /// \brief Indexes row `i` of the underlying table.
  void AddRow(int64_t i);

  /// \brief AddRow() with the key hash already computed. `hash` must equal
  /// HashRowKey(table->row(i), key_cols).
  void AddRowHashed(size_t hash, int64_t i) { index_.Insert(hash, i); }

  /// \brief Prefetches the slot a later ContainsHashed(hash, ...) will
  /// touch (see FlatRowIndex::PrefetchHash).
  void PrefetchHash(size_t hash) const { index_.PrefetchHash(hash); }

  int64_t NumIndexedRows() const { return index_.size(); }

 private:
  KeyIndex(const Table* table, std::vector<int> key_cols,
           int64_t expected_extra_rows, bool index_existing);

  const Table* table_;
  std::vector<int> key_cols_;
  FlatRowIndex index_;
};

/// \brief Appends to `dst` the rows of `src` whose key (on `key_cols`,
/// same indices in both tables) is not already present in `dst`, deduping
/// within `src` as well. Returns the number of rows appended.
///
/// This is the set-semantics union of Algorithm 1 line 5
/// (TPi <- TPi U (U_j T_j)). The dedup index is pre-sized for
/// `dst->NumRows() + src.NumRows()` keys up front.
int64_t SetUnionInto(Table* dst, const Table& src,
                     const std::vector<int>& key_cols);

/// \brief Deletes rows matching `pred`; returns the number deleted.
int64_t DeleteWhere(Table* table, const std::function<bool(const RowView&)>& pred);

/// \brief Deletes rows of `table` whose `table_cols` key appears among
/// `keys`' `key_cols` values (SQL `DELETE ... WHERE (..) IN (SELECT ..)`).
/// Returns the number deleted.
int64_t DeleteMatching(Table* table, const std::vector<int>& table_cols,
                       const Table& keys, const std::vector<int>& key_cols);

/// \brief True if the two tables contain the same bag of rows (order
/// insensitive). Used heavily by equivalence tests (ProbKB vs Tuffy-T,
/// single-node vs MPP).
bool TablesEqualAsBags(const Table& a, const Table& b);

/// \brief True if the two tables contain the same rows in the same order.
/// The parallel-vs-serial equivalence tests use this: the threaded engine
/// must reproduce the serial engine's output bit-identically, not just as
/// a bag.
bool TablesEqualExact(const Table& a, const Table& b);

/// \brief Inputs of one grace-hash join (the out-of-core rewrite of
/// HashJoinNode::Execute). Field meanings mirror HashJoinNode exactly;
/// `out_schema` is the final join output schema (no row-id column).
struct GraceJoinSpec {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  JoinType type = JoinType::kInner;
  std::vector<JoinOutputCol> output_cols;  // kInner only
  RowPredicate residual;                   // may be null
  Schema out_schema;
  int num_parts = 8;      // level-0 partition fan-out (power of two)
  std::string label;      // spill-file name stem
};

/// \brief Per-join spill activity, surfaced into NodeStats.
struct GraceJoinStats {
  int partitions = 0;          // level-0 fan-out actually used
  int spill_partitions = 0;    // partitions that hit disk (all levels)
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;
  int64_t page_faults_served = 0;
};

/// \brief Grace-hash equi-join under a memory budget: partitions both
/// sides by the top bits of the row-key hash (the PartitionedRowIndex
/// routing), spills over-budget partitions to `spill`'s directory, then
/// joins partition pairs one at a time with the batched probe pipeline,
/// recursing on the next bit group when a pair still exceeds the budget.
/// Probe-side partitions carry the original row index in a hidden
/// trailing column, and partition outputs are range-merged back on it —
/// so the result is bit-identical to HashJoinNode's in-memory path at
/// every thread and partition count (see DESIGN.md "Out-of-core").
Result<TablePtr> GraceHashJoin(SpillContext* spill, const Table& left,
                               const Table& right, const GraceJoinSpec& spec,
                               GraceJoinStats* stats);

}  // namespace probkb

#endif  // PROBKB_ENGINE_OPS_H_
