#ifndef PROBKB_ENGINE_PLANNER_H_
#define PROBKB_ENGINE_PLANNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "engine/plan.h"

namespace probkb {

/// \brief Interconnect cost parameters the optimizer plans against.
///
/// A plain mirror of the simulator's CostParams (mpp/cost_model.h) plus the
/// segment count — kept as its own struct so the engine layer never depends
/// on src/mpp. The MPP grounder constructs one from its live CostParams, so
/// the optimizer and the cost accounting always agree.
struct MotionCostModel {
  /// Seconds to ship one tuple between two segments (redistribute).
  double seconds_per_shipped_tuple = 8.5e-8;
  /// Broadcast per-tuple discount (serialized once, fanned out).
  double broadcast_tuple_discount = 0.31;
  /// Fixed per-motion startup latency (seconds).
  double motion_latency = 3e-4;
  int num_segments = 1;
};

/// \brief The motions a distributed hash join can open with (paper §5).
enum class MotionChoice { kRedistribute, kBroadcastRight, kBroadcastLeft };

const char* MotionChoiceToString(MotionChoice c);

/// \brief One join-motion question: statement identity plus the sizes and
/// placement of both inputs. `left_rows`/`right_rows` may be exact (the
/// input is already materialized) or estimates from observed history.
struct JoinMotionQuery {
  std::string statement;       // history / decision-log key
  int64_t left_rows = 0;
  int64_t right_rows = 0;
  bool left_collocated = false;   // already hash-placed on the join key
  bool right_collocated = false;
  bool inner_join = true;         // broadcast-left is only sound for inner
  bool from_observation = false;  // sizes came from observed history
};

/// \brief A scored motion decision: the chosen motion plus the modelled
/// seconds of every candidate, for EXPLAIN output and tests.
struct MotionDecision {
  MotionChoice choice = MotionChoice::kRedistribute;
  double redistribute_seconds = 0.0;
  double broadcast_right_seconds = 0.0;
  double broadcast_left_seconds = 0.0;  // +inf when not applicable

  std::string ToString() const;
};

/// \brief Feedback-driven cost-based optimizer for grounding statements.
///
/// Closes the loop ROADMAP item 5 asks for: the executor records observed
/// per-statement cardinalities (ObserveRows), and the next semi-naive
/// iteration's plan is chosen from those measurements (ObservedRows feeding
/// JoinMotionQuery sizes). Cold start falls back to the paper-§5 heuristics
/// the static rules encoded: inputs already collocated redistribute for
/// free, small non-collocated inputs against partitioned state broadcast.
///
/// Determinism contract: decisions are pure functions of (model, observed
/// history, query), history is an ordered map, and ties break in the fixed
/// order redistribute < broadcast-right < broadcast-left — so for a fixed
/// stats history the chosen plan is deterministic. Motion choice only moves
/// the same tuples along different routes; result bit-identity across
/// choices is enforced by the canonical atom merge (mpp_grounder.cc).
class AdaptivePlanner {
 public:
  explicit AdaptivePlanner(MotionCostModel model) : model_(model) {}

  /// Records the observed output cardinality of `key` (latest wins).
  void ObserveRows(const std::string& key, int64_t rows) {
    observed_[key] = rows;
  }
  /// Returns the last observation for `key`, or `fallback` if none.
  int64_t ObservedRows(const std::string& key, int64_t fallback) const {
    auto it = observed_.find(key);
    return it != observed_.end() ? it->second : fallback;
  }
  bool HasObservation(const std::string& key) const {
    return observed_.count(key) > 0;
  }

  /// Chooses the cheapest motion for a join under the cost model and logs
  /// the decision (retrievable via ExplainDecisions / decisions()).
  MotionDecision DecideJoinMotion(const JoinMotionQuery& q);

  /// True when building the hash index on the left input is cheaper:
  /// hash joins build on the right, so a much smaller left wants its sides
  /// swapped. Only sound for inner joins without residual predicates.
  bool ChooseBuildSideSwap(int64_t left_rows, int64_t right_rows) const {
    return left_rows < right_rows;
  }

  const MotionCostModel& model() const { return model_; }
  const std::vector<std::pair<JoinMotionQuery, MotionDecision>>& decisions()
      const {
    return decision_log_;
  }

  /// Stable one-line-per-decision rendering for --explain and goldens.
  std::string ExplainDecisions() const;
  void ClearDecisionLog() { decision_log_.clear(); }

 private:
  MotionCostModel model_;
  std::map<std::string, int64_t> observed_;
  std::vector<std::pair<JoinMotionQuery, MotionDecision>> decision_log_;
};

/// \brief Annotates `est_rows` on every node of a plan tree, bottom-up:
/// scans estimate their actual table size; inner joins estimate
/// max(left, right) (the paper's grounding joins are key/foreign-key
/// shaped); semi/anti joins and unary operators estimate their left/only
/// child; UNION ALL sums. If `planner` has an observation under
/// `statement`, it overrides the root's heuristic — that is the feedback
/// loop: iteration N's observed output is iteration N+1's estimate.
/// Returns the root estimate.
int64_t AnnotatePlanEstimates(PlanNode* root,
                              const AdaptivePlanner* planner = nullptr,
                              const std::string& statement = "");

}  // namespace probkb

#endif  // PROBKB_ENGINE_PLANNER_H_
