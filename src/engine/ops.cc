#include "engine/ops.h"
#include "engine/tunables.h"
#include "obs/trace.h"

#include <algorithm>
#include <functional>
#include <limits>

namespace probkb {

KeyIndex::KeyIndex(const Table* table, std::vector<int> key_cols,
                   int64_t expected_extra_rows)
    : KeyIndex(table, std::move(key_cols), expected_extra_rows,
               /*index_existing=*/true) {}

KeyIndex::KeyIndex(const Table* table, std::vector<int> key_cols,
                   int64_t expected_extra_rows, bool index_existing)
    : table_(table), key_cols_(std::move(key_cols)) {
  if (!index_existing) return;
  index_.Reserve(table->NumRows() + expected_extra_rows);
  // Batched build: hash the key columns in contiguous chunks instead of
  // materializing a Value per cell per row.
  size_t hashes[kIndexBuildChunkRows];
  const int64_t n = table_->NumRows();
  for (int64_t base = 0; base < n; base += kIndexBuildChunkRows) {
    const int64_t end = std::min(base + kIndexBuildChunkRows, n);
    table_->HashRows(key_cols_, base, end, hashes);
    for (int64_t i = base; i < end; ++i) {
      index_.Insert(hashes[i - base], i);
    }
  }
}

KeyIndex KeyIndex::Empty(const Table* table, std::vector<int> key_cols,
                         int64_t expected_rows) {
  KeyIndex index(table, std::move(key_cols), /*expected_extra_rows=*/0,
                 /*index_existing=*/false);
  index.index_.Reserve(expected_rows);
  return index;
}

bool KeyIndex::Contains(const RowView& row,
                        std::span<const int> probe_cols) const {
  return ContainsHashed(HashRowKey(row, probe_cols), row, probe_cols);
}

bool KeyIndex::ContainsHashed(size_t hash, const RowView& row,
                              std::span<const int> probe_cols) const {
  for (int64_t e = index_.Head(hash); e >= 0; e = index_.Next(e)) {
    if (RowKeyEquals(row, table_->row(index_.Row(e)), probe_cols,
                     key_cols_)) {
      return true;
    }
  }
  return false;
}

void KeyIndex::AddRow(int64_t i) {
  index_.Insert(HashRowKey(table_->row(i), key_cols_), i);
}

int64_t SetUnionInto(Table* dst, const Table& src,
                     const std::vector<int>& key_cols) {
  PROBKB_CHECK(dst->width() == src.width());
  // Pre-reserve for the delta: without this, a large src rehashes the
  // index log(src/dst) times mid-merge.
  KeyIndex index(dst, key_cols, src.NumRows());
  dst->ReserveRows(src.NumRows());
  // Batch-hash src keys once. An appended row is a copy of the src row, so
  // its key hash in dst equals the src hash — reuse it for AddRowHashed.
  size_t hashes[kHashBatchRows];
  int64_t added = 0;
  const int64_t n = src.NumRows();
  for (int64_t base = 0; base < n; base += kHashBatchRows) {
    const int64_t end = std::min(base + kHashBatchRows, n);
    src.HashRows(key_cols, base, end, hashes);
    for (int64_t i = base; i < end; ++i) index.PrefetchHash(hashes[i - base]);
    for (int64_t i = base; i < end; ++i) {
      const size_t h = hashes[i - base];
      RowView row = src.row(i);
      if (!index.ContainsHashed(h, row, key_cols)) {
        dst->AppendRow(row);
        index.AddRowHashed(h, dst->NumRows() - 1);
        ++added;
      }
    }
  }
  return added;
}

int64_t DeleteWhere(Table* table,
                    const std::function<bool(const RowView&)>& pred) {
  std::vector<bool> keep(static_cast<size_t>(table->NumRows()));
  for (int64_t i = 0; i < table->NumRows(); ++i) {
    keep[static_cast<size_t>(i)] = !pred(table->row(i));
  }
  return table->FilterInPlace(keep);
}

int64_t DeleteMatching(Table* table, const std::vector<int>& table_cols,
                       const Table& keys, const std::vector<int>& key_cols) {
  KeyIndex index(&keys, key_cols);
  // Batch-hash the probe keys and mark survivors directly.
  std::vector<bool> keep(static_cast<size_t>(table->NumRows()));
  size_t hashes[kHashBatchRows];
  const int64_t n = table->NumRows();
  for (int64_t base = 0; base < n; base += kHashBatchRows) {
    const int64_t end = std::min(base + kHashBatchRows, n);
    table->HashRows(table_cols, base, end, hashes);
    for (int64_t i = base; i < end; ++i) index.PrefetchHash(hashes[i - base]);
    for (int64_t i = base; i < end; ++i) {
      keep[static_cast<size_t>(i)] =
          !index.ContainsHashed(hashes[i - base], table->row(i), table_cols);
    }
  }
  return table->FilterInPlace(keep);
}

bool TablesEqualAsBags(const Table& a, const Table& b) {
  if (a.width() != b.width() || a.NumRows() != b.NumRows()) return false;
  return a.SortedRows() == b.SortedRows();
}

bool TablesEqualExact(const Table& a, const Table& b) {
  if (a.width() != b.width() || a.NumRows() != b.NumRows()) return false;
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!a.row(i).Equals(b.row(i))) return false;
  }
  return true;
}

// Grace-hash join ------------------------------------------------------------

namespace {

/// Recursion bound. Each level consumes up to 8 routing bits, so four
/// levels cover 32 of the hash's 63 routable bits; a pair still over
/// budget at the bound joins in memory — correct output, merely past the
/// advisory budget.
constexpr int kMaxGraceDepth = 4;

/// Appends `schema` plus the hidden trailing row-id column.
Schema WithOrigColumn(const Schema& schema) {
  std::vector<Field> fields = schema.fields();
  fields.push_back(Field{"__orig", ColumnType::kInt64});
  return Schema(std::move(fields));
}

/// Joins one partition pair in memory with the batched probe pipeline
/// (HashJoinNode's serial probe loop, verbatim semantics). `left_part`
/// carries the hidden orig column (width = left_base_width + 1); every
/// output row lands in `dst` with its orig value in the trailing column.
void ProbePartitionPair(const Table& left_part, int left_base_width,
                        const Table& right_part, const GraceJoinSpec& spec,
                        Table* dst) {
  const int64_t build_rows = right_part.NumRows();
  std::vector<size_t> right_hashes(static_cast<size_t>(build_rows));
  if (build_rows > 0) {
    right_part.HashRows(spec.right_keys, 0, build_rows, right_hashes.data());
  }
  // Partition-local serial build: rows insert in partition order, which is
  // the global build order restricted to this partition. Chains are keyed
  // on the full hash, and routing sent every row of a given hash here, so
  // each chain equals the monolithic index's chain for that hash.
  FlatRowIndex index(build_rows);
  for (int64_t i = 0; i < build_rows; ++i) {
    index.Insert(right_hashes[static_cast<size_t>(i)], i);
  }

  const bool inner = spec.type == JoinType::kInner;
  const int orig_col = left_base_width;
  std::vector<Value> out_buf(inner ? spec.output_cols.size() + 1 : 0);
  std::vector<Value> concat_buf;
  size_t hashes[kProbeBatchRows];
  const int64_t probe_rows = left_part.NumRows();
  for (int64_t base = 0; base < probe_rows; base += kProbeBatchRows) {
    const int64_t batch = std::min(kProbeBatchRows, probe_rows - base);
    left_part.HashRows(spec.left_keys, base, base + batch, hashes);
    for (int64_t k = 0; k < batch; ++k) index.PrefetchHash(hashes[k]);
    for (int64_t k = 0; k < batch; ++k) {
      const size_t h = hashes[k];
      RowView lrow = left_part.row(base + k);
      bool matched = false;
      for (int64_t e = index.Head(h); e >= 0; e = index.Next(e)) {
        RowView rrow = right_part.row(index.Row(e));
        if (!RowKeyEquals(lrow, rrow, spec.left_keys, spec.right_keys)) {
          continue;
        }
        if (spec.residual != nullptr) {
          // The residual sees the concatenated logical rows — the hidden
          // orig column must not leak into its column numbering.
          concat_buf.clear();
          for (int c = 0; c < left_base_width; ++c) {
            concat_buf.push_back(lrow[c]);
          }
          for (int c = 0; c < rrow.width(); ++c) {
            concat_buf.push_back(rrow[c]);
          }
          if (!spec.residual(RowView(concat_buf.data(),
                                     static_cast<int>(concat_buf.size())))) {
            continue;
          }
        }
        matched = true;
        if (inner) {
          for (size_t c = 0; c < spec.output_cols.size(); ++c) {
            const auto& oc = spec.output_cols[c];
            out_buf[c] = oc.side == JoinOutputCol::Side::kLeft
                             ? lrow[oc.column]
                             : rrow[oc.column];
          }
          out_buf.back() = lrow[orig_col];
          dst->AppendRow(out_buf);
        } else {
          break;  // semi/anti only need existence
        }
      }
      // Semi/anti emit the left row as-is: dst shares left_part's schema,
      // so the orig column rides along automatically.
      if (spec.type == JoinType::kLeftSemi && matched) dst->AppendRow(lrow);
      if (spec.type == JoinType::kLeftAnti && !matched) dst->AppendRow(lrow);
    }
  }
}

/// Streams `src` rows [all] into `dst` partitions, hashing on `keys` in
/// Tunables-sized chunks.
Status PartitionInto(const Table& src, const std::vector<int>& keys,
                     int64_t chunk_rows, SpillableTable* dst) {
  std::vector<size_t> hashes;
  const int64_t n = src.NumRows();
  for (int64_t begin = 0; begin < n; begin += chunk_rows) {
    const int64_t end = std::min(begin + chunk_rows, n);
    hashes.resize(static_cast<size_t>(end - begin));
    src.HashRows(keys, begin, end, hashes.data());
    PROBKB_RETURN_NOT_OK(dst->AppendPartitioned(src, hashes, begin, end));
  }
  return dst->Finish();
}

/// Joins `left_part` x `right_part`, recursing one more partitioning
/// level (next bit group down) when the pair's working set still exceeds
/// the budget. Both inputs are pinned/resident tables; `left_part`
/// carries the orig column.
///
/// Every in-memory probe appends a fresh table to `leaves` instead of
/// writing into one per-top-partition output: a leaf is ascending in orig
/// (the probe walks its partition in scatter order), but the
/// *concatenation* of sibling leaves is not — children split on a deeper
/// bit group, so their orig ranges interleave. The top-level merge
/// therefore runs over all leaves, never over concatenations.
Status GraceJoinPair(SpillContext* spill, const Table& left_part,
                     const Table& right_part, const GraceJoinSpec& spec,
                     const Schema& run_schema, int left_base_width,
                     int bit_offset, int depth,
                     std::vector<TablePtr>* leaves) {
  const Tunables tun = GetTunables();
  MemoryBudget* budget = spill->budget();
  // FlatRowIndex cost ~ 16 bytes/entry + slots at 10/7 load x 24 bytes.
  const int64_t index_bytes = right_part.NumRows() * 52;
  const int64_t working_bytes =
      left_part.ByteSize() + right_part.ByteSize() + index_bytes;
  const bool over_budget =
      budget != nullptr && budget->enabled() &&
      working_bytes > budget->AvailableBytes();
  if (!over_budget || depth >= kMaxGraceDepth ||
      right_part.NumRows() < tun.grace_split_min_rows ||
      bit_offset + 1 > 55) {
    auto leaf = Table::Make(run_schema);
    ProbePartitionPair(left_part, left_base_width, right_part, spec,
                       leaf.get());
    if (leaf->NumRows() > 0) leaves->push_back(std::move(leaf));
    return Status::OK();
  }

  // Recurse: split this pair on the next bit group. Children route on
  // bits the parent never consulted, so the chain argument applies
  // hierarchically, and a left row's matches all carry its full hash —
  // an orig group can never split across leaves.
  int parts = 2;
  while (parts < 256 && bit_offset + 8 <= 55 &&
         working_bytes > budget->AvailableBytes() * (parts / 2)) {
    parts <<= 1;
  }
  const std::string stem =
      spec.label + ".d" + std::to_string(depth + 1);
  // with_row_ids=false: left_part already carries orig as a payload
  // column; re-tagging would overwrite global ids with local ones.
  SpillableTable lparts(spill, left_part.schema(), parts, bit_offset,
                        stem + ".L", /*with_row_ids=*/false);
  SpillableTable rparts(spill, right_part.schema(), parts, bit_offset,
                        stem + ".R", /*with_row_ids=*/false);
  PROBKB_RETURN_NOT_OK(
      PartitionInto(left_part, spec.left_keys, tun.hash_chunk_rows, &lparts));
  PROBKB_RETURN_NOT_OK(PartitionInto(right_part, spec.right_keys,
                                     tun.hash_chunk_rows, &rparts));
  const int next_offset = bit_offset + lparts.router().bits();
  for (int p = 0; p < parts; ++p) {
    if (lparts.PartitionRows(p) == 0) continue;
    PROBKB_ASSIGN_OR_RETURN(TablePtr lp, lparts.PinPartition(p));
    PROBKB_ASSIGN_OR_RETURN(TablePtr rp, rparts.PinPartition(p));
    Status st = GraceJoinPair(spill, *lp, *rp, spec, run_schema,
                              left_base_width, next_offset, depth + 1, leaves);
    lparts.UnpinPartition(p);
    rparts.UnpinPartition(p);
    PROBKB_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace

Result<TablePtr> GraceHashJoin(SpillContext* spill, const Table& left,
                               const Table& right, const GraceJoinSpec& spec,
                               GraceJoinStats* stats) {
  PROBKB_RETURN_NOT_OK(spill->Prepare());
  const Tunables tun = GetTunables();
  TraceSpan span(Tracer::Global(), "grace_hash_join", "spill",
                 left.NumRows(), right.NumRows());

  const SpillStats& sstats = spill->stats();
  const int64_t written0 = sstats.bytes_written.load(std::memory_order_relaxed);
  const int64_t read0 = sstats.bytes_read.load(std::memory_order_relaxed);
  const int64_t faults0 =
      sstats.page_faults_served.load(std::memory_order_relaxed);
  const int64_t spilled0 =
      sstats.partitions_spilled.load(std::memory_order_relaxed);

  int parts = spec.num_parts;
  PROBKB_CHECK(parts >= 2 && (parts & (parts - 1)) == 0 && parts <= 256);

  const bool inner = spec.type == JoinType::kInner;
  const int left_base_width = left.width();
  const Schema run_schema =
      WithOrigColumn(inner ? spec.out_schema : left.schema());

  // Level 0: partition both sides on the top hash bits; the probe side is
  // tagged with global row ids for the final merge.
  SpillableTable lparts(spill, left.schema(), parts, /*bit_offset=*/0,
                        spec.label + ".L", /*with_row_ids=*/true);
  SpillableTable rparts(spill, right.schema(), parts, /*bit_offset=*/0,
                        spec.label + ".R", /*with_row_ids=*/false);
  PROBKB_RETURN_NOT_OK(
      PartitionInto(left, spec.left_keys, tun.hash_chunk_rows, &lparts));
  PROBKB_RETURN_NOT_OK(
      PartitionInto(right, spec.right_keys, tun.hash_chunk_rows, &rparts));

  // Pair joins run one partition at a time (sequential page-in, bounded
  // working set). Every leaf probe emits its own run, ascending in orig:
  // the partitioner scanned the probe side in row order, and the pair
  // probe walks its partition in that order.
  const int next_offset = lparts.router().bits();
  std::vector<TablePtr> runs;
  for (int p = 0; p < parts; ++p) {
    if (lparts.PartitionRows(p) == 0) continue;
    PROBKB_ASSIGN_OR_RETURN(TablePtr lp, lparts.PinPartition(p));
    PROBKB_ASSIGN_OR_RETURN(TablePtr rp, rparts.PinPartition(p));
    Status st =
        GraceJoinPair(spill, *lp, *rp, spec, run_schema, left_base_width,
                      next_offset, /*depth=*/1, &runs);
    lparts.UnpinPartition(p);
    rparts.UnpinPartition(p);
    PROBKB_RETURN_NOT_OK(st);
  }

  // K-way range merge on orig over all leaf runs: repeatedly take from
  // the run whose head orig is smallest, copying the maximal prefix that
  // stays below every other run's head. Orig values are unique to one run
  // (a left row's matches share its full hash, so every routing level
  // sends them to the same partition — and thus one leaf), so strict
  // comparison suffices; the ranged AppendProjectedRows strips the orig
  // column as it copies. The result is the exact serial probe order.
  const Schema& out_schema = inner ? spec.out_schema : left.schema();
  auto out = Table::Make(out_schema);
  out->ReserveRows([&] {
    int64_t total = 0;
    for (const TablePtr& r : runs) total += r->NumRows();
    return total;
  }());
  std::vector<int> strip_cols(static_cast<size_t>(out_schema.num_fields()));
  for (size_t c = 0; c < strip_cols.size(); ++c) {
    strip_cols[c] = static_cast<int>(c);
  }
  const int orig_col = out_schema.num_fields();
  struct Run {
    size_t owner;  // index into `runs`, so a drained run can be freed
    const int64_t* orig;
    int64_t pos;
    int64_t n;
  };
  std::vector<Run> heads;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i]->NumRows() > 0) {
      heads.push_back(
          Run{i, runs[i]->Int64Data(orig_col), 0, runs[i]->NumRows()});
    }
  }
  while (!heads.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < heads.size(); ++i) {
      if (heads[i].orig[heads[i].pos] < heads[best].orig[heads[best].pos]) {
        best = i;
      }
    }
    int64_t limit = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < heads.size(); ++i) {
      if (i != best) limit = std::min(limit, heads[i].orig[heads[i].pos]);
    }
    Run& run = heads[best];
    int64_t end = run.pos;
    while (end < run.n && run.orig[end] < limit) ++end;
    out->AppendProjectedRows(*runs[run.owner], strip_cols, run.pos, end);
    run.pos = end;
    if (run.pos == run.n) {
      // Release the drained leaf immediately: the merge transiently holds
      // the run tables alongside the growing output, so freeing runs as
      // they empty caps that duplication at roughly one output copy.
      runs[run.owner].reset();
      heads.erase(heads.begin() + static_cast<ptrdiff_t>(best));
    }
  }

  if (stats != nullptr) {
    stats->partitions = parts;
    stats->spill_partitions = static_cast<int>(
        sstats.partitions_spilled.load(std::memory_order_relaxed) - spilled0);
    stats->spill_bytes_written =
        sstats.bytes_written.load(std::memory_order_relaxed) - written0;
    stats->spill_bytes_read =
        sstats.bytes_read.load(std::memory_order_relaxed) - read0;
    stats->page_faults_served =
        sstats.page_faults_served.load(std::memory_order_relaxed) - faults0;
    span.set_values(out->NumRows(), stats->spill_bytes_written,
                    stats->spill_bytes_read);
  }
  return out;
}

}  // namespace probkb
