#include "engine/ops.h"

#include <functional>

namespace probkb {

KeyIndex::KeyIndex(const Table* table, std::vector<int> key_cols,
                   int64_t expected_extra_rows)
    : KeyIndex(table, std::move(key_cols), expected_extra_rows,
               /*index_existing=*/true) {}

KeyIndex::KeyIndex(const Table* table, std::vector<int> key_cols,
                   int64_t expected_extra_rows, bool index_existing)
    : table_(table), key_cols_(std::move(key_cols)) {
  if (!index_existing) return;
  index_.Reserve(table->NumRows() + expected_extra_rows);
  for (int64_t i = 0; i < table_->NumRows(); ++i) AddRow(i);
}

KeyIndex KeyIndex::Empty(const Table* table, std::vector<int> key_cols,
                         int64_t expected_rows) {
  KeyIndex index(table, std::move(key_cols), /*expected_extra_rows=*/0,
                 /*index_existing=*/false);
  index.index_.Reserve(expected_rows);
  return index;
}

bool KeyIndex::Contains(const RowView& row,
                        std::span<const int> probe_cols) const {
  size_t h = HashRowKey(row, probe_cols);
  for (int64_t e = index_.Head(h); e >= 0; e = index_.Next(e)) {
    if (RowKeyEquals(row, table_->row(index_.Row(e)), probe_cols,
                     key_cols_)) {
      return true;
    }
  }
  return false;
}

void KeyIndex::AddRow(int64_t i) {
  index_.Insert(HashRowKey(table_->row(i), key_cols_), i);
}

int64_t SetUnionInto(Table* dst, const Table& src,
                     const std::vector<int>& key_cols) {
  PROBKB_CHECK(dst->width() == src.width());
  // Pre-reserve for the delta: without this, a large src rehashes the
  // index log(src/dst) times mid-merge.
  KeyIndex index(dst, key_cols, src.NumRows());
  dst->ReserveRows(src.NumRows());
  int64_t added = 0;
  for (int64_t i = 0; i < src.NumRows(); ++i) {
    RowView row = src.row(i);
    if (!index.Contains(row, key_cols)) {
      dst->AppendRow(row);
      index.AddRow(dst->NumRows() - 1);
      ++added;
    }
  }
  return added;
}

int64_t DeleteWhere(Table* table,
                    const std::function<bool(const RowView&)>& pred) {
  std::vector<bool> keep(static_cast<size_t>(table->NumRows()));
  for (int64_t i = 0; i < table->NumRows(); ++i) {
    keep[static_cast<size_t>(i)] = !pred(table->row(i));
  }
  return table->FilterInPlace(keep);
}

int64_t DeleteMatching(Table* table, const std::vector<int>& table_cols,
                       const Table& keys, const std::vector<int>& key_cols) {
  KeyIndex index(&keys, key_cols);
  return DeleteWhere(table, [&](const RowView& row) {
    return index.Contains(row, table_cols);
  });
}

bool TablesEqualAsBags(const Table& a, const Table& b) {
  if (a.width() != b.width() || a.NumRows() != b.NumRows()) return false;
  return a.SortedRows() == b.SortedRows();
}

bool TablesEqualExact(const Table& a, const Table& b) {
  if (a.width() != b.width() || a.NumRows() != b.NumRows()) return false;
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!a.row(i).Equals(b.row(i))) return false;
  }
  return true;
}

}  // namespace probkb
