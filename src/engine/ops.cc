#include "engine/ops.h"

#include <functional>

namespace probkb {

KeyIndex::KeyIndex(const Table* table, std::vector<int> key_cols)
    : table_(table), key_cols_(std::move(key_cols)) {
  buckets_.reserve(static_cast<size_t>(table->NumRows()) * 2 + 16);
  for (int64_t i = 0; i < table_->NumRows(); ++i) AddRow(i);
}

bool KeyIndex::Contains(const RowView& row,
                        std::span<const int> probe_cols) const {
  size_t h = HashRowKey(row, probe_cols);
  auto it = buckets_.find(h);
  if (it == buckets_.end()) return false;
  for (int64_t j : it->second) {
    if (RowKeyEquals(row, table_->row(j), probe_cols, key_cols_)) return true;
  }
  return false;
}

void KeyIndex::AddRow(int64_t i) {
  buckets_[HashRowKey(table_->row(i), key_cols_)].push_back(i);
  ++num_rows_;
}

int64_t SetUnionInto(Table* dst, const Table& src,
                     const std::vector<int>& key_cols) {
  PROBKB_CHECK(dst->width() == src.width());
  KeyIndex index(dst, key_cols);
  int64_t added = 0;
  for (int64_t i = 0; i < src.NumRows(); ++i) {
    RowView row = src.row(i);
    if (!index.Contains(row, key_cols)) {
      dst->AppendRow(row);
      index.AddRow(dst->NumRows() - 1);
      ++added;
    }
  }
  return added;
}

int64_t DeleteWhere(Table* table,
                    const std::function<bool(const RowView&)>& pred) {
  std::vector<bool> keep(static_cast<size_t>(table->NumRows()));
  for (int64_t i = 0; i < table->NumRows(); ++i) {
    keep[static_cast<size_t>(i)] = !pred(table->row(i));
  }
  return table->FilterInPlace(keep);
}

int64_t DeleteMatching(Table* table, const std::vector<int>& table_cols,
                       const Table& keys, const std::vector<int>& key_cols) {
  KeyIndex index(&keys, key_cols);
  return DeleteWhere(table, [&](const RowView& row) {
    return index.Contains(row, table_cols);
  });
}

bool TablesEqualAsBags(const Table& a, const Table& b) {
  if (a.width() != b.width() || a.NumRows() != b.NumRows()) return false;
  return a.SortedRows() == b.SortedRows();
}

}  // namespace probkb
