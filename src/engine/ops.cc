#include "engine/ops.h"
#include "engine/tunables.h"

#include <algorithm>
#include <functional>

namespace probkb {

KeyIndex::KeyIndex(const Table* table, std::vector<int> key_cols,
                   int64_t expected_extra_rows)
    : KeyIndex(table, std::move(key_cols), expected_extra_rows,
               /*index_existing=*/true) {}

KeyIndex::KeyIndex(const Table* table, std::vector<int> key_cols,
                   int64_t expected_extra_rows, bool index_existing)
    : table_(table), key_cols_(std::move(key_cols)) {
  if (!index_existing) return;
  index_.Reserve(table->NumRows() + expected_extra_rows);
  // Batched build: hash the key columns in contiguous chunks instead of
  // materializing a Value per cell per row.
  size_t hashes[kIndexBuildChunkRows];
  const int64_t n = table_->NumRows();
  for (int64_t base = 0; base < n; base += kIndexBuildChunkRows) {
    const int64_t end = std::min(base + kIndexBuildChunkRows, n);
    table_->HashRows(key_cols_, base, end, hashes);
    for (int64_t i = base; i < end; ++i) {
      index_.Insert(hashes[i - base], i);
    }
  }
}

KeyIndex KeyIndex::Empty(const Table* table, std::vector<int> key_cols,
                         int64_t expected_rows) {
  KeyIndex index(table, std::move(key_cols), /*expected_extra_rows=*/0,
                 /*index_existing=*/false);
  index.index_.Reserve(expected_rows);
  return index;
}

bool KeyIndex::Contains(const RowView& row,
                        std::span<const int> probe_cols) const {
  return ContainsHashed(HashRowKey(row, probe_cols), row, probe_cols);
}

bool KeyIndex::ContainsHashed(size_t hash, const RowView& row,
                              std::span<const int> probe_cols) const {
  for (int64_t e = index_.Head(hash); e >= 0; e = index_.Next(e)) {
    if (RowKeyEquals(row, table_->row(index_.Row(e)), probe_cols,
                     key_cols_)) {
      return true;
    }
  }
  return false;
}

void KeyIndex::AddRow(int64_t i) {
  index_.Insert(HashRowKey(table_->row(i), key_cols_), i);
}

int64_t SetUnionInto(Table* dst, const Table& src,
                     const std::vector<int>& key_cols) {
  PROBKB_CHECK(dst->width() == src.width());
  // Pre-reserve for the delta: without this, a large src rehashes the
  // index log(src/dst) times mid-merge.
  KeyIndex index(dst, key_cols, src.NumRows());
  dst->ReserveRows(src.NumRows());
  // Batch-hash src keys once. An appended row is a copy of the src row, so
  // its key hash in dst equals the src hash — reuse it for AddRowHashed.
  size_t hashes[kHashBatchRows];
  int64_t added = 0;
  const int64_t n = src.NumRows();
  for (int64_t base = 0; base < n; base += kHashBatchRows) {
    const int64_t end = std::min(base + kHashBatchRows, n);
    src.HashRows(key_cols, base, end, hashes);
    for (int64_t i = base; i < end; ++i) index.PrefetchHash(hashes[i - base]);
    for (int64_t i = base; i < end; ++i) {
      const size_t h = hashes[i - base];
      RowView row = src.row(i);
      if (!index.ContainsHashed(h, row, key_cols)) {
        dst->AppendRow(row);
        index.AddRowHashed(h, dst->NumRows() - 1);
        ++added;
      }
    }
  }
  return added;
}

int64_t DeleteWhere(Table* table,
                    const std::function<bool(const RowView&)>& pred) {
  std::vector<bool> keep(static_cast<size_t>(table->NumRows()));
  for (int64_t i = 0; i < table->NumRows(); ++i) {
    keep[static_cast<size_t>(i)] = !pred(table->row(i));
  }
  return table->FilterInPlace(keep);
}

int64_t DeleteMatching(Table* table, const std::vector<int>& table_cols,
                       const Table& keys, const std::vector<int>& key_cols) {
  KeyIndex index(&keys, key_cols);
  // Batch-hash the probe keys and mark survivors directly.
  std::vector<bool> keep(static_cast<size_t>(table->NumRows()));
  size_t hashes[kHashBatchRows];
  const int64_t n = table->NumRows();
  for (int64_t base = 0; base < n; base += kHashBatchRows) {
    const int64_t end = std::min(base + kHashBatchRows, n);
    table->HashRows(table_cols, base, end, hashes);
    for (int64_t i = base; i < end; ++i) index.PrefetchHash(hashes[i - base]);
    for (int64_t i = base; i < end; ++i) {
      keep[static_cast<size_t>(i)] =
          !index.ContainsHashed(hashes[i - base], table->row(i), table_cols);
    }
  }
  return table->FilterInPlace(keep);
}

bool TablesEqualAsBags(const Table& a, const Table& b) {
  if (a.width() != b.width() || a.NumRows() != b.NumRows()) return false;
  return a.SortedRows() == b.SortedRows();
}

bool TablesEqualExact(const Table& a, const Table& b) {
  if (a.width() != b.width() || a.NumRows() != b.NumRows()) return false;
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!a.row(i).Equals(b.row(i))) return false;
  }
  return true;
}

}  // namespace probkb
