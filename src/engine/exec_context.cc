#include "engine/exec_context.h"

#include "util/strings.h"

namespace probkb {

std::string ExecStats::ToString() const {
  std::string out;
  for (const auto& n : nodes) {
    out += StrFormat("%-28s rows_in=%-10lld rows_out=%-10lld %.3fms\n",
                     n.label.c_str(), static_cast<long long>(n.rows_in),
                     static_cast<long long>(n.rows_out), n.seconds * 1e3);
  }
  return out;
}

Status ExecContext::Record(NodeStats stats) {
  produced_rows_ += stats.rows_out;
  const std::string label = stats.label;
  if (stats_sink_ != nullptr) {
    OpRecord op;
    op.label = stats.label;
    op.rows_in = stats.rows_in;
    op.rows_out = stats.rows_out;
    op.seconds = stats.seconds;
    op.build_seconds = stats.build_seconds;
    op.probe_seconds = stats.probe_seconds;
    op.rehashes = stats.rehashes;
    op.build_partitions = stats.build_partitions;
    op.num_children = stats.num_children;
    stats_sink_->RecordOp(stats_scope_, op);
  }
  stats_.nodes.push_back(std::move(stats));
  return CheckRowBudget(label);
}

Status ExecContext::CheckBudget(const std::string& label) {
  const int64_t op_index = (*op_counter_)++;
  if (injector_ != nullptr) {
    PROBKB_RETURN_NOT_OK(injector_->OperatorFault(op_index, label));
  }
  if (budget_.deadline_seconds > 0 &&
      timer_.Seconds() > budget_.deadline_seconds) {
    return Status::DeadlineExceeded(
        StrFormat("plan exceeded its %.3fs deadline at operator %s",
                  budget_.deadline_seconds, label.c_str()));
  }
  return CheckRowBudget(label);
}

Status ExecContext::CheckRowBudget(const std::string& label) const {
  if (budget_.max_produced_rows > 0 &&
      produced_rows_ > budget_.max_produced_rows) {
    return Status::ResourceExhausted(StrFormat(
        "plan produced %lld rows, over the %lld-row budget, at operator %s",
        static_cast<long long>(produced_rows_),
        static_cast<long long>(budget_.max_produced_rows), label.c_str()));
  }
  return Status::OK();
}

}  // namespace probkb
