#include "engine/exec_context.h"

#include "util/strings.h"

namespace probkb {

std::string ExecStats::ToString() const {
  std::string out;
  for (const auto& n : nodes) {
    out += StrFormat("%-28s rows_in=%-10lld rows_out=%-10lld %.3fms\n",
                     n.label.c_str(), static_cast<long long>(n.rows_in),
                     static_cast<long long>(n.rows_out), n.seconds * 1e3);
  }
  return out;
}

}  // namespace probkb
