#include "engine/planner.h"

#include <algorithm>
#include <limits>

#include "util/strings.h"

namespace probkb {

const char* MotionChoiceToString(MotionChoice c) {
  switch (c) {
    case MotionChoice::kRedistribute:
      return "redistribute";
    case MotionChoice::kBroadcastRight:
      return "broadcast-right";
    case MotionChoice::kBroadcastLeft:
      return "broadcast-left";
  }
  return "?";
}

std::string MotionDecision::ToString() const {
  std::string out = StrFormat("%s redistribute=%.3es broadcast-right=%.3es",
                              MotionChoiceToString(choice),
                              redistribute_seconds, broadcast_right_seconds);
  if (broadcast_left_seconds == std::numeric_limits<double>::infinity()) {
    out += " broadcast-left=n/a";
  } else {
    out += StrFormat(" broadcast-left=%.3es", broadcast_left_seconds);
  }
  return out;
}

MotionDecision AdaptivePlanner::DecideJoinMotion(const JoinMotionQuery& q) {
  MotionDecision d;
  const double n = static_cast<double>(model_.num_segments);
  const double spt = model_.seconds_per_shipped_tuple;
  const double lat = model_.motion_latency;
  const double disc = model_.broadcast_tuple_discount;
  if (model_.num_segments > 1) {
    // Redistribute: each non-collocated side ships the (n-1)/n fraction of
    // its rows that hash to another segment (plus one motion latency).
    const double moved_frac = (n - 1.0) / n;
    double redist = 0.0;
    if (!q.left_collocated) {
      redist += lat + static_cast<double>(q.left_rows) * moved_frac * spt;
    }
    if (!q.right_collocated) {
      redist += lat + static_cast<double>(q.right_rows) * moved_frac * spt;
    }
    d.redistribute_seconds = redist;
    // Broadcast ships rows x (n-1) replicas at the discounted rate and
    // leaves the other side in place regardless of its placement.
    d.broadcast_right_seconds =
        lat + static_cast<double>(q.right_rows) * (n - 1.0) * disc * spt;
    d.broadcast_left_seconds =
        q.inner_join
            ? lat + static_cast<double>(q.left_rows) * (n - 1.0) * disc * spt
            : std::numeric_limits<double>::infinity();
  } else {
    // Single segment: nothing ships; keep the redistribute shape.
    d.broadcast_left_seconds =
        q.inner_join ? 0.0 : std::numeric_limits<double>::infinity();
  }

  // Deterministic tie-break: redistribute < broadcast-right <
  // broadcast-left. Strict `<` keeps earlier candidates on equal cost.
  d.choice = MotionChoice::kRedistribute;
  double best = d.redistribute_seconds;
  if (d.broadcast_right_seconds < best) {
    best = d.broadcast_right_seconds;
    d.choice = MotionChoice::kBroadcastRight;
  }
  if (d.broadcast_left_seconds < best) {
    d.choice = MotionChoice::kBroadcastLeft;
  }
  decision_log_.emplace_back(q, d);
  return d;
}

std::string AdaptivePlanner::ExplainDecisions() const {
  std::string out;
  for (const auto& [q, d] : decision_log_) {
    out += StrFormat("%s: %s  left=%lld%s right=%lld%s%s\n  %s\n",
                     q.statement.c_str(), MotionChoiceToString(d.choice),
                     static_cast<long long>(q.left_rows),
                     q.left_collocated ? "@key" : "",
                     static_cast<long long>(q.right_rows),
                     q.right_collocated ? "@key" : "",
                     q.from_observation ? " (from observation)"
                                        : " (cold start)",
                     d.ToString().c_str());
  }
  return out;
}

namespace {

int64_t AnnotateSubtree(PlanNode* node) {
  std::vector<int64_t> child_est;
  child_est.reserve(node->children().size());
  for (const auto& c : node->children()) {
    child_est.push_back(AnnotateSubtree(c.get()));
  }
  int64_t est = 0;
  if (auto* scan = dynamic_cast<ScanNode*>(node)) {
    est = scan->TableRows();
  } else if (auto* join = dynamic_cast<HashJoinNode*>(node)) {
    // The grounding joins are key / foreign-key shaped (M against a view
    // keyed on the rule columns), so the inner-join output is on the order
    // of the larger input; semi/anti joins emit a subset of the left.
    est = join->join_type() == JoinType::kInner
              ? std::max(child_est[0], child_est[1])
              : child_est[0];
  } else if (dynamic_cast<UnionAllNode*>(node) != nullptr) {
    for (int64_t e : child_est) est += e;
  } else if (!child_est.empty()) {
    est = child_est[0];
  }
  node->set_est_rows(est);
  return est;
}

}  // namespace

int64_t AnnotatePlanEstimates(PlanNode* root, const AdaptivePlanner* planner,
                              const std::string& statement) {
  int64_t est = AnnotateSubtree(root);
  if (planner != nullptr && !statement.empty() &&
      planner->HasObservation(statement)) {
    est = planner->ObservedRows(statement, est);
    root->set_est_rows(est);
  }
  return est;
}

}  // namespace probkb
