#include "engine/plan.h"

#include "util/strings.h"

// Structural half of the plan layer: node construction, schema derivation,
// and EXPLAIN rendering. Execution bodies live in executor.cc so the IR can
// be built, annotated, and inspected without running anything.

namespace probkb {

std::string PlanNode::Explain(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Label();
  if (est_rows_ >= 0 || obs_rows_ >= 0) {
    out += " (est=";
    out += est_rows_ >= 0 ? StrFormat("%lld", static_cast<long long>(est_rows_))
                          : "?";
    out += " obs=";
    out += obs_rows_ >= 0 ? StrFormat("%lld", static_cast<long long>(obs_rows_))
                          : "?";
    out += ")";
  }
  out += "\n";
  for (const auto& child : children_) {
    out += child->Explain(indent + 1);
  }
  return out;
}

const char* JoinTypeToString(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeftSemi:
      return "semi";
    case JoinType::kLeftAnti:
      return "anti";
  }
  return "?";
}

FilterNode::FilterNode(PlanNodePtr input, RowPredicate pred,
                       std::string description)
    : pred_(std::move(pred)), description_(std::move(description)) {
  children_.push_back(std::move(input));
}

ProjectNode::ProjectNode(PlanNodePtr input, std::vector<ProjectExpr> exprs)
    : exprs_(std::move(exprs)) {
  children_.push_back(std::move(input));
  std::vector<Field> fields;
  fields.reserve(exprs_.size());
  for (const auto& e : exprs_) fields.push_back({e.name, e.type});
  output_schema_ = Schema(std::move(fields));
}

HashJoinNode::HashJoinNode(PlanNodePtr left, PlanNodePtr right,
                           std::vector<int> left_keys,
                           std::vector<int> right_keys, JoinType type,
                           std::vector<JoinOutputCol> output_cols,
                           RowPredicate residual)
    : left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      type_(type),
      output_cols_(std::move(output_cols)),
      residual_(std::move(residual)) {
  PROBKB_CHECK(left_keys_.size() == right_keys_.size());
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

DistinctNode::DistinctNode(PlanNodePtr input, std::vector<int> key_cols)
    : key_cols_(std::move(key_cols)) {
  children_.push_back(std::move(input));
}

AggregateNode::AggregateNode(PlanNodePtr input, std::vector<int> group_cols,
                             std::vector<AggSpec> aggs, RowPredicate having)
    : group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      having_(std::move(having)) {
  children_.push_back(std::move(input));
}

UnionAllNode::UnionAllNode(std::vector<PlanNodePtr> inputs)
    : PlanNode(std::move(inputs)) {
  PROBKB_CHECK(!children_.empty());
}

}  // namespace probkb
