#ifndef PROBKB_ENGINE_EXECUTOR_H_
#define PROBKB_ENGINE_EXECUTOR_H_

#include "engine/exec_context.h"
#include "engine/plan.h"
#include "util/result.h"

namespace probkb {

/// \brief Runs a plan tree and returns its result table.
///
/// The executor half of the plan layer: PlanNode::Execute bodies live in
/// executor.cc and read their serial/parallel cutoffs from the process-wide
/// Tunables snapshot (engine/tunables.h) instead of compile-time constants.
/// Each node also records its observed output cardinality on itself
/// (PlanNode::obs_rows), so an executed tree doubles as an EXPLAIN ANALYZE
/// artifact the planner's next iteration feeds on.
Result<TablePtr> ExecutePlan(PlanNode* root, ExecContext* ctx);

}  // namespace probkb

#endif  // PROBKB_ENGINE_EXECUTOR_H_
