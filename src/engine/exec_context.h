#ifndef PROBKB_ENGINE_EXEC_CONTEXT_H_
#define PROBKB_ENGINE_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace probkb {

/// \brief Per-operator execution statistics.
///
/// `rows_in` counts tuples flowing into the operator (both join sides, the
/// scan input, ...), `rows_out` the produced tuples. The MPP cost model
/// converts these counts into simulated time, and the bench harnesses print
/// them in Figure-4-style plan annotations.
struct NodeStats {
  std::string label;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double seconds = 0.0;
};

/// \brief Accumulated statistics of one plan execution.
struct ExecStats {
  std::vector<NodeStats> nodes;

  int64_t TotalRowsIn() const {
    int64_t t = 0;
    for (const auto& n : nodes) t += n.rows_in;
    return t;
  }
  int64_t TotalRowsOut() const {
    int64_t t = 0;
    for (const auto& n : nodes) t += n.rows_out;
    return t;
  }

  /// \brief Indented plan printout with row counts and timings.
  std::string ToString() const;
};

/// \brief Execution context threaded through a plan; owns the stats sink.
class ExecContext {
 public:
  ExecContext() = default;

  void Record(NodeStats stats) { stats_.nodes.push_back(std::move(stats)); }

  const ExecStats& stats() const { return stats_; }
  ExecStats* mutable_stats() { return &stats_; }

 private:
  ExecStats stats_;
};

}  // namespace probkb

#endif  // PROBKB_ENGINE_EXEC_CONTEXT_H_
