#ifndef PROBKB_ENGINE_EXEC_CONTEXT_H_
#define PROBKB_ENGINE_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/stats_registry.h"
#include "relational/spill.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace probkb {

/// \brief Per-operator execution statistics.
///
/// `rows_in` counts tuples flowing into the operator (both join sides, the
/// scan input, ...), `rows_out` the produced tuples. The MPP cost model
/// converts these counts into simulated time, and the bench harnesses print
/// them in Figure-4-style plan annotations.
///
/// Operators record in post-order (children finish before their parent), so
/// `num_children` lets a consumer rebuild the exact plan tree from the flat
/// record stream.
struct NodeStats {
  std::string label;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double seconds = 0.0;
  double build_seconds = 0.0;  // hash-join: building the hash index
  double probe_seconds = 0.0;  // hash-join: probing it
  int64_t rehashes = 0;        // mid-build index growths (0 when pre-sized)
  int build_partitions = 0;    // hash-join: build-side partition fan-out
  int spill_partitions = 0;        // grace-hash: partitions that hit disk
  int64_t spill_bytes_written = 0;  // grace-hash: bytes spilled out
  int64_t spill_bytes_read = 0;     // grace-hash: bytes paged back in
  int64_t page_faults_served = 0;   // grace-hash: partition page-ins
  int num_children = 0;
};

/// \brief Accumulated statistics of one plan execution.
struct ExecStats {
  std::vector<NodeStats> nodes;

  int64_t TotalRowsIn() const {
    int64_t t = 0;
    for (const auto& n : nodes) t += n.rows_in;
    return t;
  }
  int64_t TotalRowsOut() const {
    int64_t t = 0;
    for (const auto& n : nodes) t += n.rows_out;
    return t;
  }

  /// \brief Indented plan printout with row counts and timings.
  std::string ToString() const;
};

/// \brief Resource limits of one plan execution: a wall-clock deadline and
/// a produced-row cap (the simulator's proxy for operator memory). Zero
/// means unlimited.
struct ExecBudget {
  double deadline_seconds = 0.0;
  int64_t max_produced_rows = 0;
};

/// \brief Execution context threaded through a plan; owns the stats sink,
/// the resource budget, and the fault-injection hook.
class ExecContext {
 public:
  ExecContext() = default;

  /// \brief Records one operator's stats and charges its output against the
  /// row budget: kResourceExhausted as soon as the cap is crossed, rather
  /// than before the *next* operator starts (which would let one operator
  /// overshoot arbitrarily and never trip on a statement's last operator).
  Status Record(NodeStats stats);

  /// \brief Arms the budget; the deadline clock starts here.
  void set_budget(ExecBudget budget) {
    budget_ = budget;
    timer_.Reset();
  }
  const ExecBudget& budget() const { return budget_; }

  /// \brief Attaches a fault injector (not owned); operators consult it to
  /// simulate memory/deadline trips at exact, seeded points.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// \brief Points operator numbering at a counter shared across statements
  /// (not owned, must outlive this context). A grounding run threads one
  /// counter into every statement's context, so a scheduled operator-budget
  /// fault addresses a single global execution point instead of "operator k
  /// of every statement".
  void set_shared_op_counter(int64_t* counter) { op_counter_ = counter; }

  /// \brief Attaches a thread pool (not owned; may be nullptr). Operators
  /// with a data-parallel inner loop (the hash-join probe) fan morsels out
  /// over it; a null pool or a pool of one is the exact serial path. The
  /// pool never changes an operator's *output*: morsel results are merged
  /// in morsel order, and budget/fault bookkeeping stays on the thread
  /// executing the plan.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// \brief Attaches the out-of-core spill context (not owned; may be
  /// nullptr = unlimited memory, pure in-memory execution). When set and
  /// its MemoryBudget reports pressure, the hash join switches to the
  /// grace-hash path (ops.h GraceHashJoin) — a pure physical rewrite whose
  /// output is bit-identical to the in-memory path.
  void set_spill(SpillContext* spill) { spill_ = spill; }
  SpillContext* spill() const { return spill_; }

  /// \brief Mirrors every Record into `sink` under `scope` (not owned; may
  /// be nullptr to detach). Purely observational: recording happens after
  /// the budget/fault gates and copies values out, so an attached sink
  /// never changes control flow, row order, or operator numbering.
  void set_stats_sink(StatsRegistry* sink, std::string scope) {
    stats_sink_ = sink;
    stats_scope_ = std::move(scope);
  }

  /// \brief Budget and fault gate called by every operator before it runs:
  /// kDeadlineExceeded past the deadline, kResourceExhausted past the row
  /// cap, or whatever the injector decides for this operator index.
  Status CheckBudget(const std::string& label);

  int64_t produced_rows() const { return produced_rows_; }

  const ExecStats& stats() const { return stats_; }
  ExecStats* mutable_stats() { return &stats_; }

 private:
  Status CheckRowBudget(const std::string& label) const;

  ExecStats stats_;
  ExecBudget budget_;
  Timer timer_;
  StatsRegistry* stats_sink_ = nullptr;
  std::string stats_scope_;
  FaultInjector* injector_ = nullptr;
  ThreadPool* pool_ = nullptr;
  SpillContext* spill_ = nullptr;
  int64_t produced_rows_ = 0;
  int64_t local_op_counter_ = 0;
  int64_t* op_counter_ = &local_op_counter_;
};

}  // namespace probkb

#endif  // PROBKB_ENGINE_EXEC_CONTEXT_H_
