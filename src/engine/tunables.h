#ifndef PROBKB_ENGINE_TUNABLES_H_
#define PROBKB_ENGINE_TUNABLES_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace probkb {

/// Compile-time batch widths. These size stack arrays in the batched hash
/// pipelines (`size_t hashes[k...]`), so they cannot become runtime knobs
/// without moving those buffers to the heap; they are micro-architectural
/// (L1 / prefetch-queue depth), not workload-dependent, so a constant is
/// the right shape. Everything workload-dependent lives in Tunables below.
///
/// Rows a probe batch covers in the batched prefetch pipeline: enough
/// in-flight prefetches to hide a DRAM miss, small enough to stay in L1.
inline constexpr int64_t kProbeBatchRows = 32;
/// Rows per batched Table::HashRows call in the KeyIndex / SetUnionInto /
/// DeleteMatching / SelectNewAtomRows pipelines.
inline constexpr int64_t kHashBatchRows = 64;
/// Rows per batched TargetSegments hashing chunk in Distribute /
/// placement validation.
inline constexpr int64_t kSegmentHashChunkRows = 4096;
/// Rows per batched hashing chunk when building a KeyIndex.
inline constexpr int64_t kIndexBuildChunkRows = 4096;

/// \brief Runtime execution knobs, replacing the per-file constants that
/// PR 5 hard-coded (kParallelMinRows / kHashChunkRows / morsel size /
/// MppContext::kSerialFanoutRowCutoff / the build-partition cap).
///
/// One struct, three sources, in priority order:
///   1. explicit SetTunables() (CLI flags),
///   2. PROBKB_* environment overrides (ApplyTunablesEnv),
///   3. the compiled defaults below — or, with --auto_tune, the values
///      CalibrateTunables measured on this host (cached to a file).
///
/// Every knob only moves work between the serial and parallel paths of an
/// operator; both paths are bit-identical by construction (DESIGN.md
/// "Threading model"), so no setting can change any output.
struct Tunables {
  /// Input-row floor below which an operator skips the thread pool
  /// entirely (probe morsels, build partitioning, parallel batch hashing):
  /// dispatch overhead beats the win on tiny deltas.
  int64_t parallel_min_rows = 8192;
  /// Rows per parallel build-side hashing chunk in HashJoin.
  int64_t hash_chunk_rows = 4096;
  /// Rows per probe morsel in the morsel-parallel HashJoin probe.
  int64_t morsel_rows = 2048;
  /// Total-input-rows floor below which per-segment MPP fan-out runs
  /// serially even with a pool attached. Dispatching N segment tasks for a
  /// few hundred rows costs more than the tasks themselves — the
  /// fig6c_mpp_views workload regressed below 1.0x speedup at 2-8 threads
  /// purely on fan-out overhead over tiny per-iteration deltas.
  int64_t serial_fanout_row_cutoff = 8192;
  /// Cap on hash-partitioned build parts in HashJoin (power of two).
  int max_build_partitions = 16;
  /// Transient-memory budget for out-of-core execution, in bytes; 0
  /// disables spilling (pure in-memory). Covers the working set the
  /// operators allocate (pinned spill partitions, partition write
  /// buffers), not resident base tables. Unlike the knobs above this one
  /// changes *where* bytes live, never what any operator outputs: the
  /// grace-hash path it enables is bit-identical to in-memory execution.
  int64_t mem_budget_bytes = 0;
  /// Spill partition page size: a partition's write buffer flushes to its
  /// page file when it grows past this many bytes.
  int64_t spill_page_bytes = 1 << 20;
  /// Build-side row floor below which a grace partition pair joins in
  /// memory instead of recursing another partitioning level: tiny pairs
  /// cannot meaningfully split (and repartitioning them costs more than
  /// the index they avoid).
  int64_t grace_split_min_rows = 4096;

  bool operator==(const Tunables&) const = default;

  std::string ToString() const;
};

/// \brief Process-wide tunables. GetTunables returns a snapshot copy;
/// SetTunables replaces the whole struct. Set before execution starts
/// (CLI parse / bench setup) — operators read a snapshot per Execute call.
Tunables GetTunables();
void SetTunables(const Tunables& t);

/// \brief Applies PROBKB_PARALLEL_MIN_ROWS / PROBKB_HASH_CHUNK_ROWS /
/// PROBKB_MORSEL_ROWS / PROBKB_SERIAL_FANOUT_CUTOFF /
/// PROBKB_MAX_BUILD_PARTITIONS / PROBKB_MEM_BUDGET /
/// PROBKB_SPILL_PAGE_BYTES / PROBKB_GRACE_SPLIT_MIN_ROWS on top of
/// `base`. Garbage values warn and keep the base value (the
/// ResolveThreads contract). PROBKB_MEM_BUDGET and
/// PROBKB_SPILL_PAGE_BYTES accept K/M/G suffixes ("512M").
Tunables ApplyTunablesEnv(Tunables base);

/// \brief Measures this host's serial-vs-parallel crossover with a short
/// microbench probe (batched hashing + morsel fan-out over synthetic rows
/// at doubling sizes) and returns cutoffs set just above the largest size
/// where serial still won. On a host with one hardware thread every
/// cutoff is pushed to int64 max: the pool can never win, so every
/// operator degrades to the exact serial path.
Tunables CalibrateTunables(int num_threads = 0);

/// \brief Cache of a calibration result keyed by a host signature
/// (hardware thread count), so startup pays the probe once per host.
/// LoadTunablesCache returns false on a missing/stale/foreign-host file.
bool LoadTunablesCache(const std::string& path, Tunables* out);
Status SaveTunablesCache(const std::string& path, const Tunables& t);

/// \brief Resolves the calibration flow the CLI / bench harness use:
/// cache hit wins, else calibrate and (best-effort) write the cache. The
/// path defaults to $PROBKB_TUNABLES_CACHE, else ".probkb_tunables".
Tunables AutoTuneTunables(std::string cache_path = "");

}  // namespace probkb

#endif  // PROBKB_ENGINE_TUNABLES_H_
