#include "engine/tunables.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/mem_budget.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace probkb {

namespace {

std::mutex g_tunables_mu;
Tunables g_tunables;  // guarded by g_tunables_mu

/// Reads an int64 env override into `*dst`; warns and keeps the old value
/// on garbage or out-of-range input (mirrors ResolveThreads).
void EnvInt64(const char* name, int64_t min_value, int64_t* dst) {
  const char* env = std::getenv(name);
  if (env == nullptr) return;
  int64_t v = 0;
  if (!ParseInt64(StripWhitespace(env), &v) || v < min_value) {
    PROBKB_SLOG(Engine, Warning)
        << "ignoring " << name << "='" << env << "' (expected an integer >= "
        << min_value << "); keeping " << *dst;
    return;
  }
  *dst = v;
}

/// Like EnvInt64 but the value is a byte size with an optional K/M/G
/// suffix ("512M"), parsed by ParseByteSize.
void EnvByteSize(const char* name, int64_t min_value, int64_t* dst) {
  const char* env = std::getenv(name);
  if (env == nullptr) return;
  auto v = ParseByteSize(env);
  if (!v.ok() || *v < min_value) {
    PROBKB_SLOG(Engine, Warning)
        << "ignoring " << name << "='" << env
        << "' (expected a byte size >= " << min_value
        << ", e.g. 268435456 or 256M); keeping " << *dst;
    return;
  }
  *dst = *v;
}

/// The calibration workload: the same shape as the hot batched-hash loops
/// (sequential int64 reads, a multiply-xor mix, a per-chunk reduction).
/// Returns a sink value so the work cannot be optimized away.
uint64_t MixRange(const int64_t* data, int64_t begin, int64_t end) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (int64_t i = begin; i < end; ++i) {
    uint64_t x = static_cast<uint64_t>(data[i]) * 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 31;
    acc ^= x + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  }
  return acc;
}

constexpr const char* kCacheHeader = "probkb_tunables v1";

int HardwareSignature() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

std::string Tunables::ToString() const {
  return StrFormat(
      "parallel_min_rows=%lld hash_chunk_rows=%lld morsel_rows=%lld "
      "serial_fanout_row_cutoff=%lld max_build_partitions=%d "
      "mem_budget_bytes=%lld spill_page_bytes=%lld "
      "grace_split_min_rows=%lld",
      static_cast<long long>(parallel_min_rows),
      static_cast<long long>(hash_chunk_rows),
      static_cast<long long>(morsel_rows),
      static_cast<long long>(serial_fanout_row_cutoff),
      max_build_partitions, static_cast<long long>(mem_budget_bytes),
      static_cast<long long>(spill_page_bytes),
      static_cast<long long>(grace_split_min_rows));
}

Tunables GetTunables() {
  std::lock_guard<std::mutex> lock(g_tunables_mu);
  return g_tunables;
}

void SetTunables(const Tunables& t) {
  std::lock_guard<std::mutex> lock(g_tunables_mu);
  g_tunables = t;
}

Tunables ApplyTunablesEnv(Tunables base) {
  EnvInt64("PROBKB_PARALLEL_MIN_ROWS", 1, &base.parallel_min_rows);
  EnvInt64("PROBKB_HASH_CHUNK_ROWS", 64, &base.hash_chunk_rows);
  EnvInt64("PROBKB_MORSEL_ROWS", 64, &base.morsel_rows);
  EnvInt64("PROBKB_SERIAL_FANOUT_CUTOFF", 0,
           &base.serial_fanout_row_cutoff);
  int64_t parts = base.max_build_partitions;
  EnvInt64("PROBKB_MAX_BUILD_PARTITIONS", 1, &parts);
  // Keep the cap a power of two in [1, 256] — the partition router takes
  // the top log2(parts) hash bits.
  int pow2 = 1;
  while (pow2 * 2 <= parts && pow2 < 256) pow2 *= 2;
  base.max_build_partitions = pow2;
  EnvByteSize("PROBKB_MEM_BUDGET", 0, &base.mem_budget_bytes);
  EnvByteSize("PROBKB_SPILL_PAGE_BYTES", 4096, &base.spill_page_bytes);
  EnvInt64("PROBKB_GRACE_SPLIT_MIN_ROWS", 1, &base.grace_split_min_rows);
  return base;
}

Tunables CalibrateTunables(int num_threads) {
  Tunables t;
  const int threads = ThreadPool::ResolveThreads(num_threads);
  if (threads <= 1) {
    // One executor: the pool can never win, so push every cutoff out of
    // reach and run the exact serial path everywhere (the 1-hardware-
    // thread bench host case).
    t.parallel_min_rows = std::numeric_limits<int64_t>::max();
    t.serial_fanout_row_cutoff = std::numeric_limits<int64_t>::max();
    return t;
  }

  ThreadPool pool(threads);
  std::vector<int64_t> data(1 << 17);
  std::iota(data.begin(), data.end(), int64_t{1});
  volatile uint64_t sink = 0;

  // Doubling sweep: the crossover is the smallest size where the pool beats
  // the serial loop. Each side takes the best of 3 trials to shed scheduler
  // noise; the parallel side uses the morsel grain the join probe uses.
  int64_t crossover = -1;
  for (int64_t size = 2048; size <= static_cast<int64_t>(data.size());
       size *= 2) {
    double serial_best = std::numeric_limits<double>::max();
    double parallel_best = std::numeric_limits<double>::max();
    for (int trial = 0; trial < 3; ++trial) {
      Timer timer;
      sink = sink + MixRange(data.data(), 0, size);
      serial_best = std::min(serial_best, timer.Seconds());
    }
    for (int trial = 0; trial < 3; ++trial) {
      Timer timer;
      pool.ParallelFor(size, t.morsel_rows, [&](int64_t begin, int64_t end) {
        sink = sink + MixRange(data.data(), begin, end);
      });
      parallel_best = std::min(parallel_best, timer.Seconds());
    }
    if (parallel_best < serial_best) {
      crossover = size;
      break;
    }
  }
  if (crossover < 0) {
    // The pool never won up to 128K rows: treat this host as serial-only.
    t.parallel_min_rows = std::numeric_limits<int64_t>::max();
    t.serial_fanout_row_cutoff = std::numeric_limits<int64_t>::max();
  } else {
    t.parallel_min_rows = crossover;
    t.serial_fanout_row_cutoff = crossover;
  }
  return t;
}

bool LoadTunablesCache(const std::string& path, Tunables* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char header[64] = {0};
  int hw = 0;
  Tunables t;
  long long pmr = 0, hcr = 0, mr = 0, sfc = 0;
  int parts = 0;
  const int matched = std::fscanf(
      f,
      "%63[^\n]\nhardware_threads %d\nparallel_min_rows %lld\n"
      "hash_chunk_rows %lld\nmorsel_rows %lld\n"
      "serial_fanout_row_cutoff %lld\nmax_build_partitions %d",
      header, &hw, &pmr, &hcr, &mr, &sfc, &parts);
  std::fclose(f);
  if (matched != 7 || std::string(header) != kCacheHeader ||
      hw != HardwareSignature() || pmr < 1 || hcr < 64 || mr < 64 ||
      sfc < 0 || parts < 1) {
    return false;
  }
  t.parallel_min_rows = pmr;
  t.hash_chunk_rows = hcr;
  t.morsel_rows = mr;
  t.serial_fanout_row_cutoff = sfc;
  t.max_build_partitions = parts;
  *out = t;
  return true;
}

Status SaveTunablesCache(const std::string& path, const Tunables& t) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write tunables cache " + path);
  }
  std::fprintf(
      f,
      "%s\nhardware_threads %d\nparallel_min_rows %lld\n"
      "hash_chunk_rows %lld\nmorsel_rows %lld\n"
      "serial_fanout_row_cutoff %lld\nmax_build_partitions %d\n",
      kCacheHeader, HardwareSignature(),
      static_cast<long long>(t.parallel_min_rows),
      static_cast<long long>(t.hash_chunk_rows),
      static_cast<long long>(t.morsel_rows),
      static_cast<long long>(t.serial_fanout_row_cutoff),
      t.max_build_partitions);
  std::fclose(f);
  return Status::OK();
}

Tunables AutoTuneTunables(std::string cache_path) {
  if (cache_path.empty()) {
    const char* env = std::getenv("PROBKB_TUNABLES_CACHE");
    cache_path = env != nullptr ? env : ".probkb_tunables";
  }
  Tunables t;
  if (LoadTunablesCache(cache_path, &t)) {
    PROBKB_SLOG(Engine, Info)
        << "tunables from cache " << cache_path << ": " << t.ToString();
    return t;
  }
  t = CalibrateTunables();
  if (Status st = SaveTunablesCache(cache_path, t); !st.ok()) {
    PROBKB_SLOG(Engine, Warning)
        << "calibrated tunables not cached: " << st.ToString();
  }
  PROBKB_SLOG(Engine, Info) << "calibrated tunables: " << t.ToString();
  return t;
}

}  // namespace probkb
