#ifndef PROBKB_UTIL_STATUS_H_
#define PROBKB_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace probkb {

/// \brief Error categories used across the ProbKB libraries.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  kResourceExhausted = 11,
  kDataLoss = 12,
};

/// \brief True for failures that mean "ran out of budget / asked to stop"
/// rather than "wrong answer". The expansion pipeline converts these into
/// partial results (ExpansionResult::partial) instead of propagating them.
inline bool IsBudgetFailure(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

/// \brief Returns a human-readable name for a status code ("Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Arrow/RocksDB-style status value; the library never throws.
///
/// An OK status carries no allocation. Non-OK statuses carry a code and a
/// message. Functions that can fail return Status (or Result<T> when they
/// also produce a value); callers propagate with PROBKB_RETURN_NOT_OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Propagates a non-OK Status to the caller.
#define PROBKB_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::probkb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define PROBKB_CONCAT_IMPL(a, b) a##b
#define PROBKB_CONCAT(a, b) PROBKB_CONCAT_IMPL(a, b)

}  // namespace probkb

#endif  // PROBKB_UTIL_STATUS_H_
