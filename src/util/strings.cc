#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace probkb {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

BoundedInt64 ParseBoundedInt64(std::string_view text, int64_t fallback,
                               int64_t min_value, int64_t max_value) {
  BoundedInt64 out;
  int64_t parsed = 0;
  if (!ParseInt64(StripWhitespace(text), &parsed)) {
    out.malformed = true;
    out.value = fallback;
    return out;
  }
  if (parsed < min_value) {
    out.clamped = true;
    out.value = min_value;
  } else if (parsed > max_value) {
    out.clamped = true;
    out.value = max_value;
  } else {
    out.value = parsed;
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace probkb
