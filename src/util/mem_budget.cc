#include "util/mem_budget.h"

#include <cctype>
#include <limits>

#include "util/strings.h"

namespace probkb {

int64_t MemoryBudget::AvailableBytes() const {
  const int64_t limit = limit_bytes();
  if (limit <= 0) return std::numeric_limits<int64_t>::max();
  const int64_t left = limit - pinned_bytes();
  return left > 0 ? left : 0;
}

bool MemoryBudget::WouldExceed(int64_t bytes) const {
  const int64_t limit = limit_bytes();
  if (limit <= 0) return false;
  return pinned_bytes() + bytes > limit;
}

Result<int64_t> ParseByteSize(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) {
    return Status::InvalidArgument("empty byte-size string");
  }
  int64_t multiplier = 1;
  const char last = s.back();
  switch (std::toupper(static_cast<unsigned char>(last))) {
    case 'K':
      multiplier = int64_t{1} << 10;
      s.remove_suffix(1);
      break;
    case 'M':
      multiplier = int64_t{1} << 20;
      s.remove_suffix(1);
      break;
    case 'G':
      multiplier = int64_t{1} << 30;
      s.remove_suffix(1);
      break;
    default:
      break;
  }
  int64_t value = 0;
  if (!ParseInt64(s, &value) || value < 0) {
    return Status::InvalidArgument(
        StrFormat("'%.*s' is not a byte size (expected N[K|M|G])",
                  static_cast<int>(text.size()), text.data()));
  }
  if (multiplier > 1 &&
      value > std::numeric_limits<int64_t>::max() / multiplier) {
    return Status::InvalidArgument(
        StrFormat("byte size '%.*s' overflows int64",
                  static_cast<int>(text.size()), text.data()));
  }
  return value * multiplier;
}

std::string FormatByteSize(int64_t bytes) {
  const char* unit = "B";
  double v = static_cast<double>(bytes);
  if (bytes >= (int64_t{1} << 30)) {
    unit = "GiB";
    v /= static_cast<double>(int64_t{1} << 30);
  } else if (bytes >= (int64_t{1} << 20)) {
    unit = "MiB";
    v /= static_cast<double>(int64_t{1} << 20);
  } else if (bytes >= (int64_t{1} << 10)) {
    unit = "KiB";
    v /= static_cast<double>(int64_t{1} << 10);
  } else {
    return StrFormat("%lld B", static_cast<long long>(bytes));
  }
  return StrFormat("%.1f %s", v, unit);
}

}  // namespace probkb
