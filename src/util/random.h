#ifndef PROBKB_UTIL_RANDOM_H_
#define PROBKB_UTIL_RANDOM_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace probkb {

/// \brief Deterministic xoshiro256** PRNG.
///
/// All randomized components (data generation, Gibbs sampling) take an
/// explicit Rng so runs are reproducible from a single seed. Satisfies the
/// UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  uint64_t Uniform(uint64_t bound) {
    if (bound == 0) return 0;
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-like draw in [0, n): index i has weight (i+1)^-alpha.
  /// Uses the inverse-power approximation (Gray et al.), O(1) per draw.
  uint64_t Zipf(uint64_t n, double alpha) {
    if (n <= 1) return 0;
    if (alpha <= 0.0) return Uniform(n);
    // Approximate inverse CDF of the continuous analogue.
    double u = UniformDouble();
    double one_minus = 1.0 - alpha;
    double v;
    if (std::abs(one_minus) < 1e-9) {
      v = std::pow(static_cast<double>(n), u);
    } else {
      double nn = std::pow(static_cast<double>(n), one_minus);
      v = std::pow(u * (nn - 1.0) + 1.0, 1.0 / one_minus);
    }
    uint64_t idx = static_cast<uint64_t>(v) - (v >= 1.0 ? 1 : 0);
    return idx >= n ? n - 1 : idx;
  }

  /// \brief Raw generator state, for checkpoint/resume of long-running
  /// samplers. Restoring a saved state continues the exact stream.
  std::array<uint64_t, 4> State() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void SetState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<size_t>(i)];
  }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace probkb

#endif  // PROBKB_UTIL_RANDOM_H_
