#ifndef PROBKB_UTIL_STRINGS_H_
#define PROBKB_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace probkb {

/// \brief Splits `input` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view input, char sep);

/// \brief Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// \brief Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// \brief What ParseBoundedInt64 did with the raw text.
struct BoundedInt64 {
  int64_t value = 0;
  /// Text was unparseable; `value` is the fallback.
  bool malformed = false;
  /// Parsed fine but landed outside [min, max]; `value` is the nearer
  /// bound.
  bool clamped = false;

  bool ok() const { return !malformed && !clamped; }
};

/// \brief Hardened numeric-knob parsing shared by CLI flags and env vars:
/// whitespace-tolerant, never throws, no UB on garbage. Unparseable text
/// yields `fallback`; out-of-range values clamp into [min_value,
/// max_value]. The helper never logs — callers decide how loudly to warn
/// on .malformed / .clamped.
BoundedInt64 ParseBoundedInt64(std::string_view text, int64_t fallback,
                               int64_t min_value, int64_t max_value);

/// \brief Formats with printf semantics into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace probkb

#endif  // PROBKB_UTIL_STRINGS_H_
