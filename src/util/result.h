#ifndef PROBKB_UTIL_RESULT_H_
#define PROBKB_UTIL_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace probkb {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result. Use PROBKB_ASSIGN_OR_RETURN to unwrap inside
/// functions that themselves return Status/Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call sites
  /// terse (`return value;` / `return Status::...;`), matching Arrow.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      PROBKB_LOG(Error) << "Result<T> constructed from OK status";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok(). Aborts otherwise (programming error).
  T& ValueOrDie() {
    CheckOk();
    return std::get<T>(repr_);
  }
  const T& ValueOrDie() const {
    CheckOk();
    return std::get<T>(repr_);
  }
  T MoveValueOrDie() {
    CheckOk();
    return std::move(std::get<T>(repr_));
  }

  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      PROBKB_LOG(Error) << "Result::ValueOrDie on error: "
                        << status().ToString();
      std::abort();
    }
  }
  std::variant<T, Status> repr_;
};

/// \brief Unwraps a Result<T> into `lhs`, returning the error on failure.
#define PROBKB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = tmp.MoveValueOrDie()

#define PROBKB_ASSIGN_OR_RETURN(lhs, rexpr) \
  PROBKB_ASSIGN_OR_RETURN_IMPL(             \
      PROBKB_CONCAT(_probkb_result_, __COUNTER__), lhs, rexpr)

}  // namespace probkb

#endif  // PROBKB_UTIL_RESULT_H_
