#ifndef PROBKB_UTIL_MEM_BUDGET_H_
#define PROBKB_UTIL_MEM_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/result.h"

namespace probkb {

/// \brief Tracker of transient operator memory against an explicit budget.
///
/// The budget covers the *working set* of out-of-core execution — pinned
/// spill partitions, partition write buffers — not the resident base
/// tables an operator receives as input. Operators Charge() bytes when
/// they pin pages into memory and Release() them when the pages are
/// evicted; the grace-hash join consults AvailableBytes() to decide how
/// many partitions to fan out so one partition pair fits in what remains.
///
/// Charging is advisory, not enforcing: a Charge that crosses the limit
/// records the high-water mark and lets the caller proceed (the paging
/// layer sizes its partitions so this stays within the ~1.2x slack the
/// bench gate allows). All methods are thread-safe; MPP per-segment
/// fan-out charges one shared budget concurrently.
class MemoryBudget {
 public:
  explicit MemoryBudget(int64_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// \brief Byte limit; 0 disables tracking (enabled() == false).
  void set_limit_bytes(int64_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }
  int64_t limit_bytes() const { return limit_.load(std::memory_order_relaxed); }
  bool enabled() const { return limit_bytes() > 0; }

  /// \brief Pins `bytes` of pages; updates the high-water mark.
  void Charge(int64_t bytes) {
    const int64_t now =
        pinned_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t seen = high_water_.load(std::memory_order_relaxed);
    while (now > seen &&
           !high_water_.compare_exchange_weak(seen, now,
                                              std::memory_order_relaxed)) {
    }
  }

  /// \brief Unpins `bytes` previously Charge()d.
  void Release(int64_t bytes) {
    pinned_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t pinned_bytes() const {
    return pinned_.load(std::memory_order_relaxed);
  }
  int64_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// \brief Bytes left under the limit (never negative); a disabled budget
  /// reports int64 max, so callers can size against it unconditionally.
  int64_t AvailableBytes() const;

  /// \brief Whether pinning `bytes` more would cross the limit. Always
  /// false when disabled.
  bool WouldExceed(int64_t bytes) const;

 private:
  std::atomic<int64_t> limit_;
  std::atomic<int64_t> pinned_{0};
  std::atomic<int64_t> high_water_{0};
};

/// \brief Parses a byte-size string with an optional K/M/G suffix
/// (case-insensitive, powers of 1024): "4096", "64K", "512M", "2G".
/// kInvalidArgument on garbage, a negative value, or overflow.
Result<int64_t> ParseByteSize(std::string_view text);

/// \brief Human form of a byte count for logs: "512.0 MiB", "4.0 KiB".
std::string FormatByteSize(int64_t bytes);

}  // namespace probkb

#endif  // PROBKB_UTIL_MEM_BUDGET_H_
