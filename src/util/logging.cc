#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

namespace probkb {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Registered sinks: the managed JSONL file plus any AddLogSink extras.
/// One mutex guards registration and dispatch; log statements that clear
/// the level filter are rare enough that contention is irrelevant, and
/// holding the lock across Write keeps a sink alive for the duration of
/// every record it receives.
struct SinkState {
  std::mutex mu;
  std::vector<LogSink*> sinks;
  std::ofstream json_file;
  bool json_enabled = false;
};

SinkState& Sinks() {
  static SinkState* state = new SinkState();  // leaked: outlives all threads
  return *state;
}

std::string JsonEscapeLog(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJsonLine(const LogRecord& record) {
  // Monotonic timestamp: JSONL consumers diff and order these, and a
  // wall-clock step mid-run would reorder (or negate) the intervals.
  // Clamped at zero for paranoia — steady_clock's epoch is unspecified
  // but never moves backwards within a process.
  double ts = std::chrono::duration<double>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
  if (ts < 0.0) ts = 0.0;
  std::string out = "{\"ts\": ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", ts);
  out += buf;
  out += ", \"level\": \"";
  out += LogLevelName(record.level);
  out += "\", \"subsystem\": \"";
  out += LogSubsystemName(record.subsystem);
  out += "\", \"src\": \"";
  out += record.file;
  std::snprintf(buf, sizeof(buf), ":%d", record.line);
  out += buf;
  out += "\", \"msg\": \"";
  out += JsonEscapeLog(record.message);
  out += "\"}";
  return out;
}

void Dispatch(const LogRecord& record) {
  // stderr text sink: the whole line (prefix, message, newline) leaves in
  // one fwrite, which locks the FILE, so concurrent worker-thread lines
  // cannot interleave mid-line.
  std::string line = "[";
  line += LogLevelName(record.level);
  line += " ";
  if (record.subsystem != LogSubsystem::kGeneral) {
    line += LogSubsystemName(record.subsystem);
    line += " ";
  }
  line += record.file;
  char buf[32];
  std::snprintf(buf, sizeof(buf), ":%d] ", record.line);
  line += buf;
  line += record.message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);

  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.json_enabled) {
    state.json_file << ToJsonLine(record) << '\n';
    state.json_file.flush();
  }
  for (LogSink* sink : state.sinks) sink->Write(record);
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* LogSubsystemName(LogSubsystem subsystem) {
  switch (subsystem) {
    case LogSubsystem::kGeneral:
      return "general";
    case LogSubsystem::kEngine:
      return "engine";
    case LogSubsystem::kGrounding:
      return "grounding";
    case LogSubsystem::kMpp:
      return "mpp";
    case LogSubsystem::kFault:
      return "fault";
    case LogSubsystem::kInfer:
      return "infer";
    case LogSubsystem::kObs:
      return "obs";
    case LogSubsystem::kRuntime:
      return "runtime";
    case LogSubsystem::kSpill:
      return "spill";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogLevel ResolveLogLevel(const char* requested) {
  const char* source = "--log_level";
  if (requested == nullptr || requested[0] == '\0') {
    requested = std::getenv("PROBKB_LOG_LEVEL");
    source = "PROBKB_LOG_LEVEL";
    if (requested == nullptr || requested[0] == '\0') {
      return LogLevel::kInfo;
    }
  }
  LogLevel level = LogLevel::kInfo;
  if (!ParseLogLevel(requested, &level)) {
    PROBKB_LOG(Warning) << source << " value '" << requested
                        << "' is not a log level (debug|info|warning|error"
                        << " or 0-3); using info";
    return LogLevel::kInfo;
  }
  return level;
}

void AddLogSink(LogSink* sink) {
  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sinks.push_back(sink);
}

void RemoveLogSink(LogSink* sink) {
  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto it = state.sinks.begin(); it != state.sinks.end(); ++it) {
    if (*it == sink) {
      state.sinks.erase(it);
      return;
    }
  }
}

Status EnableJsonLogSink(const std::string& path) {
  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.json_enabled) state.json_file.close();
  state.json_enabled = false;
  state.json_file.clear();
  state.json_file.open(path, std::ios::trunc);
  if (!state.json_file) {
    return Status::IOError("cannot open log file '" + path + "' for write");
  }
  state.json_enabled = true;
  return Status::OK();
}

void DisableJsonLogSink() {
  SinkState& state = Sinks();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.json_enabled) state.json_file.close();
  state.json_enabled = false;
}

Status ResolveJsonLogSink(const char* requested) {
  if (requested == nullptr || requested[0] == '\0') {
    requested = std::getenv("PROBKB_LOG");
    if (requested == nullptr || requested[0] == '\0') return Status::OK();
  }
  return EnableJsonLogSink(requested);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, LogSubsystem subsystem,
                       const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level),
      subsystem_(subsystem),
      file_(file),
      line_(line) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    file_ = base;
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  LogRecord record;
  record.level = level_;
  record.subsystem = subsystem_;
  record.file = file_;
  record.line = line_;
  record.message = stream_.str();
  Dispatch(record);
}

}  // namespace internal_logging
}  // namespace probkb
