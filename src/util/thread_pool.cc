#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace probkb {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  const int workers = num_threads_ - 1;
  queues_.resize(static_cast<size_t>(workers));
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline. Callers treat Submit as "eventually runs".
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t target = 0;
    for (size_t q = 1; q < queues_.size(); ++q) {
      if (queues_[q].size() < queues_[target].size()) target = q;
    }
    queues_[target].push_back(std::move(task));
    ++pending_tasks_;
  }
  cv_.notify_one();
}

bool ThreadPool::PopTask(int worker_index, std::function<void()>* task) {
  // Own deque back first (LIFO keeps caches warm), then steal from the
  // front of a sibling (FIFO takes the oldest, largest-granularity work).
  auto& own = queues_[static_cast<size_t>(worker_index)];
  if (!own.empty()) {
    *task = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    auto& victim =
        queues_[(static_cast<size_t>(worker_index) + offset) % queues_.size()];
    if (!victim.empty()) {
      *task = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || pending_tasks_ > 0; });
      if (!PopTask(worker_index, &task)) {
        if (shutdown_) return;
        continue;
      }
      --pending_tasks_;
    }
    task();
  }
}

struct ThreadPool::ParallelState {
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done_chunks{0};
  int64_t total_chunks = 0;
  int64_t n = 0;
  int64_t grain = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  std::mutex done_mu;
  std::condition_variable done_cv;

  /// Claims chunks until none remain; every executor (workers and the
  /// caller) runs this same loop.
  void Drain() {
    for (;;) {
      int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total_chunks) return;
      int64_t begin = chunk * grain;
      int64_t end = begin + grain < n ? begin + grain : n;
      (*fn)(begin, end);
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          total_chunks) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }
};

void ThreadPool::ParallelFor(int64_t n, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }
  auto state = std::make_shared<ParallelState>();
  state->total_chunks = (n + grain - 1) / grain;
  state->n = n;
  state->grain = grain;
  state->fn = &fn;

  // Helpers hold the state alive; `fn` outlives them because the caller
  // blocks below until every chunk is done.
  int64_t helpers = static_cast<int64_t>(workers_.size());
  if (helpers > state->total_chunks - 1) helpers = state->total_chunks - 1;
  for (int64_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] {
    return state->done_chunks.load(std::memory_order_acquire) ==
           state->total_chunks;
  });
}

int ThreadPool::ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PROBKB_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace probkb
