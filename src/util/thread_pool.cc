#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>

#include "util/logging.h"
#include "util/strings.h"

namespace probkb {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads),
      start_time_(std::chrono::steady_clock::now()) {
  const int workers = num_threads_ - 1;
  queues_.resize(static_cast<size_t>(workers));
  if (workers > 0) {
    counters_ = std::make_unique<WorkerCounters[]>(
        static_cast<size_t>(workers));
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline. Callers treat Submit as "eventually runs".
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t target = 0;
    for (size_t q = 1; q < queues_.size(); ++q) {
      if (queues_[q].size() < queues_[target].size()) target = q;
    }
    queues_[target].push_back(std::move(task));
    ++pending_tasks_;
  }
  cv_.notify_one();
}

bool ThreadPool::PopTask(int worker_index, std::function<void()>* task) {
  // Own deque back first (LIFO keeps caches warm), then steal from the
  // front of a sibling (FIFO takes the oldest, largest-granularity work).
  auto& own = queues_[static_cast<size_t>(worker_index)];
  if (!own.empty()) {
    *task = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    auto& victim =
        queues_[(static_cast<size_t>(worker_index) + offset) % queues_.size()];
    if (!victim.empty()) {
      *task = std::move(victim.front());
      victim.pop_front();
      counters_[static_cast<size_t>(worker_index)].steals.fetch_add(
          1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || pending_tasks_ > 0; });
      if (!PopTask(worker_index, &task)) {
        if (shutdown_) return;
        continue;
      }
      --pending_tasks_;
    }
    const auto run_start = std::chrono::steady_clock::now();
    task();
    WorkerCounters& c = counters_[static_cast<size_t>(worker_index)];
    c.busy_ns.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - run_start)
                            .count(),
                        std::memory_order_relaxed);
    c.tasks.fetch_add(1, std::memory_order_relaxed);
  }
}

struct ThreadPool::ParallelState {
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done_chunks{0};
  int64_t total_chunks = 0;
  int64_t n = 0;
  int64_t grain = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  std::mutex done_mu;
  std::condition_variable done_cv;

  /// Claims chunks until none remain; every executor (workers and the
  /// caller) runs this same loop.
  void Drain() {
    for (;;) {
      int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total_chunks) return;
      int64_t begin = chunk * grain;
      int64_t end = begin + grain < n ? begin + grain : n;
      (*fn)(begin, end);
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          total_chunks) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }
};

void ThreadPool::ParallelFor(int64_t n, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }
  auto state = std::make_shared<ParallelState>();
  state->total_chunks = (n + grain - 1) / grain;
  state->n = n;
  state->grain = grain;
  state->fn = &fn;

  // Helpers hold the state alive; `fn` outlives them because the caller
  // blocks below until every chunk is done.
  int64_t helpers = static_cast<int64_t>(workers_.size());
  if (helpers > state->total_chunks - 1) helpers = state->total_chunks - 1;
  for (int64_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] {
    return state->done_chunks.load(std::memory_order_acquire) ==
           state->total_chunks;
  });
}

std::vector<PoolWorkerStats> ThreadPool::WorkerStats() const {
  std::vector<PoolWorkerStats> out;
  const double lifetime =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start_time_)
          .count();
  out.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    const WorkerCounters& c = counters_[i];
    PoolWorkerStats s;
    s.worker = static_cast<int>(i);
    s.tasks_run = c.tasks.load(std::memory_order_relaxed);
    s.steals = c.steals.load(std::memory_order_relaxed);
    s.busy_seconds =
        static_cast<double>(c.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    s.idle_seconds = lifetime - s.busy_seconds;
    if (s.idle_seconds < 0) s.idle_seconds = 0;
    out.push_back(s);
  }
  return out;
}

int ThreadPool::ResolveThreads(int requested) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware = hw > 0 ? static_cast<int>(hw) : 1;
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PROBKB_THREADS")) {
    // The env var reaches us unvalidated from the shell; require a plain
    // base-10 integer in [1, kMaxEnvThreads] instead of trusting whatever
    // atoi makes of it ("8x" used to read as 8, "abc" as 0 == auto).
    int64_t v = 0;
    if (!ParseInt64(StripWhitespace(env), &v) || v < 1) {
      PROBKB_LOG(Warning)
          << "ignoring PROBKB_THREADS='" << env
          << "' (expected an integer in [1, " << kMaxEnvThreads
          << "]); using " << hardware << " threads";
      return hardware;
    }
    if (v > kMaxEnvThreads) {
      PROBKB_LOG(Warning) << "clamping PROBKB_THREADS=" << v << " to "
                          << kMaxEnvThreads;
      return kMaxEnvThreads;
    }
    return static_cast<int>(v);
  }
  return hardware;
}

}  // namespace probkb
