#ifndef PROBKB_UTIL_LOGGING_H_
#define PROBKB_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "util/status.h"

namespace probkb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Subsystem tag carried by every structured log record, so sinks
/// (and humans grepping a JSONL file) can slice a run's log by layer.
enum class LogSubsystem : int {
  kGeneral = 0,
  kEngine,
  kGrounding,
  kMpp,
  kFault,
  kInfer,
  kObs,
  kRuntime,
  kSpill,
};

const char* LogLevelName(LogLevel level);
const char* LogSubsystemName(LogSubsystem subsystem);

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Parses "debug" / "info" / "warning" (or "warn") / "error",
/// case-insensitively, or a numeric level 0-3. False on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// \brief Resolves a log-level request: `requested` (a CLI value; may be
/// nullptr) wins, else the PROBKB_LOG_LEVEL environment variable, else
/// Info. A value that does not parse is rejected with a warning and falls
/// back to Info, mirroring ThreadPool::ResolveThreads.
LogLevel ResolveLogLevel(const char* requested);

/// \brief One emitted log statement, as handed to every sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  LogSubsystem subsystem = LogSubsystem::kGeneral;
  const char* file = "";  // basename only
  int line = 0;
  std::string message;
};

/// \brief Pluggable log destination. The built-in stderr text sink and the
/// managed JSONL file sink are always consulted; AddLogSink registers
/// additional ones (tests capture records this way).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// \brief Registers / removes an extra sink (not owned). Thread-safe.
void AddLogSink(LogSink* sink);
void RemoveLogSink(LogSink* sink);

/// \brief Opens `path` (truncating) as a JSONL sink: every emitted record
/// becomes one JSON object per line. Replaces any previously enabled file.
Status EnableJsonLogSink(const std::string& path);
void DisableJsonLogSink();

/// \brief Resolves the JSONL sink request: `requested` (a CLI --log_json
/// value; may be nullptr) wins, else the PROBKB_LOG environment variable,
/// else no file sink. OK when neither is set.
Status ResolveJsonLogSink(const char* requested);

namespace internal_logging {

/// \brief One log statement; flushes the accumulated line on destruction.
///
/// Emission is a single fwrite of the fully formatted line (stdio locks the
/// stream per call), so lines logged concurrently from worker threads never
/// interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, LogSubsystem subsystem, const char* file,
             int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  LogSubsystem subsystem_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define PROBKB_LOG(level)                                              \
  ::probkb::internal_logging::LogMessage(::probkb::LogLevel::k##level, \
                                         ::probkb::LogSubsystem::kGeneral, \
                                         __FILE__, __LINE__)

/// \brief Subsystem-tagged log statement:
/// PROBKB_SLOG(Fault, Warning) << "...";
#define PROBKB_SLOG(subsystem, level)                                  \
  ::probkb::internal_logging::LogMessage(                              \
      ::probkb::LogLevel::k##level,                                    \
      ::probkb::LogSubsystem::k##subsystem, __FILE__, __LINE__)

/// \brief Fatal invariant check (always on); prints and aborts on failure.
#define PROBKB_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__    \
                << ": " #cond << std::endl;                             \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

/// \brief Debug-only invariant check: fatal like PROBKB_CHECK in debug
/// builds, compiled to nothing under NDEBUG so release hot paths pay no
/// cost (the condition is not evaluated).
#ifdef NDEBUG
#define PROBKB_DCHECK(cond) \
  do {                      \
  } while (false && (cond))
#else
#define PROBKB_DCHECK(cond) PROBKB_CHECK(cond)
#endif

}  // namespace probkb

#endif  // PROBKB_UTIL_LOGGING_H_
