#ifndef PROBKB_UTIL_LOGGING_H_
#define PROBKB_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace probkb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// \brief One log statement; flushes the accumulated line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define PROBKB_LOG(level)                                              \
  ::probkb::internal_logging::LogMessage(::probkb::LogLevel::k##level, \
                                         __FILE__, __LINE__)

/// \brief Fatal invariant check (always on); prints and aborts on failure.
#define PROBKB_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__    \
                << ": " #cond << std::endl;                             \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#define PROBKB_DCHECK(cond) PROBKB_CHECK(cond)

}  // namespace probkb

#endif  // PROBKB_UTIL_LOGGING_H_
