#ifndef PROBKB_UTIL_TIMER_H_
#define PROBKB_UTIL_TIMER_H_

#include <chrono>

namespace probkb {

/// \brief Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace probkb

#endif  // PROBKB_UTIL_TIMER_H_
