#ifndef PROBKB_UTIL_TIMER_H_
#define PROBKB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace probkb {

namespace timer_internal {
/// Test-only clock skew, applied to this thread's Timer reads (see
/// Timer::SetSkewForTest).
inline thread_local int64_t skew_us_for_test = 0;
}  // namespace timer_internal

/// \brief Monotonic stopwatch used by every timing site in the engine.
///
/// Deliberately steady_clock, never system_clock / gettimeofday: interval
/// measurements must not jump when NTP steps or an operator resets the
/// wall clock. As defense in depth Seconds() clamps a negative delta to
/// zero — a stopwatch can legitimately read "no time passed", never
/// "negative time passed" (which would poison histogram buckets and
/// throughput division downstream).
class Timer {
 public:
  Timer() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  /// Seconds elapsed since construction or the last Reset(), clamped to
  /// >= 0.
  double Seconds() const {
    const double s =
        std::chrono::duration<double>(Now() - start_).count();
    return s < 0.0 ? 0.0 : s;
  }

  double Millis() const { return Seconds() * 1e3; }

  /// \brief Test hook: skews this thread's observed clock by `us`
  /// microseconds (negative simulates a backwards step, which a correct
  /// monotonic source can never produce). Zero restores the real clock.
  /// Thread-local so concurrent tests cannot interfere.
  static void SetSkewForTest(int64_t us) {
    timer_internal::skew_us_for_test = us;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static Clock::time_point Now() {
    return Clock::now() +
           std::chrono::microseconds(timer_internal::skew_us_for_test);
  }

  Clock::time_point start_;
};

}  // namespace probkb

#endif  // PROBKB_UTIL_TIMER_H_
