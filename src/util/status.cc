#include "util/status.h"

namespace probkb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace probkb
