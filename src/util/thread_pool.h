#ifndef PROBKB_UTIL_THREAD_POOL_H_
#define PROBKB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace probkb {

/// \brief Lifetime counters of one pool worker, snapshotted by
/// ThreadPool::WorkerStats(). `idle_seconds` is pool lifetime minus busy
/// time at snapshot.
struct PoolWorkerStats {
  int worker = 0;
  int64_t tasks_run = 0;
  int64_t steals = 0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
};

/// \brief Work-stealing thread pool behind the engine's parallel operators.
///
/// A pool of size N owns N-1 worker threads; the calling thread is the N-th
/// executor, so `ThreadPool(1)` spawns nothing and every ParallelFor runs
/// inline on the caller — the exact serial path. Each worker drains its own
/// deque LIFO and steals FIFO from siblings when empty.
///
/// Tasks must not throw: the engine reports failures through Status values
/// collected per task, never through exceptions crossing the pool boundary.
/// ParallelFor is safe to call from inside a pool task (the caller always
/// participates in draining its own chunks, so a saturated pool degrades to
/// inline execution instead of deadlocking).
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; `num_threads` is clamped to >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors: workers plus the calling thread.
  int num_threads() const { return num_threads_; }

  /// \brief Enqueues one task onto the least-loaded deque. Fire-and-forget;
  /// completion is the caller's business (ParallelFor tracks its own).
  void Submit(std::function<void()> task);

  /// \brief Runs `fn(begin, end)` over disjoint chunks covering [0, n),
  /// each at most `grain` long, on the workers *and* the calling thread.
  /// Blocks until every chunk finished. Chunk boundaries are deterministic
  /// (0..grain, grain..2*grain, ...); which thread runs a chunk is not, so
  /// `fn` must write only to per-chunk state (e.g. slot `begin / grain` of
  /// a results vector) for deterministic output.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// \brief Resolves a thread-count request: `requested > 0` wins, else the
  /// PROBKB_THREADS environment variable, else hardware_concurrency.
  /// Always >= 1. A PROBKB_THREADS value that is not a plain positive
  /// integer is rejected with a warning (falling back to the hardware
  /// count), and values above kMaxEnvThreads are clamped to it.
  static int ResolveThreads(int requested);

  /// Upper bound honoured for PROBKB_THREADS; absurd values clamp here.
  static constexpr int kMaxEnvThreads = 256;

  /// \brief Snapshot of the per-worker profiling counters: tasks run,
  /// steals, busy and idle seconds per worker (the calling thread is not a
  /// worker and is not listed). Counters are per-worker atomics bumped
  /// only by the owning worker, so snapshotting is safe at any time and
  /// costs the hot path two relaxed atomic adds per *task* (never per
  /// row).
  std::vector<PoolWorkerStats> WorkerStats() const;

 private:
  struct ParallelState;

  /// Per-worker profiling slots; each worker writes only its own (relaxed
  /// ordering is enough — readers only want eventually-consistent totals).
  struct WorkerCounters {
    std::atomic<int64_t> tasks{0};
    std::atomic<int64_t> steals{0};
    std::atomic<int64_t> busy_ns{0};
  };

  void WorkerLoop(int worker_index);
  /// Pops from own deque (LIFO) or steals from a sibling (FIFO).
  bool PopTask(int worker_index, std::function<void()>* task);

  int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  int64_t pending_tasks_ = 0;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::unique_ptr<WorkerCounters[]> counters_;
  std::chrono::steady_clock::time_point start_time_;
  std::vector<std::thread> workers_;
};

}  // namespace probkb

#endif  // PROBKB_UTIL_THREAD_POOL_H_
