#ifndef PROBKB_UTIL_THREAD_POOL_H_
#define PROBKB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace probkb {

/// \brief Work-stealing thread pool behind the engine's parallel operators.
///
/// A pool of size N owns N-1 worker threads; the calling thread is the N-th
/// executor, so `ThreadPool(1)` spawns nothing and every ParallelFor runs
/// inline on the caller — the exact serial path. Each worker drains its own
/// deque LIFO and steals FIFO from siblings when empty.
///
/// Tasks must not throw: the engine reports failures through Status values
/// collected per task, never through exceptions crossing the pool boundary.
/// ParallelFor is safe to call from inside a pool task (the caller always
/// participates in draining its own chunks, so a saturated pool degrades to
/// inline execution instead of deadlocking).
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; `num_threads` is clamped to >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors: workers plus the calling thread.
  int num_threads() const { return num_threads_; }

  /// \brief Enqueues one task onto the least-loaded deque. Fire-and-forget;
  /// completion is the caller's business (ParallelFor tracks its own).
  void Submit(std::function<void()> task);

  /// \brief Runs `fn(begin, end)` over disjoint chunks covering [0, n),
  /// each at most `grain` long, on the workers *and* the calling thread.
  /// Blocks until every chunk finished. Chunk boundaries are deterministic
  /// (0..grain, grain..2*grain, ...); which thread runs a chunk is not, so
  /// `fn` must write only to per-chunk state (e.g. slot `begin / grain` of
  /// a results vector) for deterministic output.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// \brief Resolves a thread-count request: `requested > 0` wins, else the
  /// PROBKB_THREADS environment variable, else hardware_concurrency.
  /// Always >= 1.
  static int ResolveThreads(int requested);

 private:
  struct ParallelState;

  void WorkerLoop(int worker_index);
  /// Pops from own deque (LIFO) or steals from a sibling (FIFO).
  bool PopTask(int worker_index, std::function<void()>* task);

  int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  int64_t pending_tasks_ = 0;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
};

}  // namespace probkb

#endif  // PROBKB_UTIL_THREAD_POOL_H_
