#ifndef PROBKB_KB_RULE_H_
#define PROBKB_KB_RULE_H_

#include <string>
#include <vector>

#include "kb/ids.h"
#include "util/result.h"

namespace probkb {

/// \brief The six structural equivalence classes of Sherlock's first-order
/// Horn clauses (paper Section 4.2.2):
///
///   M1: p(x,y) <- q(x,y)
///   M2: p(x,y) <- q(y,x)
///   M3: p(x,y) <- q(z,x), r(z,y)
///   M4: p(x,y) <- q(x,z), r(z,y)
///   M5: p(x,y) <- q(z,x), r(y,z)
///   M6: p(x,y) <- q(x,z), r(y,z)
enum class RuleStructure : int {
  kM1 = 1,
  kM2 = 2,
  kM3 = 3,
  kM4 = 4,
  kM5 = 5,
  kM6 = 6,
};

inline constexpr int kNumRuleStructures = 6;

const char* RuleStructureToString(RuleStructure s);

/// \brief A typed Horn rule in canonical (partitioned) form: its structure
/// plus the identifier tuple of relation and class symbols (Definition 6).
///
/// For length-2 structures (M1, M2) body2 and c3 are kInvalidId.
struct HornRule {
  RuleStructure structure = RuleStructure::kM1;
  RelationId head = kInvalidId;   // p
  RelationId body1 = kInvalidId;  // q
  RelationId body2 = kInvalidId;  // r (M3..M6 only)
  ClassId c1 = kInvalidId;        // class of x
  ClassId c2 = kInvalidId;        // class of y
  ClassId c3 = kInvalidId;        // class of z (M3..M6 only)
  double weight = 0.0;
  /// Statistical-significance score assigned by the rule learner
  /// (Sherlock's conditional-probability score); rule cleaning ranks by
  /// it (Section 5.3). Defaults to the weight when the learner provides no
  /// separate score.
  double score = 0.0;

  int body_length() const {
    return structure == RuleStructure::kM1 || structure == RuleStructure::kM2
               ? 1
               : 2;
  }

  friend bool operator==(const HornRule& a, const HornRule& b) {
    return a.structure == b.structure && a.head == b.head &&
           a.body1 == b.body1 && a.body2 == b.body2 && a.c1 == b.c1 &&
           a.c2 == b.c2 && a.c3 == b.c3;
  }
};

/// \brief One atom of a generic first-order clause. Variables are numbered
/// 0, 1, 2, ... within the clause.
struct Atom {
  RelationId relation = kInvalidId;
  int var1 = 0;
  int var2 = 0;
};

/// \brief A generic Horn clause with at most two body atoms, before
/// structural partitioning: head(v_a, v_b) <- body... with per-variable
/// class annotations.
struct Clause {
  Atom head;
  std::vector<Atom> body;
  std::vector<ClassId> var_classes;  // indexed by variable number
  double weight = 0.0;
};

/// \brief Structural partitioning (Definitions 5-6): canonicalizes the
/// clause's variables (head = p(x, y), remaining variable = z) and matches
/// the body against the six Sherlock patterns. Fails for clauses outside
/// the six classes (head variables not distinct, unbound body variables,
/// body length > 2, ...).
Result<HornRule> PartitionClause(const Clause& clause);

/// \brief Inverse of PartitionClause: expands a canonical rule back into a
/// generic clause with variables x=0, y=1, z=2. Used by tests (round-trip
/// property) and by the Tuffy-T baseline, which consumes one clause per
/// rule.
Clause RuleToClause(const HornRule& rule);

}  // namespace probkb

#endif  // PROBKB_KB_RULE_H_
