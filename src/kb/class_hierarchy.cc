#include "kb/class_hierarchy.h"

#include <algorithm>
#include <map>
#include <set>

namespace probkb {

namespace {

std::map<ClassId, std::set<EntityId>> MembersByClass(
    const KnowledgeBase& kb) {
  std::map<ClassId, std::set<EntityId>> members;
  for (const ClassMember& m : kb.class_members()) {
    members[m.cls].insert(m.entity);
  }
  return members;
}

}  // namespace

std::vector<SubclassEdge> ComputeClassHierarchy(const KnowledgeBase& kb) {
  auto members = MembersByClass(kb);
  std::vector<SubclassEdge> edges;
  for (const auto& [sub, sub_members] : members) {
    if (sub_members.empty()) continue;
    for (const auto& [super, super_members] : members) {
      if (sub == super) continue;
      if (sub_members.size() > super_members.size()) continue;
      if (std::includes(super_members.begin(), super_members.end(),
                        sub_members.begin(), sub_members.end())) {
        edges.push_back({sub, super});
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const SubclassEdge& a, const SubclassEdge& b) {
              return std::tie(a.subclass, a.superclass) <
                     std::tie(b.subclass, b.superclass);
            });
  return edges;
}

bool IsSubclassOf(const KnowledgeBase& kb, ClassId sub, ClassId super) {
  auto members = MembersByClass(kb);
  auto sub_it = members.find(sub);
  auto super_it = members.find(super);
  if (sub_it == members.end() || super_it == members.end()) return false;
  if (sub_it->second.empty()) return false;
  return std::includes(super_it->second.begin(), super_it->second.end(),
                       sub_it->second.begin(), sub_it->second.end());
}

}  // namespace probkb
