#ifndef PROBKB_KB_IDS_H_
#define PROBKB_KB_IDS_H_

#include <cstdint>

namespace probkb {

/// Dictionary-encoded identifiers (Section 4.2's DX tables). -1 means
/// "absent" (e.g. no third body class for length-2 rules).
using EntityId = int64_t;
using ClassId = int64_t;
using RelationId = int64_t;
using FactId = int64_t;

inline constexpr int64_t kInvalidId = -1;

}  // namespace probkb

#endif  // PROBKB_KB_IDS_H_
