#ifndef PROBKB_KB_KNOWLEDGE_BASE_H_
#define PROBKB_KB_KNOWLEDGE_BASE_H_

#include <cmath>
#include <string>
#include <vector>

#include "kb/dictionary.h"
#include "kb/ids.h"
#include "kb/rule.h"
#include "util/result.h"

namespace probkb {

/// \brief A weighted, typed relationship (element of Pi, Definition 1.4).
///
/// `weight` is NaN for atoms whose weight is yet to be inferred (the SQL
/// model stores NULL there during grounding).
struct Fact {
  RelationId relation = kInvalidId;
  EntityId x = kInvalidId;
  ClassId c1 = kInvalidId;
  EntityId y = kInvalidId;
  ClassId c2 = kInvalidId;
  double weight = 0.0;

  bool has_weight() const { return !std::isnan(weight); }
};

/// \brief Functionality type of Definition 9: Type I fixes x and bounds the
/// number of distinct co-occurring (y, C2); Type II is the converse.
enum class FunctionalityType : int { kTypeI = 1, kTypeII = 2 };

/// \brief A (pseudo-)functional constraint: tuple (R, alpha, delta) of
/// Definition 11. `degree` is 1 for strictly functional relations and
/// delta > 1 for pseudo-functional ones (a person lives in at most delta
/// countries). Class components are omitted: as the paper notes, the
/// functionality of these relations holds for all associating class pairs.
struct FunctionalConstraint {
  RelationId relation = kInvalidId;
  FunctionalityType type = FunctionalityType::kTypeI;
  int64_t degree = 1;
};

/// \brief A relation signature R(C_i, C_j) (element of the R component).
struct RelationSignature {
  RelationId relation = kInvalidId;
  ClassId domain = kInvalidId;
  ClassId range = kInvalidId;
};

/// \brief Class membership tuple (C, e) (the TC table, Definition 2).
struct ClassMember {
  ClassId cls = kInvalidId;
  EntityId entity = kInvalidId;
};

/// \brief The probabilistic knowledge base Gamma = (E, C, R, Pi, H, Omega)
/// of Definition 1, in dictionary-encoded form.
class KnowledgeBase {
 public:
  Dictionary& entities() { return entities_; }
  const Dictionary& entities() const { return entities_; }
  Dictionary& classes() { return classes_; }
  const Dictionary& classes() const { return classes_; }
  Dictionary& relations() { return relations_; }
  const Dictionary& relations() const { return relations_; }

  void AddFact(Fact fact) { facts_.push_back(fact); }
  void AddRule(HornRule rule) { rules_.push_back(rule); }
  void AddConstraint(FunctionalConstraint c) { constraints_.push_back(c); }
  void AddSignature(RelationSignature s) { signatures_.push_back(s); }
  void AddClassMember(ClassMember m) { class_members_.push_back(m); }

  const std::vector<Fact>& facts() const { return facts_; }
  std::vector<Fact>* mutable_facts() { return &facts_; }
  const std::vector<HornRule>& rules() const { return rules_; }
  std::vector<HornRule>* mutable_rules() { return &rules_; }
  const std::vector<FunctionalConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<RelationSignature>& signatures() const {
    return signatures_;
  }
  const std::vector<ClassMember>& class_members() const {
    return class_members_;
  }

  /// \brief Convenience string-based insertion used by examples and tests;
  /// interns all symbols. `weight` NaN marks an unweighted atom.
  void AddFactByName(const std::string& relation, const std::string& x,
                     const std::string& c1, const std::string& y,
                     const std::string& c2, double weight);

  /// \brief Human-readable rendering of fact `i` ("born_in(Ruth, NYC)").
  std::string FactToString(const Fact& fact) const;
  std::string RuleToString(const HornRule& rule) const;

  /// \brief Sanity checks: ids in range, rule classes known, weights finite
  /// where required.
  Status Validate() const;

  /// \brief Table 2-style statistics line.
  std::string StatsString() const;

 private:
  Dictionary entities_;
  Dictionary classes_;
  Dictionary relations_;
  std::vector<Fact> facts_;
  std::vector<HornRule> rules_;
  std::vector<FunctionalConstraint> constraints_;
  std::vector<RelationSignature> signatures_;
  std::vector<ClassMember> class_members_;
};

}  // namespace probkb

#endif  // PROBKB_KB_KNOWLEDGE_BASE_H_
