#include "kb/kb_query.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace probkb {

std::string QueryPattern::ToString() const {
  if (is_entity_query()) return entity;
  return relation + "(" + (x.has_value() ? *x : std::string("*")) + ", " +
         (y.has_value() ? *y : std::string("*")) + ")";
}

namespace {

/// `*` and `?` both mean "any"; everything else is a name to resolve.
std::optional<std::string> ParseArgToken(std::string_view token) {
  if (token == "*" || token == "?") return std::nullopt;
  return std::string(token);
}

}  // namespace

Result<QueryPattern> ParseQueryPattern(std::string_view text) {
  std::string trimmed(StripWhitespace(text));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty query");
  }
  QueryPattern pattern;
  const size_t open = trimmed.find('(');
  if (open == std::string::npos) {
    if (trimmed.find(')') != std::string::npos ||
        trimmed.find(',') != std::string::npos) {
      return Status::InvalidArgument("malformed query '" + trimmed +
                                     "': expected rel(x, y) or an entity");
    }
    pattern.entity = trimmed;
    return pattern;
  }
  if (trimmed.back() != ')') {
    return Status::InvalidArgument("malformed query '" + trimmed +
                                   "': missing ')'");
  }
  pattern.relation = StripWhitespace(trimmed.substr(0, open));
  if (pattern.relation.empty()) {
    return Status::InvalidArgument("malformed query '" + trimmed +
                                   "': empty relation name");
  }
  std::string args = trimmed.substr(open + 1, trimmed.size() - open - 2);
  std::vector<std::string_view> parts = Split(args, ',');
  if (parts.size() != 2) {
    return Status::InvalidArgument("malformed query '" + trimmed +
                                   "': expected exactly two arguments");
  }
  std::string_view x = StripWhitespace(parts[0]);
  std::string_view y = StripWhitespace(parts[1]);
  if (x.empty() || y.empty()) {
    return Status::InvalidArgument("malformed query '" + trimmed +
                                   "': empty argument");
  }
  pattern.x = ParseArgToken(x);
  pattern.y = ParseArgToken(y);
  return pattern;
}

KbQuery::KbQuery(const KnowledgeBase* kb, TablePtr t_pi,
                 FactId first_inferred_id)
    : kb_(kb), t_pi_(std::move(t_pi)), first_inferred_id_(first_inferred_id) {
  for (int64_t i = 0; i < t_pi_->NumRows(); ++i) {
    RowView row = t_pi_->row(i);
    by_relation_[row[tpi::kR].i64()].push_back(i);
    by_entity_[row[tpi::kX].i64()].push_back(i);
    if (row[tpi::kY].i64() != row[tpi::kX].i64()) {
      by_entity_[row[tpi::kY].i64()].push_back(i);
    }
  }
}

KbQuery::ScoredFact KbQuery::MakeScored(const RowView& row) const {
  ScoredFact out;
  out.fact = FactFromRow(row);
  out.inferred = first_inferred_id_ >= 0
                     ? row[tpi::kI].i64() >= first_inferred_id_
                     : row[tpi::kW].is_null();
  out.score = row[tpi::kW].is_null() ? std::nan("") : row[tpi::kW].f64();
  return out;
}

void KbQuery::CollectSorted(
    const std::vector<int64_t>& rows, double min_score,
    const std::function<bool(const RowView&)>& filter,
    std::vector<ScoredFact>* out) const {
  for (int64_t i : rows) {
    RowView row = t_pi_->row(i);
    if (filter != nullptr && !filter(row)) continue;
    ScoredFact scored = MakeScored(row);
    if (!std::isnan(scored.score) && scored.score < min_score) continue;
    if (std::isnan(scored.score) && min_score > 0) continue;
    out->push_back(std::move(scored));
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const ScoredFact& a, const ScoredFact& b) {
                     double sa = std::isnan(a.score) ? -1e300 : a.score;
                     double sb = std::isnan(b.score) ? -1e300 : b.score;
                     return sa > sb;
                   });
}

std::vector<KbQuery::ScoredFact> KbQuery::Find(
    std::string_view relation, std::optional<std::string_view> x,
    std::optional<std::string_view> y, double min_score) const {
  std::vector<ScoredFact> out;
  RelationId rel = kb_->relations().Lookup(relation);
  if (rel == kInvalidId) return out;
  EntityId want_x = kInvalidId, want_y = kInvalidId;
  if (x.has_value()) {
    want_x = kb_->entities().Lookup(*x);
    if (want_x == kInvalidId) return out;
  }
  if (y.has_value()) {
    want_y = kb_->entities().Lookup(*y);
    if (want_y == kInvalidId) return out;
  }
  auto it = by_relation_.find(rel);
  if (it == by_relation_.end()) return out;
  CollectSorted(it->second, min_score,
                [&](const RowView& row) {
                  if (want_x != kInvalidId && row[tpi::kX].i64() != want_x) {
                    return false;
                  }
                  if (want_y != kInvalidId && row[tpi::kY].i64() != want_y) {
                    return false;
                  }
                  return true;
                },
                &out);
  return out;
}

std::vector<KbQuery::ScoredFact> KbQuery::FactsAbout(
    std::string_view entity, double min_score) const {
  std::vector<ScoredFact> out;
  EntityId e = kb_->entities().Lookup(entity);
  if (e == kInvalidId) return out;
  auto it = by_entity_.find(e);
  if (it == by_entity_.end()) return out;
  CollectSorted(it->second, min_score, nullptr, &out);
  return out;
}

std::vector<int64_t> KbQuery::SeedRows(const QueryPattern& pattern) const {
  std::vector<int64_t> out;
  if (pattern.is_entity_query()) {
    EntityId e = kb_->entities().Lookup(pattern.entity);
    if (e == kInvalidId) return out;
    auto it = by_entity_.find(e);
    if (it == by_entity_.end()) return out;
    out = it->second;  // built in ascending row order
    return out;
  }
  RelationId rel = kb_->relations().Lookup(pattern.relation);
  if (rel == kInvalidId) return out;
  EntityId want_x = kInvalidId, want_y = kInvalidId;
  if (pattern.x.has_value()) {
    want_x = kb_->entities().Lookup(*pattern.x);
    if (want_x == kInvalidId) return out;
  }
  if (pattern.y.has_value()) {
    want_y = kb_->entities().Lookup(*pattern.y);
    if (want_y == kInvalidId) return out;
  }
  auto it = by_relation_.find(rel);
  if (it == by_relation_.end()) return out;
  for (int64_t i : it->second) {
    RowView row = t_pi_->row(i);
    if (want_x != kInvalidId && row[tpi::kX].i64() != want_x) continue;
    if (want_y != kInvalidId && row[tpi::kY].i64() != want_y) continue;
    out.push_back(i);
  }
  return out;
}

std::string KbQuery::ToString(const ScoredFact& fact) const {
  std::string score = std::isnan(fact.score)
                          ? std::string("  ?  ")
                          : StrFormat("%.3f", fact.score);
  return score + " " + kb_->FactToString(fact.fact) +
         (fact.inferred ? " [inferred]" : "");
}

}  // namespace probkb
