#ifndef PROBKB_KB_DICTIONARY_H_
#define PROBKB_KB_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/ids.h"
#include "util/result.h"

namespace probkb {

/// \brief Bidirectional string <-> int64 id map.
///
/// One Dictionary each for entities, classes, and relations (the paper's
/// D_E, D_C, D_R), so that all joins and selections compare integers, never
/// strings.
class Dictionary {
 public:
  /// \brief Returns the id of `name`, interning it if new.
  int64_t GetOrAdd(std::string_view name);

  /// \brief Returns the id of `name` or kInvalidId if absent.
  int64_t Lookup(std::string_view name) const;

  /// \brief Returns the name for `id`; error if out of range.
  Result<std::string> GetName(int64_t id) const;

  /// \brief Like GetName but returns "#<id>" instead of failing.
  std::string NameOrPlaceholder(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(names_.size()); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int64_t> ids_;
};

}  // namespace probkb

#endif  // PROBKB_KB_DICTIONARY_H_
