#ifndef PROBKB_KB_RELATIONAL_MODEL_H_
#define PROBKB_KB_RELATIONAL_MODEL_H_

#include <array>
#include <vector>

#include "kb/knowledge_base.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// Column positions of the facts table TPi (Definition 4):
/// (I, R, x, C1, y, C2, w).
namespace tpi {
inline constexpr int kI = 0;
inline constexpr int kR = 1;
inline constexpr int kX = 2;
inline constexpr int kC1 = 3;
inline constexpr int kY = 4;
inline constexpr int kC2 = 5;
inline constexpr int kW = 6;
inline constexpr int kWidth = 7;
}  // namespace tpi

/// Column positions of the length-2 MLN tables M1, M2:
/// (R1, R2, C1, C2, w).
namespace mlen2 {
inline constexpr int kR1 = 0;
inline constexpr int kR2 = 1;
inline constexpr int kC1 = 2;
inline constexpr int kC2 = 3;
inline constexpr int kW = 4;
}  // namespace mlen2

/// Column positions of the length-3 MLN tables M3..M6:
/// (R1, R2, R3, C1, C2, C3, w).
namespace mlen3 {
inline constexpr int kR1 = 0;
inline constexpr int kR2 = 1;
inline constexpr int kR3 = 2;
inline constexpr int kC1 = 3;
inline constexpr int kC2 = 4;
inline constexpr int kC3 = 5;
inline constexpr int kW = 6;
}  // namespace mlen3

/// Column positions of the constraints table TOmega (Definition 11):
/// (R, arg, deg).
namespace tomega {
inline constexpr int kR = 0;
inline constexpr int kArg = 1;
inline constexpr int kDeg = 2;
}  // namespace tomega

/// Column positions of the factors table TPhi (Definition 7):
/// (I1, I2, I3, w). I2/I3 are NULL for factors of size 1 or 2.
namespace tphi {
inline constexpr int kI1 = 0;
inline constexpr int kI2 = 1;
inline constexpr int kI3 = 2;
inline constexpr int kW = 3;
}  // namespace tphi

Schema TPiSchema();
Schema MLen2Schema();
Schema MLen3Schema();
Schema TOmegaSchema();
Schema TPhiSchema();
Schema TCSchema();  // (C, e), Definition 2
Schema TRSchema();  // (R, C1, C2), Definition 3

/// \brief The relational encoding of a probabilistic KB (Section 4.2): one
/// facts table, six MLN partition tables, one constraint table, plus the
/// class-membership and relation-signature tables.
struct RelationalKB {
  TablePtr t_pi;
  std::array<TablePtr, kNumRuleStructures> m;  // m[0] = M1, ..., m[5] = M6
  TablePtr t_omega;
  TablePtr t_c;
  TablePtr t_r;
  /// First unused fact id; the grounder assigns ids from here.
  FactId next_fact_id = 0;
};

/// \brief Encodes `kb` into relational form. Facts receive ids 0..n-1 in
/// order; rules are routed to their partition table by structure.
RelationalKB BuildRelationalModel(const KnowledgeBase& kb);

/// \brief Decodes one TPi row into a Fact.
Fact FactFromRow(const RowView& row);

/// \brief Appends `fact` to a TPi table under id `id`.
void AppendFactRow(Table* t_pi, FactId id, const Fact& fact);

}  // namespace probkb

#endif  // PROBKB_KB_RELATIONAL_MODEL_H_
