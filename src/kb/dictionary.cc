#include "kb/dictionary.h"

#include "util/strings.h"

namespace probkb {

int64_t Dictionary::GetOrAdd(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int64_t id = static_cast<int64_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int64_t Dictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidId : it->second;
}

Result<std::string> Dictionary::GetName(int64_t id) const {
  if (id < 0 || id >= size()) {
    return Status::OutOfRange(StrFormat("dictionary id %lld out of range",
                                        static_cast<long long>(id)));
  }
  return names_[static_cast<size_t>(id)];
}

std::string Dictionary::NameOrPlaceholder(int64_t id) const {
  if (id < 0 || id >= size()) {
    return "#" + std::to_string(id);
  }
  return names_[static_cast<size_t>(id)];
}

}  // namespace probkb
