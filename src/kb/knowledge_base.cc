#include "kb/knowledge_base.h"

#include "util/strings.h"

namespace probkb {

void KnowledgeBase::AddFactByName(const std::string& relation,
                                  const std::string& x, const std::string& c1,
                                  const std::string& y, const std::string& c2,
                                  double weight) {
  Fact fact;
  fact.relation = relations_.GetOrAdd(relation);
  fact.x = entities_.GetOrAdd(x);
  fact.c1 = classes_.GetOrAdd(c1);
  fact.y = entities_.GetOrAdd(y);
  fact.c2 = classes_.GetOrAdd(c2);
  fact.weight = weight;
  AddFact(fact);
}

std::string KnowledgeBase::FactToString(const Fact& fact) const {
  std::string out = relations_.NameOrPlaceholder(fact.relation);
  out += "(";
  out += entities_.NameOrPlaceholder(fact.x);
  out += ":";
  out += classes_.NameOrPlaceholder(fact.c1);
  out += ", ";
  out += entities_.NameOrPlaceholder(fact.y);
  out += ":";
  out += classes_.NameOrPlaceholder(fact.c2);
  out += ")";
  if (fact.has_weight()) out += StrFormat(" w=%.2f", fact.weight);
  return out;
}

std::string KnowledgeBase::RuleToString(const HornRule& rule) const {
  auto rel = [&](RelationId r) { return relations_.NameOrPlaceholder(r); };
  auto cls = [&](ClassId c) { return classes_.NameOrPlaceholder(c); };
  std::string head = rel(rule.head) + "(x:" + cls(rule.c1) + ", y:" +
                     cls(rule.c2) + ")";
  std::string body;
  switch (rule.structure) {
    case RuleStructure::kM1:
      body = rel(rule.body1) + "(x, y)";
      break;
    case RuleStructure::kM2:
      body = rel(rule.body1) + "(y, x)";
      break;
    case RuleStructure::kM3:
      body = rel(rule.body1) + "(z:" + cls(rule.c3) + ", x), " +
             rel(rule.body2) + "(z, y)";
      break;
    case RuleStructure::kM4:
      body = rel(rule.body1) + "(x, z:" + cls(rule.c3) + "), " +
             rel(rule.body2) + "(z, y)";
      break;
    case RuleStructure::kM5:
      body = rel(rule.body1) + "(z:" + cls(rule.c3) + ", x), " +
             rel(rule.body2) + "(y, z)";
      break;
    case RuleStructure::kM6:
      body = rel(rule.body1) + "(x, z:" + cls(rule.c3) + "), " +
             rel(rule.body2) + "(y, z)";
      break;
  }
  return StrFormat("%.2f %s <- %s", rule.weight, head.c_str(), body.c_str());
}

Status KnowledgeBase::Validate() const {
  auto check_entity = [&](EntityId e) {
    return e >= 0 && e < entities_.size();
  };
  auto check_class = [&](ClassId c) { return c >= 0 && c < classes_.size(); };
  auto check_rel = [&](RelationId r) {
    return r >= 0 && r < relations_.size();
  };
  for (size_t i = 0; i < facts_.size(); ++i) {
    const Fact& f = facts_[i];
    if (!check_rel(f.relation) || !check_entity(f.x) || !check_entity(f.y) ||
        !check_class(f.c1) || !check_class(f.c2)) {
      return Status::InvalidArgument(
          StrFormat("fact %zu references unknown symbols", i));
    }
  }
  for (size_t i = 0; i < rules_.size(); ++i) {
    const HornRule& r = rules_[i];
    if (!check_rel(r.head) || !check_rel(r.body1) || !check_class(r.c1) ||
        !check_class(r.c2)) {
      return Status::InvalidArgument(
          StrFormat("rule %zu references unknown symbols", i));
    }
    if (r.body_length() == 2 && (!check_rel(r.body2) || !check_class(r.c3))) {
      return Status::InvalidArgument(
          StrFormat("rule %zu has invalid second body atom", i));
    }
    if (std::isnan(r.weight)) {
      return Status::InvalidArgument(
          StrFormat("rule %zu has NaN weight", i));
    }
  }
  for (size_t i = 0; i < constraints_.size(); ++i) {
    const FunctionalConstraint& c = constraints_[i];
    if (!check_rel(c.relation) || c.degree < 1) {
      return Status::InvalidArgument(
          StrFormat("constraint %zu invalid", i));
    }
  }
  return Status::OK();
}

std::string KnowledgeBase::StatsString() const {
  return StrFormat(
      "# relations %lld | # rules %zu | # entities %lld | # facts %zu | "
      "# classes %lld | # constraints %zu",
      static_cast<long long>(relations_.size()), rules_.size(),
      static_cast<long long>(entities_.size()), facts_.size(),
      static_cast<long long>(classes_.size()), constraints_.size());
}

}  // namespace probkb
