#ifndef PROBKB_KB_CLASS_HIERARCHY_H_
#define PROBKB_KB_CLASS_HIERARCHY_H_

#include <vector>

#include "kb/knowledge_base.h"

namespace probkb {

/// \brief One subclass edge of the derived class hierarchy.
struct SubclassEdge {
  ClassId subclass = kInvalidId;
  ClassId superclass = kInvalidId;

  friend bool operator==(const SubclassEdge& a, const SubclassEdge& b) {
    return a.subclass == b.subclass && a.superclass == b.superclass;
  }
};

/// \brief Derives the class hierarchy of Definition 1, Remark 1: "for any
/// Ci, Cj in C, Ci is a subclass of Cj if and only if Ci ⊆ Cj", computed
/// from the class-membership tuples (TC).
///
/// Classes with identical member sets are mutual subclasses (both edges
/// are emitted); classes with no members subclass nothing (the vacuous
/// subset would make them subclasses of everything, which is useless for
/// typing). Edges are returned sorted by (subclass, superclass).
std::vector<SubclassEdge> ComputeClassHierarchy(const KnowledgeBase& kb);

/// \brief True if `sub` ⊆ `super` holds over the KB's class members (both
/// classes must have members).
bool IsSubclassOf(const KnowledgeBase& kb, ClassId sub, ClassId super);

}  // namespace probkb

#endif  // PROBKB_KB_CLASS_HIERARCHY_H_
