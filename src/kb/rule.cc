#include "kb/rule.h"

#include "util/strings.h"

namespace probkb {

const char* RuleStructureToString(RuleStructure s) {
  switch (s) {
    case RuleStructure::kM1:
      return "M1: p(x,y) <- q(x,y)";
    case RuleStructure::kM2:
      return "M2: p(x,y) <- q(y,x)";
    case RuleStructure::kM3:
      return "M3: p(x,y) <- q(z,x), r(z,y)";
    case RuleStructure::kM4:
      return "M4: p(x,y) <- q(x,z), r(z,y)";
    case RuleStructure::kM5:
      return "M5: p(x,y) <- q(z,x), r(y,z)";
    case RuleStructure::kM6:
      return "M6: p(x,y) <- q(x,z), r(y,z)";
  }
  return "?";
}

Result<HornRule> PartitionClause(const Clause& clause) {
  const int x = clause.head.var1;
  const int y = clause.head.var2;
  if (x == y) {
    return Status::InvalidArgument(
        "head variables must be distinct for the six Sherlock structures");
  }
  auto class_of = [&](int var) -> Result<ClassId> {
    if (var < 0 || var >= static_cast<int>(clause.var_classes.size()) ||
        clause.var_classes[static_cast<size_t>(var)] == kInvalidId) {
      return Status::InvalidArgument(
          StrFormat("variable %d has no class annotation", var));
    }
    return clause.var_classes[static_cast<size_t>(var)];
  };

  HornRule rule;
  rule.head = clause.head.relation;
  rule.weight = clause.weight;
  PROBKB_ASSIGN_OR_RETURN(rule.c1, class_of(x));
  PROBKB_ASSIGN_OR_RETURN(rule.c2, class_of(y));

  if (clause.body.size() == 1) {
    const Atom& q = clause.body[0];
    rule.body1 = q.relation;
    if (q.var1 == x && q.var2 == y) {
      rule.structure = RuleStructure::kM1;
    } else if (q.var1 == y && q.var2 == x) {
      rule.structure = RuleStructure::kM2;
    } else {
      return Status::InvalidArgument(
          "length-1 body must be q(x,y) or q(y,x)");
    }
    return rule;
  }

  if (clause.body.size() != 2) {
    return Status::InvalidArgument(StrFormat(
        "body length %d outside the six Sherlock structures",
        static_cast<int>(clause.body.size())));
  }

  // Identify the join variable z: the single variable that is not a head
  // variable and appears in both body atoms.
  int z = -1;
  for (const Atom& a : clause.body) {
    for (int v : {a.var1, a.var2}) {
      if (v == x || v == y) continue;
      if (z == -1) {
        z = v;
      } else if (z != v) {
        return Status::InvalidArgument(
            "more than one non-head variable in the body");
      }
    }
  }
  if (z == -1) {
    return Status::InvalidArgument(
        "length-2 body must share a join variable z");
  }
  PROBKB_ASSIGN_OR_RETURN(rule.c3, class_of(z));

  auto mentions = [](const Atom& a, int v) {
    return a.var1 == v || a.var2 == v;
  };
  // Canonical atom order: q mentions x, r mentions y.
  const Atom* q = nullptr;
  const Atom* r = nullptr;
  for (const Atom& a : clause.body) {
    if (mentions(a, x) && !mentions(a, y)) {
      if (q != nullptr) {
        return Status::InvalidArgument("both body atoms mention x");
      }
      q = &a;
    } else if (mentions(a, y) && !mentions(a, x)) {
      if (r != nullptr) {
        return Status::InvalidArgument("both body atoms mention y");
      }
      r = &a;
    } else {
      return Status::InvalidArgument(
          "body atom must mention exactly one head variable");
    }
  }
  if (q == nullptr || r == nullptr) {
    return Status::InvalidArgument(
        "length-2 body must cover both head variables");
  }
  if (!mentions(*q, z) || !mentions(*r, z)) {
    return Status::InvalidArgument(
        "join variable z must appear in both body atoms");
  }

  rule.body1 = q->relation;
  rule.body2 = r->relation;
  const bool q_zx = (q->var1 == z && q->var2 == x);
  const bool q_xz = (q->var1 == x && q->var2 == z);
  const bool r_zy = (r->var1 == z && r->var2 == y);
  const bool r_yz = (r->var1 == y && r->var2 == z);
  if (!q_zx && !q_xz) {
    return Status::InvalidArgument("q atom must be q(z,x) or q(x,z)");
  }
  if (!r_zy && !r_yz) {
    return Status::InvalidArgument("r atom must be r(z,y) or r(y,z)");
  }
  if (q_zx && r_zy) {
    rule.structure = RuleStructure::kM3;
  } else if (q_xz && r_zy) {
    rule.structure = RuleStructure::kM4;
  } else if (q_zx && r_yz) {
    rule.structure = RuleStructure::kM5;
  } else {
    rule.structure = RuleStructure::kM6;
  }
  return rule;
}

Clause RuleToClause(const HornRule& rule) {
  constexpr int x = 0;
  constexpr int y = 1;
  constexpr int z = 2;
  Clause clause;
  clause.head = {rule.head, x, y};
  clause.weight = rule.weight;
  clause.var_classes = {rule.c1, rule.c2};
  switch (rule.structure) {
    case RuleStructure::kM1:
      clause.body = {{rule.body1, x, y}};
      break;
    case RuleStructure::kM2:
      clause.body = {{rule.body1, y, x}};
      break;
    case RuleStructure::kM3:
      clause.body = {{rule.body1, z, x}, {rule.body2, z, y}};
      break;
    case RuleStructure::kM4:
      clause.body = {{rule.body1, x, z}, {rule.body2, z, y}};
      break;
    case RuleStructure::kM5:
      clause.body = {{rule.body1, z, x}, {rule.body2, y, z}};
      break;
    case RuleStructure::kM6:
      clause.body = {{rule.body1, x, z}, {rule.body2, y, z}};
      break;
  }
  if (rule.body_length() == 2) clause.var_classes.push_back(rule.c3);
  return clause;
}

}  // namespace probkb
