#include "kb/relational_model.h"

namespace probkb {

Schema TPiSchema() {
  return Schema({{"I", ColumnType::kInt64},
                 {"R", ColumnType::kInt64},
                 {"x", ColumnType::kInt64},
                 {"C1", ColumnType::kInt64},
                 {"y", ColumnType::kInt64},
                 {"C2", ColumnType::kInt64},
                 {"w", ColumnType::kFloat64}});
}

Schema MLen2Schema() {
  return Schema({{"R1", ColumnType::kInt64},
                 {"R2", ColumnType::kInt64},
                 {"C1", ColumnType::kInt64},
                 {"C2", ColumnType::kInt64},
                 {"w", ColumnType::kFloat64}});
}

Schema MLen3Schema() {
  return Schema({{"R1", ColumnType::kInt64},
                 {"R2", ColumnType::kInt64},
                 {"R3", ColumnType::kInt64},
                 {"C1", ColumnType::kInt64},
                 {"C2", ColumnType::kInt64},
                 {"C3", ColumnType::kInt64},
                 {"w", ColumnType::kFloat64}});
}

Schema TOmegaSchema() {
  return Schema({{"R", ColumnType::kInt64},
                 {"arg", ColumnType::kInt64},
                 {"deg", ColumnType::kInt64}});
}

Schema TPhiSchema() {
  return Schema({{"I1", ColumnType::kInt64},
                 {"I2", ColumnType::kInt64},
                 {"I3", ColumnType::kInt64},
                 {"w", ColumnType::kFloat64}});
}

Schema TCSchema() {
  return Schema({{"C", ColumnType::kInt64}, {"e", ColumnType::kInt64}});
}

Schema TRSchema() {
  return Schema({{"R", ColumnType::kInt64},
                 {"C1", ColumnType::kInt64},
                 {"C2", ColumnType::kInt64}});
}

void AppendFactRow(Table* t_pi, FactId id, const Fact& fact) {
  t_pi->AppendRow({Value::Int64(id), Value::Int64(fact.relation),
                   Value::Int64(fact.x), Value::Int64(fact.c1),
                   Value::Int64(fact.y), Value::Int64(fact.c2),
                   fact.has_weight() ? Value::Float64(fact.weight)
                                     : Value::Null()});
}

Fact FactFromRow(const RowView& row) {
  Fact fact;
  fact.relation = row[tpi::kR].i64();
  fact.x = row[tpi::kX].i64();
  fact.c1 = row[tpi::kC1].i64();
  fact.y = row[tpi::kY].i64();
  fact.c2 = row[tpi::kC2].i64();
  fact.weight =
      row[tpi::kW].is_null() ? std::nan("") : row[tpi::kW].f64();
  return fact;
}

RelationalKB BuildRelationalModel(const KnowledgeBase& kb) {
  RelationalKB out;
  out.t_pi = Table::Make(TPiSchema());
  out.t_pi->ReserveRows(static_cast<int64_t>(kb.facts().size()));
  FactId id = 0;
  for (const Fact& f : kb.facts()) {
    AppendFactRow(out.t_pi.get(), id++, f);
  }
  out.next_fact_id = id;

  for (int i = 0; i < kNumRuleStructures; ++i) {
    out.m[static_cast<size_t>(i)] =
        Table::Make(i < 2 ? MLen2Schema() : MLen3Schema());
  }
  for (const HornRule& r : kb.rules()) {
    int idx = static_cast<int>(r.structure) - 1;
    Table* m = out.m[static_cast<size_t>(idx)].get();
    if (r.body_length() == 1) {
      m->AppendRow({Value::Int64(r.head), Value::Int64(r.body1),
                    Value::Int64(r.c1), Value::Int64(r.c2),
                    Value::Float64(r.weight)});
    } else {
      m->AppendRow({Value::Int64(r.head), Value::Int64(r.body1),
                    Value::Int64(r.body2), Value::Int64(r.c1),
                    Value::Int64(r.c2), Value::Int64(r.c3),
                    Value::Float64(r.weight)});
    }
  }

  out.t_omega = Table::Make(TOmegaSchema());
  for (const FunctionalConstraint& c : kb.constraints()) {
    out.t_omega->AppendRow({Value::Int64(c.relation),
                            Value::Int64(static_cast<int64_t>(c.type)),
                            Value::Int64(c.degree)});
  }

  out.t_c = Table::Make(TCSchema());
  for (const ClassMember& m : kb.class_members()) {
    out.t_c->AppendRow({Value::Int64(m.cls), Value::Int64(m.entity)});
  }

  out.t_r = Table::Make(TRSchema());
  for (const RelationSignature& s : kb.signatures()) {
    out.t_r->AppendRow({Value::Int64(s.relation), Value::Int64(s.domain),
                        Value::Int64(s.range)});
  }
  return out;
}

}  // namespace probkb
