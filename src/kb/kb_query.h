#ifndef PROBKB_KB_KB_QUERY_H_
#define PROBKB_KB_KB_QUERY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "kb/relational_model.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief One parsed serve-mode query: a fact pattern `relation(x, y)`
/// with `*` (or `?`) wildcards, or a bare entity name meaning "all facts
/// mentioning this entity".
struct QueryPattern {
  /// Empty for entity queries.
  std::string relation;
  /// Unset components are wildcards.
  std::optional<std::string> x;
  std::optional<std::string> y;
  /// Set for entity queries only.
  std::string entity;

  bool is_entity_query() const { return relation.empty(); }
  std::string ToString() const;
};

/// \brief Parses the textual query forms the serve CLI accepts:
/// "rel(x, y)", "rel(x, *)", "rel(*, *)", or a bare "Entity". Whitespace
/// around tokens is ignored; empty input or an unbalanced pattern is an
/// InvalidArgument error (name resolution happens later, against the KB
/// dictionaries — unknown names are empty answers, not errors).
Result<QueryPattern> ParseQueryPattern(std::string_view text);

/// \brief Read-side API over an expanded knowledge base.
///
/// After grounding + marginal write-back, the expanded TPi answers fact
/// lookups directly — the "avoiding query-time computation, improving
/// system responsivity" design point of Section 2.2. The view indexes the
/// facts by relation and by entity at construction; lookups are by name
/// (resolved through the KB dictionaries).
class KbQuery {
 public:
  /// `kb` provides the dictionaries; `t_pi` the (expanded) facts. Both
  /// must outlive the view, and `t_pi` must not be mutated afterwards.
  /// `first_inferred_id` marks where inferred fact ids start (the
  /// RelationalKB's next_fact_id before grounding); facts with ids >= it
  /// are flagged inferred. Pass -1 to fall back to the NULL-weight
  /// heuristic (correct before marginal write-back only).
  KbQuery(const KnowledgeBase* kb, TablePtr t_pi,
          FactId first_inferred_id = -1);

  struct ScoredFact {
    Fact fact;
    /// w column: extraction weight for base facts, marginal probability
    /// for inferred facts after WriteMarginalsToTPi (NaN before).
    double score = 0.0;
    bool inferred = false;
  };

  /// \brief Facts matching the pattern relation(x, y); empty optionals are
  /// wildcards. Unknown names yield an empty result, not an error. Results
  /// are sorted by descending score.
  std::vector<ScoredFact> Find(std::string_view relation,
                               std::optional<std::string_view> x,
                               std::optional<std::string_view> y,
                               double min_score = 0.0) const;

  /// \brief All facts mentioning `entity` (as subject or object), sorted
  /// by descending score.
  std::vector<ScoredFact> FactsAbout(std::string_view entity,
                                     double min_score = 0.0) const;

  /// \brief TPi row indices matching `pattern`, in ascending row order —
  /// the seed set the serve path grounds backward from. Unknown names
  /// yield an empty result.
  std::vector<int64_t> SeedRows(const QueryPattern& pattern) const;

  /// \brief Renders a scored fact ("0.87 live_in(Ann, Paris) [inferred]").
  std::string ToString(const ScoredFact& fact) const;

  int64_t NumFacts() const { return t_pi_->NumRows(); }

 private:
  ScoredFact MakeScored(const RowView& row) const;
  void CollectSorted(const std::vector<int64_t>& rows,
                     double min_score,
                     const std::function<bool(const RowView&)>& filter,
                     std::vector<ScoredFact>* out) const;

  const KnowledgeBase* kb_;
  TablePtr t_pi_;
  FactId first_inferred_id_;
  std::unordered_map<RelationId, std::vector<int64_t>> by_relation_;
  std::unordered_map<EntityId, std::vector<int64_t>> by_entity_;
};

}  // namespace probkb

#endif  // PROBKB_KB_KB_QUERY_H_
