#include "grounding/mpp_grounder.h"

#include <algorithm>
#include <memory>

#include "engine/ops.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/timer.h"

namespace probkb {

namespace {

// Atom-table columns holding (R, C1, C2) — the values TPi's canonical
// distribution hashes, so redistributing atoms on these keys collocates
// them with their TPi segment.
const std::vector<int> kAtomDistKeys = {atom::kR, atom::kC1, atom::kC2};

}  // namespace

MppGrounder::MppGrounder(const RelationalKB& rkb, int num_segments,
                         MppMode mode, GroundingOptions options,
                         CostParams cost_params, FaultInjector* injector,
                         RetryPolicy retry)
    : ctx_(num_segments, cost_params),
      mode_(mode),
      options_(options),
      planner_(MotionCostModel{cost_params.seconds_per_shipped_tuple,
                               cost_params.broadcast_tuple_discount,
                               cost_params.motion_latency, num_segments}),
      m_(rkb.m),
      t_omega_(rkb.t_omega),
      next_fact_id_(rkb.next_fact_id) {
  ctx_.set_planner(&planner_);
  ctx_.set_fault_injector(injector);
  ctx_.set_retry_policy(retry);
  ctx_.set_deadline_seconds(options_.deadline_seconds);
  const int threads = ThreadPool::ResolveThreads(options_.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads);
    ctx_.set_thread_pool(pool_.get());
  }
  spill_session_ = std::make_unique<SpillSession>(options_.mem_budget_bytes,
                                                  options_.spill_dir);
  ctx_.set_spill(spill_session_->context());
  stats_.initial_atoms = rkb.t_pi->NumRows();
  t_pi_ = DistributedTable::Distribute(*rkb.t_pi, num_segments,
                                       Distribution::Hash(ViewKeysT0()), "T0");
  if (mode_ == MppMode::kViews) {
    view_tx_ = DistributedTable::Distribute(
        *rkb.t_pi, num_segments, Distribution::Hash(ViewKeysTx()), "Tx");
    view_ty_ = DistributedTable::Distribute(
        *rkb.t_pi, num_segments, Distribution::Hash(ViewKeysTy()), "Ty");
    view_txy_ = DistributedTable::Distribute(
        *rkb.t_pi, num_segments, Distribution::Hash(ViewKeysTxy()), "Txy");
  }
}

DistributedTablePtr MppGrounder::ProbeFor(
    const std::vector<int>& t_keys) const {
  if (mode_ == MppMode::kViews) {
    if (t_keys == ViewKeysTx()) return view_tx_;
    if (t_keys == ViewKeysTy()) return view_ty_;
    if (t_keys == ViewKeysTxy()) return view_txy_;
  }
  return t_pi_;
}

void MppGrounder::ObserveStatement(const std::string& label, int64_t estimate,
                                   int64_t observed) {
  planner_.ObserveRows(label, observed);
  explain_lines_.push_back(
      StrFormat("%s: est=%lld obs=%lld\n", label.c_str(),
                static_cast<long long>(estimate),
                static_cast<long long>(observed)));
}

std::string MppGrounder::ExplainPlans() const {
  std::string out;
  for (const std::string& line : explain_lines_) out += line;
  out += planner_.ExplainDecisions();
  return out;
}

Result<DistributedTablePtr> MppGrounder::GroundAtomsPartition(int p) {
  const PartitionSpec& spec = GetPartitionSpec(p);
  TablePtr m_local = m_[static_cast<size_t>(p - 1)];
  auto m_dist =
      DistributedTable::Distribute(*m_local, ctx_.num_segments(),
                                   Distribution::Random(),
                                   "M" + std::to_string(p));
  DistributedTablePtr probe1 = ProbeFor(spec.t_keys1);

  MppJoinSpec js1;
  js1.left_keys = spec.m_keys1;
  js1.right_keys = spec.t_keys1;
  js1.type = JoinType::kInner;
  js1.output_cols = spec.body_length == 1 ? Len2AtomOutputCols(spec)
                                          : J1OutputCols(spec);
  js1.output_dist = Distribution::Random();
  js1.label = StrFormat("Query1-%d join1", p);
  js1.policy = motion_policy_;
  // Cold start estimates the join at the (small) M_i side's size — the
  // paper-§5 assumption that rules, not facts, bound the intermediate;
  // warm iterations reuse the previous iteration's observation.
  const int64_t est1 = planner_.ObservedRows(js1.label, m_local->NumRows());
  PROBKB_ASSIGN_OR_RETURN(DistributedTablePtr j,
                          MppHashJoin(&ctx_, m_dist, probe1, js1));
  ObserveStatement(js1.label, est1, j->NumRows());
  if (spec.body_length == 1) return j;

  DistributedTablePtr probe2 = ProbeFor(spec.t_keys2);
  MppJoinSpec js2;
  js2.left_keys = spec.j1_keys2;
  js2.right_keys = spec.t_keys2;
  js2.type = JoinType::kInner;
  js2.output_cols = Len3AtomOutputCols(spec);
  js2.output_dist = Distribution::Random();
  js2.label = StrFormat("Query1-%d join2", p);
  js2.policy = motion_policy_;
  const int64_t est2 = planner_.ObservedRows(js2.label, j->NumRows());
  PROBKB_ASSIGN_OR_RETURN(DistributedTablePtr j2,
                          MppHashJoin(&ctx_, j, probe2, js2));
  ObserveStatement(js2.label, est2, j2->NumRows());
  return j2;
}

namespace {

uint64_t BanKey(int64_t entity, int64_t cls) {
  PROBKB_DCHECK(cls >= 0 && cls < (1 << 20));
  return (static_cast<uint64_t>(entity) << 20) | static_cast<uint64_t>(cls);
}

}  // namespace

Result<int64_t> MppGrounder::MergeAtoms(const DistributedTable& atoms) {
  PROBKB_ASSIGN_OR_RETURN(
      DistributedTablePtr collocated,
      ctx_.Redistribute(atoms, kAtomDistKeys, "inferred_atoms"));

  const int n = ctx_.num_segments();
  // Fan-out gated on the rows the phase actually touches: per-iteration
  // deltas are often tiny, and dispatching n segment tasks for a few
  // hundred rows costs more than the work (the fig6c regression).
  auto for_each_segment = [&](int64_t total_rows,
                              const std::function<void(int)>& body) {
    if (pool_ != nullptr && pool_->num_threads() > 1 && n > 1 &&
        total_rows >= MppContext::SerialFanoutRowCutoff()) {
      pool_->ParallelFor(n, 1, [&](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) body(static_cast<int>(s));
      });
    } else {
      for (int s = 0; s < n; ++s) body(s);
    }
  };

  // Drop atoms keyed by banned entities (per-segment, no motion needed;
  // segments only read the shared ban sets, so the fan-out is safe).
  if (!banned_x_keys_.empty() || !banned_y_keys_.empty()) {
    for_each_segment(collocated->PhysicalRows(), [&](int s) {
      DeleteWhere(collocated->mutable_segment(s).get(),
                  [this](const RowView& row) {
                    return banned_x_keys_.count(BanKey(
                               row[atom::kX].i64(), row[atom::kC1].i64())) >
                               0 ||
                           banned_y_keys_.count(BanKey(
                               row[atom::kY].i64(), row[atom::kC2].i64())) >
                               0;
                  });
    });
  }

  // Two-phase merge. Phase 1 (parallel): per-segment read-only dedup
  // selecting the new atom rows. Phase 2 (serial): append the selections
  // in canonical segment order, drawing fact ids from the shared counter —
  // ids come out identical to the serial engine's regardless of thread
  // count.
  std::vector<int64_t> old_sizes(static_cast<size_t>(n));
  std::vector<double> seg_seconds(static_cast<size_t>(n));
  std::vector<std::vector<int64_t>> selected(static_cast<size_t>(n));
  for_each_segment(t_pi_->PhysicalRows() + collocated->PhysicalRows(),
                   [&](int s) {
    Timer timer;
    std::vector<int64_t>& rows = selected[static_cast<size_t>(s)];
    rows = SelectNewAtomRows(*t_pi_->segment(s), *collocated->segment(s));
    // Canonical append order: sort the selection by atom content. The
    // selected rows of a segment are a policy-independent *set* (matches
    // land on the stationary side's segment no matter how the other side
    // moved), but their arrival order depends on the motions the planner
    // chose — sorting makes the fact-id assignment, and hence TPi,
    // bit-identical across broadcast/redistribute plan choices. Rows are
    // unique after dedup, so the order is total.
    const Table& seg = *collocated->segment(s);
    std::sort(rows.begin(), rows.end(), [&seg](int64_t a, int64_t b) {
      for (int c = atom::kR; c <= atom::kC2; ++c) {
        const int64_t va = seg.row(a)[c].i64();
        const int64_t vb = seg.row(b)[c].i64();
        if (va != vb) return va < vb;
      }
      return false;
    });
    seg_seconds[static_cast<size_t>(s)] = timer.Seconds();
  });
  int64_t added = 0;
  for (int s = 0; s < n; ++s) {
    old_sizes[static_cast<size_t>(s)] = t_pi_->segment(s)->NumRows();
    added += AppendAtomRows(t_pi_->mutable_segment(s).get(),
                            *collocated->segment(s),
                            selected[static_cast<size_t>(s)],
                            &next_fact_id_);
  }
  ctx_.RecordCompute("union into T0", seg_seconds);

  if (mode_ == MppMode::kViews && added > 0) {
    // Incremental view maintenance: ship only the delta rows to each view.
    // Each delta row remembers its T0 origin segment so an injected fault
    // can replay exactly the victim's contribution.
    Table delta(TPiSchema());
    std::vector<int> origin;
    for (int s = 0; s < n; ++s) {
      const Table& seg = *t_pi_->segment(s);
      const int64_t from = old_sizes[static_cast<size_t>(s)];
      delta.AppendRows(seg, from, seg.NumRows());
      origin.insert(origin.end(), static_cast<size_t>(seg.NumRows() - from),
                    s);
    }
    for (DistributedTablePtr view : {view_tx_, view_ty_, view_txy_}) {
      const auto& keys = view->distribution().key_cols;
      std::vector<int> targets(static_cast<size_t>(delta.NumRows()));
      if (delta.NumRows() > 0) {
        DistributedTable::TargetSegments(delta, keys, n, 0, delta.NumRows(),
                                         targets.data());
      }
      std::vector<std::vector<int64_t>> sent(
          static_cast<size_t>(n),
          std::vector<int64_t>(static_cast<size_t>(n)));
      for (int64_t r = 0; r < delta.NumRows(); ++r) {
        ++sent[static_cast<size_t>(origin[static_cast<size_t>(r)])]
              [static_cast<size_t>(targets[static_cast<size_t>(r)])];
      }
      auto resend = [&](const FaultEvent& f) -> int64_t {
        if (IsSegmentLoss(f.kind)) {
          int64_t t = 0;
          for (int64_t batch : sent[static_cast<size_t>(f.segment)]) {
            t += batch;
          }
          return t;
        }
        return sent[static_cast<size_t>(f.segment)][
            static_cast<size_t>(f.target)];
      };
      // The refresh is a real motion: it consumes a motion index, can be
      // struck by injected faults, and only mutates the view once the
      // (possibly recovered) shipment succeeded. Under a process runtime
      // the delta physically ships through the target workers and the
      // views append the echoed copies instead of the local rows.
      std::vector<TablePtr> delivered;
      PROBKB_RETURN_NOT_OK(
          ctx_.AccountMotion(MppStep::Kind::kRedistribute,
                             "refresh " + view->name(), delta.NumRows(),
                             resend, &delta, targets, &delivered));
      if (!delivered.empty()) {
        for (int t = 0; t < n; ++t) {
          if (delivered[static_cast<size_t>(t)] != nullptr) {
            view->mutable_segment(t)->AppendTable(
                *delivered[static_cast<size_t>(t)]);
          }
        }
      } else {
        for (int64_t r = 0; r < delta.NumRows(); ++r) {
          view->mutable_segment(targets[static_cast<size_t>(r)])
              ->AppendRows(delta, r, r + 1);
        }
      }
    }
  }
  return added;
}

Result<int64_t> MppGrounder::GroundAtomsIteration() {
  const double start_cost = ctx_.cost().simulated_seconds();
  const int iteration = stats_.iterations + 1;
  // Root span of the iteration's trace: every motion span (and, in process
  // mode, every harvested worker span) nests under it.
  TraceSpan span(Tracer::Global(), "iteration", "grounding", iteration);
  // Fresh explain/decision log per iteration: ExplainPlans() reports the
  // plans the *latest* deltas produced. The observation history persists —
  // it is what makes iteration N+1's estimates warm.
  explain_lines_.clear();
  planner_.ClearDecisionLog();
  std::vector<DistributedTablePtr> inferred;
  for (int p = 1; p <= kNumRuleStructures; ++p) {
    if (m_[static_cast<size_t>(p - 1)]->NumRows() == 0) continue;
    const double partition_start = ctx_.cost().simulated_seconds();
    PROBKB_ASSIGN_OR_RETURN(DistributedTablePtr atoms,
                            GroundAtomsPartition(p));
    if (obs_ != nullptr) {
      obs_->RecordPartitionIteration(
          iteration, p, atoms->NumRows(),
          ctx_.cost().simulated_seconds() - partition_start);
    }
    inferred.push_back(std::move(atoms));
    ++stats_.statements;
  }
  int64_t added = 0;
  for (const DistributedTablePtr& atoms : inferred) {
    PROBKB_ASSIGN_OR_RETURN(int64_t merged, MergeAtoms(*atoms));
    added += merged;
  }
  if (options_.apply_constraints_each_iteration) {
    PROBKB_ASSIGN_OR_RETURN(int64_t deleted, ApplyConstraints());
    stats_.constraint_deleted += deleted;
  }
  double secs = ctx_.cost().simulated_seconds() - start_cost;
  stats_.iteration_seconds.push_back(secs);
  stats_.iteration_new_atoms.push_back(added);
  stats_.ground_atoms_seconds += secs;
  ++stats_.iterations;
  if (obs_ != nullptr) obs_->RecordLatency("grounding_iteration", secs);
  span.set_values(stats_.iterations, added, t_pi_->NumRows());
  FlightRecorder::Global()->Record(FrEvent::kIterationBoundary,
                                   "mpp_grounder", stats_.iterations, added,
                                   t_pi_->NumRows());
  return added;
}

Status MppGrounder::GroundAtoms() {
  // `stats_.iterations` starts above zero after ResumeFrom, so a resumed
  // run honours the same iteration cap as an uninterrupted one. A deadline
  // or fault error propagates out of the iteration with the last completed
  // iteration's checkpoint intact on disk.
  while (stats_.iterations < options_.max_iterations) {
    PROBKB_RETURN_NOT_OK(ctx_.CheckDeadline());
    PROBKB_ASSIGN_OR_RETURN(int64_t added, GroundAtomsIteration());
    PROBKB_RETURN_NOT_OK(MaybeCheckpoint());
    if (added == 0) break;
  }
  stats_.final_atoms = t_pi_->NumRows();
  SnapshotWorkerStats();
  return Status::OK();
}

void MppGrounder::SnapshotWorkerStats() {
  // Phase boundary: surface spill-layer counter deltas alongside the
  // worker totals (no-op without a registry or a budget).
  spill_session_->FlushCountersInto(obs_);
  if (obs_ != nullptr && pool_ != nullptr) {
    std::vector<WorkerTotals> totals;
    for (const PoolWorkerStats& w : pool_->WorkerStats()) {
      WorkerTotals t;
      t.worker = w.worker;
      t.tasks_run = w.tasks_run;
      t.steals = w.steals;
      t.busy_seconds = w.busy_seconds;
      t.idle_seconds = w.idle_seconds;
      totals.push_back(t);
    }
    obs_->RecordWorkers(totals);
  }
}

Status MppGrounder::MaybeCheckpoint() {
  if (options_.checkpoint_dir.empty()) return Status::OK();
  const int every =
      options_.checkpoint_every > 0 ? options_.checkpoint_every : 1;
  if (stats_.iterations % every != 0) return Status::OK();
  GroundingCheckpoint cp;
  cp.iteration = stats_.iterations;
  cp.next_fact_id = next_fact_id_;
  cp.num_segments = ctx_.num_segments();
  // The gathered copy is informational (and lets the single-node reader
  // inspect it); the per-segment files are what resume restores.
  cp.t_pi = t_pi_->ToLocal();
  for (int s = 0; s < ctx_.num_segments(); ++s) {
    cp.t0_segments.push_back(t_pi_->segment(s));
  }
  if (mode_ == MppMode::kViews) {
    for (int s = 0; s < ctx_.num_segments(); ++s) {
      cp.tx_segments.push_back(view_tx_->segment(s));
      cp.ty_segments.push_back(view_ty_->segment(s));
      cp.txy_segments.push_back(view_txy_->segment(s));
    }
  }
  cp.banned_x = Table::Make(BannedEntitySchema());
  cp.banned_y = Table::Make(BannedEntitySchema());
  auto dump = [](const std::unordered_set<uint64_t>& keys, Table* out) {
    std::vector<uint64_t> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    for (uint64_t k : sorted) {
      out->AppendRow({Value::Int64(static_cast<int64_t>(k >> 20)),
                      Value::Int64(static_cast<int64_t>(
                          k & ((uint64_t{1} << 20) - 1)))});
    }
  };
  dump(banned_x_keys_, cp.banned_x.get());
  dump(banned_y_keys_, cp.banned_y.get());
  return WriteGroundingCheckpoint(cp, options_.checkpoint_dir);
}

Status MppGrounder::ResumeFrom(const std::string& checkpoint_dir) {
  PROBKB_ASSIGN_OR_RETURN(
      GroundingCheckpoint cp,
      ReadGroundingCheckpoint(TPiSchema(), checkpoint_dir));
  if (cp.num_segments != ctx_.num_segments()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint was taken with %d segments but the grounder has %d",
        cp.num_segments, ctx_.num_segments()));
  }
  const bool has_views = !cp.tx_segments.empty();
  if ((mode_ == MppMode::kViews) != has_views) {
    return Status::InvalidArgument(
        "checkpoint view mode does not match the grounder's MppMode");
  }
  t_pi_ = std::make_shared<DistributedTable>(
      TPiSchema(), cp.t0_segments, Distribution::Hash(ViewKeysT0()), "T0");
  if (mode_ == MppMode::kViews) {
    view_tx_ = std::make_shared<DistributedTable>(
        TPiSchema(), cp.tx_segments, Distribution::Hash(ViewKeysTx()), "Tx");
    view_ty_ = std::make_shared<DistributedTable>(
        TPiSchema(), cp.ty_segments, Distribution::Hash(ViewKeysTy()), "Ty");
    view_txy_ = std::make_shared<DistributedTable>(
        TPiSchema(), cp.txy_segments, Distribution::Hash(ViewKeysTxy()),
        "Txy");
  }
  next_fact_id_ = cp.next_fact_id;
  stats_.iterations = cp.iteration;
  banned_x_keys_.clear();
  banned_y_keys_.clear();
  for (int64_t i = 0; i < cp.banned_x->NumRows(); ++i) {
    RowView row = cp.banned_x->row(i);
    banned_x_keys_.insert(BanKey(row[0].i64(), row[1].i64()));
  }
  for (int64_t i = 0; i < cp.banned_y->NumRows(); ++i) {
    RowView row = cp.banned_y->row(i);
    banned_y_keys_.insert(BanKey(row[0].i64(), row[1].i64()));
  }
  return Status::OK();
}

Result<DistributedTablePtr> MppGrounder::GroundFactorsPartition(int p) {
  const PartitionSpec& spec = GetPartitionSpec(p);
  const bool has_i3 = spec.body_length == 2;
  TablePtr m_local = m_[static_cast<size_t>(p - 1)];
  auto m_dist =
      DistributedTable::Distribute(*m_local, ctx_.num_segments(),
                                   Distribution::Random(),
                                   "M" + std::to_string(p));

  DistributedTablePtr probe1 = ProbeFor(spec.t_keys1);
  MppJoinSpec js1;
  js1.left_keys = spec.m_keys1;
  js1.right_keys = spec.t_keys1;
  js1.type = JoinType::kInner;
  js1.output_cols = spec.body_length == 1 ? Len2FactorCandidateCols(spec)
                                          : J1OutputCols(spec);
  js1.output_dist = Distribution::Random();
  js1.label = StrFormat("Query2-%d join1", p);
  js1.policy = motion_policy_;
  const int64_t est1 = planner_.ObservedRows(js1.label, m_local->NumRows());
  PROBKB_ASSIGN_OR_RETURN(DistributedTablePtr candidates,
                          MppHashJoin(&ctx_, m_dist, probe1, js1));
  ObserveStatement(js1.label, est1, candidates->NumRows());

  if (spec.body_length == 2) {
    DistributedTablePtr probe2 = ProbeFor(spec.t_keys2);
    MppJoinSpec js2;
    js2.left_keys = spec.j1_keys2;
    js2.right_keys = spec.t_keys2;
    js2.type = JoinType::kInner;
    js2.output_cols = Len3FactorCandidateCols(spec);
    js2.output_dist = Distribution::Random();
    js2.label = StrFormat("Query2-%d join2", p);
    js2.policy = motion_policy_;
    const int64_t est2 =
        planner_.ObservedRows(js2.label, candidates->NumRows());
    PROBKB_ASSIGN_OR_RETURN(candidates,
                            MppHashJoin(&ctx_, candidates, probe2, js2));
    ObserveStatement(js2.label, est2, candidates->NumRows());
  }

  DistributedTablePtr head = ProbeFor(ViewKeysTxy());
  MppJoinSpec js3;
  js3.left_keys = HeadJoinLeftKeys();
  js3.right_keys = ViewKeysTxy();
  js3.type = JoinType::kInner;
  js3.output_cols = FactorHeadOutputCols(has_i3);
  js3.output_dist = Distribution::Random();
  js3.label = StrFormat("Query2-%d head", p);
  js3.policy = motion_policy_;
  const int64_t est3 = planner_.ObservedRows(js3.label, candidates->NumRows());
  PROBKB_ASSIGN_OR_RETURN(DistributedTablePtr factors,
                          MppHashJoin(&ctx_, candidates, head, js3));
  ObserveStatement(js3.label, est3, factors->NumRows());
  if (!has_i3) {
    PROBKB_ASSIGN_OR_RETURN(
        factors,
        MppFilterProject(&ctx_, factors, nullptr, NullI3Projection(),
                         Distribution::Random(),
                         StrFormat("Query2-%d null I3", p)));
  }
  return factors;
}

Result<TablePtr> MppGrounder::GroundFactors() {
  const double start_cost = ctx_.cost().simulated_seconds();
  TraceSpan span(Tracer::Global(), "ground_factors", "grounding");
  auto t_phi = Table::Make(TPhiSchema());
  for (int p = 1; p <= kNumRuleStructures; ++p) {
    if (m_[static_cast<size_t>(p - 1)]->NumRows() == 0) continue;
    PROBKB_ASSIGN_OR_RETURN(DistributedTablePtr factors,
                            GroundFactorsPartition(p));
    PROBKB_ASSIGN_OR_RETURN(TablePtr local, ctx_.Gather(*factors));
    t_phi->AppendTable(*local);
    ++stats_.statements;
  }
  {
    PROBKB_ASSIGN_OR_RETURN(
        DistributedTablePtr singles,
        MppFilterProject(
            &ctx_, t_pi_,
            [](const RowView& row) { return !row[tpi::kW].is_null(); },
            std::vector<ProjectExpr>{
                ProjectExpr::Column(tpi::kI, "I1"),
                ProjectExpr::Constant(Value::Null(), "I2"),
                ProjectExpr::Constant(Value::Null(), "I3"),
                ProjectExpr::Column(tpi::kW, "w", ColumnType::kFloat64)},
            Distribution::Random(), "singleton factors"));
    PROBKB_ASSIGN_OR_RETURN(TablePtr local, ctx_.Gather(*singles));
    t_phi->AppendTable(*local);
    ++stats_.statements;
  }
  stats_.ground_factors_seconds +=
      ctx_.cost().simulated_seconds() - start_cost;
  stats_.factors = t_phi->NumRows();
  stats_.final_atoms = t_pi_->NumRows();
  SnapshotWorkerStats();
  return t_phi;
}

Result<int64_t> MppGrounder::ApplyConstraints() {
  ++stats_.statements;
  auto omega_dist = DistributedTable::Distribute(
      *t_omega_, ctx_.num_segments(), Distribution::Replicated(), "FC");

  int64_t deleted = 0;
  for (FunctionalityType type :
       {FunctionalityType::kTypeI, FunctionalityType::kTypeII}) {
    const bool type1 = type == FunctionalityType::kTypeI;
    const int64_t arg = type1 ? 1 : 2;
    PROBKB_ASSIGN_OR_RETURN(
        DistributedTablePtr fc_filtered,
        MppFilterProject(&ctx_, omega_dist,
                         [arg](const RowView& row) {
                           return row[tomega::kArg].i64() == arg;
                         },
                         std::nullopt, Distribution::Replicated(),
                         type1 ? "FC arg=1" : "FC arg=2"));

    MppJoinSpec js;
    js.left_keys = {tpi::kR};
    js.right_keys = {tomega::kR};
    js.type = JoinType::kInner;
    js.output_cols = {
        JoinOutputCol::Left(tpi::kR, "R"),
        JoinOutputCol::Left(type1 ? tpi::kX : tpi::kY, "e"),
        JoinOutputCol::Left(type1 ? tpi::kC1 : tpi::kC2, "Ce"),
        JoinOutputCol::Left(type1 ? tpi::kC2 : tpi::kC1, "Cother"),
        JoinOutputCol::Right(tomega::kDeg, "deg"),
    };
    // Rows stay on their TPi segment, which hashed (R, C1, C2) — those
    // values live at output positions (0, 2, 3) for Type I and (0, 3, 2)
    // for Type II.
    js.output_dist = type1 ? Distribution::Hash({0, 2, 3})
                           : Distribution::Hash({0, 3, 2});
    js.policy = MotionPolicy::kAuto;  // right side replicated: no motion
    js.label = type1 ? "Query3 join (Type I)" : "Query3 join (Type II)";
    PROBKB_ASSIGN_OR_RETURN(DistributedTablePtr joined,
                            MppHashJoin(&ctx_, t_pi_, fc_filtered, js));

    PROBKB_ASSIGN_OR_RETURN(
        DistributedTablePtr grouped,
        MppAggregate(&ctx_, joined, {0, 1, 2, 3},
                     {{AggKind::kCount, 0, "cnt"},
                      {AggKind::kMin, 4, "mindeg"}},
                     [](const RowView& row) {
                       return row[4].i64() > row[5].i64();
                     },
                     "Query3 group/having"));
    PROBKB_ASSIGN_OR_RETURN(
        DistributedTablePtr projected,
        MppFilterProject(&ctx_, grouped, nullptr,
                         std::vector<ProjectExpr>{
                             ProjectExpr::Column(1, "e"),
                             ProjectExpr::Column(2, "Ce")},
                         Distribution::Random(), "Query3 project"));
    PROBKB_ASSIGN_OR_RETURN(
        DistributedTablePtr violators,
        MppDistinct(&ctx_, projected, {0, 1}, "Query3 distinct"));

    // Record permanent bans (same convergence argument as the single-node
    // grounder).
    auto& banned = type1 ? banned_x_keys_ : banned_y_keys_;
    for (int s = 0; s < ctx_.num_segments(); ++s) {
      const Table& seg = *violators->segment(s);
      for (int64_t i = 0; i < seg.NumRows(); ++i) {
        banned.insert(BanKey(seg.row(i)[0].i64(), seg.row(i)[1].i64()));
      }
    }

    const std::vector<int> dst_cols =
        type1 ? std::vector<int>{tpi::kX, tpi::kC1}
              : std::vector<int>{tpi::kY, tpi::kC2};
    PROBKB_ASSIGN_OR_RETURN(
        int64_t n, MppDeleteMatching(&ctx_, t_pi_.get(), dst_cols,
                                     *violators, {0, 1}));
    deleted += n;
    if (mode_ == MppMode::kViews) {
      for (DistributedTablePtr view : {view_tx_, view_ty_, view_txy_}) {
        PROBKB_ASSIGN_OR_RETURN(
            int64_t ignored, MppDeleteMatching(&ctx_, view.get(), dst_cols,
                                               *violators, {0, 1}));
        (void)ignored;
      }
    }
  }
  return deleted;
}

TablePtr MppGrounder::GatherTPi() const { return t_pi_->ToLocal(); }

}  // namespace probkb
