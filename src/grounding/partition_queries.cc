#include "grounding/partition_queries.h"

#include <algorithm>
#include <array>

#include "engine/ops.h"
#include "engine/tunables.h"

namespace probkb {

namespace {

// Intermediate J1 schema of the length-3 queries:
// (R1, R3, C1, C2, C3, w, xv, z, I2).
namespace j1 {
constexpr int kR1 = 0;
constexpr int kR3 = 1;
constexpr int kC1 = 2;
constexpr int kC2 = 3;
constexpr int kC3 = 4;
constexpr int kW = 5;
constexpr int kXv = 6;
constexpr int kZ = 7;
constexpr int kI2 = 8;
}  // namespace j1

// Factor-candidate schema before the head join:
// (R1, C1, C2, w, xv, yv, I2[, I3]).
namespace fc {
constexpr int kR1 = 0;
constexpr int kC1 = 1;
constexpr int kC2 = 2;
constexpr int kW = 3;
constexpr int kXv = 4;
constexpr int kYv = 5;
constexpr int kI2 = 6;
constexpr int kI3 = 7;
}  // namespace fc

std::array<PartitionSpec, 6> BuildSpecs() {
  std::array<PartitionSpec, 6> specs;
  // The TPi-side key order is always that of the corresponding view so the
  // MPP executor sees collocated scans (Example 5 in the paper).
  const std::vector<int> t0 = {tpi::kR, tpi::kC1, tpi::kC2};
  const std::vector<int> tx = {tpi::kR, tpi::kC1, tpi::kX, tpi::kC2};
  const std::vector<int> ty = {tpi::kR, tpi::kC1, tpi::kC2, tpi::kY};

  // M1: p(x,y) <- q(x,y). Pairings (M.R2,T.R), (M.C1,T.C1), (M.C2,T.C2).
  specs[0] = {1, 1, false, false,
              {mlen2::kR2, mlen2::kC1, mlen2::kC2}, t0, {}, {}};
  // M2: p(x,y) <- q(y,x): x lives in T.y, so M.C1 pairs with T.C2.
  specs[1] = {2, 1, true, false,
              {mlen2::kR2, mlen2::kC2, mlen2::kC1}, t0, {}, {}};
  // M3: q(z,x), r(z,y).
  specs[2] = {3, 2, false, false,
              {mlen3::kR2, mlen3::kC3, mlen3::kC1}, t0,
              {j1::kR3, j1::kC3, j1::kZ, j1::kC2}, tx};
  // M4: q(x,z), r(z,y).
  specs[3] = {4, 2, true, false,
              {mlen3::kR2, mlen3::kC1, mlen3::kC3}, t0,
              {j1::kR3, j1::kC3, j1::kZ, j1::kC2}, tx};
  // M5: q(z,x), r(y,z).
  specs[4] = {5, 2, false, true,
              {mlen3::kR2, mlen3::kC3, mlen3::kC1}, t0,
              {j1::kR3, j1::kC2, j1::kC3, j1::kZ}, ty};
  // M6: q(x,z), r(y,z).
  specs[5] = {6, 2, true, true,
              {mlen3::kR2, mlen3::kC1, mlen3::kC3}, t0,
              {j1::kR3, j1::kC2, j1::kC3, j1::kZ}, ty};
  return specs;
}

const std::array<PartitionSpec, 6>& Specs() {
  static const std::array<PartitionSpec, 6> specs = BuildSpecs();
  return specs;
}

}  // namespace

Schema AtomSchema() {
  return Schema({{"R", ColumnType::kInt64},
                 {"x", ColumnType::kInt64},
                 {"C1", ColumnType::kInt64},
                 {"y", ColumnType::kInt64},
                 {"C2", ColumnType::kInt64}});
}

const PartitionSpec& GetPartitionSpec(int p) {
  PROBKB_CHECK(p >= 1 && p <= 6);
  return Specs()[static_cast<size_t>(p - 1)];
}

const std::vector<int>& ViewKeysT0() {
  static const std::vector<int> keys = {tpi::kR, tpi::kC1, tpi::kC2};
  return keys;
}
const std::vector<int>& ViewKeysTx() {
  static const std::vector<int> keys = {tpi::kR, tpi::kC1, tpi::kX, tpi::kC2};
  return keys;
}
const std::vector<int>& ViewKeysTy() {
  static const std::vector<int> keys = {tpi::kR, tpi::kC1, tpi::kC2, tpi::kY};
  return keys;
}
const std::vector<int>& ViewKeysTxy() {
  static const std::vector<int> keys = {tpi::kR, tpi::kC1, tpi::kX, tpi::kC2,
                                        tpi::kY};
  return keys;
}

const std::vector<int>& HeadJoinLeftKeys() {
  static const std::vector<int> keys = {fc::kR1, fc::kC1, fc::kXv, fc::kC2,
                                        fc::kYv};
  return keys;
}

std::vector<JoinOutputCol> J1OutputCols(const PartitionSpec& spec) {
  // Where q's z and x arguments live in the probed fact depends on whether
  // the body atom is q(z,x) or q(x,z).
  const int z_col = spec.q_swapped ? tpi::kY : tpi::kX;
  const int xv_col = spec.q_swapped ? tpi::kX : tpi::kY;
  return {
      JoinOutputCol::Left(mlen3::kR1, "R1"),
      JoinOutputCol::Left(mlen3::kR3, "R3"),
      JoinOutputCol::Left(mlen3::kC1, "C1"),
      JoinOutputCol::Left(mlen3::kC2, "C2"),
      JoinOutputCol::Left(mlen3::kC3, "C3"),
      JoinOutputCol::Left(mlen3::kW, "w", ColumnType::kFloat64),
      JoinOutputCol::Right(xv_col, "xv"),
      JoinOutputCol::Right(z_col, "z"),
      JoinOutputCol::Right(tpi::kI, "I2"),
  };
}

std::vector<JoinOutputCol> Len2AtomOutputCols(const PartitionSpec& spec) {
  const int x_col = spec.q_swapped ? tpi::kY : tpi::kX;
  const int y_col = spec.q_swapped ? tpi::kX : tpi::kY;
  // For M1, T.C1 == M.C1 and T.C2 == M.C2 by the join condition; for M2,
  // T.C2 == M.C1 and T.C1 == M.C2. Taking the class columns from the M side
  // is correct for both.
  return {
      JoinOutputCol::Left(mlen2::kR1, "R"),
      JoinOutputCol::Right(x_col, "x"),
      JoinOutputCol::Left(mlen2::kC1, "C1"),
      JoinOutputCol::Right(y_col, "y"),
      JoinOutputCol::Left(mlen2::kC2, "C2"),
  };
}

std::vector<JoinOutputCol> Len3AtomOutputCols(const PartitionSpec& spec) {
  const int yv_col = spec.r_swapped ? tpi::kX : tpi::kY;
  return {
      JoinOutputCol::Left(j1::kR1, "R"),
      JoinOutputCol::Left(j1::kXv, "x"),
      JoinOutputCol::Left(j1::kC1, "C1"),
      JoinOutputCol::Right(yv_col, "y"),
      JoinOutputCol::Left(j1::kC2, "C2"),
  };
}

std::vector<JoinOutputCol> Len2FactorCandidateCols(const PartitionSpec& spec) {
  const int x_col = spec.q_swapped ? tpi::kY : tpi::kX;
  const int y_col = spec.q_swapped ? tpi::kX : tpi::kY;
  return {
      JoinOutputCol::Left(mlen2::kR1, "R1"),
      JoinOutputCol::Left(mlen2::kC1, "C1"),
      JoinOutputCol::Left(mlen2::kC2, "C2"),
      JoinOutputCol::Left(mlen2::kW, "w", ColumnType::kFloat64),
      JoinOutputCol::Right(x_col, "xv"),
      JoinOutputCol::Right(y_col, "yv"),
      JoinOutputCol::Right(tpi::kI, "I2"),
  };
}

std::vector<JoinOutputCol> Len3FactorCandidateCols(const PartitionSpec& spec) {
  const int yv_col = spec.r_swapped ? tpi::kX : tpi::kY;
  return {
      JoinOutputCol::Left(j1::kR1, "R1"),
      JoinOutputCol::Left(j1::kC1, "C1"),
      JoinOutputCol::Left(j1::kC2, "C2"),
      JoinOutputCol::Left(j1::kW, "w", ColumnType::kFloat64),
      JoinOutputCol::Left(j1::kXv, "xv"),
      JoinOutputCol::Right(yv_col, "yv"),
      JoinOutputCol::Left(j1::kI2, "I2"),
      JoinOutputCol::Right(tpi::kI, "I3"),
  };
}

std::vector<JoinOutputCol> FactorHeadOutputCols(bool has_i3) {
  return {
      JoinOutputCol::Right(tpi::kI, "I1"),
      JoinOutputCol::Left(fc::kI2, "I2"),
      JoinOutputCol::Left(has_i3 ? fc::kI3 : fc::kI2, "I3"),
      JoinOutputCol::Left(fc::kW, "w", ColumnType::kFloat64),
  };
}

std::vector<ProjectExpr> NullI3Projection() {
  return {ProjectExpr::Column(tphi::kI1, "I1"),
          ProjectExpr::Column(tphi::kI2, "I2"),
          ProjectExpr::Constant(Value::Null(), "I3"),
          ProjectExpr::Column(tphi::kW, "w", ColumnType::kFloat64)};
}

namespace {

/// First join of a length-3 query: M_i x T2 -> J1.
PlanNodePtr BuildJ1(const PartitionSpec& spec, TablePtr m, TablePtr t_probe) {
  return HashJoin(Scan(std::move(m), "M" + std::to_string(spec.partition)),
                  Scan(std::move(t_probe), "T"), spec.m_keys1, spec.t_keys1,
                  JoinType::kInner, J1OutputCols(spec));
}

}  // namespace

PlanNodePtr BuildAtomsPlan(int p, TablePtr m, TablePtr t_probe,
                           TablePtr t_probe2) {
  const PartitionSpec& spec = GetPartitionSpec(p);
  if (spec.body_length == 1) {
    return HashJoin(Scan(std::move(m), "M" + std::to_string(p)),
                    Scan(std::move(t_probe), "T"), spec.m_keys1, spec.t_keys1,
                    JoinType::kInner, Len2AtomOutputCols(spec));
  }
  PlanNodePtr j1 = BuildJ1(spec, std::move(m), std::move(t_probe));
  return HashJoin(std::move(j1), Scan(std::move(t_probe2), "T"),
                  spec.j1_keys2, spec.t_keys2, JoinType::kInner,
                  Len3AtomOutputCols(spec));
}

Result<TablePtr> GroundAtomsForPartition(int p, TablePtr m, TablePtr t_probe,
                                         TablePtr t_probe2,
                                         ExecContext* ctx) {
  auto plan =
      BuildAtomsPlan(p, std::move(m), std::move(t_probe), std::move(t_probe2));
  return plan->Execute(ctx);
}

Result<TablePtr> GroundFactorsForPartition(int p, TablePtr m,
                                           TablePtr t_probe,
                                           TablePtr t_probe2, TablePtr t_head,
                                           ExecContext* ctx) {
  const PartitionSpec& spec = GetPartitionSpec(p);
  const bool has_i3 = spec.body_length == 2;

  PlanNodePtr candidates;
  if (spec.body_length == 1) {
    candidates =
        HashJoin(Scan(std::move(m), "M" + std::to_string(p)),
                 Scan(std::move(t_probe), "T"), spec.m_keys1, spec.t_keys1,
                 JoinType::kInner, Len2FactorCandidateCols(spec));
  } else {
    PlanNodePtr j1 = BuildJ1(spec, std::move(m), std::move(t_probe));
    candidates = HashJoin(std::move(j1), Scan(std::move(t_probe2), "T"),
                          spec.j1_keys2, spec.t_keys2, JoinType::kInner,
                          Len3FactorCandidateCols(spec));
  }

  // Head join: resolve I1 by matching the derived atom against TPi.
  auto plan = HashJoin(std::move(candidates), Scan(std::move(t_head), "T"),
                       HeadJoinLeftKeys(), ViewKeysTxy(), JoinType::kInner,
                       FactorHeadOutputCols(has_i3));
  PROBKB_ASSIGN_OR_RETURN(TablePtr factors, plan->Execute(ctx));
  if (!has_i3) {
    auto null_i3 = Project(Scan(factors), NullI3Projection());
    return null_i3->Execute(ctx);
  }
  return factors;
}

Result<TablePtr> SingletonFactors(TablePtr t_pi, ExecContext* ctx) {
  auto plan = Project(
      Filter(Scan(std::move(t_pi), "T"),
             [](const RowView& row) { return !row[tpi::kW].is_null(); },
             "w IS NOT NULL"),
      {ProjectExpr::Column(tpi::kI, "I1"),
       ProjectExpr::Constant(Value::Null(), "I2"),
       ProjectExpr::Constant(Value::Null(), "I3"),
       ProjectExpr::Column(tpi::kW, "w", ColumnType::kFloat64)});
  return plan->Execute(ctx);
}

namespace {

const std::vector<int>& TPiMergeKey() {
  static const std::vector<int> key = {tpi::kR, tpi::kX, tpi::kC1, tpi::kY,
                                       tpi::kC2};
  return key;
}

const std::vector<int>& AtomMergeKey() {
  static const std::vector<int> key = {atom::kR, atom::kX, atom::kC1,
                                       atom::kY, atom::kC2};
  return key;
}

}  // namespace

std::vector<int64_t> SelectNewAtomRows(const Table& t_pi,
                                       const Table& atoms) {
  // Existing facts plus a second index over `atoms` itself for the
  // within-batch dedup, both pre-sized so large deltas do not rehash
  // mid-merge.
  KeyIndex existing(&t_pi, TPiMergeKey());
  KeyIndex pending = KeyIndex::Empty(&atoms, AtomMergeKey(), atoms.NumRows());
  std::vector<int64_t> selected;
  // Both indexes key on the same atom columns, so one batched hash of the
  // atom key serves the t_pi lookup, the within-batch dedup lookup, and the
  // insert into `pending`.
  size_t hashes[kHashBatchRows];
  for (int64_t base = 0; base < atoms.NumRows(); base += kHashBatchRows) {
    const int64_t end = std::min(base + kHashBatchRows, atoms.NumRows());
    atoms.HashRows(AtomMergeKey(), base, end, hashes);
    for (int64_t i = base; i < end; ++i) existing.PrefetchHash(hashes[i - base]);
    for (int64_t i = base; i < end; ++i) {
      const size_t h = hashes[i - base];
      RowView row = atoms.row(i);
      if (existing.ContainsHashed(h, row, AtomMergeKey())) continue;
      if (pending.ContainsHashed(h, row, AtomMergeKey())) continue;
      pending.AddRowHashed(h, i);
      selected.push_back(i);
    }
  }
  return selected;
}

int64_t AppendAtomRows(Table* t_pi, const Table& atoms,
                       const std::vector<int64_t>& rows, FactId* next_id) {
  t_pi->ReserveRows(static_cast<int64_t>(rows.size()));
  for (int64_t i : rows) {
    RowView row = atoms.row(i);
    t_pi->AppendRow({Value::Int64((*next_id)++), row[atom::kR], row[atom::kX],
                     row[atom::kC1], row[atom::kY], row[atom::kC2],
                     Value::Null()});
  }
  return static_cast<int64_t>(rows.size());
}

int64_t MergeAtomsIntoTPi(Table* t_pi, const Table& atoms, FactId* next_id) {
  return AppendAtomRows(t_pi, atoms, SelectNewAtomRows(*t_pi, atoms),
                        next_id);
}

namespace {

/// Shared implementation of Query 3 for one functionality type. Returns the
/// violating (entity, class) keys.
Result<TablePtr> ViolatorsForType(TablePtr t_pi, TablePtr t_omega,
                                  FunctionalityType type, ExecContext* ctx) {
  const bool type1 = type == FunctionalityType::kTypeI;
  const int64_t arg = type1 ? 1 : 2;
  std::vector<JoinOutputCol> joined = {
      JoinOutputCol::Left(tpi::kR, "R"),
      JoinOutputCol::Left(type1 ? tpi::kX : tpi::kY, "e"),
      JoinOutputCol::Left(type1 ? tpi::kC1 : tpi::kC2, "Ce"),
      JoinOutputCol::Left(type1 ? tpi::kC2 : tpi::kC1, "Cother"),
      JoinOutputCol::Right(tomega::kDeg, "deg"),
  };
  auto plan = Aggregate(
      HashJoin(Scan(std::move(t_pi), "T"),
               Filter(Scan(std::move(t_omega), "FC"),
                      [arg](const RowView& row) {
                        return row[tomega::kArg].i64() == arg;
                      },
                      type1 ? "FC.arg = 1" : "FC.arg = 2"),
               {tpi::kR}, {tomega::kR}, JoinType::kInner, std::move(joined)),
      /*group_cols=*/{0, 1, 2, 3},
      {{AggKind::kCount, 0, "cnt"}, {AggKind::kMin, 4, "mindeg"}},
      /*having=*/[](const RowView& row) {
        return row[4].i64() > row[5].i64();  // COUNT(*) > MIN(deg)
      });
  auto distinct = Distinct(
      Project(std::move(plan),
              {ProjectExpr::Column(1, "e"), ProjectExpr::Column(2, "Ce")}),
      {0, 1});
  return distinct->Execute(ctx);
}

}  // namespace

Result<int64_t> ApplyFunctionalConstraints(Table* t_pi, const Table& t_omega,
                                           ExecContext* ctx) {
  // Non-owning aliases: Scan nodes require shared_ptrs but must not take
  // ownership of the caller's tables.
  TablePtr t_pi_ref(t_pi, [](Table*) {});
  TablePtr t_omega_ref(const_cast<Table*>(&t_omega), [](Table*) {});

  PROBKB_ASSIGN_OR_RETURN(
      TablePtr viol1,
      ViolatorsForType(t_pi_ref, t_omega_ref, FunctionalityType::kTypeI, ctx));
  PROBKB_ASSIGN_OR_RETURN(
      TablePtr viol2, ViolatorsForType(t_pi_ref, t_omega_ref,
                                       FunctionalityType::kTypeII, ctx));
  int64_t deleted = 0;
  deleted += DeleteMatching(t_pi, {tpi::kX, tpi::kC1}, *viol1, {0, 1});
  deleted += DeleteMatching(t_pi, {tpi::kY, tpi::kC2}, *viol2, {0, 1});
  return deleted;
}

Result<TablePtr> FindConstraintViolators(TablePtr t_pi, TablePtr t_omega,
                                         ExecContext* ctx) {
  PROBKB_ASSIGN_OR_RETURN(
      TablePtr viol1,
      ViolatorsForType(t_pi, t_omega, FunctionalityType::kTypeI, ctx));
  PROBKB_ASSIGN_OR_RETURN(
      TablePtr viol2,
      ViolatorsForType(t_pi, t_omega, FunctionalityType::kTypeII, ctx));
  auto out = Table::Make(Schema({{"e", ColumnType::kInt64},
                                 {"Ce", ColumnType::kInt64},
                                 {"arg", ColumnType::kInt64}}));
  for (int64_t i = 0; i < viol1->NumRows(); ++i) {
    RowView row = viol1->row(i);
    out->AppendRow({row[0], row[1], Value::Int64(1)});
  }
  for (int64_t i = 0; i < viol2->NumRows(); ++i) {
    RowView row = viol2->row(i);
    out->AppendRow({row[0], row[1], Value::Int64(2)});
  }
  return out;
}

}  // namespace probkb
