#ifndef PROBKB_GROUNDING_SPILL_SESSION_H_
#define PROBKB_GROUNDING_SPILL_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "obs/stats_registry.h"
#include "relational/spill.h"
#include "util/mem_budget.h"

namespace probkb {

/// \brief Owns one grounding run's out-of-core state: the MemoryBudget,
/// the SpillContext over the spill directory, and the bookkeeping that
/// surfaces spill counters into a StatsRegistry. Shared by Grounder and
/// MppGrounder so both resolve budget/dir/page-size identically.
///
/// Resolution order for the budget: an explicit `mem_budget_bytes >= 0`
/// wins (0 = spilling off); -1 inherits the Tunables knob
/// (--mem-budget / PROBKB_MEM_BUDGET). The directory defaults to
/// `<system temp>/probkb_spill.<pid>` when unset, so concurrent runs on
/// one host never sweep each other's files. Construction prepares the
/// directory and sweeps debris a crashed predecessor left behind;
/// destruction removes every file this run committed.
class SpillSession {
 public:
  SpillSession(int64_t mem_budget_bytes, std::string spill_dir);
  ~SpillSession();

  SpillSession(const SpillSession&) = delete;
  SpillSession& operator=(const SpillSession&) = delete;

  /// \brief Armed: a positive budget resolved and the directory prepared.
  bool enabled() const { return spill_ != nullptr; }

  /// \brief The shared spill context, or nullptr when disabled.
  SpillContext* context() { return spill_.get(); }
  MemoryBudget* budget() { return budget_.get(); }

  /// \brief Transfers the spill counters accumulated since the last flush
  /// into `registry` (spill_partitions, spill_bytes_written,
  /// spill_bytes_read, page_faults_served, ...). Deltas, not absolutes,
  /// so repeated flushes never double-count. No-op on nullptr or when
  /// disabled.
  void FlushCountersInto(StatsRegistry* registry);

 private:
  std::unique_ptr<MemoryBudget> budget_;
  std::unique_ptr<SpillContext> spill_;
  // Last-flushed snapshot, so FlushCountersInto emits deltas.
  int64_t flushed_partitions_ = 0;
  int64_t flushed_pages_ = 0;
  int64_t flushed_written_ = 0;
  int64_t flushed_read_ = 0;
  int64_t flushed_faults_ = 0;
  int64_t flushed_retries_ = 0;
};

}  // namespace probkb

#endif  // PROBKB_GROUNDING_SPILL_SESSION_H_
