#include "grounding/spill_session.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <utility>

#include "engine/tunables.h"
#include "util/logging.h"

namespace probkb {

SpillSession::SpillSession(int64_t mem_budget_bytes, std::string spill_dir) {
  const Tunables tun = GetTunables();
  const int64_t bytes =
      mem_budget_bytes >= 0 ? mem_budget_bytes : tun.mem_budget_bytes;
  if (bytes <= 0) return;  // unlimited memory: pure in-memory execution
  if (spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
    if (ec) tmp = ".";
    spill_dir = (tmp / ("probkb_spill." + std::to_string(::getpid())))
                    .string();
  }
  // Partition buffers are part of the working set the budget governs: a
  // page buffer larger than a slice of the budget would keep everything
  // resident and never spill. Clamp pages to budget/16 (floor 4 KiB).
  const int64_t page_bytes = std::clamp<int64_t>(
      bytes / 16, 4096, tun.spill_page_bytes);
  budget_ = std::make_unique<MemoryBudget>(bytes);
  spill_ = std::make_unique<SpillContext>(std::move(spill_dir), budget_.get(),
                                          page_bytes);
  if (Status st = spill_->Prepare(); !st.ok()) {
    PROBKB_SLOG(Spill, Warning)
        << "spill directory unusable, running without a memory budget: "
        << st.ToString();
    spill_.reset();
    budget_.reset();
    return;
  }
  PROBKB_SLOG(Spill, Info) << "out-of-core execution armed: budget "
                           << FormatByteSize(bytes) << ", spill dir '"
                           << spill_->dir() << "', page "
                           << FormatByteSize(page_bytes);
}

SpillSession::~SpillSession() {
  if (spill_ != nullptr) spill_->RemoveOwnedFiles();
}

void SpillSession::FlushCountersInto(StatsRegistry* registry) {
  if (registry == nullptr || spill_ == nullptr) return;
  SpillStats& s = spill_->stats();
  auto flush = [&](const char* name, std::atomic<int64_t>* counter,
                   int64_t* flushed) {
    const int64_t now = counter->load(std::memory_order_relaxed);
    if (now > *flushed) {
      registry->IncrementCounter(name, now - *flushed);
      *flushed = now;
    }
  };
  flush("spill_partitions", &s.partitions_spilled, &flushed_partitions_);
  flush("spill_pages_written", &s.pages_written, &flushed_pages_);
  flush("spill_bytes_written", &s.bytes_written, &flushed_written_);
  flush("spill_bytes_read", &s.bytes_read, &flushed_read_);
  flush("page_faults_served", &s.page_faults_served, &flushed_faults_);
  flush("spill_checksum_retries", &s.checksum_retries, &flushed_retries_);
}

}  // namespace probkb
