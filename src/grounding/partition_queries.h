#ifndef PROBKB_GROUNDING_PARTITION_QUERIES_H_
#define PROBKB_GROUNDING_PARTITION_QUERIES_H_

#include <vector>

#include "engine/exec_context.h"
#include "engine/plan.h"
#include "kb/relational_model.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// Inferred-atom schema produced by the groundAtoms queries:
/// (R, x, C1, y, C2).
namespace atom {
inline constexpr int kR = 0;
inline constexpr int kX = 1;
inline constexpr int kC1 = 2;
inline constexpr int kY = 3;
inline constexpr int kC2 = 4;
}  // namespace atom

Schema AtomSchema();

/// \brief Join-key pairings of the batch queries for one MLN partition.
///
/// Each partition's groundAtoms query is one or two hash joins between the
/// partition table M_i and the facts table TPi (the paper's Queries 1-1 ..
/// 1-6); groundFactors adds a third join against TPi to resolve the head
/// atom's id (Queries 2-1 .. 2-6). The right-side key orders are chosen to
/// match the distribution keys of the four redistributed materialized views
/// (Section 4.4), so the MPP path gets collocation for free.
struct PartitionSpec {
  int partition = 1;  // 1..6
  int body_length = 1;
  bool q_swapped = false;  // body1 is q(x,z) rather than q(z,x) (M4, M6)
  bool r_swapped = false;  // body2 is r(y,z) rather than r(z,y) (M5, M6)
  std::vector<int> m_keys1;  // M-side keys of the first join
  std::vector<int> t_keys1;  // TPi-side keys of the first join (view T0)
  std::vector<int> j1_keys2;  // J1-side keys of the second join (len 3)
  std::vector<int> t_keys2;   // TPi-side keys of the second join (Tx or Ty)
};

/// \brief Returns the spec for partition `p` in 1..6.
const PartitionSpec& GetPartitionSpec(int p);

/// TPi-side key orders of the four materialized views (Section 4.4):
/// T0 = (R, C1, C2); Tx = (R, C1, x, C2); Ty = (R, C1, C2, y);
/// Txy = (R, C1, x, C2, y).
const std::vector<int>& ViewKeysT0();
const std::vector<int>& ViewKeysTx();
const std::vector<int>& ViewKeysTy();
const std::vector<int>& ViewKeysTxy();

/// Head-join key pairing used by the groundFactors queries: the factor
/// candidate's (R1, C1, xv, C2, yv) against TPi's (R, C1, x, C2, y).
const std::vector<int>& HeadJoinLeftKeys();

/// Output-column builders shared by the single-node and MPP executions of
/// Queries 1-p / 2-p. "J1" is the intermediate of the length-3 queries,
/// schema (R1, R3, C1, C2, C3, w, xv, z, I2); factor candidates have schema
/// (R1, C1, C2, w, xv, yv, I2[, I3]).
std::vector<JoinOutputCol> J1OutputCols(const PartitionSpec& spec);
std::vector<JoinOutputCol> Len2AtomOutputCols(const PartitionSpec& spec);
std::vector<JoinOutputCol> Len3AtomOutputCols(const PartitionSpec& spec);
std::vector<JoinOutputCol> Len2FactorCandidateCols(const PartitionSpec& spec);
std::vector<JoinOutputCol> Len3FactorCandidateCols(const PartitionSpec& spec);
std::vector<JoinOutputCol> FactorHeadOutputCols(bool has_i3);

/// Projection that nulls out I3 in length-2 factors.
std::vector<ProjectExpr> NullI3Projection();

/// \brief Builds (without executing) the Query 1-p plan tree: the one- or
/// two-join pipeline that applies every rule of partition `p` and emits
/// inferred atoms (R, x, C1, y, C2), not yet deduplicated. Exposed
/// separately from GroundAtomsForPartition so the adaptive planner can
/// annotate the tree with cardinality estimates and --explain can render
/// it before/after execution.
PlanNodePtr BuildAtomsPlan(int p, TablePtr m, TablePtr t_probe,
                           TablePtr t_probe2);

/// \brief Query 1-p: applies every rule of partition `p` in one batch and
/// returns the inferred atoms (R, x, C1, y, C2), not yet deduplicated.
/// Equivalent to executing BuildAtomsPlan(p, ...).
///
/// `t_probe` and `t_probe2` are the TPi instances to probe for the first
/// and second body atoms (identical for single-node execution; different
/// materialized views under MPP). For length-2 partitions `t_probe2` is
/// unused.
Result<TablePtr> GroundAtomsForPartition(int p, TablePtr m, TablePtr t_probe,
                                         TablePtr t_probe2, ExecContext* ctx);

/// \brief Query 2-p: applies every rule of partition `p` and returns the
/// ground factors (I1, I2, I3, w). `t_head` resolves head atom ids.
Result<TablePtr> GroundFactorsForPartition(int p, TablePtr m,
                                           TablePtr t_probe,
                                           TablePtr t_probe2, TablePtr t_head,
                                           ExecContext* ctx);

/// \brief Singleton factors (I, NULL, NULL, w) for every fact of TPi with a
/// non-NULL weight (Algorithm 1 line 10).
Result<TablePtr> SingletonFactors(TablePtr t_pi, ExecContext* ctx);

/// \brief Merges `atoms` into `t_pi` with set semantics on
/// (R, x, C1, y, C2); new atoms get ids from `*next_id` and NULL weight.
/// Returns the number of rows added. Equivalent to AppendAtomRows over
/// SelectNewAtomRows.
int64_t MergeAtomsIntoTPi(Table* t_pi, const Table& atoms, FactId* next_id);

/// \brief Dedup phase of the TPi merge: the row indices of `atoms` that are
/// new w.r.t. `t_pi` (and w.r.t. earlier `atoms` rows), in row order. Pure
/// read-only selection — the MPP grounder runs it for all segments in
/// parallel, then assigns fact ids serially in canonical segment order so
/// ids come out bit-identical to the serial engine's.
std::vector<int64_t> SelectNewAtomRows(const Table& t_pi, const Table& atoms);

/// \brief Id-assignment phase of the TPi merge: appends the selected
/// `atoms` rows to `t_pi` with consecutive ids from `*next_id` and NULL
/// weight. Returns the number of rows appended.
int64_t AppendAtomRows(Table* t_pi, const Table& atoms,
                       const std::vector<int64_t>& rows, FactId* next_id);

/// \brief Query 3: deletes from `t_pi` all facts keyed by entities that
/// violate a functional constraint of `t_omega` (both Type I and Type II).
/// Returns the number of facts deleted.
Result<int64_t> ApplyFunctionalConstraints(Table* t_pi, const Table& t_omega,
                                           ExecContext* ctx);

/// \brief Detects the violating entity keys without deleting: returns a
/// table (entity, class, arg) where arg is 1 for Type I (x side) and 2 for
/// Type II (y side). Quality control uses this for ambiguity analysis.
Result<TablePtr> FindConstraintViolators(TablePtr t_pi, TablePtr t_omega,
                                         ExecContext* ctx);

}  // namespace probkb

#endif  // PROBKB_GROUNDING_PARTITION_QUERIES_H_
