#include "grounding/local_grounder.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <set>
#include <unordered_set>

#include "engine/exec_context.h"
#include "grounding/partition_queries.h"

namespace probkb {

namespace {

/// Identity of one deduction for cross-direction dedup: the same factor
/// can be found backward (from its head) and forward (from a body).
/// Duplicates across partitions stay distinct, matching the batch
/// grounder's bag union.
std::array<int64_t, 5> FactorKey(int p, const RowView& f) {
  int64_t w_bits = 0;
  const double w = f[tphi::kW].f64();
  std::memcpy(&w_bits, &w, sizeof(w_bits));
  return {p, f[tphi::kI1].i64(),
          f[tphi::kI2].is_null() ? int64_t{-1} : f[tphi::kI2].i64(),
          f[tphi::kI3].is_null() ? int64_t{-1} : f[tphi::kI3].i64(), w_bits};
}

}  // namespace

std::unordered_map<FactId, int64_t> BuildFactRowIndex(const Table& t_pi) {
  std::unordered_map<FactId, int64_t> out;
  out.reserve(static_cast<size_t>(t_pi.NumRows()));
  for (int64_t i = 0; i < t_pi.NumRows(); ++i) {
    out.emplace(t_pi.row(i)[tpi::kI].i64(), i);
  }
  return out;
}

Result<LocalGrounding> GroundLocalSubgraph(
    TablePtr t_pi, const std::array<TablePtr, kNumRuleStructures>& m,
    const std::unordered_map<FactId, int64_t>& row_of,
    const std::vector<int64_t>& seed_rows,
    const LocalGroundingOptions& opts) {
  LocalGrounding out;
  out.total_atoms = t_pi->NumRows();
  out.t_phi = Table::Make(TPhiSchema());

  std::unordered_set<FactId> visited;
  std::vector<FactId> frontier;
  for (int64_t r : seed_rows) {
    FactId id = t_pi->row(r)[tpi::kI].i64();
    if (visited.insert(id).second) frontier.push_back(id);
  }

  std::set<std::array<int64_t, 5>> seen_factors;
  for (int depth = 0; depth < opts.max_depth && !frontier.empty(); ++depth) {
    // Materialize the frontier in ascending id order so the joins (and
    // therefore the factor rows) come out the same however the BFS
    // happened to discover the atoms.
    std::sort(frontier.begin(), frontier.end());
    auto frontier_table = Table::Make(t_pi->schema());
    for (FactId id : frontier) {
      auto it = row_of.find(id);
      if (it != row_of.end()) frontier_table->AppendRow(t_pi->row(it->second));
    }

    std::vector<FactId> next;
    auto absorb = [&](int p, const Table& factors) {
      for (int64_t i = 0; i < factors.NumRows(); ++i) {
        RowView f = factors.row(i);
        if (!seen_factors.insert(FactorKey(p, f)).second) continue;
        out.t_phi->AppendRow(f);
        for (int col : {tphi::kI1, tphi::kI2, tphi::kI3}) {
          if (f[col].is_null()) continue;
          FactId atom = f[col].i64();
          if (visited.insert(atom).second) next.push_back(atom);
        }
      }
    };
    for (int p = 1; p <= kNumRuleStructures; ++p) {
      TablePtr mp = m[static_cast<size_t>(p - 1)];
      if (mp == nullptr || mp->NumRows() == 0) continue;
      // Backward: factors whose head is a frontier atom.
      {
        ExecContext ec;
        PROBKB_ASSIGN_OR_RETURN(
            TablePtr factors,
            GroundFactorsForPartition(p, mp, t_pi, t_pi, frontier_table,
                                      &ec));
        absorb(p, *factors);
      }
      // Forward: factors with a frontier atom in the first (and, for
      // length-3 partitions, the second) body slot; heads resolve against
      // the full TPi.
      {
        ExecContext ec;
        PROBKB_ASSIGN_OR_RETURN(
            TablePtr factors,
            GroundFactorsForPartition(p, mp, frontier_table, t_pi, t_pi,
                                      &ec));
        absorb(p, *factors);
      }
      if (GetPartitionSpec(p).body_length == 2) {
        ExecContext ec;
        PROBKB_ASSIGN_OR_RETURN(
            TablePtr factors,
            GroundFactorsForPartition(p, mp, t_pi, frontier_table, t_pi,
                                      &ec));
        absorb(p, *factors);
      }
    }
    out.depth_reached = depth + 1;
    frontier = std::move(next);
    // The atom budget cuts *expansion* only, and only at a round boundary:
    // every atom a collected factor references is already in `visited`, so
    // the factor set stays closed over sub_t_pi.
    if (opts.max_atoms > 0 &&
        static_cast<int64_t>(visited.size()) >= opts.max_atoms) {
      break;
    }
  }
  out.truncated = !frontier.empty();

  std::vector<FactId> ids(visited.begin(), visited.end());
  std::sort(ids.begin(), ids.end());
  out.sub_t_pi = Table::Make(t_pi->schema());
  for (FactId id : ids) {
    auto it = row_of.find(id);
    if (it != row_of.end()) out.sub_t_pi->AppendRow(t_pi->row(it->second));
  }
  out.grounded_atoms = out.sub_t_pi->NumRows();

  {
    ExecContext ec;
    PROBKB_ASSIGN_OR_RETURN(TablePtr singletons,
                            SingletonFactors(out.sub_t_pi, &ec));
    out.t_phi->AppendTable(*singletons);
  }
  return out;
}

}  // namespace probkb
