#ifndef PROBKB_GROUNDING_MPP_GROUNDER_H_
#define PROBKB_GROUNDING_MPP_GROUNDER_H_

#include <array>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "grounding/grounder.h"
#include "mpp/mpp_ops.h"

namespace probkb {

/// \brief MPP execution modes evaluated in the paper:
/// kViews is ProbKB-p (redistributed materialized views, Section 4.4);
/// kNoViews is ProbKB-pn (plain Greenplum plans that must broadcast
/// intermediate join results, Figure 4 right).
enum class MppMode { kNoViews, kViews };

/// \brief ProbKB grounder over the shared-nothing simulator.
///
/// TPi's canonical copy is hash-distributed on (R, C1, C2) — this doubles
/// as the paper's T0 view. Under kViews three more replicates are kept,
/// distributed by (R, C1, x, C2), (R, C1, C2, y) and (R, C1, x, C2, y), so
/// every grounding join finds a collocated TPi instance and only the small
/// M_i / intermediate side moves (Example 5).
///
/// With a FaultInjector the simulator's motions detect and recover
/// injected segment failures (see MppContext); the grounder adds the
/// layer above: iteration-level checkpoints (options.checkpoint_dir) and
/// ResumeFrom(), so a run aborted by a deadline or an unrecoverable
/// motion restarts from the last completed iteration instead of scratch.
class MppGrounder {
 public:
  MppGrounder(const RelationalKB& rkb, int num_segments, MppMode mode,
              GroundingOptions options, CostParams cost_params = {},
              FaultInjector* injector = nullptr, RetryPolicy retry = {});

  /// \brief Algorithm 1 lines 2-7 on the simulator.
  Status GroundAtoms();

  /// \brief One iteration; returns new atoms merged.
  Result<int64_t> GroundAtomsIteration();

  /// \brief Algorithm 1 lines 8-10; the factor table is gathered to the
  /// coordinator.
  Result<TablePtr> GroundFactors();

  /// \brief Query 3 on the simulator; keeps the views consistent.
  Result<int64_t> ApplyConstraints();

  /// \brief Restores TPi (and its views), the fact-id counter, the bans,
  /// and the iteration count from a checkpoint; call before GroundAtoms().
  Status ResumeFrom(const std::string& checkpoint_dir);

  /// \brief Gathered copy of the current TPi (for verification).
  TablePtr GatherTPi() const;

  const GroundingStats& stats() const { return stats_; }
  const MppCost& cost() const { return ctx_.cost(); }
  MppMode mode() const { return mode_; }
  int num_segments() const { return ctx_.num_segments(); }

  /// \brief EXPLAIN text of the distributed statements since the last
  /// iteration boundary: one est/obs cardinality line per join (estimates
  /// are the previous iteration's observation for the same statement, or
  /// the input-size cold-start heuristic), followed by the planner's
  /// motion-decision log (chosen motion + the costed alternatives). Stable
  /// text — no timings — so goldens can pin it.
  std::string ExplainPlans() const;

  /// \brief The grounder-owned adaptive planner (attached to the context;
  /// kAuto joins consult it). Exposed for tests.
  const AdaptivePlanner& planner() const { return planner_; }

  /// \brief Forces every grounding join's motion policy instead of the
  /// cost-based default — the paper's static configurations (e.g.
  /// ProbKB-pn's broadcast plans) and plan-equivalence tests. Whatever the
  /// policy, results are bit-identical: motions only change which route
  /// tuples take, and the TPi merge assigns fact ids in a
  /// route-independent canonical order.
  void set_motion_policy(MotionPolicy policy) { motion_policy_ = policy; }

  /// \brief Attaches an execution-stats registry (not owned; may be
  /// nullptr): the context reports motions and compute phases, and the
  /// fixpoint reports per-iteration per-partition delta sizes and
  /// simulated join times. Purely observational.
  void set_stats_registry(StatsRegistry* registry) {
    obs_ = registry;
    ctx_.set_stats_registry(registry);
  }

  /// \brief Attaches a spawned process runtime (not owned; may be
  /// nullptr): motions then ship partitions through real worker processes
  /// (see MppContext::set_runtime). Drops the thread pool — forking from a
  /// multi-threaded orchestrator is unsafe, and in process mode the
  /// parallelism lives in the workers, not the supervisor.
  void AttachRuntime(ProcessRuntime* runtime) {
    ctx_.set_thread_pool(nullptr);
    pool_.reset();
    ctx_.set_runtime(runtime);
  }

 private:
  /// Runs Query 1-p distributed; returns inferred atoms (distribution
  /// Random).
  Result<DistributedTablePtr> GroundAtomsPartition(int p);
  /// Runs Query 2-p distributed.
  Result<DistributedTablePtr> GroundFactorsPartition(int p);
  /// Merges an atom table into the distributed TPi; assigns ids; refreshes
  /// the views with the delta.
  Result<int64_t> MergeAtoms(const DistributedTable& atoms);
  /// Picks the TPi instance collocated with `t_keys` (a view under kViews;
  /// the canonical copy otherwise).
  DistributedTablePtr ProbeFor(const std::vector<int>& t_keys) const;
  /// Records a statement's estimated/observed cardinality into the planner
  /// history and the explain log.
  void ObserveStatement(const std::string& label, int64_t estimate,
                        int64_t observed);
  /// Writes an iteration checkpoint when options call for one.
  Status MaybeCheckpoint();
  /// Snapshots the pool's worker counters into the registry (no-op without
  /// a registry or a pool).
  void SnapshotWorkerStats();

  mutable MppContext ctx_;
  MppMode mode_;
  GroundingOptions options_;
  GroundingStats stats_;
  StatsRegistry* obs_ = nullptr;

  /// Cost-based motion planner fed by per-statement observations; attached
  /// to ctx_ so every MotionPolicy::kAuto join consults it. Decisions are
  /// pure functions of the actual input sizes and placements (logical row
  /// counts — identical across thread counts and runtimes), so plan choice
  /// never breaks bit-identity.
  AdaptivePlanner planner_;
  /// Per-statement est/obs lines since the last iteration boundary (see
  /// ExplainPlans).
  std::vector<std::string> explain_lines_;
  /// Motion policy stamped on every grounding join spec (see
  /// set_motion_policy).
  MotionPolicy motion_policy_ = MotionPolicy::kAuto;

  /// Executor for per-segment fan-out (options_.num_threads; see
  /// GroundingOptions). Null when resolved to one thread — the exact
  /// serial path. Attached to ctx_, which hands it to motions and
  /// per-segment operators; results always merge in canonical segment
  /// order, so thread count never changes any output.
  std::unique_ptr<ThreadPool> pool_;

  /// Out-of-core state shared by every segment's ExecContext via
  /// MppContext::set_spill; disabled when no memory budget resolves.
  std::unique_ptr<SpillSession> spill_session_;

  /// Constraint bans, mirroring the single-node grounder: entities deleted
  /// by Query 3 must not be re-derived, or the fixpoint never converges.
  std::unordered_set<uint64_t> banned_x_keys_;
  std::unordered_set<uint64_t> banned_y_keys_;

  std::array<TablePtr, kNumRuleStructures> m_;
  TablePtr t_omega_;
  FactId next_fact_id_;

  DistributedTablePtr t_pi_;                 // hash (R, C1, C2) — the T0 view
  DistributedTablePtr view_tx_;              // hash (R, C1, x, C2)
  DistributedTablePtr view_ty_;              // hash (R, C1, C2, y)
  DistributedTablePtr view_txy_;             // hash (R, C1, x, C2, y)
};

}  // namespace probkb

#endif  // PROBKB_GROUNDING_MPP_GROUNDER_H_
