#ifndef PROBKB_GROUNDING_GROUNDER_H_
#define PROBKB_GROUNDING_GROUNDER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/planner.h"
#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "grounding/partition_queries.h"
#include "grounding/spill_session.h"
#include "kb/relational_model.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace probkb {

/// \brief Fixpoint evaluation strategies.
///
/// kNaive re-applies every rule to the whole TPi each iteration — exactly
/// the paper's Algorithm 1 (its SQL re-joins the full facts table).
/// kSemiNaive joins only against the atoms added in the previous iteration
/// (for length-3 rules: delta x full plus full x delta), a classic Datalog
/// optimization the paper leaves on the table; the ablation bench
/// quantifies what it would have bought.
enum class EvaluationMode { kNaive, kSemiNaive };

/// \brief Knobs of the grounding algorithm (Algorithm 1).
struct GroundingOptions {
  /// Fixpoint cap; the paper reports 15 iterations ground most facts.
  int max_iterations = 15;
  EvaluationMode evaluation = EvaluationMode::kNaive;
  /// Run Query 3 after each iteration (Algorithm 1 line 6). The paper's
  /// Section 6.1 performance runs disable this and apply Query 3 once
  /// before inference instead.
  bool apply_constraints_each_iteration = false;
  /// Modelled cost per issued SQL statement (parse / optimize / round
  /// trip). Charged identically to ProbKB and Tuffy-T; see DESIGN.md. Set
  /// to 0 to report raw engine time only.
  double per_statement_seconds = 0.0;
  /// Iteration-level checkpointing: when non-empty, a complete snapshot of
  /// the fixpoint state lands here after every `checkpoint_every`-th
  /// iteration; ResumeFrom() restarts a grounder from it.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  /// Grounding deadline in seconds; 0 = unlimited. The single-node
  /// grounder measures wall-clock, the MPP grounder simulated time; on
  /// expiry GroundAtoms returns kDeadlineExceeded with the last completed
  /// iteration checkpointed (when checkpointing is on).
  double deadline_seconds = 0.0;
  /// Memory proxy: kResourceExhausted once a single statement's operators
  /// have produced this many rows. 0 = unlimited.
  int64_t max_rows_per_statement = 0;
  /// Executor threads for per-segment / morsel parallelism. 0 = auto
  /// (PROBKB_THREADS, else hardware_concurrency); 1 = the exact serial
  /// path. Any setting produces bit-identical outputs — see DESIGN.md
  /// "Threading model".
  int num_threads = 0;
  /// Transient-memory budget for out-of-core execution: -1 inherits the
  /// Tunables knob (--mem-budget / PROBKB_MEM_BUDGET), 0 disables
  /// spilling, > 0 is an explicit byte limit. Like num_threads, any
  /// setting produces bit-identical outputs — the budget only decides
  /// where bytes live (DESIGN.md "Out-of-core").
  int64_t mem_budget_bytes = -1;
  /// Spill directory; empty resolves to <system temp>/probkb_spill.<pid>.
  std::string spill_dir;
};

/// \brief Execution record of one grounding run.
struct GroundingStats {
  int iterations = 0;
  int64_t initial_atoms = 0;
  int64_t final_atoms = 0;
  int64_t factors = 0;
  int64_t statements = 0;
  int64_t constraint_deleted = 0;
  std::vector<double> iteration_seconds;  // measured, per iteration
  std::vector<int64_t> iteration_new_atoms;
  double ground_atoms_seconds = 0.0;    // measured total, all iterations
  double ground_factors_seconds = 0.0;  // measured

  /// Measured plus modelled per-statement overhead.
  double ModeledSeconds(double per_statement_seconds) const {
    return ground_atoms_seconds + ground_factors_seconds +
           static_cast<double>(statements) * per_statement_seconds;
  }

  std::string ToString() const;
};

/// \brief Single-node ProbKB grounder: applies all rules of each MLN
/// partition in one batch query (6 queries per iteration regardless of the
/// number of rules), per Section 4.3.
class Grounder {
 public:
  /// `rkb` must outlive the grounder; TPi is expanded in place.
  Grounder(RelationalKB* rkb, GroundingOptions options);

  /// \brief Runs groundAtoms to the transitive closure (or the iteration
  /// cap): Algorithm 1 lines 2-7.
  Status GroundAtoms();

  /// \brief One naive-evaluation iteration over all partitions; returns
  /// the number of new atoms merged into TPi.
  Result<int64_t> GroundAtomsIteration();

  /// \brief Algorithm 1 lines 8-10: builds the factor table TPhi
  /// (I1, I2, I3, w), including singleton factors.
  Result<TablePtr> GroundFactors();

  /// \brief Query 3 over the current TPi. Returns facts deleted.
  Result<int64_t> ApplyConstraints();

  /// \brief Restores the fixpoint state (TPi, fact-id counter, bans,
  /// iteration count) from a checkpoint written by a previous run; call
  /// before GroundAtoms() to continue where that run stopped.
  Status ResumeFrom(const std::string& checkpoint_dir);

  /// \brief Threads a fault injector into every statement's ExecContext
  /// (simulated operator memory/deadline trips). Not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// \brief Attaches an execution-stats registry (not owned; may be
  /// nullptr). Every statement's operators then report into it under an
  /// "iter<i>/M<p>" / "query2/..." / "query3" scope, the fixpoint reports
  /// per-iteration per-partition delta sizes and join times, and the pool's
  /// worker counters are snapshotted at the end of each phase. Purely
  /// observational — outputs are bit-identical with or without it.
  void set_stats_registry(StatsRegistry* registry) { obs_ = registry; }

  const GroundingStats& stats() const { return stats_; }
  const RelationalKB& rkb() const { return *rkb_; }

  /// \brief EXPLAIN text of the last iteration's Query 1 plans: one tree
  /// per partition with estimated (cold start: heuristic; warm: previous
  /// iteration's observation for the same statement) and observed
  /// cardinalities. Stable text — no timings — so goldens can pin it.
  std::string ExplainPlans() const;

  /// \brief Entities banned by constraint application, as (entity, class)
  /// keys on the x side (Type I) and y side (Type II). Atoms keyed by a
  /// banned entity are never merged back into TPi — without this, a
  /// violating fact deleted by Query 3 would be re-derived by the same
  /// rule in the next iteration and grounding would never converge.
  const std::vector<std::pair<EntityId, ClassId>>& banned_x() const {
    return banned_x_;
  }
  const std::vector<std::pair<EntityId, ClassId>>& banned_y() const {
    return banned_y_;
  }

 private:
  bool IsBanned(const RowView& atom) const;
  /// Runs queries 1-1..1-6 against the given probe tables and collects the
  /// (not yet merged) inferred-atom tables.
  Status CollectInferredAtoms(TablePtr probe1, TablePtr probe2,
                              bool skip_length2, std::vector<TablePtr>* out);
  /// Arms a statement's ExecContext with the remaining deadline, the row
  /// budget, and the fault injector; kDeadlineExceeded if none remains.
  Status ArmStatement(ExecContext* ec);
  /// Writes an iteration checkpoint when options call for one.
  Status MaybeCheckpoint();

  /// Snapshots the pool's worker counters into the registry (no-op without
  /// a registry or a pool).
  void SnapshotWorkerStats();

  RelationalKB* rkb_;
  StatsRegistry* obs_ = nullptr;
  /// Morsel-parallel executor for the statement plans; null on the serial
  /// path (options_.num_threads resolves to 1).
  std::unique_ptr<ThreadPool> pool_;
  /// Out-of-core state (budget + spill context); disabled when no memory
  /// budget resolves. Statements get it via ExecContext::set_spill.
  std::unique_ptr<SpillSession> spill_session_;
  /// Semi-naive state: TPi row count at the start of the last iteration's
  /// merge (rows from here on are the delta).
  int64_t delta_start_ = 0;
  GroundingOptions options_;
  GroundingStats stats_;
  FaultInjector* injector_ = nullptr;
  /// Operator numbering shared by every statement's ExecContext, so a
  /// scheduled operator-budget fault addresses one global execution point
  /// of the run instead of "operator k of every statement".
  int64_t op_counter_ = 0;
  /// Wall-clock since construction; the deadline budget counts from here.
  Timer lifetime_timer_;
  /// Cardinality-observation history: statement label -> last observed
  /// output rows. Single-node runs have no motions to plan, so only the
  /// feedback half of the planner is used (estimates for --explain).
  AdaptivePlanner planner_{MotionCostModel{}};
  /// Rendered Query 1 plan trees of the last iteration (see ExplainPlans).
  std::vector<std::string> explain_lines_;
  std::vector<std::pair<EntityId, ClassId>> banned_x_;
  std::vector<std::pair<EntityId, ClassId>> banned_y_;
  std::unordered_set<uint64_t> banned_x_keys_;
  std::unordered_set<uint64_t> banned_y_keys_;
};

}  // namespace probkb

#endif  // PROBKB_GROUNDING_GROUNDER_H_
