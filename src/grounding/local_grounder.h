#ifndef PROBKB_GROUNDING_LOCAL_GROUNDER_H_
#define PROBKB_GROUNDING_LOCAL_GROUNDER_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kb/relational_model.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Bounds of the backward-chained proof neighborhood.
struct LocalGroundingOptions {
  /// BFS depth: how many rule applications to follow backward from the
  /// query atoms. Depth 0 grounds only the seed atoms' priors.
  int max_depth = 3;
  /// Stop expanding (but still close over already-collected factor bodies)
  /// once the visited-atom count exceeds this. 0 means unbounded.
  int64_t max_atoms = 65536;
};

/// \brief The query's local ground subgraph: a sub-TPi plus the factors
/// among its atoms, suitable for FactorGraph::FromTables.
struct LocalGrounding {
  /// Visited facts (ascending fact id — deterministic regardless of
  /// expansion order), TPi schema.
  TablePtr sub_t_pi;
  /// Rule factors with heads in the neighborhood plus singleton priors,
  /// TPhi schema.
  TablePtr t_phi;
  /// == sub_t_pi->NumRows(); reported against `total_atoms` for the
  /// locality ("order of magnitude below full grounding") check.
  int64_t grounded_atoms = 0;
  int64_t total_atoms = 0;
  int depth_reached = 0;
  /// True when max_depth/max_atoms cut expansion before closure: boundary
  /// atoms keep their priors but lose their own derivations, so marginals
  /// are an approximation whose error decays with depth.
  bool truncated = false;
};

/// \brief Maps fact id -> TPi row index. Built once per published epoch
/// and shared across the epoch's queries.
std::unordered_map<FactId, int64_t> BuildFactRowIndex(const Table& t_pi);

/// \brief Grounds the bounded factor-graph neighborhood of `seed_rows`
/// (TPi row indices). Each BFS round materializes the frontier as a
/// TPi-shaped table and runs the per-partition groundFactors query
/// (Query 2-p) with the frontier in each slot in turn: as the
/// head-resolution table (factors *deriving* frontier atoms — backward
/// chaining) and as each body probe (factors *using* frontier atoms —
/// forward incidence). Both directions matter for marginals: an atom's
/// probability is shaped by its derivations and by the rules it feeds, so
/// expanding only the ancestor cone would misestimate even at full depth.
/// Every atom a collected factor references joins the subgraph (the factor
/// set stays closed over sub_t_pi); unvisited ones become the next
/// frontier. A factor can be rediscovered from different endpoints, so
/// factors are deduplicated on (partition, I1, I2, I3, w).
///
/// `t_pi` and `m` must not be mutated during the call — the serve path
/// passes tables from a pinned snapshot, which guarantees it.
Result<LocalGrounding> GroundLocalSubgraph(
    TablePtr t_pi, const std::array<TablePtr, kNumRuleStructures>& m,
    const std::unordered_map<FactId, int64_t>& row_of,
    const std::vector<int64_t>& seed_rows, const LocalGroundingOptions& opts);

}  // namespace probkb

#endif  // PROBKB_GROUNDING_LOCAL_GROUNDER_H_
