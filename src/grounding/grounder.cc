#include "grounding/grounder.h"

#include "engine/ops.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

#include "util/strings.h"
#include "util/timer.h"

namespace probkb {

namespace {

uint64_t BanKey(int64_t entity, int64_t cls) {
  PROBKB_DCHECK(cls >= 0 && cls < (1 << 20));
  return (static_cast<uint64_t>(entity) << 20) | static_cast<uint64_t>(cls);
}

}  // namespace

std::string GroundingStats::ToString() const {
  std::string out = StrFormat(
      "grounding: %d iterations, atoms %lld -> %lld, %lld factors, "
      "%lld statements, atoms %.3fs, factors %.3fs\n",
      iterations, static_cast<long long>(initial_atoms),
      static_cast<long long>(final_atoms), static_cast<long long>(factors),
      static_cast<long long>(statements), ground_atoms_seconds,
      ground_factors_seconds);
  for (size_t i = 0; i < iteration_seconds.size(); ++i) {
    out += StrFormat("  iter %zu: %.3fs, +%lld atoms\n", i + 1,
                     iteration_seconds[i],
                     static_cast<long long>(iteration_new_atoms[i]));
  }
  return out;
}

Grounder::Grounder(RelationalKB* rkb, GroundingOptions options)
    : rkb_(rkb), options_(options) {
  stats_.initial_atoms = rkb_->t_pi->NumRows();
  const int threads = ThreadPool::ResolveThreads(options_.num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  spill_session_ = std::make_unique<SpillSession>(options_.mem_budget_bytes,
                                                  options_.spill_dir);
}

std::string Grounder::ExplainPlans() const {
  std::string out;
  for (const std::string& tree : explain_lines_) out += tree;
  return out;
}

Status Grounder::ArmStatement(ExecContext* ec) {
  ec->set_fault_injector(injector_);
  ec->set_shared_op_counter(&op_counter_);
  ec->set_thread_pool(pool_.get());
  ec->set_spill(spill_session_->context());
  if (options_.deadline_seconds > 0 || options_.max_rows_per_statement > 0) {
    ExecBudget budget;
    budget.max_produced_rows = options_.max_rows_per_statement;
    if (options_.deadline_seconds > 0) {
      budget.deadline_seconds =
          options_.deadline_seconds - lifetime_timer_.Seconds();
      if (budget.deadline_seconds <= 0) {
        return Status::DeadlineExceeded(StrFormat(
            "grounding exceeded its %.3fs deadline",
            options_.deadline_seconds));
      }
    }
    ec->set_budget(budget);
  }
  return Status::OK();
}

Status Grounder::CollectInferredAtoms(TablePtr probe1, TablePtr probe2,
                                      bool skip_length2,
                                      std::vector<TablePtr>* out) {
  const int iteration = stats_.iterations + 1;
  for (int p = 1; p <= kNumRuleStructures; ++p) {
    if (skip_length2 && GetPartitionSpec(p).body_length == 1) continue;
    TablePtr m = rkb_->m[static_cast<size_t>(p - 1)];
    if (m->NumRows() == 0) continue;
    ExecContext ec;
    PROBKB_RETURN_NOT_OK(ArmStatement(&ec));
    if (obs_ != nullptr) {
      ec.set_stats_sink(obs_, StrFormat("iter%d/M%d", iteration, p));
    }
    Timer join_timer;
    const std::string stmt = StrFormat("Query1-%d", p);
    PlanNodePtr plan = BuildAtomsPlan(p, m, probe1, probe2);
    // Warm estimate: the previous iteration's observed output for this
    // statement; cold start falls back to the tree's structural heuristic.
    AnnotatePlanEstimates(plan.get(), &planner_, stmt);
    PROBKB_ASSIGN_OR_RETURN(TablePtr atoms, plan->Execute(&ec));
    planner_.ObserveRows(stmt, atoms->NumRows());
    explain_lines_.push_back(StrFormat("%s (iter %d):\n", stmt.c_str(),
                                       iteration) +
                             plan->Explain(1));
    if (obs_ != nullptr) {
      // Semi-naive's second probe order lands in the same (iteration,
      // partition) cell; the registry accumulates both passes.
      obs_->RecordPartitionIteration(iteration, p, atoms->NumRows(),
                                     join_timer.Seconds());
    }
    out->push_back(std::move(atoms));
    ++stats_.statements;
  }
  return Status::OK();
}

Result<int64_t> Grounder::GroundAtomsIteration() {
  if (options_.evaluation == EvaluationMode::kSemiNaive &&
      options_.apply_constraints_each_iteration) {
    return Status::InvalidArgument(
        "semi-naive evaluation assumes no mid-run deletions; disable "
        "apply_constraints_each_iteration");
  }
  Timer timer;
  TraceSpan span(Tracer::Global(), "iteration", "grounding",
                 stats_.iterations + 1);
  explain_lines_.clear();
  // Apply every partition against the *same* TPi snapshot, then merge: this
  // matches Algorithm 1, which unions all T_j after the partition loop.
  std::vector<TablePtr> inferred;
  if (options_.evaluation == EvaluationMode::kNaive ||
      stats_.iterations == 0) {
    PROBKB_RETURN_NOT_OK(
        CollectInferredAtoms(rkb_->t_pi, rkb_->t_pi, false, &inferred));
  } else {
    // Semi-naive: a new derivation must use at least one delta atom.
    // Queries run as (delta, full) and (full, delta); the overlap
    // (delta, delta) is produced twice and removed by the set-merge.
    auto delta = Table::Make(TPiSchema());
    delta->AppendRows(*rkb_->t_pi, delta_start_, rkb_->t_pi->NumRows());
    PROBKB_RETURN_NOT_OK(
        CollectInferredAtoms(delta, rkb_->t_pi, false, &inferred));
    // Length-2 rules have one body atom, so the delta pass above already
    // covers them; length-3 rules also need (full, delta). Both probe
    // orders of a partition would be one SQL statement (a UNION ALL), so
    // the second pass is not counted again.
    int64_t statements_before = stats_.statements;
    PROBKB_RETURN_NOT_OK(
        CollectInferredAtoms(rkb_->t_pi, delta, true, &inferred));
    stats_.statements = statements_before;
  }
  delta_start_ = rkb_->t_pi->NumRows();
  int64_t added = 0;
  for (const TablePtr& atoms : inferred) {
    if (!banned_x_keys_.empty() || !banned_y_keys_.empty()) {
      DeleteWhere(atoms.get(),
                  [this](const RowView& row) { return IsBanned(row); });
    }
    added +=
        MergeAtomsIntoTPi(rkb_->t_pi.get(), *atoms, &rkb_->next_fact_id);
  }
  if (options_.apply_constraints_each_iteration) {
    PROBKB_ASSIGN_OR_RETURN(int64_t deleted, ApplyConstraints());
    stats_.constraint_deleted += deleted;
  }
  double secs = timer.Seconds();
  stats_.iteration_seconds.push_back(secs);
  stats_.iteration_new_atoms.push_back(added);
  stats_.ground_atoms_seconds += secs;
  ++stats_.iterations;
  if (obs_ != nullptr) obs_->RecordLatency("grounding_iteration", secs);
  span.set_values(stats_.iterations, added, rkb_->t_pi->NumRows());
  FlightRecorder::Global()->Record(FrEvent::kIterationBoundary, "grounder",
                                   stats_.iterations, added,
                                   rkb_->t_pi->NumRows());
  return added;
}

Status Grounder::MaybeCheckpoint() {
  if (options_.checkpoint_dir.empty()) return Status::OK();
  const int every = options_.checkpoint_every > 0 ? options_.checkpoint_every
                                                  : 1;
  if (stats_.iterations % every != 0) return Status::OK();
  GroundingCheckpoint cp;
  cp.iteration = stats_.iterations;
  cp.next_fact_id = rkb_->next_fact_id;
  cp.delta_start = delta_start_;
  cp.t_pi = rkb_->t_pi;
  cp.banned_x = Table::Make(BannedEntitySchema());
  cp.banned_y = Table::Make(BannedEntitySchema());
  for (const auto& [e, c] : banned_x_) {
    cp.banned_x->AppendRow({Value::Int64(e), Value::Int64(c)});
  }
  for (const auto& [e, c] : banned_y_) {
    cp.banned_y->AppendRow({Value::Int64(e), Value::Int64(c)});
  }
  return WriteGroundingCheckpoint(cp, options_.checkpoint_dir);
}

Status Grounder::ResumeFrom(const std::string& checkpoint_dir) {
  PROBKB_ASSIGN_OR_RETURN(GroundingCheckpoint cp,
                          ReadGroundingCheckpoint(TPiSchema(),
                                                  checkpoint_dir));
  *rkb_->t_pi = std::move(*cp.t_pi);
  rkb_->next_fact_id = cp.next_fact_id;
  delta_start_ = cp.delta_start;
  stats_.iterations = cp.iteration;
  banned_x_.clear();
  banned_y_.clear();
  banned_x_keys_.clear();
  banned_y_keys_.clear();
  for (int64_t i = 0; i < cp.banned_x->NumRows(); ++i) {
    RowView row = cp.banned_x->row(i);
    banned_x_.emplace_back(row[0].i64(), row[1].i64());
    banned_x_keys_.insert(BanKey(row[0].i64(), row[1].i64()));
  }
  for (int64_t i = 0; i < cp.banned_y->NumRows(); ++i) {
    RowView row = cp.banned_y->row(i);
    banned_y_.emplace_back(row[0].i64(), row[1].i64());
    banned_y_keys_.insert(BanKey(row[0].i64(), row[1].i64()));
  }
  return Status::OK();
}

Status Grounder::GroundAtoms() {
  // `stats_.iterations` starts above zero after ResumeFrom, so a resumed
  // run honours the same iteration cap as an uninterrupted one.
  while (stats_.iterations < options_.max_iterations) {
    PROBKB_ASSIGN_OR_RETURN(int64_t added, GroundAtomsIteration());
    PROBKB_RETURN_NOT_OK(MaybeCheckpoint());
    if (added == 0) break;
    if (options_.deadline_seconds > 0 &&
        lifetime_timer_.Seconds() > options_.deadline_seconds) {
      stats_.final_atoms = rkb_->t_pi->NumRows();
      return Status::DeadlineExceeded(StrFormat(
          "grounding exceeded its %.3fs deadline after iteration %d",
          options_.deadline_seconds, stats_.iterations));
    }
  }
  stats_.final_atoms = rkb_->t_pi->NumRows();
  SnapshotWorkerStats();
  return Status::OK();
}

void Grounder::SnapshotWorkerStats() {
  // Phase boundary: surface spill-layer counter deltas alongside the
  // worker totals (no-op without a registry or a budget).
  spill_session_->FlushCountersInto(obs_);
  if (obs_ != nullptr && pool_ != nullptr) {
    const std::vector<PoolWorkerStats> workers = pool_->WorkerStats();
    std::vector<WorkerTotals> totals;
    totals.reserve(workers.size());
    for (const PoolWorkerStats& w : workers) {
      WorkerTotals t;
      t.worker = w.worker;
      t.tasks_run = w.tasks_run;
      t.steals = w.steals;
      t.busy_seconds = w.busy_seconds;
      t.idle_seconds = w.idle_seconds;
      totals.push_back(t);
    }
    obs_->RecordWorkers(totals);
  }
}

Result<TablePtr> Grounder::GroundFactors() {
  Timer timer;
  TraceSpan span(Tracer::Global(), "ground_factors", "grounding");
  auto t_phi = Table::Make(TPhiSchema());
  for (int p = 1; p <= kNumRuleStructures; ++p) {
    TablePtr m = rkb_->m[static_cast<size_t>(p - 1)];
    if (m->NumRows() == 0) continue;
    ExecContext ec;
    PROBKB_RETURN_NOT_OK(ArmStatement(&ec));
    if (obs_ != nullptr) {
      ec.set_stats_sink(obs_, StrFormat("query2/M%d", p));
    }
    PROBKB_ASSIGN_OR_RETURN(
        TablePtr factors,
        GroundFactorsForPartition(p, m, rkb_->t_pi, rkb_->t_pi, rkb_->t_pi,
                                  &ec));
    // Bag union: Proposition 1 guarantees no duplicates within a
    // partition; duplicates across partitions are distinct deductions.
    t_phi->AppendTable(*factors);
    ++stats_.statements;
  }
  {
    ExecContext ec;
    PROBKB_RETURN_NOT_OK(ArmStatement(&ec));
    if (obs_ != nullptr) ec.set_stats_sink(obs_, "query2/singletons");
    PROBKB_ASSIGN_OR_RETURN(TablePtr singletons,
                            SingletonFactors(rkb_->t_pi, &ec));
    t_phi->AppendTable(*singletons);
    ++stats_.statements;
  }
  stats_.ground_factors_seconds += timer.Seconds();
  stats_.factors = t_phi->NumRows();
  stats_.final_atoms = rkb_->t_pi->NumRows();
  SnapshotWorkerStats();
  return t_phi;
}

bool Grounder::IsBanned(const RowView& atom) const {
  return banned_x_keys_.count(
             BanKey(atom[atom::kX].i64(), atom[atom::kC1].i64())) > 0 ||
         banned_y_keys_.count(
             BanKey(atom[atom::kY].i64(), atom[atom::kC2].i64())) > 0;
}

Result<int64_t> Grounder::ApplyConstraints() {
  ExecContext ec;
  PROBKB_RETURN_NOT_OK(ArmStatement(&ec));
  if (obs_ != nullptr) ec.set_stats_sink(obs_, "query3");
  ++stats_.statements;
  PROBKB_ASSIGN_OR_RETURN(
      TablePtr violators,
      FindConstraintViolators(rkb_->t_pi, rkb_->t_omega, &ec));
  // Record permanent bans so deleted entities are not re-derived.
  auto viol_x = Table::Make(violators->schema());
  auto viol_y = Table::Make(violators->schema());
  for (int64_t i = 0; i < violators->NumRows(); ++i) {
    RowView row = violators->row(i);
    EntityId e = row[0].i64();
    ClassId c = row[1].i64();
    if (row[2].i64() == 1) {
      if (banned_x_keys_.insert(BanKey(e, c)).second) {
        banned_x_.emplace_back(e, c);
      }
      viol_x->AppendRow(row);
    } else {
      if (banned_y_keys_.insert(BanKey(e, c)).second) {
        banned_y_.emplace_back(e, c);
      }
      viol_y->AppendRow(row);
    }
  }
  int64_t deleted = 0;
  deleted += DeleteMatching(rkb_->t_pi.get(), {tpi::kX, tpi::kC1}, *viol_x,
                            {0, 1});
  deleted += DeleteMatching(rkb_->t_pi.get(), {tpi::kY, tpi::kC2}, *viol_y,
                            {0, 1});
  return deleted;
}

}  // namespace probkb
