#include "tuffy/tuffy_grounder.h"

#include "engine/ops.h"
#include "engine/plan.h"
#include "util/strings.h"
#include "util/timer.h"

namespace probkb {

namespace {

// Atom output of a per-rule query: (x, C1, y, C2); the head relation is
// implicit (the rule names it).
constexpr int kAtomX = 0;
constexpr int kAtomC1 = 1;
constexpr int kAtomY = 2;
constexpr int kAtomC2 = 3;

/// Inserts `atoms` (x, C1, y, C2) into the head predicate table with set
/// semantics; new facts get NULL weight and fresh ids.
int64_t MergeAtomsIntoPredicate(Table* t_head, const Table& atoms,
                                FactId* next_id) {
  static const std::vector<int> head_key = {tpred::kX, tpred::kC1, tpred::kY,
                                            tpred::kC2};
  static const std::vector<int> atom_key = {kAtomX, kAtomC1, kAtomY, kAtomC2};
  KeyIndex index(t_head, head_key);
  int64_t added = 0;
  for (int64_t i = 0; i < atoms.NumRows(); ++i) {
    RowView row = atoms.row(i);
    if (index.Contains(row, atom_key)) continue;
    t_head->AppendRow({Value::Int64((*next_id)++), row[kAtomX], row[kAtomC1],
                       row[kAtomY], row[kAtomC2], Value::Null()});
    index.AddRow(t_head->NumRows() - 1);
    ++added;
  }
  return added;
}

RowPredicate ClassFilter(ClassId c1, ClassId c2) {
  return [c1, c2](const RowView& row) {
    return row[tpred::kC1].i64() == c1 && row[tpred::kC2].i64() == c2;
  };
}

}  // namespace

Schema PredicateSchema() {
  return Schema({{"I", ColumnType::kInt64},
                 {"x", ColumnType::kInt64},
                 {"C1", ColumnType::kInt64},
                 {"y", ColumnType::kInt64},
                 {"C2", ColumnType::kInt64},
                 {"w", ColumnType::kFloat64}});
}

TuffyGrounder::TuffyGrounder(const KnowledgeBase& kb,
                             GroundingOptions options)
    : kb_(&kb), options_(options) {}

Status TuffyGrounder::Load() {
  Timer timer;
  // One predicate table per relation: a CREATE TABLE plus a COPY each.
  for (RelationId r = 0; r < kb_->relations().size(); ++r) {
    auto table = Table::Make(PredicateSchema());
    PROBKB_RETURN_NOT_OK(
        catalog_.Register("pred_" + kb_->relations().NameOrPlaceholder(r),
                          table));
    tables_[r] = std::move(table);
    stats_.statements += 2;
  }
  for (const Fact& f : kb_->facts()) {
    auto it = tables_.find(f.relation);
    if (it == tables_.end()) {
      return Status::Internal("fact references unknown relation");
    }
    it->second->AppendRow(
        {Value::Int64(next_fact_id_++), Value::Int64(f.x), Value::Int64(f.c1),
         Value::Int64(f.y), Value::Int64(f.c2),
         f.has_weight() ? Value::Float64(f.weight) : Value::Null()});
  }
  stats_.initial_atoms = static_cast<int64_t>(kb_->facts().size());
  stats_.ground_atoms_seconds += timer.Seconds();
  loaded_ = true;
  return Status::OK();
}

TablePtr TuffyGrounder::PredicateTable(RelationId r) const {
  auto it = tables_.find(r);
  PROBKB_CHECK(it != tables_.end());
  return it->second;
}

Result<TablePtr> TuffyGrounder::ApplyRule(const HornRule& rule,
                                          ExecContext* ctx) {
  // The rule's relations and classes are inlined as constants, exactly like
  // the per-rule SQL Tuffy emits.
  if (rule.body_length() == 1) {
    const bool swapped = rule.structure == RuleStructure::kM2;
    // Body classes in the predicate table: for q(x,y) the fact's C1 is x's
    // class; for q(y,x) the fact's C1 is y's class.
    ClassId body_c1 = swapped ? rule.c2 : rule.c1;
    ClassId body_c2 = swapped ? rule.c1 : rule.c2;
    auto plan = Project(
        Filter(Scan(PredicateTable(rule.body1), "pred"),
               ClassFilter(body_c1, body_c2), "rule classes"),
        {ProjectExpr::Column(swapped ? tpred::kY : tpred::kX, "x"),
         ProjectExpr::Constant(Value::Int64(rule.c1), "C1"),
         ProjectExpr::Column(swapped ? tpred::kX : tpred::kY, "y"),
         ProjectExpr::Constant(Value::Int64(rule.c2), "C2")});
    return plan->Execute(ctx);
  }

  const bool q_swapped = rule.structure == RuleStructure::kM4 ||
                         rule.structure == RuleStructure::kM6;
  const bool r_swapped = rule.structure == RuleStructure::kM5 ||
                         rule.structure == RuleStructure::kM6;
  // q holds (z, x) or (x, z); r holds (z, y) or (y, z).
  ClassId q_c1 = q_swapped ? rule.c1 : rule.c3;
  ClassId q_c2 = q_swapped ? rule.c3 : rule.c1;
  ClassId r_c1 = r_swapped ? rule.c2 : rule.c3;
  ClassId r_c2 = r_swapped ? rule.c3 : rule.c2;
  const int q_z = q_swapped ? tpred::kY : tpred::kX;
  const int q_x = q_swapped ? tpred::kX : tpred::kY;
  const int r_z = r_swapped ? tpred::kY : tpred::kX;
  const int r_y = r_swapped ? tpred::kX : tpred::kY;

  auto plan = HashJoin(
      Filter(Scan(PredicateTable(rule.body1), "q"), ClassFilter(q_c1, q_c2),
             "q classes"),
      Filter(Scan(PredicateTable(rule.body2), "r"), ClassFilter(r_c1, r_c2),
             "r classes"),
      {q_z}, {r_z}, JoinType::kInner,
      {JoinOutputCol::Left(q_x, "x"),
       JoinOutputCol::Right(r_y, "y")});
  auto projected = Project(
      std::move(plan),
      {ProjectExpr::Column(0, "x"),
       ProjectExpr::Constant(Value::Int64(rule.c1), "C1"),
       ProjectExpr::Column(1, "y"),
       ProjectExpr::Constant(Value::Int64(rule.c2), "C2")});
  return projected->Execute(ctx);
}

Result<int64_t> TuffyGrounder::GroundAtomsIteration() {
  if (!loaded_) PROBKB_RETURN_NOT_OK(Load());
  Timer timer;
  // Apply every rule against the iteration-start snapshot, then merge
  // (same fixpoint semantics as Algorithm 1).
  std::vector<std::pair<RelationId, TablePtr>> inferred;
  inferred.reserve(kb_->rules().size());
  for (const HornRule& rule : kb_->rules()) {
    ExecContext ec;
    PROBKB_ASSIGN_OR_RETURN(TablePtr atoms, ApplyRule(rule, &ec));
    inferred.emplace_back(rule.head, std::move(atoms));
    ++stats_.statements;
  }
  int64_t added = 0;
  for (const auto& [head, atoms] : inferred) {
    added += MergeAtomsIntoPredicate(PredicateTable(head).get(), *atoms,
                                     &next_fact_id_);
  }
  double secs = timer.Seconds();
  stats_.iteration_seconds.push_back(secs);
  stats_.iteration_new_atoms.push_back(added);
  stats_.ground_atoms_seconds += secs;
  ++stats_.iterations;
  return added;
}

Status TuffyGrounder::GroundAtoms() {
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    PROBKB_ASSIGN_OR_RETURN(int64_t added, GroundAtomsIteration());
    if (added == 0) break;
  }
  stats_.final_atoms = next_fact_id_;
  return Status::OK();
}

Result<TablePtr> TuffyGrounder::RuleFactors(const HornRule& rule,
                                            ExecContext* ctx) {
  // Candidates (x, C1, y, C2, I2[, I3]) from the body, then a head join to
  // resolve I1.
  PlanNodePtr candidates;
  bool has_i3 = rule.body_length() == 2;
  if (rule.body_length() == 1) {
    const bool swapped = rule.structure == RuleStructure::kM2;
    ClassId body_c1 = swapped ? rule.c2 : rule.c1;
    ClassId body_c2 = swapped ? rule.c1 : rule.c2;
    candidates = Project(
        Filter(Scan(PredicateTable(rule.body1), "pred"),
               ClassFilter(body_c1, body_c2), "rule classes"),
        {ProjectExpr::Column(swapped ? tpred::kY : tpred::kX, "x"),
         ProjectExpr::Column(swapped ? tpred::kX : tpred::kY, "y"),
         ProjectExpr::Column(tpred::kI, "I2")});
  } else {
    const bool q_swapped = rule.structure == RuleStructure::kM4 ||
                           rule.structure == RuleStructure::kM6;
    const bool r_swapped = rule.structure == RuleStructure::kM5 ||
                           rule.structure == RuleStructure::kM6;
    ClassId q_c1 = q_swapped ? rule.c1 : rule.c3;
    ClassId q_c2 = q_swapped ? rule.c3 : rule.c1;
    ClassId r_c1 = r_swapped ? rule.c2 : rule.c3;
    ClassId r_c2 = r_swapped ? rule.c3 : rule.c2;
    const int q_z = q_swapped ? tpred::kY : tpred::kX;
    const int q_x = q_swapped ? tpred::kX : tpred::kY;
    const int r_z = r_swapped ? tpred::kY : tpred::kX;
    const int r_y = r_swapped ? tpred::kX : tpred::kY;
    candidates = HashJoin(
        Filter(Scan(PredicateTable(rule.body1), "q"), ClassFilter(q_c1, q_c2),
               "q classes"),
        Filter(Scan(PredicateTable(rule.body2), "r"), ClassFilter(r_c1, r_c2),
               "r classes"),
        {q_z}, {r_z}, JoinType::kInner,
        {JoinOutputCol::Left(q_x, "x"),
         JoinOutputCol::Right(r_y, "y"),
         JoinOutputCol::Left(tpred::kI, "I2"),
         JoinOutputCol::Right(tpred::kI, "I3")});
  }

  // Head join: candidates (x, y, I2[, I3]) against the head predicate
  // table restricted to the rule's classes.
  const int cand_i2 = 2;
  const int cand_i3 = 3;
  auto plan = HashJoin(
      std::move(candidates),
      Filter(Scan(PredicateTable(rule.head), "head"),
             ClassFilter(rule.c1, rule.c2), "head classes"),
      {0, 1}, {tpred::kX, tpred::kY}, JoinType::kInner,
      {JoinOutputCol::Right(tpred::kI, "I1"),
       JoinOutputCol::Left(cand_i2, "I2"),
       JoinOutputCol::Left(has_i3 ? cand_i3 : cand_i2, "I3"),
       JoinOutputCol::Left(cand_i2, "w")});  // placeholder, replaced below
  PROBKB_ASSIGN_OR_RETURN(TablePtr joined, plan->Execute(ctx));
  // Stamp the rule weight and NULL the unused I3 column for length-2
  // rules. (SQL inlines the constant in the SELECT list; we post-project.)
  auto stamped = Project(
      Scan(joined),
      {ProjectExpr::Column(0, "I1"), ProjectExpr::Column(1, "I2"),
       has_i3 ? ProjectExpr::Column(2, "I3")
              : ProjectExpr::Constant(Value::Null(), "I3"),
       ProjectExpr::Constant(Value::Float64(rule.weight), "w",
                             ColumnType::kFloat64)});
  return stamped->Execute(ctx);
}

Result<TablePtr> TuffyGrounder::GroundFactors() {
  if (!loaded_) PROBKB_RETURN_NOT_OK(Load());
  Timer timer;
  auto t_phi = Table::Make(TPhiSchema());
  for (const HornRule& rule : kb_->rules()) {
    ExecContext ec;
    PROBKB_ASSIGN_OR_RETURN(TablePtr factors, RuleFactors(rule, &ec));
    t_phi->AppendTable(*factors);
    ++stats_.statements;
  }
  // Singleton factors from every predicate table.
  for (const auto& [r, table] : tables_) {
    (void)r;
    for (int64_t i = 0; i < table->NumRows(); ++i) {
      RowView row = table->row(i);
      if (row[tpred::kW].is_null()) continue;
      t_phi->AppendRow({row[tpred::kI], Value::Null(), Value::Null(),
                        row[tpred::kW]});
    }
  }
  ++stats_.statements;
  stats_.ground_factors_seconds += timer.Seconds();
  stats_.factors = t_phi->NumRows();
  return t_phi;
}

TablePtr TuffyGrounder::ToTPi() const {
  auto out = Table::Make(TPiSchema());
  for (RelationId r = 0; r < kb_->relations().size(); ++r) {
    auto it = tables_.find(r);
    if (it == tables_.end()) continue;
    const Table& t = *it->second;
    for (int64_t i = 0; i < t.NumRows(); ++i) {
      RowView row = t.row(i);
      out->AppendRow({row[tpred::kI], Value::Int64(r), row[tpred::kX],
                      row[tpred::kC1], row[tpred::kY], row[tpred::kC2],
                      row[tpred::kW]});
    }
  }
  return out;
}

}  // namespace probkb
