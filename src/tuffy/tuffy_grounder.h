#ifndef PROBKB_TUFFY_TUFFY_GROUNDER_H_
#define PROBKB_TUFFY_TUFFY_GROUNDER_H_

#include <unordered_map>
#include <vector>

#include "grounding/grounder.h"
#include "kb/knowledge_base.h"
#include "kb/relational_model.h"
#include "relational/catalog.h"
#include "util/result.h"

namespace probkb {

/// Column positions of a Tuffy-T predicate table: one table per relation,
/// schema (I, x, C1, y, C2, w) — the R column is implicit in the table
/// identity.
namespace tpred {
inline constexpr int kI = 0;
inline constexpr int kX = 1;
inline constexpr int kC1 = 2;
inline constexpr int kY = 3;
inline constexpr int kC2 = 4;
inline constexpr int kW = 5;
}  // namespace tpred

Schema PredicateSchema();

/// \brief Re-implementation of the Tuffy-T baseline (Section 6.1): Tuffy's
/// storage and grounding strategy with typing added.
///
/// Differences from ProbKB's Grounder, mirroring the paper:
///  - one predicate table per relation (ReVerb has ~83K), so bulk load
///    issues a statement per relation instead of one;
///  - one SQL query per *rule* per iteration (30,912 for Sherlock) instead
///    of one per MLN partition (6), with the rule's symbols inlined as
///    constants;
///  - per-rule result insertion.
///
/// The fixpoint semantics are identical to Algorithm 1 (apply all rules to
/// the iteration-start snapshot, then merge), which the equivalence tests
/// rely on.
class TuffyGrounder {
 public:
  TuffyGrounder(const KnowledgeBase& kb, GroundingOptions options);

  /// \brief Bulk-loads the facts into per-relation tables. Counts one
  /// CREATE + one COPY statement per relation (even empty ones: Tuffy
  /// creates the full predicate schema up front).
  Status Load();

  Status GroundAtoms();
  Result<int64_t> GroundAtomsIteration();
  Result<TablePtr> GroundFactors();

  /// \brief Assembles all predicate tables into TPi form (I, R, x, C1, y,
  /// C2, w) for cross-system comparison.
  TablePtr ToTPi() const;

  const GroundingStats& stats() const { return stats_; }
  const Catalog& catalog() const { return catalog_; }

 private:
  TablePtr PredicateTable(RelationId r) const;
  /// Per-rule groundAtoms query; returns atoms (x, C1, y, C2) for the head.
  Result<TablePtr> ApplyRule(const HornRule& rule, ExecContext* ctx);
  /// Per-rule groundFactors query; returns (I1, I2, I3, w).
  Result<TablePtr> RuleFactors(const HornRule& rule, ExecContext* ctx);

  const KnowledgeBase* kb_;
  GroundingOptions options_;
  GroundingStats stats_;
  Catalog catalog_;
  std::unordered_map<RelationId, TablePtr> tables_;
  FactId next_fact_id_ = 0;
  bool loaded_ = false;
};

}  // namespace probkb

#endif  // PROBKB_TUFFY_TUFFY_GROUNDER_H_
