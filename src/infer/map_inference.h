#ifndef PROBKB_INFER_MAP_INFERENCE_H_
#define PROBKB_INFER_MAP_INFERENCE_H_

#include <vector>

#include "factor/factor_graph.h"
#include "util/random.h"
#include "util/result.h"

namespace probkb {

/// \brief A MAP (most-likely-world) solution: an assignment and its
/// unnormalized log-probability under Eq. (4).
struct MapSolution {
  std::vector<uint8_t> assignment;
  double log_score = 0.0;
};

/// \brief Exact MAP by enumeration (test oracle, <= `max_variables`).
Result<MapSolution> ExactMap(const FactorGraph& graph,
                             int max_variables = 20);

struct IcmOptions {
  int restarts = 8;
  int max_sweeps_per_restart = 100;
  uint64_t seed = 42;
};

/// \brief Iterated conditional modes: coordinate ascent on the log-score
/// with random restarts. Handles arbitrary (including negative) weights.
///
/// The paper performs marginal inference so results can be stored in the
/// KB; MAP is the "other inference type" it names (Section 2.2) — this
/// completes the inference API for clients that want the most likely
/// world instead.
Result<MapSolution> IcmMap(const FactorGraph& graph,
                           const IcmOptions& options = {});

struct MaxWalkSatOptions {
  int max_tries = 8;
  int max_flips = 20000;
  /// Probability of a random walk (flip a random variable of the chosen
  /// unsatisfied clause) instead of a greedy flip.
  double noise = 0.2;
  uint64_t seed = 42;
};

/// \brief MaxWalkSAT (Kautz et al.) over the ground Horn clauses: local
/// search that targets unsatisfied weighted clauses. Requires non-negative
/// weights (MLN clause weights from rule learners are).
Result<MapSolution> MaxWalkSatMap(const FactorGraph& graph,
                                  const MaxWalkSatOptions& options = {});

}  // namespace probkb

#endif  // PROBKB_INFER_MAP_INFERENCE_H_
