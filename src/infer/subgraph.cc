#include "infer/subgraph.h"

namespace probkb {

Result<SubgraphMarginals> ComputeSubgraphMarginals(
    const Table& sub_t_pi, const Table& t_phi,
    const SubgraphInferenceOptions& opts) {
  SubgraphMarginals out;
  if (sub_t_pi.NumRows() == 0) return out;
  PROBKB_ASSIGN_OR_RETURN(FactorGraph graph,
                          FactorGraph::FromTables(sub_t_pi, t_phi));
  out.num_variables = graph.num_variables();
  out.num_factors = graph.num_factors();

  std::vector<double> marginals;
  if (opts.use_exact_when_small &&
      graph.num_variables() <= opts.exact_max_vars) {
    PROBKB_ASSIGN_OR_RETURN(marginals,
                            ExactMarginals(graph, opts.exact_max_vars));
    out.exact = true;
  } else {
    PROBKB_ASSIGN_OR_RETURN(GibbsResult gibbs,
                            GibbsMarginals(graph, opts.gibbs));
    marginals = std::move(gibbs.marginals);
  }
  out.probability.reserve(marginals.size());
  for (int32_t v = 0; v < graph.num_variables(); ++v) {
    out.probability.emplace(graph.fact_id(v),
                            marginals[static_cast<size_t>(v)]);
  }
  return out;
}

}  // namespace probkb
