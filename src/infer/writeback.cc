#include "infer/writeback.h"

#include <utility>
#include <vector>

#include "kb/relational_model.h"
#include "util/strings.h"

namespace probkb {

Result<int64_t> WriteMarginalsToTPi(Table* t_pi, const FactorGraph& graph,
                                    const std::vector<double>& marginals) {
  if (static_cast<int>(marginals.size()) != graph.num_variables()) {
    return Status::InvalidArgument(StrFormat(
        "marginal vector has %zu entries for %d variables",
        marginals.size(), graph.num_variables()));
  }
  // Validate every null-weight row before mutating anything, so an error
  // leaves the table untouched; then patch the weight column in place.
  std::vector<std::pair<int64_t, int32_t>> pending;
  for (int64_t i = 0; i < t_pi->NumRows(); ++i) {
    RowView row = t_pi->row(i);
    if (!row[tpi::kW].is_null()) continue;
    int32_t v = graph.VariableOf(row[tpi::kI].i64());
    if (v < 0) {
      return Status::InvalidArgument(StrFormat(
          "fact id %lld is not a factor-graph variable",
          static_cast<long long>(row[tpi::kI].i64())));
    }
    pending.emplace_back(i, v);
  }
  for (const auto& [row, var] : pending) {
    t_pi->SetFloat64(row, tpi::kW, marginals[static_cast<size_t>(var)]);
  }
  return static_cast<int64_t>(pending.size());
}

}  // namespace probkb
