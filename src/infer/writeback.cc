#include "infer/writeback.h"

#include "kb/relational_model.h"
#include "util/strings.h"

namespace probkb {

Result<int64_t> WriteMarginalsToTPi(Table* t_pi, const FactorGraph& graph,
                                    const std::vector<double>& marginals) {
  if (static_cast<int>(marginals.size()) != graph.num_variables()) {
    return Status::InvalidArgument(StrFormat(
        "marginal vector has %zu entries for %d variables",
        marginals.size(), graph.num_variables()));
  }
  // Rebuild the table with updated weights (Table has no in-place cell
  // mutation; grounding-sized rebuilds are cheap relative to inference).
  auto updated = Table::Make(t_pi->schema());
  updated->ReserveRows(t_pi->NumRows());
  int64_t written = 0;
  std::vector<Value> row_buf(static_cast<size_t>(t_pi->width()));
  for (int64_t i = 0; i < t_pi->NumRows(); ++i) {
    RowView row = t_pi->row(i);
    for (int c = 0; c < t_pi->width(); ++c) {
      row_buf[static_cast<size_t>(c)] = row[c];
    }
    if (row[tpi::kW].is_null()) {
      int32_t v = graph.VariableOf(row[tpi::kI].i64());
      if (v < 0) {
        return Status::InvalidArgument(StrFormat(
            "fact id %lld is not a factor-graph variable",
            static_cast<long long>(row[tpi::kI].i64())));
      }
      row_buf[tpi::kW] =
          Value::Float64(marginals[static_cast<size_t>(v)]);
      ++written;
    }
    updated->AppendRow(row_buf);
  }
  *t_pi = std::move(*updated);
  return written;
}

}  // namespace probkb
