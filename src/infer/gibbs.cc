#include "infer/gibbs.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"
#include "obs/stats_registry.h"
#include "util/strings.h"
#include "util/timer.h"

namespace probkb {

namespace {

/// Conditional log-odds of X_v = 1 given the rest of the assignment:
/// sum over incident factors of logphi(x_v=1) - logphi(x_v=0).
double ConditionalLogOdds(const FactorGraph& graph, int32_t v,
                          std::vector<uint8_t>* assignment) {
  double delta = 0.0;
  auto& a = *assignment;
  const uint8_t saved = a[static_cast<size_t>(v)];
  for (int32_t fi : graph.FactorsOf(v)) {
    const GroundFactor& f = graph.factors()[static_cast<size_t>(fi)];
    a[static_cast<size_t>(v)] = 1;
    delta += f.LogValue(a);
    a[static_cast<size_t>(v)] = 0;
    delta -= f.LogValue(a);
  }
  a[static_cast<size_t>(v)] = saved;
  return delta;
}

double Sigmoid(double x) {
  if (x >= 0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

/// Fresh chain state: zero assignment, seeded RNG, zero sample counts.
GibbsChainState InitChain(int num_variables, uint64_t seed) {
  GibbsChainState st;
  st.assignment.assign(static_cast<size_t>(num_variables), 0);
  st.ones.assign(static_cast<size_t>(num_variables), 0);
  st.rng_state = Rng(seed).State();
  return st;
}

/// Advances one chain from its saved state up to sweep `end_sweep`
/// (exclusive). Restoring the RNG words makes the continuation replay the
/// exact sample path an uninterrupted run would take.
void AdvanceChain(const FactorGraph& graph, const GibbsOptions& options,
                  const std::vector<int32_t>& order, int end_sweep,
                  GibbsChainState* st) {
  const int n = graph.num_variables();
  Rng rng(0);
  rng.SetState(st->rng_state);
  auto& assignment = st->assignment;
  // Per-sweep latencies are only recorded with a stats sink attached.
  const bool timed = options.stats != nullptr;
  for (int sweep = st->sweeps_done; sweep < end_sweep; ++sweep) {
    Timer sweep_timer;
    for (int32_t v : order) {
      double p1 = Sigmoid(ConditionalLogOdds(graph, v, &assignment));
      assignment[static_cast<size_t>(v)] = rng.Bernoulli(p1) ? 1 : 0;
    }
    if (sweep >= options.burn_in_sweeps) {
      for (int32_t v = 0; v < n; ++v) {
        st->ones[static_cast<size_t>(v)] +=
            assignment[static_cast<size_t>(v)];
      }
    }
    if (timed) {
      options.stats->RecordLatency("gibbs_sweep", sweep_timer.Seconds());
    }
  }
  st->sweeps_done = end_sweep;
  st->rng_state = rng.State();
}

/// Gelman-Rubin potential scale reduction factor for one variable given
/// the per-chain one-counts over `samples` draws of a binary indicator.
double Psrf(const std::vector<int64_t>& chain_ones, int64_t samples) {
  const size_t chains = chain_ones.size();
  if (chains < 2 || samples < 2) return 1.0;
  const double n = static_cast<double>(samples);
  double grand_mean = 0.0;
  std::vector<double> means(chains);
  std::vector<double> within(chains);
  for (size_t c = 0; c < chains; ++c) {
    double m = static_cast<double>(chain_ones[c]) / n;
    means[c] = m;
    // Sample variance of a binary sequence with k ones.
    within[c] = n / (n - 1.0) * m * (1.0 - m);
    grand_mean += m;
  }
  grand_mean /= static_cast<double>(chains);
  double b = 0.0;  // between-chain variance x n
  for (double m : means) b += (m - grand_mean) * (m - grand_mean);
  b *= n / (static_cast<double>(chains) - 1.0);
  double w = 0.0;
  for (double v : within) w += v;
  w /= static_cast<double>(chains);
  if (w <= 1e-12) return 1.0;  // chains agree exactly (e.g. frozen var)
  double var_hat = (n - 1.0) / n * w + b / n;
  return std::sqrt(var_hat / w);
}

}  // namespace

Result<GibbsResult> GibbsMarginals(const FactorGraph& graph,
                                   const GibbsOptions& options,
                                   GibbsCheckpoint* checkpoint) {
  if (options.burn_in_sweeps < 0 || options.sample_sweeps <= 0) {
    return Status::InvalidArgument("sweep counts must be positive");
  }
  if (options.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  if (options.num_chains < 1) {
    return Status::InvalidArgument("num_chains must be >= 1");
  }
  const int n = graph.num_variables();
  Timer timer;

  // Update order: plain index order for sequential; grouped by color for
  // chromatic. Within a color no two variables share a factor, so the
  // sequential in-color update below produces exactly what a parallel
  // update would.
  std::vector<int32_t> order(static_cast<size_t>(n));
  std::vector<int64_t> color_sizes;
  int num_colors = 1;
  if (options.schedule == GibbsSchedule::kChromatic) {
    std::vector<int> colors = graph.ColorVariables();
    num_colors =
        colors.empty() ? 1 : *std::max_element(colors.begin(), colors.end()) + 1;
    color_sizes.assign(static_cast<size_t>(num_colors), 0);
    size_t pos = 0;
    for (int c = 0; c < num_colors; ++c) {
      for (int32_t v = 0; v < n; ++v) {
        if (colors[static_cast<size_t>(v)] == c) {
          order[pos++] = v;
          ++color_sizes[static_cast<size_t>(c)];
        }
      }
    }
  } else {
    for (int32_t v = 0; v < n; ++v) order[static_cast<size_t>(v)] = v;
    color_sizes.assign(1, n);
  }

  // Chain state lives in the caller's checkpoint when one is supplied, so
  // an interrupted run continues from its last sweep boundary; otherwise
  // in a local that starts fresh and completes in this call.
  GibbsCheckpoint local_state;
  GibbsCheckpoint* state = checkpoint ? checkpoint : &local_state;
  const int total_sweeps = options.burn_in_sweeps + options.sample_sweeps;
  if (state->chains.empty()) {
    state->chains.reserve(static_cast<size_t>(options.num_chains));
    for (int chain = 0; chain < options.num_chains; ++chain) {
      state->chains.push_back(InitChain(
          n, options.seed +
                 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(chain)));
    }
  } else if (static_cast<int>(state->chains.size()) != options.num_chains ||
             static_cast<int>(state->chains.front().assignment.size()) != n) {
    return Status::InvalidArgument(
        "Gibbs checkpoint does not match num_chains / the factor graph");
  }

  const int sweeps_before = state->sweeps_done();
  int end_sweep = total_sweeps;
  if (options.max_sweeps_per_call > 0) {
    end_sweep = std::min(total_sweeps,
                         sweeps_before + options.max_sweeps_per_call);
  }
  std::vector<double> chain_seconds;
  chain_seconds.reserve(state->chains.size());
  for (size_t chain = 0; chain < state->chains.size(); ++chain) {
    GibbsChainState& st = state->chains[chain];
    Timer chain_timer;
    AdvanceChain(graph, options, order, end_sweep, &st);
    chain_seconds.push_back(chain_timer.Seconds());
    if (options.stats != nullptr) {
      options.stats->RecordGibbsChain(static_cast<int>(chain),
                                      end_sweep - sweeps_before, n,
                                      chain_seconds.back());
    }
    FlightRecorder::Global()->Record(
        FrEvent::kGibbsMilestone, "sweeps", static_cast<int64_t>(chain),
        st.sweeps_done, end_sweep == total_sweeps ? 1 : 0);
  }

  GibbsResult result;
  result.chain_seconds = chain_seconds;
  {
    const double updates =
        static_cast<double>(end_sweep - sweeps_before) *
        static_cast<double>(n);
    result.chain_samples_per_sec.reserve(chain_seconds.size());
    for (double s : chain_seconds) {
      result.chain_samples_per_sec.push_back(s > 0 ? updates / s : 0.0);
    }
  }
  result.sweeps_done = end_sweep;
  result.complete = end_sweep == total_sweeps;
  result.marginals.assign(static_cast<size_t>(n), 0.0);
  const int64_t sampled =
      std::max(0, end_sweep - options.burn_in_sweeps);
  const double denom = static_cast<double>(sampled) *
                       static_cast<double>(options.num_chains);
  if (sampled > 0) {
    for (int32_t v = 0; v < n; ++v) {
      int64_t total = 0;
      for (const GibbsChainState& st : state->chains) {
        total += st.ones[static_cast<size_t>(v)];
      }
      result.marginals[static_cast<size_t>(v)] =
          static_cast<double>(total) / denom;
    }
  }

  // Convergence diagnostic across chains.
  result.max_psrf = 1.0;
  if (options.num_chains > 1 && sampled > 0) {
    std::vector<int64_t> chain_ones(static_cast<size_t>(options.num_chains));
    for (int32_t v = 0; v < n; ++v) {
      for (int c = 0; c < options.num_chains; ++c) {
        chain_ones[static_cast<size_t>(c)] =
            state->chains[static_cast<size_t>(c)].ones[static_cast<size_t>(v)];
      }
      result.max_psrf =
          std::max(result.max_psrf, Psrf(chain_ones, sampled));
    }
  }

  result.seconds = timer.Seconds();
  result.num_colors = num_colors;
  const int sweeps_run = end_sweep - sweeps_before;
  if (options.schedule == GibbsSchedule::kChromatic && n > 0 &&
      sweeps_run > 0) {
    // Modelled parallel sweep: each color runs its variables across P
    // workers; colors are barriers (Gonzalez et al.). Scaled by the sweeps
    // this call actually ran, so partial calls sum to the full-run model.
    double per_var =
        result.seconds /
        (static_cast<double>(n) * sweeps_run * options.num_chains);
    double parallel_sweep = 0.0;
    for (int64_t size : color_sizes) {
      parallel_sweep +=
          per_var * std::ceil(static_cast<double>(size) / options.parallelism);
    }
    result.simulated_parallel_seconds =
        parallel_sweep * sweeps_run * options.num_chains;
  } else {
    result.simulated_parallel_seconds = result.seconds;
  }
  return result;
}

Result<std::vector<double>> ExactMarginals(const FactorGraph& graph,
                                           int max_variables) {
  const int n = graph.num_variables();
  if (n > max_variables) {
    return Status::InvalidArgument(StrFormat(
        "%d variables exceed the exact-enumeration cap of %d", n,
        max_variables));
  }
  std::vector<uint8_t> assignment(static_cast<size_t>(n), 0);
  std::vector<double> numer(static_cast<size_t>(n), 0.0);
  double z = 0.0;
  const uint64_t total = 1ULL << n;
  for (uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < n; ++v) {
      assignment[static_cast<size_t>(v)] =
          static_cast<uint8_t>((bits >> v) & 1);
    }
    double weight = std::exp(graph.LogScore(assignment));
    z += weight;
    for (int v = 0; v < n; ++v) {
      if (assignment[static_cast<size_t>(v)]) {
        numer[static_cast<size_t>(v)] += weight;
      }
    }
  }
  for (int v = 0; v < n; ++v) numer[static_cast<size_t>(v)] /= z;
  return numer;
}

}  // namespace probkb
