#ifndef PROBKB_INFER_SUBGRAPH_H_
#define PROBKB_INFER_SUBGRAPH_H_

#include <unordered_map>

#include "infer/gibbs.h"
#include "kb/relational_model.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

struct SubgraphInferenceOptions {
  /// Seed et al. are fixed by the caller; with identical inputs the
  /// marginals are bit-identical across calls and threads.
  GibbsOptions gibbs;
  /// Enumerate exactly instead of sampling when the subgraph has at most
  /// `exact_max_vars` variables — tiny query neighborhoods get exact
  /// answers for free.
  bool use_exact_when_small = true;
  int exact_max_vars = 16;
};

struct SubgraphMarginals {
  /// P(fact = true) keyed by fact id, covering every row of the sub-TPi.
  std::unordered_map<FactId, double> probability;
  /// True when ExactMarginals answered instead of Gibbs.
  bool exact = false;
  int num_variables = 0;
  int64_t num_factors = 0;
};

/// \brief Marginal inference over one query's local subgraph: builds the
/// factor graph from (sub_t_pi, t_phi) and runs exact enumeration or
/// seeded Gibbs. The serve path calls this per query against a pinned
/// snapshot's neighborhood.
Result<SubgraphMarginals> ComputeSubgraphMarginals(
    const Table& sub_t_pi, const Table& t_phi,
    const SubgraphInferenceOptions& opts);

}  // namespace probkb

#endif  // PROBKB_INFER_SUBGRAPH_H_
