#ifndef PROBKB_INFER_WRITEBACK_H_
#define PROBKB_INFER_WRITEBACK_H_

#include <vector>

#include "factor/factor_graph.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Stores marginal probabilities back into TPi.
///
/// ProbKB "uses marginal inference so that we can store all the inferred
/// results in the knowledge base, thereby avoiding query-time computation
/// and improving system responsivity" (Section 2.2). This writes
/// P(X_v = 1) into the w column of every inferred (NULL-weight) fact;
/// extracted facts keep their extraction weights. `marginals` is indexed
/// by factor-graph variable, as returned by GibbsMarginals.
///
/// Returns the number of facts updated.
Result<int64_t> WriteMarginalsToTPi(Table* t_pi, const FactorGraph& graph,
                                    const std::vector<double>& marginals);

}  // namespace probkb

#endif  // PROBKB_INFER_WRITEBACK_H_
