#include "infer/map_inference.h"

#include <algorithm>

#include "util/strings.h"

namespace probkb {

namespace {

/// Score change from flipping variable v in `assignment`.
double FlipDelta(const FactorGraph& graph, int32_t v,
                 std::vector<uint8_t>* assignment) {
  auto& a = *assignment;
  double delta = 0.0;
  const uint8_t old_value = a[static_cast<size_t>(v)];
  for (int32_t fi : graph.FactorsOf(v)) {
    const GroundFactor& f = graph.factors()[static_cast<size_t>(fi)];
    delta -= f.LogValue(a);
    a[static_cast<size_t>(v)] = 1 - old_value;
    delta += f.LogValue(a);
    a[static_cast<size_t>(v)] = old_value;
  }
  return delta;
}

}  // namespace

Result<MapSolution> ExactMap(const FactorGraph& graph, int max_variables) {
  const int n = graph.num_variables();
  if (n > max_variables) {
    return Status::InvalidArgument(
        StrFormat("%d variables exceed the exact-MAP cap of %d", n,
                  max_variables));
  }
  MapSolution best;
  best.assignment.assign(static_cast<size_t>(n), 0);
  best.log_score = graph.LogScore(best.assignment);
  std::vector<uint8_t> assignment(static_cast<size_t>(n), 0);
  const uint64_t total = n == 0 ? 1 : (1ULL << n);
  for (uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < n; ++v) {
      assignment[static_cast<size_t>(v)] =
          static_cast<uint8_t>((bits >> v) & 1);
    }
    double score = graph.LogScore(assignment);
    if (score > best.log_score) {
      best.log_score = score;
      best.assignment = assignment;
    }
  }
  return best;
}

Result<MapSolution> IcmMap(const FactorGraph& graph,
                           const IcmOptions& options) {
  if (options.restarts < 1 || options.max_sweeps_per_restart < 1) {
    return Status::InvalidArgument("ICM needs positive restart/sweep counts");
  }
  const int n = graph.num_variables();
  Rng rng(options.seed);
  MapSolution best;
  best.assignment.assign(static_cast<size_t>(n), 0);
  best.log_score = graph.LogScore(best.assignment);

  std::vector<uint8_t> assignment(static_cast<size_t>(n));
  for (int restart = 0; restart < options.restarts; ++restart) {
    for (int32_t v = 0; v < n; ++v) {
      // First restart from the all-true world (usually strong for Horn
      // MLNs); later restarts randomize.
      assignment[static_cast<size_t>(v)] =
          restart == 0 ? 1 : (rng.Bernoulli(0.5) ? 1 : 0);
    }
    for (int sweep = 0; sweep < options.max_sweeps_per_restart; ++sweep) {
      bool changed = false;
      for (int32_t v = 0; v < n; ++v) {
        if (FlipDelta(graph, v, &assignment) > 0) {
          assignment[static_cast<size_t>(v)] ^= 1;
          changed = true;
        }
      }
      if (!changed) break;  // local optimum
    }
    double score = graph.LogScore(assignment);
    if (score > best.log_score) {
      best.log_score = score;
      best.assignment = assignment;
    }
  }
  return best;
}

Result<MapSolution> MaxWalkSatMap(const FactorGraph& graph,
                                  const MaxWalkSatOptions& options) {
  for (const GroundFactor& f : graph.factors()) {
    if (f.weight < 0) {
      return Status::InvalidArgument(
          "MaxWalkSAT requires non-negative clause weights; use IcmMap");
    }
  }
  if (options.max_tries < 1 || options.max_flips < 1) {
    return Status::InvalidArgument("MaxWalkSAT needs positive try/flip caps");
  }
  const int n = graph.num_variables();
  Rng rng(options.seed);
  MapSolution best;
  best.assignment.assign(static_cast<size_t>(n), 0);
  best.log_score = graph.LogScore(best.assignment);

  std::vector<uint8_t> assignment(static_cast<size_t>(n));
  std::vector<int32_t> unsat;  // indices of unsatisfied factors
  for (int attempt = 0; attempt < options.max_tries; ++attempt) {
    for (int32_t v = 0; v < n; ++v) {
      assignment[static_cast<size_t>(v)] = rng.Bernoulli(0.5) ? 1 : 0;
    }
    double score = graph.LogScore(assignment);
    if (score > best.log_score) {
      best.log_score = score;
      best.assignment = assignment;
    }
    for (int flip = 0; flip < options.max_flips; ++flip) {
      // Collect unsatisfied (weight-losing) factors.
      unsat.clear();
      for (size_t fi = 0; fi < graph.factors().size(); ++fi) {
        const GroundFactor& f = graph.factors()[fi];
        if (f.weight > 0 && f.LogValue(assignment) == 0.0) {
          unsat.push_back(static_cast<int32_t>(fi));
        }
      }
      if (unsat.empty()) break;  // all clauses satisfied: global optimum
      const GroundFactor& f = graph.factors()[static_cast<size_t>(
          unsat[rng.Uniform(unsat.size())])];
      std::vector<int32_t> vars;
      for (int32_t v : {f.head, f.body1, f.body2}) {
        if (v >= 0) vars.push_back(v);
      }
      int32_t to_flip;
      if (rng.Bernoulli(options.noise)) {
        to_flip = vars[rng.Uniform(vars.size())];
      } else {
        // Greedy: the variable whose flip increases the score most.
        to_flip = vars[0];
        double best_delta = FlipDelta(graph, vars[0], &assignment);
        for (size_t i = 1; i < vars.size(); ++i) {
          double delta = FlipDelta(graph, vars[i], &assignment);
          if (delta > best_delta) {
            best_delta = delta;
            to_flip = vars[i];
          }
        }
      }
      score += FlipDelta(graph, to_flip, &assignment);
      assignment[static_cast<size_t>(to_flip)] ^= 1;
      if (score > best.log_score) {
        best.log_score = score;
        best.assignment = assignment;
      }
    }
  }
  return best;
}

}  // namespace probkb
