#ifndef PROBKB_INFER_GIBBS_H_
#define PROBKB_INFER_GIBBS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "factor/factor_graph.h"
#include "util/random.h"
#include "util/result.h"

namespace probkb {

/// \brief Variable-update schedules of the Gibbs sampler.
///
/// kSequential sweeps variables in order. kChromatic is the parallel
/// schedule of Gonzalez et al. [14] that the paper uses via GraphLab:
/// variables are greedily colored so same-color variables share no factor
/// and can be updated concurrently; the simulator reports the modelled
/// parallel sweep time alongside the exact same samples.
enum class GibbsSchedule { kSequential, kChromatic };

class StatsRegistry;

struct GibbsOptions {
  int burn_in_sweeps = 200;
  int sample_sweeps = 800;
  GibbsSchedule schedule = GibbsSchedule::kSequential;
  /// Modelled worker count for the chromatic schedule's simulated time.
  int parallelism = 32;
  /// Independent chains (different seeds). More than one enables the
  /// Gelman-Rubin convergence diagnostic; marginals average the chains.
  int num_chains = 1;
  uint64_t seed = 42;
  /// Fault tolerance: advance each chain by at most this many sweeps per
  /// call, persisting progress in the caller's GibbsCheckpoint (0 runs to
  /// completion in one call). A run split across calls is bit-identical
  /// to an uninterrupted one — the checkpoint carries the exact RNG state.
  int max_sweeps_per_call = 0;
  /// Optional execution-stats sink: per-chain throughput plus a
  /// "gibbs_sweep" latency histogram (per-sweep timing is only taken when
  /// attached). Never affects the sample path.
  StatsRegistry* stats = nullptr;
};

/// \brief Resumable state of one Gibbs chain at a sweep boundary.
struct GibbsChainState {
  int sweeps_done = 0;
  /// xoshiro256** words; restoring them replays the identical sample path.
  std::array<uint64_t, 4> rng_state{};
  std::vector<uint8_t> assignment;
  /// Per-variable count of post-burn-in sweeps that sampled 1.
  std::vector<int64_t> ones;
};

/// \brief Sampler state across chains; pass an empty one to start fresh.
struct GibbsCheckpoint {
  std::vector<GibbsChainState> chains;
  int sweeps_done() const {
    return chains.empty() ? 0 : chains.front().sweeps_done;
  }
};

struct GibbsResult {
  /// Marginal P(X_v = 1) per variable (averaged over chains).
  std::vector<double> marginals;
  /// Measured wall-clock seconds (all chains).
  double seconds = 0.0;
  /// Modelled time with `parallelism` workers under the chromatic
  /// schedule; equals `seconds` for the sequential schedule.
  double simulated_parallel_seconds = 0.0;
  int num_colors = 1;
  /// Max potential-scale-reduction factor (Gelman-Rubin R-hat) over
  /// variables; ~1.0 indicates the chains mixed. 1.0 when num_chains == 1.
  double max_psrf = 1.0;
  /// False when max_sweeps_per_call stopped the run early; call again with
  /// the same checkpoint to continue. Marginals then cover only the
  /// post-burn-in sweeps completed so far.
  bool complete = true;
  int sweeps_done = 0;
  /// Per-chain throughput of *this call*: wall-clock seconds spent
  /// advancing chain i and its sampling rate in variable updates per
  /// second (sweeps_run x num_variables / seconds).
  std::vector<double> chain_seconds;
  std::vector<double> chain_samples_per_sec;
};

/// \brief Gibbs sampling for marginal inference over the ground factor
/// graph (the MLN marginal-inference step, Eq. (4)).
///
/// With a non-null `checkpoint` the sampler initializes from (and updates)
/// that state, enabling interrupted-and-resumed runs; with
/// options.max_sweeps_per_call set it returns after that many additional
/// sweeps with result.complete == false until the schedule finishes.
Result<GibbsResult> GibbsMarginals(const FactorGraph& graph,
                                   const GibbsOptions& options,
                                   GibbsCheckpoint* checkpoint = nullptr);

/// \brief Exact marginals by enumeration; the test oracle. Fails for more
/// than `max_variables` variables.
Result<std::vector<double>> ExactMarginals(const FactorGraph& graph,
                                           int max_variables = 20);

}  // namespace probkb

#endif  // PROBKB_INFER_GIBBS_H_
