#include "obs/bench_baseline.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace probkb {

namespace {

/// Minimal recursive-descent JSON reader, just enough for the bench_report
/// document: objects, arrays, strings, numbers, true/false/null. Unknown
/// subtrees (the nested "breakdown" stats objects) are skipped wholesale.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  bool failed() const { return failed_; }
  std::string error() const { return error_; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    if (Peek() != c) {
      Fail(StrFormat("expected '%c' at offset %zu", c, pos_));
      return false;
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'u':
            // Good enough for bench reports: keep the escape verbatim.
            out->push_back('\\');
            c = 'u';
            break;
          default:
            c = esc;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start ||
        !ParseDouble(text_.substr(start, pos_ - start), out)) {
      Fail(StrFormat("malformed number at offset %zu", start));
      return false;
    }
    return true;
  }

  /// Skips one complete value of any type.
  bool SkipValue() {
    switch (Peek()) {
      case '{': {
        ++pos_;
        if (Peek() == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          std::string key;
          if (!ParseString(&key) || !Consume(':') || !SkipValue()) {
            return false;
          }
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          return Consume('}');
        }
      }
      case '[': {
        ++pos_;
        if (Peek() == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          if (!SkipValue()) return false;
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          return Consume(']');
        }
      }
      case '"': {
        std::string ignored;
        return ParseString(&ignored);
      }
      case 't':
        return ConsumeWord("true");
      case 'f':
        return ConsumeWord("false");
      case 'n':
        return ConsumeWord("null");
      default: {
        double ignored;
        return ParseNumber(&ignored);
      }
    }
  }

  /// Walks an object, invoking `on_field(key)` positioned at each value;
  /// the callback must consume or skip exactly that value.
  template <typename Fn>
  bool ParseObject(Fn on_field) {
    if (!Consume('{')) return false;
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Consume(':')) return false;
      if (!on_field(key)) return false;
      if (failed_) return false;
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  /// Walks an array, invoking `on_element()` positioned at each element.
  template <typename Fn>
  bool ParseArray(Fn on_element) {
    if (!Consume('[')) return false;
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!on_element()) return false;
      if (failed_) return false;
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

 private:
  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) {
      Fail(StrFormat("malformed literal at offset %zu", pos_));
      return false;
    }
    pos_ += word.size();
    return true;
  }

  void Fail(const std::string& message) {
    if (!failed_) {
      failed_ = true;
      error_ = message;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

bool ParsePoint(JsonCursor* cursor, BenchPoint* point) {
  return cursor->ParseObject([&](const std::string& key) {
    if (key == "threads") {
      double v = 0;
      if (!cursor->ParseNumber(&v)) return false;
      point->threads = static_cast<int>(v);
      return true;
    }
    if (key == "seconds") return cursor->ParseNumber(&point->seconds);
    return cursor->SkipValue();
  });
}

bool ParseWorkload(JsonCursor* cursor, BenchWorkload* workload) {
  return cursor->ParseObject([&](const std::string& key) {
    if (key == "name") return cursor->ParseString(&workload->name);
    if (key == "serial_s") {
      return cursor->ParseNumber(&workload->serial_seconds);
    }
    if (key == "peak_rss_bytes") {
      double v = 0;
      if (!cursor->ParseNumber(&v)) return false;
      workload->peak_rss_bytes = static_cast<long long>(v);
      return true;
    }
    if (key == "shipped_bytes") {
      double v = 0;
      if (!cursor->ParseNumber(&v)) return false;
      workload->shipped_bytes = static_cast<long long>(v);
      return true;
    }
    if (key == "broadcast_motions") {
      double v = 0;
      if (!cursor->ParseNumber(&v)) return false;
      workload->broadcast_motions = static_cast<long long>(v);
      return true;
    }
    if (key == "redistribute_motions") {
      double v = 0;
      if (!cursor->ParseNumber(&v)) return false;
      workload->redistribute_motions = static_cast<long long>(v);
      return true;
    }
    if (key == "points") {
      return cursor->ParseArray([&]() {
        BenchPoint point;
        if (!ParsePoint(cursor, &point)) return false;
        workload->points.push_back(point);
        return true;
      });
    }
    return cursor->SkipValue();  // breakdown, future fields
  });
}

}  // namespace

const BenchWorkload* BenchReport::Find(std::string_view name) const {
  for (const BenchWorkload& workload : workloads) {
    if (workload.name == name) return &workload;
  }
  return nullptr;
}

Result<BenchReport> ParseBenchReportJson(std::string_view json) {
  JsonCursor cursor(json);
  BenchReport report;
  const bool ok = cursor.ParseObject([&](const std::string& key) {
    if (key == "workloads") {
      return cursor.ParseArray([&]() {
        BenchWorkload workload;
        if (!ParseWorkload(&cursor, &workload)) return false;
        report.workloads.push_back(std::move(workload));
        return true;
      });
    }
    return cursor.SkipValue();
  });
  if (!ok || cursor.failed()) {
    return Status::InvalidArgument(
        "bench report JSON: " +
        (cursor.failed() ? cursor.error() : std::string("parse error")));
  }
  if (report.workloads.empty()) {
    return Status::InvalidArgument(
        "bench report JSON has no \"workloads\" section");
  }
  return report;
}

Result<BenchReport> ReadBenchReportFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot read bench report '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseBenchReportJson(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

BenchComparison CompareBenchReports(const BenchReport& baseline,
                                    const BenchReport& current,
                                    double threshold,
                                    double memory_threshold,
                                    double shipped_threshold) {
  BenchComparison comparison;
  comparison.threshold = threshold;
  comparison.memory_threshold = memory_threshold;
  comparison.shipped_threshold = shipped_threshold;
  for (const BenchWorkload& base_workload : baseline.workloads) {
    const BenchWorkload* cur_workload = current.Find(base_workload.name);
    // Byte gates skip only when a report predates the field (-1). A
    // recorded zero is a measurement: the denominator floors at one byte so
    // traffic or RSS appearing where the baseline had none registers as
    // growth instead of auto-passing on a 0/0.
    if (base_workload.shipped_bytes >= 0 && cur_workload != nullptr &&
        cur_workload->shipped_bytes >= 0) {
      BenchShippedDelta shipped;
      shipped.workload = base_workload.name;
      shipped.baseline_bytes = base_workload.shipped_bytes;
      shipped.current_bytes = cur_workload->shipped_bytes;
      shipped.delta_fraction =
          static_cast<double>(shipped.current_bytes -
                              shipped.baseline_bytes) /
          static_cast<double>(std::max(shipped.baseline_bytes, 1LL));
      shipped.regression = shipped.delta_fraction > shipped_threshold;
      comparison.has_regression =
          comparison.has_regression || shipped.regression;
      comparison.shipped_deltas.push_back(std::move(shipped));
    }
    if (base_workload.peak_rss_bytes >= 0 && cur_workload != nullptr &&
        cur_workload->peak_rss_bytes >= 0) {
      BenchMemoryDelta mem;
      mem.workload = base_workload.name;
      mem.baseline_bytes = base_workload.peak_rss_bytes;
      mem.current_bytes = cur_workload->peak_rss_bytes;
      mem.delta_fraction =
          static_cast<double>(mem.current_bytes - mem.baseline_bytes) /
          static_cast<double>(std::max(mem.baseline_bytes, 1LL));
      mem.regression = mem.delta_fraction > memory_threshold;
      comparison.has_regression = comparison.has_regression || mem.regression;
      comparison.memory_deltas.push_back(std::move(mem));
    }
    for (const BenchPoint& base_point : base_workload.points) {
      BenchDelta delta;
      delta.workload = base_workload.name;
      delta.threads = base_point.threads;
      delta.baseline_seconds = base_point.seconds;
      const BenchPoint* cur_point = nullptr;
      if (cur_workload != nullptr) {
        for (const BenchPoint& p : cur_workload->points) {
          if (p.threads == base_point.threads) {
            cur_point = &p;
            break;
          }
        }
      }
      if (cur_point == nullptr) {
        delta.missing = true;
        delta.regression = true;
      } else {
        delta.current_seconds = cur_point->seconds;
        // A zero (or negative) baseline timing — a corrupt or placeholder
        // report — must neither divide by zero nor auto-pass: the
        // denominator floors at 1ns so any real current timing shows up as
        // a huge slowdown, while the absolute slack keeps two
        // effectively-zero timings comparing equal.
        constexpr double kMinBaselineSeconds = 1e-9;
        constexpr double kAbsoluteSlackSeconds = 1e-6;
        delta.delta_fraction =
            (cur_point->seconds - base_point.seconds) /
            std::max(base_point.seconds, kMinBaselineSeconds);
        delta.regression =
            delta.delta_fraction > threshold &&
            cur_point->seconds - base_point.seconds > kAbsoluteSlackSeconds;
      }
      comparison.has_regression =
          comparison.has_regression || delta.regression;
      comparison.deltas.push_back(std::move(delta));
    }
  }
  return comparison;
}

std::string BenchComparison::ToText() const {
  std::string out = StrFormat(
      "bench regression gate (threshold %+.0f%%)\n", threshold * 100.0);
  for (const BenchDelta& delta : deltas) {
    if (delta.missing) {
      out += StrFormat("  %-20s --threads %d  MISSING from current report\n",
                       delta.workload.c_str(), delta.threads);
      continue;
    }
    out += StrFormat("  %-20s --threads %d  %.3fs -> %.3fs  (%+.1f%%)%s\n",
                     delta.workload.c_str(), delta.threads,
                     delta.baseline_seconds, delta.current_seconds,
                     delta.delta_fraction * 100.0,
                     delta.regression ? "  REGRESSION" : "");
  }
  if (!memory_deltas.empty()) {
    out += StrFormat("memory gate (threshold %+.0f%%)\n",
                     memory_threshold * 100.0);
    for (const BenchMemoryDelta& mem : memory_deltas) {
      out += StrFormat(
          "  %-20s peak RSS  %.1f MiB -> %.1f MiB  (%+.1f%%)%s\n",
          mem.workload.c_str(),
          static_cast<double>(mem.baseline_bytes) / (1024.0 * 1024.0),
          static_cast<double>(mem.current_bytes) / (1024.0 * 1024.0),
          mem.delta_fraction * 100.0,
          mem.regression ? "  REGRESSION" : "");
    }
  }
  if (!shipped_deltas.empty()) {
    out += StrFormat("shipped-bytes gate (threshold %+.0f%%)\n",
                     shipped_threshold * 100.0);
    for (const BenchShippedDelta& shipped : shipped_deltas) {
      out += StrFormat(
          "  %-20s shipped  %.1f KiB -> %.1f KiB  (%+.1f%%)%s\n",
          shipped.workload.c_str(),
          static_cast<double>(shipped.baseline_bytes) / 1024.0,
          static_cast<double>(shipped.current_bytes) / 1024.0,
          shipped.delta_fraction * 100.0,
          shipped.regression ? "  REGRESSION" : "");
    }
  }
  out += has_regression ? "RESULT: REGRESSION\n" : "RESULT: OK\n";
  return out;
}

std::string BenchComparison::ToJson() const {
  std::string out = "{\n";
  out += StrFormat("  \"threshold\": %g,\n", threshold);
  out += StrFormat("  \"has_regression\": %s,\n",
                   has_regression ? "true" : "false");
  out += "  \"deltas\": [";
  bool first = true;
  for (const BenchDelta& delta : deltas) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"workload\": \"%s\", \"threads\": %d, "
        "\"baseline_s\": %g, \"current_s\": %g, \"delta_pct\": %g, "
        "\"regression\": %s, \"missing\": %s}",
        delta.workload.c_str(), delta.threads, delta.baseline_seconds,
        delta.current_seconds, delta.delta_fraction * 100.0,
        delta.regression ? "true" : "false",
        delta.missing ? "true" : "false");
  }
  out += first ? "],\n" : "\n  ],\n";
  out += StrFormat("  \"memory_threshold\": %g,\n", memory_threshold);
  out += "  \"memory_deltas\": [";
  first = true;
  for (const BenchMemoryDelta& mem : memory_deltas) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"workload\": \"%s\", \"baseline_bytes\": %lld, "
        "\"current_bytes\": %lld, \"delta_pct\": %g, \"regression\": %s}",
        mem.workload.c_str(), mem.baseline_bytes, mem.current_bytes,
        mem.delta_fraction * 100.0, mem.regression ? "true" : "false");
  }
  out += first ? "],\n" : "\n  ],\n";
  out += StrFormat("  \"shipped_threshold\": %g,\n", shipped_threshold);
  out += "  \"shipped_deltas\": [";
  first = true;
  for (const BenchShippedDelta& shipped : shipped_deltas) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"workload\": \"%s\", \"baseline_bytes\": %lld, "
        "\"current_bytes\": %lld, \"delta_pct\": %g, \"regression\": %s}",
        shipped.workload.c_str(), shipped.baseline_bytes,
        shipped.current_bytes, shipped.delta_fraction * 100.0,
        shipped.regression ? "true" : "false");
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace probkb
