#ifndef PROBKB_OBS_STATS_REGISTRY_H_
#define PROBKB_OBS_STATS_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "util/status.h"

namespace probkb {

/// \brief One operator execution, as reported by the engine at operator
/// close. Records arrive in post-order (children before parents), so
/// `num_children` is enough to reconstruct the plan tree exactly.
struct OpRecord {
  std::string label;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double seconds = 0.0;
  /// Hash-join split: time spent building the hash index vs probing it.
  double build_seconds = 0.0;
  double probe_seconds = 0.0;
  /// Mid-build growths of the operator's hash index (0 when pre-sized).
  int64_t rehashes = 0;
  /// Hash-join build-side partition fan-out (1 = serial build, 0 = n/a).
  int build_partitions = 0;
  int num_children = 0;
};

/// \brief All operators of one statement (one ExecContext), in post-order.
struct StatementTrace {
  std::string scope;
  std::vector<OpRecord> ops;
};

/// \brief Per-label operator aggregate across every statement.
struct OpTotals {
  std::string label;
  int64_t invocations = 0;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double seconds = 0.0;
  double build_seconds = 0.0;
  double probe_seconds = 0.0;
  int64_t rehashes = 0;
  /// Widest build-side partition fan-out seen for this label.
  int max_build_partitions = 0;
};

/// \brief One (iteration, partition) cell of the grounding fixpoint: the
/// delta produced by partition M_p in that iteration and the join time it
/// took. Semi-naive runs each partition twice per iteration (delta x full,
/// full x delta); both passes accumulate into the same cell.
struct PartitionIterStats {
  int iteration = 0;
  int partition = 0;  // 1..kNumRuleStructures
  int64_t delta_rows = 0;
  double join_seconds = 0.0;
  int64_t statements = 0;
};

/// \brief Per-label motion aggregate: interconnect volume and skew.
struct MotionTotals {
  std::string label;
  std::string kind;
  int64_t count = 0;
  int64_t tuples_shipped = 0;
  int64_t bytes_shipped = 0;
  double seconds = 0.0;
  /// Worst per-segment row skew observed over this label's motions:
  /// max-segment rows divided by mean-segment rows (1.0 = balanced, 0 when
  /// no per-segment data was reported).
  double max_skew = 0.0;
  int64_t max_segment_tuples = 0;
};

/// \brief Per-label compute-phase aggregate on the MPP simulator.
struct ComputeTotals {
  std::string label;
  int64_t count = 0;
  double seconds = 0.0;       // sum over phases of max-segment seconds
  double total_work_seconds = 0.0;
  /// Worst per-segment time skew: max seg seconds / mean seg seconds.
  double max_skew = 0.0;
};

/// \brief One pool worker's lifetime counters (see ThreadPool::WorkerStats).
struct WorkerTotals {
  int worker = 0;
  int64_t tasks_run = 0;
  int64_t steals = 0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
};

/// \brief One Gibbs chain's sampling throughput.
struct GibbsChainStats {
  int chain = 0;
  int64_t sweeps = 0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;  // variable updates per wall-clock second
};

/// \brief Per-run execution-statistics sink: the EXPLAIN ANALYZE substrate.
///
/// One registry is attached to a grounder / MPP context / CLI run and
/// collects operator records (via ExecContext stats sinks), fixpoint
/// partition cells, motion volumes, pool-worker counters, and Gibbs chain
/// throughput. All Record* calls happen on the orchestrating thread —
/// operators close and motions account on the thread executing the plan —
/// so the registry itself needs no locks; the only concurrent counters
/// (pool workers) are per-worker atomics merged at snapshot time by the
/// caller. Recording never influences execution: it runs after every
/// budget/fault gate and only copies values out.
///
/// When the PROBKB_TRACE environment variable names a file at construction
/// time, every operator / motion / partition record additionally captures a
/// Chrome-trace "complete" event (phase "X"); WriteTraceIfEnabled() emits
/// the chrome://tracing-loadable JSON.
class StatsRegistry {
 public:
  StatsRegistry();

  /// \brief Appends one operator record to `scope`'s statement (created on
  /// first use) and folds it into the per-label totals.
  void RecordOp(const std::string& scope, const OpRecord& op);

  /// \brief Accumulates one partition pass of one fixpoint iteration.
  void RecordPartitionIteration(int iteration, int partition,
                                int64_t delta_rows, double join_seconds);

  /// \brief Accumulates one motion. `per_segment_rows` carries the
  /// post-motion per-segment row counts when the motion knows them
  /// (Redistribute/Broadcast/Gather); empty otherwise.
  void RecordMotion(const std::string& label, const std::string& kind,
                    int64_t tuples_shipped, int64_t bytes_shipped,
                    double seconds,
                    const std::vector<int64_t>& per_segment_rows);

  /// \brief Accumulates one per-segment compute phase.
  void RecordCompute(const std::string& label, double max_seconds,
                     double total_work_seconds, int num_segments);

  /// \brief Overwrites the worker-counter snapshot (idempotent; the caller
  /// snapshots the pool at run end).
  void RecordWorkers(const std::vector<WorkerTotals>& workers);

  /// \brief Records one Gibbs chain's throughput; samples/sec counts
  /// variable updates (sweeps x num_variables) per wall-clock second.
  void RecordGibbsChain(int chain, int64_t sweeps, int64_t num_variables,
                        double seconds);

  /// \brief Folds one latency sample into the named HDR histogram
  /// (created on first use). Callers: grounding iterations, motion ship
  /// times, hash-join build/probe, Gibbs sweeps. Same single-threaded
  /// contract as every other Record* call. A non-zero `exemplar_trace`
  /// attaches the sample's distributed-trace id to the histogram's tail
  /// buckets (see LatencyHistogram::Exemplar).
  void RecordLatency(const std::string& name, double seconds,
                     uint64_t exemplar_trace = 0);

  /// \brief Named histograms in first-recorded order.
  const std::vector<std::pair<std::string, LatencyHistogram>>& latencies()
      const {
    return latencies_;
  }

  /// \brief Histogram by name, or nullptr if never recorded.
  const LatencyHistogram* FindLatency(const std::string& name) const;

  /// \brief Adds `delta` to the named monotonic counter (created at zero
  /// on first use). Volumes — queries answered, atoms grounded per query —
  /// land here; unlike latencies they have no duration to histogram.
  void IncrementCounter(const std::string& name, int64_t delta = 1);

  /// \brief Counters in first-recorded order.
  const std::vector<std::pair<std::string, int64_t>>& counters() const {
    return counters_;
  }

  /// \brief Counter value by name, or -1 if never recorded.
  int64_t FindCounter(const std::string& name) const;

  const std::vector<StatementTrace>& statements() const {
    return statements_;
  }
  const std::vector<OpTotals>& op_totals() const { return op_totals_; }
  const std::vector<PartitionIterStats>& partition_iterations() const {
    return partition_iterations_;
  }
  const std::vector<MotionTotals>& motion_totals() const {
    return motion_totals_;
  }
  const std::vector<ComputeTotals>& compute_totals() const {
    return compute_totals_;
  }
  const std::vector<WorkerTotals>& workers() const { return workers_; }
  const std::vector<GibbsChainStats>& gibbs_chains() const {
    return gibbs_chains_;
  }

  /// \brief EXPLAIN ANALYZE rendering: per-statement operator trees with
  /// row counts and timings, then the aggregate sections.
  std::string ToText() const;

  /// \brief The full registry as a JSON object (statements with per-op
  /// records incl. num_children, partition cells, motions, compute, workers,
  /// gibbs chains).
  std::string ToJson() const;

  Status WriteJsonFile(const std::string& path) const;

  /// \brief Counters and latency-histogram quantiles in Prometheus text
  /// exposition format: `probkb_<counter>_total` counters, a
  /// `probkb_latency_seconds` summary per series (quantile 0.5/0.95/0.99
  /// labels plus _sum/_count), and one `probkb_latency_tail_exemplar_info`
  /// line per series with a traced tail sample. The serve metrics socket
  /// snapshots this on every poll.
  std::string ToPrometheusText() const;

  /// \brief True when PROBKB_TRACE was set at construction.
  bool trace_enabled() const { return !trace_path_.empty(); }
  const std::string& trace_path() const { return trace_path_; }

  /// \brief Writes the Chrome-trace JSON to the PROBKB_TRACE path; no-op
  /// (OK) when tracing is off.
  Status WriteTraceIfEnabled() const;

 private:
  struct TraceEvent {
    std::string name;
    std::string category;
    int64_t ts_us = 0;   // start, microseconds since registry construction
    int64_t dur_us = 0;
    int lane = 0;        // rendered as the Chrome-trace tid
  };

  /// Captures a span that ended "now" and lasted `seconds`.
  void Trace(const std::string& name, const std::string& category,
             double seconds, int lane);

  std::vector<StatementTrace> statements_;
  std::unordered_map<std::string, size_t> statement_index_;
  std::vector<OpTotals> op_totals_;
  std::unordered_map<std::string, size_t> op_index_;
  std::vector<PartitionIterStats> partition_iterations_;
  std::unordered_map<int64_t, size_t> partition_index_;
  std::vector<MotionTotals> motion_totals_;
  std::unordered_map<std::string, size_t> motion_index_;
  std::vector<ComputeTotals> compute_totals_;
  std::unordered_map<std::string, size_t> compute_index_;
  std::vector<WorkerTotals> workers_;
  std::vector<GibbsChainStats> gibbs_chains_;
  std::vector<std::pair<std::string, LatencyHistogram>> latencies_;
  std::unordered_map<std::string, size_t> latency_index_;
  std::vector<std::pair<std::string, int64_t>> counters_;
  std::unordered_map<std::string, size_t> counter_index_;

  std::string trace_path_;
  std::vector<TraceEvent> trace_events_;
  std::chrono::steady_clock::time_point trace_base_;
};

}  // namespace probkb

#endif  // PROBKB_OBS_STATS_REGISTRY_H_
