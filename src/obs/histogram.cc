#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace probkb {

namespace {

/// Highest microsecond magnitude the bucket table covers: 2^42 us ~ 50
/// days; anything larger clamps into the top bucket.
constexpr int kMaxOctave = 42;
constexpr int kSubShift = 4;  // log2(kSubBuckets)

constexpr int kNumBuckets =
    LatencyHistogram::kSubBuckets +
    (kMaxOctave - kSubShift) * LatencyHistogram::kSubBuckets;

}  // namespace

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<size_t>(kNumBuckets), 0) {}

int LatencyHistogram::BucketIndex(int64_t us) {
  if (us < kSubBuckets) return static_cast<int>(us);  // exact 0..15 us
  int msb = 63;
  while ((us & (int64_t{1} << msb)) == 0) --msb;
  if (msb > kMaxOctave) {
    msb = kMaxOctave;
    us = int64_t{1} << kMaxOctave;
  }
  // Values in [2^msb, 2^(msb+1)) subdivide into kSubBuckets linear slots.
  const int sub = static_cast<int>(us >> (msb - kSubShift)) - kSubBuckets;
  int index = (msb - kSubShift) * kSubBuckets + kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

double LatencyHistogram::BucketMidpointUs(int index) {
  if (index < kSubBuckets) return static_cast<double>(index);
  const int octave = (index - kSubBuckets) / kSubBuckets + kSubShift;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  const double lo =
      std::ldexp(1.0, octave) * (1.0 + static_cast<double>(sub) / kSubBuckets);
  const double width = std::ldexp(1.0, octave) / kSubBuckets;
  return lo + width / 2.0;
}

void LatencyHistogram::Record(double seconds, uint64_t exemplar_trace) {
  if (seconds < 0) seconds = 0;
  const int64_t us = static_cast<int64_t>(seconds * 1e6);
  const int bucket = BucketIndex(us);
  ++buckets_[static_cast<size_t>(bucket)];
  ++count_;
  sum_seconds_ += seconds;
  if (seconds > max_seconds_) max_seconds_ = seconds;
  if (exemplar_trace == 0) return;
  // Keep one exemplar per bucket for the kMaxExemplars highest traced
  // buckets; the latest recording in a bucket wins, and a new tail bucket
  // evicts the lowest. `exemplars_` stays sorted ascending by bucket, so
  // tail_exemplar() is always the worst traced latency class.
  for (Exemplar& e : exemplars_) {
    if (e.bucket == bucket) {
      e.seconds = seconds;
      e.trace_id = exemplar_trace;
      return;
    }
  }
  Exemplar fresh{bucket, seconds, exemplar_trace};
  auto pos = std::lower_bound(
      exemplars_.begin(), exemplars_.end(), bucket,
      [](const Exemplar& e, int b) { return e.bucket < b; });
  exemplars_.insert(pos, fresh);
  if (static_cast<int>(exemplars_.size()) > kMaxExemplars) {
    exemplars_.erase(exemplars_.begin());
  }
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p >= 100.0) return max_seconds_;
  if (p < 0.0) p = 0.0;
  // Rank of the requested percentile (1-based, ceil): the smallest bucket
  // whose cumulative count reaches it holds the answer.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 *
                                        static_cast<double>(count_))));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= rank) {
      // Never report beyond the exactly tracked max (the top recorded
      // value sits somewhere inside its bucket).
      return std::min(BucketMidpointUs(i) / 1e6, max_seconds_);
    }
  }
  return max_seconds_;
}

std::string LatencyHistogram::Summary() const {
  return StrFormat("n=%lld p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
                   static_cast<long long>(count_), Percentile(50) * 1e3,
                   Percentile(95) * 1e3, Percentile(99) * 1e3,
                   max_seconds_ * 1e3);
}

}  // namespace probkb
