#include "obs/trace.h"

#include <time.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace probkb {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

/// splitmix64 finalizer: the bijective mixer all trace/span identity is
/// derived through. Deterministic, seedable, and collision-resistant
/// enough that derived worker span ids do not land on supervisor ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashKind(const char* kind) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a over the kind tag
  for (const char* p = kind; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 0x100000001B3ULL;
  }
  return h;
}

void CopyTag(char* dst, size_t dst_size, const char* src) {
  const size_t n = std::min(std::strlen(src), dst_size - 1);
  std::memcpy(dst, src, n);
  dst[n] = '\0';
}

/// Per-thread open-span stack. Keyed on the owning tracer's never-reused
/// id (a thread traces into one tracer at a time; switching tracers
/// abandons the old stack, which only tests with private tracers do).
struct OpenEntry {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};
struct ThreadStack {
  uint64_t owner_id = 0;
  std::vector<OpenEntry> stack;
  uint64_t span_ordinal = 0;  // ordinal within the current trace
};
ThreadStack& LocalStack() {
  thread_local ThreadStack state;
  return state;
}

}  // namespace

Tracer::Tracer(uint64_t seed, size_t capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(capacity == 0 ? 1 : capacity),
      seed_(seed),
      base_us_(NowUs()) {}

Tracer::~Tracer() = default;

Tracer* Tracer::Global() {
  // Leaked: reader threads may outlive main() teardown order.
  static Tracer* tracer = new Tracer();
  return tracer;
}

int64_t Tracer::NowUs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

Tracer::Ring* Tracer::LocalRing() {
  struct Cache {
    uint64_t owner_id = 0;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner_id == id_) return cache.ring;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  cache.owner_id = id_;
  cache.ring = rings_.back().get();
  return cache.ring;
}

Tracer::Context Tracer::current_context() const {
  const ThreadStack& ts = LocalStack();
  if (ts.owner_id != id_ || ts.stack.empty()) return {};
  return {ts.stack.back().trace_id, ts.stack.back().span_id};
}

Tracer::OpenSpan Tracer::PushSpan() {
  ThreadStack& ts = LocalStack();
  if (ts.owner_id != id_) {
    ts.owner_id = id_;
    ts.stack.clear();
    ts.span_ordinal = 0;
  }
  OpenSpan open;
  if (ts.stack.empty()) {
    const uint64_t ordinal =
        next_trace_.fetch_add(1, std::memory_order_relaxed);
    open.trace_id = Mix64(seed_ ^ Mix64(ordinal + 1));
    if (open.trace_id == 0) open.trace_id = 1;
    open.parent_id = 0;
    ts.span_ordinal = 0;
  } else {
    open.trace_id = ts.stack.back().trace_id;
    open.parent_id = ts.stack.back().span_id;
  }
  open.span_id = Mix64(open.trace_id ^ Mix64(++ts.span_ordinal));
  if (open.span_id == 0) open.span_id = 1;
  ts.stack.push_back({open.trace_id, open.span_id});
  return open;
}

void Tracer::PopSpan(const OpenSpan& span, const char* name,
                     const char* category, int64_t a, int64_t b, int64_t c,
                     int64_t start_us, int64_t dur_us) {
  ThreadStack& ts = LocalStack();
  if (ts.owner_id == id_) {
    // RAII spans unwind LIFO; tolerate an out-of-order End() by popping
    // down to (and including) the closing span.
    while (!ts.stack.empty()) {
      const bool match = ts.stack.back().span_id == span.span_id;
      ts.stack.pop_back();
      if (match) break;
    }
  }
  if (!enabled_.load(std::memory_order_relaxed)) return;
  SpanRecord record;
  record.trace_id = span.trace_id;
  record.span_id = span.span_id;
  record.parent_id = span.parent_id;
  record.a = a;
  record.b = b;
  record.c = c;
  record.segment = -1;
  record.start_us = start_us < 0 ? 0 : start_us;
  record.dur_us = dur_us < 0 ? 0 : dur_us;
  CopyTag(record.name, sizeof(record.name), name);
  CopyTag(record.category, sizeof(record.category), category);
  Emit(record);
}

void Tracer::Emit(const SpanRecord& record) {
  Ring* ring = LocalRing();
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  SpanRecord& slot = ring->slots[head % capacity_];
  slot = record;
  slot.seq = seq;
  // Publish the slot: pairs with the acquire in CollectSpans.
  ring->head.store(head + 1, std::memory_order_release);
}

void Tracer::RecordWorkerSpan(uint64_t trace_id, uint64_t parent_id,
                              int64_t motion, int32_t segment,
                              const char* kind, int64_t bytes,
                              int64_t start_abs_us, int64_t dur_us) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (trace_id == 0) return;  // untraced frame (heartbeat ping)
  SpanRecord record;
  record.trace_id = trace_id;
  record.parent_id = parent_id;
  // Identity from the work's coordinates, not from when it was harvested:
  // a respawned worker re-handling the same (motion, segment) exchange
  // reproduces the same span id, which CollectSpans() dedupes.
  uint64_t key = Mix64(trace_id ^ Mix64(parent_id));
  key = Mix64(key ^ Mix64(static_cast<uint64_t>(motion + 1)));
  key = Mix64(key ^ Mix64(static_cast<uint64_t>(segment + 1)));
  key = Mix64(key ^ HashKind(kind));
  record.span_id = key == 0 ? 1 : key;
  record.a = motion;
  record.b = segment;
  record.c = bytes;
  record.segment = segment;
  record.start_us = start_abs_us - base_us_;
  record.dur_us = dur_us < 0 ? 0 : dur_us;
  CopyTag(record.name, sizeof(record.name), kind);
  CopyTag(record.category, sizeof(record.category), "worker");
  Emit(record);
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Keep Ring allocations alive — threads hold cached pointers into them.
  for (auto& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
  }
  next_seq_.store(0, std::memory_order_relaxed);
  next_trace_.store(0, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::CollectSpans() const {
  std::vector<SpanRecord> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t kept = std::min<uint64_t>(head, capacity_);
      for (uint64_t i = head - kept; i < head; ++i) {
        merged.push_back(ring->slots[i % capacity_]);
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& x, const SpanRecord& y) {
              return x.seq < y.seq;
            });
  // Dedup by (trace, span): first occurrence wins. Only derived worker
  // span ids can repeat (respawn re-handling), and their payloads match.
  std::unordered_set<uint64_t> seen;
  std::vector<SpanRecord> unique;
  unique.reserve(merged.size());
  for (const SpanRecord& record : merged) {
    const uint64_t key = Mix64(record.trace_id) ^ record.span_id;
    if (!seen.insert(key).second) continue;
    unique.push_back(record);
  }
  // Stitch: clamp worker span intervals into their parent's interval.
  // Worker clocks are the same CLOCK_MONOTONIC, but the parent's End()
  // runs after the ack is read, and scheduling skew can leave a worker
  // stamp a hair outside; the tree must still nest.
  std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> interval;
  for (const SpanRecord& record : unique) {
    if (std::strcmp(record.category, "worker") != 0) {
      interval.emplace(record.span_id,
                       std::make_pair(record.start_us,
                                      record.start_us + record.dur_us));
    }
  }
  for (SpanRecord& record : unique) {
    if (std::strcmp(record.category, "worker") != 0) continue;
    const auto it = interval.find(record.parent_id);
    if (it == interval.end()) continue;  // orphan; the validator flags it
    const int64_t lo = it->second.first;
    const int64_t hi = it->second.second;
    int64_t start = std::max(record.start_us, lo);
    int64_t end = std::min(record.start_us + record.dur_us, hi);
    start = std::min(start, hi);
    if (end < start) end = start;
    record.start_us = start;
    record.dur_us = end - start;
  }
  return unique;
}

int64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > capacity_) dropped += static_cast<int64_t>(head - capacity_);
  }
  return dropped;
}

std::string Tracer::CanonicalText() const {
  const std::vector<SpanRecord> spans = CollectSpans();
  std::string out;
  // Lines are renumbered after filtering: worker spans consume global
  // sequence numbers in process mode, so raw seqs would differ from the
  // simulator run even when the supervisor spans are identical.
  size_t line = 0;
  for (const SpanRecord& record : spans) {
    if (std::strcmp(record.category, "worker") == 0) continue;
    out += StrFormat(
        "#%06zu trace=%016llx span=%016llx parent=%016llx %-20s cat=%-10s "
        "a=%lld b=%lld c=%lld\n",
        line++, static_cast<unsigned long long>(record.trace_id),
        static_cast<unsigned long long>(record.span_id),
        static_cast<unsigned long long>(record.parent_id), record.name,
        record.category, static_cast<long long>(record.a),
        static_cast<long long>(record.b), static_cast<long long>(record.c));
  }
  return out;
}

std::string Tracer::DumpJsonl() const {
  const std::vector<SpanRecord> spans = CollectSpans();
  std::string out;
  for (const SpanRecord& record : spans) {
    out += StrFormat(
        "{\"seq\": %llu, \"trace_id\": \"%016llx\", \"span_id\": "
        "\"%016llx\", \"parent_id\": \"%016llx\", \"name\": \"%s\", "
        "\"category\": \"%s\", \"a\": %lld, \"b\": %lld, \"c\": %lld, "
        "\"segment\": %d, \"start_us\": %lld, \"dur_us\": %lld}\n",
        static_cast<unsigned long long>(record.seq),
        static_cast<unsigned long long>(record.trace_id),
        static_cast<unsigned long long>(record.span_id),
        static_cast<unsigned long long>(record.parent_id), record.name,
        record.category, static_cast<long long>(record.a),
        static_cast<long long>(record.b), static_cast<long long>(record.c),
        record.segment, static_cast<long long>(record.start_us),
        static_cast<long long>(record.dur_us));
  }
  return out;
}

std::string Tracer::DumpChromeJson() const {
  const std::vector<SpanRecord> spans = CollectSpans();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& record : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    const int64_t ts = record.start_us < 0 ? 0 : record.start_us;
    out += StrFormat(
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": "
        "%lld, \"dur\": %lld, \"pid\": 0, \"tid\": %d, \"args\": "
        "{\"trace_id\": \"%016llx\", \"span_id\": \"%016llx\", "
        "\"parent_id\": \"%016llx\", \"a\": %lld, \"b\": %lld, \"c\": "
        "%lld}}",
        record.name, record.category, static_cast<long long>(ts),
        static_cast<long long>(record.dur_us),
        record.segment >= 0 ? record.segment + 1 : 0,
        static_cast<unsigned long long>(record.trace_id),
        static_cast<unsigned long long>(record.span_id),
        static_cast<unsigned long long>(record.parent_id),
        static_cast<long long>(record.a), static_cast<long long>(record.b),
        static_cast<long long>(record.c));
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

namespace {
Status WriteFileOrError(const std::string& path, const std::string& body,
                        const char* what) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError(std::string("cannot open ") + what + " file '" +
                           path + "' for write");
  }
  out << body;
  out.close();
  if (!out) {
    return Status::IOError(std::string("failed writing ") + what + " file '" +
                           path + "'");
  }
  return Status::OK();
}
}  // namespace

Status Tracer::WriteJsonl(const std::string& path) const {
  return WriteFileOrError(path, DumpJsonl(), "trace");
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteFileOrError(path, DumpChromeJson(), "trace");
}

TraceSpan::TraceSpan(Tracer* tracer, const char* name, const char* category,
                     int64_t a, int64_t b, int64_t c)
    : tracer_(tracer),
      name_(name),
      category_(category),
      a_(a),
      b_(b),
      c_(c) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  open_ = tracer_->PushSpan();
  start_us_ = Tracer::NowUs();
  active_ = true;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  const int64_t end_us = Tracer::NowUs();
  tracer_->PopSpan(open_, name_, category_, a_, b_, c_,
                   start_us_ - tracer_->base_us(), end_us - start_us_);
}

}  // namespace probkb
