#ifndef PROBKB_OBS_TRACE_H_
#define PROBKB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace probkb {

/// \brief One completed span. Identity and payload fields are exclusively
/// *deterministic* quantities (seeded ids, motion indices, row counts —
/// never wall-clock or thread ids), so the canonical dump of a
/// deterministic run is byte-identical at any thread count and across the
/// simulator/process runtimes. Timing lives in `start_us`/`dur_us`
/// (CLOCK_MONOTONIC microseconds relative to the tracer's base) and is
/// exported to Chrome trace / JSONL but excluded from CanonicalText().
struct SpanRecord {
  uint64_t seq = 0;        // global issue order; the merge key
  uint64_t trace_id = 0;   // one per root span (query / iteration)
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = trace root
  int64_t a = 0;           // span-specific deterministic payloads
  int64_t b = 0;
  int64_t c = 0;
  int32_t segment = -1;    // owning segment; -1 = supervisor/reader thread
  int64_t start_us = 0;
  int64_t dur_us = 0;
  char name[32] = {0};
  char category[16] = {0};
};

/// \brief Distributed tracer: per-thread lock-free span rings (same
/// registration/publication discipline as the flight recorder) plus
/// deterministic trace/span identity.
///
/// Identity is derived, never drawn from clocks or PIDs: a trace id mixes
/// the tracer seed with a global trace ordinal, a span id mixes the trace
/// id with the span's ordinal within its trace, and a worker span id mixes
/// the parent supervisor span with (motion, segment, kind). The worker
/// derivation is what makes harvest idempotent — a killed-and-respawned
/// worker that re-handles the same exchange journals a span with the SAME
/// id, and CollectSpans() deduplicates by (trace_id, span_id), so chaos
/// reruns cannot double-count work in the stitched tree.
///
/// Span nesting is tracked with a thread-local stack: a TraceSpan opened
/// while another is active becomes its child; opened on an empty stack it
/// starts a new trace and becomes the root. Worker spans arrive by journal
/// harvest (ProcessRuntime) already carrying the parent id the supervisor
/// stamped into the wire frame.
///
/// Disabled by default (unlike the flight recorder): tracing is opt-in via
/// `--trace`/`--trace_chrome`, and a disabled tracer costs one relaxed
/// load per span site.
class Tracer {
 public:
  // Capacity is per thread; serve query trees are ~6 spans each, so this
  // keeps the last ~2700 queries per reader thread.
  static constexpr size_t kDefaultCapacity = 16384;
  static constexpr uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ULL;

  explicit Tracer(uint64_t seed = kDefaultSeed,
                  size_t capacity = kDefaultCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// \brief The process-wide tracer instrumentation sites report into.
  static Tracer* Global();

  /// \brief CLOCK_MONOTONIC now, in microseconds. Monotonic is system-wide
  /// on Linux, so timestamps taken inside forked workers are directly
  /// comparable with the supervisor's when spans are stitched.
  static int64_t NowUs();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief The monotonic instant span timestamps are relative to.
  int64_t base_us() const { return base_us_; }

  /// \brief The calling thread's innermost open span, for propagation into
  /// wire frames. {0, 0} when no span is open (or tracing is off).
  struct Context {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
  };
  Context current_context() const;

  /// \brief Records a span harvested from a worker journal, parented to
  /// the supervisor span whose ids rode the wire frame. `start_abs_us` is
  /// the worker's CLOCK_MONOTONIC stamp; it is rebased against base_us().
  /// The span id is derived from (trace, parent, motion, segment, kind),
  /// so re-harvest after a respawn dedupes instead of duplicating.
  void RecordWorkerSpan(uint64_t trace_id, uint64_t parent_id, int64_t motion,
                        int32_t segment, const char* kind, int64_t bytes,
                        int64_t start_abs_us, int64_t dur_us);

  /// \brief Drops all spans and restarts sequence/trace numbering. Call
  /// only while no span is open on any thread (between runs).
  void Reset();

  /// \brief All surviving spans, sorted by issue order, deduplicated by
  /// (trace_id, span_id), with worker span intervals clamped into their
  /// parent's interval so the stitched tree nests properly.
  std::vector<SpanRecord> CollectSpans() const;

  /// \brief Spans overwritten by ring wrap-around (lost to the dump).
  int64_t dropped_spans() const;

  /// \brief Deterministic-fields-only dump: ids, names, payloads — no
  /// timing, no worker spans (those are process-runtime physical evidence
  /// with no simulator counterpart). Byte-identical across thread counts
  /// and sim-vs-process for a deterministic run.
  std::string CanonicalText() const;

  /// \brief Every span (workers and timing included), one JSON object per
  /// line. Input format of the check_stats_json.py span-tree validator.
  std::string DumpJsonl() const;

  /// \brief Chrome trace ("X" complete events): supervisor spans on tid 0,
  /// worker spans on tid segment+1; ids and payloads in args.
  std::string DumpChromeJson() const;

  Status WriteJsonl(const std::string& path) const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  friend class TraceSpan;

  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::vector<SpanRecord> slots;
    std::atomic<uint64_t> head{0};
  };

  /// What TraceSpan needs to close a span: its identity plus the parent
  /// captured at open time.
  struct OpenSpan {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;
  };

  OpenSpan PushSpan();
  void PopSpan(const OpenSpan& span, const char* name, const char* category,
               int64_t a, int64_t b, int64_t c, int64_t start_us,
               int64_t dur_us);
  void Emit(const SpanRecord& record);
  Ring* LocalRing();

  /// Never-reused instance id; thread-local ring and stack caches key on
  /// it (same hazard as FlightRecorder::LocalRing).
  const uint64_t id_;
  const size_t capacity_;
  const uint64_t seed_;
  const int64_t base_us_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> next_trace_{0};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// \brief RAII span. Opens on construction (no-op when tracing is off),
/// closes on End() or destruction. Payload values can be filled in as the
/// work completes:
///
///   TraceSpan span(Tracer::Global(), "local_ground", "serve");
///   ... work ...
///   span.set_values(atoms, depth, truncated);
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, const char* category,
            int64_t a = 0, int64_t b = 0, int64_t c = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_values(int64_t a, int64_t b, int64_t c) {
    a_ = a;
    b_ = b;
    c_ = c;
  }

  /// \brief Closes the span now (idempotent).
  void End();

  bool active() const { return active_; }
  uint64_t trace_id() const { return open_.trace_id; }
  uint64_t span_id() const { return open_.span_id; }

 private:
  Tracer* tracer_;
  Tracer::OpenSpan open_;
  const char* name_;
  const char* category_;
  int64_t a_;
  int64_t b_;
  int64_t c_;
  int64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace probkb

#endif  // PROBKB_OBS_TRACE_H_
