#ifndef PROBKB_OBS_BENCH_BASELINE_H_
#define PROBKB_OBS_BENCH_BASELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace probkb {

/// \brief One thread-count measurement from a BENCH_parallel.json report.
struct BenchPoint {
  int threads = 0;
  double seconds = 0.0;
};

/// \brief One workload section of a bench_report JSON document.
struct BenchWorkload {
  std::string name;
  double serial_seconds = 0.0;
  /// Peak RSS of the serial run; -1 when the report predates the field.
  /// A recorded 0 is a real (if implausible) measurement and still gates —
  /// only absence opts out.
  long long peak_rss_bytes = -1;
  /// Interconnect traffic of the serial MPP run (StatsRegistry motion
  /// totals); -1 when the report predates the field. A recorded 0 (no
  /// motions) gates: traffic appearing where there was none is a
  /// regression.
  long long shipped_bytes = -1;
  /// Motion mix of the serial MPP run: how many broadcast vs. redistribute
  /// motions the (adaptive) planner chose. Informational — recorded so a
  /// plan-choice flip shows up in the baseline diff.
  long long broadcast_motions = 0;
  long long redistribute_motions = 0;
  std::vector<BenchPoint> points;
};

/// \brief The comparable subset of a bench_report run.
struct BenchReport {
  std::vector<BenchWorkload> workloads;

  /// \brief Workload by name, or nullptr.
  const BenchWorkload* Find(std::string_view name) const;
};

/// \brief Parses the JSON written by tools/bench_report. Tolerates and
/// skips fields it does not know (notably the nested "breakdown" stats
/// objects), so report-format growth does not break old baselines.
Result<BenchReport> ParseBenchReportJson(std::string_view json);

/// \brief ParseBenchReportJson over a file's contents.
Result<BenchReport> ReadBenchReportFile(const std::string& path);

/// \brief One (workload, thread-count) cell of a baseline/current diff.
struct BenchDelta {
  std::string workload;
  int threads = 0;
  double baseline_seconds = 0.0;
  double current_seconds = 0.0;
  /// (current - baseline) / baseline; +0.25 means 25% slower than baseline.
  double delta_fraction = 0.0;
  bool regression = false;
  /// Workload/thread-count present in the baseline but absent from the
  /// current report (counts as a regression: coverage silently shrank).
  bool missing = false;
};

/// \brief One workload's peak-RSS cell of a baseline/current diff. Only
/// produced when both reports carry the peak_rss_bytes field — reports
/// predating it never fail the memory gate.
struct BenchMemoryDelta {
  std::string workload;
  long long baseline_bytes = 0;
  long long current_bytes = 0;
  /// (current - baseline) / baseline; +0.20 means 20% more peak memory.
  double delta_fraction = 0.0;
  bool regression = false;
};

/// \brief One workload's shipped-bytes cell of a baseline/current diff.
/// Only produced when both reports carry the shipped_bytes field —
/// reports predating it never fail the shipped gate.
struct BenchShippedDelta {
  std::string workload;
  long long baseline_bytes = 0;
  long long current_bytes = 0;
  /// (current - baseline) / baseline; +0.10 means 10% more traffic.
  double delta_fraction = 0.0;
  bool regression = false;
};

/// \brief The result of CompareBenchReports.
struct BenchComparison {
  double threshold = 0.10;
  double memory_threshold = 0.15;
  double shipped_threshold = 0.10;
  std::vector<BenchDelta> deltas;
  std::vector<BenchMemoryDelta> memory_deltas;
  std::vector<BenchShippedDelta> shipped_deltas;
  bool has_regression = false;

  std::string ToText() const;
  std::string ToJson() const;
};

/// \brief Diffs `current` against `baseline`: every baseline
/// (workload, threads) point must exist in `current` and be no more than
/// `threshold` (fractional, default 10%) slower, and — where both reports
/// record them — each workload's serial peak RSS no more than
/// `memory_threshold` (fractional, default 15%) larger and its shipped
/// interconnect bytes no more than `shipped_threshold` (fractional,
/// default 10%) larger. Extra workloads in `current` are reported
/// informationally and never fail the gate.
BenchComparison CompareBenchReports(const BenchReport& baseline,
                                    const BenchReport& current,
                                    double threshold = 0.10,
                                    double memory_threshold = 0.15,
                                    double shipped_threshold = 0.10);

}  // namespace probkb

#endif  // PROBKB_OBS_BENCH_BASELINE_H_
