#ifndef PROBKB_OBS_HISTOGRAM_H_
#define PROBKB_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace probkb {

/// \brief HDR-style latency histogram: exponentially growing buckets with
/// 16-way linear subdivision per octave, so any recorded value lands in a
/// bucket within ~6% of its true magnitude while the whole range from 1
/// microsecond to hours fits in under a thousand fixed counters.
///
/// Record() is two integer ops plus one counter increment — cheap enough
/// for per-operator and per-sweep instrumentation. Not thread-safe; every
/// recording site in this codebase reports from the orchestrating thread
/// (the StatsRegistry contract).
class LatencyHistogram {
 public:
  /// \brief One retained (bucket, trace) pair: the trace id of a recording
  /// that landed in one of the histogram's highest populated buckets, so a
  /// tail latency in the report links straight to its distributed trace.
  struct Exemplar {
    int bucket = 0;
    double seconds = 0.0;
    uint64_t trace_id = 0;
  };

  /// Highest-bucket exemplars kept (replacement evicts the lowest).
  static constexpr int kMaxExemplars = 4;

  LatencyHistogram();

  /// \brief Records one latency in seconds (negative values clamp to 0).
  /// A non-zero `exemplar_trace` is retained when the value lands in (or
  /// above) the histogram's current tail buckets.
  void Record(double seconds, uint64_t exemplar_trace = 0);

  int64_t count() const { return count_; }
  double sum_seconds() const { return sum_seconds_; }
  double max_seconds() const { return max_seconds_; }

  /// \brief Retained exemplars, ascending by bucket.
  const std::vector<Exemplar>& exemplars() const { return exemplars_; }

  /// \brief The trace id attached to the highest exemplar bucket (0 when
  /// no traced recording has been seen).
  uint64_t tail_exemplar() const {
    return exemplars_.empty() ? 0 : exemplars_.back().trace_id;
  }

  /// \brief Value at percentile `p` in [0, 100], in seconds, from the
  /// bucket midpoints (0 for an empty histogram). Percentile(100) reports
  /// the exactly tracked maximum.
  double Percentile(double p) const;

  /// \brief "n=5 p50=1.2ms p95=3.4ms p99=3.9ms max=4.1ms".
  std::string Summary() const;

  /// Linear sub-buckets per octave; the bucketing precision knob.
  static constexpr int kSubBuckets = 16;

 private:
  static int BucketIndex(int64_t us);
  /// Midpoint of bucket `index`, in microseconds.
  static double BucketMidpointUs(int index);

  std::vector<int64_t> buckets_;
  std::vector<Exemplar> exemplars_;
  int64_t count_ = 0;
  double sum_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

}  // namespace probkb

#endif  // PROBKB_OBS_HISTOGRAM_H_
