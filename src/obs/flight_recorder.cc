#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "util/strings.h"

namespace probkb {

const char* FrEventName(FrEvent event) {
  switch (event) {
    case FrEvent::kMotionBegin:
      return "motion_begin";
    case FrEvent::kFaultInjected:
      return "fault_injected";
    case FrEvent::kRetryAttempt:
      return "retry_attempt";
    case FrEvent::kMotionRecovered:
      return "motion_recovered";
    case FrEvent::kMotionFailed:
      return "motion_failed";
    case FrEvent::kCheckpointCommit:
      return "checkpoint_commit";
    case FrEvent::kIterationBoundary:
      return "iteration_boundary";
    case FrEvent::kGibbsMilestone:
      return "gibbs_milestone";
    case FrEvent::kWorkerSpawn:
      return "worker_spawn";
    case FrEvent::kWorkerHeartbeat:
      return "worker_heartbeat";
    case FrEvent::kWorkerKilled:
      return "worker_killed";
    case FrEvent::kWorkerRespawn:
      return "worker_respawn";
    case FrEvent::kFrameRetry:
      return "frame_retry";
    case FrEvent::kWorkerPostMortem:
      return "worker_post_mortem";
  }
  return "?";
}

std::string FrRecord::ToText() const {
  std::string line = StrFormat("#%06llu %-18s a=%lld b=%lld c=%lld",
                               static_cast<unsigned long long>(seq),
                               FrEventName(event), static_cast<long long>(a),
                               static_cast<long long>(b),
                               static_cast<long long>(c));
  if (detail[0] != '\0') {
    line += " ";
    line += detail;
  }
  return line;
}

namespace {
std::atomic<uint64_t> g_next_recorder_id{1};
}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(capacity == 0 ? 1 : capacity) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder* FlightRecorder::Global() {
  // Leaked: worker threads may outlive main() teardown order.
  static FlightRecorder* recorder = new FlightRecorder();
  return recorder;
}

FlightRecorder::Ring* FlightRecorder::LocalRing() {
  // One cached Ring* per (thread, recorder instance); keyed by the
  // never-reused id so tests with private recorders can't cross-
  // contaminate the global one or revive a dead recorder's ring.
  struct Cache {
    uint64_t owner_id = 0;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner_id == id_) return cache.ring;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  cache.owner_id = id_;
  cache.ring = rings_.back().get();
  return cache.ring;
}

void FlightRecorder::Record(FrEvent event, std::string_view detail, int64_t a,
                            int64_t b, int64_t c) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = LocalRing();
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  FrRecord& slot = ring->slots[head % capacity_];
  slot.seq = seq;
  slot.event = event;
  slot.a = a;
  slot.b = b;
  slot.c = c;
  const size_t n = std::min(detail.size(), sizeof(slot.detail) - 1);
  std::memcpy(slot.detail, detail.data(), n);
  slot.detail[n] = '\0';
  // Publish the slot: the release pairs with the acquire in
  // MergedTimeline, so a reader that observes this head sees the record.
  ring->head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Keep the Ring allocations alive — threads hold cached pointers into
  // them — and just forget their contents.
  for (auto& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
  }
  next_seq_.store(0, std::memory_order_relaxed);
}

std::vector<FrRecord> FlightRecorder::MergedTimeline(size_t last_n) const {
  std::vector<FrRecord> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t kept = std::min<uint64_t>(head, capacity_);
      for (uint64_t i = head - kept; i < head; ++i) {
        merged.push_back(ring->slots[i % capacity_]);
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const FrRecord& x, const FrRecord& y) { return x.seq < y.seq; });
  if (last_n > 0 && merged.size() > last_n) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<ptrdiff_t>(last_n));
  }
  return merged;
}

int64_t FlightRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > capacity_) dropped += static_cast<int64_t>(head - capacity_);
  }
  return dropped;
}

std::string FlightRecorder::DumpText(size_t last_n) const {
  const std::vector<FrRecord> timeline = MergedTimeline(last_n);
  std::string out = "=== flight recorder";
  out += StrFormat(" (%zu events", timeline.size());
  const int64_t dropped = dropped_events();
  if (dropped > 0) {
    out += StrFormat(", %lld older dropped", static_cast<long long>(dropped));
  }
  out += ") ===\n";
  for (const FrRecord& record : timeline) {
    out += record.ToText();
    out += '\n';
  }
  return out;
}

std::string FlightRecorder::DumpJson(size_t last_n) const {
  const std::vector<FrRecord> timeline = MergedTimeline(last_n);
  std::string out = "{\n";
  out += StrFormat("  \"dropped_events\": %lld,\n",
                   static_cast<long long>(dropped_events()));
  out += "  \"events\": [";
  bool first = true;
  for (const FrRecord& record : timeline) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"seq\": %llu, \"event\": \"%s\", \"a\": %lld, \"b\": %lld, "
        "\"c\": %lld, \"detail\": \"%s\"}",
        static_cast<unsigned long long>(record.seq), FrEventName(record.event),
        static_cast<long long>(record.a), static_cast<long long>(record.b),
        static_cast<long long>(record.c), record.detail);
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Status FlightRecorder::WriteDump(const std::string& path,
                                 size_t last_n) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open post-mortem file '" + path +
                           "' for write");
  }
  out << DumpJson(last_n);
  out.close();
  if (!out) {
    return Status::IOError("failed writing post-mortem file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace probkb
