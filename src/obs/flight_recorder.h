#ifndef PROBKB_OBS_FLIGHT_RECORDER_H_
#define PROBKB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace probkb {

/// \brief Event taxonomy of the flight recorder: the step-level milestones
/// a post-mortem needs to explain why a run produced what it did. See
/// DESIGN.md "Flight recorder & logging".
enum class FrEvent : uint8_t {
  kMotionBegin = 0,    // a=motion index                  detail=label
  kFaultInjected,      // a=motion/op index b=attempt c=victim segment
                       //                                 detail=fault kind
  kRetryAttempt,       // a=motion index b=attempt c=pending victims
  kMotionRecovered,    // a=motion index b=faults recovered c=reshipped
  kMotionFailed,       // a=motion index b=attempts c=stuck segment
  kCheckpointCommit,   // a=iteration b=tables committed c=t_pi rows
  kIterationBoundary,  // a=iteration b=new atoms c=total atoms
                       //                                 detail=grounder
  kGibbsMilestone,     // a=chain b=sweeps done c=1 when the schedule is
                       //   complete
  kWorkerSpawn,        // a=segment b=generation (0 first spawn)
  kWorkerHeartbeat,    // a=motions ticked b=workers alive
  kWorkerKilled,       // a=segment b=motion c=signal   detail=cause
  kWorkerRespawn,      // a=segment b=motion c=generation
  kFrameRetry,         // a=segment b=motion c=attempt  detail=reason
  kWorkerPostMortem,   // a=segment b=journaled events c=last motion
};

const char* FrEventName(FrEvent event);

/// \brief One journal entry. Payloads are exclusively *deterministic*
/// quantities (indices, counts, attempt numbers) — never wall-clock or
/// thread ids — so the merged timeline of a deterministic run is
/// byte-identical at any thread count, and a chaos seed's dump can be
/// diffed across configurations.
struct FrRecord {
  uint64_t seq = 0;  // global issue order; the merge key
  FrEvent event = FrEvent::kMotionBegin;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  char detail[32] = {0};  // truncated label / kind tag

  std::string ToText() const;
};

/// \brief Lock-free per-thread ring-buffer journal of pipeline milestones.
///
/// Each thread writes to its own fixed-capacity ring (registered on first
/// use; registration is the only locked path), so recording is a relaxed
/// fetch_add for the global sequence number plus a store into thread-local
/// slots — no contention, no allocation, near-zero cost on hot paths. The
/// last `capacity` events per thread survive; older ones are overwritten
/// (a flight recorder keeps the tail of the story, not the whole book).
///
/// MergedTimeline() collects every ring and sorts by sequence number.
/// Readers are expected to run after the recorded activity settles (end of
/// run, post-mortem on failure); per-ring heads are released/acquired so a
/// settled writer's records are visible.
///
/// The process-global instance (Global()) is enabled by default and fed by
/// the MPP motions, the fault injector, checkpoint commits, fixpoint
/// iteration boundaries, and Gibbs milestones. Purely observational:
/// nothing reads it during execution, so outputs are bit-identical with
/// the recorder on or off.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// \brief The process-wide recorder the pipeline reports into.
  static FlightRecorder* Global();

  /// \brief Cheap kill switch (relaxed atomic load per Record call);
  /// bench_report uses it to measure the recorder's overhead.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Journals one event; `detail` is truncated to fit FrRecord.
  void Record(FrEvent event, std::string_view detail, int64_t a = 0,
              int64_t b = 0, int64_t c = 0);

  /// \brief Drops all recorded events and restarts sequence numbering.
  /// Call only while no thread is concurrently recording (between runs).
  void Reset();

  /// \brief All surviving events in sequence order; `last_n` > 0 keeps
  /// only the newest n.
  std::vector<FrRecord> MergedTimeline(size_t last_n = 0) const;

  /// \brief Events overwritten by ring wrap-around (lost to the dump).
  int64_t dropped_events() const;

  /// \brief Human-readable timeline (one event per line, sequence-stamped).
  std::string DumpText(size_t last_n = 0) const;

  /// \brief The timeline as a JSON document.
  std::string DumpJson(size_t last_n = 0) const;

  /// \brief Writes DumpJson to `path`.
  Status WriteDump(const std::string& path, size_t last_n = 0) const;

 private:
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::vector<FrRecord> slots;
    /// Records ever written by the owning thread; slots hold the last
    /// min(head, capacity) of them.
    std::atomic<uint64_t> head{0};
  };

  Ring* LocalRing();

  /// Never-reused instance id; the thread-local ring cache keys on it so a
  /// recorder allocated at a dead recorder's address cannot resurrect a
  /// stale cached Ring*.
  const uint64_t id_;
  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_seq_{0};
  /// Registration is append-only and rings are never deallocated before
  /// the recorder itself, so a thread's cached Ring* stays valid across
  /// Reset() (which only zeroes heads).
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace probkb

#endif  // PROBKB_OBS_FLIGHT_RECORDER_H_
